// Command vacsem verifies average-error metrics of an approximate
// circuit against an exact circuit. Circuits are read from BLIF (.blif)
// or ASCII AIGER (.aag) files; the format is chosen by extension.
//
// Usage:
//
//	vacsem -metric er  -exact adder.blif -approx adder_apx.blif
//	vacsem -metric med -exact m.aag -approx m_apx.aag -method dpll
//	vacsem -metric thr -threshold 8 -exact a.blif -approx b.blif
//	vacsem -metrics er,med,mhd -exact adder.blif -approx adder_apx.blif
//	vacsem -metric med -exact m.aag -approx m_apx.aag -workers 8 -progress
//	vacsem -metric er -exact a.blif -approx b.blif -trace run.jsonl -obs-metrics table
//
// Methods: vacsem (simulation-enhanced counting, default), dpll (the
// counter without simulation), enum (exhaustive simulation), bdd (the
// prior-art decision-diagram flow), approx ((ε, δ) estimation by XOR
// streamlining). -backend is an alias for -method that overrides it
// when set.
//
// The approx backend reports value ± ε at confidence 1-δ: -epsilon and
// -delta tune the guarantee (defaults 0.8 / 0.2) and -count-seed makes
// the XOR sampling reproducible:
//
//	vacsem -backend approx -epsilon 0.1 -delta 0.05 -count-seed 7 \
//	    -metric er -exact adder.blif -approx adder_apx.blif
//
// -metrics verifies several metrics in one session: the shared base
// miter is built and synthesized once, structurally identical counting
// tasks are deduplicated across metrics, and each reported value is
// bit-identical to the corresponding single-metric run.
//
// Sub-miters are solved concurrently (-workers, default one per CPU);
// results are bit-identical to the sequential run. -progress streams
// one line per completed sub-miter. Ctrl-C cancels the verification
// cooperatively: the solvers notice within one poll interval.
//
// Observability: -trace FILE streams the span/event JSONL described in
// internal/obs; -obs-metrics table|json dumps the metrics registry
// after the run; -introspect ADDR serves the live introspection server
// (/metrics Prometheus exposition, /debug/vacsem/progress event stream,
// /debug/vacsem/runs flight-recorder snapshot, /debug/pprof) and may
// share -pprof's address; -flight-interval tunes the flight recorder's
// sampling; -pprof ADDR serves live net/http/pprof; -cpuprofile and
// -memprofile write pprof files. None of these change the verified
// counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"vacsem/internal/blif"

	"vacsem/internal/aiger"
	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/counter"
	"vacsem/internal/obs"
	"vacsem/internal/obs/expo"
)

func main() {
	os.Exit(run())
}

// run carries the whole CLI so that observability teardown (trace
// flush, profile writes) happens on every exit path; os.Exit only ever
// runs after the deferred stop.
func run() int {
	var (
		metric      = flag.String("metric", "er", "metric: er, med, mhd or thr")
		metricList  = flag.String("metrics", "", "comma-separated metrics verified in one deduplicated session (e.g. er,med,mhd); overrides -metric")
		exactPath   = flag.String("exact", "", "exact circuit file (.blif or .aag)")
		apxPath     = flag.String("approx", "", "approximate circuit file (.blif or .aag)")
		method      = flag.String("method", "vacsem", "engine: vacsem, dpll, enum, bdd or approx")
		backend     = flag.String("backend", "", "alias for -method; overrides it when set")
		epsilon     = flag.Float64("epsilon", 0, "approx backend: multiplicative tolerance ε (0 = default 0.8)")
		delta       = flag.Float64("delta", 0, "approx backend: failure probability δ (0 = default 0.2)")
		countSeed   = flag.Int64("count-seed", 0, "seed for the approx backend's XOR sampling (reproducible runs)")
		hashDensity = flag.Float64("hash-density", 0, "approx backend: hash-row density in (0, 0.5] (0 = automatic sparse schedule; 0.5 = classical dense rows)")
		minSupport  = flag.Bool("min-support", true, "approx backend: shrink the sampling set by independent-support minimization before probing")
		threshold   = flag.String("threshold", "0", "deviation threshold for -metric thr")
		timeLimit   = flag.Duration("timelimit", 0, "abort after this duration (0 = none)")
		noSynth     = flag.Bool("nosynth", false, "skip the synthesis (compress) step")
		sharedCache = flag.Bool("shared-cache", true, "share one component-count cache across all sub-miter solvers (counts are identical either way)")
		alpha       = flag.Float64("alpha", 0, "density-score scaling factor (default 2)")
		workers     = flag.Int("workers", 0, "concurrent sub-miter solvers (0 = one per CPU)")
		simWorkers  = flag.Int("sim-workers", 0, "goroutines for exhaustive simulation block enumeration (0 = one per CPU; counts are bit-identical at any setting)")
		bddReorder  = flag.Bool("bdd-reorder", false, "enable dynamic variable reordering (window sifting) in the bdd backend")
		progress    = flag.Bool("progress", false, "stream per-sub-miter completion events")
		verbose     = flag.Bool("v", false, "print per-output-bit details")
		tracePath   = flag.String("trace", "", "write span/event trace (JSON lines) to this file")
		metricsFmt  = flag.String("obs-metrics", "", "print end-of-run metrics registry: table or json")
		pprofAddr   = flag.String("pprof", "", "serve live net/http/pprof on this address (e.g. localhost:6060)")
		introspect  = flag.String("introspect", "", "serve the live introspection server on this address: /metrics, /debug/vacsem/progress, /debug/vacsem/runs, /debug/pprof (may equal -pprof to share one listener)")
		flightIvl   = flag.Duration("flight-interval", 0, "flight-recorder sampling interval (0 = auto: on when -introspect or -trace is set; negative = off)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	if *exactPath == "" || *apxPath == "" {
		fmt.Fprintln(os.Stderr, "vacsem: -exact and -approx are required")
		flag.Usage()
		return 2
	}

	stop, err := expo.Setup(expo.CLIConfig{
		TracePath:      *tracePath,
		CPUProfile:     *cpuProfile,
		MemProfile:     *memProfile,
		PprofAddr:      *pprofAddr,
		IntrospectAddr: *introspect,
		FlightInterval: *flightIvl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vacsem:", err)
		return 1
	}
	exitCode := 0
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vacsem:", err)
		}
	}()

	engineName := *method
	if *backend != "" {
		engineName = *backend
	}
	if err := verify(*metric, *metricList, *exactPath, *apxPath, engineName, *threshold, core.Options{
		TimeLimit:          *timeLimit,
		NoSynth:            *noSynth,
		Alpha:              *alpha,
		Workers:            *workers,
		SimWorkers:         *simWorkers,
		BDDReorder:         *bddReorder,
		DisableSharedCache: !*sharedCache,
		Epsilon:            *epsilon,
		Delta:              *delta,
		Seed:               *countSeed,
		HashDensity:        *hashDensity,
		NoSupportMin:       !*minSupport,
	}, *progress, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "vacsem:", err)
		exitCode = 1
	}

	if *metricsFmt != "" {
		if err := obs.WriteMetrics(os.Stdout, *metricsFmt); err != nil {
			fmt.Fprintln(os.Stderr, "vacsem:", err)
			if exitCode == 0 {
				exitCode = 2
			}
		}
	}
	return exitCode
}

func verify(metric, metricList, exactPath, apxPath, method, threshold string, opt core.Options, progress, verbose bool) error {
	exact, err := load(exactPath)
	if err != nil {
		return err
	}
	approx, err := load(apxPath)
	if err != nil {
		return err
	}
	opt.Method, err = core.MethodByName(method)
	if err != nil {
		return err
	}
	if progress {
		opt.Progress = func(ev core.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %-8s count=%s  %v (dec=%d sim=%d)\n",
				ev.Done, ev.Total, ev.Metric, ev.Output, ev.Count,
				ev.Runtime.Round(time.Microsecond),
				ev.Stats.Decisions, ev.Stats.SimCalls)
		}
	}

	// Ctrl-C cancels cooperatively: the context reaches the solvers'
	// inner loops through the engine layer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if metricList != "" {
		return verifySession(ctx, metricList, threshold, exact, approx, opt, verbose)
	}

	start := time.Now()
	var res *core.Result
	switch metric {
	case "er":
		res, err = core.VerifyERContext(ctx, exact, approx, opt)
	case "med":
		res, err = core.VerifyMEDContext(ctx, exact, approx, opt)
	case "mhd":
		res, err = core.VerifyMHDContext(ctx, exact, approx, opt)
	case "thr":
		t, err2 := parseThreshold(threshold)
		if err2 != nil {
			return err2
		}
		res, err = core.VerifyThresholdProbContext(ctx, exact, approx, t, opt)
	default:
		return fmt.Errorf("unknown metric %q", metric)
	}
	if err != nil {
		return err
	}

	fmt.Printf("metric     : %s\n", res.Metric)
	fmt.Printf("method     : %v\n", res.Method)
	fmt.Printf("exact      : %s (%d PI, %d PO)\n", exact.Name, exact.NumInputs(), exact.NumOutputs())
	fmt.Printf("approx     : %s\n", approx.Name)
	fmt.Printf("value      : %s\n", res.Value.RatString())
	fmt.Printf("value~     : %.6g\n", res.Float())
	if res.Approx {
		fmt.Printf("guarantee  : %s\n", approxLine(res))
	}
	fmt.Printf("count      : %s / 2^%d patterns\n", res.Count.String(), res.NumInputs)
	fmt.Printf("runtime    : %v (wall %v)\n", res.Runtime, time.Since(start))
	fmt.Printf("stats      : %s\n", statsLine(res.TotalStats))
	if verbose {
		printSubs(res.Subs)
	}
	return nil
}

// verifySession handles -metrics: every requested metric verified in one
// shared-base, task-deduplicated session.
func verifySession(ctx context.Context, metricList, threshold string, exact, approx *circuit.Circuit, opt core.Options, verbose bool) error {
	var specs []core.MetricSpec
	for _, name := range strings.Split(metricList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var t *big.Int
		if name == "thr" {
			var err error
			if t, err = parseThreshold(threshold); err != nil {
				return err
			}
		}
		spec, err := core.MetricSpecByName(name, t)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return fmt.Errorf("empty -metrics list %q", metricList)
	}

	start := time.Now()
	sess, err := core.VerifyMetrics(ctx, exact, approx, specs, opt)
	if err != nil {
		return err
	}

	fmt.Printf("method     : %v\n", sess.Method)
	fmt.Printf("exact      : %s (%d PI, %d PO)\n", exact.Name, exact.NumInputs(), exact.NumOutputs())
	fmt.Printf("approx     : %s\n", approx.Name)
	fmt.Printf("tasks      : %d requested, %d solved, %d deduplicated\n",
		sess.TasksRequested, sess.TasksUnique, sess.TasksDeduped)
	fmt.Printf("base nodes : %d -> %d (one shared synthesis pass)\n",
		sess.BaseNodesBefore, sess.BaseNodesAfter)
	fmt.Printf("runtime    : %v (wall %v)\n", sess.Runtime, time.Since(start))
	fmt.Printf("stats      : %s\n", statsLine(sess.TotalStats))
	for _, res := range sess.Results {
		fmt.Printf("\nmetric     : %s\n", res.Metric)
		fmt.Printf("value      : %s\n", res.Value.RatString())
		fmt.Printf("value~     : %.6g\n", res.Float())
		if res.Approx {
			fmt.Printf("guarantee  : %s\n", approxLine(res))
		}
		fmt.Printf("count      : %s / 2^%d patterns\n", res.Count.String(), res.NumInputs)
		if verbose {
			printSubs(res.Subs)
		}
	}
	return nil
}

func parseThreshold(threshold string) (*big.Int, error) {
	t, ok := new(big.Int).SetString(threshold, 10)
	if !ok || t.Sign() < 0 {
		return nil, fmt.Errorf("bad -threshold %q", threshold)
	}
	return t, nil
}

// approxLine renders the (ε, δ) guarantee row of an estimated result:
// the true value lies within a (1+ε) factor of the reported one with
// the stated confidence.
func approxLine(res *core.Result) string {
	line := fmt.Sprintf("value ± ε (ε=%g) @ confidence %.4g (δ=%.4g)",
		res.Epsilon, res.Confidence, res.Delta)
	if res.BestEffort {
		line += "  [best effort: time limit cut the round schedule; δ widened]"
	}
	return line
}

func statsLine(s counter.Stats) string {
	return fmt.Sprintf("dec=%d prop=%d comp=%d cache=%d/%d (cross=%d evict=%d) sim=%d simpat=%d",
		s.Decisions, s.Propagations, s.Components, s.CacheHits, s.CacheStores,
		s.CacheCrossHits, s.CacheEvictions, s.SimCalls, s.SimPatterns)
}

func printSubs(subs []core.SubResult) {
	for _, sub := range subs {
		shared := ""
		if sub.Shared {
			shared = "  (shared task)"
		}
		if sub.Approx {
			shared += fmt.Sprintf("  (approx ε=%g δ=%g support %d->%d density %.3g)",
				sub.Epsilon, sub.Delta, sub.SupportBefore, sub.SupportAfter, sub.HashDensity)
			if sub.BestEffort {
				shared += "  (best effort)"
			}
		}
		fmt.Printf("  %-8s count=%-14s weight=%-10s nodes %d->%d  %v  (dec=%d sim=%d cache=%d)%s\n",
			sub.Output, sub.Count, sub.Weight, sub.NodesBefore, sub.NodesAfter,
			sub.Runtime.Round(time.Microsecond),
			sub.Stats.Decisions, sub.Stats.SimCalls, sub.Stats.CacheHits, shared)
	}
}

func load(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".aag", ".aig":
		return aiger.Parse(f)
	default:
		return blif.Parse(f)
	}
}
