// Command vacsem-serve is the long-lived verification service: an
// HTTP/JSON API over the core stack with one process-global,
// content-addressed result store, so repeated or overlapping
// verification requests never pay for the same count twice.
//
// Usage:
//
//	vacsem-serve -addr localhost:8080
//	vacsem-serve -addr :0 -snapshot /var/lib/vacsem/store.json
//	vacsem-serve -job-workers 2 -queue 128 -max-timelimit 5m
//
// API (see internal/serve):
//
//	POST /v1/verify            submit a job; 202 + {"job_id": ...},
//	                           429 when the queue is full
//	GET  /v1/jobs/{id}         status + result
//	GET  /v1/jobs/{id}/events  per-job live progress (NDJSON/SSE)
//	GET  /v1/store             store statistics
//	GET  /metrics              Prometheus exposition (includes the
//	                           store.* and serve.* counters)
//	GET  /debug/...            live introspection (progress stream,
//	                           flight recorder, pprof)
//
// -snapshot FILE persists the store across restarts: the file is
// loaded (if present) at startup and written atomically on graceful
// shutdown, so a restarted server answers known requests store-warm.
// SIGINT/SIGTERM shut down gracefully: new submits are refused, queued
// and in-flight jobs drain (bounded by -drain-timeout), and the
// snapshot is written before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vacsem/internal/obs"
	"vacsem/internal/serve"
	"vacsem/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address (host:port; use :0 for an ephemeral port)")
		workers      = flag.Int("workers", 0, "engine workers per job (0 = one per CPU)")
		jobWorkers   = flag.Int("job-workers", 1, "jobs run concurrently (1 = strict FIFO)")
		queueDepth   = flag.Int("queue", 64, "queued-job cap; submits beyond it get 429")
		maxJobs      = flag.Int("max-jobs", 256, "finished jobs retained for status queries")
		defLimit     = flag.Duration("default-timelimit", 0, "time limit for jobs that request none (0 = unlimited)")
		maxLimit     = flag.Duration("max-timelimit", 0, "hard cap on any job's time limit (0 = uncapped)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight jobs")
		snapshot     = flag.String("snapshot", "", "store snapshot file: loaded at startup when present, written on graceful shutdown")
		maxCones     = flag.Int("store-max-cones", 0, "cone-tier entry bound (0 = default)")
		maxComps     = flag.Int("store-max-components", 0, "component-tier entry bound (0 = default)")
		maxCompBytes = flag.Int64("store-max-component-bytes", 0, "component-tier approximate byte bound (0 = none)")
		flightMS     = flag.Int("flight-interval", 250, "flight recorder sampling interval in ms (0 disables)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "vacsem-serve: unexpected arguments %v\n", flag.Args())
		return 2
	}

	st := store.New(store.Config{
		MaxCones:          *maxCones,
		MaxComponents:     *maxComps,
		MaxComponentBytes: *maxCompBytes,
	})
	if *snapshot != "" {
		switch err := st.LoadFile(*snapshot); {
		case err == nil:
			s := st.Stats()
			fmt.Printf("loaded store snapshot %s (%d cones, %d components)\n",
				*snapshot, s.Cones.Entries, s.Components.Entries)
		case os.IsNotExist(err):
			// First run: nothing to load, the file appears on shutdown.
		default:
			fmt.Fprintf(os.Stderr, "vacsem-serve: load snapshot: %v\n", err)
			return 1
		}
	}

	// The flight recorder feeds /debug/vacsem/runs and the per-run
	// time-series; it observes only, so serving is identical without it.
	if *flightMS > 0 {
		rec := obs.NewRecorder(obs.Default, time.Duration(*flightMS)*time.Millisecond, nil)
		rec.Start()
		obs.SetRecorder(rec)
		defer func() {
			obs.SetRecorder(nil)
			rec.Close()
		}()
	}

	srv := serve.New(serve.Config{
		Store:            st,
		Workers:          *workers,
		JobWorkers:       *jobWorkers,
		QueueDepth:       *queueDepth,
		MaxJobs:          *maxJobs,
		DefaultTimeLimit: *defLimit,
		MaxTimeLimit:     *maxLimit,
		SnapshotPath:     *snapshot,
	})
	httpSrv, err := serve.Start(*addr, srv)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vacsem-serve: %v\n", err)
		return 1
	}
	// The smoke scripts parse this exact line for the bound port.
	fmt.Printf("listening on %s\n", httpSrv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down: draining jobs")
	signal.Stop(sig)

	// Stop the listener first (refuses new connections), then drain the
	// scheduler and snapshot the store.
	httpSrv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vacsem-serve: shutdown: %v\n", err)
		return 1
	}
	if *snapshot != "" {
		fmt.Printf("store snapshot written to %s\n", *snapshot)
	}
	return 0
}
