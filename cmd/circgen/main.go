// Command circgen generates benchmark circuits (the paper's Table III
// suite plus parametric adders/multipliers) and, optionally, approximate
// versions of them, writing BLIF or ASCII AIGER files.
//
// Usage:
//
//	circgen -name adder32 -o adder32.blif
//	circgen -name mult8 -format aag -o mult8.aag
//	circgen -name adder16 -approx 5 -budget 0.01 -o bench/adder16
//	circgen -suite -o bench/          # the whole Table III suite
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vacsem/internal/aiger"
	"vacsem/internal/als"
	"vacsem/internal/blif"
	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/verilog"
)

func main() {
	var (
		name   = flag.String("name", "", "benchmark name (adderN, multN, or a Table III name)")
		out    = flag.String("o", "", "output file, or directory with -suite/-approx")
		format = flag.String("format", "blif", "output format: blif, aag or v (Verilog)")
		suite  = flag.Bool("suite", false, "generate the whole Table III suite into -o dir")
		approx = flag.Int("approx", 0, "also generate N approximate versions")
		budget = flag.Float64("budget", 0.01, "error-rate budget for approximate versions")
		seed   = flag.Int64("seed", 1, "base seed for approximate generation")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "circgen: -o is required")
		os.Exit(2)
	}
	ext := "." + *format
	if *format != "blif" && *format != "aag" && *format != "v" {
		fmt.Fprintf(os.Stderr, "circgen: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *suite {
		fail(os.MkdirAll(*out, 0o755))
		for _, b := range gen.Suite() {
			c := b.Build()
			path := filepath.Join(*out, b.Name+ext)
			fail(writeFile(path, c, *format))
			fmt.Printf("wrote %s (%d PI, %d PO, %d nodes)\n",
				path, c.NumInputs(), c.NumOutputs(), c.NumGates())
		}
		return
	}

	if *name == "" {
		fmt.Fprintln(os.Stderr, "circgen: -name or -suite is required")
		os.Exit(2)
	}
	c, err := gen.ByName(*name)
	fail(err)

	if *approx > 0 {
		fail(os.MkdirAll(*out, 0o755))
		exactPath := filepath.Join(*out, *name+ext)
		fail(writeFile(exactPath, c, *format))
		fmt.Printf("wrote %s\n", exactPath)
		for i := 0; i < *approx; i++ {
			a := als.Approximate(c, als.Config{
				Seed:         *seed + int64(i)*7919,
				TargetER:     *budget,
				RequireError: true,
			})
			path := filepath.Join(*out, fmt.Sprintf("%s_apx%d%s", *name, i, ext))
			fail(writeFile(path, a, *format))
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	fail(writeFile(*out, c, *format))
	fmt.Printf("wrote %s (%d PI, %d PO, %d nodes)\n",
		*out, c.NumInputs(), c.NumOutputs(), c.NumGates())
}

func writeFile(path string, c *circuit.Circuit, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "aag":
		return aiger.Write(f, c)
	case "v":
		return verilog.Write(f, c)
	default:
		return blif.Write(f, c)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "circgen:", err)
		os.Exit(1)
	}
}
