// Command vacsem-bench regenerates the paper's experimental tables:
//
//	Table III — benchmark inventory (#PI / #PO / #AIG nodes)
//	Table IV  — ER of approximate adders & multipliers, three methods
//	Table V   — MED of approximate adders & multipliers, three methods
//	Table VI  — ER of EPFL & BACS circuits, VACSEM vs the DPLL baseline
//
// -table multi additionally benchmarks the multi-metric session mode:
// {ER, MED, MHD} of each pair verified in one shared-base, deduplicated
// run, against the sum of the three standalone runs.
//
// -table approx compares the (ε, δ) approximate-counting backend with
// exact VACSEM on the adder/multiplier suite: estimates are checked
// against the exact values' (1+ε) band and both runs land in the JSON
// report (records carry epsilon/delta, so approximate and exact values
// stay distinguishable). -epsilon, -delta and -count-seed tune it;
// -backend restricts any table's method list to one backend.
//
// -table serve benchmarks the verification service's cross-request
// store end to end: a real vacsem-serve instance is started on an
// ephemeral port, each benchmark's {ER, MED} job is submitted cold and
// then warm over HTTP, the server is restarted from its shutdown
// snapshot, and the job runs once more — warm runs must return
// bit-identical values while solving nothing.
//
// The default suite is scaled down so a complete run finishes in minutes
// (the counter is pure Go); -full restores the paper's circuit sizes.
//
// Besides the text tables on stdout, every run that executes at least
// one verification writes a machine-readable JSON report with one
// record per individual run — including per-sub-miter wall times, which
// the geomean tables aggregate away — plus the end-of-run metric
// totals. The default path is BENCH_<timestamp>.json in the current
// directory, next to the table output; -report FILE overrides it and
// -report none disables it.
//
// By default every verification run is flight-recorded: a background
// sampler snapshots the solver counters every -flight-interval, and the
// resulting per-run time-series land in the JSON report's records
// (timeseries field). -introspect ADDR additionally serves the live
// introspection endpoints (/metrics, /debug/vacsem/progress,
// /debug/vacsem/runs, /debug/pprof) while the suite runs.
//
// -diff OLD.json NEW.json switches to the regression gate: the two
// reports are compared run-by-run (matched by bench, metric, method and
// version) with tolerance bands (-diff-tol for wall time,
// -diff-min-seconds for the noise floor), a delta table is printed, and
// the exit status is non-zero when any run regressed — exact counts
// changing, completed runs now timing out or vanishing, wall time or
// kernel throughput outside its band.
//
// Usage:
//
//	vacsem-bench -table all
//	vacsem-bench -table 4 -versions 10 -timelimit 5m
//	vacsem-bench -table 6 -full
//	vacsem-bench -table 4 -trace run.jsonl -report table4.json
//	vacsem-bench -table 4 -introspect localhost:6061
//	vacsem-bench -diff BENCH_old.json BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vacsem/internal/bench"
	"vacsem/internal/core"
	"vacsem/internal/obs"
	"vacsem/internal/obs/expo"
)

func main() {
	os.Exit(run())
}

func run() int {
	table := flag.String("table", "all", "table to regenerate: 3, 4, 5, 6, dd, multi, approx, serve or all")
	backendName := flag.String("backend", "", "restrict table runs to one backend (vacsem, dpll, enum, bdd, approx)")
	epsilon := flag.Float64("epsilon", 0, "approx backend: multiplicative tolerance ε (0 = default 0.8)")
	delta := flag.Float64("delta", 0, "approx backend: failure probability δ (0 = default 0.2)")
	countSeed := flag.Int64("count-seed", 0, "seed for the approx backend's XOR sampling (reproducible runs)")
	hashDensity := flag.Float64("hash-density", 0, "approx backend: hash-row density in (0, 0.5] (0 = automatic sparse schedule; 0.5 = classical dense rows)")
	minSupport := flag.Bool("min-support", true, "approx backend: shrink the sampling set by independent-support minimization before probing")
	full := flag.Bool("full", false, "use the paper's full-size circuits (slow)")
	versions := flag.Int("versions", 0, "approximate versions per benchmark (default 3, 10 with -full)")
	timeLimit := flag.Duration("timelimit", 0, "per-verification time limit (default 30s, 4h with -full)")
	workers := flag.Int("workers", 1, "concurrent sub-miter solvers per run (0 = one per CPU; 1 reproduces the paper's single-thread timings)")
	simWorkers := flag.Int("sim-workers", 1, "goroutines for exhaustive simulation block enumeration (0 = one per CPU; 1 keeps single-thread timings comparable)")
	bddReorder := flag.Bool("bdd-reorder", false, "enable dynamic variable reordering (window sifting) in the bdd method")
	sharedCache := flag.Bool("shared-cache", true, "share one component-count cache across each run's sub-miter solvers (counts are identical either way)")
	report := flag.String("report", "auto", "JSON report path; auto = BENCH_<timestamp>.json, none = disabled")
	tracePath := flag.String("trace", "", "write span/event trace (JSON lines) to this file")
	metricsFmt := flag.String("obs-metrics", "", "print end-of-run metrics to stderr: table or json")
	pprofAddr := flag.String("pprof", "", "serve live net/http/pprof on this address (e.g. localhost:6060)")
	introspect := flag.String("introspect", "", "serve the live introspection server on this address: /metrics, /debug/vacsem/progress, /debug/vacsem/runs, /debug/pprof (may equal -pprof to share one listener)")
	flightIvl := flag.Duration("flight-interval", obs.DefaultFlightInterval, "flight-recorder sampling interval (runs' time-series land in the JSON report; negative = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	diffMode := flag.Bool("diff", false, "compare two bench reports (args: OLD.json NEW.json); exit non-zero on regression")
	diffTol := flag.Float64("diff-tol", 0, "-diff: allowed wall-time ratio new/old (0 = default 1.25)")
	diffMinSeconds := flag.Float64("diff-min-seconds", 0, "-diff: noise floor below which runs are not time-compared (0 = default 0.05)")
	flag.Parse()

	if *diffMode {
		return runDiff(flag.Args(), *diffTol, *diffMinSeconds)
	}

	stop, err := expo.Setup(expo.CLIConfig{
		TracePath:      *tracePath,
		CPUProfile:     *cpuProfile,
		MemProfile:     *memProfile,
		PprofAddr:      *pprofAddr,
		IntrospectAddr: *introspect,
		FlightInterval: *flightIvl,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
		return 1
	}
	exitCode := 0
	defer func() {
		if err := stop(); err != nil {
			fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
		}
	}()

	cfg := bench.Config{
		Full: *full, Versions: *versions, TimeLimit: *timeLimit,
		Workers: *workers, SimWorkers: *simWorkers, NoSharedCache: !*sharedCache,
		BDDReorder: *bddReorder,
		Epsilon:    *epsilon, Delta: *delta, Seed: *countSeed,
		HashDensity: *hashDensity, NoSupportMin: !*minSupport,
	}
	if *backendName != "" {
		m, err := core.MethodByName(*backendName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
			return 2
		}
		cfg.Methods = []core.Method{m}
	}
	rep := bench.NewReport(cfg, *table, time.Now())
	cfg.OnRun = rep.Add
	cfg.OnSession = rep.AddSession
	cfg.OnServe = rep.AddServe

	want := func(t string) bool { return *table == "all" || *table == t }
	ran := false

	if want("3") {
		ran = true
		bench.WriteTable3(os.Stdout)
		fmt.Println()
	}
	if want("4") {
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunTable(specs, bench.ER, cfg)
		bench.WriteTable(os.Stdout, "Table IV: verifying ERs of adders and multipliers", rows, cfg)
		fmt.Println()
	}
	if want("5") {
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunTable(specs, bench.MED, cfg)
		bench.WriteTable(os.Stdout, "Table V: verifying MEDs of adders and multipliers", rows, cfg)
		fmt.Println()
	}
	if want("dd") {
		ran = true
		bench.WriteDDScalability(os.Stdout, cfg)
		fmt.Println()
	}
	if want("multi") {
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunMulti(specs, cfg)
		bench.WriteMultiTable(os.Stdout, rows, cfg)
		fmt.Println()
	}
	if *table == "serve" { // not part of -table all: it reruns the suite three times
		ran = true
		specs := bench.ServeSpecs(cfg)
		recs := bench.RunServeTable(specs, cfg)
		bench.WriteServeTable(os.Stdout, recs, cfg)
		fmt.Println()
	}
	if *table == "approx" { // not part of -table all: it reruns the suite twice
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunApproxTable(specs, bench.ER, cfg)
		bench.WriteApproxTable(os.Stdout, rows, cfg)
		fmt.Println()
		// The scaling rows: multiplier sizes the exact reference cannot
		// reach, estimated with the sparse family and the dense ablation.
		scale := bench.RunApproxScaleTable(bench.ApproxScaleSpecs(cfg), cfg)
		bench.WriteApproxScaleTable(os.Stdout, scale, cfg)
		fmt.Println()
	}
	if want("6") {
		ran = true
		// Table VI compares VACSEM against the DPLL baseline only.
		cfg6 := cfg
		cfg6.Methods = []core.Method{core.MethodVACSEM, core.MethodDPLL}
		specs := bench.EPFLBACSSpecs(cfg6)
		rows := bench.RunTable(specs, bench.ER, cfg6)
		writeTable6(rows, cfg6)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown -table %q (want 3, 4, 5, 6, dd, multi, approx, serve or all)\n", *table)
		return 2
	}

	if len(rep.Runs)+len(rep.Sessions)+len(rep.Serves) > 0 && *report != "none" {
		path := *report
		if path == "auto" {
			path = bench.DefaultReportPath(time.Now())
		}
		rep.AttachMetrics()
		if err := writeReport(rep, path); err != nil {
			fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
			exitCode = 1
		} else {
			fmt.Fprintf(os.Stderr, "report written to %s (%d runs, %d sessions, %d serves)\n",
				path, len(rep.Runs), len(rep.Sessions), len(rep.Serves))
		}
	}
	if *metricsFmt != "" {
		if err := obs.WriteMetrics(os.Stderr, *metricsFmt); err != nil {
			fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
			exitCode = 1
		}
	}
	return exitCode
}

// runDiff is the -diff mode: load two reports, print the delta table,
// and gate on regressions.
func runDiff(args []string, tol, minSeconds float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "vacsem-bench -diff: want exactly two args: OLD.json NEW.json")
		return 2
	}
	oldRep, err := bench.LoadReport(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
		return 2
	}
	newRep, err := bench.LoadReport(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vacsem-bench:", err)
		return 2
	}
	d := bench.Diff(oldRep, newRep, bench.DiffOptions{TimeTol: tol, MinSeconds: minSeconds})
	d.WriteTable(os.Stdout)
	if d.HasRegressions() {
		fmt.Fprintf(os.Stderr, "vacsem-bench -diff: %d regression(s) against %s\n",
			len(d.Regressions), args[0])
		return 1
	}
	return 0
}

func writeReport(rep *bench.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTable6(rows []bench.Row, cfg bench.Config) {
	limit := cfg.TimeLimit
	if limit == 0 {
		limit = 30 * time.Second
		if cfg.Full {
			limit = 4 * time.Hour
		}
	}
	fmt.Printf("Table VI: verifying ERs of EPFL and BACS circuits%s\n",
		map[bool]string{true: " (full-size)", false: " (scaled)"}[cfg.Full])
	fmt.Printf("%-11s %14s %16s\n", "Name", "VACSEM/s", "Speedup vs DPLL")
	for _, r := range rows {
		sp := r.Speedup(core.MethodDPLL, limit)
		if d := r.Cells[core.MethodDPLL]; d.TimedOut || d.Infeasible {
			sp = "N/A (" + sp + ")"
		}
		fmt.Printf("%-11s %14s %16s\n", r.Name,
			r.Cells[core.MethodVACSEM].Render(limit), strings.TrimSpace(sp))
	}
}
