// Command vacsem-bench regenerates the paper's experimental tables:
//
//	Table III — benchmark inventory (#PI / #PO / #AIG nodes)
//	Table IV  — ER of approximate adders & multipliers, three methods
//	Table V   — MED of approximate adders & multipliers, three methods
//	Table VI  — ER of EPFL & BACS circuits, VACSEM vs the DPLL baseline
//
// The default suite is scaled down so a complete run finishes in minutes
// (the counter is pure Go); -full restores the paper's circuit sizes.
//
// Usage:
//
//	vacsem-bench -table all
//	vacsem-bench -table 4 -versions 10 -timelimit 5m
//	vacsem-bench -table 6 -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vacsem/internal/bench"
	"vacsem/internal/core"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: 3, 4, 5, 6, dd or all")
	full := flag.Bool("full", false, "use the paper's full-size circuits (slow)")
	versions := flag.Int("versions", 0, "approximate versions per benchmark (default 3, 10 with -full)")
	timeLimit := flag.Duration("timelimit", 0, "per-verification time limit (default 30s, 4h with -full)")
	workers := flag.Int("workers", 1, "concurrent sub-miter solvers per run (0 = one per CPU; 1 reproduces the paper's single-thread timings)")
	flag.Parse()

	cfg := bench.Config{Full: *full, Versions: *versions, TimeLimit: *timeLimit, Workers: *workers}
	want := func(t string) bool { return *table == "all" || *table == t }
	ran := false

	if want("3") {
		ran = true
		bench.WriteTable3(os.Stdout)
		fmt.Println()
	}
	if want("4") {
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunTable(specs, bench.ER, cfg)
		bench.WriteTable(os.Stdout, "Table IV: verifying ERs of adders and multipliers", rows, cfg)
		fmt.Println()
	}
	if want("5") {
		ran = true
		specs := bench.AdderMultSpecs(cfg)
		rows := bench.RunTable(specs, bench.MED, cfg)
		bench.WriteTable(os.Stdout, "Table V: verifying MEDs of adders and multipliers", rows, cfg)
		fmt.Println()
	}
	if want("dd") {
		ran = true
		bench.WriteDDScalability(os.Stdout, cfg)
		fmt.Println()
	}
	if want("6") {
		ran = true
		// Table VI compares VACSEM against the DPLL baseline only.
		cfg6 := cfg
		cfg6.Methods = []core.Method{core.MethodVACSEM, core.MethodDPLL}
		specs := bench.EPFLBACSSpecs(cfg6)
		rows := bench.RunTable(specs, bench.ER, cfg6)
		writeTable6(rows, cfg6)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown -table %q (want 3, 4, 5, 6, dd or all)\n", *table)
		os.Exit(2)
	}
}

func writeTable6(rows []bench.Row, cfg bench.Config) {
	limit := cfg.TimeLimit
	if limit == 0 {
		limit = 30 * time.Second
		if cfg.Full {
			limit = 4 * time.Hour
		}
	}
	fmt.Printf("Table VI: verifying ERs of EPFL and BACS circuits%s\n",
		map[bool]string{true: " (full-size)", false: " (scaled)"}[cfg.Full])
	fmt.Printf("%-11s %14s %16s\n", "Name", "VACSEM/s", "Speedup vs DPLL")
	for _, r := range rows {
		sp := r.Speedup(core.MethodDPLL, limit)
		if d := r.Cells[core.MethodDPLL]; d.TimedOut || d.Infeasible {
			sp = "N/A (" + sp + ")"
		}
		fmt.Printf("%-11s %14s %16s\n", r.Name,
			r.Cells[core.MethodVACSEM].Render(limit), strings.TrimSpace(sp))
	}
}
