package vacsem

// Benchmark harness: one testing.B family per table/figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out (simulation hook, density threshold alpha,
// component cache, synthesis step). These use small fixed workloads so
// `go test -bench=.` terminates quickly; the full parameter sweeps live
// in cmd/vacsem-bench.

import (
	"fmt"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/bench"
	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/core"
	"vacsem/internal/counter"
	"vacsem/internal/gen"
	"vacsem/internal/miter"
	"vacsem/internal/sim"
	"vacsem/internal/synth"
)

// verifyBench runs one verification per iteration.
func verifyBench(b *testing.B, metric bench.Metric, exact, approx *circuit.Circuit, m core.Method) {
	b.Helper()
	opt := core.Options{Method: m, TimeLimit: 5 * time.Minute}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if metric == bench.MED {
			_, err = core.VerifyMED(exact, approx, opt)
		} else {
			_, err = core.VerifyER(exact, approx, opt)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Inventory regenerates the Table III inventory (circuit
// construction + AIG conversion + node counting).
func BenchmarkTable3Inventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range gen.Suite() {
			c := bm.Build()
			aig := synth.ToAIG(c)
			if synth.AndCount(aig) == 0 && bm.Name != "router" {
				b.Fatalf("%s: empty AIG", bm.Name)
			}
		}
	}
}

// BenchmarkTable4 regenerates Table IV rows (ER of adders/multipliers)
// for representative scaled benchmarks and all three methods.
func BenchmarkTable4(b *testing.B) {
	type work struct {
		name   string
		exact  *circuit.Circuit
		approx *circuit.Circuit
	}
	works := []work{
		{"adder16", gen.RippleCarryAdder(16), als.LowerORAdder(16, 4)},
		{"adder32", gen.RippleCarryAdder(32), als.LowerORAdder(32, 4)},
		{"mult6", gen.ArrayMultiplier(6), als.TruncatedMultiplier(6, 3)},
		{"mult8", gen.ArrayMultiplier(8), als.TruncatedMultiplier(8, 4)},
	}
	for _, w := range works {
		for _, m := range []core.Method{core.MethodVACSEM, core.MethodDPLL, core.MethodEnum} {
			if m == core.MethodEnum && w.exact.NumInputs() > 24 {
				continue // paper: ">14400 s" for wide adders
			}
			if m == core.MethodDPLL && w.exact.NumInputs() >= 16 && w.name == "mult8" {
				continue // paper: GANAK times out on dense multipliers
			}
			b.Run(fmt.Sprintf("%s/%v", w.name, m), func(b *testing.B) {
				verifyBench(b, bench.ER, w.exact, w.approx, m)
			})
		}
	}
}

// BenchmarkTable5 regenerates Table V rows (MED of adders/multipliers).
func BenchmarkTable5(b *testing.B) {
	type work struct {
		name   string
		exact  *circuit.Circuit
		approx *circuit.Circuit
	}
	works := []work{
		{"adder8", gen.RippleCarryAdder(8), als.LowerORAdder(8, 3)},
		{"adder16", gen.RippleCarryAdder(16), als.TruncatedAdder(16, 2)},
		{"mult6", gen.ArrayMultiplier(6), als.TruncatedMultiplier(6, 3)},
		{"mult8", gen.ArrayMultiplier(8), als.TruncatedMultiplier(8, 4)},
	}
	for _, w := range works {
		for _, m := range []core.Method{core.MethodVACSEM, core.MethodEnum} {
			if m == core.MethodEnum && w.exact.NumInputs() > 24 {
				continue // 2^32 patterns per iteration is the paper's ">14400 s" row
			}
			b.Run(fmt.Sprintf("%s/%v", w.name, m), func(b *testing.B) {
				verifyBench(b, bench.MED, w.exact, w.approx, m)
			})
		}
	}
}

// BenchmarkTable6 regenerates Table VI rows (ER of EPFL/BACS circuits,
// VACSEM vs the DPLL baseline).
func BenchmarkTable6(b *testing.B) {
	entries := []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"ctrl", func() *circuit.Circuit { return gen.ControlLogic("ctrl", 7, 26, 6, 1001) }},
		{"cavlc", func() *circuit.Circuit { return gen.ControlLogic("cavlc", 10, 11, 12, 1002) }},
		{"int2float", func() *circuit.Circuit { return gen.Int2Float(11, 3, 4) }},
		{"absdiff", func() *circuit.Circuit { return gen.AbsDiff(8) }},
		{"mac", func() *circuit.Circuit { return gen.MAC(4) }},
		{"router", func() *circuit.Circuit { return gen.Router(8, true) }},
	}
	for _, e := range entries {
		exact := e.build()
		approx := als.Approximate(exact, als.Config{Seed: 9, TargetER: 0.01, RequireError: true})
		for _, m := range []core.Method{core.MethodVACSEM, core.MethodDPLL} {
			b.Run(fmt.Sprintf("%s/%v", e.name, m), func(b *testing.B) {
				verifyBench(b, bench.ER, exact, approx, m)
			})
		}
	}
}

// BenchmarkAblationAlpha sweeps the controller's density threshold
// (Eq. 5): alpha=0 behaves like alpha=2 (the default), tiny alpha
// disables simulation in practice, huge alpha forces it.
func BenchmarkAblationAlpha(b *testing.B) {
	// mult6 keeps even the alpha->0 (simulation-starved, DPLL-like)
	// configuration inside a few seconds per iteration.
	exact := gen.ArrayMultiplier(6)
	approx := als.TruncatedMultiplier(6, 3)
	for _, alpha := range []float64{0.01, 0.5, 2, 8, 64} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			opt := core.Options{Method: core.MethodVACSEM, Alpha: alpha, TimeLimit: 5 * time.Minute}
			for i := 0; i < b.N; i++ {
				if _, err := core.VerifyER(exact, approx, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCache compares component caching on/off. The
// workload is deliberately small: without the cache, adder miters blow
// up exponentially (that is the point of the ablation).
func BenchmarkAblationCache(b *testing.B) {
	exact := gen.RippleCarryAdder(10)
	approx := als.LowerORAdder(10, 3)
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disableCache=%v", disable), func(b *testing.B) {
			opt := core.Options{Method: core.MethodVACSEM, DisableCache: disable, TimeLimit: 5 * time.Minute}
			for i := 0; i < b.N; i++ {
				if _, err := core.VerifyER(exact, approx, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSharedCache compares the run-wide shared component
// cache against private per-sub-miter caches on a multi-output MED
// workload (the sub-miters share most of their logic, which is where
// cross-sub-miter hits come from). Counts are identical either way.
func BenchmarkAblationSharedCache(b *testing.B) {
	exact := gen.RippleCarryAdder(16)
	approx := als.LowerORAdder(16, 5)
	for _, disable := range []bool{false, true} {
		b.Run(fmt.Sprintf("disableSharedCache=%v", disable), func(b *testing.B) {
			opt := core.Options{
				Method: core.MethodVACSEM, DisableSharedCache: disable,
				Workers: 0, TimeLimit: 5 * time.Minute,
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.VerifyMED(exact, approx, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEngine toggles the search-engine features (implicit
// BCP, clause learning) on the adder-MED workload where they matter.
func BenchmarkAblationEngine(b *testing.B) {
	exact := gen.RippleCarryAdder(12)
	approx := als.LowerORAdder(12, 4)
	cases := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"noIBCP", core.Options{DisableIBCP: true}},
		{"noLearning", core.Options{DisableLearning: true}},
		{"noIBCPnoLearning", core.Options{DisableIBCP: true, DisableLearning: true}},
	}
	for _, c := range cases {
		c.opt.Method = core.MethodVACSEM
		c.opt.TimeLimit = 5 * time.Minute
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.VerifyMED(exact, approx, c.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSynth compares with/without the Phase 1 synthesis
// step (the compress2rs role).
func BenchmarkAblationSynth(b *testing.B) {
	exact := gen.ArrayMultiplier(6)
	approx := als.TruncatedMultiplier(6, 3)
	for _, noSynth := range []bool{false, true} {
		b.Run(fmt.Sprintf("noSynth=%v", noSynth), func(b *testing.B) {
			opt := core.Options{Method: core.MethodVACSEM, NoSynth: noSynth, TimeLimit: 5 * time.Minute}
			for i := 0; i < b.N; i++ {
				if _, err := core.VerifyER(exact, approx, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2Example times the paper's motivating example end to end.
func BenchmarkFig2Example(b *testing.B) {
	c := circuit.New("fig2")
	in := make([]int, 11)
	for i := range in {
		in[i] = c.AddInput(fmt.Sprintf("i%d", i))
	}
	n11 := c.AddGate(circuit.And, in[3], in[4])
	n12 := c.AddGate(circuit.And, in[2], n11)
	n13 := c.AddGate(circuit.And, in[1], n12)
	n14 := c.AddGate(circuit.Or, in[0], n13)
	n15 := c.AddGate(circuit.Xor, in[5], in[6])
	n16 := c.AddGate(circuit.Xor, n15, in[7])
	n17 := c.AddGate(circuit.Xor, n16, in[8])
	n18 := c.AddGate(circuit.Xor, in[9], in[10])
	n19 := c.AddGate(circuit.Xor, n17, n18)
	n20 := c.AddGate(circuit.And, n14, n19)
	c.AddOutput(n20, "n20")
	f, err := cnf.Encode(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := counter.New(f, counter.Config{EnableSim: true})
		n, err := s.Count()
		if err != nil {
			b.Fatal(err)
		}
		if n.Int64() != 544 {
			b.Fatalf("count = %v", n)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw word-parallel simulation
// (patterns/second scale on mult8's ER miter).
func BenchmarkSimulatorThroughput(b *testing.B) {
	exact := gen.ArrayMultiplier(8)
	approx := als.TruncatedMultiplier(8, 4)
	m, err := miter.ER(exact, approx)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(m)
	in := make([]uint64, m.NumInputs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range in {
			in[j] = sim.InputWord(j, uint64(i))
		}
		eng.Run(in)
	}
	b.SetBytes(64) // 64 patterns per iteration
}

// BenchmarkCNFEncode measures Phase 1 throughput on a mult12 sub-miter.
func BenchmarkCNFEncode(b *testing.B) {
	exact := gen.ArrayMultiplier(12)
	approx := als.TruncatedMultiplier(12, 6)
	m, err := miter.ER(exact, approx)
	if err != nil {
		b.Fatal(err)
	}
	m = synth.Compress(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cnf.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompress measures the synthesis pipeline on a mult10 miter.
func BenchmarkCompress(b *testing.B) {
	exact := gen.ArrayMultiplier(10)
	approx := als.TruncatedMultiplier(10, 5)
	m, err := miter.ER(exact, approx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		synth.Compress(m)
	}
}
