// Traced verification: run a MED check of an approximate adder with the
// observability layer enabled, then parse the emitted JSONL trace and
// print the span tree — run, backend, and one sub-miter span per
// deviation bit, each with its wall time and solver statistics.
//
// The example doubles as an executable contract: it exits non-zero if
// the trace fails to parse, if any span is unbalanced, or if the
// per-sub-miter statistics in the trace do not sum to the
// Result.TotalStats the API reports. scripts/check.sh runs it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"vacsem"
)

// span is one reassembled span_start/span_end pair.
type span struct {
	id, parent uint64
	kind       string
	durUS      float64
	fields     map[string]any
	children   []*span
	ended      bool
}

func main() {
	exact := vacsem.RippleCarryAdder(8)
	approx := vacsem.LowerORAdder(8, 3)

	// Trace into a buffer; a real tool would hand NewTracer a file.
	var buf bytes.Buffer
	tr := vacsem.NewTracer(&buf)
	vacsem.SetTracer(tr)
	res, err := vacsem.VerifyMED(exact, approx, vacsem.Options{Workers: 4})
	vacsem.SetTracer(nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MED(%s, %s) = %s (%s)  in %v\n\n",
		exact.Name, approx.Name, res.Value.RatString(),
		approxFloat(res), res.Runtime.Round(time.Microsecond))

	spans, events := parseSpans(buf.Bytes())
	fmt.Printf("trace: %d events, %d spans\n", events, len(spans))
	roots := link(spans)
	for _, r := range roots {
		printTree(r, 0)
	}

	// Self-check: every span balanced, and the per-sub-miter decision
	// counts in the trace must sum to what the API reported.
	var decisions float64
	for _, s := range spans {
		if !s.ended {
			log.Fatalf("span %d (%s) never ended", s.id, s.kind)
		}
		if s.kind == "sub_miter" {
			if stats, ok := s.fields["stats"].(map[string]any); ok {
				decisions += num(stats["Decisions"])
			}
		}
	}
	if uint64(decisions) != res.TotalStats.Decisions {
		log.Fatalf("trace decisions %d != TotalStats.Decisions %d",
			uint64(decisions), res.TotalStats.Decisions)
	}
	fmt.Printf("\ntrace is consistent: %d decisions across sub-miter spans == TotalStats\n",
		res.TotalStats.Decisions)
}

func approxFloat(res *vacsem.Result) string {
	return fmt.Sprintf("~%.6g", res.Float())
}

// parseSpans decodes the JSONL stream and pairs span_start/span_end
// events by id, keeping the end event's fields (they carry the result).
func parseSpans(data []byte) (map[uint64]*span, int) {
	spans := map[uint64]*span{}
	events := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		events++
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			log.Fatalf("bad trace line: %v\n%s", err, line)
		}
		id := uint64(num(raw["id"]))
		switch raw["ev"] {
		case "span_start":
			spans[id] = &span{
				id:     id,
				parent: uint64(num(raw["parent"])),
				kind:   raw["span"].(string),
				fields: raw,
			}
		case "span_end":
			s, ok := spans[id]
			if !ok {
				log.Fatalf("span_end %d without span_start", id)
			}
			s.ended = true
			s.durUS = num(raw["dur_us"])
			for k, v := range raw {
				s.fields[k] = v
			}
		}
	}
	return spans, events
}

func link(spans map[uint64]*span) []*span {
	var roots []*span
	ids := make([]uint64, 0, len(spans))
	for id := range spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := spans[id]
		if p, ok := spans[s.parent]; ok {
			p.children = append(p.children, s)
		} else {
			roots = append(roots, s)
		}
	}
	return roots
}

func printTree(s *span, depth int) {
	indent := strings.Repeat("  ", depth)
	label := s.kind
	switch s.kind {
	case "run":
		label = fmt.Sprintf("run metric=%v backend=%v", s.fields["metric"], s.fields["backend"])
	case "backend":
		label = fmt.Sprintf("backend %v (%v subs, %v workers)",
			s.fields["backend"], s.fields["subs"], s.fields["workers"])
	case "sub_miter":
		stats, _ := s.fields["stats"].(map[string]any)
		label = fmt.Sprintf("sub_miter %v count=%v dec=%.0f sim=%.0f",
			s.fields["output"], s.fields["count"],
			num(stats["Decisions"]), num(stats["SimCalls"]))
	}
	fmt.Printf("%s%-60s %8.0f us\n", indent, label, s.durUS)
	for _, c := range s.children {
		printTree(c, depth+1)
	}
	if depth == 0 && len(s.children) == 0 {
		fmt.Fprintln(os.Stderr, "warning: root span has no children")
	}
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}
