// Multiplier MED + deviation distribution: verifies the mean error
// distance of truncated array multipliers (the paper's Table V workload
// class) and then sweeps a threshold comparator miter to obtain the
// exact complementary CDF of the deviation, P(|y - y'| > t) — the
// MACACO-style analysis, each point one model-counting call.
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"vacsem"
)

func main() {
	const n = 8
	exact := vacsem.ArrayMultiplier(n)

	fmt.Printf("MED of truncated %dx%d multipliers (exact values over all 2^%d patterns)\n\n", n, n, 2*n)
	fmt.Printf("%-4s %12s %14s %12s\n", "k", "ER", "MED", "runtime")
	// Workers: 0 solves the per-bit sub-miters of the MED miter on one
	// worker per CPU; the counts are identical to a sequential run.
	opt := vacsem.Options{Workers: 0}
	for k := 0; k <= 6; k++ {
		approx := vacsem.TruncatedMultiplier(n, k)
		start := time.Now()
		er, err := vacsem.VerifyER(exact, approx, opt)
		if err != nil {
			log.Fatal(err)
		}
		med, err := vacsem.VerifyMED(exact, approx, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %12.6g %14.6g %12v\n",
			k, er.Float(), med.Float(), time.Since(start).Round(time.Millisecond))
	}

	// Deviation distribution of one design point.
	approx := vacsem.TruncatedMultiplier(n, 5)
	fmt.Printf("\ndeviation distribution of the k=5 design: P(|y-y'| > t)\n\n")
	fmt.Printf("%-8s %14s %14s\n", "t", "P(dev>t)", "exact fraction")
	for _, t := range []int64{0, 1, 2, 4, 8, 16, 32, 64} {
		r, err := vacsem.VerifyThresholdProb(exact, approx, big.NewInt(t), vacsem.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14.6g %14s\n", t, r.Float(), r.Value.RatString())
	}
	fmt.Println("\nEach row is one #SAT call on a comparator miter; together they give")
	fmt.Println("the exact error CDF that sampling-based estimation can only approximate.")
}
