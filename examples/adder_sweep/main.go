// Adder design-space sweep: the error-tolerant-design story from the
// paper's introduction. An architect choosing how many low bits of a
// 24-bit adder to approximate needs *exact* error metrics for each
// candidate — estimates from sampling can be off by orders of magnitude
// at low error rates. This example sweeps the lower-OR adder (LOA) and
// the truncated adder across the approximation degree k and verifies
// ER, MED and mean Hamming distance formally for each point.
package main

import (
	"fmt"
	"log"
	"time"

	"vacsem"
)

const width = 16

func main() {
	exact := vacsem.RippleCarryAdder(width)

	fmt.Printf("design-space sweep of approximate %d-bit adders (formal, all 2^%d patterns)\n\n",
		width, 2*width)
	fmt.Printf("%-14s %-3s %12s %14s %10s %12s\n", "family", "k", "ER", "MED", "MHD", "runtime")

	for _, family := range []struct {
		name  string
		build func(k int) *vacsem.Circuit
	}{
		{"lower-OR", func(k int) *vacsem.Circuit { return vacsem.LowerORAdder(width, k) }},
		{"truncated", func(k int) *vacsem.Circuit { return truncated(k) }},
	} {
		for k := 0; k <= 6; k += 2 {
			approx := family.build(k)
			start := time.Now()
			er, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
			if err != nil {
				log.Fatal(err)
			}
			med, err := vacsem.VerifyMED(exact, approx, vacsem.Options{})
			if err != nil {
				log.Fatal(err)
			}
			mhd, err := vacsem.VerifyMHD(exact, approx, vacsem.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-3d %12.6g %14.6g %10.4g %12v\n",
				family.name, k, er.Float(), med.Float(), mhd.Float(),
				time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}
	fmt.Println("Reading the table: at equal k the lower-OR adder beats plain truncation")
	fmt.Println("on every metric (its a|b low bits and carry guess are right far more")
	fmt.Println("often than a constant 0), at the cost of k extra OR gates — the exact")
	fmt.Println("numbers above are what a sampling-based estimator can only approximate.")
}

// truncated builds the truncated adder through the public API: an
// approximate adder whose k low output bits are constant 0.
func truncated(k int) *vacsem.Circuit {
	c := vacsem.NewCircuit(fmt.Sprintf("trunc%d_%d", width, k))
	ins := make([]int, 2*width)
	for i := range ins {
		ins[i] = c.AddInput(fmt.Sprintf("x%d", i))
	}
	full := vacsem.RippleCarryAdder(width)
	outs := vacsem.AppendCircuit(c, full, ins)
	for j, o := range outs {
		if j < k {
			c.AddOutput(0, fmt.Sprintf("s%d", j)) // const0
		} else {
			c.AddOutput(o, fmt.Sprintf("s%d", j))
		}
	}
	return c
}
