// Custom average-error metric via a user-defined deviation miter.
//
// Section II-A of the paper notes that beyond ER and MED, "verifying
// other average error metrics can also be converted into #SAT problems
// similarly". This example builds such a metric from scratch with the
// public API: for an approximate absolute-difference unit, it verifies
//
//  1. the probability that the *parity* of the result is wrong (a metric
//     a checksum-protected datapath would care about), and
//  2. a weighted bit-flip cost, where a flip in output bit j costs 2^j
//     cents — built as a deviation miter whose outputs are the per-bit
//     XORs, verified with custom weights.
package main

import (
	"fmt"
	"log"
	"math/big"

	"vacsem"
)

func main() {
	exact, err := vacsem.BenchmarkByName("absdiff")
	if err != nil {
		log.Fatal(err)
	}
	approx := vacsem.Approximate(exact, vacsem.ALSConfig{
		Seed: 42, TargetER: 0.05, RequireError: true,
	})
	fmt.Printf("exact  : %s\napprox : %s\n\n", exact.Stat(), approx.Stat())

	// --- Metric 1: parity error probability ------------------------------
	// Miter: one output, XOR of the parities of both result words.
	m := vacsem.NewCircuit("parity_miter")
	ins := make([]int, exact.NumInputs())
	for i := range ins {
		ins[i] = m.AddInput(fmt.Sprintf("x%d", i))
	}
	ye := vacsem.AppendCircuit(m, exact, ins)
	ya := vacsem.AppendCircuit(m, approx, ins)
	par := func(bits []int) int {
		acc := bits[0]
		for _, b := range bits[1:] {
			acc = m.AddGate(vacsem.Xor, acc, b)
		}
		return acc
	}
	m.AddOutput(m.AddGate(vacsem.Xor, par(ye), par(ya)), "parity_err")

	r, err2 := vacsem.VerifyMiter("parity-error", m, []*big.Int{big.NewInt(1)}, vacsem.Options{})
	if err2 != nil {
		log.Fatal(err2)
	}
	fmt.Printf("P(parity wrong)      = %-10.6g (%s), runtime %v\n",
		r.Float(), r.Value.RatString(), r.Runtime)

	// --- Metric 2: weighted bit-flip cost --------------------------------
	// Miter: one output per bit position, weight 2^j.
	hd := vacsem.NewCircuit("flipcost_miter")
	ins2 := make([]int, exact.NumInputs())
	for i := range ins2 {
		ins2[i] = hd.AddInput(fmt.Sprintf("x%d", i))
	}
	ye2 := vacsem.AppendCircuit(hd, exact, ins2)
	ya2 := vacsem.AppendCircuit(hd, approx, ins2)
	weights := make([]*big.Int, len(ye2))
	for j := range ye2 {
		hd.AddOutput(hd.AddGate(vacsem.Xor, ye2[j], ya2[j]), fmt.Sprintf("flip%d", j))
		weights[j] = new(big.Int).Lsh(big.NewInt(1), uint(j))
	}
	r2, err := vacsem.VerifyMiter("flip-cost", hd, weights, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E[weighted flip cost] = %-10.6g (%s), runtime %v\n",
		r2.Float(), r2.Value.RatString(), r2.Runtime)

	// Cross-check both custom metrics against exhaustive enumeration.
	for name, miter := range map[string]*vacsem.Circuit{"parity": m, "flipcost": hd} {
		w := []*big.Int{big.NewInt(1)}
		if name == "flipcost" {
			w = weights
		}
		enum, err := vacsem.VerifyMiter(name, miter, w, vacsem.Options{Method: vacsem.MethodEnum})
		if err != nil {
			log.Fatal(err)
		}
		vac, err := vacsem.VerifyMiter(name, miter, w, vacsem.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cross-check %-9s: enum == vacsem: %v\n", name, enum.Value.Cmp(vac.Value) == 0)
	}
}
