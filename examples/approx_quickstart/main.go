// Approx quickstart: estimate the error rate of an approximate adder
// with the (ε, δ) approximate-counting backend and compare it against
// the exact VACSEM value. The estimate comes with the guarantee
//
//	Pr[ exact/(1+ε) <= estimate <= (1+ε)·exact ] >= 1-δ
//
// and a fixed -count-seed makes the XOR sampling — and therefore the
// estimate — reproducible.
//
// With -write DIR the program instead serializes the adder pair as
// BLIF files (adder8.blif, adder8_apx.blif) and exits; scripts/check.sh
// uses that to feed the vacsem CLI's approx smoke test.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"os"
	"path/filepath"
	"time"

	"vacsem"
)

func main() {
	write := flag.String("write", "", "write the adder pair as BLIF files into this directory and exit")
	flag.Parse()

	exact := vacsem.RippleCarryAdder(8)
	approx := vacsem.LowerORAdder(8, 3) // low 3 bits approximated

	if *write != "" {
		if err := writePair(*write, exact, approx); err != nil {
			log.Fatal(err)
		}
		return
	}

	ref, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: vacsem.MethodVACSEM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact   : ER = %s (%.6g) in %v\n",
		ref.Value.RatString(), ref.Float(), ref.Runtime.Round(time.Microsecond))

	// Tighter ε means a smaller tolerance band but a larger cell-size
	// pivot (more exact-counting work per probe); smaller δ means more
	// estimation rounds. The seed fixes the sampled parity constraints.
	est, err := vacsem.VerifyER(exact, approx, vacsem.Options{
		Method: vacsem.MethodApprox, Epsilon: 0.2, Delta: 0.1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approx  : ER = %s (%.6g) in %v\n",
		est.Value.RatString(), est.Float(), est.Runtime.Round(time.Microsecond))
	if est.Approx {
		fmt.Printf("guarantee: value ± ε (ε=%g) @ confidence %.4g (δ=%.4g)\n",
			est.Epsilon, est.Confidence, est.Delta)
	} else {
		fmt.Println("guarantee: exact (the count fit under the pivot)")
	}

	// The estimate must land inside the band — with probability 1-δ in
	// general, deterministically for this fixed seed.
	band := new(big.Rat).SetFloat64(1 + est.Epsilon)
	hi := new(big.Rat).Mul(ref.Value, band)
	lo := new(big.Rat).Mul(est.Value, band) // est*(1+ε) >= ref <=> est >= ref/(1+ε)
	if lo.Cmp(ref.Value) < 0 || est.Value.Cmp(hi) > 0 {
		log.Fatalf("estimate %s outside the (1+ε) band of %s",
			est.Value.RatString(), ref.Value.RatString())
	}
	fmt.Println("estimate lands inside the (1+ε) band of the exact value")
}

// writePair serializes the adder pair as BLIF files under dir.
func writePair(dir string, exact, approx *vacsem.Circuit) error {
	for _, c := range []struct {
		name string
		circ *vacsem.Circuit
	}{{"adder8.blif", exact}, {"adder8_apx.blif", approx}} {
		f, err := os.Create(filepath.Join(dir, c.name))
		if err != nil {
			return err
		}
		if err := vacsem.WriteBLIF(f, c.circ); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
