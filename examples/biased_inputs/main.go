// Non-uniform input distributions — the extension the paper lists as
// future work. Real workloads rarely exercise inputs uniformly: sensor
// values cluster near zero, sparse neural activations are mostly zero.
// This example verifies how the error of an approximate adder shifts
// when the operands' high bits are rarely set (small-operand workload),
// and how conditioning on a workload constraint changes the verdict.
package main

import (
	"fmt"
	"log"

	"vacsem"
)

const width = 10

func main() {
	exact := vacsem.RippleCarryAdder(width)
	approx := vacsem.LowerORAdder(width, 3)

	// Uniform baseline.
	er, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	med, err := vacsem.VerifyMED(exact, approx, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform inputs      : ER = %-10.6g MED = %.6g\n", er.Float(), med.Float())

	// Sparse workload: each low-half bit of both operands is 1 with
	// probability 1/8 only (e.g. mostly-small residuals), high half
	// uniform. The LOA's errors live exactly in the low bits, so this
	// workload shift changes the verdict substantially.
	biases := make([]vacsem.Bias, 2*width)
	for op := 0; op < 2; op++ {
		for j := 0; j < width; j++ {
			b := vacsem.UniformBias()
			if j < width/2 {
				b = vacsem.Bias{Num: 1, Bits: 3} // 1/8
			}
			biases[op*width+j] = b
		}
	}
	erB, err := vacsem.VerifyERBiased(exact, approx, biases, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	medB, err := vacsem.VerifyMEDBiased(exact, approx, biases, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse-low biased   : ER = %-10.6g MED = %.6g\n", erB.Float(), medB.Float())

	// Conditional verification: the datapath guarantees the operands'
	// low 3 bits are never both all-ones (no worst-case LOA pattern).
	cond := vacsem.NewCircuit("guard")
	ins := make([]int, 2*width)
	for i := range ins {
		ins[i] = cond.AddInput(fmt.Sprintf("x%d", i))
	}
	allOnesA := cond.AddGate(vacsem.And, ins[0], ins[1])
	allOnesA = cond.AddGate(vacsem.And, allOnesA, ins[2])
	allOnesB := cond.AddGate(vacsem.And, ins[width], ins[width+1])
	allOnesB = cond.AddGate(vacsem.And, allOnesB, ins[width+2])
	both := cond.AddGate(vacsem.And, allOnesA, allOnesB)
	cond.AddOutput(cond.AddGate(vacsem.Not, both), "ok")

	erC, err := vacsem.VerifyERConditional(exact, approx, cond, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	medC, err := vacsem.VerifyMEDConditional(exact, approx, cond, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guarded workload    : ER = %-10.6g MED = %.6g\n", erC.Float(), medC.Float())
	fmt.Println("\nAll three rows are exact (model-counted), not sampled estimates.")
}
