// Quickstart: formally verify the error rate and mean error distance of
// a classic approximate adder (the lower-OR adder, LOA) against the
// exact ripple-carry adder — the workload class of the paper's Table IV
// and V — using the three engines the paper compares.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"vacsem"
)

func main() {
	const width = 16 // 32 inputs: far beyond per-pattern enumeration comfort
	exact := vacsem.RippleCarryAdder(width)
	approx := vacsem.LowerORAdder(width, 4) // low 4 bits approximated

	fmt.Printf("exact  : %s\n", exact.Stat())
	fmt.Printf("approx : %s\n\n", approx.Stat())

	// The MED miter splits into one independent #SAT problem per
	// deviation bit; Workers solves them concurrently (results are
	// bit-identical to the sequential run), and Progress streams each
	// completion.
	progress := func(ev vacsem.ProgressEvent) {
		fmt.Printf("    [%d/%d] %s done in %v\n",
			ev.Done, ev.Total, ev.Output, ev.Runtime.Round(time.Microsecond))
	}
	for _, m := range []vacsem.Method{vacsem.MethodVACSEM, vacsem.MethodDPLL} {
		er, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: m})
		if err != nil {
			log.Fatalf("%v ER: %v", m, err)
		}
		opt := vacsem.Options{Method: m, Workers: runtime.GOMAXPROCS(0)}
		if m == vacsem.MethodVACSEM {
			opt.Progress = progress
		}
		med, err := vacsem.VerifyMED(exact, approx, opt)
		if err != nil {
			log.Fatalf("%v MED: %v", m, err)
		}
		fmt.Printf("[%v]\n", m)
		fmt.Printf("  ER  = %-12.6g (exact: %s)   in %v\n",
			er.Float(), er.Value.RatString(), er.Runtime.Round(time.Microsecond))
		fmt.Printf("  MED = %-12.6g (exact: %s)   in %v  (%d decisions, %d sim calls)\n\n",
			med.Float(), med.Value.RatString(), med.Runtime.Round(time.Microsecond),
			med.TotalStats.Decisions, med.TotalStats.SimCalls)
	}

	// Exhaustive enumeration is the ground-truth baseline while the
	// input space is still enumerable (2^32 here is already painful, so
	// demonstrate on a narrower adder).
	smallExact := vacsem.RippleCarryAdder(8)
	smallApprox := vacsem.LowerORAdder(8, 4)
	enum, err := vacsem.VerifyER(smallExact, smallApprox, vacsem.Options{Method: vacsem.MethodEnum})
	if err != nil {
		log.Fatal(err)
	}
	vac, err := vacsem.VerifyER(smallExact, smallApprox, vacsem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit cross-check: enum ER = %s, VACSEM ER = %s (equal: %v)\n",
		enum.Value.RatString(), vac.Value.RatString(), enum.Value.Cmp(vac.Value) == 0)
}
