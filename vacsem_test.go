package vacsem_test

// Integration tests of the public API: the flows a downstream adopter
// would write, cross-checked between engines and against closed-form
// expectations.

import (
	"bytes"
	"math/big"
	"testing"

	"vacsem"
)

func TestPublicQuickstartFlow(t *testing.T) {
	exact := vacsem.RippleCarryAdder(8)
	approx := vacsem.LowerORAdder(8, 3)
	er, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	enum, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: vacsem.MethodEnum})
	if err != nil {
		t.Fatal(err)
	}
	dpll, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: vacsem.MethodDPLL})
	if err != nil {
		t.Fatal(err)
	}
	if er.Value.Cmp(enum.Value) != 0 || er.Value.Cmp(dpll.Value) != 0 {
		t.Fatalf("engines disagree: %v %v %v", er.Value, dpll.Value, enum.Value)
	}
	if er.Value.Sign() <= 0 || er.Value.Cmp(big.NewRat(1, 1)) >= 0 {
		t.Errorf("LOA ER out of (0,1): %v", er.Value)
	}
}

func TestPublicWideAdderER(t *testing.T) {
	// The paper's headline scale: adders way beyond enumeration. A
	// truncated 64-bit adder (k=1): the result's bit0 is 0 while the
	// true bit0 is a0 XOR b0, and the carry into bit 1 is dropped when
	// a0&b0; exact ER is computable in closed form: error iff
	// (a0 XOR b0) OR (a0 AND b0) = a0 OR b0, so ER = 3/4.
	exact := vacsem.RippleCarryAdder(64)
	approx := truncatedAdder(t, 64, 1)
	r, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("64-bit truncated adder ER = %v, want 3/4", r.Value)
	}
	if r.NumInputs != 128 {
		t.Errorf("NumInputs = %d", r.NumInputs)
	}
}

// truncatedAdder builds, via the public API only, an n-bit adder whose
// low k output bits are 0 and whose carry chain starts at bit k.
func truncatedAdder(t *testing.T, n, k int) *vacsem.Circuit {
	t.Helper()
	c := vacsem.NewCircuit("trunc")
	ins := make([]int, 2*n)
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	full := vacsem.RippleCarryAdder(n - k)
	sub := make([]int, 2*(n-k))
	copy(sub, ins[k:n])
	copy(sub[n-k:], ins[n+k:])
	outs := vacsem.AppendCircuit(c, full, sub)
	for j := 0; j < k; j++ {
		c.AddOutput(0, "")
	}
	for _, o := range outs {
		c.AddOutput(o, "")
	}
	return c
}

func TestPublicMEDClosedForm(t *testing.T) {
	// Truncated k=1 adder: deviation = (a0 + b0), E = 1/4*0+1/2*1+1/4*2 = 1.
	exact := vacsem.RippleCarryAdder(16)
	approx := truncatedAdder(t, 16, 1)
	r, err := vacsem.VerifyMED(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("MED = %v, want 1", r.Value)
	}
}

func TestPublicMultiplierFlow(t *testing.T) {
	exact := vacsem.ArrayMultiplier(5)
	approx := vacsem.TruncatedMultiplier(5, 2)
	v, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: vacsem.MethodEnum})
	if err != nil {
		t.Fatal(err)
	}
	if v.Value.Cmp(e.Value) != 0 {
		t.Fatalf("vacsem %v != enum %v", v.Value, e.Value)
	}
}

func TestPublicThresholdMonotone(t *testing.T) {
	exact := vacsem.ArrayMultiplier(4)
	approx := vacsem.TruncatedMultiplier(4, 3)
	prev := big.NewRat(2, 1)
	for _, tv := range []int64{0, 1, 3, 7, 15} {
		r, err := vacsem.VerifyThresholdProb(exact, approx, big.NewInt(tv), vacsem.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Cmp(prev) > 0 {
			t.Errorf("P(dev>%d) = %v not monotone decreasing", tv, r.Value)
		}
		prev = r.Value
	}
}

func TestPublicApproximateAndBenchmarks(t *testing.T) {
	for _, name := range []string{"absdiff", "mac", "int2float"} {
		exact, err := vacsem.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		approx := vacsem.Approximate(exact, vacsem.ALSConfig{Seed: 1, TargetER: 0.02, RequireError: true})
		r, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Value.Sign() <= 0 {
			t.Errorf("%s: RequireError produced zero-error circuit", name)
		}
		if r.Value.Cmp(big.NewRat(1, 4)) > 0 {
			t.Errorf("%s: ER %v far beyond 0.02 budget", name, r.Value)
		}
	}
}

func TestPublicFileRoundTrips(t *testing.T) {
	c := vacsem.ArrayMultiplier(3)
	var blifBuf, aagBuf bytes.Buffer
	if err := vacsem.WriteBLIF(&blifBuf, c); err != nil {
		t.Fatal(err)
	}
	if err := vacsem.WriteAIGER(&aagBuf, c); err != nil {
		t.Fatal(err)
	}
	fromBlif, err := vacsem.ReadBLIF(bytes.NewReader(blifBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromAag, err := vacsem.ReadAIGER(bytes.NewReader(aagBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// All three must verify ER=0 against each other.
	for _, other := range []*vacsem.Circuit{fromBlif, fromAag} {
		r, err := vacsem.VerifyER(c, other, vacsem.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Sign() != 0 {
			t.Errorf("round-tripped circuit differs: ER = %v", r.Value)
		}
	}
}

func TestPublicCompressPreservesER(t *testing.T) {
	exact := vacsem.ArrayMultiplier(4)
	approx := vacsem.TruncatedMultiplier(4, 2)
	before, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := vacsem.VerifyER(vacsem.Compress(exact), vacsem.Compress(approx), vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Value.Cmp(after.Value) != 0 {
		t.Errorf("Compress changed ER: %v -> %v", before.Value, after.Value)
	}
}

func TestPublicToAIGPreservesER(t *testing.T) {
	exact := vacsem.RippleCarryAdder(6)
	approx := vacsem.LowerORAdder(6, 2)
	a, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := vacsem.VerifyER(vacsem.ToAIG(exact), vacsem.ToAIG(approx), vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value.Cmp(b.Value) != 0 {
		t.Errorf("ToAIG changed ER: %v -> %v", a.Value, b.Value)
	}
}

func TestPublicBiasedAndConditional(t *testing.T) {
	exact := vacsem.RippleCarryAdder(4)
	approx := vacsem.LowerORAdder(4, 2)
	biases := make([]vacsem.Bias, 8)
	for i := range biases {
		biases[i] = vacsem.UniformBias()
	}
	biased, err := vacsem.VerifyERBiased(exact, approx, biases, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := vacsem.VerifyER(exact, approx, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if biased.Value.Cmp(plain.Value) != 0 {
		t.Errorf("uniform biases changed ER: %v vs %v", biased.Value, plain.Value)
	}

	cond := vacsem.NewCircuit("always")
	for i := 0; i < 8; i++ {
		cond.AddInput("")
	}
	cond.AddOutput(cond.Const1(), "c")
	condER, err := vacsem.VerifyERConditional(exact, approx, cond, vacsem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if condER.Value.Cmp(plain.Value) != 0 {
		t.Errorf("trivial condition changed ER: %v vs %v", condER.Value, plain.Value)
	}
}

func TestPublicTimeoutSurface(t *testing.T) {
	exact := vacsem.ArrayMultiplier(10)
	approx := vacsem.TruncatedMultiplier(10, 5)
	_, err := vacsem.VerifyER(exact, approx, vacsem.Options{Method: vacsem.MethodDPLL, TimeLimit: 1})
	if err != vacsem.ErrTimeout {
		t.Errorf("expected ErrTimeout, got %v", err)
	}
	wide := vacsem.RippleCarryAdder(64)
	_, err = vacsem.VerifyER(wide, vacsem.LowerORAdder(64, 2), vacsem.Options{Method: vacsem.MethodEnum})
	if err != vacsem.ErrTooLarge {
		t.Errorf("expected ErrTooLarge, got %v", err)
	}
}
