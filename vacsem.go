package vacsem

import (
	"context"
	"io"
	"math/big"

	"vacsem/internal/aiger"
	"vacsem/internal/als"
	"vacsem/internal/blif"
	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/dist"
	"vacsem/internal/gen"
	"vacsem/internal/miter"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
	"vacsem/internal/verilog"
)

// Circuit is a combinational gate-level netlist (see NewCircuit and the
// generator functions below).
type Circuit = circuit.Circuit

// Kind enumerates node functions of a Circuit.
type Kind = circuit.Kind

// Node kinds usable with (*Circuit).AddGate.
const (
	Const0 = circuit.Const0
	Input  = circuit.Input
	Buf    = circuit.Buf
	Not    = circuit.Not
	And    = circuit.And
	Nand   = circuit.Nand
	Or     = circuit.Or
	Nor    = circuit.Nor
	Xor    = circuit.Xor
	Xnor   = circuit.Xnor
	Mux    = circuit.Mux
	Maj    = circuit.Maj
)

// NewCircuit returns an empty circuit with the given name.
func NewCircuit(name string) *Circuit { return circuit.New(name) }

// Method selects the verification engine.
type Method = core.Method

// Verification engines.
const (
	// MethodVACSEM is the paper's simulation-enhanced model counter.
	MethodVACSEM = core.MethodVACSEM
	// MethodDPLL disables the simulation hook (the GANAK baseline role).
	MethodDPLL = core.MethodDPLL
	// MethodEnum exhaustively simulates all 2^I input patterns.
	MethodEnum = core.MethodEnum
	// MethodBDD is the prior-art decision-diagram flow the paper
	// compares against; it fails with ErrBDDTooLarge on large circuits.
	MethodBDD = core.MethodBDD
	// MethodApprox estimates each count by XOR streamlining instead of
	// counting exactly: the value is within a (1+ε) factor of the exact
	// value with probability 1-δ (Options.Epsilon/Delta/Seed tune it,
	// Result.Approx/Epsilon/Delta/Confidence report it).
	MethodApprox = core.MethodApprox
)

// Options configures verification; see core.Options. Notable fields:
// Workers bounds the number of sub-miters solved concurrently, and
// SimWorkers the goroutines MethodEnum's simulation kernel spreads the
// pattern-block range across (both 0 = one per CPU; results are
// bit-identical regardless). Progress streams per-sub-miter completion
// events. Epsilon, Delta and Seed tune MethodApprox's (ε, δ) guarantee
// and make its XOR sampling reproducible.
type Options = core.Options

// Result reports a verified metric; see core.Result. Result.TotalStats
// aggregates the counter statistics of every sub-miter.
type Result = core.Result

// SubResult reports one per-output-bit #SAT problem.
type SubResult = core.SubResult

// ProgressEvent reports the completion of one sub-miter: output name,
// count, solver statistics, runtime, and done/total progress.
type ProgressEvent = core.ProgressEvent

// ProgressFunc observes per-sub-miter completion events via
// Options.Progress. Calls are serialized; the callback must not block.
type ProgressFunc = core.ProgressFunc

// MetricKind identifies a built-in average-error metric for
// multi-metric sessions (see VerifyMetrics).
type MetricKind = core.MetricKind

// Metric kinds usable in a MetricSpec.
const (
	// MetricER is the error rate.
	MetricER = core.MetricER
	// MetricMED is the mean error distance.
	MetricMED = core.MetricMED
	// MetricMHD is the mean Hamming distance.
	MetricMHD = core.MetricMHD
	// MetricThresholdProb is P(|int(y)-int(y')| > t); MetricSpec.Threshold
	// carries t.
	MetricThresholdProb = core.MetricThresholdProb
)

// MetricSpec requests one metric in a VerifyMetrics session.
type MetricSpec = core.MetricSpec

// MetricSpecByName parses a metric name ("er", "med", "mhd", "thr") into
// a MetricSpec; threshold is only consulted for "thr".
func MetricSpecByName(name string, threshold *big.Int) (MetricSpec, error) {
	return core.MetricSpecByName(name, threshold)
}

// SessionResult reports a multi-metric session: one Result per spec plus
// session-wide accounting (tasks requested/unique/deduplicated, base
// miter size around its single synthesis pass, aggregate solver stats).
type SessionResult = core.SessionResult

// VerifyMetrics verifies several metrics of one circuit pair in a single
// session: the shared base miter is built and synthesized once, every
// metric's deviation bits compile to counting tasks, structurally
// identical tasks are deduplicated across metrics, and one backend run
// solves the rest with a shared component cache. Each Result is
// bit-identical to the corresponding standalone Verify* call.
func VerifyMetrics(ctx context.Context, exact, approx *Circuit, specs []MetricSpec, opt Options) (*SessionResult, error) {
	return core.VerifyMetrics(ctx, exact, approx, specs, opt)
}

// ErrTimeout is returned when Options.TimeLimit expires. Cancellation
// through a caller-supplied context (the Verify*Context variants) is
// reported as the context's own error instead.
var ErrTimeout = core.ErrTimeout

// ErrTooLarge is returned by MethodEnum beyond 62 inputs.
var ErrTooLarge = core.ErrTooLarge

// ErrBDDTooLarge is returned by MethodBDD when the diagram exceeds
// Options.BDDNodeLimit.
var ErrBDDTooLarge = core.ErrBDDTooLarge

// WCEResult reports a worst-case-error verification.
type WCEResult = core.WCEResult

// VerifyWCE computes the exact worst-case error max|int(y)-int(y')| by
// binary search over threshold miters with early-exit SAT queries.
func VerifyWCE(exact, approx *Circuit, opt Options) (*WCEResult, error) {
	return core.VerifyWCE(exact, approx, opt)
}

// VerifyWCEContext is VerifyWCE with cooperative cancellation.
func VerifyWCEContext(ctx context.Context, exact, approx *Circuit, opt Options) (*WCEResult, error) {
	return core.VerifyWCEContext(ctx, exact, approx, opt)
}

// VerifyER verifies the error rate of approx against exact.
func VerifyER(exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyER(exact, approx, opt)
}

// VerifyERContext is VerifyER with cooperative cancellation: the
// context reaches the solver's inner loops, so cancelling it aborts the
// verification within one poll interval.
func VerifyERContext(ctx context.Context, exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyERContext(ctx, exact, approx, opt)
}

// VerifyMED verifies the mean error distance (outputs read as unsigned
// binary numbers, least-significant bit first).
func VerifyMED(exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyMED(exact, approx, opt)
}

// VerifyMEDContext is VerifyMED with cooperative cancellation.
func VerifyMEDContext(ctx context.Context, exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyMEDContext(ctx, exact, approx, opt)
}

// VerifyMHD verifies the mean Hamming distance.
func VerifyMHD(exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyMHD(exact, approx, opt)
}

// VerifyMHDContext is VerifyMHD with cooperative cancellation.
func VerifyMHDContext(ctx context.Context, exact, approx *Circuit, opt Options) (*Result, error) {
	return core.VerifyMHDContext(ctx, exact, approx, opt)
}

// VerifyThresholdProb verifies P(|int(y) - int(y')| > t).
func VerifyThresholdProb(exact, approx *Circuit, t *big.Int, opt Options) (*Result, error) {
	return core.VerifyThresholdProb(exact, approx, t, opt)
}

// VerifyThresholdProbContext is VerifyThresholdProb with cooperative
// cancellation.
func VerifyThresholdProbContext(ctx context.Context, exact, approx *Circuit, t *big.Int, opt Options) (*Result, error) {
	return core.VerifyThresholdProbContext(ctx, exact, approx, t, opt)
}

// VerifyMiter verifies a user-supplied deviation miter with per-output
// weights: the metric value is sum_j weight_j * P(output_j = 1). This is
// the extension point for custom average-error metrics.
func VerifyMiter(name string, m *Circuit, weights []*big.Int, opt Options) (*Result, error) {
	return core.VerifyMiter(name, m, weights, opt)
}

// VerifyMiterContext is VerifyMiter with cooperative cancellation.
func VerifyMiterContext(ctx context.Context, name string, m *Circuit, weights []*big.Int, opt Options) (*Result, error) {
	return core.VerifyMiterContext(ctx, name, m, weights, opt)
}

// AppendCircuit instantiates src inside dst, connecting src's primary
// inputs to the dst nodes listed in inputMap, and returns the dst node
// ids of src's outputs. It is the building block for custom deviation
// miters (see examples/custom_metric).
func AppendCircuit(dst, src *Circuit, inputMap []int) []int {
	return circuit.Append(dst, src, inputMap)
}

// ERMiter builds the single-output error-rate approximation miter.
func ERMiter(exact, approx *Circuit) (*Circuit, error) { return miter.ER(exact, approx) }

// MEDMiter builds the multi-output |int(y)-int(y')| approximation miter.
func MEDMiter(exact, approx *Circuit) (*Circuit, error) { return miter.MED(exact, approx) }

// Compress shrinks a circuit with the built-in function-preserving
// synthesis pipeline (the role of ABC compress2rs in the paper's flow).
func Compress(c *Circuit) *Circuit { return synth.Compress(c) }

// ToAIG converts a circuit to an AND-inverter graph.
func ToAIG(c *Circuit) *Circuit { return synth.ToAIG(c) }

// Benchmark circuit generators (the paper's Table III workloads).

// RippleCarryAdder builds an n-bit adder (2n inputs, n+1 outputs).
func RippleCarryAdder(n int) *Circuit { return gen.RippleCarryAdder(n) }

// CarryLookaheadAdder builds an n-bit adder with 4-bit lookahead groups.
func CarryLookaheadAdder(n int) *Circuit { return gen.CarryLookaheadAdder(n) }

// ArrayMultiplier builds an n x n array multiplier (2n inputs/outputs).
func ArrayMultiplier(n int) *Circuit { return gen.ArrayMultiplier(n) }

// WallaceMultiplier builds an n x n Wallace-tree multiplier.
func WallaceMultiplier(n int) *Circuit { return gen.WallaceMultiplier(n) }

// BenchmarkByName builds any Table III benchmark ("adder32", "mult12",
// "sin", ...) plus parametric adderN/multN names.
func BenchmarkByName(name string) (*Circuit, error) { return gen.ByName(name) }

// Approximate circuit generation (the ALSRAC role).

// ALSConfig tunes Approximate; see als.Config.
type ALSConfig = als.Config

// Approximate derives an approximate circuit within an error budget by
// simulation-guided signal substitution. Deterministic in ALSConfig.Seed.
func Approximate(exact *Circuit, cfg ALSConfig) *Circuit { return als.Approximate(exact, cfg) }

// LowerORAdder builds the classic LOA approximate adder (low k bits OR).
func LowerORAdder(n, k int) *Circuit { return als.LowerORAdder(n, k) }

// TruncatedMultiplier builds an n x n multiplier without the k least
// significant partial-product columns.
func TruncatedMultiplier(n, k int) *Circuit { return als.TruncatedMultiplier(n, k) }

// Non-uniform input distributions (the paper's stated future work).

// Bias is a dyadic input probability Num/2^Bits for the biased-input
// verification functions.
type Bias = dist.Bias

// UniformBias is the default 1/2 input probability.
func UniformBias() Bias { return dist.Uniform() }

// VerifyERBiased verifies ER when input i is 1 with probability
// biases[i] (independent inputs with dyadic probabilities).
func VerifyERBiased(exact, approx *Circuit, biases []Bias, opt Options) (*Result, error) {
	return dist.VerifyERBiased(exact, approx, biases, opt)
}

// VerifyMEDBiased verifies MED under biased inputs.
func VerifyMEDBiased(exact, approx *Circuit, biases []Bias, opt Options) (*Result, error) {
	return dist.VerifyMEDBiased(exact, approx, biases, opt)
}

// VerifyERConditional verifies ER restricted to input patterns on which
// the single-output condition circuit evaluates to 1.
func VerifyERConditional(exact, approx, cond *Circuit, opt Options) (*Result, error) {
	return dist.VerifyERConditional(exact, approx, cond, opt)
}

// VerifyMEDConditional verifies MED restricted to patterns with cond=1.
func VerifyMEDConditional(exact, approx, cond *Circuit, opt Options) (*Result, error) {
	return dist.VerifyMEDConditional(exact, approx, cond, opt)
}

// File formats.

// ReadBLIF parses a combinational BLIF netlist.
func ReadBLIF(r io.Reader) (*Circuit, error) { return blif.Parse(r) }

// WriteBLIF serializes a circuit as BLIF.
func WriteBLIF(w io.Writer, c *Circuit) error { return blif.Write(w, c) }

// ReadAIGER parses an ASCII AIGER (aag) combinational AIG.
func ReadAIGER(r io.Reader) (*Circuit, error) { return aiger.Parse(r) }

// WriteAIGER serializes a circuit as ASCII AIGER.
func WriteAIGER(w io.Writer, c *Circuit) error { return aiger.Write(w, c) }

// WriteVerilog serializes a circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// Observability (see internal/obs): span-based JSONL tracing and a
// process-wide metrics registry. Both are off by default and cost about
// one atomic load per instrumented operation when disabled; enabling
// tracing never changes verified counts.

// Tracer streams span and point events as JSON lines; see NewTracer.
type Tracer = obs.Tracer

// MetricsSnapshot is a point-in-time copy of the metrics registry.
type MetricsSnapshot = obs.Snapshot

// NewTracer returns a tracer writing JSONL events to w. The caller owns
// w; Close flushes buffered events but does not close w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// SetTracer installs t as the process-wide tracer observed by every
// verification started afterwards. Pass nil to disable tracing.
func SetTracer(t *Tracer) { obs.SetTracer(t) }

// Metrics snapshots the process-wide metrics registry (cumulative
// counters, gauges and latency histograms of every verification run in
// this process). Use its WriteTable or WriteJSON to render it.
func Metrics() MetricsSnapshot { return obs.Default.Snapshot() }
