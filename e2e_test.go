package vacsem_test

// End-to-end tests of the command-line tools: build the binaries into a
// temp dir, generate circuits with circgen, verify them with vacsem,
// and sanity-check vacsem-bench output.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the three commands once per test binary run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"vacsem", "circgen", "vacsem-bench"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = mustModuleRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// 1. Generate an exact adder and approximate versions in BLIF.
	out := run(t, filepath.Join(bin, "circgen"),
		"-name", "adder8", "-approx", "2", "-budget", "0.02", "-o", work)
	if !strings.Contains(out, "adder8.blif") {
		t.Fatalf("circgen output unexpected:\n%s", out)
	}

	// 2. Verify ER with all engines; values must agree.
	values := map[string]string{}
	for _, method := range []string{"vacsem", "dpll", "enum", "bdd"} {
		out := run(t, filepath.Join(bin, "vacsem"),
			"-metric", "er",
			"-exact", filepath.Join(work, "adder8.blif"),
			"-approx", filepath.Join(work, "adder8_apx0.blif"),
			"-method", method, "-v")
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "value      :") {
				values[method] = strings.TrimSpace(strings.TrimPrefix(line, "value      :"))
			}
		}
		if values[method] == "" {
			t.Fatalf("%s: no value line in output:\n%s", method, out)
		}
	}
	for m, v := range values {
		if v != values["enum"] {
			t.Errorf("method %s value %s != enum %s", m, v, values["enum"])
		}
	}

	// 3. MED through AIGER files.
	run(t, filepath.Join(bin, "circgen"), "-name", "mult4", "-format", "aag",
		"-o", filepath.Join(work, "mult4.aag"))
	run(t, filepath.Join(bin, "circgen"), "-name", "mult4", "-format", "aag",
		"-o", filepath.Join(work, "mult4b.aag"))
	medOut := run(t, filepath.Join(bin, "vacsem"),
		"-metric", "med",
		"-exact", filepath.Join(work, "mult4.aag"),
		"-approx", filepath.Join(work, "mult4b.aag"))
	if !strings.Contains(medOut, "value      : 0\n") {
		t.Errorf("identical multipliers should have MED 0:\n%s", medOut)
	}

	// 4. Threshold metric.
	thrOut := run(t, filepath.Join(bin, "vacsem"),
		"-metric", "thr", "-threshold", "3",
		"-exact", filepath.Join(work, "adder8.blif"),
		"-approx", filepath.Join(work, "adder8_apx1.blif"))
	if !strings.Contains(thrOut, "P(dev>3)") {
		t.Errorf("threshold metric output unexpected:\n%s", thrOut)
	}

	// 5. vacsem-bench table 3 (fast inventory).
	benchOut := run(t, filepath.Join(bin, "vacsem-bench"), "-table", "3")
	for _, want := range []string{"adder128", "mult16", "sin"} {
		if !strings.Contains(benchOut, want) {
			t.Errorf("bench table 3 missing %s:\n%s", want, benchOut)
		}
	}
}

func TestCLISuiteGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	work := t.TempDir()
	out := run(t, filepath.Join(bin, "circgen"), "-suite", "-o", work)
	files, err := filepath.Glob(filepath.Join(work, "*.blif"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 20 {
		t.Errorf("suite generated %d files, want 20\n%s", len(files), out)
	}
	// Round-trip one of them through the verifier (self-ER must be 0).
	dec := filepath.Join(work, "dec.blif")
	verOut := run(t, filepath.Join(bin, "vacsem"), "-metric", "er",
		"-exact", dec, "-approx", dec)
	if !strings.Contains(verOut, "value      : 0\n") {
		t.Errorf("self-ER of dec not 0:\n%s", verOut)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTools(t)
	// Missing flags must exit non-zero.
	cmd := exec.Command(filepath.Join(bin, "vacsem"))
	if err := cmd.Run(); err == nil {
		t.Error("vacsem without flags should fail")
	}
	cmd = exec.Command(filepath.Join(bin, "circgen"), "-name", "bogus", "-o", "/tmp/x.blif")
	if err := cmd.Run(); err == nil {
		t.Error("circgen with unknown benchmark should fail")
	}
	cmd = exec.Command(filepath.Join(bin, "vacsem-bench"), "-table", "99")
	if err := cmd.Run(); err == nil {
		t.Error("vacsem-bench with unknown table should fail")
	}
}
