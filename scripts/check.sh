#!/bin/sh
# Repo health check: formatting, vet, build, the full test suite under
# the race detector, a one-iteration benchmark smoke run, and the traced
# quickstart (which parses its own JSONL trace). CI runs exactly this
# script.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short (cache/engine concurrency fast path)"
# Focused first pass over the packages that share the component cache
# across goroutines — plus the observability hub/recorder/server, whose
# whole point is concurrent access: fails fast on a race before the
# full suite.
go test -race -short ./internal/counter ./internal/engine ./internal/plan ./internal/core \
	./internal/obs ./internal/obs/expo

echo "==> go test -race"
# 20m headroom over the 10m default: race instrumentation slows the
# counter hot loops ~5x and internal/core alone runs several minutes.
go test -race -timeout 20m ./...

echo "==> sim kernel bench smoke (tape + parallel variants stay runnable)"
go test -run '^$' -bench=. -benchtime=1x ./internal/sim/...

echo "==> parallel-scaling smoke (soft gate: warn below 2x at 4 workers)"
# The smoke self-skips on machines with fewer than 4 CPUs (no speedup is
# physically measurable there). Soft gate, like the bench -diff gate:
# shared CI runners are too noisy to hard-fail on wall-clock ratios.
scaling_out=$(go test -run '^TestParallelScalingSmoke$' -v ./internal/sim/)
echo "$scaling_out" | grep -E "scaling smoke|SKIP|SCALING" || true
if echo "$scaling_out" | grep -q "SCALING WARNING"; then
	echo "WARNING: parallel kernel scaling below 2x at 4 workers (soft gate, not failing the check)"
fi

echo "==> bench smoke (one iteration per benchmark)"
go test -run '^$' -bench=. -benchtime=1x ./...

echo "==> multi-metric session smoke (dedup fires, values match standalone)"
multi_out=$(go run ./cmd/vacsem-bench -table multi -versions 1 -report none)
echo "$multi_out"
if echo "$multi_out" | grep -q "MISMATCH"; then
	echo "multi-metric session values diverged from standalone runs"
	exit 1
fi

echo "==> approx backend smoke (tiny adder pair, ε=0.2, fixed seed, via the CLI)"
apxdir=$(mktemp -d)
trap 'rm -rf "$apxdir"' EXIT
go run ./examples/approx_quickstart -write "$apxdir"
apx_out=$(go run ./cmd/vacsem -metric er -backend approx -epsilon 0.2 -count-seed 1 \
	-exact "$apxdir/adder8.blif" -approx "$apxdir/adder8_apx.blif")
echo "$apx_out"
if ! echo "$apx_out" | grep -q "guarantee"; then
	echo "approx run reported no (ε, δ) guarantee line"
	exit 1
fi

echo "==> approx bench smoke (epsilon/delta land in the JSON report)"
apx_bench_out=$(go run ./cmd/vacsem-bench -table approx -versions 1 -timelimit 5s \
	-epsilon 0.8 -delta 0.3 -count-seed 1 -report "$apxdir/approx.json")
echo "$apx_bench_out"
if ! grep -q '"approx": true' "$apxdir/approx.json" ||
	! grep -q '"epsilon": 0.8' "$apxdir/approx.json"; then
	echo "approx bench report is missing approx/epsilon fields"
	exit 1
fi

echo "==> approx-scaling smoke (mult16/mult32 sparse vs pre-scaling ablation; soft gate)"
# The scale rows ride along in -table approx above. At the smoke's tiny
# time limit both arms usually time out (">5" in both columns, speedup
# "-"), which only proves the path runs; when a speedup IS measured it
# must not drop below 1x — the scaled backend losing outright to the
# configuration it replaced. Soft gate: warn, don't fail (wall-clock
# ratios are too noisy on shared runners for a hard gate).
if ! echo "$apx_bench_out" | grep -q "^mult16 "; then
	echo "approx-scaling table is missing its mult16 row"
	exit 1
fi
scale_speedup=$(echo "$apx_bench_out" | awk '$1 == "mult16" { print $4 }')
case "$scale_speedup" in
0[.x]*)
	echo "WARNING: approx scaling smoke: mult16 speedup $scale_speedup vs the pre-scaling ablation (soft gate, not failing the check)"
	;;
*)
	echo "approx scaling smoke: mult16 speedup $scale_speedup"
	;;
esac

echo "==> serve smoke (HTTP service: cold/warm dedup, /metrics, snapshot on SIGTERM)"
./scripts/serve_smoke.sh

echo "==> serve bench smoke (cold vs store-warm service jobs; values must match)"
serve_out=$(go run ./cmd/vacsem-bench -table serve -versions 1 -timelimit 15s -report none)
echo "$serve_out"
if echo "$serve_out" | grep -q "MISMATCH\|ERROR:"; then
	echo "serve table reported a mismatch or error"
	exit 1
fi

echo "==> traced quickstart (JSONL trace parses and is self-consistent)"
go run ./examples/traced_verify >/dev/null

echo "==> bench regression soft gate (vacsem-bench -diff vs committed baseline)"
# Re-run the baseline's table with its exact parameters and diff against
# the committed BENCH_*.json. A generous 2x time band absorbs CI machine
# variance; value mismatches and status flips would still show. Soft
# gate: a regression prints a loud warning but does not fail the check
# (shared runners are too noisy for a hard wall-time gate).
bench_baseline=BENCH_20260808T085213.json
if go run ./cmd/vacsem-bench -table 4 -versions 2 -timelimit 10s \
	-report "$apxdir/bench_new.json" >/dev/null &&
	go run ./cmd/vacsem-bench -diff -diff-tol 2.0 \
		"$bench_baseline" "$apxdir/bench_new.json"; then
	echo "bench diff vs $bench_baseline: clean"
else
	echo "WARNING: bench regression vs $bench_baseline (soft gate, not failing the check)"
fi

echo "OK"
