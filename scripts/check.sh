#!/bin/sh
# Repo health check: formatting, vet, build, the full test suite under
# the race detector, a one-iteration benchmark smoke run, and the traced
# quickstart (which parses its own JSONL trace). CI runs exactly this
# script.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race -short (cache/engine concurrency fast path)"
# Focused first pass over the packages that share the component cache
# across goroutines: fails fast on a cache race before the full suite.
go test -race -short ./internal/counter ./internal/engine ./internal/plan ./internal/core

echo "==> go test -race"
go test -race ./...

echo "==> sim kernel bench smoke (tape + parallel variants stay runnable)"
go test -run '^$' -bench=. -benchtime=1x ./internal/sim/...

echo "==> bench smoke (one iteration per benchmark)"
go test -run '^$' -bench=. -benchtime=1x ./...

echo "==> multi-metric session smoke (dedup fires, values match standalone)"
multi_out=$(go run ./cmd/vacsem-bench -table multi -versions 1 -report none)
echo "$multi_out"
if echo "$multi_out" | grep -q "MISMATCH"; then
	echo "multi-metric session values diverged from standalone runs"
	exit 1
fi

echo "==> traced quickstart (JSONL trace parses and is self-consistent)"
go run ./examples/traced_verify >/dev/null

echo "OK"
