#!/bin/sh
# End-to-end smoke test of the verification service: build
# vacsem-serve, start it on an ephemeral port with a store snapshot
# configured, submit the same {ER} job twice over HTTP, and assert that
# the second run is served from the cross-request store (cone hits > 0,
# no solver work) with the identical value. Then SIGTERM the server and
# check the graceful shutdown wrote the snapshot. Needs curl; uses no
# JSON tooling beyond the shell (grep/sed), so it runs on a bare CI
# runner.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "==> build vacsem-serve"
go build -o "$workdir/vacsem-serve" ./cmd/vacsem-serve

echo "==> generate the adder8 BLIF pair"
go run ./examples/approx_quickstart -write "$workdir" >/dev/null

echo "==> start the server (ephemeral port, snapshot on shutdown)"
snap=$workdir/store.json
"$workdir/vacsem-serve" -addr 127.0.0.1:0 -snapshot "$snap" >"$workdir/serve.log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^listening on //p' "$workdir/serve.log")
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "server did not report a listen address:"
	cat "$workdir/serve.log"
	exit 1
fi
echo "server at $addr"

# JSON-escape a BLIF file into a quoted string (newlines -> \n).
json_escape() {
	sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$1" | awk '{printf "%s\\n", $0}'
}
body=$workdir/body.json
printf '{"exact_blif":"%s","approx_blif":"%s","metrics":["er"]}' \
	"$(json_escape "$workdir/adder8.blif")" \
	"$(json_escape "$workdir/adder8_apx.blif")" >"$body"

# submit_and_wait JOB_OUTFILE: POST the job, poll to completion, write
# the final status JSON to JOB_OUTFILE.
submit_and_wait() {
	out=$1
	sub=$(curl -sf -X POST "http://$addr/v1/verify" \
		-H 'Content-Type: application/json' --data-binary "@$body")
	job=$(printf '%s' "$sub" | sed -n 's/.*"job_id"[: ]*"\([^"]*\)".*/\1/p')
	if [ -z "$job" ]; then
		echo "submit returned no job id: $sub"
		exit 1
	fi
	for _ in $(seq 1 300); do
		curl -sf "http://$addr/v1/jobs/$job" >"$out"
		if grep -q '"state"[: ]*"done"' "$out"; then
			return 0
		fi
		if grep -q '"state"[: ]*"error"' "$out"; then
			echo "job $job failed:"
			cat "$out"
			exit 1
		fi
		sleep 0.2
	done
	echo "job $job did not finish in time"
	exit 1
}

# field FILE NAME: extract a numeric/string JSON field value.
field() {
	sed -n 's/.*"'"$2"'"[: ]*\("\{0,1\}[^,"}]*\)"\{0,1\}[,}].*/\1/p' "$1" | head -1
}

echo "==> cold job (empty store)"
submit_and_wait "$workdir/job1.json"
hits1=$(field "$workdir/job1.json" store_cone_hits)
er1=$(sed -n 's/.*"value"[: ]*"\([^"]*\)".*/\1/p' "$workdir/job1.json" | head -1)
echo "cold: er=$er1 cone_hits=$hits1"
if [ "$hits1" != 0 ]; then
	echo "cold job reported store hits ($hits1) on an empty store"
	exit 1
fi

echo "==> warm job (same request; must be served from the store)"
submit_and_wait "$workdir/job2.json"
hits2=$(field "$workdir/job2.json" store_cone_hits)
dec2=$(field "$workdir/job2.json" decisions)
er2=$(sed -n 's/.*"value"[: ]*"\([^"]*\)".*/\1/p' "$workdir/job2.json" | head -1)
echo "warm: er=$er2 cone_hits=$hits2 decisions=$dec2"
if [ "$hits2" = 0 ]; then
	echo "warm job was not served from the store"
	exit 1
fi
if [ "$dec2" != 0 ]; then
	echo "warm job still ran solvers ($dec2 decisions)"
	exit 1
fi
if [ "$er1" != "$er2" ]; then
	echo "warm value $er2 differs from cold value $er1"
	exit 1
fi

echo "==> /metrics exposes the store counters"
curl -sf "http://$addr/metrics" >"$workdir/metrics.txt"
for name in vacsem_store_cone_hits vacsem_store_cone_stores vacsem_serve_jobs_done; do
	if ! grep -q "^$name " "$workdir/metrics.txt"; then
		echo "/metrics is missing $name"
		exit 1
	fi
done
grep -E '^vacsem_(store_cone_(hits|misses|stores)|serve_jobs_done) ' "$workdir/metrics.txt"

echo "==> graceful shutdown (SIGTERM) writes the snapshot"
kill -TERM "$pid"
for _ in $(seq 1 100); do
	if ! kill -0 "$pid" 2>/dev/null; then
		break
	fi
	sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
	echo "server did not exit after SIGTERM"
	exit 1
fi
pid=""
if [ ! -s "$snap" ]; then
	echo "shutdown did not write the store snapshot"
	cat "$workdir/serve.log"
	exit 1
fi
grep -q '"version"' "$snap"
echo "snapshot written: $(wc -c <"$snap") bytes"

echo "serve smoke OK"
