package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span inside a Tracer's event stream. 0 means
// "no span" (events parented to 0 are top-level).
type SpanID uint64

// Fields carries the event-specific payload. Values must be
// JSON-marshalable; encoding/json sorts map keys, so the line layout is
// deterministic for a given payload.
type Fields map[string]any

// reserved event keys; Fields entries with these names are dropped.
var reservedKeys = [...]string{"ev", "span", "id", "parent", "t_us", "dur_us"}

// DefaultHotEvery is the default sampling interval for hot-path events
// (per-component and per-cache-operation): one traced event per
// DefaultHotEvery occurrences. Span events and controller decisions are
// never sampled.
const DefaultHotEvery = 4096

// Tracer emits JSON-lines trace events to an io.Writer. All methods are
// safe for concurrent use; event lines are written atomically (one
// mutex-guarded write per line), so the output is valid JSONL even when
// multiple workers trace at once.
//
// The Tracer buffers internally; call Close (or Flush) before reading
// the underlying writer. Close does not close the underlying writer.
type Tracer struct {
	mu       sync.Mutex
	w        *bufio.Writer
	err      error
	start    time.Time
	starts   map[SpanID]time.Time
	nextID   atomic.Uint64
	hotEvery uint64
}

// NewTracer creates a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{
		w:        bufio.NewWriterSize(w, 1<<16),
		start:    time.Now(),
		starts:   make(map[SpanID]time.Time),
		hotEvery: DefaultHotEvery,
	}
}

// SetHotEvery changes the sampling interval advertised to hot-path
// instrumentation (1 = trace every occurrence). It must be called
// before the tracer is installed.
func (t *Tracer) SetHotEvery(n uint64) {
	if n == 0 {
		n = DefaultHotEvery
	}
	t.hotEvery = n
}

// HotEvery returns the sampling interval for hot-path events.
func (t *Tracer) HotEvery() uint64 { return t.hotEvery }

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush writes buffered events through to the underlying writer.
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes the tracer. The underlying writer stays open (the
// caller owns it).
func (t *Tracer) Close() error { return t.Flush() }

// StartSpan opens a span of the given kind under parent (0 = root) and
// emits its span_start event.
func (t *Tracer) StartSpan(parent SpanID, kind string, fields Fields) SpanID {
	id := SpanID(t.nextID.Add(1))
	now := time.Now()
	t.mu.Lock()
	t.starts[id] = now
	t.emitLocked(now, Fields{"ev": "span_start", "span": kind, "id": uint64(id), "parent": uint64(parent)}, fields)
	t.mu.Unlock()
	return id
}

// EndSpan closes a span, emitting its span_end event with the measured
// duration. Ending an unknown (or already-ended) span is a no-op for
// the duration but still emits the event with dur_us 0.
func (t *Tracer) EndSpan(id SpanID, kind string, fields Fields) {
	now := time.Now()
	t.mu.Lock()
	var dur time.Duration
	if s, ok := t.starts[id]; ok {
		dur = now.Sub(s)
		delete(t.starts, id)
	}
	t.emitLocked(now, Fields{"ev": "span_end", "span": kind, "id": uint64(id), "dur_us": dur.Microseconds()}, fields)
	t.mu.Unlock()
}

// Event emits a point event of the given kind, parented to a span.
func (t *Tracer) Event(parent SpanID, kind string, fields Fields) {
	now := time.Now()
	t.mu.Lock()
	t.emitLocked(now, Fields{"ev": kind, "parent": uint64(parent)}, fields)
	t.mu.Unlock()
}

// emitLocked merges fields into the header map (header wins on key
// collisions), stamps the relative timestamp, and writes one JSON line.
func (t *Tracer) emitLocked(now time.Time, header, fields Fields) {
	for k, v := range fields {
		skip := false
		for _, res := range reservedKeys {
			if k == res {
				skip = true
				break
			}
		}
		if !skip {
			header[k] = v
		}
	}
	header["t_us"] = now.Sub(t.start).Microseconds()
	line, err := json.Marshal(header)
	if err != nil {
		// Unmarshalable payload: degrade to an error event rather than
		// corrupting the stream.
		line, _ = json.Marshal(Fields{"ev": "trace_error", "error": err.Error()})
	}
	if _, err := t.w.Write(line); err != nil && t.err == nil {
		t.err = err
	}
	if err := t.w.WriteByte('\n'); err != nil && t.err == nil {
		t.err = err
	}
}
