// Package obs is the observability layer of the verification stack: a
// zero-dependency (stdlib-only) metrics registry of atomic counters,
// gauges and fixed-bucket histograms, plus a span-based tracer that
// emits JSON-lines events to an io.Writer.
//
// The package is designed around a no-op default: when no tracer is
// installed (the normal case), instrumented hot paths pay one atomic
// pointer load — or, where the instrumentation caches the tracer per
// solve, one nil check — and metric updates are single atomic adds.
// Enabling tracing never changes results, only adds event emission.
//
// Event stream schema (one JSON object per line):
//
//	{"ev":"span_start","span":KIND,"id":N,"parent":N,"t_us":T, ...fields}
//	{"ev":"span_end",  "span":KIND,"id":N,"t_us":T,"dur_us":D, ...fields}
//	{"ev":EVENT,"parent":N,"t_us":T, ...fields}
//
// Span kinds used by the stack: "run" (one verification, internal/core),
// "backend" (one engine.Backend.Solve), "sub_miter" (one per-output-bit
// #SAT problem). Point events: "component", "cache", "stats" (periodic
// counter.Stats snapshot delta), "sim_decision" (the dynamic
// controller's accept/reject with the density score), "sim_batch"
// (exhaustive enumeration), "bdd_growth" (node-count doublings).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger (atomic high-water mark).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets is the default histogram bucketing for durations in
// seconds: 1µs .. 10min in decades, with 2x/5x subdivisions in the
// working range.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 60, 600,
}

// Histogram is a fixed-bucket histogram with atomic buckets, safe for
// concurrent Observe. Bucket i counts observations <= bounds[i]; the
// final bucket counts the overflow.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a consistent-enough copy of a histogram for
// reporting (buckets are read individually; exactness is not required
// while observations race).
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // len(Bounds)+1, last = overflow
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// CounterSnapshot is one named counter value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnapshot is one named gauge value.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name, ready
// for table or JSON rendering.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Registry is a namespace of metrics. Metric handles are get-or-create
// and stable, so hot paths resolve them once and update lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the instrumented packages write
// to.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds = LatencyBuckets). Bounds of
// an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name:    name,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]uint64, len(h.buckets)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteTable renders the snapshot as a human-readable table.
func (s Snapshot) WriteTable(w io.Writer) {
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "%-36s %16s\n", "COUNTER", "VALUE")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "%-36s %16d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "%-36s %16s\n", "GAUGE", "VALUE")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "%-36s %16d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "%-36s %10s %14s %14s\n", "HISTOGRAM", "COUNT", "SUM", "MEAN")
		for _, h := range s.Histograms {
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(w, "%-36s %10d %14.6g %14.6g\n", h.Name, h.Count, h.Sum, mean)
		}
	}
}

// WriteJSON renders the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteMetrics dumps the default registry in the format of the
// -obs-metrics flag: "table" or "json".
func WriteMetrics(w io.Writer, format string) error {
	snap := Default.Snapshot()
	switch format {
	case "table":
		snap.WriteTable(w)
		return nil
	case "json":
		return snap.WriteJSON(w)
	default:
		return fmt.Errorf("unknown -obs-metrics format %q (want table or json)", format)
	}
}
