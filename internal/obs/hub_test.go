package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// Events reach every subscriber with the hub-stamped header fields; the
// header wins over colliding caller fields.
func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	if h.Active() {
		t.Fatal("fresh hub reports Active")
	}
	ch, cancel := h.Subscribe(8)
	defer cancel()
	if !h.Active() {
		t.Fatal("hub with a subscriber reports inactive")
	}

	h.Publish("task_done", Fields{"index": 3, "ev": "spoofed", "seq": 999})
	line := <-ch
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("event not JSON: %v (%q)", err, line)
	}
	if got["ev"] != "task_done" {
		t.Errorf("ev = %v, want task_done (caller's spoof must lose)", got["ev"])
	}
	if got["index"].(float64) != 3 {
		t.Errorf("index = %v", got["index"])
	}
	if got["seq"].(float64) == 999 {
		t.Error("caller overrode the hub's seq")
	}
	if _, ok := got["t_ms"]; !ok {
		t.Error("t_ms header missing")
	}
}

// Sequence numbers increase across events; each subscriber sees its own
// copy of every event.
func TestHubFanout(t *testing.T) {
	h := NewHub()
	ch1, cancel1 := h.Subscribe(8)
	ch2, cancel2 := h.Subscribe(8)
	defer cancel1()
	defer cancel2()
	h.Publish("a", nil)
	h.Publish("b", nil)
	for _, ch := range []<-chan []byte{ch1, ch2} {
		var prev float64 = -1
		for i := 0; i < 2; i++ {
			var ev map[string]any
			if err := json.Unmarshal(<-ch, &ev); err != nil {
				t.Fatal(err)
			}
			seq := ev["seq"].(float64)
			if seq <= prev {
				t.Errorf("seq not increasing: %g after %g", seq, prev)
			}
			prev = seq
		}
	}
}

// A full subscriber buffer drops events (counted) instead of blocking
// the publisher.
func TestHubDropOnSlow(t *testing.T) {
	h := NewHub()
	_, cancel := h.Subscribe(1) // deliberately tiny, never drained
	defer cancel()
	before := Default.Counter("obs.stream_dropped").Value()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			h.Publish("x", nil)
		}
		close(done)
	}()
	<-done // publishing must complete despite the stuck subscriber
	if got := Default.Counter("obs.stream_dropped").Value(); got < before+49 {
		t.Errorf("stream_dropped rose by %d, want >= 49", got-before)
	}
}

// Cancel is idempotent and concurrent publishes never send on a closed
// channel (run with -race).
func TestHubCancelRace(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		ch, cancel := h.Subscribe(4)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
		go func() {
			defer wg.Done()
			cancel()
			cancel()
		}()
	}
	for i := 0; i < 200; i++ {
		h.Publish("x", Fields{"i": i})
	}
	wg.Wait()
	if h.Active() {
		t.Error("hub still active after all cancels")
	}
}
