package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(w*per + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got < workers*per {
		t.Errorf("gauge = %d, want >= %d (SetMax raised it beyond the adds)", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := 0.0
	for i := 0; i < per; i++ {
		wantSum += float64(i % 200)
	}
	wantSum *= workers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2} // <=1, <=10, overflow
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax lowered the gauge: got %d, want 5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax(9) = %d, want 9", got)
	}
}

func TestSnapshotSortedAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("m.mid").Set(-7)
	r.Histogram("lat", nil).Observe(0.5)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Errorf("counters not sorted: %+v", s.Counters)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(round.Counters) != 2 || round.Counters[1].Value != 2 {
		t.Errorf("round-tripped snapshot = %+v", round)
	}
	var table bytes.Buffer
	s.WriteTable(&table)
	for _, want := range []string{"a.first", "z.last", "m.mid", "lat"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, table.String())
		}
	}
}

// TestTracerJSONL drives spans and events, then checks every line is a
// valid JSON object with the schema's reserved keys.
func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	run := tr.StartSpan(0, "run", Fields{"metric": "ER"})
	sub := tr.StartSpan(run, "sub_miter", Fields{"index": 0, "output": "dev0"})
	tr.Event(sub, "sim_decision", Fields{"accepted": true, "density": 2.5, "gates": 30, "k": 5})
	tr.EndSpan(sub, "sub_miter", Fields{"count": "12"})
	tr.EndSpan(run, "run", nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 {
		t.Fatalf("got %d events, want 5", len(lines))
	}
	if lines[0]["ev"] != "span_start" || lines[0]["span"] != "run" {
		t.Errorf("first event = %v", lines[0])
	}
	if lines[1]["parent"] != float64(run) {
		t.Errorf("sub_miter parent = %v, want %v", lines[1]["parent"], run)
	}
	if lines[2]["ev"] != "sim_decision" || lines[2]["accepted"] != true {
		t.Errorf("sim_decision event = %v", lines[2])
	}
	if lines[3]["ev"] != "span_end" || lines[3]["count"] != "12" {
		t.Errorf("span_end event = %v", lines[3])
	}
	if _, ok := lines[3]["dur_us"]; !ok {
		t.Errorf("span_end missing dur_us: %v", lines[3])
	}
}

// TestTracerConcurrent hammers one tracer from many goroutines and
// verifies the output is still line-wise valid JSON (the race detector
// additionally checks the locking).
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.StartSpan(0, "sub_miter", Fields{"worker": w, "i": i})
				tr.Event(id, "component", Fields{"vars": i})
				tr.EndSpan(id, "sub_miter", nil)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved/corrupt line %q: %v", sc.Text(), err)
		}
		n++
	}
	if want := 8 * 200 * 3; n != want {
		t.Errorf("got %d lines, want %d", n, want)
	}
}

func TestReservedKeysNotOverridden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	id := tr.StartSpan(0, "run", Fields{"ev": "spoof", "id": 999, "note": "kept"})
	tr.EndSpan(id, "run", nil)
	tr.Close()
	sc := bufio.NewScanner(&buf)
	sc.Scan()
	var m map[string]any
	if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["ev"] != "span_start" || m["id"] != float64(id) {
		t.Errorf("reserved keys overridden by fields: %v", m)
	}
	if m["note"] != "kept" {
		t.Errorf("regular field dropped: %v", m)
	}
}

func TestGlobalTracerAndContextSpan(t *testing.T) {
	if Enabled() {
		t.Fatal("tracer unexpectedly enabled at test start")
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	SetTracer(tr)
	defer SetTracer(nil)
	if Active() != tr || !Enabled() {
		t.Fatal("SetTracer did not install the tracer")
	}
	ctx := WithSpan(context.Background(), SpanID(7))
	if got := SpanFrom(ctx); got != 7 {
		t.Errorf("SpanFrom = %d, want 7", got)
	}
	if got := SpanFrom(context.Background()); got != 0 {
		t.Errorf("SpanFrom(empty) = %d, want 0", got)
	}
	SetTracer(nil)
	if Enabled() {
		t.Error("SetTracer(nil) did not disable tracing")
	}
}
