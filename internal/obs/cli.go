package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// CLIConfig is the observability surface both commands expose as flags.
// Zero values mean "off"; Setup with a zero config returns a no-op
// closer.
type CLIConfig struct {
	TracePath  string // -trace: JSONL span/event stream
	CPUProfile string // -cpuprofile: pprof CPU profile path
	MemProfile string // -memprofile: heap profile path, written at stop
	PprofAddr  string // -pprof: live net/http/pprof listen address
}

// Setup installs the requested tracer and profilers and returns a stop
// function that flushes and closes everything. Callers must run stop on
// every exit path (so main must not os.Exit past it); stop is safe to
// call exactly once.
func Setup(cfg CLIConfig) (stop func() error, err error) {
	var closers []func() error
	fail := func(err error) (func() error, error) {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		return nil, err
	}

	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		tr := NewTracer(f)
		SetTracer(tr)
		closers = append(closers, func() error {
			SetTracer(nil)
			err := tr.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			return pprof.Lookup("heap").WriteTo(f, 0)
		})
	}

	if cfg.PprofAddr != "" {
		// Listen synchronously so a bad address fails the run up front
		// instead of logging from a goroutine.
		ln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			return fail(fmt.Errorf("pprof: %w", err))
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		closers = append(closers, func() error {
			return srv.Close()
		})
	}

	return func() error {
		var first error
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// WriteMetrics dumps the default registry in the format of the -metrics
// flag: "table" or "json".
func WriteMetrics(w io.Writer, format string) error {
	snap := Default.Snapshot()
	switch format {
	case "table":
		snap.WriteTable(w)
		return nil
	case "json":
		return snap.WriteJSON(w)
	default:
		return fmt.Errorf("unknown -obs-metrics format %q (want table or json)", format)
	}
}
