package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Hub is a broadcast channel for live introspection events: the flight
// recorder publishes run/sample events, the engine publishes task
// start/done events, and the plan layer publishes per-bit progress.
// The introspection server's /debug/vacsem/progress endpoint is a
// subscriber; so is anything embedding the library.
//
// Publishing is a no-op (one atomic load) while nobody subscribes, so
// the instrumented layers publish unconditionally without a config
// knob. Slow subscribers never block a publisher: events that do not
// fit a subscriber's buffer are dropped for that subscriber (counted in
// obs.stream_dropped) — live introspection prefers losing a sample over
// stalling the solver.
type Hub struct {
	mu   sync.Mutex
	subs map[uint64]chan []byte
	next uint64
	n    atomic.Int32
	seq  atomic.Uint64
}

// Stream is the process-wide hub the instrumented packages publish to.
var Stream = NewHub()

var mStreamDropped = Default.Counter("obs.stream_dropped")

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[uint64]chan []byte)}
}

// Active reports whether the hub has at least one subscriber. Callers
// assembling expensive payloads should check it first.
func (h *Hub) Active() bool { return h.n.Load() > 0 }

// Subscribe registers a new subscriber with the given channel buffer
// (values <= 0 get a sensible default). Each delivered value is one
// complete JSON event line (no trailing newline). The returned cancel
// func unregisters the subscriber and closes the channel; it is safe to
// call more than once.
func (h *Hub) Subscribe(buf int) (<-chan []byte, func()) {
	if buf <= 0 {
		buf = 256
	}
	ch := make(chan []byte, buf)
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	h.n.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, id)
			close(ch)
			h.mu.Unlock()
			h.n.Add(-1)
		})
	}
	return ch, cancel
}

// Publish broadcasts one event of the given kind. The header keys "ev",
// "seq" and "t_ms" are stamped by the hub ("t_ms" is milliseconds on
// the SinceStart clock, the same clock ProgressEvent timestamps use);
// fields with those names are dropped. A no-op without subscribers.
func (h *Hub) Publish(kind string, fields Fields) {
	if !h.Active() {
		return
	}
	payload := make(Fields, len(fields)+3)
	for k, v := range fields {
		switch k {
		case "ev", "seq", "t_ms":
		default:
			payload[k] = v
		}
	}
	payload["ev"] = kind
	payload["seq"] = h.seq.Add(1)
	payload["t_ms"] = float64(SinceStart().Microseconds()) / 1e3
	line, err := json.Marshal(payload)
	if err != nil {
		line, _ = json.Marshal(Fields{"ev": "stream_error", "error": err.Error()})
	}
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- line:
		default:
			mStreamDropped.Inc()
		}
	}
	h.mu.Unlock()
}
