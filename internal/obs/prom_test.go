package obs

import (
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition of a small
// controlled registry: name sanitization (dots, leading digits), the
// HELP/TYPE preamble, and the cumulative _bucket/_sum/_count triple.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("counter.decisions").Add(5)
	r.Counter("7bad.name").Add(2)
	r.Gauge("solver.depth").Set(-3)
	h := r.Histogram("lat.seconds", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.5, 3} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb, PromOptions{Prefix: "vacsem_"}); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP vacsem__7bad_name 7bad.name
# TYPE vacsem__7bad_name counter
vacsem__7bad_name 2
# HELP vacsem_counter_decisions counter.decisions
# TYPE vacsem_counter_decisions counter
vacsem_counter_decisions 5
# HELP vacsem_solver_depth solver.depth
# TYPE vacsem_solver_depth gauge
vacsem_solver_depth -3
# HELP vacsem_lat_seconds lat.seconds
# TYPE vacsem_lat_seconds histogram
vacsem_lat_seconds_bucket{le="0.1"} 1
vacsem_lat_seconds_bucket{le="1"} 3
vacsem_lat_seconds_bucket{le="+Inf"} 4
vacsem_lat_seconds_sum 4.05
vacsem_lat_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPromLabelEscaping pins label-value escaping (backslash, quote,
// newline) and const-label ordering.
func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	var sb strings.Builder
	err := r.Snapshot().WritePrometheus(&sb, PromOptions{
		ConstLabels: map[string]string{
			"zz":       "plain",
			"instance": "a\\b\"c\nd",
		},
	})
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `x{instance="a\\b\"c\nd",zz="plain"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Errorf("missing escaped sample %q in:\n%s", want, sb.String())
	}
}

var (
	promCommentRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSampleRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_:][a-zA-Z0-9_:]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_:][a-zA-Z0-9_:]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+]+|\+Inf|-Inf|NaN)$`)
)

// TestWritePrometheusParses feeds a realistic registry (dotted names,
// default latency buckets, zero and non-zero metrics) through a strict
// line parser for the 0.0.4 grammar and checks the histogram
// invariants: buckets cumulative and monotone, +Inf bucket == _count.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("counter.decisions").Add(123456)
	r.Counter("engine.sub_miters") // zero-valued
	r.Gauge("cache.entries").Set(42)
	h := r.Histogram("core.run_seconds", nil) // default LatencyBuckets
	for i := 0; i < 500; i++ {
		h.Observe(float64(i%37) * 0.01)
	}

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb, PromOptions{Prefix: "vacsem_"}); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition must end with a newline")
	}

	type hist struct {
		bounds []float64
		cum    []uint64
		inf    uint64
		count  uint64
		hasInf bool
	}
	hists := map[string]*hist{}
	getHist := func(name string) *hist {
		if hists[name] == nil {
			hists[name] = &hist{}
		}
		return hists[name]
	}
	leRe := regexp.MustCompile(`\{le="([^"]+)"\}`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promCommentRe.MatchString(line) {
				t.Errorf("bad comment line: %q", line)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		name, value := m[1], m[4]
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			le := leRe.FindStringSubmatch(line)
			if le == nil {
				t.Errorf("bucket without le label: %q", line)
				continue
			}
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Errorf("bucket value %q: %v", value, err)
				continue
			}
			hs := getHist(base)
			if le[1] == "+Inf" {
				hs.inf, hs.hasInf = n, true
			} else {
				bound, err := strconv.ParseFloat(le[1], 64)
				if err != nil {
					t.Errorf("le bound %q: %v", le[1], err)
					continue
				}
				hs.bounds = append(hs.bounds, bound)
				hs.cum = append(hs.cum, n)
			}
		case strings.HasSuffix(name, "_count"):
			n, _ := strconv.ParseUint(value, 10, 64)
			getHist(strings.TrimSuffix(name, "_count")).count = n
		}
	}

	if len(hists) != 1 {
		t.Fatalf("parsed %d histograms, want 1", len(hists))
	}
	for name, hs := range hists {
		if !hs.hasInf {
			t.Errorf("%s: no +Inf bucket", name)
		}
		if hs.inf != hs.count {
			t.Errorf("%s: +Inf bucket %d != _count %d", name, hs.inf, hs.count)
		}
		if hs.count != 500 {
			t.Errorf("%s: _count = %d, want 500", name, hs.count)
		}
		if !sort.Float64sAreSorted(hs.bounds) {
			t.Errorf("%s: le bounds not ascending: %v", name, hs.bounds)
		}
		for i := 1; i < len(hs.cum); i++ {
			if hs.cum[i] < hs.cum[i-1] {
				t.Errorf("%s: bucket counts not cumulative at le=%g: %d < %d",
					name, hs.bounds[i], hs.cum[i], hs.cum[i-1])
			}
		}
		if n := len(hs.cum); n > 0 && hs.cum[n-1] > hs.inf {
			t.Errorf("%s: last finite bucket %d exceeds +Inf %d", name, hs.cum[n-1], hs.inf)
		}
	}
}

// TestHistogramQuantile cross-checks the bucket-interpolated quantile
// against a brute-force reference distribution: for each q the estimate
// must land inside the bucket that holds the true empirical quantile,
// and estimates must be monotone in q.
func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{0.5, 1, 2, 4, 8, 16}
	h := newHistogram(bounds)
	// Deterministic pseudo-random values in (0, 20).
	var vals []float64
	seed := uint64(12345)
	for i := 0; i < 2000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := float64(seed>>11) / float64(1<<53) * 20
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	snap := HistogramSnapshot{Name: "t", Bounds: bounds,
		Buckets: make([]uint64, len(bounds)+1), Count: h.Count(), Sum: h.Sum()}
	for i := range h.buckets {
		snap.Buckets[i] = h.buckets[i].Load()
	}

	// bucketRange returns the [lo, hi] band of the bucket holding v
	// (overflow values report the highest finite bound, like Quantile).
	bucketRange := func(v float64) (float64, float64) {
		lo := 0.0
		for _, b := range bounds {
			if v <= b {
				return lo, b
			}
			lo = b
		}
		top := bounds[len(bounds)-1]
		return top, top
	}

	prev := math.Inf(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		est := snap.Quantile(q)
		if math.IsNaN(est) {
			t.Fatalf("Quantile(%g) = NaN on non-empty histogram", q)
		}
		if est < prev {
			t.Errorf("Quantile not monotone: q=%g gave %g after %g", q, est, prev)
		}
		prev = est
		// True empirical quantile from the raw values.
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank > 0 {
			rank--
		}
		lo, hi := bucketRange(vals[rank])
		if est < lo-1e-9 || est > hi+1e-9 {
			t.Errorf("Quantile(%g) = %g outside true bucket [%g, %g] (true value %g)",
				q, est, lo, hi, vals[rank])
		}
	}

	// Edge cases.
	if v := snap.Quantile(-0.1); !math.IsNaN(v) {
		t.Errorf("Quantile(-0.1) = %g, want NaN", v)
	}
	if v := snap.Quantile(1.1); !math.IsNaN(v) {
		t.Errorf("Quantile(1.1) = %g, want NaN", v)
	}
	empty := HistogramSnapshot{Bounds: bounds, Buckets: make([]uint64, len(bounds)+1)}
	if v := empty.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty Quantile = %g, want NaN", v)
	}

	// All mass in the overflow bucket: the estimate saturates at the
	// highest finite bound.
	over := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []uint64{0, 0, 10}, Count: 10}
	if v := over.Quantile(0.5); v != 2 {
		t.Errorf("overflow Quantile = %g, want 2", v)
	}
}
