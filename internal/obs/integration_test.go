package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/core"
	"vacsem/internal/counter"
	"vacsem/internal/gen"
	"vacsem/internal/obs"
)

// event is the decoded JSONL schema; Fields keeps everything else.
type event struct {
	Ev     string
	Span   string
	ID     uint64
	Parent uint64
	Fields map[string]json.RawMessage
}

func parseTrace(t *testing.T, data []byte) []event {
	t.Helper()
	var evs []event
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		fields := map[string]json.RawMessage{}
		if err := json.Unmarshal([]byte(line), &fields); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		var e event
		e.Fields = fields
		str := func(key string) string {
			var s string
			json.Unmarshal(fields[key], &s)
			return s
		}
		num := func(key string) uint64 {
			var n uint64
			json.Unmarshal(fields[key], &n)
			return n
		}
		e.Ev, e.Span = str("ev"), str("span")
		e.ID, e.Parent = num("id"), num("parent")
		if e.Ev == "" {
			t.Fatalf("trace line %d has no \"ev\" key: %s", i+1, line)
		}
		if _, ok := fields["t_us"]; !ok {
			t.Fatalf("trace line %d has no \"t_us\" key: %s", i+1, line)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestTracedRunStatsConsistent is the tentpole's acceptance check: a
// traced MED verification (parallel workers) must produce a parseable
// JSONL stream whose per-sub-miter span stats sum exactly to the
// Result.TotalStats the API reports — and tracing must not perturb the
// verified count.
func TestTracedRunStatsConsistent(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 3)
	opt := core.Options{Workers: 4}

	baseline, err := core.VerifyMED(exact, approx, opt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	tr.SetHotEvery(1) // sample everything: schema coverage matters here
	obs.SetTracer(tr)
	res, err := core.VerifyMED(exact, approx, opt)
	obs.SetTracer(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Count.Cmp(baseline.Count) != 0 {
		t.Fatalf("tracing changed the count: %v (traced) vs %v (untraced)", res.Count, baseline.Count)
	}

	evs := parseTrace(t, buf.Bytes())
	started := map[uint64]string{0: "root"}
	var sessions, plans, runs, subEnds int
	var sum counter.Stats
	for _, e := range evs {
		if _, ok := started[e.Parent]; !ok {
			t.Errorf("event %+v references unknown parent span %d", e.Ev, e.Parent)
		}
		switch e.Ev {
		case "span_start":
			started[e.ID] = e.Span
			switch e.Span {
			case "session":
				sessions++
			case "plan":
				plans++
			case "run":
				runs++
			}
		case "span_end":
			if started[e.ID] != e.Span {
				t.Errorf("span_end %d kind %q does not match its start %q", e.ID, e.Span, started[e.ID])
			}
			if _, ok := e.Fields["dur_us"]; !ok {
				t.Errorf("span_end %d has no dur_us", e.ID)
			}
			if e.Span == "sub_miter" {
				subEnds++
				var st counter.Stats
				if err := json.Unmarshal(e.Fields["stats"], &st); err != nil {
					t.Fatalf("sub_miter span_end stats: %v", err)
				}
				sum.Add(st)
			}
		}
	}
	if sessions != 1 || plans != 1 || runs != 1 {
		t.Errorf("trace has %d session / %d plan / %d run spans, want 1 each",
			sessions, plans, runs)
	}
	// One sub_miter span per unique counting task: bits whose task was
	// deduplicated (Shared) produce no span of their own.
	unique := 0
	for _, sub := range res.Subs {
		if !sub.Shared {
			unique++
		}
	}
	if subEnds != unique {
		t.Errorf("trace has %d sub_miter span ends, want %d unique tasks (of %d bits)",
			subEnds, unique, len(res.Subs))
	}
	if sum != res.TotalStats {
		t.Errorf("sub_miter span stats sum %+v != Result.TotalStats %+v", sum, res.TotalStats)
	}
}
