package expo

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vacsem/internal/obs"
)

// testOptions wires a handler to a private registry, hub and recorder
// so tests never race the process-wide defaults.
func testOptions(t *testing.T) (Options, *obs.Registry, *obs.Hub, *obs.Recorder) {
	t.Helper()
	reg := obs.NewRegistry()
	hub := obs.NewHub()
	rec := obs.NewRecorder(reg, time.Millisecond, []string{"counter.decisions"})
	opt := Options{
		Registry: reg,
		Hub:      hub,
		Recorder: func() *obs.Recorder { return rec },
	}
	return opt, reg, hub, rec
}

func TestMetricsEndpoint(t *testing.T) {
	opt, reg, _, _ := testOptions(t)
	reg.Counter("counter.decisions").Add(77)
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "vacsem_counter_decisions 77") {
		t.Errorf("exposition missing prefixed counter:\n%s", body)
	}
	if !strings.Contains(string(body), "# TYPE vacsem_counter_decisions counter") {
		t.Errorf("exposition missing TYPE line:\n%s", body)
	}
}

func TestMetricsPrefixOverride(t *testing.T) {
	opt, reg, _, _ := testOptions(t)
	reg.Counter("x").Inc()
	opt.Prefix = "-" // explicit no-prefix
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "\nx 1\n") && !strings.HasPrefix(string(body), "x 1\n") {
		t.Errorf("unprefixed sample missing:\n%s", body)
	}
}

func TestRunsEndpoint(t *testing.T) {
	opt, reg, _, rec := testOptions(t)
	h := rec.StartRun(0, "ER")
	reg.Counter("counter.decisions").Add(10)
	h.Finish()
	active := rec.StartRun(0, "MED")
	defer active.Finish()

	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vacsem/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap obs.FlightSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Label != "ER" {
		t.Errorf("recent = %+v, want one ER run", snap.Recent)
	}
	if len(snap.Active) != 1 || snap.Active[0].Label != "MED" {
		t.Errorf("active = %+v, want one MED run", snap.Active)
	}
	if got := snap.Recent[0].Series[0]; got[len(got)-1] != 10 {
		t.Errorf("recent run final decisions = %v, want 10", got)
	}
}

func TestRunsEndpointNoRecorder(t *testing.T) {
	opt, _, _, _ := testOptions(t)
	opt.Recorder = func() *obs.Recorder { return nil }
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vacsem/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var snap struct {
		Active []any `json:"active"`
		Recent []any `json:"recent"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if snap.Active == nil || snap.Recent == nil {
		t.Errorf("want empty arrays, not null: %s", body)
	}
}

// The progress endpoint streams hub events as NDJSON, opening with a
// stream_open line that lists the active runs.
func TestProgressStreamNDJSON(t *testing.T) {
	opt, _, hub, rec := testOptions(t)
	run := rec.StartRun(9, "ER+MED")
	defer run.Finish()
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vacsem/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no stream_open line")
	}
	var open map[string]any
	if err := json.Unmarshal(sc.Bytes(), &open); err != nil {
		t.Fatalf("stream_open not JSON: %v (%q)", err, sc.Text())
	}
	if open["ev"] != "stream_open" {
		t.Fatalf("first event = %v", open["ev"])
	}
	runs, ok := open["active_runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Errorf("active_runs = %v, want the one live run", open["active_runs"])
	}

	// Wait for the subscription to land before publishing, then the
	// event must arrive on the stream.
	deadline := time.Now().Add(2 * time.Second)
	for !hub.Active() {
		if time.Now().After(deadline) {
			t.Fatal("handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	hub.Publish("task_done", obs.Fields{"index": 4})
	if !sc.Scan() {
		t.Fatal("no event line after publish")
	}
	var ev map[string]any
	if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
		t.Fatalf("event not JSON: %v", err)
	}
	if ev["ev"] != "task_done" || ev["index"].(float64) != 4 {
		t.Errorf("event = %v", ev)
	}
}

// With Accept: text/event-stream the same endpoint speaks SSE.
func TestProgressStreamSSE(t *testing.T) {
	opt, _, _, _ := testOptions(t)
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/debug/vacsem/progress", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first SSE line")
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("SSE line %q lacks data: prefix", line)
	}
	var open map[string]any
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &open); err != nil {
		t.Fatalf("SSE payload not JSON: %v", err)
	}
	if open["ev"] != "stream_open" {
		t.Errorf("first event = %v", open["ev"])
	}
}

func TestIndexAndPprofRoutes(t *testing.T) {
	opt, _, _, _ := testOptions(t)
	srv := httptest.NewServer(NewHandler(opt))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/debug/vacsem/progress") {
		t.Errorf("index missing route listing:\n%s", body)
	}

	// pprof delegates to DefaultServeMux (net/http/pprof registers there).
	resp, err = http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof via introspection mux: status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404", resp.StatusCode)
	}
}
