package expo

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/core"
	"vacsem/internal/gen"
	"vacsem/internal/obs"
)

// TestLiveIntrospectedVerify is the acceptance check for the tentpole:
// a verification with the flight recorder sampling and the introspection
// server being scraped concurrently (run under -race in CI) must
//
//   - serve parseable /metrics whose counter values only ever grow,
//   - stream per-task progress on /debug/vacsem/progress,
//   - attach a non-empty time-series to the result,
//   - and report counts bit-identical to the uninstrumented run.
func TestLiveIntrospectedVerify(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	apx := als.LowerORAdder(8, 3)
	opt := core.Options{Workers: 4}

	baseline, err := core.VerifyMED(exact, apx, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Install the full live stack: fast-sampling recorder + server.
	rec := obs.NewRecorder(nil, time.Millisecond, nil)
	rec.Start()
	obs.SetRecorder(rec)
	defer func() {
		obs.SetRecorder(nil)
		rec.Close()
	}()
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Progress subscriber: collect stream events for the whole run.
	progResp, err := http.Get(base + "/debug/vacsem/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer progResp.Body.Close()
	var (
		evMu     sync.Mutex
		events   []map[string]any
		evDone   = make(chan struct{})
		streamed = bufio.NewScanner(progResp.Body)
	)
	go func() {
		defer close(evDone)
		for streamed.Scan() {
			var ev map[string]any
			if json.Unmarshal(streamed.Bytes(), &ev) == nil {
				evMu.Lock()
				events = append(events, ev)
				evMu.Unlock()
			}
		}
	}()
	// Make sure the subscription landed before the run starts.
	deadline := time.Now().Add(2 * time.Second)
	for !obs.Stream.Active() {
		if time.Now().After(deadline) {
			t.Fatal("progress stream never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// Metrics scraper: hammer /metrics during the solve and require the
	// decisions counter to be monotone across scrapes.
	decRe := regexp.MustCompile(`(?m)^vacsem_counter_decisions (\d+)$`)
	scrape := func() uint64 {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Errorf("scrape: %v", err)
			return 0
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			t.Errorf("scrape Content-Type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		m := decRe.FindSubmatch(body)
		if m == nil {
			t.Errorf("scrape missing vacsem_counter_decisions:\n%.400s", body)
			return 0
		}
		n, _ := strconv.ParseUint(string(m[1]), 10, 64)
		return n
	}
	solveDone := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		var prev uint64
		for {
			n := scrape()
			if n < prev {
				t.Errorf("decisions counter went backwards: %d -> %d", prev, n)
			}
			prev = n
			select {
			case <-solveDone:
				return
			default:
			}
		}
	}()

	res, err := core.VerifyMED(exact, apx, opt)
	close(solveDone)
	<-scrapeDone
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical to the uninstrumented run.
	if res.Count.Cmp(baseline.Count) != 0 {
		t.Errorf("instrumented count %s != baseline %s", res.Count, baseline.Count)
	}
	if res.Value.Cmp(baseline.Value) != 0 {
		t.Errorf("instrumented value %s != baseline %s", res.Value.RatString(), baseline.Value.RatString())
	}

	// Non-empty time-series attached to the result.
	ts := res.Timeseries
	if ts == nil {
		t.Fatal("result carries no Timeseries despite active recorder")
	}
	if ts.RunID == 0 || ts.Label != "MED" || len(ts.TMs) == 0 {
		t.Errorf("timeseries = run %d %q with %d points", ts.RunID, ts.Label, len(ts.TMs))
	}
	for i, name := range ts.Names {
		if name == "counter.decisions" {
			s := ts.Series[i]
			if got, want := s[len(s)-1], res.TotalStats.Decisions; got != want {
				t.Errorf("timeseries final decisions = %d, want the run's %d", got, want)
			}
		}
	}

	// The flight endpoint now lists the finished run.
	runsResp, err := http.Get(base + "/debug/vacsem/runs")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.FlightSnapshot
	err = json.NewDecoder(runsResp.Body).Decode(&snap)
	runsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range snap.Recent {
		if r.RunID == ts.RunID {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/vacsem/runs recent lacks run %d: %+v", ts.RunID, snap.Recent)
	}

	// The stream saw the run's lifecycle and per-task progress. Events
	// are delivered asynchronously; give stragglers a moment.
	wanted := map[string]bool{"run_start": false, "task_done": false, "progress": false, "run_end": false}
	deadline = time.Now().Add(5 * time.Second)
	for {
		evMu.Lock()
		for _, ev := range events {
			kind, _ := ev["ev"].(string)
			if _, ok := wanted[kind]; ok {
				if id, _ := ev["run_id"].(float64); uint64(id) == ts.RunID {
					wanted[kind] = true
				}
			}
		}
		evMu.Unlock()
		all := true
		for _, seen := range wanted {
			all = all && seen
		}
		if all || time.Now().After(deadline) {
			for kind, seen := range wanted {
				if !seen {
					t.Errorf("stream never delivered %q for run %d", kind, ts.RunID)
				}
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	progResp.Body.Close()
	<-evDone
}
