package expo

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vacsem/internal/obs"
)

// CLIConfig is the observability surface both commands expose as flags.
// Zero values mean "off"; Setup with a zero config returns a no-op
// closer.
type CLIConfig struct {
	TracePath  string // -trace: JSONL span/event stream
	CPUProfile string // -cpuprofile: pprof CPU profile path
	MemProfile string // -memprofile: heap profile path, written at stop
	PprofAddr  string // -pprof: live net/http/pprof listen address
	// IntrospectAddr is the -introspect listen address: /metrics,
	// /debug/vacsem/* and /debug/pprof. When it equals PprofAddr the two
	// flags share one listener.
	IntrospectAddr string
	// FlightInterval controls the flight recorder: a positive duration
	// samples at that interval, a negative one disables recording, and 0
	// means auto — record at obs.DefaultFlightInterval whenever the
	// introspection server or the trace is on.
	FlightInterval time.Duration
}

// Setup installs the requested tracer, flight recorder, profilers and
// introspection server, and returns a stop function that flushes and
// closes everything — including the HTTP listeners, whose serve loops
// are waited out so tests and long-lived embedders do not leak ports or
// goroutines. Callers must run stop on every exit path (so main must
// not os.Exit past it); stop is safe to call exactly once.
func Setup(cfg CLIConfig) (stop func() error, err error) {
	var closers []func() error
	fail := func(err error) (func() error, error) {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		return nil, err
	}

	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		tr := obs.NewTracer(f)
		obs.SetTracer(tr)
		closers = append(closers, func() error {
			obs.SetTracer(nil)
			err := tr.Close()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			return err
		})
	}

	interval := cfg.FlightInterval
	if interval == 0 && (cfg.IntrospectAddr != "" || cfg.TracePath != "") {
		interval = obs.DefaultFlightInterval
	}
	if interval > 0 {
		rec := obs.NewRecorder(obs.Default, interval, nil)
		rec.Start()
		obs.SetRecorder(rec)
		closers = append(closers, func() error {
			obs.SetRecorder(nil)
			rec.Close()
			return nil
		})
	}

	if cfg.CPUProfile != "" {
		f, err := os.Create(cfg.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpuprofile: %w", err))
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}

	if cfg.MemProfile != "" {
		path := cfg.MemProfile
		closers = append(closers, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			return pprof.Lookup("heap").WriteTo(f, 0)
		})
	}

	if cfg.IntrospectAddr != "" {
		srv, err := Start(cfg.IntrospectAddr, Options{})
		if err != nil {
			return fail(fmt.Errorf("introspect: %w", err))
		}
		closers = append(closers, srv.Close)
	}

	// The introspection mux already delegates /debug/pprof, so when the
	// two flags name the same address they share that listener.
	if cfg.PprofAddr != "" && cfg.PprofAddr != cfg.IntrospectAddr {
		srv, err := serve(cfg.PprofAddr, http.DefaultServeMux)
		if err != nil {
			return fail(fmt.Errorf("pprof: %w", err))
		}
		closers = append(closers, srv.Close)
	}

	return func() error {
		var first error
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
