// Package expo is the live introspection server of the verification
// stack: an embeddable HTTP handler serving
//
//	/metrics                  Prometheus text exposition of the
//	                          obs metrics registry
//	/debug/vacsem/progress    live run state as a JSONL (or SSE) stream
//	                          fed by the obs stream hub: run start/end,
//	                          per-task phase events, per-bit progress,
//	                          periodic flight-recorder samples
//	/debug/vacsem/runs        the flight recorder's snapshot of active
//	                          and recent runs (per-run time-series)
//	/debug/pprof/...          the standard net/http/pprof handlers
//
// Everything is read-only and observes the same lock-free registry the
// solvers update, so scraping a live solve never perturbs its counts.
// Both CLIs expose the handler via -introspect ADDR (which may equal
// -pprof to share one listener).
package expo

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"strings"

	"vacsem/internal/obs"
)

// DefaultPrefix is the metric-name prefix of the /metrics exposition.
const DefaultPrefix = "vacsem_"

// Options configures a handler. The zero value serves the process-wide
// defaults: obs.Default, obs.Stream, and whatever flight recorder is
// installed at request time.
type Options struct {
	// Registry is the metrics registry behind /metrics (nil = obs.Default).
	Registry *obs.Registry
	// Hub is the stream behind /debug/vacsem/progress (nil = obs.Stream).
	Hub *obs.Hub
	// Recorder returns the flight recorder behind /debug/vacsem/runs.
	// Nil means obs.ActiveRecorder, resolved per request so a recorder
	// installed after the server starts is still served.
	Recorder func() *obs.Recorder
	// Prefix overrides the /metrics name prefix ("" = DefaultPrefix;
	// use "-" for no prefix).
	Prefix string
}

func (o Options) registry() *obs.Registry {
	if o.Registry != nil {
		return o.Registry
	}
	return obs.Default
}

func (o Options) hub() *obs.Hub {
	if o.Hub != nil {
		return o.Hub
	}
	return obs.Stream
}

func (o Options) recorder() *obs.Recorder {
	if o.Recorder != nil {
		return o.Recorder()
	}
	return obs.ActiveRecorder()
}

func (o Options) prefix() string {
	switch o.Prefix {
	case "":
		return DefaultPrefix
	case "-":
		return ""
	}
	return o.Prefix
}

// NewHandler builds the introspection mux. The pprof routes delegate to
// http.DefaultServeMux (where net/http/pprof registers itself), so one
// -introspect listener serves profiling too.
func NewHandler(opt Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "vacsem introspection server\n\n"+
			"  /metrics                 Prometheus text exposition\n"+
			"  /debug/vacsem/progress   live event stream (JSONL; SSE with Accept: text/event-stream)\n"+
			"  /debug/vacsem/runs       flight recorder snapshot (active + recent runs)\n"+
			"  /debug/pprof/            net/http/pprof\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		snap := opt.registry().Snapshot()
		snap.WritePrometheus(w, obs.PromOptions{Prefix: opt.prefix()})
	})
	mux.HandleFunc("/debug/vacsem/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		rec := opt.recorder()
		if rec == nil {
			enc.Encode(obs.FlightSnapshot{Active: []*obs.Timeseries{}, Recent: []*obs.Timeseries{}})
			return
		}
		enc.Encode(rec.Snapshot())
	})
	mux.HandleFunc("/debug/vacsem/progress", func(w http.ResponseWriter, r *http.Request) {
		serveProgress(opt, w, r)
	})
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	return mux
}

// serveProgress streams hub events to one client until it disconnects.
// Plain requests get JSON lines (application/x-ndjson); requests with
// Accept: text/event-stream get server-sent events. The first line is a
// stream_open event carrying the flight recorder's currently active
// runs, so a late subscriber knows what is in flight.
func serveProgress(opt Options, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeLine := func(line []byte) bool {
		var err error
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", line)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", line)
		}
		if err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	open := obs.Fields{"ev": "stream_open"}
	if rec := opt.recorder(); rec != nil {
		snap := rec.Snapshot()
		active := make([]obs.Fields, 0, len(snap.Active))
		for _, ts := range snap.Active {
			active = append(active, obs.Fields{"run_id": ts.RunID, "label": ts.Label})
		}
		open["active_runs"] = active
		open["interval_ms"] = snap.IntervalMs
	}
	line, _ := json.Marshal(open)
	if !writeLine(line) {
		return
	}

	ch, cancel := opt.hub().Subscribe(0)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !writeLine(ev) {
				return
			}
		}
	}
}

// Server is a running introspection listener.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan error
}

// Start listens on addr (e.g. "localhost:6061" or "127.0.0.1:0") and
// serves the introspection handler. The listen happens synchronously so
// a bad address fails the caller up front.
func Start(addr string, opt Options) (*Server, error) {
	return serve(addr, NewHandler(opt))
}

// serve runs h on addr with a tracked listener and a shutdown path —
// Close closes the server and waits for the serve loop to return, so
// the port is free (and no goroutine leaks) when Close returns.
func serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan error, 1),
	}
	go func() { s.done <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down (closing the listener and all active
// connections, which unblocks streaming clients) and waits for the
// serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	if serr := <-s.done; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}
