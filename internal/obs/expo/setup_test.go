package expo

import (
	"net"
	"net/http"
	"testing"
	"time"

	"vacsem/internal/obs"
)

// freePort reserves then releases a loopback port, returning its
// address for a server to bind immediately after.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Close must wait out the serve loop so the port is immediately
// reusable — the teardown leak this PR fixes.
func TestServerCloseReleasesPort(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if _, err := http.Get("http://" + addr + "/"); err != nil {
		t.Fatalf("server not serving: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// We owned this port a microsecond ago; a clean shutdown means we
	// can bind it again right now.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}

// Setup's stop func tears the whole stack down: introspection listener
// closed (port released), flight recorder stopped and uninstalled.
func TestSetupTeardown(t *testing.T) {
	addr := freePort(t)
	stop, err := Setup(CLIConfig{IntrospectAddr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if obs.ActiveRecorder() == nil {
		t.Error("-introspect should auto-install the flight recorder")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("introspection server not serving: %v", err)
	}
	resp.Body.Close()

	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if obs.ActiveRecorder() != nil {
		t.Error("recorder still installed after stop")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("introspection port not released after stop: %v", err)
	}
	ln.Close()
}

// -pprof sharing -introspect's address must produce one listener, not
// an address-in-use failure.
func TestSetupSharedListener(t *testing.T) {
	addr := freePort(t)
	stop, err := Setup(CLIConfig{IntrospectAddr: addr, PprofAddr: addr, FlightInterval: -1})
	if err != nil {
		t.Fatalf("shared -pprof/-introspect address: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on shared listener: status %d", resp.StatusCode)
	}
	if obs.ActiveRecorder() != nil {
		t.Error("negative FlightInterval must disable the recorder")
	}
}

// A zero config is a no-op with a working stop.
func TestSetupZero(t *testing.T) {
	stop, err := Setup(CLIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if obs.ActiveRecorder() != nil {
		t.Error("zero config installed a recorder")
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

// FlightInterval > 0 records without any server.
func TestSetupFlightOnly(t *testing.T) {
	stop, err := Setup(CLIConfig{FlightInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.ActiveRecorder()
	if rec == nil {
		t.Fatal("recorder not installed")
	}
	if rec.Interval() != time.Millisecond {
		t.Errorf("interval = %v", rec.Interval())
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
	if obs.ActiveRecorder() != nil {
		t.Error("recorder still installed after stop")
	}
}
