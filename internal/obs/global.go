package obs

import (
	"context"
	"sync/atomic"
)

// active holds the installed tracer, or nil when tracing is disabled.
// The disabled fast path is a single atomic pointer load.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer (nil disables
// tracing). Long-running solves capture the tracer once at start, so an
// install mid-solve takes effect on the next solve.
func SetTracer(t *Tracer) {
	if t == nil {
		active.Store(nil)
		return
	}
	active.Store(t)
}

// Active returns the installed tracer, or nil when tracing is disabled.
func Active() *Tracer { return active.Load() }

// Enabled reports whether a tracer is installed.
func Enabled() bool { return active.Load() != nil }

type spanCtxKey struct{}

// WithSpan returns a context carrying the given span as the parent for
// downstream instrumentation (core's run span flows to the engine's
// backend span, which flows to each sub-miter span, which flows to the
// counter's component/cache/sim_decision events).
func WithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, id)
}

// SpanFrom extracts the parent span from a context (0 when none).
func SpanFrom(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(spanCtxKey{}).(SpanID); ok {
		return id
	}
	return 0
}
