package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// active holds the installed tracer, or nil when tracing is disabled.
// The disabled fast path is a single atomic pointer load.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer (nil disables
// tracing). Long-running solves capture the tracer once at start, so an
// install mid-solve takes effect on the next solve.
func SetTracer(t *Tracer) {
	if t == nil {
		active.Store(nil)
		return
	}
	active.Store(t)
}

// Active returns the installed tracer, or nil when tracing is disabled.
func Active() *Tracer { return active.Load() }

// Enabled reports whether a tracer is installed.
func Enabled() bool { return active.Load() != nil }

type spanCtxKey struct{}

// WithSpan returns a context carrying the given span as the parent for
// downstream instrumentation (core's run span flows to the engine's
// backend span, which flows to each sub-miter span, which flows to the
// counter's component/cache/sim_decision events).
func WithSpan(ctx context.Context, id SpanID) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, id)
}

// SpanFrom extracts the parent span from a context (0 when none).
func SpanFrom(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(spanCtxKey{}).(SpanID); ok {
		return id
	}
	return 0
}

// processStart anchors the process-wide monotonic clock shared by the
// stream hub, the flight recorder and ProgressEvent timestamps, so
// events from different layers of one process order consistently.
var processStart = time.Now()

// SinceStart returns the monotonic time elapsed since the obs package
// was initialized (process start, for practical purposes).
func SinceStart() time.Duration { return time.Since(processStart) }

// runIDs issues process-unique run identifiers.
var runIDs atomic.Uint64

// NextRunID returns a fresh process-unique run id. internal/core stamps
// one on every verification session; progress events, stream events,
// trace spans and flight-recorder time-series all carry it, so a live
// scrape can be correlated with the trace file after the fact.
func NextRunID() uint64 { return runIDs.Add(1) }

type runCtxKey struct{}

// WithRun returns a context carrying the given run id for downstream
// instrumentation (the engine's task events and the counter's live
// stats flushes attribute themselves to the run they serve).
func WithRun(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, runCtxKey{}, id)
}

// RunFrom extracts the run id from a context (0 when none).
func RunFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if id, ok := ctx.Value(runCtxKey{}).(uint64); ok {
		return id
	}
	return 0
}

// recorder holds the installed flight recorder, or nil when run
// recording is disabled. Like the tracer, the disabled fast path is one
// atomic pointer load.
var recorder atomic.Pointer[Recorder]

// SetRecorder installs r as the process-wide flight recorder (nil
// disables run recording). Sessions already in flight keep the recorder
// they captured at start.
func SetRecorder(r *Recorder) {
	if r == nil {
		recorder.Store(nil)
		return
	}
	recorder.Store(r)
}

// ActiveRecorder returns the installed flight recorder, or nil when run
// recording is disabled.
func ActiveRecorder() *Recorder { return recorder.Load() }
