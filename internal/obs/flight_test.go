package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// newTestRecorder returns a recorder over a fresh registry with a tiny
// tracked series, NOT started — tests drive sample() directly so they
// are deterministic and fast.
func newTestRecorder(t *testing.T) (*Recorder, *Registry) {
	t.Helper()
	reg := NewRegistry()
	rec := NewRecorder(reg, time.Millisecond, []string{"a", "b"})
	return rec, reg
}

// A run's series reports cumulative deltas since its own start, not the
// registry's absolute values.
func TestFlightDeltasSinceRunStart(t *testing.T) {
	rec, reg := newTestRecorder(t)
	reg.Counter("a").Add(100) // pre-run work must not leak into the run

	h := rec.StartRun(0, "test")
	reg.Counter("a").Add(5)
	reg.Counter("b").Add(7)
	rec.sample()
	reg.Counter("a").Add(5)
	ts := h.Finish()

	if ts.RunID == 0 {
		t.Error("RunID not assigned")
	}
	if ts.Label != "test" {
		t.Errorf("Label = %q", ts.Label)
	}
	if len(ts.TMs) != 2 {
		t.Fatalf("points = %d, want 2 (one sample + final)", len(ts.TMs))
	}
	// Series[0] = "a", Series[1] = "b".
	if got := ts.Series[0]; got[0] != 5 || got[1] != 10 {
		t.Errorf("series a = %v, want [5 10]", got)
	}
	if got := ts.Series[1]; got[0] != 7 || got[1] != 7 {
		t.Errorf("series b = %v, want [7 7]", got)
	}
	for i := 1; i < len(ts.TMs); i++ {
		if ts.TMs[i] < ts.TMs[i-1] {
			t.Errorf("TMs not monotone: %v", ts.TMs)
		}
	}
	if ts.DurMs <= 0 {
		t.Errorf("DurMs = %g, want > 0", ts.DurMs)
	}
}

// A run that ends before the first sampler tick still records one final
// point with its totals.
func TestFlightFinalSampleAlways(t *testing.T) {
	rec, reg := newTestRecorder(t)
	h := rec.StartRun(42, "fast")
	reg.Counter("a").Add(3)
	ts := h.Finish()
	if len(ts.TMs) != 1 {
		t.Fatalf("points = %d, want exactly the final sample", len(ts.TMs))
	}
	if ts.Series[0][0] != 3 {
		t.Errorf("final sample a = %d, want 3", ts.Series[0][0])
	}
	if ts.RunID != 42 {
		t.Errorf("RunID = %d, want the caller's 42", ts.RunID)
	}
	// Finish is idempotent and returns the same series.
	if again := h.Finish(); again != ts || len(again.TMs) != 1 {
		t.Error("second Finish changed the series")
	}
}

// Long runs stay within the sample bound by decimation, keeping
// whole-run coverage (first samples survive at coarser stride).
func TestFlightDecimationBound(t *testing.T) {
	rec, reg := newTestRecorder(t)
	h := rec.StartRun(0, "long")
	n := DefaultMaxSamples*4 + 13
	for i := 0; i < n; i++ {
		reg.Counter("a").Inc()
		rec.sample()
	}
	ts := h.Finish()
	if len(ts.TMs) > DefaultMaxSamples+1 {
		t.Errorf("points = %d, want <= %d", len(ts.TMs), DefaultMaxSamples+1)
	}
	if len(ts.TMs) < DefaultMaxSamples/4 {
		t.Errorf("points = %d — decimation discarded too much", len(ts.TMs))
	}
	if ts.StrideMs <= ts.IntervalMs {
		t.Errorf("StrideMs %g not raised above IntervalMs %g after decimation",
			ts.StrideMs, ts.IntervalMs)
	}
	// Cumulative values stay monotone through decimation, and the final
	// sample carries the exact total.
	s := ts.Series[0]
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("series not monotone at %d: %d < %d", i, s[i], s[i-1])
		}
	}
	if s[len(s)-1] != uint64(n) {
		t.Errorf("final cumulative = %d, want %d", s[len(s)-1], n)
	}
	for i := 1; i < len(ts.TMs); i++ {
		if ts.TMs[i] < ts.TMs[i-1] {
			t.Fatalf("TMs not monotone after decimation")
		}
	}
}

// Finished runs move to the bounded recent ring, oldest evicted first.
func TestFlightRecentRing(t *testing.T) {
	rec, _ := newTestRecorder(t)
	for i := 0; i < DefaultMaxRecent+5; i++ {
		h := rec.StartRun(uint64(1000+i), fmt.Sprintf("run%d", i))
		h.Finish()
	}
	snap := rec.Snapshot()
	if len(snap.Active) != 0 {
		t.Errorf("active = %d, want 0", len(snap.Active))
	}
	if len(snap.Recent) != DefaultMaxRecent {
		t.Fatalf("recent = %d, want %d", len(snap.Recent), DefaultMaxRecent)
	}
	// Oldest entries evicted: the ring starts at run 5.
	if got := snap.Recent[0].RunID; got != 1005 {
		t.Errorf("recent[0].RunID = %d, want 1005", got)
	}
	if got := snap.Recent[len(snap.Recent)-1].RunID; got != uint64(1000+DefaultMaxRecent+4) {
		t.Errorf("recent[last].RunID = %d", got)
	}
}

// Snapshot deep-copies active runs so the sampler can keep appending
// while a scraper serializes the snapshot.
func TestFlightSnapshotIsolation(t *testing.T) {
	rec, reg := newTestRecorder(t)
	h := rec.StartRun(0, "live")
	reg.Counter("a").Inc()
	rec.sample()
	snap := rec.Snapshot()
	if len(snap.Active) != 1 || len(snap.Active[0].TMs) != 1 {
		t.Fatalf("snapshot active = %+v", snap.Active)
	}
	before := len(snap.Active[0].TMs)
	rec.sample()
	rec.sample()
	if len(snap.Active[0].TMs) != before {
		t.Error("snapshot shares storage with the live series")
	}
	// And it serializes cleanly, with the empty recent list as a JSON
	// array rather than null.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	if !strings.Contains(string(b), `"recent":[]`) {
		t.Errorf("empty recent serialized as null: %s", b)
	}
	h.Finish()
}

// The background sampler records points on its own once started.
func TestFlightBackgroundSampler(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, 2*time.Millisecond, []string{"a"})
	rec.Start()
	defer rec.Close()
	h := rec.StartRun(0, "bg")
	reg.Counter("a").Add(9)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if snap := rec.Snapshot(); len(snap.Active) == 1 && len(snap.Active[0].TMs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler recorded no points within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	ts := h.Finish()
	if got := ts.Series[0][len(ts.Series[0])-1]; got != 9 {
		t.Errorf("final cumulative = %d, want 9", got)
	}
}
