package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) straight off a
// registry snapshot: counters and gauges as single samples, histograms
// as the conventional cumulative _bucket/_sum/_count triple. Metric
// names are sanitized (dots become underscores); the original dotted
// name is preserved in the HELP line.

// PromContentType is the Content-Type of the exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromOptions tunes WritePrometheus.
type PromOptions struct {
	// Prefix is prepended to every metric name (e.g. "vacsem_"). It is
	// sanitized like the rest of the name.
	Prefix string
	// ConstLabels are attached to every sample, rendered in sorted key
	// order with full value escaping.
	ConstLabels map[string]string
}

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:], mapping every other rune to '_' and prefixing names
// that would start with a digit.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal in HELP text).
func escapeHelp(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelSet renders the constant labels plus optional extra pairs (given
// as alternating key, value) as a {k="v",...} block, or "" when empty.
// Keys are sorted so the output is deterministic.
func labelSet(constLabels map[string]string, extra ...string) string {
	n := len(constLabels) + len(extra)/2
	if n == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n)
	for k, v := range constLabels {
		pairs = append(pairs, kv{k, v})
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, kv{extra[i], extra[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(p.k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way the exposition format expects
// (shortest round-trip representation; +Inf/-Inf/NaN spellings).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Every metric gets HELP (carrying the original
// dotted name) and TYPE lines; histograms expose cumulative buckets
// with the conventional le label, +Inf bucket, _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer, opt PromOptions) error {
	prefix := promName(opt.Prefix)
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, c := range s.Counters {
		name := prefix + promName(c.Name)
		pf("# HELP %s %s\n", name, escapeHelp(c.Name))
		pf("# TYPE %s counter\n", name)
		pf("%s%s %d\n", name, labelSet(opt.ConstLabels), c.Value)
	}
	for _, g := range s.Gauges {
		name := prefix + promName(g.Name)
		pf("# HELP %s %s\n", name, escapeHelp(g.Name))
		pf("# TYPE %s gauge\n", name)
		pf("%s%s %d\n", name, labelSet(opt.ConstLabels), g.Value)
	}
	for _, h := range s.Histograms {
		name := prefix + promName(h.Name)
		pf("# HELP %s %s\n", name, escapeHelp(h.Name))
		pf("# TYPE %s histogram\n", name)
		// The registry's buckets are disjoint ranges; the exposition
		// format wants cumulative counts per upper bound.
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			pf("%s_bucket%s %d\n", name,
				labelSet(opt.ConstLabels, "le", formatFloat(bound)), cum)
		}
		cum += h.Buckets[len(h.Buckets)-1]
		pf("%s_bucket%s %d\n", name,
			labelSet(opt.ConstLabels, "le", "+Inf"), cum)
		pf("%s_sum%s %s\n", name, labelSet(opt.ConstLabels), formatFloat(h.Sum))
		pf("%s_count%s %d\n", name, labelSet(opt.ConstLabels), cum)
	}
	return err
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank, the same estimate Prometheus' histogram_quantile
// computes. The first bucket interpolates from 0 (all registry
// histograms observe nonnegative values); ranks landing in the overflow
// bucket return the highest finite bound. Returns NaN for an empty
// histogram or q outside [0, 1].
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q < 0 || q > 1 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	target := q * float64(h.Count)
	cum := uint64(0)
	for i, bound := range h.Bounds {
		next := cum + h.Buckets[i]
		if float64(next) >= target {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if h.Buckets[i] == 0 {
				return bound
			}
			frac := (target - float64(cum)) / float64(h.Buckets[i])
			return lo + (bound-lo)*frac
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}
