package obs

import (
	"sync"
	"time"
)

// The flight recorder: a background sampler that snapshots a fixed set
// of registry counters at a regular interval into a bounded per-run
// time-series, turning "what was the solver doing between the start
// line and the result" into a readable curve (decisions/sec,
// propagations/sec, cache churn, sim kernel throughput, approx probe
// counts). Recording only reads atomic counters — it never changes
// verified counts.

// DefaultFlightInterval is the default sampling interval. At ~60
// tracked counters per tick this costs a few microseconds every 250ms —
// far below the noise floor of any benchmarked run.
const DefaultFlightInterval = 250 * time.Millisecond

// DefaultMaxSamples bounds the points kept per run. When a run outgrows
// the bound, the recorder halves the series (keeping every second
// point) and doubles that run's effective stride, so long runs keep
// whole-run coverage at bounded memory instead of losing their start.
const DefaultMaxSamples = 512

// DefaultMaxRecent bounds the finished runs the recorder retains for
// the /debug/vacsem/runs endpoint.
const DefaultMaxRecent = 16

// DefaultSeries is the counter set sampled per run: the solver, cache,
// simulation-kernel and approx-backend rates the ROADMAP's performance
// questions are phrased in.
var DefaultSeries = []string{
	"counter.decisions",
	"counter.propagations",
	"counter.components",
	"counter.cache_hits",
	"counter.cache_stores",
	"counter.cache_evictions",
	"counter.cache_cross_hits",
	"counter.sim_calls",
	"counter.sim_patterns",
	"counter.xor_propagations",
	"counter.gauss_reductions",
	"counter.approx_rounds",
	"counter.approx_probes",
	"sim.kernel_blocks",
	"sim.kernel_patterns",
	"engine.sub_miters",
}

// Timeseries is one run's recorded flight data. Values are cumulative
// deltas since the run started (consumers derive rates by differencing
// against TMs); Series is indexed [name][point], column-major, so the
// JSON stays compact for runs with many points.
type Timeseries struct {
	RunID uint64 `json:"run_id"`
	Label string `json:"label"`
	// IntervalMs is the recorder's base sampling interval; StrideMs the
	// run's effective stride after decimation (equal until the run
	// outgrows the sample bound).
	IntervalMs float64 `json:"interval_ms"`
	StrideMs   float64 `json:"stride_ms"`
	// DurMs is the run duration; zero while the run is still active.
	DurMs float64 `json:"dur_ms,omitempty"`
	// Names lists the sampled counters; TMs the sample times
	// (milliseconds since run start); Series[i][k] the cumulative delta
	// of Names[i] at TMs[k]. The final point is always taken at Finish,
	// so even sub-interval runs record their totals.
	Names  []string   `json:"names"`
	TMs    []float64  `json:"t_ms"`
	Series [][]uint64 `json:"series"`
}

func (ts *Timeseries) clone() *Timeseries {
	c := *ts
	c.TMs = append([]float64(nil), ts.TMs...)
	c.Series = make([][]uint64, len(ts.Series))
	for i, s := range ts.Series {
		c.Series[i] = append([]uint64(nil), s...)
	}
	return &c
}

// appendPoint records one sample; values are cumulative since run start.
func (ts *Timeseries) appendPoint(tMs float64, vals []uint64) {
	ts.TMs = append(ts.TMs, tMs)
	for i := range ts.Series {
		ts.Series[i] = append(ts.Series[i], vals[i])
	}
}

// decimate halves the series in place, keeping every second point
// (always retaining the most recent one), and doubles the stride.
func (ts *Timeseries) decimate() {
	n := len(ts.TMs)
	w := 0
	for r := n % 2; r < n; r += 2 {
		ts.TMs[w] = ts.TMs[r]
		for i := range ts.Series {
			ts.Series[i][w] = ts.Series[i][r]
		}
		w++
	}
	ts.TMs = ts.TMs[:w]
	for i := range ts.Series {
		ts.Series[i] = ts.Series[i][:w]
	}
	ts.StrideMs *= 2
}

// RunHandle is one active run inside a Recorder. The owning layer
// (internal/core) calls Finish exactly once when the run ends.
type RunHandle struct {
	rec   *Recorder
	ts    *Timeseries
	start time.Time
	base  []uint64 // counter values at run start
	tick  int      // sampler ticks seen by this run
	keep  int      // record every keep-th tick (doubles on decimation)
	done  bool
}

// Recorder samples a registry's counters on a fixed interval and
// attributes the deltas to the runs active at the time. Deltas are
// measured against each run's start values on the shared registry, so
// with concurrent runs each run's series includes the other runs' work
// — per-process attribution, like the registry itself. The CLIs run one
// verification at a time, where the attribution is exact.
type Recorder struct {
	reg      *Registry
	interval time.Duration
	maxSamp  int
	maxRec   int
	names    []string
	handles  []*Counter

	mu     sync.Mutex
	active map[uint64]*RunHandle
	recent []*Timeseries

	startOnce sync.Once
	stop      chan struct{}
	stopped   chan struct{}
}

// NewRecorder creates a recorder over reg (nil = Default) sampling the
// given counters (nil = DefaultSeries) every interval (0 =
// DefaultFlightInterval). Call Start to launch the sampler and Close to
// stop it.
func NewRecorder(reg *Registry, interval time.Duration, names []string) *Recorder {
	if reg == nil {
		reg = Default
	}
	if interval <= 0 {
		interval = DefaultFlightInterval
	}
	if names == nil {
		names = DefaultSeries
	}
	r := &Recorder{
		reg:      reg,
		interval: interval,
		maxSamp:  DefaultMaxSamples,
		maxRec:   DefaultMaxRecent,
		names:    append([]string(nil), names...),
		active:   make(map[uint64]*RunHandle),
		stop:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	r.handles = make([]*Counter, len(r.names))
	for i, n := range r.names {
		r.handles[i] = reg.Counter(n)
	}
	return r
}

// Interval returns the base sampling interval.
func (r *Recorder) Interval() time.Duration { return r.interval }

// read snapshots the tracked counters.
func (r *Recorder) read() []uint64 {
	vals := make([]uint64, len(r.handles))
	for i, c := range r.handles {
		vals[i] = c.Value()
	}
	return vals
}

// Start launches the background sampler; idempotent.
func (r *Recorder) Start() {
	r.startOnce.Do(func() { go r.loop() })
}

// Close stops the sampler and waits for it to exit. Active runs keep
// their recorded points and can still Finish (they just stop gaining
// periodic samples). Close is safe to call once, after Start.
func (r *Recorder) Close() {
	close(r.stop)
	<-r.stopped
}

func (r *Recorder) loop() {
	defer close(r.stopped)
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.sample()
		}
	}
}

// sample takes one reading and appends it to every active run,
// decimating runs that hit the sample bound. With stream subscribers
// attached it also publishes one live "sample" event per active run
// with the cumulative state and a derived cache hit rate.
func (r *Recorder) sample() {
	vals := r.read()
	now := time.Now()
	streaming := Stream.Active()
	r.mu.Lock()
	for _, h := range r.active {
		h.tick++
		if h.tick%h.keep != 0 {
			continue
		}
		cum := make([]uint64, len(vals))
		for i := range vals {
			cum[i] = vals[i] - h.base[i]
		}
		h.ts.appendPoint(float64(now.Sub(h.start).Microseconds())/1e3, cum)
		if len(h.ts.TMs) > r.maxSamp {
			h.ts.decimate()
			h.keep *= 2
		}
		if streaming {
			r.publishSample(h, cum)
		}
	}
	r.mu.Unlock()
}

// publishSample emits one live "sample" stream event for an active run:
// every tracked series (cumulative since run start) plus the derived
// cache hit rate — the live-state feed behind /debug/vacsem/progress.
func (r *Recorder) publishSample(h *RunHandle, cum []uint64) {
	series := make(map[string]uint64, len(r.names))
	var hits, stores uint64
	for i, n := range r.names {
		series[n] = cum[i]
		switch n {
		case "counter.cache_hits":
			hits = cum[i]
		case "counter.cache_stores":
			stores = cum[i]
		}
	}
	f := Fields{
		"run_id":   h.ts.RunID,
		"label":    h.ts.Label,
		"run_t_ms": float64(time.Since(h.start).Microseconds()) / 1e3,
		"series":   series,
		"points":   len(h.ts.TMs),
	}
	if hits+stores > 0 {
		f["cache_hit_rate"] = float64(hits) / float64(hits+stores)
	}
	Stream.Publish("sample", f)
}

// StartRun registers a run under the given id (0 lets the recorder
// assign one from NextRunID) and begins attributing sampled deltas to
// it. The caller must call Finish on the returned handle.
func (r *Recorder) StartRun(id uint64, label string) *RunHandle {
	if id == 0 {
		id = NextRunID()
	}
	intervalMs := float64(r.interval.Microseconds()) / 1e3
	h := &RunHandle{
		rec:   r,
		start: time.Now(),
		base:  r.read(),
		keep:  1,
		ts: &Timeseries{
			RunID:      id,
			Label:      label,
			IntervalMs: intervalMs,
			StrideMs:   intervalMs,
			Names:      append([]string(nil), r.names...),
			Series:     make([][]uint64, len(r.names)),
		},
	}
	r.mu.Lock()
	r.active[id] = h
	r.mu.Unlock()
	Stream.Publish("run_start", Fields{"run_id": id, "label": label})
	return h
}

// Finish takes one final unconditional sample (so even sub-interval
// runs record their totals), closes the run, moves it to the recorder's
// recent ring, and returns the completed time-series. The returned
// value is immutable from here on. Finish is idempotent; later calls
// return the same series.
func (h *RunHandle) Finish() *Timeseries {
	r := h.rec
	r.mu.Lock()
	if h.done {
		r.mu.Unlock()
		return h.ts
	}
	h.done = true
	vals := r.read()
	cum := make([]uint64, len(vals))
	for i := range vals {
		cum[i] = vals[i] - h.base[i]
	}
	dur := time.Since(h.start)
	h.ts.appendPoint(float64(dur.Microseconds())/1e3, cum)
	h.ts.DurMs = float64(dur.Microseconds()) / 1e3
	delete(r.active, h.ts.RunID)
	r.recent = append(r.recent, h.ts)
	if len(r.recent) > r.maxRec {
		copy(r.recent, r.recent[len(r.recent)-r.maxRec:])
		r.recent = r.recent[:r.maxRec]
	}
	r.mu.Unlock()
	Stream.Publish("run_end", Fields{
		"run_id": h.ts.RunID, "label": h.ts.Label,
		"dur_ms": h.ts.DurMs, "points": len(h.ts.TMs),
	})
	return h.ts
}

// FlightSnapshot is the recorder state served by /debug/vacsem/runs.
type FlightSnapshot struct {
	IntervalMs float64       `json:"interval_ms"`
	Active     []*Timeseries `json:"active"`
	Recent     []*Timeseries `json:"recent"`
}

// Snapshot copies the recorder's active and recent runs. Active series
// are deep-copied (the sampler keeps mutating them); recent ones are
// immutable and shared.
func (r *Recorder) Snapshot() FlightSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Both slices stay non-nil so the snapshot serves JSON arrays, not
	// null, even before any run has started or finished.
	s := FlightSnapshot{
		IntervalMs: float64(r.interval.Microseconds()) / 1e3,
		Active:     make([]*Timeseries, 0, len(r.active)),
		Recent:     append(make([]*Timeseries, 0, len(r.recent)), r.recent...),
	}
	for _, h := range r.active {
		s.Active = append(s.Active, h.ts.clone())
	}
	return s
}
