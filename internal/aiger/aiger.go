// Package aiger reads and writes combinational AND-inverter graphs in
// the ASCII AIGER format ("aag"), the interchange format of the hardware
// model-checking and logic-synthesis communities. Only combinational
// AIGs are supported (no latches); circuits with other gate kinds are
// converted through synth.ToAIG before writing.
package aiger

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vacsem/internal/circuit"
	"vacsem/internal/synth"
)

// Parse reads an ASCII AIGER (aag) file into a circuit. Inverted edges
// become Not nodes; AIGER literal 0/1 map to const0 and its negation.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q (only ascii 'aag' supported)", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: %d latches unsupported (combinational only)", nLatch)
	}

	readLits := func(n int, what string) ([][]int, error) {
		out := make([][]int, 0, n)
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("aiger: truncated %s section", what)
			}
			fields := strings.Fields(sc.Text())
			row := make([]int, len(fields))
			for j, f := range fields {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 || v > 2*maxVar+1 {
					return nil, fmt.Errorf("aiger: bad literal %q in %s", f, what)
				}
				row[j] = v
			}
			out = append(out, row)
		}
		return out, nil
	}
	ins, err := readLits(nIn, "input")
	if err != nil {
		return nil, err
	}
	outs, err := readLits(nOut, "output")
	if err != nil {
		return nil, err
	}
	ands, err := readLits(nAnd, "and")
	if err != nil {
		return nil, err
	}

	c := circuit.New("aig")
	// nodeOfVar[v] = circuit node of AIGER variable v.
	nodeOfVar := make([]int, maxVar+1)
	for i := range nodeOfVar {
		nodeOfVar[i] = -1
	}
	nodeOfVar[0] = 0
	for i, row := range ins {
		if len(row) != 1 || row[0]%2 != 0 || row[0] == 0 {
			return nil, fmt.Errorf("aiger: bad input literal row %v", row)
		}
		nodeOfVar[row[0]/2] = c.AddInput(fmt.Sprintf("i%d", i))
	}
	// AND definitions may be in any order in AIGER; resolve iteratively.
	notCache := map[int]int{}
	litNode := func(lit int) (int, bool) {
		n := nodeOfVar[lit/2]
		if n < 0 {
			return -1, false
		}
		if lit%2 == 0 {
			return n, true
		}
		if nn, ok := notCache[n]; ok {
			return nn, true
		}
		nn := c.AddGate(circuit.Not, n)
		notCache[n] = nn
		return nn, true
	}
	built := make([]bool, len(ands))
	remaining := len(ands)
	for remaining > 0 {
		progress := false
		for i, row := range ands {
			if built[i] {
				continue
			}
			if len(row) != 3 || row[0]%2 != 0 {
				return nil, fmt.Errorf("aiger: bad and row %v", row)
			}
			a, okA := litNode(row[1])
			b, okB := litNode(row[2])
			if !okA || !okB {
				continue
			}
			nodeOfVar[row[0]/2] = c.AddGate(circuit.And, a, b)
			built[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("aiger: undefined or cyclic AND dependencies")
		}
	}
	for i, row := range outs {
		if len(row) != 1 {
			return nil, fmt.Errorf("aiger: bad output row %v", row)
		}
		n, ok := litNode(row[0])
		if !ok {
			return nil, fmt.Errorf("aiger: output references undefined variable %d", row[0]/2)
		}
		c.AddOutput(n, fmt.Sprintf("o%d", i))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("aiger: %w", err)
	}
	return c, nil
}

// Write serializes the circuit as ASCII AIGER, converting to an AIG
// first when it contains non-AND/NOT gates. NOT nodes become inverted
// edges.
func Write(w io.Writer, c *circuit.Circuit) error {
	aig := synth.ToAIG(c)
	// AIGER literal of each node: var index assigned to inputs and AND
	// gates; NOT and BUF nodes resolve to (possibly inverted) literals.
	lit := make([]int, len(aig.Nodes))
	for i := range lit {
		lit[i] = -1
	}
	lit[0] = 0
	nextVar := 1
	for _, id := range aig.Inputs {
		lit[id] = 2 * nextVar
		nextVar++
	}
	type andRow struct{ lhs, a, b int }
	var ands []andRow
	for id := 1; id < len(aig.Nodes); id++ {
		nd := &aig.Nodes[id]
		switch nd.Kind {
		case circuit.Input:
		case circuit.Not:
			lit[id] = lit[nd.Fanins[0]] ^ 1
		case circuit.Buf:
			lit[id] = lit[nd.Fanins[0]]
		case circuit.And:
			lit[id] = 2 * nextVar
			nextVar++
			ands = append(ands, andRow{lit[id], lit[nd.Fanins[0]], lit[nd.Fanins[1]]})
		default:
			return fmt.Errorf("aiger: ToAIG left a %s node", nd.Kind)
		}
		if lit[id] < 0 {
			return fmt.Errorf("aiger: unresolved literal for node %d", id)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", nextVar-1, len(aig.Inputs), len(aig.Outputs), len(ands))
	for _, id := range aig.Inputs {
		fmt.Fprintf(bw, "%d\n", lit[id])
	}
	for _, o := range aig.Outputs {
		fmt.Fprintf(bw, "%d\n", lit[o])
	}
	for _, a := range ands {
		fmt.Fprintf(bw, "%d %d %d\n", a.lhs, a.a, a.b)
	}
	// Symbol table for inputs/outputs keeps the files debuggable.
	for i, id := range aig.Inputs {
		if n := aig.Nodes[id].Name; n != "" {
			fmt.Fprintf(bw, "i%d %s\n", i, n)
		}
	}
	for i := range aig.Outputs {
		fmt.Fprintf(bw, "o%d %s\n", i, aig.OutputName(i))
	}
	return bw.Flush()
}
