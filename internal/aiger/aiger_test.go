package aiger

import (
	"bytes"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestParseHandWritten(t *testing.T) {
	// y = a AND NOT b  (literals: a=2, b=4, and=6, output=6)
	src := "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 {
		t.Fatalf("interface: %v", c.Stat())
	}
	for x := uint64(0); x < 4; x++ {
		a := x&1 == 1
		b := x>>1&1 == 1
		want := a && !b
		if (c.EvalUint(x) == 1) != want {
			t.Errorf("wrong at %02b", x)
		}
	}
}

func TestParseInvertedOutputAndConst(t *testing.T) {
	// Output = NOT input; plus a constant-true output (literal 1).
	src := "aag 1 1 0 2 0\n2\n3\n1\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EvalUint(0); got != 3 {
		t.Errorf("EvalUint(0) = %b, want 11", got)
	}
	if got := c.EvalUint(1); got != 2 {
		t.Errorf("EvalUint(1) = %b, want 10", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"binary":    "aig 3 2 0 1 1\n",
		"latches":   "aag 3 1 1 1 0\n2\n4 2\n2\n",
		"truncated": "aag 3 2 0 1 1\n2\n4\n6\n",
		"badlit":    "aag 1 1 0 1 0\n2\n99\n",
		"undef":     "aag 3 1 0 1 1\n2\n6\n6 4 2\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := testutil.RandomCircuit(4+int(seed%4), 8+int(seed*5%25), 3, seed+500)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		if !testutil.SameFunction(c, back) {
			t.Fatalf("seed %d: AIGER round trip changed the function", seed)
		}
	}
}

func TestRoundTripArithmetic(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		gen.RippleCarryAdder(5),
		gen.ArrayMultiplier(3),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.SameFunction(c, back) {
			t.Fatalf("%s: round trip changed the function", c.Name)
		}
	}
}

func TestWriteHeaderShape(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	fields := strings.Fields(first)
	if len(fields) != 6 || fields[0] != "aag" || fields[3] != "0" {
		t.Errorf("header = %q", first)
	}
}

func TestWriteSymbolTable(t *testing.T) {
	c := circuit.New("sym")
	a := c.AddInput("alpha")
	c.AddOutput(c.AddGate(circuit.Not, a), "omega")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "i0 alpha") || !strings.Contains(s, "o0 omega") {
		t.Errorf("symbol table missing:\n%s", s)
	}
}
