package store

import (
	"bytes"
	"fmt"
	"math/big"
	"path/filepath"
	"sync"
	"testing"
)

// TestConeReuseSemantics pins the guarantee-compatibility rule: exact
// entries serve every request; approximate entries serve only
// approximate requests asking for an equal-or-looser (ε, δ).
func TestConeReuseSemantics(t *testing.T) {
	s := New(Config{})
	s.StoreCone("exact", ConeEntry{Count: big.NewInt(5), Inputs: 3, Exact: true, Backend: "vacsem"})
	s.StoreCone("approx", ConeEntry{
		Count: big.NewInt(6), Inputs: 3,
		Epsilon: 0.4, Delta: 0.1, Seed: 42, Backend: "approx",
	})

	cases := []struct {
		name string
		key  string
		req  Req
		want bool
	}{
		{"exact entry, exact request", "exact", Req{Exact: true}, true},
		{"exact entry, approx request", "exact", Req{Epsilon: 0.8, Delta: 0.2}, true},
		{"approx entry, exact request", "approx", Req{Exact: true}, false},
		{"approx entry, looser request", "approx", Req{Epsilon: 0.8, Delta: 0.2}, true},
		{"approx entry, equal request", "approx", Req{Epsilon: 0.4, Delta: 0.1}, true},
		{"approx entry, tighter eps", "approx", Req{Epsilon: 0.2, Delta: 0.2}, false},
		{"approx entry, tighter delta", "approx", Req{Epsilon: 0.8, Delta: 0.05}, false},
		{"absent key", "nope", Req{Exact: true}, false},
	}
	for _, c := range cases {
		if _, ok := s.LookupCone(c.key, c.req); ok != c.want {
			t.Errorf("%s: hit=%v, want %v", c.name, ok, c.want)
		}
	}

	st := s.Stats().Cones
	if st.Stores != 2 || st.Entries != 2 {
		t.Errorf("stores=%d entries=%d, want 2/2", st.Stores, st.Entries)
	}
	// 4 hits, 3 rejects (incompatible guarantees), 1 miss (absent key).
	if st.Hits != 4 || st.Rejects != 3 || st.Misses != 1 {
		t.Errorf("hits=%d rejects=%d misses=%d, want 4/3/1", st.Hits, st.Rejects, st.Misses)
	}

	e, ok := s.LookupCone("approx", Req{Epsilon: 0.8, Delta: 0.2})
	if !ok {
		t.Fatal("approx reuse lookup missed")
	}
	// The reused entry reports its own (stronger) guarantee + seed.
	if e.Epsilon != 0.4 || e.Delta != 0.1 || e.Seed != 42 || e.Backend != "approx" {
		t.Errorf("reused entry provenance = %+v", e)
	}
}

// TestStoreConeUpgrade pins the better-entry-wins rule: a store can
// only strengthen what later requests may reuse.
func TestStoreConeUpgrade(t *testing.T) {
	s := New(Config{})
	s.StoreCone("k", ConeEntry{Count: big.NewInt(10), Inputs: 4, Epsilon: 0.8, Delta: 0.2})
	s.StoreCone("k", ConeEntry{Count: big.NewInt(11), Inputs: 4, Epsilon: 0.4, Delta: 0.2})
	if e, ok := s.LookupCone("k", Req{Epsilon: 0.4, Delta: 0.2}); !ok || e.Count.Int64() != 11 {
		t.Fatalf("tighter approx entry did not replace looser one: %+v ok=%v", e, ok)
	}
	// A looser entry must not downgrade the stored one.
	s.StoreCone("k", ConeEntry{Count: big.NewInt(12), Inputs: 4, Epsilon: 0.8, Delta: 0.2})
	if e, _ := s.LookupCone("k", Req{Epsilon: 0.8, Delta: 0.2}); e.Count.Int64() != 11 {
		t.Fatalf("looser entry downgraded the store: count=%v", e.Count)
	}
	// Exact beats any approx.
	s.StoreCone("k", ConeEntry{Count: big.NewInt(13), Inputs: 4, Exact: true})
	if e, ok := s.LookupCone("k", Req{Exact: true}); !ok || e.Count.Int64() != 13 {
		t.Fatalf("exact entry did not replace approx one: %+v ok=%v", e, ok)
	}
	// A second exact store keeps the first (equal counts by construction).
	s.StoreCone("k", ConeEntry{Count: big.NewInt(13), Inputs: 4, Exact: true, Backend: "dpll"})
	if e, _ := s.LookupCone("k", Req{Exact: true}); e.Backend == "dpll" {
		t.Error("duplicate exact store replaced the original entry")
	}
	if s.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", s.Len())
	}
}

// TestConeEviction floods a tiny cone tier and checks the bound holds
// with evictions accounted.
func TestConeEviction(t *testing.T) {
	s := New(Config{MaxCones: 8})
	for i := 0; i < 100; i++ {
		s.StoreCone(fmt.Sprintf("k%d", i), ConeEntry{Count: big.NewInt(int64(i)), Inputs: 4, Exact: true})
	}
	if n := s.Len(); n > 8 {
		t.Errorf("cone tier holds %d entries, bound is 8", n)
	}
	st := s.Stats().Cones
	if st.Evictions == 0 {
		t.Error("no evictions recorded despite a full cone tier")
	}
	if st.Stores-st.Evictions != uint64(st.Entries) {
		t.Errorf("stores(%d) - evictions(%d) != entries(%d)", st.Stores, st.Evictions, st.Entries)
	}
}

// TestSnapshotLoadRoundTrip pins persistence: both tiers survive a
// snapshot -> fresh store -> load cycle with counts, provenance and
// reuse semantics intact.
func TestSnapshotLoadRoundTrip(t *testing.T) {
	src := New(Config{})
	// Binary-unsafe key bytes, mirroring the real canonical serializations.
	exKey := "cone-\x00\xff-A"
	apKey := "cone-\x01\x80-B"
	bigCnt := new(big.Int).Lsh(big.NewInt(12345), 200)
	src.StoreCone(exKey, ConeEntry{Count: bigCnt, Inputs: 250, Exact: true, Backend: "vacsem"})
	src.StoreCone(apKey, ConeEntry{
		Count: big.NewInt(77), Inputs: 9,
		Epsilon: 0.5, Delta: 0.1, Seed: 99, BestEffort: true, Backend: "approx",
	})
	src.Components().Store("comp-\x00-1", big.NewInt(3), 5)
	src.Components().Store("comp-\x00-2", new(big.Int).Lsh(big.NewInt(1), 100), 5)

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(Config{})
	if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	e, ok := dst.LookupCone(exKey, Req{Exact: true})
	if !ok || e.Count.Cmp(bigCnt) != 0 || e.Inputs != 250 || e.Backend != "vacsem" {
		t.Fatalf("exact cone lost in round trip: %+v ok=%v", e, ok)
	}
	e, ok = dst.LookupCone(apKey, Req{Epsilon: 0.5, Delta: 0.1})
	if !ok || e.Count.Int64() != 77 || e.Epsilon != 0.5 || e.Delta != 0.1 ||
		e.Seed != 99 || !e.BestEffort || e.Backend != "approx" {
		t.Fatalf("approx cone provenance lost in round trip: %+v ok=%v", e, ok)
	}
	// The reloaded approx entry must still refuse an exact request.
	if _, ok := dst.LookupCone(apKey, Req{Exact: true}); ok {
		t.Error("reloaded approx entry served an exact request")
	}
	cnt, cross, ok := dst.Components().Lookup("comp-\x00-2", 5)
	if !ok || cnt.Cmp(new(big.Int).Lsh(big.NewInt(1), 100)) != 0 {
		t.Fatalf("component lost in round trip: %v ok=%v", cnt, ok)
	}
	if !cross {
		t.Error("reloaded component hit is not a cross hit (owner should be 0)")
	}
}

// TestSnapshotFileRoundTrip exercises the atomic file path.
func TestSnapshotFileRoundTrip(t *testing.T) {
	src := New(Config{})
	src.StoreCone("k", ConeEntry{Count: big.NewInt(9), Inputs: 2, Exact: true})
	path := filepath.Join(t.TempDir(), "store.json")
	if err := src.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	dst := New(Config{})
	if err := dst.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if e, ok := dst.LookupCone("k", Req{Exact: true}); !ok || e.Count.Int64() != 9 {
		t.Fatalf("file round trip lost the entry: %+v ok=%v", e, ok)
	}
}

// TestLoadRejectsCorruption: version and malformed entries abort.
func TestLoadRejectsCorruption(t *testing.T) {
	for name, doc := range map[string]string{
		"bad version": `{"version":99,"cones":[],"components":[]}`,
		"bad key":     `{"version":1,"cones":[{"key":"!!!","count":"1","inputs":1,"exact":true}],"components":[]}`,
		"bad count":   `{"version":1,"cones":[{"key":"aw==","count":"x","inputs":1,"exact":true}],"components":[]}`,
		"neg count":   `{"version":1,"cones":[{"key":"aw==","count":"-4","inputs":1,"exact":true}],"components":[]}`,
		"approx no guarantee": `{"version":1,"cones":[` +
			`{"key":"aw==","count":"4","inputs":1,"exact":false}],"components":[]}`,
		"bad component": `{"version":1,"cones":[],"components":[{"key":"aw==","count":"zzz"}]}`,
		"not json":      `hello`,
	} {
		s := New(Config{})
		if err := s.Load(bytes.NewReader([]byte(doc))); err == nil {
			t.Errorf("%s: Load accepted a corrupt snapshot", name)
		}
	}
}

// TestStoreConcurrency hammers both tiers from many goroutines; run
// with -race this pins the locking discipline, and the final stats
// must balance.
func TestStoreConcurrency(t *testing.T) {
	s := New(Config{MaxCones: 1 << 16})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", i%64)
				if e, ok := s.LookupCone(key, Req{Exact: true}); ok {
					if e.Count.Int64() != int64(i%64) {
						t.Errorf("cone %s count %v, want %d", key, e.Count, i%64)
					}
					continue
				}
				s.StoreCone(key, ConeEntry{Count: big.NewInt(int64(i % 64)), Inputs: 6, Exact: true})
				s.Components().Store(fmt.Sprintf("c%d-%d", w, i), big.NewInt(int64(i)), int32(w))
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Cones.Entries != 64 {
		t.Errorf("cone entries = %d, want 64", st.Cones.Entries)
	}
	if got := st.Cones.Hits + st.Cones.Misses; got != workers*perWorker {
		t.Errorf("hits+misses = %d, want %d", got, workers*perWorker)
	}
}
