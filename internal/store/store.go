// Package store is the process-global, content-addressed result store
// behind cross-request deduplication: two requests verifying the same
// circuit pair — or two metrics sharing a cone — pay for each count
// once, ever.
//
// The store has two tiers, both keyed by canonical content:
//
//   - Tier 1 (cones): one entry per counting task, keyed by the plan
//     layer's canonical cone key (internal/plan: dense node ranks +
//     session input positions, exact — equal keys imply isomorphic
//     cones and therefore equal counts). Each entry carries the count
//     over the cone's own reachable-input space plus full provenance:
//     which backend produced it, and for approximate counts the
//     (ε, δ) guarantee, the sampling seed and the best-effort flag.
//     The engine consults this tier before dispatching a task and
//     records every non-trivial solve back into it.
//
//   - Tier 2 (components): the existing counter.Cache of canonical
//     residual-component counts, shared across every solver that runs
//     against the store. Partial work transfers even between requests
//     whose cones differ: an adder pair and a near-identical variant
//     share most residual components.
//
// Reuse rules. Exact entries are reusable by any request: an exact
// count trivially satisfies every (ε′, δ′) guarantee. An approximate
// entry with guarantee (ε, δ) is reusable only for approximate requests
// with ε′ ≥ ε and δ′ ≥ δ — the stored estimate's band is at least as
// tight as the one requested — and never for exact requests. Reused
// approximate counts report the stored (stronger) guarantee.
//
// A Store is safe for concurrent use and designed to be process-global
// and long-lived (the vacsem-serve service keeps exactly one); snapshot
// and reload (persist.go) carry its warm state across restarts.
package store

import (
	"math/big"
	"sync"

	"vacsem/internal/counter"
	"vacsem/internal/obs"
)

// Process-cumulative store metrics (every Store in the process shares
// them, like the counter cache's shard metrics; vacsem-serve runs one
// Store, so the /metrics page reads as that store's activity).
var (
	mConeHits      = obs.Default.Counter("store.cone_hits")
	mConeMisses    = obs.Default.Counter("store.cone_misses")
	mConeStores    = obs.Default.Counter("store.cone_stores")
	mConeRejects   = obs.Default.Counter("store.cone_rejects")
	mConeEvictions = obs.Default.Counter("store.cone_evictions")
	gCones         = obs.Default.Gauge("store.cones")
)

// ConeEntry is one stored cone count with its provenance. Entries are
// immutable once stored: Count must never be mutated, by the store or
// by any consumer.
type ConeEntry struct {
	// Count is the number of input patterns setting the cone's output,
	// over the cone's own reachable-input space (2^Inputs patterns).
	// Consumers rescale to their session's input space by shifting —
	// inputs outside the cone are free, so the count scales by exactly
	// 2^(sessionInputs - Inputs).
	Count *big.Int
	// Inputs is the cone's reachable primary-input count. It is pinned
	// by the cone key (the key serializes every reachable input), so
	// two entries under one key can never disagree on it.
	Inputs int
	// Exact marks a count computed exactly; Epsilon/Delta/Seed are then
	// zero. Approximate entries carry the (ε, δ) guarantee the estimate
	// was produced under and the sampling seed that drew its hash rows.
	Exact          bool
	Epsilon, Delta float64
	Seed           int64
	// BestEffort marks an approximate count whose round schedule was
	// cut short by a deadline; Delta above is the honestly widened
	// failure probability, so the reuse rule needs no special case.
	BestEffort bool
	// Backend names the engine that produced the count ("vacsem",
	// "dpll", "approx", ...) — audit provenance, not a reuse criterion.
	Backend string

	hits uint32
}

// ConeStats is a consistent snapshot of the cone tier's activity.
type ConeStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stores uint64 `json:"stores"`
	// Rejects counts lookups that found an entry under the key but
	// could not reuse it (guarantee-incompatible: exact request over an
	// approximate entry, or a looser stored (ε, δ) than requested).
	Rejects   uint64 `json:"rejects"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Stats is a consistent snapshot of both tiers.
type Stats struct {
	Cones      ConeStats          `json:"cones"`
	Components counter.CacheStats `json:"components"`
}

// Store is the two-tier cross-request result store.
type Store struct {
	mu       sync.Mutex
	cones    map[string]*ConeEntry
	maxCones int
	hits     uint64
	misses   uint64
	stores   uint64
	rejects  uint64
	evicted  uint64

	comps *counter.Cache
}

// Config bounds a Store. Zero values pick serving-friendly defaults.
type Config struct {
	// MaxCones bounds the cone tier (default 1 << 20 entries; cone
	// entries are small — a key, a count and a few provenance words).
	MaxCones int
	// MaxComponents and MaxComponentBytes bound the component tier (the
	// embedded counter.Cache; defaults: the cache's own 4M entries, no
	// byte bound).
	MaxComponents     int
	MaxComponentBytes int64
}

// New returns an empty store.
func New(cfg Config) *Store {
	if cfg.MaxCones <= 0 {
		cfg.MaxCones = 1 << 20
	}
	return &Store{
		cones:    make(map[string]*ConeEntry),
		maxCones: cfg.MaxCones,
		comps:    counter.NewCache(cfg.MaxComponents, cfg.MaxComponentBytes),
	}
}

// Components returns the component tier: a counter.Cache to hand to
// solvers as their shared component-count cache.
func (s *Store) Components() *counter.Cache { return s.comps }

// Req states what guarantee a lookup needs. The zero value requests an
// exact count.
type Req struct {
	// Exact requests an exact count; only exact entries match.
	Exact bool
	// Epsilon and Delta are the requested guarantee of an approximate
	// request (Exact false): entries with Epsilon ≤ Epsilon′ and
	// Delta ≤ Delta′ match, as do exact entries. Callers must resolve
	// defaults before calling (the store compares literally).
	Epsilon, Delta float64
}

// compatible reports whether e satisfies the requested guarantee.
func (r Req) compatible(e *ConeEntry) bool {
	if e.Exact {
		return true
	}
	if r.Exact {
		return false
	}
	return e.Epsilon <= r.Epsilon && e.Delta <= r.Delta
}

// LookupCone returns the stored entry under key when it satisfies req.
// An entry that exists but cannot be reused (guarantee-incompatible)
// counts as a reject and reports a miss. The returned entry is shared:
// it must not be mutated.
func (s *Store) LookupCone(key string, req Req) (*ConeEntry, bool) {
	s.mu.Lock()
	e := s.cones[key]
	switch {
	case e == nil:
		s.misses++
		s.mu.Unlock()
		mConeMisses.Inc()
		return nil, false
	case !req.compatible(e):
		s.rejects++
		s.mu.Unlock()
		mConeRejects.Inc()
		return nil, false
	}
	e.hits++
	s.hits++
	s.mu.Unlock()
	mConeHits.Inc()
	return e, true
}

// StoreCone inserts key -> e. e.Count is taken over by the store and
// must not be mutated afterwards. When the key already holds an entry,
// the better one wins: exact beats approximate, and among approximate
// entries the tighter guarantee (smaller ε, then smaller δ) wins — so a
// store can only ever strengthen what later requests may reuse.
func (s *Store) StoreCone(key string, e ConeEntry) {
	if e.Count == nil {
		return
	}
	s.mu.Lock()
	if old := s.cones[key]; old != nil && !betterThan(&e, old) {
		s.stores++
		s.mu.Unlock()
		mConeStores.Inc()
		return
	}
	evicted := 0
	for len(s.cones) >= s.maxCones {
		if !s.evictOneLocked(key) {
			break
		}
		evicted++
	}
	s.cones[key] = &e
	s.stores++
	s.evicted += uint64(evicted)
	n := len(s.cones)
	s.mu.Unlock()
	mConeStores.Inc()
	if evicted > 0 {
		mConeEvictions.Add(uint64(evicted))
	}
	gCones.Set(int64(n))
}

// betterThan reports whether a strengthens what is reusable relative to
// b: exact beats approximate; among approximate entries a strictly
// tighter ε wins, ties broken by δ.
func betterThan(a, b *ConeEntry) bool {
	if a.Exact != b.Exact {
		return a.Exact
	}
	if a.Exact {
		return false // both exact: equal counts by construction, keep the first
	}
	if a.Epsilon != b.Epsilon {
		return a.Epsilon < b.Epsilon
	}
	return a.Delta < b.Delta
}

// evictOneLocked removes one entry (2-random by hit count, like the
// component cache), never the key about to be stored. Reports false
// when nothing can go.
func (s *Store) evictOneLocked(keep string) bool {
	var k1, k2 string
	var e1, e2 *ConeEntry
	n := 0
	for k, e := range s.cones {
		if k == keep {
			continue
		}
		if n == 0 {
			k1, e1 = k, e
		} else {
			k2, e2 = k, e
			break
		}
		n++
	}
	if e1 == nil {
		return false
	}
	victim := k1
	if e2 != nil && e2.hits < e1.hits {
		victim = k2
	}
	delete(s.cones, victim)
	return true
}

// Len returns the number of cone entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cones)
}

// Stats returns a consistent snapshot of both tiers' activity. Each
// tier is internally consistent; the two tiers are read back to back
// (one lock each), which is consistent enough for reporting — no
// invariant spans the tiers.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	cs := ConeStats{
		Hits: s.hits, Misses: s.misses, Stores: s.stores,
		Rejects: s.rejects, Evictions: s.evicted,
		Entries: len(s.cones),
	}
	s.mu.Unlock()
	return Stats{Cones: cs, Components: s.comps.Stats()}
}
