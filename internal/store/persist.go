package store

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"os"
	"path/filepath"

	"vacsem/internal/counter"
)

// Snapshot format: one JSON document holding both tiers. Cone keys and
// component keys are binary (the canonical serializations embed raw
// varints), so both are base64-encoded; counts are decimal strings
// (math/big's portable text form). The version field gates future
// format changes — Load rejects versions it does not know rather than
// guessing.

const snapshotVersion = 1

type snapshotDoc struct {
	Version    int             `json:"version"`
	Cones      []coneJSON      `json:"cones"`
	Components []componentJSON `json:"components"`
}

type coneJSON struct {
	Key        string  `json:"key"` // base64 (std, padded)
	Count      string  `json:"count"`
	Inputs     int     `json:"inputs"`
	Exact      bool    `json:"exact"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	BestEffort bool    `json:"best_effort,omitempty"`
	Backend    string  `json:"backend,omitempty"`
}

type componentJSON struct {
	Key   string `json:"key"` // base64 (std, padded)
	Count string `json:"count"`
}

// Snapshot writes a point-in-time copy of both tiers as JSON. Each tier
// is snapshotted consistently under its own locks; the store stays
// usable (and mutable) while the JSON is marshalled and written.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.Lock()
	cones := make([]coneJSON, 0, len(s.cones))
	for k, e := range s.cones {
		cones = append(cones, coneJSON{
			Key:        base64.StdEncoding.EncodeToString([]byte(k)),
			Count:      e.Count.String(),
			Inputs:     e.Inputs,
			Exact:      e.Exact,
			Epsilon:    e.Epsilon,
			Delta:      e.Delta,
			Seed:       e.Seed,
			BestEffort: e.BestEffort,
			Backend:    e.Backend,
		})
	}
	s.mu.Unlock()

	comps := s.comps.SnapshotEntries()
	doc := snapshotDoc{
		Version:    snapshotVersion,
		Cones:      cones,
		Components: make([]componentJSON, 0, len(comps)),
	}
	for _, e := range comps {
		doc.Components = append(doc.Components, componentJSON{
			Key:   base64.StdEncoding.EncodeToString([]byte(e.Key)),
			Count: e.Count.String(),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// Load merges a prior Snapshot into the store. Existing entries are
// kept where they are at least as strong (the usual StoreCone rule);
// loaded component entries carry owner tag 0, so their first hit by any
// solver counts as a cross hit. Malformed entries abort the load with
// an error — a corrupt snapshot should be noticed, not half-applied
// silently (entries merged before the error stays merged; all are
// sound individually).
func (s *Store) Load(r io.Reader) error {
	var doc snapshotDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("store: decode snapshot: %w", err)
	}
	if doc.Version != snapshotVersion {
		return fmt.Errorf("store: snapshot version %d, want %d", doc.Version, snapshotVersion)
	}
	for i, c := range doc.Cones {
		key, err := base64.StdEncoding.DecodeString(c.Key)
		if err != nil {
			return fmt.Errorf("store: cone %d: bad key: %w", i, err)
		}
		cnt, ok := new(big.Int).SetString(c.Count, 10)
		if !ok || cnt.Sign() < 0 {
			return fmt.Errorf("store: cone %d: bad count %q", i, c.Count)
		}
		if c.Inputs < 0 || (!c.Exact && (c.Epsilon <= 0 || c.Delta <= 0)) {
			return fmt.Errorf("store: cone %d: bad provenance (inputs=%d exact=%v eps=%g delta=%g)",
				i, c.Inputs, c.Exact, c.Epsilon, c.Delta)
		}
		s.StoreCone(string(key), ConeEntry{
			Count:      cnt,
			Inputs:     c.Inputs,
			Exact:      c.Exact,
			Epsilon:    c.Epsilon,
			Delta:      c.Delta,
			Seed:       c.Seed,
			BestEffort: c.BestEffort,
			Backend:    c.Backend,
		})
	}
	entries := make([]counter.Entry, 0, len(doc.Components))
	for i, c := range doc.Components {
		key, err := base64.StdEncoding.DecodeString(c.Key)
		if err != nil {
			return fmt.Errorf("store: component %d: bad key: %w", i, err)
		}
		cnt, ok := new(big.Int).SetString(c.Count, 10)
		if !ok || cnt.Sign() < 0 {
			return fmt.Errorf("store: component %d: bad count %q", i, c.Count)
		}
		entries = append(entries, counter.Entry{Key: string(key), Count: cnt})
	}
	s.comps.LoadEntries(entries)
	return nil
}

// SnapshotFile writes the snapshot atomically: to a temp file in the
// target directory, then rename — a crash mid-write never truncates a
// good prior snapshot.
func (s *Store) SnapshotFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges a snapshot file into the store.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
