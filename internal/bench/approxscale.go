package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"vacsem/internal/core"
	"vacsem/internal/gen"
)

// The approx-scaling table: multiplier sizes exact counting cannot
// touch at the configured time limit, verified with the scaled approx
// backend and with the pre-scaling ablation (density pinned to 0.5,
// support minimization off, boundary bisection instead of the boundary
// walk — the configuration the scaling work replaced). The ratio is the
// headline of the scaling work; band adherence is established on the
// smaller instances of the regular approx table, where exact ground
// truth is feasible.

// ApproxScaleSpecs builds the scaling workload: 32/64-bit adders and
// 16/32-bit array multipliers with deterministic approximate versions
// (the same generator families as AdderMultSpecs, at sizes that
// table's exact reference runs cannot reach).
func ApproxScaleSpecs(cfg Config) []Spec {
	cfg = cfg.withDefaults()
	var specs []Spec
	for _, n := range []int{32, 64} {
		exact := gen.RippleCarryAdder(n)
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("adder%d", n),
			Exact:  exact,
			Approx: adderVersions(exact, n, cfg.Versions),
		})
	}
	for _, n := range []int{16, 32} {
		exact := gen.ArrayMultiplier(n)
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("mult%d", n),
			Exact:  exact,
			Approx: multVersions(exact, n, cfg.Versions),
		})
	}
	return specs
}

// ApproxScaleRow is one line of the approx-scaling table: the same
// (benchmark, version) pairs estimated with the sparse hash family and
// with the dense ablation, plus the sampling-set and density telemetry
// of the sparse run.
type ApproxScaleRow struct {
	Name string
	// SparseSec and DenseSec are geomean runtimes over the completed
	// versions of the sparse run and the dense-ablation run.
	SparseSec, DenseSec float64
	// SupportBefore/SupportAfter are the sparse run's sampling-set
	// sizes around independent-support minimization (largest task of
	// the first version); HashDensity its mean hash-row density.
	SupportBefore, SupportAfter int
	HashDensity                 float64
	// Total counts the versions both runs completed.
	Total int
	// SparseTimedOut / DenseTimedOut report limit hits per arm; a
	// timed-out arm's geomean is absent and the ratio becomes a lower
	// bound (the paper's ">" convention).
	SparseTimedOut, DenseTimedOut bool
}

// Speedup renders DenseSec/SparseSec with the ">" convention when the
// dense arm timed out.
func (r ApproxScaleRow) Speedup(limit time.Duration) string {
	if r.SparseTimedOut || r.SparseSec <= 0 {
		return "-"
	}
	if r.DenseTimedOut {
		return fmt.Sprintf(">%.3g", limit.Seconds()/r.SparseSec)
	}
	if r.DenseSec <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.3gx", r.DenseSec/r.SparseSec)
}

// RunApproxScaleTable verifies ER for every spec twice per version with
// the approx backend: once with the configured (scaled) backend and
// once with the pre-scaling ablation (density 0.5, support minimization
// off, boundary bisection). Both runs share the seed, worker count, and
// time limit, so the ratio isolates the scaling work. Scaled runs land
// in OnRun under "<name>/scale", ablation runs under "<name>/dense" —
// distinct from each other and from the regular approx table's records
// (bare spec names), so a committed report gates every arm.
func RunApproxScaleTable(specs []Spec, cfg Config) []ApproxScaleRow {
	cfg = cfg.withDefaults()
	rows := make([]ApproxScaleRow, 0, len(specs))
	for _, spec := range specs {
		row := ApproxScaleRow{Name: spec.Name}
		sparseLog, denseLog, completed := 0.0, 0.0, 0
		for v, approx := range spec.Approx {
			verify := func(bench string, opt core.Options) (*core.Result, error) {
				start := time.Now()
				res, err := core.VerifyER(spec.Exact, approx, opt)
				if cfg.OnRun != nil {
					cfg.OnRun(newRunRecord(bench, ER.String(), core.MethodApprox, v, res, err, time.Since(start)))
				}
				return res, err
			}
			// A best-effort result means the arm ran out the clock and
			// returned a degraded-confidence median: for the speedup
			// ratio that is a limit hit (the ">" convention), even
			// though the estimate itself is a valid deliverable.
			sparse, err := verify(spec.Name+"/scale", cfg.options(core.MethodApprox))
			if err != nil || sparse.BestEffort {
				row.SparseTimedOut = true
				break
			}
			if v == 0 {
				for _, sub := range sparse.Subs {
					if sub.SupportBefore > row.SupportBefore {
						row.SupportBefore = sub.SupportBefore
						row.SupportAfter = sub.SupportAfter
						row.HashDensity = sub.HashDensity
					}
				}
			}
			if row.DenseTimedOut {
				// The dense arm already hit the limit once: skip its
				// remaining versions (each would burn the full limit) but
				// keep timing the sparse arm so its geomean stays
				// comparable across reports.
				sparseLog += math.Log(clampSecs(sparse.Runtime.Seconds()))
				completed++
				continue
			}
			denseOpt := cfg.options(core.MethodApprox)
			denseOpt.HashDensity = 0.5
			denseOpt.NoSupportMin = true
			denseOpt.ApproxBisect = true
			dense, err := verify(spec.Name+"/dense", denseOpt)
			if err != nil || dense.BestEffort {
				row.DenseTimedOut = true
				sparseLog += math.Log(clampSecs(sparse.Runtime.Seconds()))
				completed++
				continue
			}
			sparseLog += math.Log(clampSecs(sparse.Runtime.Seconds()))
			denseLog += math.Log(clampSecs(dense.Runtime.Seconds()))
			completed++
			row.Total++
		}
		if completed > 0 && !row.SparseTimedOut {
			row.SparseSec = math.Exp(sparseLog / float64(completed))
		}
		if row.Total > 0 && !row.DenseTimedOut {
			row.DenseSec = math.Exp(denseLog / float64(row.Total))
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteApproxScaleTable prints the sparse-vs-dense scaling comparison.
func WriteApproxScaleTable(w io.Writer, rows []ApproxScaleRow, cfg Config) {
	cfg = cfg.withDefaults()
	eps, delta := cfg.Epsilon, cfg.Delta
	if eps == 0 {
		eps = 0.8
	}
	if delta == 0 {
		delta = 0.2
	}
	fmt.Fprintf(w, "Approx scaling: sparse vs dense hash families at (ε=%g, δ=%g) on ER miters (time limit %v, %d approx versions)\n",
		eps, delta, cfg.TimeLimit, cfg.Versions)
	fmt.Fprintf(w, "%-11s %12s %12s %10s %14s %9s\n",
		"Benchmark", "Sparse/s", "Dense/s", "Speedup", "Support", "Density")
	for _, r := range rows {
		sparse := fmt.Sprintf("%.4g", r.SparseSec)
		if r.SparseTimedOut {
			sparse = fmt.Sprintf(">%g", cfg.TimeLimit.Seconds())
		}
		dense := fmt.Sprintf("%.4g", r.DenseSec)
		if r.DenseTimedOut {
			dense = fmt.Sprintf(">%g", cfg.TimeLimit.Seconds())
		} else if r.DenseSec == 0 {
			dense = "-" // arm never ran (sparse hit the limit first)
		}
		support := "-"
		if r.SupportBefore > 0 {
			support = fmt.Sprintf("%d->%d", r.SupportBefore, r.SupportAfter)
		}
		fmt.Fprintf(w, "%-11s %12s %12s %10s %14s %9.3g\n",
			r.Name, sparse, dense, r.Speedup(cfg.TimeLimit), support, r.HashDensity)
	}
}
