package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The bench regression gate: Diff compares two bench reports (old =
// committed baseline, new = fresh run) record-by-record and classifies
// every matched run. Three things count as regressions:
//
//   - correctness: two exact runs of the same (bench, metric, method,
//     version) reporting different counts — counts are deterministic, so
//     any mismatch is a bug, not noise;
//   - status: a run that used to complete now times out, becomes
//     infeasible, errors, or disappears from the report;
//   - performance: wall time beyond the tolerance band (TimeTol), or the
//     report-wide sim-kernel throughput dropping below its band.
//
// Time comparisons are skipped below a noise floor (MinSeconds) — the
// scaled suite's sub-50ms runs jitter far beyond any useful band.

// DiffOptions tunes the gate's tolerance bands. The zero value gets the
// defaults noted per field.
type DiffOptions struct {
	// TimeTol is the allowed wall-time ratio new/old before a run is a
	// performance regression; its reciprocal marks an improvement.
	// Default 1.25.
	TimeTol float64
	// MinSeconds is the noise floor: runs where both sides are below it
	// are never time-compared. Default 0.05.
	MinSeconds float64
	// ThroughputTol is the allowed fractional drop of the report-level
	// sim_blocks_per_sec headline (new >= old*ThroughputTol passes).
	// Default 0.5 — kernel throughput varies with machine load far more
	// than per-run wall time does.
	ThroughputTol float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.TimeTol <= 1 {
		o.TimeTol = 1.25
	}
	if o.MinSeconds <= 0 {
		o.MinSeconds = 0.05
	}
	if o.ThroughputTol <= 0 || o.ThroughputTol > 1 {
		o.ThroughputTol = 0.5
	}
	return o
}

// Diff verdicts, ordered from benign to fatal.
const (
	VerdictOK        = "ok"
	VerdictImproved  = "improved"
	VerdictNew       = "new"     // in new only; informational
	VerdictMissing   = "MISSING" // in old only; a regression
	VerdictRegressed = "REGRESSED"
)

// DiffEntry is one compared run.
type DiffEntry struct {
	Key        string  `json:"key"` // "bench/metric/method/v<version>"
	OldSeconds float64 `json:"old_seconds"`
	NewSeconds float64 `json:"new_seconds"`
	// Ratio is NewSeconds/OldSeconds when both sides completed (0 otherwise).
	Ratio   float64 `json:"ratio,omitempty"`
	Verdict string  `json:"verdict"`
	// Reason explains non-ok verdicts ("count changed", "now times out",
	// "1.9x slower", ...).
	Reason string `json:"reason,omitempty"`
}

// DiffResult is a completed report comparison.
type DiffResult struct {
	Entries []DiffEntry `json:"entries"`
	// Regressions lists the entries whose verdict is REGRESSED or
	// MISSING; the gate fails iff it is non-empty.
	Regressions []DiffEntry `json:"regressions"`
	// OldThroughput/NewThroughput are the reports' sim_blocks_per_sec
	// headlines; ThroughputOK is false when the drop exceeded the band
	// (also recorded as a Regressions entry).
	OldThroughput float64 `json:"old_throughput,omitempty"`
	NewThroughput float64 `json:"new_throughput,omitempty"`
	ThroughputOK  bool    `json:"throughput_ok"`
}

// HasRegressions reports whether the gate should fail.
func (d *DiffResult) HasRegressions() bool { return len(d.Regressions) > 0 }

// runStatus reduces a record's outcome to a comparable label.
func runStatus(r *RunRecord) string {
	switch {
	case r.Err != "":
		return "error"
	case r.TimedOut:
		return "timeout"
	case r.Infeasible:
		return "infeasible"
	default:
		return "ok"
	}
}

func runKey(r *RunRecord) string {
	return fmt.Sprintf("%s/%s/%s/v%d", r.Bench, r.Metric, r.Method, r.Version)
}

// Diff compares two reports. Runs are matched by (bench, metric,
// method, version); order within the reports does not matter.
func Diff(old, new *Report, opt DiffOptions) *DiffResult {
	opt = opt.withDefaults()
	d := &DiffResult{ThroughputOK: true}

	oldRuns := make(map[string]*RunRecord, len(old.Runs))
	for i := range old.Runs {
		oldRuns[runKey(&old.Runs[i])] = &old.Runs[i]
	}
	seen := make(map[string]bool, len(new.Runs))
	for i := range new.Runs {
		nr := &new.Runs[i]
		key := runKey(nr)
		seen[key] = true
		or, ok := oldRuns[key]
		if !ok {
			d.Entries = append(d.Entries, DiffEntry{
				Key: key, NewSeconds: nr.Seconds, Verdict: VerdictNew,
			})
			continue
		}
		d.Entries = append(d.Entries, diffRun(key, or, nr, opt))
	}
	for key, or := range oldRuns {
		if !seen[key] {
			d.Entries = append(d.Entries, DiffEntry{
				Key: key, OldSeconds: or.Seconds, Verdict: VerdictMissing,
				Reason: "run missing from new report",
			})
		}
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })

	d.OldThroughput = old.SimBlocksPerSec
	d.NewThroughput = new.SimBlocksPerSec
	if old.SimBlocksPerSec > 0 && new.SimBlocksPerSec < old.SimBlocksPerSec*opt.ThroughputTol {
		d.ThroughputOK = false
		d.Regressions = append(d.Regressions, DiffEntry{
			Key:     "sim_blocks_per_sec",
			Verdict: VerdictRegressed,
			Reason: fmt.Sprintf("kernel throughput %.3g -> %.3g blocks/s (%.0f%% of old, tol %.0f%%)",
				old.SimBlocksPerSec, new.SimBlocksPerSec,
				100*new.SimBlocksPerSec/old.SimBlocksPerSec, 100*opt.ThroughputTol),
		})
	}
	for _, e := range d.Entries {
		if e.Verdict == VerdictRegressed || e.Verdict == VerdictMissing {
			d.Regressions = append(d.Regressions, e)
		}
	}
	return d
}

// diffRun classifies one matched pair.
func diffRun(key string, or, nr *RunRecord, opt DiffOptions) DiffEntry {
	e := DiffEntry{Key: key, OldSeconds: or.Seconds, NewSeconds: nr.Seconds}
	ost, nst := runStatus(or), runStatus(nr)
	if ost != nst {
		switch {
		case ost == "ok":
			e.Verdict = VerdictRegressed
			e.Reason = fmt.Sprintf("status ok -> %s", nst)
		case nst == "ok":
			e.Verdict = VerdictImproved
			e.Reason = fmt.Sprintf("status %s -> ok", ost)
		default:
			e.Verdict = VerdictOK
			e.Reason = fmt.Sprintf("status %s -> %s", ost, nst)
		}
		return e
	}
	if ost != "ok" {
		e.Verdict = VerdictOK
		e.Reason = "both " + ost
		return e
	}
	// Both completed. Exact counts are deterministic: any mismatch is a
	// correctness regression, tolerance bands do not apply. Approximate
	// runs are allowed to differ in value (the estimate is randomized).
	if !or.Approx && !nr.Approx && or.Count != nr.Count {
		e.Verdict = VerdictRegressed
		e.Reason = fmt.Sprintf("exact count changed: %s -> %s", or.Count, nr.Count)
		return e
	}
	if or.Approx != nr.Approx {
		e.Verdict = VerdictRegressed
		e.Reason = fmt.Sprintf("approx flag changed: %v -> %v", or.Approx, nr.Approx)
		return e
	}
	if or.Seconds > 0 {
		e.Ratio = nr.Seconds / or.Seconds
	}
	// Time band, above the noise floor only.
	if or.Seconds >= opt.MinSeconds || nr.Seconds >= opt.MinSeconds {
		switch {
		case nr.Seconds > or.Seconds*opt.TimeTol:
			e.Verdict = VerdictRegressed
			e.Reason = fmt.Sprintf("%.2fx slower (%.3gs -> %.3gs, tol %.2fx)",
				e.Ratio, or.Seconds, nr.Seconds, opt.TimeTol)
			return e
		case nr.Seconds*opt.TimeTol < or.Seconds:
			e.Verdict = VerdictImproved
			e.Reason = fmt.Sprintf("%.2fx faster (%.3gs -> %.3gs)",
				1/e.Ratio, or.Seconds, nr.Seconds)
			return e
		}
	}
	e.Verdict = VerdictOK
	return e
}

// WriteTable renders the comparison as a delta table plus a one-line
// summary.
func (d *DiffResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-40s %10s %10s %8s %-10s %s\n",
		"RUN", "OLD(s)", "NEW(s)", "RATIO", "VERDICT", "NOTE")
	counts := map[string]int{}
	for _, e := range d.Entries {
		counts[e.Verdict]++
		ratio := ""
		if e.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", e.Ratio)
		}
		fmt.Fprintf(w, "%-40s %10.3f %10.3f %8s %-10s %s\n",
			e.Key, e.OldSeconds, e.NewSeconds, ratio, e.Verdict, e.Reason)
	}
	if d.OldThroughput > 0 || d.NewThroughput > 0 {
		status := "ok"
		if !d.ThroughputOK {
			status = VerdictRegressed
		}
		fmt.Fprintf(w, "%-40s %10.3g %10.3g %8s %-10s\n",
			"sim_blocks_per_sec", d.OldThroughput, d.NewThroughput, "", status)
	}
	fmt.Fprintf(w, "\n%d compared: %d ok, %d improved, %d new, %d regressed, %d missing\n",
		len(d.Entries), counts[VerdictOK], counts[VerdictImproved],
		counts[VerdictNew], counts[VerdictRegressed], counts[VerdictMissing])
}

// LoadReport reads a bench report JSON file (as written by -report or
// the default BENCH_<ts>.json path).
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
