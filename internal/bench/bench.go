// Package bench regenerates the paper's experimental tables (Tables
// III-VI): benchmark inventory, ER and MED verification of approximate
// adders and multipliers with the three methods (VACSEM, the DPLL/GANAK
// baseline, exhaustive enumeration), and ER verification of the EPFL and
// BACS circuits.
//
// Two workload scales exist: the default scaled-down suite keeps a full
// table run in minutes on a laptop (our counter is pure Go and, unlike
// the paper's GANAK fork, has no CDCL machinery), and Full restores the
// paper's circuit sizes. Approximate versions are generated
// deterministically with internal/als, so runs are reproducible.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/big"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/gen"
	"vacsem/internal/synth"
)

// Config controls a table run.
type Config struct {
	// Full restores the paper's circuit sizes (slow!). Default uses a
	// scaled suite with the same structure.
	Full bool
	// Versions is the number of approximate versions per benchmark
	// (paper: 10; scaled default: 3).
	Versions int
	// TimeLimit bounds each single verification run (paper: 14400 s;
	// scaled default: 30 s).
	TimeLimit time.Duration
	// Methods to compare; nil means all three.
	Methods []core.Method
	// Workers bounds concurrent sub-miter solving per verification
	// (0 = one per CPU). Counts are identical at any worker count;
	// runtimes improve on multi-output (MED) miters.
	Workers int
	// SimWorkers bounds the goroutines the enum method's simulation
	// kernel uses per verification (0 = one per CPU; counts are
	// bit-identical at any setting).
	SimWorkers int
	// BDDReorder enables dynamic variable reordering in the bdd method
	// (counts are identical either way; node counts and runtimes change).
	BDDReorder bool
	// NoSharedCache gives every sub-miter solver a private component
	// cache instead of the run-wide shared one (ablation; counts are
	// identical either way).
	NoSharedCache bool
	// Epsilon, Delta and Seed tune MethodApprox when it appears in
	// Methods (or in the approx comparison table): each count lands
	// within a (1+ε) factor of the exact one with probability 1-δ, and
	// Seed makes the XOR sampling reproducible. Zero values use the
	// ApproxMC defaults (0.8 / 0.2).
	Epsilon float64
	Delta   float64
	Seed    int64
	// HashDensity pins the approx backend's hash-row density (0 = the
	// automatic sparse schedule; 0.5 = the classical dense family).
	HashDensity float64
	// NoSupportMin disables the approx backend's independent-support
	// minimization (ablation).
	NoSupportMin bool
	// OnRun, when non-nil, receives one RunRecord per individual
	// verification (each approximate version of each benchmark, per
	// method), carrying the per-sub-miter wall times the text tables
	// aggregate away. cmd/vacsem-bench points it at its JSON report.
	OnRun func(RunRecord)
	// OnSession, when non-nil, receives one SessionRecord per
	// multi-metric session RunMulti executes, carrying the dedup and
	// cross-metric cache accounting. cmd/vacsem-bench points it at its
	// JSON report.
	OnSession func(SessionRecord)
	// OnServe, when non-nil, receives one ServeRecord per benchmark the
	// -table serve mode measures (cold vs store-warm vs
	// snapshot-reloaded service jobs). cmd/vacsem-bench points it at its
	// JSON report.
	OnServe func(ServeRecord)
}

func (c Config) withDefaults() Config {
	if c.Versions == 0 {
		if c.Full {
			c.Versions = 10
		} else {
			c.Versions = 3
		}
	}
	if c.TimeLimit == 0 {
		if c.Full {
			c.TimeLimit = 4 * time.Hour
		} else {
			c.TimeLimit = 30 * time.Second
		}
	}
	if c.Methods == nil {
		c.Methods = []core.Method{core.MethodVACSEM, core.MethodDPLL, core.MethodEnum}
	}
	return c
}

// options builds the per-run verification options for one method.
func (c Config) options(m core.Method) core.Options {
	return core.Options{
		Method: m, TimeLimit: c.TimeLimit,
		Workers: c.Workers, SimWorkers: c.SimWorkers,
		BDDReorder:         c.BDDReorder,
		DisableSharedCache: c.NoSharedCache,
		Epsilon:            c.Epsilon, Delta: c.Delta, Seed: c.Seed,
		HashDensity:  c.HashDensity,
		NoSupportMin: c.NoSupportMin,
	}
}

// Spec is one benchmark row: an exact circuit plus its approximate
// versions.
type Spec struct {
	Name   string
	Exact  *circuit.Circuit
	Approx []*circuit.Circuit
}

// Cell is one (benchmark, method) measurement.
type Cell struct {
	// Geomean runtime over the approximate versions, in seconds, of the
	// completed runs.
	Geomean float64
	// TimedOut reports that at least one version hit the limit (the cell
	// is a ">limit" lower bound, as in the paper's tables).
	TimedOut bool
	// Infeasible marks enumeration beyond 62 inputs.
	Infeasible bool
}

// Render formats the cell the way the paper prints runtime columns.
func (c Cell) Render(limit time.Duration) string {
	if c.Infeasible || c.TimedOut {
		return fmt.Sprintf(">%g", limit.Seconds())
	}
	return fmt.Sprintf("%.4g", c.Geomean)
}

// Row is one line of Table IV/V/VI.
type Row struct {
	Name   string
	Cells  map[core.Method]Cell
	Values []string // verified metric values (first version, per method sanity)
}

// Speedup returns the speedup string of VACSEM against the baseline
// method, with the paper's ">" convention when the baseline timed out.
func (r Row) Speedup(base core.Method, limit time.Duration) string {
	v, okV := r.Cells[core.MethodVACSEM]
	b, okB := r.Cells[base]
	if !okV || !okB {
		return "-"
	}
	if v.TimedOut || v.Infeasible {
		return "-"
	}
	if b.TimedOut || b.Infeasible {
		return fmt.Sprintf(">%.4g", limit.Seconds()/v.Geomean)
	}
	return fmt.Sprintf("%.4g", b.Geomean/v.Geomean)
}

// speedupValue returns the numeric speedup (lower bound when the
// baseline timed out) or 0 when undefined.
func (r Row) speedupValue(base core.Method, limit time.Duration) float64 {
	v, okV := r.Cells[core.MethodVACSEM]
	b, okB := r.Cells[base]
	if !okV || !okB || v.TimedOut || v.Infeasible || v.Geomean == 0 {
		return 0
	}
	if b.TimedOut || b.Infeasible {
		return limit.Seconds() / v.Geomean
	}
	return b.Geomean / v.Geomean
}

// GeomeanSpeedup aggregates the rows the way the tables' last line does.
func GeomeanSpeedup(rows []Row, base core.Method, limit time.Duration) float64 {
	prod := 1.0
	n := 0
	for _, r := range rows {
		if s := r.speedupValue(base, limit); s > 0 {
			prod *= s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Metric selects what a table verifies.
type Metric int

// Metrics supported by RunTable.
const (
	ER Metric = iota
	MED
)

func (m Metric) String() string {
	if m == MED {
		return "MED"
	}
	return "ER"
}

// AdderMultSpecs builds the Table IV/V workload: approximate adders and
// multipliers with deterministic ALS-generated approximate versions.
func AdderMultSpecs(cfg Config) []Spec {
	cfg = cfg.withDefaults()
	var adderBits, multBits []int
	if cfg.Full {
		adderBits = []int{32, 64, 128}
		multBits = []int{10, 12, 14, 15, 16}
	} else {
		adderBits = []int{8, 16, 32}
		multBits = []int{6, 8, 10}
	}
	var specs []Spec
	for _, n := range adderBits {
		exact := gen.RippleCarryAdder(n)
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("adder%d", n),
			Exact:  exact,
			Approx: adderVersions(exact, n, cfg.Versions),
		})
	}
	for _, n := range multBits {
		exact := gen.ArrayMultiplier(n)
		specs = append(specs, Spec{
			Name:   fmt.Sprintf("mult%d", n),
			Exact:  exact,
			Approx: multVersions(exact, n, cfg.Versions),
		})
	}
	return specs
}

// adderVersions mixes structured approximations (LOA, truncation) with
// ALS-generated ones, as the literature's approximate adders do.
func adderVersions(exact *circuit.Circuit, n, count int) []*circuit.Circuit {
	var out []*circuit.Circuit
	for i := 0; len(out) < count; i++ {
		switch i % 3 {
		case 0:
			out = append(out, als.LowerORAdder(n, 2+i%4))
		case 1:
			out = append(out, als.TruncatedAdder(n, 1+i%3))
		default:
			out = append(out, als.Approximate(exact, als.Config{
				Seed: int64(1000 + i), TargetER: 0.01, RequireError: true,
			}))
		}
	}
	return out
}

func multVersions(exact *circuit.Circuit, n, count int) []*circuit.Circuit {
	var out []*circuit.Circuit
	for i := 0; len(out) < count; i++ {
		switch i % 2 {
		case 0:
			out = append(out, als.TruncatedMultiplier(n, 2+i%4))
		default:
			out = append(out, als.Approximate(exact, als.Config{
				Seed: int64(2000 + i), TargetER: 0.005, RequireError: true,
			}))
		}
	}
	return out
}

// EPFLBACSSpecs builds the Table VI workload. The scaled suite keeps the
// paper's circuit names with reduced widths; Full restores Table III
// widths.
func EPFLBACSSpecs(cfg Config) []Spec {
	cfg = cfg.withDefaults()
	type entry struct {
		name   string
		scaled func() *circuit.Circuit
		full   func() *circuit.Circuit
	}
	entries := []entry{
		{"ctrl",
			func() *circuit.Circuit { return gen.ControlLogic("ctrl", 7, 26, 6, 1001) },
			func() *circuit.Circuit { return gen.ControlLogic("ctrl", 7, 26, 6, 1001) }},
		{"cavlc",
			func() *circuit.Circuit { return gen.ControlLogic("cavlc", 10, 11, 12, 1002) },
			func() *circuit.Circuit { return gen.ControlLogic("cavlc", 10, 11, 12, 1002) }},
		{"dec",
			func() *circuit.Circuit { return gen.Decoder(6) },
			func() *circuit.Circuit { return gen.Decoder(8) }},
		{"int2float",
			func() *circuit.Circuit { return gen.Int2Float(11, 3, 4) },
			func() *circuit.Circuit { return gen.Int2Float(11, 3, 4) }},
		{"barshift",
			func() *circuit.Circuit { return gen.BarrelShifter(32) },
			func() *circuit.Circuit { return gen.BarrelShifter(128) }},
		{"sin",
			func() *circuit.Circuit { return gen.SinApprox(12) },
			func() *circuit.Circuit { return gen.SinApprox(24) }},
		{"priority",
			func() *circuit.Circuit { return gen.PriorityEncoder(32) },
			func() *circuit.Circuit { return gen.PriorityEncoder(128) }},
		{"router",
			func() *circuit.Circuit { return gen.Router(8, true) },
			func() *circuit.Circuit { return gen.Router(20, true) }},
		{"binsqrd",
			func() *circuit.Circuit { return gen.BinSquared(6) },
			func() *circuit.Circuit { return gen.BinSquared(8) }},
		{"absdiff",
			func() *circuit.Circuit { return gen.AbsDiff(8) },
			func() *circuit.Circuit { return gen.AbsDiff(8) }},
		{"butterfly",
			func() *circuit.Circuit { return gen.Butterfly(8) },
			func() *circuit.Circuit { return gen.Butterfly(16) }},
		{"mac",
			func() *circuit.Circuit { return gen.MAC(4) },
			func() *circuit.Circuit { return gen.MAC(4) }},
	}
	var specs []Spec
	for i, e := range entries {
		build := e.scaled
		if cfg.Full {
			build = e.full
		}
		exact := build()
		specs = append(specs, Spec{
			Name:   e.name,
			Exact:  exact,
			Approx: als.SuiteApproximations(exact, cfg.Versions, int64(3000+i*101)),
		})
	}
	return specs
}

// RunTable verifies the metric for every spec with every configured
// method and returns the result rows.
func RunTable(specs []Spec, metric Metric, cfg Config) []Row {
	cfg = cfg.withDefaults()
	rows := make([]Row, 0, len(specs))
	for _, spec := range specs {
		row := Row{Name: spec.Name, Cells: map[core.Method]Cell{}}
		for _, m := range cfg.Methods {
			cell := Cell{}
			logSum, completed := 0.0, 0
			for v, approx := range spec.Approx {
				opt := cfg.options(m)
				var res *core.Result
				var err error
				start := time.Now()
				switch metric {
				case MED:
					res, err = core.VerifyMED(spec.Exact, approx, opt)
				default:
					res, err = core.VerifyER(spec.Exact, approx, opt)
				}
				if cfg.OnRun != nil {
					cfg.OnRun(newRunRecord(spec.Name, metric.String(), m, v, res, err, time.Since(start)))
				}
				switch err {
				case nil:
					secs := res.Runtime.Seconds()
					if secs <= 0 {
						secs = 1e-6
					}
					logSum += math.Log(secs)
					completed++
				case core.ErrTooLarge:
					cell.Infeasible = true
				default:
					cell.TimedOut = true
				}
				if err != nil {
					break // no point timing the remaining versions
				}
			}
			if completed > 0 && !cell.TimedOut && !cell.Infeasible {
				cell.Geomean = math.Exp(logSum / float64(completed))
			}
			row.Cells[m] = cell
		}
		rows = append(rows, row)
	}
	return rows
}

// MultiRow is one line of the multi-metric session table: the geomean
// session runtime against the summed standalone runtimes, plus the task
// dedup achieved (from the first version; the task structure is the
// same for every version of a benchmark family in practice).
type MultiRow struct {
	Name string
	// SessionSec and StandaloneSec are geomeans over the completed
	// versions of, respectively, the one-session runtime and the sum of
	// the three standalone single-metric runtimes.
	SessionSec    float64
	StandaloneSec float64
	// TasksRequested/Unique/Deduped report the first version's plan.
	TasksRequested int
	TasksUnique    int
	TasksDeduped   int
	TimedOut       bool
	// Mismatch is set if any session value differed from its standalone
	// counterpart — it must never happen; the table prints it loudly.
	Mismatch bool
}

// multiSpecs is the metric set every session verifies.
func multiSpecs() []core.MetricSpec {
	return []core.MetricSpec{
		{Kind: core.MetricER},
		{Kind: core.MetricMED},
		{Kind: core.MetricMHD},
	}
}

// RunMulti verifies {ER, MED, MHD} of every spec in one deduplicated
// session per approximate version (MethodVACSEM), and re-verifies each
// metric standalone to measure what the shared base and the task dedup
// save. Session values are checked bit-identical to the standalone ones.
func RunMulti(specs []Spec, cfg Config) []MultiRow {
	cfg = cfg.withDefaults()
	method := core.MethodVACSEM
	rows := make([]MultiRow, 0, len(specs))
	for _, spec := range specs {
		row := MultiRow{Name: spec.Name}
		sessLogSum, aloneLogSum, completed := 0.0, 0.0, 0
		for v, approx := range spec.Approx {
			opt := cfg.options(method)
			start := time.Now()
			sess, err := core.VerifyMetrics(context.Background(), spec.Exact, approx, multiSpecs(), opt)
			wall := time.Since(start)
			rec := newSessionRecord(spec.Name, method, v, sess, err, wall)
			if err != nil {
				if cfg.OnSession != nil {
					cfg.OnSession(rec)
				}
				row.TimedOut = true
				break
			}
			if v == 0 {
				row.TasksRequested = sess.TasksRequested
				row.TasksUnique = sess.TasksUnique
				row.TasksDeduped = sess.TasksDeduped
			}
			// Standalone comparison runs: same options, one metric each.
			standalone := 0.0
			verifiers := []func() (*core.Result, error){
				func() (*core.Result, error) { return core.VerifyER(spec.Exact, approx, opt) },
				func() (*core.Result, error) { return core.VerifyMED(spec.Exact, approx, opt) },
				func() (*core.Result, error) { return core.VerifyMHD(spec.Exact, approx, opt) },
			}
			for i, verify := range verifiers {
				res, err := verify()
				if err != nil {
					standalone = 0
					break
				}
				standalone += res.Runtime.Seconds()
				if res.Value.Cmp(sess.Results[i].Value) != 0 {
					row.Mismatch = true
				}
			}
			rec.StandaloneSeconds = standalone
			if cfg.OnSession != nil {
				cfg.OnSession(rec)
			}
			secs := rec.Seconds
			if secs <= 0 {
				secs = 1e-6
			}
			sessLogSum += math.Log(secs)
			if standalone <= 0 {
				standalone = 1e-6
			}
			aloneLogSum += math.Log(standalone)
			completed++
		}
		if completed > 0 {
			row.SessionSec = math.Exp(sessLogSum / float64(completed))
			row.StandaloneSec = math.Exp(aloneLogSum / float64(completed))
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteMultiTable prints the multi-metric session comparison.
func WriteMultiTable(w io.Writer, rows []MultiRow, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Multi-metric sessions: {ER, MED, MHD} in one deduplicated run (time limit %v, %d approx versions%s)\n",
		cfg.TimeLimit, cfg.Versions, map[bool]string{true: ", full-size", false: ", scaled"}[cfg.Full])
	fmt.Fprintf(w, "%-11s %12s %14s %9s %16s %9s\n",
		"Benchmark", "Session/s", "Standalone/s", "Speedup", "Tasks uniq/req", "Deduped")
	for _, r := range rows {
		if r.TimedOut {
			fmt.Fprintf(w, "%-11s %12s\n", r.Name, fmt.Sprintf(">%g", cfg.TimeLimit.Seconds()))
			continue
		}
		speedup := "-"
		if r.SessionSec > 0 && r.StandaloneSec > 0 {
			speedup = fmt.Sprintf("%.3gx", r.StandaloneSec/r.SessionSec)
		}
		dedup := "-"
		if r.TasksRequested > 0 {
			dedup = fmt.Sprintf("%d%%", 100*r.TasksDeduped/r.TasksRequested)
		}
		note := ""
		if r.Mismatch {
			note = "  VALUE MISMATCH"
		}
		fmt.Fprintf(w, "%-11s %12.4g %14.4g %9s %16s %9s%s\n",
			r.Name, r.SessionSec, r.StandaloneSec, speedup,
			fmt.Sprintf("%d/%d", r.TasksUnique, r.TasksRequested), dedup, note)
	}
}

// ApproxRow is one line of the approx-vs-exact comparison: the same
// (benchmark, version) pairs verified with the (ε, δ) approx backend
// and with exact VACSEM, so the estimates' (1+ε) bands are checked
// against ground truth and the runtimes compared.
type ApproxRow struct {
	Name string
	// ApproxSec and ExactSec are geomean runtimes over the completed
	// versions of the approx and the exact run.
	ApproxSec, ExactSec float64
	// Within counts versions whose estimate landed inside the (1+ε)
	// band of the exact value; Total the versions compared. Within must
	// equal Total up to the δ failure probability.
	Within, Total int
	// ExactHits counts versions the approx backend happened to solve
	// exactly (count under the pivot, no hashing error).
	ExactHits int
	Epsilon   float64
	TimedOut  bool
}

// RunApproxTable verifies the metric for every spec twice — with the
// approx backend and with exact VACSEM — and reports band adherence
// plus the runtime comparison. Both runs land in OnRun (method "approx"
// vs "vacsem"), so the JSON report carries the raw comparability data.
func RunApproxTable(specs []Spec, metric Metric, cfg Config) []ApproxRow {
	cfg = cfg.withDefaults()
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.8 // the ApproxMC default the backend applies
	}
	band := new(big.Rat).SetFloat64(1 + eps)
	rows := make([]ApproxRow, 0, len(specs))
	for _, spec := range specs {
		row := ApproxRow{Name: spec.Name, Epsilon: eps}
		apxLog, exLog, completed := 0.0, 0.0, 0
		for v, approx := range spec.Approx {
			verify := func(m core.Method) (*core.Result, error) {
				opt := cfg.options(m)
				start := time.Now()
				var res *core.Result
				var err error
				if metric == MED {
					res, err = core.VerifyMED(spec.Exact, approx, opt)
				} else {
					res, err = core.VerifyER(spec.Exact, approx, opt)
				}
				if cfg.OnRun != nil {
					cfg.OnRun(newRunRecord(spec.Name, metric.String(), m, v, res, err, time.Since(start)))
				}
				return res, err
			}
			est, err := verify(core.MethodApprox)
			if err != nil {
				row.TimedOut = true
				break
			}
			exact, err := verify(core.MethodVACSEM)
			if err != nil {
				row.TimedOut = true
				break
			}
			row.Total++
			if !est.Approx {
				row.ExactHits++
			}
			if withinBand(est.Value, exact.Value, band) {
				row.Within++
			}
			apxLog += math.Log(clampSecs(est.Runtime.Seconds()))
			exLog += math.Log(clampSecs(exact.Runtime.Seconds()))
			completed++
		}
		if completed > 0 {
			row.ApproxSec = math.Exp(apxLog / float64(completed))
			row.ExactSec = math.Exp(exLog / float64(completed))
		}
		rows = append(rows, row)
	}
	return rows
}

// withinBand reports want/(1+ε) <= got <= want*(1+ε) in exact rational
// arithmetic; band is the precomputed (1+ε).
func withinBand(got, want, band *big.Rat) bool {
	hi := new(big.Rat).Mul(want, band)
	lo := new(big.Rat).Mul(got, band) // got*(1+ε) >= want <=> got >= want/(1+ε)
	return lo.Cmp(want) >= 0 && got.Cmp(hi) <= 0
}

func clampSecs(s float64) float64 {
	if s <= 0 {
		return 1e-6
	}
	return s
}

// WriteApproxTable prints the approx-vs-exact comparison.
func WriteApproxTable(w io.Writer, rows []ApproxRow, cfg Config) {
	cfg = cfg.withDefaults()
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.8
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.2
	}
	fmt.Fprintf(w, "Approx vs exact: (ε=%g, δ=%g) estimates against exact values (time limit %v, %d approx versions%s)\n",
		eps, delta, cfg.TimeLimit, cfg.Versions,
		map[bool]string{true: ", full-size", false: ", scaled"}[cfg.Full])
	fmt.Fprintf(w, "%-11s %12s %12s %9s %9s %10s\n",
		"Benchmark", "Approx/s", "Exact/s", "Ratio", "InBand", "ExactHits")
	for _, r := range rows {
		if r.TimedOut {
			fmt.Fprintf(w, "%-11s %12s\n", r.Name, fmt.Sprintf(">%g", cfg.TimeLimit.Seconds()))
			continue
		}
		ratio := "-"
		if r.ApproxSec > 0 && r.ExactSec > 0 {
			ratio = fmt.Sprintf("%.3gx", r.ExactSec/r.ApproxSec)
		}
		fmt.Fprintf(w, "%-11s %12.4g %12.4g %9s %9s %10d\n",
			r.Name, r.ApproxSec, r.ExactSec, ratio,
			fmt.Sprintf("%d/%d", r.Within, r.Total), r.ExactHits)
	}
}

// WriteTable prints rows in the paper's layout.
func WriteTable(w io.Writer, title string, rows []Row, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "%s (time limit %v, %d approx versions%s)\n",
		title, cfg.TimeLimit, cfg.Versions, map[bool]string{true: ", full-size", false: ", scaled"}[cfg.Full])
	fmt.Fprintf(w, "%-11s %12s %12s %12s %14s %14s\n",
		"Benchmark", "VACSEM/s", "DPLL/s", "Enum/s", "vs DPLL", "vs Enum")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s %12s %12s %12s %14s %14s\n",
			r.Name,
			r.Cells[core.MethodVACSEM].Render(cfg.TimeLimit),
			r.Cells[core.MethodDPLL].Render(cfg.TimeLimit),
			r.Cells[core.MethodEnum].Render(cfg.TimeLimit),
			r.Speedup(core.MethodDPLL, cfg.TimeLimit),
			r.Speedup(core.MethodEnum, cfg.TimeLimit))
	}
	fmt.Fprintf(w, "%-11s %12s %12s %12s %13.4gx %13.4gx\n",
		"GEOMEAN", "", "", "",
		GeomeanSpeedup(rows, core.MethodDPLL, cfg.TimeLimit),
		GeomeanSpeedup(rows, core.MethodEnum, cfg.TimeLimit))
}

// WriteDDScalability reproduces the paper's footnote-2 claim as an
// experiment: decision-diagram verification (MethodBDD, the prior art
// of refs [3]-[6]) collapses on multipliers far below the sizes VACSEM
// handles, while staying competitive on adders. One row per circuit;
// BDD explosion beyond the node budget prints as "blow-up".
func WriteDDScalability(w io.Writer, cfg Config) {
	cfg = cfg.withDefaults()
	type point struct {
		name   string
		metric Metric
		exact  *circuit.Circuit
		approx *circuit.Circuit
	}
	var points []point
	adderBits := []int{8, 16, 32, 64}
	multBits := []int{4, 6, 8}
	if cfg.Full {
		multBits = append(multBits, 10, 12)
	}
	for _, n := range adderBits {
		points = append(points, point{
			fmt.Sprintf("adder%d/ER", n), ER,
			gen.RippleCarryAdder(n), als.LowerORAdder(n, 3),
		})
	}
	for _, n := range multBits {
		exact := gen.ArrayMultiplier(n)
		apx := als.TruncatedMultiplier(n, n/2)
		points = append(points,
			point{fmt.Sprintf("mult%d/ER", n), ER, exact, apx},
			point{fmt.Sprintf("mult%d/MED", n), MED, exact, apx})
	}
	fmt.Fprintf(w, "DD scalability (node budget %d; paper footnote 2: DDs die beyond 32-bit adders / 8-bit multipliers)\n", 1<<22)
	fmt.Fprintf(w, "%-13s %14s %14s\n", "Instance", "BDD/s", "VACSEM/s")
	for _, p := range points {
		render := func(m core.Method) string {
			opt := cfg.options(m)
			start := time.Now()
			var res *core.Result
			var err error
			if p.metric == MED {
				res, err = core.VerifyMED(p.exact, p.approx, opt)
			} else {
				res, err = core.VerifyER(p.exact, p.approx, opt)
			}
			if cfg.OnRun != nil {
				cfg.OnRun(newRunRecord(p.name, p.metric.String(), m, 0, res, err, time.Since(start)))
			}
			switch err {
			case nil:
				return fmt.Sprintf("%.4g", time.Since(start).Seconds())
			case core.ErrBDDTooLarge:
				return "blow-up"
			default:
				return fmt.Sprintf(">%g", cfg.TimeLimit.Seconds())
			}
		}
		fmt.Fprintf(w, "%-13s %14s %14s\n", p.name, render(core.MethodBDD), render(core.MethodVACSEM))
	}
}

// WriteTable3 prints the benchmark inventory (Table III): PI/PO counts
// and AIG node counts of the suite.
func WriteTable3(w io.Writer) {
	fmt.Fprintf(w, "Table III benchmark inventory (node counts are AIG ANDs after ToAIG)\n")
	fmt.Fprintf(w, "%-11s %-6s %6s %6s %8s\n", "Name", "Type", "#PI", "#PO", "#Node")
	for _, b := range gen.Suite() {
		c := b.Build()
		aig := synth.ToAIG(c)
		fmt.Fprintf(w, "%-11s %-6s %6d %6d %8d\n",
			b.Name, b.Type, c.NumInputs(), c.NumOutputs(), synth.AndCount(aig))
	}
}
