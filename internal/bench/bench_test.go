package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vacsem/internal/core"
)

func tinyConfig() Config {
	return Config{Versions: 1, TimeLimit: 20 * time.Second}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Versions != 3 || c.TimeLimit != 30*time.Second || len(c.Methods) != 3 {
		t.Errorf("scaled defaults wrong: %+v", c)
	}
	f := Config{Full: true}.withDefaults()
	if f.Versions != 10 || f.TimeLimit != 4*time.Hour {
		t.Errorf("full defaults wrong: %+v", f)
	}
}

func TestCellRender(t *testing.T) {
	limit := 10 * time.Second
	if got := (Cell{Geomean: 0.1234}).Render(limit); got != "0.1234" {
		t.Errorf("Render = %q", got)
	}
	if got := (Cell{TimedOut: true}).Render(limit); got != ">10" {
		t.Errorf("timeout Render = %q", got)
	}
	if got := (Cell{Infeasible: true}).Render(limit); got != ">10" {
		t.Errorf("infeasible Render = %q", got)
	}
}

func TestRowSpeedup(t *testing.T) {
	limit := 100 * time.Second
	r := Row{Cells: map[core.Method]Cell{
		core.MethodVACSEM: {Geomean: 2},
		core.MethodDPLL:   {Geomean: 10},
		core.MethodEnum:   {TimedOut: true},
	}}
	if got := r.Speedup(core.MethodDPLL, limit); got != "5" {
		t.Errorf("speedup vs dpll = %q", got)
	}
	if got := r.Speedup(core.MethodEnum, limit); got != ">50" {
		t.Errorf("speedup vs enum = %q", got)
	}
	// VACSEM itself timed out: undefined.
	r2 := Row{Cells: map[core.Method]Cell{
		core.MethodVACSEM: {TimedOut: true},
		core.MethodDPLL:   {Geomean: 1},
	}}
	if got := r2.Speedup(core.MethodDPLL, limit); got != "-" {
		t.Errorf("timed-out VACSEM speedup = %q", got)
	}
}

func TestGeomeanSpeedup(t *testing.T) {
	limit := time.Second
	rows := []Row{
		{Cells: map[core.Method]Cell{
			core.MethodVACSEM: {Geomean: 1},
			core.MethodDPLL:   {Geomean: 4},
		}},
		{Cells: map[core.Method]Cell{
			core.MethodVACSEM: {Geomean: 1},
			core.MethodDPLL:   {Geomean: 16},
		}},
	}
	if got := GeomeanSpeedup(rows, core.MethodDPLL, limit); got != 8 {
		t.Errorf("geomean = %v, want 8", got)
	}
	if got := GeomeanSpeedup(nil, core.MethodDPLL, limit); got != 0 {
		t.Errorf("empty geomean = %v", got)
	}
}

func TestAdderMultSpecsScaledShape(t *testing.T) {
	specs := AdderMultSpecs(tinyConfig())
	if len(specs) != 6 {
		t.Fatalf("got %d specs", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
		if len(s.Approx) != 1 {
			t.Errorf("%s: %d versions, want 1", s.Name, len(s.Approx))
		}
		for _, a := range s.Approx {
			if a.NumInputs() != s.Exact.NumInputs() || a.NumOutputs() != s.Exact.NumOutputs() {
				t.Errorf("%s: approximate version interface mismatch", s.Name)
			}
		}
	}
	for _, want := range []string{"adder8", "adder16", "adder32", "mult6", "mult8", "mult10"} {
		if !names[want] {
			t.Errorf("missing spec %s", want)
		}
	}
}

func TestEPFLBACSSpecsScaled(t *testing.T) {
	specs := EPFLBACSSpecs(tinyConfig())
	if len(specs) != 12 {
		t.Fatalf("got %d specs", len(specs))
	}
	for _, s := range specs {
		if err := s.Exact.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if len(s.Approx) != 1 {
			t.Errorf("%s: versions", s.Name)
		}
	}
}

// TestRunTableEndToEnd exercises the harness on the two smallest specs
// with all three methods and checks internal consistency (VACSEM never
// times out, speedups renderable).
func TestRunTableEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	all := AdderMultSpecs(cfg)
	specs := []Spec{all[0], all[3]} // adder8, mult6
	rows := RunTable(specs, ER, cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		v := r.Cells[core.MethodVACSEM]
		if v.TimedOut || v.Infeasible || v.Geomean <= 0 {
			t.Errorf("%s: VACSEM cell bad: %+v", r.Name, v)
		}
	}
	var buf bytes.Buffer
	WriteTable(&buf, "test table", rows, cfg)
	out := buf.String()
	if !strings.Contains(out, "adder8") || !strings.Contains(out, "GEOMEAN") {
		t.Errorf("table output malformed:\n%s", out)
	}
}

func TestRunTableMED(t *testing.T) {
	cfg := tinyConfig()
	cfg.Methods = []core.Method{core.MethodVACSEM, core.MethodEnum}
	specs := AdderMultSpecs(cfg)[:1] // adder8
	rows := RunTable(specs, MED, cfg)
	v := rows[0].Cells[core.MethodVACSEM]
	e := rows[0].Cells[core.MethodEnum]
	if v.Geomean <= 0 || e.Geomean <= 0 {
		t.Errorf("MED cells: vacsem %+v enum %+v", v, e)
	}
}

func TestWriteTable3(t *testing.T) {
	var buf bytes.Buffer
	WriteTable3(&buf)
	out := buf.String()
	for _, name := range []string{"adder128", "mult16", "sin", "mac"} {
		if !strings.Contains(out, name) {
			t.Errorf("table 3 missing %s:\n%s", name, out)
		}
	}
}

func TestMetricString(t *testing.T) {
	if ER.String() != "ER" || MED.String() != "MED" {
		t.Error("metric names wrong")
	}
}

// TestRunMulti exercises the multi-metric session harness on the two
// smallest specs: dedup must fire, session values must match the
// standalone runs (Mismatch false), and the session record stream must
// carry the dedup and cross-metric cache accounting.
func TestRunMulti(t *testing.T) {
	cfg := tinyConfig()
	var recs []SessionRecord
	cfg.OnSession = func(rec SessionRecord) { recs = append(recs, rec) }
	all := AdderMultSpecs(cfg)
	specs := []Spec{all[0], all[3]} // adder8, mult6
	rows := RunMulti(specs, cfg)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TimedOut {
			t.Errorf("%s: timed out", r.Name)
		}
		if r.Mismatch {
			t.Errorf("%s: session values differ from standalone", r.Name)
		}
		if r.TasksDeduped <= 0 {
			t.Errorf("%s: TasksDeduped = %d, want > 0", r.Name, r.TasksDeduped)
		}
		if r.TasksUnique+r.TasksDeduped != r.TasksRequested {
			t.Errorf("%s: task accounting %d+%d != %d",
				r.Name, r.TasksUnique, r.TasksDeduped, r.TasksRequested)
		}
		if r.SessionSec <= 0 || r.StandaloneSec <= 0 {
			t.Errorf("%s: runtimes %v / %v", r.Name, r.SessionSec, r.StandaloneSec)
		}
	}
	if len(recs) != 2 {
		t.Fatalf("got %d session records", len(recs))
	}
	for _, rec := range recs {
		if rec.TasksDeduped <= 0 || len(rec.Metrics) != 3 {
			t.Errorf("%s: record %+v", rec.Bench, rec)
		}
		if rec.StandaloneSeconds <= 0 {
			t.Errorf("%s: standalone seconds missing", rec.Bench)
		}
	}
	var buf bytes.Buffer
	WriteMultiTable(&buf, rows, cfg)
	out := buf.String()
	if !strings.Contains(out, "adder8") || !strings.Contains(out, "Deduped") {
		t.Errorf("multi table malformed:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("multi table reports mismatch:\n%s", out)
	}
}
