package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"vacsem/internal/core"
	"vacsem/internal/counter"
	"vacsem/internal/obs"
)

// SubRecord is the wall time and outcome of one sub-miter inside one
// verification run — the per-sub-miter breakdown the text tables never
// showed (they only print geomean totals).
type SubRecord struct {
	Output    string  `json:"output"`
	Seconds   float64 `json:"seconds"`
	Count     string  `json:"count"`
	Trivial   bool    `json:"trivial,omitempty"`
	Decisions uint64  `json:"decisions,omitempty"`
	SimCalls  uint64  `json:"sim_calls,omitempty"`
	CacheHits uint64  `json:"cache_hits,omitempty"`
	// CacheCross counts hits on components first solved inside another
	// sub-miter of the same run (nonzero only with the shared cache).
	CacheCross uint64 `json:"cache_cross_hits,omitempty"`
	// Approx marks an (ε, δ)-estimated count; Epsilon/Delta are its
	// per-task tolerance and failure probability.
	Approx  bool    `json:"approx,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// BestEffort marks an approx count whose round schedule was cut
	// short by the time limit (Delta above is already widened).
	BestEffort bool `json:"best_effort,omitempty"`
	// SupportBefore/SupportAfter are the approx sampling-set sizes
	// around independent-support minimization; HashDensity is the mean
	// density of the hash rows drawn.
	SupportBefore int     `json:"support_before,omitempty"`
	SupportAfter  int     `json:"support_after,omitempty"`
	HashDensity   float64 `json:"hash_density,omitempty"`
}

// RunRecord is one (benchmark, metric, method, version) measurement.
type RunRecord struct {
	Bench      string        `json:"bench"`
	Metric     string        `json:"metric"`
	Method     string        `json:"method"`
	Version    int           `json:"version"`
	Seconds    float64       `json:"seconds"`
	Value      string        `json:"value,omitempty"` // exact rational metric value
	Count      string        `json:"count,omitempty"`
	NumInputs  int           `json:"num_inputs,omitempty"`
	TimedOut   bool          `json:"timed_out,omitempty"`
	Infeasible bool          `json:"infeasible,omitempty"`
	Err        string        `json:"error,omitempty"`
	Subs       []SubRecord   `json:"subs,omitempty"`
	Stats      counter.Stats `json:"stats"`
	// Approx marks a value estimated by the approx backend rather than
	// computed exactly; Epsilon/Delta/Confidence are then the metric's
	// aggregated (ε, δ) guarantee. Exact runs omit all four fields, so
	// approximate and exact records are directly distinguishable when
	// comparing values across a report.
	Approx     bool    `json:"approx,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// BestEffort marks an approx run whose round schedule was cut short
	// by the time limit on at least one task (Delta is already widened).
	BestEffort bool `json:"best_effort,omitempty"`
	// Timeseries is the flight recorder's sampled series for the run
	// (present when vacsem-bench records flight data, the default).
	Timeseries *obs.Timeseries `json:"timeseries,omitempty"`
}

// newRunRecord flattens one verification outcome into a RunRecord. res
// may be nil (timeout, infeasible, error); wall is the caller-observed
// duration, used when res carries no runtime of its own.
func newRunRecord(bench, metric string, m core.Method, version int, res *core.Result, err error, wall time.Duration) RunRecord {
	rec := RunRecord{
		Bench:   bench,
		Metric:  metric,
		Method:  m.String(),
		Version: version,
		Seconds: wall.Seconds(),
	}
	switch {
	case err == nil:
	case errors.Is(err, core.ErrTimeout):
		rec.TimedOut = true
	case errors.Is(err, core.ErrTooLarge), errors.Is(err, core.ErrBDDTooLarge):
		rec.Infeasible = true
	default:
		rec.Err = err.Error()
	}
	if res == nil {
		return rec
	}
	if res.Runtime > 0 {
		rec.Seconds = res.Runtime.Seconds()
	}
	rec.Value = res.Value.RatString()
	rec.Count = res.Count.String()
	rec.NumInputs = res.NumInputs
	rec.Stats = res.TotalStats
	if res.Approx {
		rec.Approx = true
		rec.Epsilon = res.Epsilon
		rec.Delta = res.Delta
		rec.Confidence = res.Confidence
		rec.BestEffort = res.BestEffort
	}
	rec.Timeseries = res.Timeseries
	rec.Subs = make([]SubRecord, len(res.Subs))
	for i, sub := range res.Subs {
		rec.Subs[i] = SubRecord{
			Output:        sub.Output,
			Seconds:       sub.Runtime.Seconds(),
			Count:         sub.Count.String(),
			Trivial:       sub.Trivial,
			Decisions:     sub.Stats.Decisions,
			SimCalls:      sub.Stats.SimCalls,
			CacheHits:     sub.Stats.CacheHits,
			CacheCross:    sub.Stats.CacheCrossHits,
			Approx:        sub.Approx,
			Epsilon:       sub.Epsilon,
			Delta:         sub.Delta,
			BestEffort:    sub.BestEffort,
			SupportBefore: sub.SupportBefore,
			SupportAfter:  sub.SupportAfter,
			HashDensity:   sub.HashDensity,
		}
	}
	return rec
}

// MetricRecord is one metric's verified value inside a multi-metric
// session record.
type MetricRecord struct {
	Metric string `json:"metric"`
	Value  string `json:"value"`
	Count  string `json:"count"`
}

// SessionRecord is one multi-metric verification session (the -table
// multi mode): all metrics of one (benchmark, version) pair verified in
// a single shared-base, task-deduplicated run, plus the matching sum of
// standalone single-metric runtimes for comparison.
type SessionRecord struct {
	Bench   string  `json:"bench"`
	Method  string  `json:"method"`
	Version int     `json:"version"`
	Seconds float64 `json:"seconds"`
	// StandaloneSeconds sums the runtimes of the equivalent standalone
	// single-metric runs (zero when they were skipped or failed).
	StandaloneSeconds float64        `json:"standalone_seconds,omitempty"`
	Metrics           []MetricRecord `json:"metrics,omitempty"`
	// TasksRequested counts metric output bits before deduplication;
	// TasksUnique the counting tasks actually solved.
	TasksRequested int `json:"tasks_requested"`
	TasksUnique    int `json:"tasks_unique"`
	TasksDeduped   int `json:"tasks_deduped"`
	// BaseNodesBefore/After is the shared base miter's gate count around
	// its single synthesis pass.
	BaseNodesBefore int `json:"base_nodes_before"`
	BaseNodesAfter  int `json:"base_nodes_after"`
	// CacheCrossHits counts component-cache hits on entries first stored
	// by another sub-miter solver — with the session-wide shared cache
	// this includes hits across metrics.
	CacheCrossHits uint64        `json:"cache_cross_hits"`
	TimedOut       bool          `json:"timed_out,omitempty"`
	Err            string        `json:"error,omitempty"`
	Stats          counter.Stats `json:"stats"`
	// Timeseries is the flight recorder's sampled series for the session
	// run (present when flight recording is on).
	Timeseries *obs.Timeseries `json:"timeseries,omitempty"`
}

// newSessionRecord flattens one session outcome. sess may be nil.
func newSessionRecord(bench string, m core.Method, version int, sess *core.SessionResult, err error, wall time.Duration) SessionRecord {
	rec := SessionRecord{
		Bench:   bench,
		Method:  m.String(),
		Version: version,
		Seconds: wall.Seconds(),
	}
	switch {
	case err == nil:
	case errors.Is(err, core.ErrTimeout):
		rec.TimedOut = true
	default:
		rec.Err = err.Error()
	}
	if sess == nil {
		return rec
	}
	if sess.Runtime > 0 {
		rec.Seconds = sess.Runtime.Seconds()
	}
	rec.TasksRequested = sess.TasksRequested
	rec.TasksUnique = sess.TasksUnique
	rec.TasksDeduped = sess.TasksDeduped
	rec.BaseNodesBefore = sess.BaseNodesBefore
	rec.BaseNodesAfter = sess.BaseNodesAfter
	rec.CacheCrossHits = sess.TotalStats.CacheCrossHits
	rec.Stats = sess.TotalStats
	rec.Timeseries = sess.Timeseries
	rec.Metrics = make([]MetricRecord, len(sess.Results))
	for i, res := range sess.Results {
		rec.Metrics[i] = MetricRecord{
			Metric: res.Metric,
			Value:  res.Value.RatString(),
			Count:  res.Count.String(),
		}
	}
	return rec
}

// Report is the machine-readable run summary cmd/vacsem-bench writes as
// BENCH_<timestamp>.json: every individual verification (with
// per-sub-miter wall times) plus the end-of-run metric totals, so the
// performance trajectory of the repository can be tracked from data
// instead of eyeballing table output.
type Report struct {
	Generated  string `json:"generated"` // RFC 3339
	Suite      string `json:"suite"`     // "scaled" or "full"
	Versions   int    `json:"versions"`
	TimeLimit  string `json:"time_limit"`
	Workers    int    `json:"workers"`
	SimWorkers int    `json:"sim_workers"`
	Tables     string `json:"tables"`

	// SimBlocksPerSec is the run-wide throughput of the compiled
	// simulation kernel (pattern blocks counted / kernel-seconds), the
	// perf-trajectory headline AttachMetrics derives from the metrics
	// snapshot. Zero when the kernel never ran.
	SimBlocksPerSec float64 `json:"sim_blocks_per_sec"`

	mu       sync.Mutex
	Runs     []RunRecord     `json:"runs"`
	Sessions []SessionRecord `json:"sessions,omitempty"`
	Serves   []ServeRecord   `json:"serves,omitempty"`
	Metrics  *obs.Snapshot   `json:"metrics,omitempty"`
}

// NewReport creates a report describing one vacsem-bench invocation.
func NewReport(cfg Config, tables string, now time.Time) *Report {
	cfg = cfg.withDefaults()
	suite := "scaled"
	if cfg.Full {
		suite = "full"
	}
	return &Report{
		Generated:  now.Format(time.RFC3339),
		Suite:      suite,
		Versions:   cfg.Versions,
		TimeLimit:  cfg.TimeLimit.String(),
		Workers:    cfg.Workers,
		SimWorkers: cfg.SimWorkers,
		Tables:     tables,
	}
}

// Add appends one run record; safe for concurrent use so it can serve
// directly as Config.OnRun.
func (r *Report) Add(rec RunRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Runs = append(r.Runs, rec)
}

// AddSession appends one multi-metric session record; safe for
// concurrent use so it can serve directly as Config.OnSession.
func (r *Report) AddSession(rec SessionRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Sessions = append(r.Sessions, rec)
}

// AddServe appends one service cold/warm record; safe for concurrent
// use so it can serve directly as Config.OnServe.
func (r *Report) AddServe(rec ServeRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Serves = append(r.Serves, rec)
}

// AttachMetrics snapshots the default metrics registry into the report
// and derives the kernel throughput headline from it.
func (r *Report) AttachMetrics() {
	s := obs.Default.Snapshot()
	r.Metrics = &s
	var blocks uint64
	for _, c := range s.Counters {
		if c.Name == "sim.kernel_blocks" {
			blocks = c.Value
		}
	}
	for _, h := range s.Histograms {
		if h.Name == "sim.kernel_seconds" && h.Sum > 0 {
			r.SimBlocksPerSec = float64(blocks) / h.Sum
		}
	}
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DefaultReportPath names the report file for a run started at now:
// BENCH_<timestamp>.json in the current directory, next to the text
// tables on stdout.
func DefaultReportPath(now time.Time) string {
	return fmt.Sprintf("BENCH_%s.json", now.Format("20060102T150405"))
}
