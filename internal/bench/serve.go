package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"vacsem/internal/blif"
	"vacsem/internal/circuit"
	"vacsem/internal/serve"
	"vacsem/internal/store"
)

// ServeRecord is one benchmark's measurement of the verification
// service's cross-request store (the -table serve mode): the same
// {ER, MED} job submitted three times over HTTP — cold against an empty
// store, warm against the store the cold run filled, and again after a
// server restart that reloaded the store from its snapshot. Warm runs
// must return bit-identical values while solving nothing.
type ServeRecord struct {
	Bench string `json:"bench"`
	// ColdSeconds/WarmSeconds/ReloadSeconds are the server-side session
	// runtimes of the three submissions.
	ColdSeconds   float64 `json:"cold_seconds"`
	WarmSeconds   float64 `json:"warm_seconds"`
	ReloadSeconds float64 `json:"reload_seconds"`
	// ConeHits / ReloadConeHits count the tasks the warm runs served
	// whole from the store (the cold run's must be zero, and is checked).
	ConeHits       int `json:"cone_hits"`
	ReloadConeHits int `json:"reload_cone_hits"`
	// Match reports the warm and the reloaded values bit-identical to
	// the cold ones — it must always hold; the table prints it loudly.
	Match    bool   `json:"match"`
	TimedOut bool   `json:"timed_out,omitempty"`
	Err      string `json:"error,omitempty"`

	// coldValues carries the cold run's metric values between phases.
	coldValues []string
}

// Speedup is the warm-over-cold runtime ratio (0 when undefined).
func (r ServeRecord) Speedup() float64 {
	if r.ColdSeconds <= 0 || r.WarmSeconds <= 0 {
		return 0
	}
	return r.ColdSeconds / r.WarmSeconds
}

// ServeSpecs builds the -table serve workload: one approximate version
// per adder/multiplier benchmark (the store makes repeats free, so one
// pair per family is the interesting unit).
func ServeSpecs(cfg Config) []Spec {
	specs := AdderMultSpecs(cfg)
	for i := range specs {
		specs[i].Approx = specs[i].Approx[:1]
	}
	return specs
}

// RunServeTable measures the verification service end to end: it
// starts a real vacsem-serve instance (ephemeral port, snapshot file),
// submits every spec's job cold and then warm over HTTP, restarts the
// server from the written snapshot, and submits once more. Results are
// reported per benchmark; cfg.OnServe receives each record.
func RunServeTable(specs []Spec, cfg Config) []ServeRecord {
	cfg = cfg.withDefaults()
	recs := make([]ServeRecord, len(specs))
	for i := range specs {
		recs[i].Bench = specs[i].Name
		recs[i].Match = true
	}
	fail := func(err error) []ServeRecord {
		for i := range recs {
			if recs[i].Err == "" {
				recs[i].Err = err.Error()
			}
		}
		emitServe(cfg, recs)
		return recs
	}

	snapFile, err := os.CreateTemp("", "vacsem-serve-bench-*.json")
	if err != nil {
		return fail(err)
	}
	snapPath := snapFile.Name()
	snapFile.Close()
	os.Remove(snapPath) // the server's shutdown snapshot creates it
	defer os.Remove(snapPath)

	// Phase 1: one server, cold then warm submissions.
	st := store.New(store.Config{})
	cl, shutdown, err := startServer(st, snapPath, cfg)
	if err != nil {
		return fail(err)
	}
	for i := range specs {
		r := &recs[i]
		res, jerr := cl.runJob(&specs[i], cfg)
		if !r.note(jerr) {
			continue
		}
		r.ColdSeconds = res.RuntimeMS / 1e3
		r.coldValues = metricValues(res)
		if res.StoreConeHits != 0 {
			r.Err = fmt.Sprintf("cold run reports %d store hits", res.StoreConeHits)
			continue
		}
		res, jerr = cl.runJob(&specs[i], cfg)
		if !r.note(jerr) {
			continue
		}
		r.WarmSeconds = res.RuntimeMS / 1e3
		r.ConeHits = res.StoreConeHits
		if !valuesEqual(r.coldValues, metricValues(res)) {
			r.Match = false
		}
		if res.Decisions != 0 {
			r.Err = fmt.Sprintf("warm run still ran solvers (%d decisions)", res.Decisions)
		}
	}
	if err := shutdown(); err != nil {
		return fail(err)
	}

	// Phase 2: a fresh server and store, warmed only by the snapshot the
	// first server wrote on shutdown.
	st2 := store.New(store.Config{})
	if err := st2.LoadFile(snapPath); err != nil {
		return fail(fmt.Errorf("reload snapshot: %w", err))
	}
	cl2, shutdown2, err := startServer(st2, "", cfg)
	if err != nil {
		return fail(err)
	}
	for i := range specs {
		r := &recs[i]
		if r.Err != "" || r.TimedOut {
			continue
		}
		res, jerr := cl2.runJob(&specs[i], cfg)
		if !r.note(jerr) {
			continue
		}
		r.ReloadSeconds = res.RuntimeMS / 1e3
		r.ReloadConeHits = res.StoreConeHits
		if !valuesEqual(r.coldValues, metricValues(res)) {
			r.Match = false
		}
	}
	if err := shutdown2(); err != nil {
		return fail(err)
	}
	emitServe(cfg, recs)
	return recs
}

func emitServe(cfg Config, recs []ServeRecord) {
	if cfg.OnServe == nil {
		return
	}
	for _, r := range recs {
		cfg.OnServe(r)
	}
}

// note records a job error on the record and reports whether to go on.
func (r *ServeRecord) note(err error) bool {
	switch {
	case err == nil:
		return true
	case strings.Contains(err.Error(), "time limit"):
		r.TimedOut = true
	default:
		r.Err = err.Error()
	}
	return false
}

func metricValues(res *serve.JobResult) []string {
	vals := make([]string, len(res.Metrics))
	for i, m := range res.Metrics {
		vals[i] = m.Value
	}
	return vals
}

func valuesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// startServer brings up a service instance on an ephemeral local port
// and returns a client plus a shutdown function (drains, snapshots when
// snapPath is set, and frees the port).
func startServer(st *store.Store, snapPath string, cfg Config) (*serveClient, func() error, error) {
	srv := serve.New(serve.Config{
		Store:            st,
		Workers:          cfg.Workers,
		DefaultTimeLimit: cfg.TimeLimit,
		SnapshotPath:     snapPath,
	})
	hs, err := serve.Start("127.0.0.1:0", srv)
	if err != nil {
		return nil, nil, err
	}
	cl := &serveClient{base: "http://" + hs.Addr()}
	shutdown := func() error {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), cfg.TimeLimit+time.Minute)
		defer cancel()
		return srv.Close(ctx)
	}
	return cl, shutdown, nil
}

// serveClient is a minimal HTTP client for the service API.
type serveClient struct {
	base string
}

// runJob submits one {ER, MED} job for the spec's first approximate
// version and polls it to completion, returning the server-side result.
func (c *serveClient) runJob(spec *Spec, cfg Config) (*serve.JobResult, error) {
	req := serve.VerifyRequest{
		ExactBLIF:  blifText(spec.Exact),
		ApproxBLIF: blifText(spec.Approx[0]),
		Metrics:    []string{"er", "med"},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(c.base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var sub serve.SubmitResponse
	if err := decodeBody(resp, http.StatusAccepted, &sub); err != nil {
		return nil, fmt.Errorf("submit %s: %w", spec.Name, err)
	}
	deadline := time.Now().Add(cfg.TimeLimit + time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/v1/jobs/" + sub.JobID)
		if err != nil {
			return nil, err
		}
		var st serve.JobStatus
		if err := decodeBody(resp, http.StatusOK, &st); err != nil {
			return nil, err
		}
		switch st.State {
		case serve.StateDone:
			return st.Result, nil
		case serve.StateError:
			return nil, fmt.Errorf("job %s: %s", sub.JobID, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %s: poll deadline exceeded", sub.JobID)
}

func decodeBody(resp *http.Response, wantStatus int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func blifText(c *circuit.Circuit) string {
	var buf bytes.Buffer
	blif.Write(&buf, c)
	return buf.String()
}

// WriteServeTable prints the service cold/warm/reload comparison.
func WriteServeTable(w io.Writer, recs []ServeRecord, cfg Config) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Verification service: cold vs store-warm vs snapshot-reloaded {ER, MED} jobs over HTTP (time limit %v%s)\n",
		cfg.TimeLimit, map[bool]string{true: ", full-size", false: ", scaled"}[cfg.Full])
	fmt.Fprintf(w, "%-11s %10s %10s %10s %9s %10s %7s\n",
		"Benchmark", "Cold/s", "Warm/s", "Reload/s", "Speedup", "ConeHits", "Match")
	for _, r := range recs {
		switch {
		case r.TimedOut:
			fmt.Fprintf(w, "%-11s %10s\n", r.Bench, fmt.Sprintf(">%g", cfg.TimeLimit.Seconds()))
			continue
		case r.Err != "":
			fmt.Fprintf(w, "%-11s ERROR: %s\n", r.Bench, r.Err)
			continue
		}
		speedup := "-"
		if s := r.Speedup(); s > 0 {
			speedup = fmt.Sprintf("%.3gx", s)
		}
		match := "ok"
		if !r.Match {
			match = "VALUE MISMATCH"
		}
		fmt.Fprintf(w, "%-11s %10.4g %10.4g %10.4g %9s %10s %7s\n",
			r.Bench, r.ColdSeconds, r.WarmSeconds, r.ReloadSeconds, speedup,
			fmt.Sprintf("%d/%d", r.ConeHits, r.ReloadConeHits), match)
	}
}
