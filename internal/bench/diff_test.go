package bench

import (
	"strings"
	"testing"
)

func baselineReport() *Report {
	return &Report{
		SimBlocksPerSec: 1000,
		Runs: []RunRecord{
			{Bench: "RCA-8", Metric: "ER", Method: "vacsem", Version: 1,
				Seconds: 0.5, Count: "100", Value: "100/256"},
			{Bench: "RCA-8", Metric: "MED", Method: "vacsem", Version: 1,
				Seconds: 1.0, Count: "300", Value: "300/256"},
			{Bench: "RCA-8", Metric: "ER", Method: "bdd", Version: 1,
				Seconds: 0.2, Infeasible: true},
		},
	}
}

// A run slower than old*tol must fail the gate; one inside the band
// must not.
func TestDiffTimeRegression(t *testing.T) {
	old := baselineReport()
	cur := baselineReport()
	cur.Runs[1].Seconds = 2.0 // 2x slower than the 1.0s baseline

	d := Diff(old, cur, DiffOptions{TimeTol: 1.5})
	if !d.HasRegressions() {
		t.Fatal("2x slowdown with 1.5x tolerance: want regression")
	}
	found := false
	for _, e := range d.Regressions {
		if e.Key == "RCA-8/MED/vacsem/v1" && e.Verdict == VerdictRegressed {
			found = true
		}
	}
	if !found {
		t.Errorf("regressions = %+v, want RCA-8/MED/vacsem/v1 REGRESSED", d.Regressions)
	}

	// Same slowdown with a generous band passes.
	if d := Diff(old, cur, DiffOptions{TimeTol: 3}); d.HasRegressions() {
		t.Errorf("2x slowdown with 3x tolerance: unexpected regressions %+v", d.Regressions)
	}
}

// Sub-noise-floor runs jitter; they must never be time-compared.
func TestDiffNoiseFloor(t *testing.T) {
	old := baselineReport()
	cur := baselineReport()
	old.Runs[0].Seconds = 0.001
	cur.Runs[0].Seconds = 0.010 // 10x "slower", but both below the floor

	d := Diff(old, cur, DiffOptions{TimeTol: 1.25, MinSeconds: 0.05})
	if d.HasRegressions() {
		t.Errorf("sub-floor jitter flagged: %+v", d.Regressions)
	}
}

// Exact counts are deterministic: any mismatch is a correctness
// regression regardless of tolerance.
func TestDiffValueMismatch(t *testing.T) {
	old := baselineReport()
	cur := baselineReport()
	cur.Runs[0].Count = "101"

	d := Diff(old, cur, DiffOptions{TimeTol: 100})
	if !d.HasRegressions() {
		t.Fatal("exact count changed: want regression even at huge tolerance")
	}
	if got := d.Regressions[0].Reason; !strings.Contains(got, "count changed") {
		t.Errorf("reason = %q, want count-changed", got)
	}
}

// ok -> timeout is a regression; the reverse is an improvement; a run
// vanishing from the new report is a regression.
func TestDiffStatusTransitions(t *testing.T) {
	old := baselineReport()
	cur := baselineReport()
	cur.Runs[1].TimedOut = true
	cur.Runs[1].Count, cur.Runs[1].Value = "", ""

	d := Diff(old, cur, DiffOptions{})
	if !d.HasRegressions() {
		t.Fatal("ok -> timeout: want regression")
	}

	// Reverse direction: improvement, not regression.
	d = Diff(cur, old, DiffOptions{})
	if d.HasRegressions() {
		t.Errorf("timeout -> ok flagged as regression: %+v", d.Regressions)
	}
	improved := false
	for _, e := range d.Entries {
		if e.Key == "RCA-8/MED/vacsem/v1" && e.Verdict == VerdictImproved {
			improved = true
		}
	}
	if !improved {
		t.Errorf("timeout -> ok not marked improved: %+v", d.Entries)
	}

	// Missing run.
	cur2 := baselineReport()
	cur2.Runs = cur2.Runs[:1]
	if d := Diff(old, cur2, DiffOptions{}); !d.HasRegressions() {
		t.Error("missing runs: want regression")
	}
}

// The report-level kernel-throughput headline has its own band.
func TestDiffThroughput(t *testing.T) {
	old := baselineReport()
	cur := baselineReport()
	cur.SimBlocksPerSec = 100 // 10% of baseline

	d := Diff(old, cur, DiffOptions{ThroughputTol: 0.5})
	if d.ThroughputOK || !d.HasRegressions() {
		t.Errorf("10x throughput drop with 50%% band: ThroughputOK=%v regressions=%+v",
			d.ThroughputOK, d.Regressions)
	}
	if d := Diff(old, cur, DiffOptions{ThroughputTol: 0.05}); !d.ThroughputOK {
		t.Error("10x drop inside a 5% band flagged")
	}
}

// Identical reports produce a clean table and no regressions.
func TestDiffClean(t *testing.T) {
	old := baselineReport()
	d := Diff(old, baselineReport(), DiffOptions{})
	if d.HasRegressions() {
		t.Fatalf("identical reports: %+v", d.Regressions)
	}
	var sb strings.Builder
	d.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"RCA-8/ER/vacsem/v1", "3 compared", "0 regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
