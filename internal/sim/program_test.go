package sim

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

// TestProgramMatchesEngineAllNodes is the tape's core property: compiled
// evaluation produces the same word as the reference interpreter for
// every node of random circuits, on every word of a multi-batch run
// (including the partial final batch).
func TestProgramMatchesEngineAllNodes(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		nIn := 1 + int(seed%10)
		c := testutil.RandomCircuit(nIn, 5+int(seed*7%40), 2+int(seed%3), seed)
		rng := rand.New(rand.NewSource(seed + 1000))
		words := 1 + int(seed%(2*BatchWords+3)) // exercises full and partial batches
		vectors := RandomVectors(nIn, words, rng)

		sigs, err := RunAllNodesCtx(context.Background(), c, vectors, words)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(c)
		in := make([]uint64, nIn)
		for w := 0; w < words; w++ {
			for i := range in {
				in[i] = vectors[i][w]
			}
			e.Run(in)
			for id := range c.Nodes {
				if sigs[id][w] != e.Val(id) {
					t.Fatalf("seed %d: node %d word %d: tape %#x, interpreter %#x",
						seed, id, w, sigs[id][w], e.Val(id))
				}
			}
		}
	}
}

// TestParallelCountsBitIdentical pins the merge determinism claim:
// per-output exhaustive counts are the same for 1, 2, and GOMAXPROCS
// workers (uint64 addition is associative and commutative, so chunk
// order cannot matter). Run under -race this also exercises the worker
// pool for data races even on a single-CPU machine.
func TestParallelCountsBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nIn := 14 + int(seed%4) // 2^14..2^17 patterns: hundreds of batches
		c := testutil.RandomCircuit(nIn, 60+int(seed*11%80), 3, seed)
		serial, err := CountOnesPerOutputWorkers(context.Background(), c, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8, runtime.GOMAXPROCS(0), 0} {
			got, err := CountOnesPerOutputWorkers(context.Background(), c, workers)
			if err != nil {
				t.Fatal(err)
			}
			for j := range serial {
				if got[j] != serial[j] {
					t.Fatalf("seed %d workers %d output %d: %d != serial %d",
						seed, workers, j, got[j], serial[j])
				}
			}
		}
	}
}

// TestParallelCountsMatchBrute cross-checks the parallel kernel against
// per-pattern brute force, closing the loop from tape + merge all the
// way to ground truth.
func TestParallelCountsMatchBrute(t *testing.T) {
	c := testutil.RandomCircuit(13, 70, 3, 42)
	want := testutil.CountOnesBrute(c)
	got, err := CountOnesPerOutputWorkers(context.Background(), c, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("output %d: %d, want %d", j, got[j], want[j])
		}
	}
}

// TestCompileComponentCounts checks the component program's consistency
// accumulator against brute-force enumeration: free inputs enumerate,
// pinned inputs hold constants, and checking gates constrain the
// surviving patterns.
func TestCompileComponentCounts(t *testing.T) {
	// y0 = (a & b) ^ p, y1 = ~(b | p) with p pinned; check y0 == 1.
	c := circuit.New("comp")
	a := c.AddInput("a")
	b := c.AddInput("b")
	p := c.AddInput("p")
	g1 := c.AddGate(circuit.And, a, b)
	g2 := c.AddGate(circuit.Xor, g1, p)
	g3 := c.AddGate(circuit.Nor, b, p)
	c.AddOutput(g2, "y0")
	c.AddOutput(g3, "y1")

	for _, pinVal := range []bool{false, true} {
		gates := []int32{int32(g1), int32(g2), int32(g3)}
		free := []int32{int32(a), int32(b)}
		pinned := []PinnedInput{{Node: int32(p), Val: pinVal}}
		check := func(g int32) int8 {
			if g == int32(g2) {
				return 1 // require y0 == 1
			}
			if g == int32(g3) {
				return -1 // require y1 == 0
			}
			return 0
		}
		prog, err := CompileComponent(c, gates, free, pinned, check)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := prog.CountOnes(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over (a, b).
		want := uint64(0)
		for pat := 0; pat < 4; pat++ {
			av, bv := pat&1 == 1, pat&2 == 2
			y0 := (av && bv) != pinVal
			y1 := !(bv || pinVal)
			if y0 && !y1 {
				want++
			}
		}
		if counts[0] != want {
			t.Errorf("pin=%v: count = %d, want %d", pinVal, counts[0], want)
		}
	}
}

// TestComponentProgramNoChecksCountsAll compiles every gate of a random
// circuit as a component with no checks and no pins: the accumulator
// stays all-ones, so the count must be exactly 2^K.
func TestComponentProgramNoChecksCountsAll(t *testing.T) {
	c := testutil.RandomCircuit(9, 40, 2, 7)
	var gates []int32
	for id := 1; id < len(c.Nodes); id++ {
		if c.Nodes[id].Kind.IsGate() {
			gates = append(gates, int32(id))
		}
	}
	free := make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		free[i] = int32(id)
	}
	prog, err := CompileComponent(c, gates, free, nil, func(int32) int8 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	counts, err := prog.CountOnes(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1) << 9; counts[0] != want {
		t.Errorf("count = %d, want %d", counts[0], want)
	}
}

// TestRunHelpersCancel pins that the vector-streaming helpers honor an
// already-cancelled context.
func TestRunHelpersCancel(t *testing.T) {
	c := testutil.RandomCircuit(8, 30, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	vectors := RandomVectors(8, 64, rand.New(rand.NewSource(1)))
	if _, err := RunManyCtx(ctx, c, vectors, 64); !errors.Is(err, context.Canceled) {
		t.Errorf("RunManyCtx err = %v, want Canceled", err)
	}
	if _, err := RunAllNodesCtx(ctx, c, vectors, 64); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAllNodesCtx err = %v, want Canceled", err)
	}
	if _, err := SignalProbabilitiesCtx(ctx, c, 64, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SignalProbabilitiesCtx err = %v, want Canceled", err)
	}
	if _, err := CountOnesPerOutputWorkers(ctx, c, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("CountOnesPerOutputWorkers err = %v, want Canceled", err)
	}
}

// TestSignalProbabilitiesSeedStable pins that the kernel rewrite kept
// the random stream order (word-major, input-minor): same seed, same
// estimates as the helper always produced.
func TestSignalProbabilitiesSeedStable(t *testing.T) {
	c := testutil.RandomCircuit(5, 20, 2, 17)
	// Reference: interpreter loop drawing rng in the documented order.
	rng := rand.New(rand.NewSource(99))
	e := NewEngine(c)
	ones := make([]uint64, len(c.Nodes))
	in := make([]uint64, 5)
	const words = 32
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		e.Run(in)
		for id := range ones {
			ones[id] += uint64(popcount(e.Val(id)))
		}
	}
	got := SignalProbabilities(c, words, 99)
	for id := range ones {
		want := float64(ones[id]) / float64(words*64)
		if got[id] != want {
			t.Fatalf("node %d: prob %v, want %v", id, got[id], want)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestFusedMatchesIdentityTape pins the fused compiler's core property:
// CompileOutputs (complement edges, fused opcodes, dead-gate drop,
// compacted slots) counts exactly what the unfused identity-slot tape
// counts, over random circuits spanning the single-block, small-batch
// (2 and 4 block) and multi-batch enumeration paths.
func TestFusedMatchesIdentityTape(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		nIn := 1 + int(seed%16) // 2^1 .. 2^16 patterns
		c := testutil.RandomCircuit(nIn, 5+int(seed*9%120), 1+int(seed%4), seed)
		want, err := Compile(c).CountOnes(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		fused := CompileOutputs(c)
		if fused.Len() > Compile(c).Len() {
			t.Errorf("seed %d: fused tape longer than identity tape (%d > %d)",
				seed, fused.Len(), Compile(c).Len())
		}
		got, err := fused.CountOnes(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("seed %d output %d: fused %d, identity %d", seed, j, got[j], want[j])
			}
		}
	}
}

// TestCountOnesCancelNoMetricLeak cancels an enumeration mid-flight and
// asserts the kernel's success metrics (patterns/blocks, and the
// enum-path aggregates feeding the flight recorder and bench reports)
// do not advance: a cancelled run must not leak a partial count into
// sim_blocks_per_sec or any recorded snapshot.
func TestCountOnesCancelNoMetricLeak(t *testing.T) {
	c := testutil.RandomCircuit(28, 600, 2, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	beforeKP, beforeKB := mKernelPatterns.Value(), mKernelBlocks.Value()
	beforeEP, beforeEB := mEnumPatterns.Value(), mEnumBlocks.Value()
	beforeKS, beforeES := hKernelSeconds.Count(), hEnumSeconds.Count()
	if _, err := CountOnesPerOutputWorkers(ctx, c, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if v := mKernelPatterns.Value(); v != beforeKP {
		t.Errorf("sim.kernel_patterns advanced by %d on a cancelled run", v-beforeKP)
	}
	if v := mKernelBlocks.Value(); v != beforeKB {
		t.Errorf("sim.kernel_blocks advanced by %d on a cancelled run", v-beforeKB)
	}
	if v := mEnumPatterns.Value(); v != beforeEP {
		t.Errorf("sim.enum_patterns advanced by %d on a cancelled run", v-beforeEP)
	}
	if v := mEnumBlocks.Value(); v != beforeEB {
		t.Errorf("sim.enum_blocks advanced by %d on a cancelled run", v-beforeEB)
	}
	if v := hKernelSeconds.Count(); v != beforeKS {
		t.Errorf("sim.kernel_seconds observed %d samples on a cancelled run", v-beforeKS)
	}
	if v := hEnumSeconds.Count(); v != beforeES {
		t.Errorf("sim.enum_batch_seconds observed %d samples on a cancelled run", v-beforeES)
	}
}

// TestParallelScalingSmoke measures parallel/serial throughput on the
// scaled bench miter and warns (soft gate, mirroring the bench -diff
// gate in scripts/check.sh) when 4 workers deliver under 2x serial.
// Machines without at least 4 CPUs cannot exhibit the speedup at all,
// so the smoke skips there; set VACSEM_SCALING_HARD=1 to turn the
// warning into a failure on dedicated hardware.
func TestParallelScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling smoke needs a multi-hundred-millisecond miter; skipped in -short")
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Skipf("scaling smoke needs >= 4 CPUs, have GOMAXPROCS=%d", n)
	}
	c := testutil.RandomCircuit(26, 300, 4, 123) // benchCircuitLarge
	p := CompileOutputs(c)
	measure := func(workers int) (float64, []uint64) {
		start := time.Now()
		counts, err := p.CountOnes(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start).Seconds(), counts
	}
	measure(4) // warm-up: page in the tape and scratch arrays
	serialSec, serialCounts := measure(1)
	parSec, parCounts := measure(4)
	for j := range serialCounts {
		if parCounts[j] != serialCounts[j] {
			t.Fatalf("output %d: parallel count %d != serial %d", j, parCounts[j], serialCounts[j])
		}
	}
	ratio := serialSec / parSec
	t.Logf("scaling smoke: serial %.3fs, 4 workers %.3fs, speedup %.2fx", serialSec, parSec, ratio)
	if ratio < 2 {
		msg := "SCALING WARNING: parallel CountOnes speedup " +
			"below 2x at 4 workers — kernel scaling regression?"
		if os.Getenv("VACSEM_SCALING_HARD") == "1" {
			t.Errorf("%s (%.2fx)", msg, ratio)
		} else {
			t.Logf("%s (%.2fx)", msg, ratio)
		}
	}
}
