package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
	"vacsem/internal/simword"
)

// BatchWords is the number of 64-pattern words a compiled program
// evaluates per instruction dispatch: 8 words = 512 patterns. Batching
// amortizes the per-instruction dispatch over eight machine words and
// keeps each slot's working set in one or two cache lines.
const BatchWords = 8

// Metrics of the compiled kernel. Updated once per CountOnes call (not
// per block), plus once per compilation, so the always-on cost is a few
// atomic adds per enumeration. The claim/scratch counters exist because
// the parallel-scaling post-mortem (DESIGN.md §3i) showed that without
// them, cursor contention and allocation churn are invisible: the
// kernel looked "parallel" while every worker fought over tiny chunks.
var (
	mKernelPatterns = obs.Default.Counter("sim.kernel_patterns")
	mKernelBlocks   = obs.Default.Counter("sim.kernel_blocks")
	hKernelSeconds  = obs.Default.Histogram("sim.kernel_seconds", nil)
	gKernelWorkers  = obs.Default.Gauge("sim.kernel_workers")
	mCompiles       = obs.Default.Counter("sim.kernel_compiles")
	hCompileSeconds = obs.Default.Histogram("sim.kernel_compile_seconds", nil)
	// mKernelClaims counts cursor claims across all parallel
	// enumerations: claims/enumeration ≈ workers × claimsPerWorker when
	// chunk sizing is healthy, and explodes when it is not.
	mKernelClaims = obs.Default.Counter("sim.kernel_claims")
	// gClaimBatches is the high-water claim size in batches.
	gClaimBatches = obs.Default.Gauge("sim.kernel_claim_batches")
	// mScratchAllocs counts cold value-array allocations (pool misses).
	mScratchAllocs = obs.Default.Counter("sim.kernel_scratch_allocs")
	// mFusedNodes counts circuit nodes the fused lowering eliminated
	// (Buf/Not folded into complement edges, gates outside every output
	// cone dropped).
	mFusedNodes = obs.Default.Counter("sim.kernel_fused_nodes")
)

// opcode is a dense gate operation of the instruction tape. Inverted
// forms get their own opcodes so no gate ever needs a second pass, and
// opAndN/opOrN absorb complemented operands during fused lowering
// (opAndN doubles as the counter's consistency-accumulator clear).
type opcode uint8

const (
	opBuf  opcode = iota // dst = a
	opNot                // dst = ^a
	opAnd                // dst = a & b
	opNand               // dst = ^(a & b)
	opOr                 // dst = a | b
	opNor                // dst = ^(a | b)
	opXor                // dst = a ^ b
	opXnor               // dst = ^(a ^ b)
	opAndN               // dst = a &^ b
	opOrN                // dst = a | ^b
	opMux                // dst = (a & c) | (^a & b); a selects
	opMaj                // dst = majority(a, b, c)
	opOnes               // dst = all-ones (accumulator reset)
)

// instr is one tape entry. Operand fields are word offsets into the
// value array — slot index pre-multiplied by BatchWords — so evaluation
// indexes the array directly with no per-instruction multiply.
type instr struct {
	op           opcode
	dst, a, b, c int32
}

// PinnedInput is a sub-circuit input held at a constant value for every
// enumerated pattern (the counter pins inputs whose CNF variables are
// already decided).
type PinnedInput struct {
	Node int32
	Val  bool
}

// Program is a circuit (or gate subset) lowered to a flat instruction
// tape, evaluated over batches of BatchWords words. A Program is
// immutable after compilation and safe for concurrent evaluation: all
// mutable state lives in per-call value arrays drawn from an internal
// pool.
type Program struct {
	ins     []instr
	nSlots  int     // value array length = nSlots * BatchWords
	inputs  []int32 // word offset of each enumerated input, in order
	outputs []int32 // word offset of each counted output
	pool    sync.Pool
}

// NumInputs returns the number of enumerated inputs.
func (p *Program) NumInputs() int { return len(p.inputs) }

// NumOutputs returns the number of counted outputs.
func (p *Program) NumOutputs() int { return len(p.outputs) }

// Len returns the number of tape instructions (one per live gate after
// fusion, plus check instructions for component programs).
func (p *Program) Len() int { return len(p.ins) }

func (p *Program) finish() {
	p.pool.New = func() any {
		// Slot 0 is the constant-zero slot: zeroed here and never the
		// destination of any instruction, so it stays zero across reuse.
		mScratchAllocs.Inc()
		v := make([]uint64, p.nSlots*BatchWords)
		return &v
	}
	mCompiles.Add(1)
}

func (p *Program) getVals() *[]uint64  { return p.pool.Get().(*[]uint64) }
func (p *Program) putVals(v *[]uint64) { p.pool.Put(v) }

// lit is a complement-edge value reference used during fused lowering:
// the word offset of the slot holding the plain value plus a negation
// flag, resolved into fused opcodes (or one materialized opNot) at the
// point of use.
type lit struct {
	off int32
	neg bool
}

// lowerer emits fused tape instructions, AIG-style: Buf and Not nodes
// become complement edges on their consumers instead of instructions,
// two-input gates with negated operands select fused opcodes (a &^ b,
// a | ^b, NAND, NOR, XNOR), and only the rare Mux/Maj operand that
// cannot fuse materializes an explicit opNot (once per negated slot).
type lowerer struct {
	ins     []instr
	nSlots  int
	notMemo map[int32]int32 // plain slot offset -> materialized ^ offset
	fused   uint64          // nodes folded away (Buf/Not/dead gates)
}

func newLowerer(reservedSlots int) *lowerer {
	return &lowerer{nSlots: reservedSlots, notMemo: make(map[int32]int32)}
}

func (lw *lowerer) newOff() int32 {
	off := int32(lw.nSlots) * BatchWords
	lw.nSlots++
	return off
}

func (lw *lowerer) emit(op opcode, dst, a, b, c int32) {
	lw.ins = append(lw.ins, instr{op: op, dst: dst, a: a, b: b, c: c})
}

// materialize returns a slot offset holding the literal's value as a
// plain word, emitting (and memoizing) an explicit complement when the
// literal is negated.
func (lw *lowerer) materialize(l lit) int32 {
	if !l.neg {
		return l.off
	}
	if off, ok := lw.notMemo[l.off]; ok {
		return off
	}
	dst := lw.newOff()
	lw.emit(opNot, dst, l.off, 0, 0)
	lw.notMemo[l.off] = dst
	return dst
}

// lowerGate emits the fused instruction of one gate over already-
// lowered fanin literals and returns the gate's literal.
func (lw *lowerer) lowerGate(kind circuit.Kind, fi [3]lit) (lit, error) {
	switch kind {
	case circuit.Buf:
		lw.fused++
		return fi[0], nil
	case circuit.Not:
		lw.fused++
		return lit{off: fi[0].off, neg: !fi[0].neg}, nil
	case circuit.Xor, circuit.Xnor:
		// Operand complements fold into the output parity.
		neg := kind == circuit.Xnor
		if fi[0].neg {
			neg = !neg
		}
		if fi[1].neg {
			neg = !neg
		}
		op := opXor
		if neg {
			op = opXnor
		}
		dst := lw.newOff()
		lw.emit(op, dst, fi[0].off, fi[1].off, 0)
		return lit{off: dst}, nil
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		a, b := fi[0], fi[1]
		neg := kind == circuit.Nand || kind == circuit.Nor // output complement
		isAnd := kind == circuit.And || kind == circuit.Nand
		x, y := a.off, b.off
		var op opcode
		switch {
		case !a.neg && !b.neg:
			if isAnd {
				op = opAnd
			} else {
				op = opOr
			}
			if neg {
				op++ // opAnd->opNand, opOr->opNor (adjacent opcodes)
			}
		case a.neg && b.neg:
			// De Morgan: ^a & ^b = ^(a | b), ^a | ^b = ^(a & b).
			if isAnd {
				op = opNor
				if neg {
					op = opOr
				}
			} else {
				op = opNand
				if neg {
					op = opAnd
				}
			}
		default:
			// Exactly one operand complemented: plain operand first.
			if a.neg {
				x, y = b.off, a.off
			}
			if isAnd {
				op = opAndN // p & ^n
				if neg {
					op, x, y = opOrN, y, x // ^(p & ^n) = n | ^p
				}
			} else {
				op = opOrN // p | ^n
				if neg {
					op, x, y = opAndN, y, x // ^(p | ^n) = n &^ p
				}
			}
		}
		dst := lw.newOff()
		lw.emit(op, dst, x, y, 0)
		return lit{off: dst}, nil
	case circuit.Mux:
		s, e, t := fi[0], fi[1], fi[2] // s ? t : e
		if s.neg {
			s.neg = false
			e, t = t, e
		}
		dst := lw.newOff()
		if e.neg && t.neg {
			// Mux(s, ^e, ^t) = ^Mux(s, e, t): fold into the output edge.
			lw.emit(opMux, dst, s.off, e.off, t.off)
			return lit{off: dst, neg: true}, nil
		}
		lw.emit(opMux, dst, s.off, lw.materialize(e), lw.materialize(t))
		return lit{off: dst}, nil
	case circuit.Maj:
		dst := lw.newOff()
		if fi[0].neg && fi[1].neg && fi[2].neg {
			// Maj(^a, ^b, ^c) = ^Maj(a, b, c).
			lw.emit(opMaj, dst, fi[0].off, fi[1].off, fi[2].off)
			return lit{off: dst, neg: true}, nil
		}
		lw.emit(opMaj, dst, lw.materialize(fi[0]), lw.materialize(fi[1]), lw.materialize(fi[2]))
		return lit{off: dst}, nil
	default:
		return lit{}, fmt.Errorf("sim: cannot compile %v gate", kind)
	}
}

// gateInstr lowers one gate node to an unfused tape entry. off maps
// node id to the node's word offset. Used by Compile, which must keep
// every node's value addressable (slot == node id) and therefore cannot
// fold Buf/Not away.
func gateInstr(nd *circuit.Node, dst int32, off func(int) int32) (instr, error) {
	in := instr{dst: dst}
	switch len(nd.Fanins) {
	case 1:
		in.a = off(nd.Fanins[0])
	case 2:
		in.a, in.b = off(nd.Fanins[0]), off(nd.Fanins[1])
	case 3:
		in.a, in.b, in.c = off(nd.Fanins[0]), off(nd.Fanins[1]), off(nd.Fanins[2])
	}
	switch nd.Kind {
	case circuit.Buf:
		in.op = opBuf
	case circuit.Not:
		in.op = opNot
	case circuit.And:
		in.op = opAnd
	case circuit.Nand:
		in.op = opNand
	case circuit.Or:
		in.op = opOr
	case circuit.Nor:
		in.op = opNor
	case circuit.Xor:
		in.op = opXor
	case circuit.Xnor:
		in.op = opXnor
	case circuit.Mux:
		in.op = opMux
	case circuit.Maj:
		in.op = opMaj
	default:
		return instr{}, fmt.Errorf("sim: cannot compile %v gate", nd.Kind)
	}
	return in, nil
}

// Compile lowers a full circuit to a Program. Slot assignment is the
// identity (slot == node id), so callers can read any node's words back
// from the value array; the primary outputs become the program outputs
// and the primary inputs, in circuit order, the enumerated inputs. No
// fusion happens here — use CompileOutputs when only the outputs matter.
func Compile(c *circuit.Circuit) *Program {
	start := time.Now()
	p := &Program{nSlots: len(c.Nodes)}
	off := func(id int) int32 { return int32(id) * BatchWords }
	p.ins = make([]instr, 0, c.NumGates())
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || nd.Kind == circuit.Const0 {
			continue
		}
		in, err := gateInstr(nd, off(id), off)
		if err != nil {
			panic(err) // unreachable: Kind set covered above
		}
		p.ins = append(p.ins, in)
	}
	p.inputs = make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		p.inputs[i] = off(id)
	}
	p.outputs = make([]int32, len(c.Outputs))
	for j, id := range c.Outputs {
		p.outputs[j] = off(id)
	}
	p.finish()
	hCompileSeconds.Observe(time.Since(start).Seconds())
	return p
}

// CompileOutputs lowers the output cones of a circuit to a fused
// Program: Buf/Not nodes fold into complement edges, complemented
// operands select fused opcodes, gates outside every output cone are
// dropped, and slots are compacted to the live nodes — so the tape is
// shorter and the value array smaller than Compile's. Only the outputs
// are addressable afterwards; use Compile when per-node signatures must
// be readable back. Counts are bit-identical to Compile's (same logic
// functions, same enumeration order).
func CompileOutputs(c *circuit.Circuit) *Program {
	start := time.Now()
	lw := newLowerer(1) // slot 0: constant zero
	mark := c.ConeMark(c.Outputs...)
	lits := make([]lit, len(c.Nodes)) // zero value = constant-zero literal
	p := &Program{}
	p.inputs = make([]int32, len(c.Inputs))
	// Inputs keep their circuit order; inputs outside every output cone
	// share one write-only slot (they must stay enumerated — the pattern
	// space is 2^NumInputs — but their words are never read).
	dummy := int32(-1)
	for i, id := range c.Inputs {
		if mark[id] {
			off := lw.newOff()
			lits[id] = lit{off: off}
			p.inputs[i] = off
		} else {
			if dummy < 0 {
				dummy = lw.newOff()
			}
			p.inputs[i] = dummy
		}
	}
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || nd.Kind == circuit.Const0 {
			continue
		}
		if !mark[id] {
			lw.fused++ // dead gate
			continue
		}
		var fi [3]lit
		for k, f := range nd.Fanins {
			fi[k] = lits[f]
		}
		l, err := lw.lowerGate(nd.Kind, fi)
		if err != nil {
			panic(err) // unreachable: Validate rejects unknown kinds
		}
		lits[id] = l
	}
	p.outputs = make([]int32, len(c.Outputs))
	for j, id := range c.Outputs {
		p.outputs[j] = lw.materialize(lits[id])
	}
	p.ins = lw.ins
	p.nSlots = lw.nSlots
	mFusedNodes.Add(lw.fused)
	p.finish()
	hCompileSeconds.Observe(time.Since(start).Seconds())
	return p
}

// CompileComponent lowers a gate subset to a fused Program whose single
// output counts consistent patterns: gates must be in topological
// (ascending id) order, freeInputs are enumerated in the given order,
// pinned inputs hold constant values, and check(g) returns +1 when gate
// g's value is required to be 1, -1 when required to be 0, and 0 for an
// unconstrained gate. The accumulator starts all-ones per batch and is
// ANDed with each checking gate's literal (complement edges select
// opAnd vs opAndN), so the one-count of the output is exactly the
// number of consistent patterns.
//
// Slots are compacted to the live nodes only (Buf/Not gates fold into
// complement edges), so the value array is sized by the component, not
// the host circuit.
func CompileComponent(c *circuit.Circuit, gates []int32, freeInputs []int32, pinned []PinnedInput, check func(int32) int8) (*Program, error) {
	start := time.Now()
	lw := newLowerer(2) // slot 0: constant zero; slot 1: accumulator
	accOff := int32(1) * BatchWords
	lits := make(map[int32]lit, len(gates)+len(freeInputs)+len(pinned))
	p := &Program{}
	p.inputs = make([]int32, len(freeInputs))
	for i, n := range freeInputs {
		off := lw.newOff()
		lits[n] = lit{off: off}
		p.inputs[i] = off
	}
	for _, pi := range pinned {
		// Slot 0 is constant zero, so a pinned-1 input is its complement
		// edge — no constant-ones slot needed.
		lits[pi.Node] = lit{off: 0, neg: pi.Val}
	}
	lw.emit(opOnes, accOff, 0, 0, 0)
	for _, g := range gates {
		nd := &c.Nodes[g]
		var fi [3]lit
		for k, fn := range nd.Fanins {
			l, ok := lits[int32(fn)]
			if !ok {
				if c.Nodes[fn].Kind != circuit.Const0 {
					// A fanin that is neither a mapped gate, a free input,
					// nor a pinned input: the component recovery missed it.
					return nil, fmt.Errorf("sim: component gate %d has unmapped fanin %d", g, fn)
				}
				lits[int32(fn)] = lit{}
			}
			fi[k] = l
		}
		l, err := lw.lowerGate(nd.Kind, fi)
		if err != nil {
			return nil, err
		}
		lits[g] = l
		switch want := check(g); {
		case want == 0:
		case (want == 1) != l.neg: // keep patterns where the literal word is 1
			lw.emit(opAnd, accOff, accOff, l.off, 0)
		default: // keep patterns where the literal word is 0
			lw.emit(opAndN, accOff, accOff, l.off, 0)
		}
	}
	p.outputs = []int32{accOff}
	p.ins = lw.ins
	p.nSlots = lw.nSlots
	mFusedNodes.Add(lw.fused)
	p.finish()
	hCompileSeconds.Observe(time.Since(start).Seconds())
	return p, nil
}

// evalBatch runs the tape over all BatchWords words of the value array.
// The fixed-size array-pointer conversions eliminate bounds checks in
// the inner loops.
func (p *Program) evalBatch(v []uint64) {
	for i := range p.ins {
		ins := &p.ins[i]
		d := (*[BatchWords]uint64)(v[ins.dst:])
		a := (*[BatchWords]uint64)(v[ins.a:])
		switch ins.op {
		case opBuf:
			*d = *a
		case opNot:
			for w := 0; w < BatchWords; w++ {
				d[w] = ^a[w]
			}
		case opAnd:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] & b[w]
			}
		case opNand:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] & b[w])
			}
		case opOr:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] | b[w]
			}
		case opNor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] | b[w])
			}
		case opXor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] ^ b[w]
			}
		case opXnor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] ^ b[w])
			}
		case opAndN:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] &^ b[w]
			}
		case opOrN:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] | ^b[w]
			}
		case opMux:
			b := (*[BatchWords]uint64)(v[ins.b:])
			cc := (*[BatchWords]uint64)(v[ins.c:])
			for w := 0; w < BatchWords; w++ {
				d[w] = (a[w] & cc[w]) | (^a[w] & b[w])
			}
		case opMaj:
			b := (*[BatchWords]uint64)(v[ins.b:])
			cc := (*[BatchWords]uint64)(v[ins.c:])
			for w := 0; w < BatchWords; w++ {
				d[w] = (a[w] & b[w]) | (a[w] & cc[w]) | (b[w] & cc[w])
			}
		case opOnes:
			for w := 0; w < BatchWords; w++ {
				d[w] = ^uint64(0)
			}
		}
	}
}

// eval1 runs the tape over a single word index w of the value array;
// used when only one block exists.
func (p *Program) eval1(v []uint64, w int32) {
	for i := range p.ins {
		ins := &p.ins[i]
		switch ins.op {
		case opBuf:
			v[ins.dst+w] = v[ins.a+w]
		case opNot:
			v[ins.dst+w] = ^v[ins.a+w]
		case opAnd:
			v[ins.dst+w] = v[ins.a+w] & v[ins.b+w]
		case opNand:
			v[ins.dst+w] = ^(v[ins.a+w] & v[ins.b+w])
		case opOr:
			v[ins.dst+w] = v[ins.a+w] | v[ins.b+w]
		case opNor:
			v[ins.dst+w] = ^(v[ins.a+w] | v[ins.b+w])
		case opXor:
			v[ins.dst+w] = v[ins.a+w] ^ v[ins.b+w]
		case opXnor:
			v[ins.dst+w] = ^(v[ins.a+w] ^ v[ins.b+w])
		case opAndN:
			v[ins.dst+w] = v[ins.a+w] &^ v[ins.b+w]
		case opOrN:
			v[ins.dst+w] = v[ins.a+w] | ^v[ins.b+w]
		case opMux:
			s := v[ins.a+w]
			v[ins.dst+w] = (s & v[ins.c+w]) | (^s & v[ins.b+w])
		case opMaj:
			a, b, c := v[ins.a+w], v[ins.b+w], v[ins.c+w]
			v[ins.dst+w] = (a & b) | (a & c) | (b & c)
		case opOnes:
			v[ins.dst+w] = ^uint64(0)
		}
	}
}

// fillEnumBase writes the enum-constant enumeration inputs (0-5, the
// canonical base patterns) once per value array per enumeration, so the
// per-batch fill only touches inputs that actually change. The
// constancy classes come from simword.Classify so the fill strategy
// stays pinned to the shared pattern-word definitions.
func (p *Program) fillEnumBase(v []uint64) {
	for i, o := range p.inputs {
		if simword.Classify(i, BatchWords) != simword.EnumConstant {
			break
		}
		dst := (*[BatchWords]uint64)(v[o:])
		w := simword.BasePatterns[i]
		for j := range dst {
			dst[j] = w
		}
	}
}

// fillEnumBatch writes the varying enumeration input words for the
// BatchWords consecutive blocks starting at block b0 (b0 is
// BatchWords-aligned). Enum-constant inputs were written once by
// fillEnumBase; batch-constant inputs get one word replicated across
// the batch; only per-word inputs are filled word by word.
func (p *Program) fillEnumBatch(v []uint64, b0 uint64) {
	for i, o := range p.inputs {
		switch simword.Classify(i, BatchWords) {
		case simword.EnumConstant:
			continue
		case simword.BatchConstant:
			dst := (*[BatchWords]uint64)(v[o:])
			w := simword.InputWord(i, b0)
			for j := range dst {
				dst[j] = w
			}
		default:
			dst := (*[BatchWords]uint64)(v[o:])
			for j := range dst {
				dst[j] = simword.InputWord(i, b0+uint64(j))
			}
		}
	}
}

// chunkBatches sizes the parallel kernel's two work granularities for
// an enumeration of numBatches batches over a tape of tapeLen
// instructions:
//
//   - claim is the unit of work a worker takes from the shared cursor
//     in one atomic add, scaled to the total work (~claimsPerWorker
//     claims per worker) so short tapes over large pattern ranges don't
//     degenerate into cursor-contention storms. The old fixed 128-batch
//     cap made a 1-instruction tape over 2^22 batches perform 32768
//     contended claims; work-scaled sizing keeps it at ~claimsPerWorker
//     × workers regardless of tape length.
//   - poll is the cancellation-poll interval in batches, tracking a
//     constant number of gate evaluations so heavy miters poll every
//     few batches while trivial tapes don't pay per-batch ctx checks.
//
// Claim and poll are deliberately decoupled: claims grew with total
// work, but cancellation latency must not.
func chunkBatches(tapeLen int, numBatches uint64, workers int) (claim, poll uint64) {
	const targetGateEvals = 1 << 18
	const claimsPerWorker = 16
	if tapeLen < 1 {
		tapeLen = 1
	}
	if workers < 1 {
		workers = 1
	}
	poll = targetGateEvals / uint64(tapeLen*BatchWords)
	if poll == 0 {
		poll = 1
	}
	claim = numBatches / (uint64(workers) * claimsPerWorker)
	if claim == 0 {
		claim = 1
	}
	return claim, poll
}

// CountOnes exhaustively enumerates all 2^NumInputs patterns and
// returns, per output, the number of patterns under which that output
// is 1. workers bounds the block-range parallelism: <= 0 means
// GOMAXPROCS. Per-output counts are merged by uint64 addition, so the
// result is bit-identical at any worker count. Cancellation is
// cooperative, polled every ~2^18 gate evaluations.
func (p *Program) CountOnes(ctx context.Context, workers int) ([]uint64, error) {
	n := len(p.inputs)
	if n > 62 {
		panic("sim: exhaustive enumeration beyond 62 inputs")
	}
	start := time.Now()
	total := uint64(1) << uint(n)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	counts, err := p.countBlocks(ctx, workers, blocks, total)
	if err != nil {
		return nil, err
	}
	mKernelPatterns.Add(total)
	mKernelBlocks.Add(blocks)
	hKernelSeconds.Observe(time.Since(start).Seconds())
	return counts, nil
}

// accStride returns the per-worker row stride, in uint64 words, of the
// shared accumulator matrix: the output count rounded up to whole
// 64-byte cache lines plus one guard line, so two workers' rows can
// never share a line regardless of the allocation's alignment.
func accStride(outputs int) int {
	return (outputs+7)&^7 + 8
}

func (p *Program) countBlocks(ctx context.Context, workers int, blocks, total uint64) ([]uint64, error) {
	counts := make([]uint64, len(p.outputs))
	// Small case: under one batch of blocks. The only place a
	// partial-block mask can be needed (total < 64 means blocks == 1).
	if blocks < BatchWords {
		vp := p.getVals()
		defer p.putVals(vp)
		v := *vp
		if blocks == 1 {
			for i, o := range p.inputs {
				v[o] = simword.InputWord(i, 0)
			}
			p.eval1(v, 0)
			mask := simword.BlockMask(0, total)
			for j, o := range p.outputs {
				counts[j] = uint64(bits.OnesCount64(v[o] & mask))
			}
		} else {
			// 2 or 4 full blocks: evaluate them all in one batch pass, one
			// block per word, instead of per-block eval1 sweeps — the tape
			// is dispatched once instead of `blocks` times.
			for i, o := range p.inputs {
				dst := (*[BatchWords]uint64)(v[o:])
				for b := range dst {
					blk := uint64(b)
					if blk >= blocks {
						blk = blocks - 1 // dead words beyond the last block
					}
					dst[b] = simword.InputWord(i, blk)
				}
			}
			p.evalBatch(v)
			for j, o := range p.outputs {
				out := (*[BatchWords]uint64)(v[o:])
				ones := 0
				for b := uint64(0); b < blocks; b++ {
					ones += bits.OnesCount64(out[b])
				}
				counts[j] = uint64(ones)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return counts, nil
	}

	// blocks is a power of two >= BatchWords here, so it divides into
	// whole batches and every block is full (total is a multiple of 64).
	numBatches := blocks / BatchWords
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	claim, poll := chunkBatches(len(p.ins), numBatches, workers)
	if max := (numBatches + claim - 1) / claim; max > 0 && uint64(workers) > max {
		workers = int(max)
	}
	if workers < 1 {
		workers = 1
	}
	gKernelWorkers.SetMax(int64(workers))
	gClaimBatches.SetMax(int64(claim))

	// Per-worker accumulator rows live in one shared matrix, each row
	// padded to whole cache lines (accStride), so workers never write
	// the same line (no false sharing) and the merge is a single pass by
	// the coordinator after the barrier — no mutex on the hot path.
	stride := accStride(len(p.outputs))
	acc := make([]uint64, workers*stride)

	var cursor atomic.Uint64
	var mu sync.Mutex
	var firstErr error
	pollCtx := ctx.Done() != nil
	run := func(w int) {
		vp := p.getVals()
		defer p.putVals(vp)
		v := *vp
		p.fillEnumBase(v)
		local := acc[w*stride : w*stride+len(p.outputs)]
		claims := uint64(0)
		sincePoll := uint64(0)
		for {
			end := cursor.Add(claim)
			batch := end - claim
			if batch >= numBatches {
				break
			}
			claims++
			if end > numBatches {
				end = numBatches
			}
			// One mandatory poll per claim (claims are few and large)
			// guarantees a pre-cancelled ctx never completes a claim, plus
			// a countdown poll inside big claims for bounded latency.
			if pollCtx {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					mKernelClaims.Add(claims)
					return
				}
			}
			for ; batch < end; batch++ {
				if pollCtx {
					if sincePoll++; sincePoll >= poll {
						sincePoll = 0
						if err := ctx.Err(); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							mKernelClaims.Add(claims)
							return
						}
					}
				}
				p.fillEnumBatch(v, batch*BatchWords)
				p.evalBatch(v)
				for j, o := range p.outputs {
					out := (*[BatchWords]uint64)(v[o:])
					ones := 0
					for w := 0; w < BatchWords; w++ {
						ones += bits.OnesCount64(out[w])
					}
					local[j] += uint64(ones)
				}
			}
		}
		mKernelClaims.Add(claims)
	}

	if workers == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func(w int) {
				defer wg.Done()
				run(w)
			}(i)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for w := 0; w < workers; w++ {
		row := acc[w*stride:]
		for j := range counts {
			counts[j] += row[j]
		}
	}
	return counts, nil
}

// runVectors streams precomputed input vectors (vectors[i][w] is input
// i's word w) through the tape in BatchWords-wide batches, invoking
// gather(v, w0, n) after each batch with the value array, the base word
// index, and the number of valid words n (n < BatchWords only on the
// final partial batch). One ctx poll happens per poll interval of
// batches.
func (p *Program) runVectors(ctx context.Context, vectors [][]uint64, words int, gather func(v []uint64, w0, n int)) error {
	if len(vectors) != len(p.inputs) {
		panic(fmt.Sprintf("sim: runVectors got %d input rows, want %d", len(vectors), len(p.inputs)))
	}
	vp := p.getVals()
	defer p.putVals(vp)
	v := *vp
	_, poll := chunkBatches(len(p.ins), 0, 1)
	pollCtx := ctx.Done() != nil
	for w0, batch := 0, uint64(0); w0 < words; w0, batch = w0+BatchWords, batch+1 {
		if pollCtx && batch%poll == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n := words - w0
		if n > BatchWords {
			n = BatchWords
		}
		for i, o := range p.inputs {
			row := vectors[i][w0 : w0+n]
			copy(v[o:o+int32(n)], row)
		}
		if n == BatchWords {
			p.evalBatch(v)
		} else {
			for w := 0; w < n; w++ {
				p.eval1(v, int32(w))
			}
		}
		gather(v, w0, n)
	}
	return nil
}
