package sim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
	"vacsem/internal/simword"
)

// BatchWords is the number of 64-pattern words a compiled program
// evaluates per instruction dispatch: 8 words = 512 patterns. Batching
// amortizes the per-instruction dispatch over eight machine words and
// keeps each slot's working set in one or two cache lines.
const BatchWords = 8

// Metrics of the compiled kernel. Updated once per CountOnes call (not
// per block), plus once per compilation, so the always-on cost is a few
// atomic adds per enumeration.
var (
	mKernelPatterns = obs.Default.Counter("sim.kernel_patterns")
	mKernelBlocks   = obs.Default.Counter("sim.kernel_blocks")
	hKernelSeconds  = obs.Default.Histogram("sim.kernel_seconds", nil)
	gKernelWorkers  = obs.Default.Gauge("sim.kernel_workers")
	mCompiles       = obs.Default.Counter("sim.kernel_compiles")
	hCompileSeconds = obs.Default.Histogram("sim.kernel_compile_seconds", nil)
)

// opcode is a dense gate operation of the instruction tape. Inverted
// forms get their own opcodes so no gate ever needs a second pass, and
// opAndN/opOnes exist for the counter's consistency accumulator.
type opcode uint8

const (
	opBuf  opcode = iota // dst = a
	opNot                // dst = ^a
	opAnd                // dst = a & b
	opNand               // dst = ^(a & b)
	opOr                 // dst = a | b
	opNor                // dst = ^(a | b)
	opXor                // dst = a ^ b
	opXnor               // dst = ^(a ^ b)
	opAndN               // dst = a &^ b
	opMux                // dst = (a & c) | (^a & b); a selects
	opMaj                // dst = majority(a, b, c)
	opOnes               // dst = all-ones (accumulator reset)
)

// instr is one tape entry. Operand fields are word offsets into the
// value array — slot index pre-multiplied by BatchWords — so evaluation
// indexes the array directly with no per-instruction multiply.
type instr struct {
	op           opcode
	dst, a, b, c int32
}

// PinnedInput is a sub-circuit input held at a constant value for every
// enumerated pattern (the counter pins inputs whose CNF variables are
// already decided).
type PinnedInput struct {
	Node int32
	Val  bool
}

// constInit records a slot that holds a constant word; applied once per
// value-array allocation (slot 0 is implicitly constant zero and never
// written by any instruction).
type constInit struct {
	off int32
	val uint64
}

// Program is a circuit (or gate subset) lowered to a flat instruction
// tape, evaluated over batches of BatchWords words. A Program is
// immutable after compilation and safe for concurrent evaluation: all
// mutable state lives in per-call value arrays drawn from an internal
// pool.
type Program struct {
	ins     []instr
	nSlots  int     // value array length = nSlots * BatchWords
	inputs  []int32 // word offset of each enumerated input, in order
	outputs []int32 // word offset of each counted output
	consts  []constInit
	pool    sync.Pool
}

// NumInputs returns the number of enumerated inputs.
func (p *Program) NumInputs() int { return len(p.inputs) }

// NumOutputs returns the number of counted outputs.
func (p *Program) NumOutputs() int { return len(p.outputs) }

// Len returns the number of tape instructions (one per compiled gate,
// plus check instructions for component programs).
func (p *Program) Len() int { return len(p.ins) }

func (p *Program) finish() {
	p.pool.New = func() any {
		v := make([]uint64, p.nSlots*BatchWords)
		for _, c := range p.consts {
			dst := v[c.off : c.off+BatchWords]
			for i := range dst {
				dst[i] = c.val
			}
		}
		return &v
	}
	mCompiles.Add(1)
}

func (p *Program) getVals() *[]uint64  { return p.pool.Get().(*[]uint64) }
func (p *Program) putVals(v *[]uint64) { p.pool.Put(v) }

// gateInstr lowers one gate node to a tape entry. off maps node id to
// the node's word offset, or -1 when the node has no slot.
func gateInstr(nd *circuit.Node, dst int32, off func(int) int32) (instr, error) {
	in := instr{dst: dst}
	switch len(nd.Fanins) {
	case 1:
		in.a = off(nd.Fanins[0])
	case 2:
		in.a, in.b = off(nd.Fanins[0]), off(nd.Fanins[1])
	case 3:
		in.a, in.b, in.c = off(nd.Fanins[0]), off(nd.Fanins[1]), off(nd.Fanins[2])
	}
	switch nd.Kind {
	case circuit.Buf:
		in.op = opBuf
	case circuit.Not:
		in.op = opNot
	case circuit.And:
		in.op = opAnd
	case circuit.Nand:
		in.op = opNand
	case circuit.Or:
		in.op = opOr
	case circuit.Nor:
		in.op = opNor
	case circuit.Xor:
		in.op = opXor
	case circuit.Xnor:
		in.op = opXnor
	case circuit.Mux:
		in.op = opMux
	case circuit.Maj:
		in.op = opMaj
	default:
		return instr{}, fmt.Errorf("sim: cannot compile %v gate", nd.Kind)
	}
	return in, nil
}

// Compile lowers a full circuit to a Program. Slot assignment is the
// identity (slot == node id), so callers can read any node's words back
// from the value array; the primary outputs become the program outputs
// and the primary inputs, in circuit order, the enumerated inputs.
func Compile(c *circuit.Circuit) *Program {
	start := time.Now()
	p := &Program{nSlots: len(c.Nodes)}
	off := func(id int) int32 { return int32(id) * BatchWords }
	p.ins = make([]instr, 0, c.NumGates())
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || nd.Kind == circuit.Const0 {
			continue
		}
		in, err := gateInstr(nd, off(id), off)
		if err != nil {
			panic(err) // unreachable: Kind set covered above
		}
		p.ins = append(p.ins, in)
	}
	p.inputs = make([]int32, len(c.Inputs))
	for i, id := range c.Inputs {
		p.inputs[i] = off(id)
	}
	p.outputs = make([]int32, len(c.Outputs))
	for j, id := range c.Outputs {
		p.outputs[j] = off(id)
	}
	p.finish()
	hCompileSeconds.Observe(time.Since(start).Seconds())
	return p
}

// CompileComponent lowers a gate subset to a Program whose single
// output counts consistent patterns: gates must be in topological
// (ascending id) order, freeInputs are enumerated in the given order,
// pinned inputs hold constant words, and check(g) returns +1 when gate
// g's value is required to be 1, -1 when required to be 0, and 0 for an
// unconstrained gate. The accumulator starts all-ones per batch and is
// ANDed with each checking gate's (possibly negated) word, so the one-
// count of the output is exactly the number of consistent patterns.
//
// Slots are compacted to the referenced nodes only, so the value array
// is sized by the component, not the host circuit.
func CompileComponent(c *circuit.Circuit, gates []int32, freeInputs []int32, pinned []PinnedInput, check func(int32) int8) (*Program, error) {
	start := time.Now()
	p := &Program{}
	// Slot 0 is constant zero; slot 1 the accumulator.
	const accSlot = 1
	nSlots := 2
	slots := make(map[int32]int32, len(gates)+len(freeInputs)+len(pinned))
	alloc := func(n int32) int32 {
		s, ok := slots[n]
		if !ok {
			s = int32(nSlots)
			nSlots++
			slots[n] = s
		}
		return s
	}
	p.inputs = make([]int32, len(freeInputs))
	for i, n := range freeInputs {
		p.inputs[i] = alloc(n) * BatchWords
	}
	var onesSlot int32 = -1
	for _, pi := range pinned {
		if !pi.Val {
			slots[pi.Node] = 0 // constant-zero slot
			continue
		}
		if onesSlot < 0 {
			onesSlot = int32(nSlots)
			nSlots++
			p.consts = append(p.consts, constInit{off: onesSlot * BatchWords, val: ^uint64(0)})
		}
		slots[pi.Node] = onesSlot
	}
	accOff := int32(accSlot) * BatchWords
	p.ins = make([]instr, 0, len(gates)+4)
	p.ins = append(p.ins, instr{op: opOnes, dst: accOff})
	off := func(id int) int32 {
		s, ok := slots[int32(id)]
		if !ok {
			// A fanin that is neither a mapped gate, a free input, nor a
			// pinned input: the component recovery missed it.
			return -1
		}
		return s * BatchWords
	}
	for _, g := range gates {
		nd := &c.Nodes[g]
		for _, fn := range nd.Fanins {
			if _, ok := slots[int32(fn)]; !ok && c.Nodes[fn].Kind != circuit.Const0 {
				return nil, fmt.Errorf("sim: component gate %d has unmapped fanin %d", g, fn)
			}
			if c.Nodes[fn].Kind == circuit.Const0 {
				slots[int32(fn)] = 0
			}
		}
		dst := alloc(g) * BatchWords
		in, err := gateInstr(nd, dst, off)
		if err != nil {
			return nil, err
		}
		p.ins = append(p.ins, in)
		switch check(g) {
		case 1: // gate decided TRUE: keep patterns where it is 1
			p.ins = append(p.ins, instr{op: opAnd, dst: accOff, a: accOff, b: dst})
		case -1: // decided FALSE: keep patterns where it is 0
			p.ins = append(p.ins, instr{op: opAndN, dst: accOff, a: accOff, b: dst})
		}
	}
	p.outputs = []int32{accOff}
	p.nSlots = nSlots
	p.finish()
	hCompileSeconds.Observe(time.Since(start).Seconds())
	return p, nil
}

// evalBatch runs the tape over all BatchWords words of the value array.
// The fixed-size array-pointer conversions eliminate bounds checks in
// the inner loops.
func (p *Program) evalBatch(v []uint64) {
	for i := range p.ins {
		ins := &p.ins[i]
		d := (*[BatchWords]uint64)(v[ins.dst:])
		a := (*[BatchWords]uint64)(v[ins.a:])
		switch ins.op {
		case opBuf:
			*d = *a
		case opNot:
			for w := 0; w < BatchWords; w++ {
				d[w] = ^a[w]
			}
		case opAnd:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] & b[w]
			}
		case opNand:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] & b[w])
			}
		case opOr:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] | b[w]
			}
		case opNor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] | b[w])
			}
		case opXor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] ^ b[w]
			}
		case opXnor:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = ^(a[w] ^ b[w])
			}
		case opAndN:
			b := (*[BatchWords]uint64)(v[ins.b:])
			for w := 0; w < BatchWords; w++ {
				d[w] = a[w] &^ b[w]
			}
		case opMux:
			b := (*[BatchWords]uint64)(v[ins.b:])
			cc := (*[BatchWords]uint64)(v[ins.c:])
			for w := 0; w < BatchWords; w++ {
				d[w] = (a[w] & cc[w]) | (^a[w] & b[w])
			}
		case opMaj:
			b := (*[BatchWords]uint64)(v[ins.b:])
			cc := (*[BatchWords]uint64)(v[ins.c:])
			for w := 0; w < BatchWords; w++ {
				d[w] = (a[w] & b[w]) | (a[w] & cc[w]) | (b[w] & cc[w])
			}
		case opOnes:
			for w := 0; w < BatchWords; w++ {
				d[w] = ^uint64(0)
			}
		}
	}
}

// eval1 runs the tape over a single word index w of the value array;
// used when fewer than BatchWords blocks exist.
func (p *Program) eval1(v []uint64, w int32) {
	for i := range p.ins {
		ins := &p.ins[i]
		switch ins.op {
		case opBuf:
			v[ins.dst+w] = v[ins.a+w]
		case opNot:
			v[ins.dst+w] = ^v[ins.a+w]
		case opAnd:
			v[ins.dst+w] = v[ins.a+w] & v[ins.b+w]
		case opNand:
			v[ins.dst+w] = ^(v[ins.a+w] & v[ins.b+w])
		case opOr:
			v[ins.dst+w] = v[ins.a+w] | v[ins.b+w]
		case opNor:
			v[ins.dst+w] = ^(v[ins.a+w] | v[ins.b+w])
		case opXor:
			v[ins.dst+w] = v[ins.a+w] ^ v[ins.b+w]
		case opXnor:
			v[ins.dst+w] = ^(v[ins.a+w] ^ v[ins.b+w])
		case opAndN:
			v[ins.dst+w] = v[ins.a+w] &^ v[ins.b+w]
		case opMux:
			s := v[ins.a+w]
			v[ins.dst+w] = (s & v[ins.c+w]) | (^s & v[ins.b+w])
		case opMaj:
			a, b, c := v[ins.a+w], v[ins.b+w], v[ins.c+w]
			v[ins.dst+w] = (a & b) | (a & c) | (b & c)
		case opOnes:
			v[ins.dst+w] = ^uint64(0)
		}
	}
}

// fillEnumBatch writes the enumeration input words for the BatchWords
// consecutive blocks starting at block b0 (b0 is BatchWords-aligned).
// Inputs 0-5 are constant per block; inputs >= 9 are constant across an
// aligned batch of 8 blocks; only inputs 6-8 vary word by word.
func (p *Program) fillEnumBatch(v []uint64, b0 uint64) {
	for i, o := range p.inputs {
		dst := (*[BatchWords]uint64)(v[o:])
		switch {
		case i < 6:
			w := simword.BasePatterns[i]
			for j := range dst {
				dst[j] = w
			}
		case i >= 9:
			w := simword.InputWord(i, b0)
			for j := range dst {
				dst[j] = w
			}
		default:
			for j := range dst {
				dst[j] = simword.InputWord(i, b0+uint64(j))
			}
		}
	}
}

// chunkBatches sizes the unit of work a worker claims at a time (and
// the cancellation-poll interval) by tape length: roughly a constant
// number of gate evaluations per chunk, so heavy miters poll every few
// batches while trivial circuits don't pay per-batch synchronization.
func chunkBatches(tapeLen int) uint64 {
	const targetGateEvals = 1 << 18
	if tapeLen < 1 {
		tapeLen = 1
	}
	chunk := uint64(targetGateEvals / (tapeLen * BatchWords))
	if chunk == 0 {
		return 1
	}
	if chunk > 128 {
		return 128
	}
	return chunk
}

// CountOnes exhaustively enumerates all 2^NumInputs patterns and
// returns, per output, the number of patterns under which that output
// is 1. workers bounds the block-range parallelism: <= 0 means
// GOMAXPROCS. Per-output counts are merged by uint64 addition, so the
// result is bit-identical at any worker count. Cancellation is
// cooperative with one ctx poll per claimed chunk.
func (p *Program) CountOnes(ctx context.Context, workers int) ([]uint64, error) {
	n := len(p.inputs)
	if n > 62 {
		panic("sim: exhaustive enumeration beyond 62 inputs")
	}
	start := time.Now()
	total := uint64(1) << uint(n)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	counts, err := p.countBlocks(ctx, workers, blocks, total)
	if err != nil {
		return nil, err
	}
	mKernelPatterns.Add(total)
	mKernelBlocks.Add(blocks)
	hKernelSeconds.Observe(time.Since(start).Seconds())
	return counts, nil
}

func (p *Program) countBlocks(ctx context.Context, workers int, blocks, total uint64) ([]uint64, error) {
	counts := make([]uint64, len(p.outputs))
	// Small case: under one batch of blocks, run word-at-a-time on one
	// pooled array. The only place a partial-block mask can be needed
	// (total < 64 means blocks == 1).
	if blocks < BatchWords {
		vp := p.getVals()
		defer p.putVals(vp)
		v := *vp
		for b := uint64(0); b < blocks; b++ {
			for i, o := range p.inputs {
				v[o] = simword.InputWord(i, b)
			}
			p.eval1(v, 0)
			mask := simword.BlockMask(b, total)
			for j, o := range p.outputs {
				counts[j] += uint64(bits.OnesCount64(v[o] & mask))
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return counts, nil
	}

	// blocks is a power of two >= BatchWords here, so it divides into
	// whole batches and every block is full (total is a multiple of 64).
	numBatches := blocks / BatchWords
	chunk := chunkBatches(len(p.ins))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := numBatches / chunk; max > 0 && uint64(workers) > max {
		workers = int(max)
	}
	if workers < 1 {
		workers = 1
	}
	gKernelWorkers.SetMax(int64(workers))

	var cursor atomic.Uint64
	var mu sync.Mutex
	var firstErr error
	poll := ctx.Done() != nil
	run := func() {
		vp := p.getVals()
		defer p.putVals(vp)
		v := *vp
		local := make([]uint64, len(p.outputs))
		for {
			end := cursor.Add(chunk)
			batch := end - chunk
			if batch >= numBatches {
				break
			}
			if poll {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
			}
			if end > numBatches {
				end = numBatches
			}
			for ; batch < end; batch++ {
				p.fillEnumBatch(v, batch*BatchWords)
				p.evalBatch(v)
				for j, o := range p.outputs {
					out := (*[BatchWords]uint64)(v[o:])
					ones := 0
					for w := 0; w < BatchWords; w++ {
						ones += bits.OnesCount64(out[w])
					}
					local[j] += uint64(ones)
				}
			}
		}
		mu.Lock()
		for j := range counts {
			counts[j] += local[j]
		}
		mu.Unlock()
	}

	if workers == 1 {
		run()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer wg.Done()
				run()
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return counts, nil
}

// runVectors streams precomputed input vectors (vectors[i][w] is input
// i's word w) through the tape in BatchWords-wide batches, invoking
// gather(v, w0, n) after each batch with the value array, the base word
// index, and the number of valid words n (n < BatchWords only on the
// final partial batch). One ctx poll happens per chunk of batches.
func (p *Program) runVectors(ctx context.Context, vectors [][]uint64, words int, gather func(v []uint64, w0, n int)) error {
	if len(vectors) != len(p.inputs) {
		panic(fmt.Sprintf("sim: runVectors got %d input rows, want %d", len(vectors), len(p.inputs)))
	}
	vp := p.getVals()
	defer p.putVals(vp)
	v := *vp
	chunk := int(chunkBatches(len(p.ins)))
	poll := ctx.Done() != nil
	for w0, batch := 0, 0; w0 < words; w0, batch = w0+BatchWords, batch+1 {
		if poll && batch%chunk == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n := words - w0
		if n > BatchWords {
			n = BatchWords
		}
		for i, o := range p.inputs {
			row := vectors[i][w0 : w0+n]
			copy(v[o:o+int32(n)], row)
		}
		if n == BatchWords {
			p.evalBatch(v)
		} else {
			for w := 0; w < n; w++ {
				p.eval1(v, int32(w))
			}
		}
		gather(v, w0, n)
	}
	return nil
}
