package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

func TestInputWordBasePatterns(t *testing.T) {
	// Bit p of InputWord(i, 0) must equal bit i of pattern index p.
	for i := 0; i < 6; i++ {
		w := InputWord(i, 0)
		for p := uint(0); p < 64; p++ {
			want := p>>uint(i)&1 == 1
			if (w>>p&1 == 1) != want {
				t.Fatalf("InputWord(%d,0) bit %d wrong", i, p)
			}
		}
	}
	// Inputs >= 6 select on the block index.
	if InputWord(6, 0) != 0 || InputWord(6, 1) != ^uint64(0) {
		t.Error("InputWord block selection wrong")
	}
	if InputWord(8, 3) != 0 || InputWord(8, 4) != ^uint64(0) {
		t.Error("InputWord high-bit selection wrong")
	}
}

func TestBlockMask(t *testing.T) {
	if BlockMask(0, 64) != ^uint64(0) {
		t.Error("full block mask wrong")
	}
	if BlockMask(0, 5) != 31 {
		t.Error("partial mask wrong")
	}
	if BlockMask(1, 100) != (1<<36)-1 {
		t.Error("second block partial mask wrong")
	}
}

// TestExhaustiveCountsMatchBrute is the simulator's core property: word-
// parallel exhaustive counts equal per-pattern brute-force counts on
// random circuits.
func TestExhaustiveCountsMatchBrute(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		nIn := 1 + int(seed%9)
		c := testutil.RandomCircuit(nIn, 4+int(seed*5%30), 3, seed)
		want := testutil.CountOnesBrute(c)
		got := CountOnesPerOutput(c)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("seed %d out %d: %d != %d", seed, j, got[j], want[j])
			}
		}
	}
}

func TestCountOnesExhaustiveSingle(t *testing.T) {
	c := circuit.New("and")
	a := c.AddInput("a")
	b := c.AddInput("b")
	c.AddOutput(c.AddGate(circuit.And, a, b), "y")
	if n := CountOnesExhaustive(c); n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
}

func TestCountOnesZeroInputCircuit(t *testing.T) {
	c := circuit.New("const")
	c.AddOutput(c.Const1(), "y")
	if n := CountOnesExhaustive(c); n != 1 {
		t.Errorf("const1 with no inputs: count = %d, want 1", n)
	}
}

func TestEngineRunMatchesEval(t *testing.T) {
	c := testutil.RandomCircuit(7, 25, 4, 11)
	e := NewEngine(c)
	rng := rand.New(rand.NewSource(5))
	in := make([]uint64, 7)
	for i := range in {
		in[i] = rng.Uint64()
	}
	e.Run(in)
	for bit := 0; bit < 64; bit += 5 {
		args := make([]bool, 7)
		for i := range args {
			args[i] = in[i]>>uint(bit)&1 == 1
		}
		out := c.Eval(args)
		for j := range out {
			if (e.Out(j)>>uint(bit)&1 == 1) != out[j] {
				t.Fatalf("bit %d output %d mismatch", bit, j)
			}
		}
	}
}

func TestRunManyAndRunAllNodes(t *testing.T) {
	c := testutil.RandomCircuit(6, 20, 2, 3)
	rng := rand.New(rand.NewSource(9))
	const words = 8
	vectors := RandomVectors(6, words, rng)
	outs := RunMany(c, vectors, words)
	sigs := RunAllNodes(c, vectors, words)
	for j, o := range c.Outputs {
		for w := 0; w < words; w++ {
			if outs[j][w] != sigs[o][w] {
				t.Fatalf("RunMany and RunAllNodes disagree at out %d word %d", j, w)
			}
		}
	}
	// Input signatures must echo the vectors.
	for i, id := range c.Inputs {
		for w := 0; w < words; w++ {
			if sigs[id][w] != vectors[i][w] {
				t.Fatalf("input %d signature differs from vector", i)
			}
		}
	}
}

func TestSignalProbabilities(t *testing.T) {
	// XOR of two inputs has probability 1/2; AND has 1/4.
	c := circuit.New("p")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddGate(circuit.Xor, a, b)
	g := c.AddGate(circuit.And, a, b)
	c.AddOutput(x, "x")
	c.AddOutput(g, "g")
	p := SignalProbabilities(c, 512, 1)
	if p[x] < 0.45 || p[x] > 0.55 {
		t.Errorf("P(xor) = %v, want ~0.5", p[x])
	}
	if p[g] < 0.2 || p[g] > 0.3 {
		t.Errorf("P(and) = %v, want ~0.25", p[g])
	}
	if p[0] != 0 {
		t.Errorf("P(const0) = %v", p[0])
	}
}

// Property: counting ones of an OR over independent inputs obeys
// inclusion-exclusion (spot sanity via quick).
func TestOrCountProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw%8)
		c := circuit.New("or")
		cur := c.AddInput("")
		for i := 1; i < n; i++ {
			cur = c.AddGate(circuit.Or, cur, c.AddInput(""))
		}
		c.AddOutput(cur, "y")
		want := uint64(1)<<uint(n) - 1 // all patterns except all-zero
		return CountOnesExhaustive(c) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
