package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"vacsem/internal/testutil"
)

// TestCountOnesPerOutputCtxMatches pins that the chunked, pollable loop
// computes the same counts as the legacy exhaustive walk.
func TestCountOnesPerOutputCtxMatches(t *testing.T) {
	c := testutil.RandomCircuit(14, 120, 3, 99)
	want := CountOnesPerOutput(c)
	got, err := CountOnesPerOutputCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountOnesPerOutputCtxCancel(t *testing.T) {
	// 28 inputs: 2^22 blocks of simulation — far more than completes
	// before the cancel fires.
	c := testutil.RandomCircuit(28, 600, 2, 5)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := CountOnesPerOutputCtx(ctx, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want a prompt return", elapsed)
	}
}

func TestChunkBatches(t *testing.T) {
	cases := []struct {
		tapeLen int
		want    uint64
	}{
		{0, 128},      // clamp high when the tape is free to evaluate
		{1, 128},      // 2^18 / 8 exceeds the cap
		{1 << 15, 1},  // huge tape: poll every batch
		{1 << 30, 1},  // clamp low
		{1 << 10, 32}, // 2^18 / (2^10 * 8)
	}
	for _, tc := range cases {
		if got := chunkBatches(tc.tapeLen); got != tc.want {
			t.Errorf("chunkBatches(%d) = %d, want %d", tc.tapeLen, got, tc.want)
		}
	}
}
