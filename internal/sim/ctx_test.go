package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"vacsem/internal/testutil"
)

// TestCountOnesPerOutputCtxMatches pins that the chunked, pollable loop
// computes the same counts as the legacy exhaustive walk.
func TestCountOnesPerOutputCtxMatches(t *testing.T) {
	c := testutil.RandomCircuit(14, 120, 3, 99)
	want := CountOnesPerOutput(c)
	got, err := CountOnesPerOutputCtx(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountOnesPerOutputCtxCancel(t *testing.T) {
	// 28 inputs: 2^22 blocks of simulation — far more than completes
	// before the cancel fires.
	c := testutil.RandomCircuit(28, 600, 2, 5)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := CountOnesPerOutputCtx(ctx, c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want a prompt return", elapsed)
	}
}

func TestChunkBatches(t *testing.T) {
	cases := []struct {
		tapeLen    int
		numBatches uint64
		workers    int
		wantClaim  uint64
		wantPoll   uint64
	}{
		// Tiny tape over a huge range: the old fixed 128-batch cap made
		// this degenerate into 2^15 contended cursor claims; claims must
		// now scale with total work (numBatches / (workers * 16)).
		{1, 1 << 22, 8, 1 << 15, 1 << 15},
		{0, 1 << 22, 8, 1 << 15, 1 << 15}, // degenerate tape clamps to len 1
		// Huge tape: poll every batch, claim still work-scaled.
		{1 << 15, 1 << 10, 4, 16, 1},
		{1 << 30, 1 << 10, 4, 16, 1},
		// Mid-size tape, serial: claim = numBatches/16, poll = 2^18/(2^10*8).
		{1 << 10, 1 << 8, 1, 16, 32},
		// Fewer batches than claims: clamp claim (and poll) to >= 1.
		{1 << 10, 4, 8, 1, 32},
		{1, 0, 1, 1, 1 << 15},
		// workers <= 0 clamps to 1.
		{1, 1 << 10, 0, 64, 1 << 15},
	}
	for _, tc := range cases {
		claim, poll := chunkBatches(tc.tapeLen, tc.numBatches, tc.workers)
		if claim != tc.wantClaim || poll != tc.wantPoll {
			t.Errorf("chunkBatches(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.tapeLen, tc.numBatches, tc.workers, claim, poll, tc.wantClaim, tc.wantPoll)
		}
	}
}
