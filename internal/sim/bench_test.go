package sim

import (
	"context"
	"math/bits"
	"runtime"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

// benchCircuit is a fixed 2^20-pattern workload (20 inputs, a few
// hundred gates) shared by every BenchmarkSimKernel variant so the
// reported pattern throughputs compare like for like.
func benchCircuit() *circuit.Circuit {
	return testutil.RandomCircuit(20, 300, 4, 123)
}

// benchCircuitLarge is the scaled workload for parallel-speedup
// measurements: 2^26 patterns over ~300 gates is north of 2^34
// word-level gate evaluations per enumeration, hundreds of milliseconds
// of serial work — enough to amortize worker startup, which the small
// benchCircuit (finishing in single-digit milliseconds) never could.
func benchCircuitLarge() *circuit.Circuit {
	return testutil.RandomCircuit(26, 300, 4, 123)
}

func reportPatterns(b *testing.B, total uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/s/1e6, "Mpat/s")
	}
}

// BenchmarkSimKernel compares one full exhaustive enumeration of the
// bench miter across the implementations: the reference interpreter
// (per-gate switch over circuit.Node), the unfused identity-slot tape,
// the fused output-cone tape (the production enumeration path), and the
// fused tape with the block range spread over all CPUs. The miter here
// is deliberately small (milliseconds per enumeration) — parallel rows
// on it mostly measure worker startup; see BenchmarkSimKernelParallel
// for the scaled workload.
func BenchmarkSimKernel(b *testing.B) {
	c := benchCircuit()
	n := len(c.Inputs)
	total := uint64(1) << uint(n)
	blocks := total / 64

	b.Run("interpreter", func(b *testing.B) {
		e := NewEngine(c)
		in := make([]uint64, n)
		counts := make([]uint64, len(c.Outputs))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range counts {
				counts[j] = 0
			}
			for blk := uint64(0); blk < blocks; blk++ {
				for k := 0; k < n; k++ {
					in[k] = InputWord(k, blk)
				}
				e.Run(in)
				for j := range counts {
					counts[j] += uint64(bits.OnesCount64(e.Out(j)))
				}
			}
		}
		reportPatterns(b, total)
	})

	b.Run("tape", func(b *testing.B) {
		p := Compile(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.CountOnes(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
		}
		reportPatterns(b, total)
	})

	b.Run("tape-fused", func(b *testing.B) {
		p := CompileOutputs(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.CountOnes(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
		}
		reportPatterns(b, total)
	})

	b.Run("tape-parallel", func(b *testing.B) {
		p := CompileOutputs(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.CountOnes(context.Background(), runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
		reportPatterns(b, total)
	})
}

// BenchmarkSimKernelParallel measures parallel scaling on the large
// miter at fixed worker counts. Workers beyond GOMAXPROCS cannot help
// (there are no idle CPUs to run them), so rows above the machine's
// core count report the scheduler's behaviour, not speedup.
func BenchmarkSimKernelParallel(b *testing.B) {
	c := benchCircuitLarge()
	total := uint64(1) << uint(len(c.Inputs))
	p := CompileOutputs(c)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.CountOnes(context.Background(), workers); err != nil {
					b.Fatal(err)
				}
			}
			reportPatterns(b, total)
		})
	}
}

// BenchmarkCompile measures the one-time tape lowering cost the kernel
// pays per circuit (it is amortized over the whole enumeration), for
// both the identity-slot and the fused compiler.
func BenchmarkCompile(b *testing.B) {
	c := benchCircuit()
	b.Run("identity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Compile(c)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			CompileOutputs(c)
		}
	})
}
