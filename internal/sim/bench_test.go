package sim

import (
	"context"
	"math/bits"
	"runtime"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

// benchCircuit is a fixed 2^20-pattern workload (20 inputs, a few
// hundred gates) shared by every BenchmarkSimKernel variant so the
// reported pattern throughputs compare like for like.
func benchCircuit() *circuit.Circuit {
	return testutil.RandomCircuit(20, 300, 4, 123)
}

func reportPatterns(b *testing.B, total uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/s/1e6, "Mpat/s")
	}
}

// BenchmarkSimKernel compares one full exhaustive enumeration of the
// bench miter across the three implementations: the reference
// interpreter (per-gate switch over circuit.Node), the compiled tape
// run serially, and the compiled tape with the block range spread over
// all CPUs.
func BenchmarkSimKernel(b *testing.B) {
	c := benchCircuit()
	n := len(c.Inputs)
	total := uint64(1) << uint(n)
	blocks := total / 64

	b.Run("interpreter", func(b *testing.B) {
		e := NewEngine(c)
		in := make([]uint64, n)
		counts := make([]uint64, len(c.Outputs))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range counts {
				counts[j] = 0
			}
			for blk := uint64(0); blk < blocks; blk++ {
				for k := 0; k < n; k++ {
					in[k] = InputWord(k, blk)
				}
				e.Run(in)
				for j := range counts {
					counts[j] += uint64(bits.OnesCount64(e.Out(j)))
				}
			}
		}
		reportPatterns(b, total)
	})

	b.Run("tape", func(b *testing.B) {
		p := Compile(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.CountOnes(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
		}
		reportPatterns(b, total)
	})

	b.Run("tape-parallel", func(b *testing.B) {
		p := Compile(c)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.CountOnes(context.Background(), runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
		reportPatterns(b, total)
	})
}

// BenchmarkCompile measures the one-time tape lowering cost the kernel
// pays per circuit (it is amortized over the whole enumeration).
func BenchmarkCompile(b *testing.B) {
	c := benchCircuit()
	for i := 0; i < b.N; i++ {
		Compile(c)
	}
}
