// Package sim implements the word-parallel logic simulator that VACSEM
// embeds in its #SAT solver and uses as the exhaustive-enumeration
// baseline. Sixty-four input patterns are evaluated per machine word; the
// simulator streams pattern blocks so memory stays O(#nodes) regardless of
// the input-space size.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
)

// Metrics of the exhaustive-enumeration path. Updates happen once per
// batch (one CountOnesPerOutputCtx call), not per block, so the
// always-on cost is a few atomic adds per enumeration.
var (
	mEnumPatterns = obs.Default.Counter("sim.enum_patterns")
	mEnumBlocks   = obs.Default.Counter("sim.enum_blocks")
	hEnumSeconds  = obs.Default.Histogram("sim.enum_batch_seconds", nil)
)

// basePatterns[i] is the canonical simulation word of input i for the 64
// patterns inside one block: bit p of basePatterns[i] equals bit i of the
// pattern index p.
var basePatterns = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// InputWord returns the simulation word of input i (0-based) for pattern
// block `block`, under exhaustive enumeration: pattern index p (global) has
// input i equal to bit i of p.
func InputWord(i int, block uint64) uint64 {
	if i < 6 {
		return basePatterns[i]
	}
	if block>>(uint(i)-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// Engine evaluates a fixed circuit on blocks of 64 patterns. The zero
// value is not usable; create engines with NewEngine.
type Engine struct {
	c    *circuit.Circuit
	vals []uint64 // one word per node
}

// NewEngine creates a simulation engine for the circuit.
func NewEngine(c *circuit.Circuit) *Engine {
	return &Engine{c: c, vals: make([]uint64, len(c.Nodes))}
}

// Run evaluates one block: in[i] is the simulation word of the i-th primary
// input. After Run, node words are available through Val and output words
// through Out.
func (e *Engine) Run(in []uint64) {
	c := e.c
	if len(in) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: Run got %d input words, want %d", len(in), len(c.Inputs)))
	}
	v := e.vals
	v[0] = 0
	for i, id := range c.Inputs {
		v[id] = in[i]
	}
	var args [3]uint64
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		switch nd.Kind {
		case circuit.Input:
			// already set
		case circuit.And:
			v[id] = v[nd.Fanins[0]] & v[nd.Fanins[1]]
		case circuit.Or:
			v[id] = v[nd.Fanins[0]] | v[nd.Fanins[1]]
		case circuit.Xor:
			v[id] = v[nd.Fanins[0]] ^ v[nd.Fanins[1]]
		case circuit.Not:
			v[id] = ^v[nd.Fanins[0]]
		default:
			a := args[:len(nd.Fanins)]
			for j, f := range nd.Fanins {
				a[j] = v[f]
			}
			v[id] = nd.Kind.EvalWord(a)
		}
	}
}

// Val returns the last simulation word of a node.
func (e *Engine) Val(node int) uint64 { return e.vals[node] }

// Out returns the last simulation word of the i-th primary output.
func (e *Engine) Out(i int) uint64 { return e.vals[e.c.Outputs[i]] }

// BlockMask returns the mask of valid pattern bits in block `block` when
// only `total` patterns exist overall (total > block*64).
func BlockMask(block, total uint64) uint64 {
	rem := total - block*64
	if rem >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << rem) - 1
}

// CountOnesExhaustive counts, for the single-output circuit c, the number
// of input patterns (all 2^I of them) for which the output is 1. It panics
// when the circuit has more than 62 inputs (the count would not fit the
// iteration space); callers guard with their own limits long before that.
func CountOnesExhaustive(c *circuit.Circuit) uint64 {
	if len(c.Outputs) != 1 {
		panic("sim: CountOnesExhaustive needs exactly one output")
	}
	counts := CountOnesPerOutput(c)
	return counts[0]
}

// CountOnesPerOutput exhaustively counts, for every primary output, the
// number of input patterns under which that output is 1.
func CountOnesPerOutput(c *circuit.Circuit) []uint64 {
	counts, err := CountOnesPerOutputCtx(context.Background(), c)
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return counts
}

// pollChunkBlocks sizes the cancellation-poll interval of the exhaustive
// enumeration loop by gate count: roughly one context check per
// targetGateEvals gate evaluations, so heavy miters poll every few
// blocks while trivial circuits don't pay per-block poll overhead.
// The previous fixed 1024-block interval could overshoot a deadline by
// seconds on slow (many-gate) miters.
func pollChunkBlocks(numGates int) uint64 {
	const targetGateEvals = 1 << 18
	if numGates < 1 {
		numGates = 1
	}
	chunk := uint64(targetGateEvals / numGates)
	if chunk == 0 {
		return 1
	}
	if chunk > 1024 {
		return 1024
	}
	return chunk
}

// CountOnesPerOutputCtx is CountOnesPerOutput with cooperative
// cancellation: the block loop polls ctx.Err() once per work chunk,
// where a chunk is sized so that roughly a constant number of gate
// evaluations happens between polls regardless of circuit size.
func CountOnesPerOutputCtx(ctx context.Context, c *circuit.Circuit) ([]uint64, error) {
	n := len(c.Inputs)
	if n > 62 {
		panic("sim: exhaustive enumeration beyond 62 inputs")
	}
	total := uint64(1) << uint(n)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	poll := uint64(0)
	if ctx.Done() != nil {
		poll = pollChunkBlocks(c.NumGates())
	}
	e := NewEngine(c)
	in := make([]uint64, n)
	counts := make([]uint64, len(c.Outputs))
	start := time.Now()
	for b := uint64(0); b < blocks; b++ {
		if poll != 0 && b%poll == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			in[i] = InputWord(i, b)
		}
		e.Run(in)
		mask := BlockMask(b, total)
		for j := range counts {
			counts[j] += uint64(bits.OnesCount64(e.Out(j) & mask))
		}
	}
	dur := time.Since(start)
	mEnumPatterns.Add(total)
	mEnumBlocks.Add(blocks)
	hEnumSeconds.Observe(dur.Seconds())
	if tr := obs.Active(); tr != nil {
		tr.Event(obs.SpanFrom(ctx), "sim_batch", obs.Fields{
			"patterns": total, "blocks": blocks, "gates": c.NumGates(),
			"outputs": len(c.Outputs), "sim_us": dur.Microseconds(),
		})
	}
	return counts, nil
}

// RandomVectors fills count simulation words per input from the given
// source, returning a matrix indexed [input][word].
func RandomVectors(nInputs, words int, rng *rand.Rand) [][]uint64 {
	m := make([][]uint64, nInputs)
	for i := range m {
		row := make([]uint64, words)
		for w := range row {
			row[w] = rng.Uint64()
		}
		m[i] = row
	}
	return m
}

// RunMany evaluates the circuit on `words` blocks of precomputed input
// vectors (vectors[i][w] is input i's word w) and returns the output
// vectors indexed [output][word].
func RunMany(c *circuit.Circuit, vectors [][]uint64, words int) [][]uint64 {
	e := NewEngine(c)
	out := make([][]uint64, len(c.Outputs))
	for j := range out {
		out[j] = make([]uint64, words)
	}
	in := make([]uint64, len(c.Inputs))
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = vectors[i][w]
		}
		e.Run(in)
		for j := range out {
			out[j][w] = e.Out(j)
		}
	}
	return out
}

// RunAllNodes evaluates the circuit on `words` blocks of precomputed
// input vectors and returns the full per-node signatures, indexed
// [node][word]. Signatures are the workhorse of simulation-guided
// approximate synthesis: two nodes with close signatures are candidates
// for substitution.
func RunAllNodes(c *circuit.Circuit, vectors [][]uint64, words int) [][]uint64 {
	e := NewEngine(c)
	sigs := make([][]uint64, len(c.Nodes))
	for id := range sigs {
		sigs[id] = make([]uint64, words)
	}
	in := make([]uint64, len(c.Inputs))
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = vectors[i][w]
		}
		e.Run(in)
		for id := range sigs {
			sigs[id][w] = e.vals[id]
		}
	}
	return sigs
}

// SignalProbabilities estimates the probability of each node being 1 under
// uniformly random inputs, using `words` blocks of 64 random patterns.
func SignalProbabilities(c *circuit.Circuit, words int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	e := NewEngine(c)
	ones := make([]uint64, len(c.Nodes))
	in := make([]uint64, len(c.Inputs))
	for w := 0; w < words; w++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		e.Run(in)
		for id := range ones {
			ones[id] += uint64(bits.OnesCount64(e.vals[id]))
		}
	}
	prob := make([]float64, len(c.Nodes))
	totalPatterns := float64(words * 64)
	for id := range prob {
		prob[id] = float64(ones[id]) / totalPatterns
	}
	return prob
}
