// Package sim implements the word-parallel logic simulator that VACSEM
// embeds in its #SAT solver and uses as the exhaustive-enumeration
// baseline. Sixty-four input patterns are evaluated per machine word; a
// circuit is compiled once into a flat instruction tape (Program) that
// streams batches of BatchWords words, and exhaustive enumeration
// splits the pattern-block range across a bounded worker pool. Memory
// stays O(#nodes) per worker regardless of the input-space size.
package sim

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
	"vacsem/internal/simword"
)

// Metrics of the exhaustive-enumeration path. Updates happen once per
// enumeration (one CountOnesPerOutputWorkers call), not per block, so
// the always-on cost is a few atomic adds per enumeration.
var (
	mEnumPatterns = obs.Default.Counter("sim.enum_patterns")
	mEnumBlocks   = obs.Default.Counter("sim.enum_blocks")
	hEnumSeconds  = obs.Default.Histogram("sim.enum_batch_seconds", nil)
)

// InputWord returns the simulation word of input i (0-based) for pattern
// block `block`, under exhaustive enumeration: pattern index p (global) has
// input i equal to bit i of p.
func InputWord(i int, block uint64) uint64 { return simword.InputWord(i, block) }

// BlockMask returns the mask of valid pattern bits in block `block` when
// only `total` patterns exist overall (total > block*64).
func BlockMask(block, total uint64) uint64 { return simword.BlockMask(block, total) }

// Engine evaluates a fixed circuit on blocks of 64 patterns by walking
// the node array directly. It is the reference interpreter the compiled
// Program is tested (and benchmarked) against; hot paths use Compile
// instead. The zero value is not usable; create engines with NewEngine.
type Engine struct {
	c    *circuit.Circuit
	vals []uint64 // one word per node
}

// NewEngine creates a simulation engine for the circuit.
func NewEngine(c *circuit.Circuit) *Engine {
	return &Engine{c: c, vals: make([]uint64, len(c.Nodes))}
}

// Run evaluates one block: in[i] is the simulation word of the i-th primary
// input. After Run, node words are available through Val and output words
// through Out.
func (e *Engine) Run(in []uint64) {
	c := e.c
	if len(in) != len(c.Inputs) {
		panic(fmt.Sprintf("sim: Run got %d input words, want %d", len(in), len(c.Inputs)))
	}
	v := e.vals
	v[0] = 0
	for i, id := range c.Inputs {
		v[id] = in[i]
	}
	var args [3]uint64
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		switch nd.Kind {
		case circuit.Input:
			// already set
		case circuit.And:
			v[id] = v[nd.Fanins[0]] & v[nd.Fanins[1]]
		case circuit.Or:
			v[id] = v[nd.Fanins[0]] | v[nd.Fanins[1]]
		case circuit.Xor:
			v[id] = v[nd.Fanins[0]] ^ v[nd.Fanins[1]]
		case circuit.Not:
			v[id] = ^v[nd.Fanins[0]]
		default:
			a := args[:len(nd.Fanins)]
			for j, f := range nd.Fanins {
				a[j] = v[f]
			}
			v[id] = nd.Kind.EvalWord(a)
		}
	}
}

// Val returns the last simulation word of a node.
func (e *Engine) Val(node int) uint64 { return e.vals[node] }

// Out returns the last simulation word of the i-th primary output.
func (e *Engine) Out(i int) uint64 { return e.vals[e.c.Outputs[i]] }

// CountOnesExhaustive counts, for the single-output circuit c, the number
// of input patterns (all 2^I of them) for which the output is 1. It panics
// when the circuit has more than 62 inputs (the count would not fit the
// iteration space); callers guard with their own limits long before that.
func CountOnesExhaustive(c *circuit.Circuit) uint64 {
	if len(c.Outputs) != 1 {
		panic("sim: CountOnesExhaustive needs exactly one output")
	}
	counts := CountOnesPerOutput(c)
	return counts[0]
}

// CountOnesPerOutput exhaustively counts, for every primary output, the
// number of input patterns under which that output is 1.
func CountOnesPerOutput(c *circuit.Circuit) []uint64 {
	counts, err := CountOnesPerOutputCtx(context.Background(), c)
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return counts
}

// CountOnesPerOutputCtx is CountOnesPerOutput with cooperative
// cancellation, running single-threaded. See CountOnesPerOutputWorkers.
func CountOnesPerOutputCtx(ctx context.Context, c *circuit.Circuit) ([]uint64, error) {
	return CountOnesPerOutputWorkers(ctx, c, 1)
}

// CountOnesPerOutputWorkers exhaustively counts, for every primary
// output, the number of input patterns under which that output is 1,
// compiling the circuit once and splitting the pattern-block range
// across up to `workers` goroutines (<= 0 means GOMAXPROCS). Per-output
// tallies are merged by addition, so the result is bit-identical to the
// serial walk at any worker count. The block loop polls ctx once per
// claimed work chunk.
func CountOnesPerOutputWorkers(ctx context.Context, c *circuit.Circuit, workers int) ([]uint64, error) {
	n := len(c.Inputs)
	if n > 62 {
		panic("sim: exhaustive enumeration beyond 62 inputs")
	}
	total := uint64(1) << uint(n)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	start := time.Now()
	p := CompileOutputs(c)
	counts, err := p.CountOnes(ctx, workers)
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)
	mEnumPatterns.Add(total)
	mEnumBlocks.Add(blocks)
	hEnumSeconds.Observe(dur.Seconds())
	if tr := obs.Active(); tr != nil {
		tr.Event(obs.SpanFrom(ctx), "sim_batch", obs.Fields{
			"patterns": total, "blocks": blocks, "gates": c.NumGates(),
			"outputs": len(c.Outputs), "workers": workers,
			"sim_us": dur.Microseconds(),
		})
	}
	return counts, nil
}

// RandomVectors fills count simulation words per input from the given
// source, returning a matrix indexed [input][word].
func RandomVectors(nInputs, words int, rng *rand.Rand) [][]uint64 {
	m := make([][]uint64, nInputs)
	for i := range m {
		row := make([]uint64, words)
		for w := range row {
			row[w] = rng.Uint64()
		}
		m[i] = row
	}
	return m
}

// RunMany evaluates the circuit on `words` blocks of precomputed input
// vectors (vectors[i][w] is input i's word w) and returns the output
// vectors indexed [output][word].
func RunMany(c *circuit.Circuit, vectors [][]uint64, words int) [][]uint64 {
	out, err := RunManyCtx(context.Background(), c, vectors, words)
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return out
}

// RunManyCtx is RunMany with cooperative cancellation: the word loop
// runs through the compiled kernel's chunked batches and polls ctx
// between chunks.
func RunManyCtx(ctx context.Context, c *circuit.Circuit, vectors [][]uint64, words int) ([][]uint64, error) {
	p := CompileOutputs(c)
	out := make([][]uint64, len(c.Outputs))
	for j := range out {
		out[j] = make([]uint64, words)
	}
	err := p.runVectors(ctx, vectors, words, func(v []uint64, w0, n int) {
		for j, o := range p.outputs {
			copy(out[j][w0:w0+n], v[o:o+int32(n)])
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAllNodes evaluates the circuit on `words` blocks of precomputed
// input vectors and returns the full per-node signatures, indexed
// [node][word]. Signatures are the workhorse of simulation-guided
// approximate synthesis: two nodes with close signatures are candidates
// for substitution.
func RunAllNodes(c *circuit.Circuit, vectors [][]uint64, words int) [][]uint64 {
	sigs, err := RunAllNodesCtx(context.Background(), c, vectors, words)
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return sigs
}

// RunAllNodesCtx is RunAllNodes with cooperative cancellation. Full-
// circuit programs assign slot i to node i, so the per-node signatures
// are gathered straight out of the kernel's value array.
func RunAllNodesCtx(ctx context.Context, c *circuit.Circuit, vectors [][]uint64, words int) ([][]uint64, error) {
	p := Compile(c)
	sigs := make([][]uint64, len(c.Nodes))
	for id := range sigs {
		sigs[id] = make([]uint64, words)
	}
	err := p.runVectors(ctx, vectors, words, func(v []uint64, w0, n int) {
		for id := range sigs {
			o := int32(id) * BatchWords
			copy(sigs[id][w0:w0+n], v[o:o+int32(n)])
		}
	})
	if err != nil {
		return nil, err
	}
	return sigs, nil
}

// SignalProbabilities estimates the probability of each node being 1 under
// uniformly random inputs, using `words` blocks of 64 random patterns.
func SignalProbabilities(c *circuit.Circuit, words int, seed int64) []float64 {
	prob, err := SignalProbabilitiesCtx(context.Background(), c, words, seed)
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return prob
}

// SignalProbabilitiesCtx is SignalProbabilities with cooperative
// cancellation. The random stream is drawn word-major then input-minor
// — the order the pre-kernel implementation used — so estimates for a
// given seed are unchanged.
func SignalProbabilitiesCtx(ctx context.Context, c *circuit.Circuit, words int, seed int64) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]uint64, len(c.Inputs))
	for i := range vectors {
		vectors[i] = make([]uint64, words)
	}
	for w := 0; w < words; w++ {
		for i := range vectors {
			vectors[i][w] = rng.Uint64()
		}
	}
	p := Compile(c)
	ones := make([]uint64, len(c.Nodes))
	err := p.runVectors(ctx, vectors, words, func(v []uint64, w0, n int) {
		for id := range ones {
			o := int32(id) * BatchWords
			for w := int32(0); w < int32(n); w++ {
				ones[id] += uint64(bits.OnesCount64(v[o+w]))
			}
		}
	})
	if err != nil {
		return nil, err
	}
	prob := make([]float64, len(c.Nodes))
	totalPatterns := float64(words * 64)
	for id := range prob {
		prob[id] = float64(ones[id]) / totalPatterns
	}
	return prob, nil
}
