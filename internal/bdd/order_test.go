package bdd

import (
	"math/big"
	"testing"

	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestDFSOrderIsAPermutation(t *testing.T) {
	for _, c := range []interface {
		NumInputs() int
	}{} {
		_ = c
	}
	circs := []struct {
		name string
		n    int
		pos  []int
	}{
		{"adder", gen.RippleCarryAdder(6).NumInputs(), DFSOrder(gen.RippleCarryAdder(6))},
		{"mult", gen.ArrayMultiplier(4).NumInputs(), DFSOrder(gen.ArrayMultiplier(4))},
		{"rand", testutil.RandomCircuit(7, 20, 2, 3).NumInputs(), DFSOrder(testutil.RandomCircuit(7, 20, 2, 3))},
	}
	for _, tc := range circs {
		if len(tc.pos) != tc.n {
			t.Fatalf("%s: order length %d, want %d", tc.name, len(tc.pos), tc.n)
		}
		seen := make([]bool, tc.n)
		for _, p := range tc.pos {
			if p < 0 || p >= tc.n || seen[p] {
				t.Fatalf("%s: order %v is not a permutation", tc.name, tc.pos)
			}
			seen[p] = true
		}
	}
}

func TestDFSOrderInterleavesAdderOperands(t *testing.T) {
	// The whole point of the heuristic: a-bits and b-bits must
	// interleave, keeping adder BDDs linear.
	c := gen.RippleCarryAdder(16)
	pos := DFSOrder(c)
	// a_i and b_i (inputs i and 16+i) must sit near each other.
	for i := 0; i < 16; i++ {
		d := pos[i] - pos[16+i]
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Fatalf("a%d and b%d are %d levels apart (order not interleaved)", i, i, d)
		}
	}
}

func TestOrderedBuildMatchesUnordered(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		c := testutil.RandomCircuit(5, 18, 2, seed+80)
		want := testutil.CountOnesBrute(c)

		plain := New(c.NumInputs(), 0)
		outs1, err := plain.BuildOutputs(c)
		if err != nil {
			t.Fatal(err)
		}
		ordered := New(c.NumInputs(), 0)
		outs2, err := ordered.BuildOutputsOrdered(c, DFSOrder(c))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			w := new(big.Int).SetUint64(want[j])
			if got := plain.CountOnes(outs1[j]); got.Cmp(w) != 0 {
				t.Fatalf("seed %d out %d plain: %v != %v", seed, j, got, w)
			}
			if got := ordered.CountOnes(outs2[j]); got.Cmp(w) != 0 {
				t.Fatalf("seed %d out %d ordered: %v != %v", seed, j, got, w)
			}
		}
	}
}

func TestOrderedAdderStaysSmall(t *testing.T) {
	c := gen.RippleCarryAdder(32)
	m := New(c.NumInputs(), 1<<20)
	if _, err := m.BuildOutputsOrdered(c, DFSOrder(c)); err != nil {
		t.Fatalf("interleaved 32-bit adder should not explode: %v", err)
	}
	if m.NumNodes() > 100000 {
		t.Errorf("adder32 BDD with DFS order has %d nodes (expected linear-ish)", m.NumNodes())
	}
}

func TestBadOrderRejected(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	m := New(c.NumInputs(), 0)
	if _, err := m.BuildOutputsOrdered(c, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
}
