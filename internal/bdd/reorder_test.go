package bdd

import (
	"math/big"
	"math/rand"
	"testing"

	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// evalAll snapshots the full truth table of each root (the circuits in
// these tests are small enough to enumerate).
func evalAll(m *Manager, roots []Ref) [][]bool {
	n := m.numVars
	tables := make([][]bool, len(roots))
	in := make([]bool, n)
	for j, r := range roots {
		tab := make([]bool, 1<<uint(n))
		for x := range tab {
			for i := range in {
				in[i] = x>>uint(i)&1 == 1
			}
			tab[x] = m.Eval(r, in)
		}
		tables[j] = tab
	}
	return tables
}

// TestSwapLevelsPreservesFunctions is the sifter's core safety
// property: adjacent level swaps rewrite nodes in place, so every
// outstanding Ref must keep its exact function (checked by full truth
// tables) and its model count through an arbitrary swap sequence.
func TestSwapLevelsPreservesFunctions(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := testutil.RandomCircuit(8, 30+int(seed*7%40), 3, seed)
		m := New(8, 0)
		roots, err := m.BuildOutputs(c)
		if err != nil {
			t.Fatal(err)
		}
		want := evalAll(m, roots)
		wantCounts := make([]*big.Int, len(roots))
		for j, r := range roots {
			wantCounts[j] = m.CountOnes(r)
		}
		rng := rand.New(rand.NewSource(seed + 77))
		for s := 0; s < 40; s++ {
			if err := m.swapLevels(int32(rng.Intn(7))); err != nil {
				t.Fatal(err)
			}
		}
		got := evalAll(m, roots)
		for j := range roots {
			for x := range want[j] {
				if got[j][x] != want[j][x] {
					t.Fatalf("seed %d root %d pattern %d: function changed after swaps", seed, j, x)
				}
			}
			if m.CountOnes(roots[j]).Cmp(wantCounts[j]) != 0 {
				t.Fatalf("seed %d root %d: count changed after swaps", seed, j)
			}
		}
	}
}

// TestSwapLevelsKeepsOpsUsable pins that the unique/memo tables stay
// coherent enough for further apply operations after swaps: new ITE
// results on swapped diagrams must still be correct.
func TestSwapLevelsKeepsOpsUsable(t *testing.T) {
	c := testutil.RandomCircuit(6, 25, 2, 3)
	m := New(6, 0)
	roots, err := m.BuildOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	for l := int32(0); l < 5; l++ {
		if err := m.swapLevels(l); err != nil {
			t.Fatal(err)
		}
	}
	and, err := m.And(roots[0], roots[1])
	if err != nil {
		t.Fatal(err)
	}
	xor, err := m.Xor(roots[0], roots[1])
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, 6)
	for x := 0; x < 1<<6; x++ {
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		r0, r1 := m.Eval(roots[0], in), m.Eval(roots[1], in)
		if m.Eval(and, in) != (r0 && r1) {
			t.Fatalf("pattern %d: AND on swapped diagrams wrong", x)
		}
		if m.Eval(xor, in) != (r0 != r1) {
			t.Fatalf("pattern %d: XOR on swapped diagrams wrong", x)
		}
	}
}

// TestReorderShrinksBadOrderAdder gives the sifter its textbook win: a
// ripple-carry adder built with the declaration order (all a-bits above
// all b-bits — the order whose diagrams are exponential) must come out
// of one Reorder pass strictly smaller, with identical counts.
func TestReorderShrinksBadOrderAdder(t *testing.T) {
	c := gen.RippleCarryAdder(8) // 16 inputs, declaration order is bad
	m := New(16, 0)
	roots, err := m.BuildOutputs(c) // nil order = declaration order
	if err != nil {
		t.Fatal(err)
	}
	before, _ := m.liveStats(roots)
	wantCounts := make([]*big.Int, len(roots))
	for j, r := range roots {
		wantCounts[j] = m.CountOnes(r)
	}
	if err := m.Reorder(roots); err != nil {
		t.Fatal(err)
	}
	after, _ := m.liveStats(roots)
	t.Logf("adder live size: %d -> %d", before, after)
	if after >= before {
		t.Errorf("reorder did not shrink the bad-order adder: %d -> %d", before, after)
	}
	for j, r := range roots {
		if m.CountOnes(r).Cmp(wantCounts[j]) != 0 {
			t.Errorf("root %d: count changed across reorder", j)
		}
	}
}

// TestCountDifferentMatchesXor pins the ER pair traversal against the
// reference: CountDifferent(f, g) == CountOnes(f XOR g) over random
// circuit outputs, including f == g and terminal operands.
func TestCountDifferentMatchesXor(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		nIn := 4 + int(seed%8)
		c := testutil.RandomCircuit(nIn, 20+int(seed*11%60), 2, seed)
		m := New(nIn, 0)
		roots, err := m.BuildOutputs(c)
		if err != nil {
			t.Fatal(err)
		}
		f, g := roots[0], roots[1]
		for _, pair := range [][2]Ref{{f, g}, {g, f}, {f, f}, {f, True}, {False, g}, {False, True}} {
			x, err := m.Xor(pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			want := m.CountOnes(x)
			got := m.CountDifferent(pair[0], pair[1])
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d (%d,%d): CountDifferent = %v, CountOnes(xor) = %v",
					seed, pair[0], pair[1], got, want)
			}
		}
	}
}

// TestAutoReorderCountsUnchanged builds a miter-sized circuit with
// auto-reordering armed (trigger lowered so it actually fires) and
// checks every output count against the fixed-order build.
func TestAutoReorderCountsUnchanged(t *testing.T) {
	c := testutil.RandomCircuit(14, 250, 4, 21)
	fixed := New(14, 0)
	want, err := fixed.BuildOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	auto := New(14, 0)
	auto.EnableAutoReorder()
	auto.reorderNext = 256 // fire several times on this small build
	got, err := auto.BuildOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	fired := mReorders.Value()
	if fired == 0 {
		t.Fatal("auto-reorder never fired; trigger broken")
	}
	for j := range want {
		w := fixed.CountOnes(want[j])
		g := auto.CountOnes(got[j])
		if w.Cmp(g) != 0 {
			t.Errorf("output %d: auto-reordered count %v, fixed-order %v", j, g, w)
		}
	}
}

// TestVarOrderTracksSwaps pins the var<->level bookkeeping.
func TestVarOrderTracksSwaps(t *testing.T) {
	m := New(4, 0)
	if _, err := m.BuildOutputs(gen.RippleCarryAdder(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.swapLevels(1); err != nil {
		t.Fatal(err)
	}
	order := m.VarOrder()
	want := []int32{0, 2, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("VarOrder = %v, want %v", order, want)
		}
	}
	for l, v := range order {
		if m.levelOf[v] != int32(l) {
			t.Fatalf("levelOf[%d] = %d, want %d", v, m.levelOf[v], l)
		}
	}
}
