package bdd

import (
	"context"
	"errors"
	"testing"

	"vacsem/internal/testutil"
)

// TestBuildOutputsCtxMatches pins that the context-aware build produces
// the same diagrams (same model counts) as the plain build.
func TestBuildOutputsCtxMatches(t *testing.T) {
	c := testutil.RandomCircuit(10, 80, 3, 17)
	plain := New(len(c.Inputs), 0)
	want, err := plain.BuildOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	withCtx := New(len(c.Inputs), 0)
	got, err := withCtx.BuildOutputsCtx(context.Background(), c, DFSOrder(c))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		w := plain.CountOnes(want[i])
		g := withCtx.CountOnes(got[i])
		if w.Cmp(g) != 0 {
			t.Errorf("output %d: count %v, want %v", i, g, w)
		}
	}
}

// TestBuildOutputsCtxCancel cancels during a build large enough to cross
// many poll intervals and expects context.Canceled (or, if the build
// wins the race, a clean result).
func TestBuildOutputsCtxCancel(t *testing.T) {
	c := testutil.RandomCircuit(30, 3000, 4, 23)
	m := New(len(c.Inputs), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.BuildOutputsCtx(ctx, c, DFSOrder(c))
	if err == nil {
		t.Skip("build finished before the first poll")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSetContextCleared ensures a manager is usable again after a
// cancelled context-aware build: BuildOutputsCtx must clear its context
// on exit so later plain calls don't inherit a dead deadline.
func TestSetContextCleared(t *testing.T) {
	c := testutil.RandomCircuit(8, 40, 2, 31)
	m := New(len(c.Inputs), 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = m.BuildOutputsCtx(ctx, c, DFSOrder(c))
	if _, err := m.BuildOutputs(c); err != nil {
		t.Fatalf("plain build after cancelled ctx build: %v", err)
	}
}
