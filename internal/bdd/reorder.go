// Dynamic variable reordering (Rudell-style window sifting) and the
// metric-specific pair traversal the BDD backend uses for error-rate
// counting. Both follow "Optimization of BDD-based Approximation Error
// Metrics Calculations" (PAPERS.md): reordering attacks the node
// explosion that kills fixed-order diagrams, and the pair traversal
// counts disagreeing assignments of two diagrams without materializing
// their XOR.
package bdd

import (
	"math/big"
	"sort"

	"vacsem/internal/obs"
)

var (
	mReorders     = obs.Default.Counter("bdd.reorders")
	mReorderSwaps = obs.Default.Counter("bdd.reorder_swaps")
)

// Sifting bounds: sift at most maxSiftVars variables (the most
// populated levels), each within +-siftWindow positions of its current
// level, and abandon a direction once the live size exceeds
// siftGrowthCap times the starting size. Small by design — the sifter
// runs mid-build, so each pass must stay a fraction of the build cost.
const (
	maxSiftVars   = 6
	siftWindow    = 12
	siftGrowthCap = 2
)

// EnableAutoReorder arms dynamic variable reordering: BuildOutputs*
// and BuildNodesOrdered then run a sifting pass whenever the node table
// doubles past the trigger threshold. Off by default — reordering
// trades build time for node count and changes no results.
func (m *Manager) EnableAutoReorder() {
	m.autoReorder = true
	if m.reorderNext == 0 {
		m.reorderNext = 4096
	}
}

// VarOrder returns the current level->variable permutation (a copy).
func (m *Manager) VarOrder() []int32 {
	out := make([]int32, len(m.varAt))
	copy(out, m.varAt)
	return out
}

// reinsert puts a rewritten node's key back into the unique table.
// Redundant nodes (low == high, tolerated forwarding leftovers of a
// swap) and keys already claimed by another node (duplicates degrade
// canonicity but never correctness: swaps rewrite nodes in place, so
// every outstanding Ref keeps its function) are skipped.
func (m *Manager) reinsert(r Ref) {
	n := m.nodes[r]
	if n.low == n.high {
		return
	}
	if _, ok := m.unique[n]; !ok {
		m.unique[n] = r
	}
}

// mkSwap is mk for the sifter: same hash-consing and node budget, but
// no growth events (swaps churn nodes without representing progress).
func (m *Manager) mkSwap(level int32, low, high Ref) (Ref, error) {
	if low == high {
		return low, nil
	}
	key := node{level: level, low: low, high: high}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.limit {
		return 0, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r, nil
}

// swapLevels exchanges the variables at levels l and l+1 by rewriting
// every level-l node in place (the textbook adjacent-swap: a node
// testing x over y-children becomes a node testing y over fresh
// x-children with the cofactors re-paired), so every outstanding Ref
// keeps its function and the iteMemo stays semantically valid. Old
// level-(l+1) nodes are relabelled to level l. On ErrNodeLimit the
// table is mid-swap and only fit for error propagation — callers must
// abort the build, which hitting the node budget forces anyway.
func (m *Manager) swapLevels(l int32) error {
	var xs, ys []Ref
	for r := Ref(2); int(r) < len(m.nodes); r++ {
		switch m.nodes[r].level {
		case l:
			xs = append(xs, r)
		case l + 1:
			ys = append(ys, r)
		}
	}
	wasY := make(map[Ref]bool, len(ys))
	for _, r := range ys {
		wasY[r] = true
	}
	// Both sets leave the unique table before any rewrite: a rewritten
	// x-node's key would otherwise collide with a live y-key.
	for _, r := range xs {
		delete(m.unique, m.nodes[r])
	}
	for _, r := range ys {
		delete(m.unique, m.nodes[r])
	}
	for _, r := range xs {
		n := m.nodes[r]
		if !wasY[n.low] && !wasY[n.high] {
			// Independent of y: the node keeps testing x, which now lives
			// one level down.
			m.nodes[r].level = l + 1
			continue
		}
		f00, f01 := n.low, n.low
		if wasY[n.low] {
			f00, f01 = m.nodes[n.low].low, m.nodes[n.low].high
		}
		f10, f11 := n.high, n.high
		if wasY[n.high] {
			f10, f11 = m.nodes[n.high].low, m.nodes[n.high].high
		}
		newLow, err := m.mkSwap(l+1, f00, f10)
		if err != nil {
			return err
		}
		newHigh, err := m.mkSwap(l+1, f01, f11)
		if err != nil {
			return err
		}
		m.nodes[r] = node{level: l, low: newLow, high: newHigh}
	}
	for _, r := range ys {
		m.nodes[r].level = l
	}
	for _, r := range xs {
		m.reinsert(r)
	}
	for _, r := range ys {
		m.reinsert(r)
	}
	vx, vy := m.varAt[l], m.varAt[l+1]
	m.varAt[l], m.varAt[l+1] = vy, vx
	m.levelOf[vx], m.levelOf[vy] = int32(l+1), int32(l)
	mReorderSwaps.Inc()
	return nil
}

// liveStats sweeps the nodes reachable from roots, returning the
// canonical live count and the per-level population. Canonical means
// structural: forwarding leftovers (low == high) and key-duplicates —
// both churn artifacts of in-place swaps — are not counted, so the
// metric measures the represented functions' true ROBDD size and stays
// stable under swap churn (a raw reachable-ref count would grow with
// every swap and mislead the sifter's best-position tracking). Dead
// nodes are excluded too, which is why len(m.nodes) cannot serve as
// the cost metric either.
func (m *Manager) liveStats(roots []Ref) (int, []int) {
	seen := make([]bool, len(m.nodes))
	keys := make(map[node]bool)
	perLevel := make([]int, m.numVars)
	count := 0
	stack := append(make([]Ref, 0, len(roots)+64), roots...)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r <= True || seen[r] {
			continue
		}
		seen[r] = true
		n := m.nodes[r]
		stack = append(stack, n.low, n.high)
		if n.low == n.high || keys[n] {
			continue
		}
		keys[n] = true
		count++
		if int(n.level) < m.numVars {
			perLevel[n.level]++
		}
	}
	return count, perLevel
}

// Reorder runs one windowed sifting pass over the diagrams rooted at
// roots: the variables of the most populated levels are each moved
// through a window of adjacent positions and parked where the live
// node count is smallest. Functions of outstanding Refs are preserved
// exactly (swaps rewrite nodes in place); only the variable order, and
// with it the node count, changes. Sifting needs table headroom to
// churn nodes — with less than a third of the node budget free the
// pass is skipped rather than risk tripping ErrNodeLimit inside an
// optimization.
func (m *Manager) Reorder(roots []Ref) error {
	if m.numVars < 2 || len(roots) == 0 {
		return nil
	}
	if len(m.nodes)+len(m.nodes)/2 >= m.limit {
		return nil
	}
	mReorders.Inc()
	startSize, perLevel := m.liveStats(roots)
	// Sift the variables currently sitting at the heaviest levels.
	levels := make([]int32, m.numVars)
	for i := range levels {
		levels[i] = int32(i)
	}
	sort.Slice(levels, func(a, b int) bool { return perLevel[levels[a]] > perLevel[levels[b]] })
	vars := make([]int32, 0, maxSiftVars)
	for _, l := range levels {
		if len(vars) == maxSiftVars || perLevel[l] == 0 {
			break
		}
		vars = append(vars, m.varAt[l])
	}
	for _, v := range vars {
		if err := m.siftVar(v, roots, startSize); err != nil {
			return err
		}
	}
	return nil
}

// siftVar moves variable v through its sifting window and parks it at
// the position with the smallest live size seen.
func (m *Manager) siftVar(v int32, roots []Ref, startSize int) error {
	cur := m.levelOf[v]
	lo := cur - siftWindow
	if lo < 0 {
		lo = 0
	}
	hi := cur + siftWindow
	if hi > int32(m.numVars-1) {
		hi = int32(m.numVars - 1)
	}
	bestPos := cur
	bestSize, _ := m.liveStats(roots)
	// Down first, then back up through the whole window, tracking the
	// best position seen; each direction aborts once growth exceeds cap.
	for m.levelOf[v] < hi {
		if err := m.swapLevels(m.levelOf[v]); err != nil {
			return err
		}
		size, _ := m.liveStats(roots)
		if size < bestSize {
			bestSize, bestPos = size, m.levelOf[v]
		}
		if size > siftGrowthCap*startSize {
			break
		}
	}
	for m.levelOf[v] > lo {
		if err := m.swapLevels(m.levelOf[v] - 1); err != nil {
			return err
		}
		size, _ := m.liveStats(roots)
		if size < bestSize {
			bestSize, bestPos = size, m.levelOf[v]
		}
		if size > siftGrowthCap*startSize {
			break
		}
	}
	// Return to the best position.
	for m.levelOf[v] < bestPos {
		if err := m.swapLevels(m.levelOf[v]); err != nil {
			return err
		}
	}
	for m.levelOf[v] > bestPos {
		if err := m.swapLevels(m.levelOf[v] - 1); err != nil {
			return err
		}
	}
	return nil
}

// CountDifferent returns the number of assignments (over all numVars
// variables) on which f and g evaluate differently — the error-rate
// count #SAT(f XOR g) — by a memoized synchronized descent over the
// node pair instead of materializing the XOR diagram. The pair
// traversal touches O(|f|*|g|) pairs worst case but allocates no new
// nodes, so it cannot trip the node budget the way building the miter
// XOR can.
func (m *Manager) CountDifferent(f, g Ref) *big.Int {
	type pair struct{ a, b Ref }
	memo := make(map[pair]*big.Int)
	full := new(big.Int).Lsh(big.NewInt(1), uint(m.numVars))
	var rec func(a, b Ref) *big.Int
	rec = func(a, b Ref) *big.Int {
		if a == b {
			return big.NewInt(0)
		}
		if a > b {
			a, b = b, a // difference is symmetric: canonicalize the key
		}
		if b <= True {
			return full // a == False, b == True: differ everywhere
		}
		key := pair{a, b}
		if v, ok := memo[key]; ok {
			return v
		}
		top := m.nodes[a].level
		if l := m.nodes[b].level; l < top {
			top = l
		}
		a0, a1 := m.cofactors(a, top)
		b0, b1 := m.cofactors(b, top)
		sum := new(big.Int).Add(rec(a0, b0), rec(a1, b1))
		sum.Rsh(sum, 1)
		memo[key] = sum
		return sum
	}
	return rec(f, g)
}
