// Package bdd implements reduced ordered binary decision diagrams — the
// data structure behind the prior-art average-error verifiers the paper
// compares against ([3] MACACO, [4] ALFANS, [5] Mrazek, [6] ADD-based).
// It exists so the repository can reproduce the paper's footnote-2
// claim: DD-based verification collapses (node-count explosion) far
// below the circuit sizes VACSEM handles.
//
// The implementation is a classic hash-consed ROBDD with an ITE-based
// apply, a computed-table cache, model counting over the diagram, and a
// hard node budget that turns explosion into a clean ErrNodeLimit.
package bdd

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
)

// Metrics of the decision-diagram flow, flushed once per BuildOutputs*
// call (the hot ITE loop itself only bumps plain struct fields).
var (
	mITECalls  = obs.Default.Counter("bdd.ite_calls")
	gNodesPeak = obs.Default.Gauge("bdd.nodes_peak")
)

// ErrNodeLimit is returned when a manager exceeds its node budget — the
// signature failure mode of DD-based verification on large circuits.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Ref is a node reference. 0 is the FALSE terminal, 1 the TRUE terminal.
type Ref = int32

// Terminal references.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level     int32 // variable level (index in the manager's order)
	low, high Ref
}

// Manager owns the node table of one BDD universe. Variables map to
// levels through the varAt/levelOf permutation (identity until dynamic
// reordering runs); level 0 is at the top.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[node]Ref
	iteMemo map[[3]Ref]Ref
	limit   int

	// varAt[l] is the variable tested at level l; levelOf[v] its inverse.
	// Sifting (reorder.go) permutes these; all other code addresses
	// nodes by level, so only Var and Eval consult the maps.
	varAt   []int32
	levelOf []int32

	// Dynamic-reordering state: autoReorder arms the sifting trigger in
	// the build loop, firing at doubling node counts from reorderNext.
	autoReorder bool
	reorderNext int

	ctx   context.Context // cancellation source (nil = none)
	ticks uint32

	// observability state: plain fields (the manager is single-goroutine)
	// flushed to the registry per build. growthNext is the node count at
	// which the next bdd_growth trace event fires (doubling thresholds,
	// so even an exploding build emits only ~log2(limit) events).
	iteCalls    uint64
	iteReported uint64
	span        obs.SpanID
	growthNext  int
}

// New creates a manager for numVars variables with the given node
// budget (0 means the default of 1<<22 nodes).
func New(numVars, limit int) *Manager {
	if limit <= 0 {
		limit = 1 << 22
	}
	m := &Manager{
		numVars:    numVars,
		nodes:      make([]node, 2, 1024),
		unique:     make(map[node]Ref),
		iteMemo:    make(map[[3]Ref]Ref),
		limit:      limit,
		varAt:      make([]int32, numVars),
		levelOf:    make([]int32, numVars),
		growthNext: 1024,
	}
	for i := range m.varAt {
		m.varAt[i] = int32(i)
		m.levelOf[i] = int32(i)
	}
	// Terminals: level = numVars (below all variables).
	m.nodes[False] = node{level: int32(numVars)}
	m.nodes[True] = node{level: int32(numVars)}
	return m
}

// NumNodes returns the live node count (including the two terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// SetContext installs a cancellation source: every ITE apply polls it
// (every few thousand recursion steps) and aborts with the context's
// error. A nil context disables polling.
func (m *Manager) SetContext(ctx context.Context) {
	m.span = obs.SpanFrom(ctx) // parent span for growth events
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // uncancellable context: skip the polling cost
	}
	m.ctx = ctx
}

// ITECalls returns the number of ITE apply invocations (including memo
// hits) since the manager was created.
func (m *Manager) ITECalls() uint64 { return m.iteCalls }

// poll checks the installed context once every 4096 calls. It sits at
// the top of the ITE recursion — the apply hot loop — so cancelling the
// context stops even an exploding diagram build within one interval.
func (m *Manager) poll() error {
	if m.ctx == nil {
		return nil
	}
	m.ticks++
	if m.ticks&4095 == 0 {
		if err := m.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Var returns the BDD of variable i (at whatever level dynamic
// reordering has currently placed it).
func (m *Manager) Var(i int) (Ref, error) {
	if i < 0 || i >= m.numVars {
		return 0, fmt.Errorf("bdd: variable %d out of range", i)
	}
	return m.mk(m.levelOf[i], False, True)
}

// mk hash-conses a node, applying the reduction rules.
func (m *Manager) mk(level int32, low, high Ref) (Ref, error) {
	if low == high {
		return low, nil
	}
	key := node{level: level, low: low, high: high}
	if r, ok := m.unique[key]; ok {
		return r, nil
	}
	if len(m.nodes) >= m.limit {
		return 0, ErrNodeLimit
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	if len(m.nodes) >= m.growthNext {
		m.growthNext *= 2
		if tr := obs.Active(); tr != nil {
			tr.Event(m.span, "bdd_growth", obs.Fields{
				"nodes": len(m.nodes), "ite_calls": m.iteCalls, "limit": m.limit,
			})
		}
	}
	return r, nil
}

// Not returns the complement.
func (m *Manager) Not(f Ref) (Ref, error) { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return 0, err
	}
	return m.ITE(f, ng, g)
}

// ITE computes if-then-else(f, g, h), the universal BDD operation.
func (m *Manager) ITE(f, g, h Ref) (Ref, error) {
	m.iteCalls++
	if err := m.poll(); err != nil {
		return 0, err
	}
	// Terminal cases.
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteMemo[key]; ok {
		return r, nil
	}
	// Split on the topmost variable.
	top := m.nodes[f].level
	if l := m.nodes[g].level; l < top {
		top = l
	}
	if l := m.nodes[h].level; l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	low, err := m.ITE(f0, g0, h0)
	if err != nil {
		return 0, err
	}
	high, err := m.ITE(f1, g1, h1)
	if err != nil {
		return 0, err
	}
	r, err := m.mk(top, low, high)
	if err != nil {
		return 0, err
	}
	m.iteMemo[key] = r
	return r, nil
}

func (m *Manager) cofactors(f Ref, level int32) (Ref, Ref) {
	n := m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.low, n.high
}

// CountOnes returns the number of variable assignments (over all
// numVars variables) on which f evaluates to 1.
func (m *Manager) CountOnes(f Ref) *big.Int {
	memo := make(map[Ref]*big.Int)
	var rec func(r Ref) *big.Int
	rec = func(r Ref) *big.Int {
		if r == False {
			return big.NewInt(0)
		}
		if r == True {
			return new(big.Int).Lsh(big.NewInt(1), uint(m.numVars))
		}
		if v, ok := memo[r]; ok {
			return v
		}
		n := m.nodes[r]
		lo := rec(n.low)
		hi := rec(n.high)
		// Each child count is over the full space; halve per decision.
		sum := new(big.Int).Add(lo, hi)
		sum.Rsh(sum, 1)
		memo[r] = sum
		return sum
	}
	return rec(f)
}

// Eval evaluates f under the assignment (in[i] = value of variable i).
func (m *Manager) Eval(f Ref, in []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if in[m.varAt[n.level]] {
			f = n.high
		} else {
			f = n.low
		}
	}
	return f == True
}

// Size returns the number of nodes reachable from f (excluding
// terminals).
func (m *Manager) Size(f Ref) int {
	seen := map[Ref]bool{}
	var rec func(Ref)
	rec = func(r Ref) {
		if r <= True || seen[r] {
			return
		}
		seen[r] = true
		rec(m.nodes[r].low)
		rec(m.nodes[r].high)
	}
	rec(f)
	return len(seen)
}

// BuildOutputs builds the BDDs of every primary output of the circuit,
// with circuit input i mapped to BDD variable i. It returns ErrNodeLimit
// when the diagram explodes past the manager's budget.
func (m *Manager) BuildOutputs(c *circuit.Circuit) ([]Ref, error) {
	return m.BuildOutputsOrdered(c, nil)
}

// BuildOutputsCtx is BuildOutputsOrdered with cooperative cancellation:
// the apply loop polls ctx and aborts with its error mid-build.
func (m *Manager) BuildOutputsCtx(ctx context.Context, c *circuit.Circuit, pos []int) ([]Ref, error) {
	m.SetContext(ctx)
	defer m.SetContext(nil)
	return m.BuildOutputsOrdered(c, pos)
}

// DFSOrder computes the classic static variable order: inputs in
// first-touch order of a depth-first traversal from the outputs. For
// word-parallel structures (adders, comparators) this interleaves the
// operand bits, which keeps the diagrams polynomial where the plain
// declaration order explodes.
func DFSOrder(c *circuit.Circuit) []int {
	pos := make([]int, c.NumInputs())
	for i := range pos {
		pos[i] = -1
	}
	inputIdx := make(map[int]int, c.NumInputs())
	for i, id := range c.Inputs {
		inputIdx[id] = i
	}
	next := 0
	seen := make([]bool, len(c.Nodes))
	var stack []int
	for j := len(c.Outputs) - 1; j >= 0; j-- {
		stack = append(stack, c.Outputs[j])
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if idx, ok := inputIdx[id]; ok {
			pos[idx] = next
			next++
			continue
		}
		fi := c.Nodes[id].Fanins
		for j := len(fi) - 1; j >= 0; j-- {
			stack = append(stack, fi[j])
		}
	}
	for i := range pos {
		if pos[i] < 0 { // input outside every cone
			pos[i] = next
			next++
		}
	}
	return pos
}

// BuildOutputsOrdered is BuildOutputs with an explicit variable order:
// pos[i] is the BDD variable of circuit input i (nil means declaration
// order).
func (m *Manager) BuildOutputsOrdered(c *circuit.Circuit, pos []int) ([]Ref, error) {
	return m.BuildNodesOrdered(c, pos, c.Outputs)
}

// BuildNodesOrdered builds the BDDs of the given circuit nodes (any
// nodes, not just primary outputs), with circuit input i mapped to BDD
// variable pos[i] (nil means declaration order). Gates outside the
// target cones are skipped. The returned refs parallel ids. When
// EnableAutoReorder is armed, sifting runs between gate lowerings at
// doubling node-count thresholds.
func (m *Manager) BuildNodesOrdered(c *circuit.Circuit, pos []int, ids []int) ([]Ref, error) {
	defer m.flushObs()
	if c.NumInputs() != m.numVars {
		return nil, fmt.Errorf("bdd: circuit has %d inputs, manager %d vars",
			c.NumInputs(), m.numVars)
	}
	if pos != nil && len(pos) != c.NumInputs() {
		return nil, fmt.Errorf("bdd: order has %d entries for %d inputs", len(pos), c.NumInputs())
	}
	refs := make([]Ref, len(c.Nodes))
	built := make([]bool, len(c.Nodes))
	mark := c.ConeMark(ids...)
	for i, id := range c.Inputs {
		v := i
		if pos != nil {
			v = pos[i]
		}
		r, err := m.Var(v)
		if err != nil {
			return nil, err
		}
		refs[id] = r
		built[id] = true
	}
	refs[0] = False
	built[0] = true
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		if m.autoReorder && len(m.nodes) >= m.reorderNext {
			m.reorderNext = len(m.nodes) * 2
			if err := m.Reorder(liveRoots(refs, built)); err != nil {
				return nil, err
			}
		}
		var r Ref
		var err error
		fi := nd.Fanins
		switch nd.Kind {
		case circuit.Buf:
			r = refs[fi[0]]
		case circuit.Not:
			r, err = m.Not(refs[fi[0]])
		case circuit.And:
			r, err = m.And(refs[fi[0]], refs[fi[1]])
		case circuit.Nand:
			r, err = m.And(refs[fi[0]], refs[fi[1]])
			if err == nil {
				r, err = m.Not(r)
			}
		case circuit.Or:
			r, err = m.Or(refs[fi[0]], refs[fi[1]])
		case circuit.Nor:
			r, err = m.Or(refs[fi[0]], refs[fi[1]])
			if err == nil {
				r, err = m.Not(r)
			}
		case circuit.Xor:
			r, err = m.Xor(refs[fi[0]], refs[fi[1]])
		case circuit.Xnor:
			r, err = m.Xor(refs[fi[0]], refs[fi[1]])
			if err == nil {
				r, err = m.Not(r)
			}
		case circuit.Mux:
			r, err = m.ITE(refs[fi[0]], refs[fi[2]], refs[fi[1]])
		case circuit.Maj:
			ab, e1 := m.And(refs[fi[0]], refs[fi[1]])
			if e1 != nil {
				return nil, e1
			}
			ac, e2 := m.And(refs[fi[0]], refs[fi[2]])
			if e2 != nil {
				return nil, e2
			}
			bc, e3 := m.And(refs[fi[1]], refs[fi[2]])
			if e3 != nil {
				return nil, e3
			}
			r, err = m.Or(ab, ac)
			if err == nil {
				r, err = m.Or(r, bc)
			}
		default:
			return nil, fmt.Errorf("bdd: unsupported kind %v", nd.Kind)
		}
		if err != nil {
			return nil, err
		}
		refs[id] = r
		built[id] = true
	}
	outs := make([]Ref, len(ids))
	for j, o := range ids {
		outs[j] = refs[o]
	}
	return outs, nil
}

// liveRoots gathers every ref built so far: partial results still feed
// later gate lowerings, so all of them anchor the live-size metric the
// sifter optimizes (and none may change function during a swap).
func liveRoots(refs []Ref, built []bool) []Ref {
	roots := make([]Ref, 0, len(refs))
	for id, ok := range built {
		if ok && refs[id] > True {
			roots = append(roots, refs[id])
		}
	}
	return roots
}

// flushObs pushes the ITE-call delta since the previous flush and the
// node high-water mark into the default metrics registry.
func (m *Manager) flushObs() {
	mITECalls.Add(m.iteCalls - m.iteReported)
	m.iteReported = m.iteCalls
	gNodesPeak.SetMax(int64(len(m.nodes)))
}
