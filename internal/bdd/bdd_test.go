package bdd

import (
	"math/big"
	"testing"

	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func mustVar(t *testing.T, m *Manager, i int) Ref {
	t.Helper()
	v, err := m.Var(i)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestTerminalsAndVar(t *testing.T) {
	m := New(3, 0)
	a := mustVar(t, m, 0)
	if m.Eval(a, []bool{true, false, false}) != true {
		t.Error("var eval wrong")
	}
	if m.Eval(a, []bool{false, true, true}) != false {
		t.Error("var eval wrong")
	}
	if _, err := m.Var(5); err == nil {
		t.Error("out-of-range var accepted")
	}
	if m.Eval(True, nil) != true || m.Eval(False, nil) != false {
		t.Error("terminal eval wrong")
	}
}

func TestBasicOps(t *testing.T) {
	m := New(2, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	and, _ := m.And(a, b)
	or, _ := m.Or(a, b)
	xor, _ := m.Xor(a, b)
	na, _ := m.Not(a)
	for x := 0; x < 4; x++ {
		in := []bool{x&1 == 1, x>>1&1 == 1}
		if m.Eval(and, in) != (in[0] && in[1]) {
			t.Error("and wrong")
		}
		if m.Eval(or, in) != (in[0] || in[1]) {
			t.Error("or wrong")
		}
		if m.Eval(xor, in) != (in[0] != in[1]) {
			t.Error("xor wrong")
		}
		if m.Eval(na, in) != !in[0] {
			t.Error("not wrong")
		}
	}
}

func TestCanonicity(t *testing.T) {
	// Same function built two ways must give the identical reference.
	m := New(3, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	ab, _ := m.And(a, b)
	ba, _ := m.And(b, a)
	if ab != ba {
		t.Error("AND not canonical")
	}
	// De Morgan: ~(a&b) == ~a | ~b
	nab, _ := m.Not(ab)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	dm, _ := m.Or(na, nb)
	if nab != dm {
		t.Error("De Morgan violated (non-canonical)")
	}
	// x XOR x == False
	xx, _ := m.Xor(a, a)
	if xx != False {
		t.Error("x^x != False")
	}
}

func TestCountOnes(t *testing.T) {
	m := New(4, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	and, _ := m.And(a, b)
	// a&b over 4 vars: 1/4 of 16 = 4.
	if got := m.CountOnes(and); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("count(a&b) = %v, want 4", got)
	}
	if got := m.CountOnes(True); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("count(true) = %v", got)
	}
	if got := m.CountOnes(False); got.Sign() != 0 {
		t.Errorf("count(false) = %v", got)
	}
	xor, _ := m.Xor(a, b)
	if got := m.CountOnes(xor); got.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("count(a^b) = %v, want 8", got)
	}
}

// TestBuildOutputsMatchesBrute: BDD counts equal brute-force pattern
// counts on random circuits — the BDD analogue of the counter's core
// soundness test.
func TestBuildOutputsMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := testutil.RandomCircuit(3+int(seed%6), 5+int(seed*3%30), 3, seed+900)
		m := New(c.NumInputs(), 0)
		outs, err := m.BuildOutputs(c)
		if err != nil {
			t.Fatal(err)
		}
		want := testutil.CountOnesBrute(c)
		for j, f := range outs {
			if got := m.CountOnes(f); got.Cmp(new(big.Int).SetUint64(want[j])) != 0 {
				t.Fatalf("seed %d out %d: bdd %v, brute %d", seed, j, got, want[j])
			}
		}
	}
}

func TestBuildAdder(t *testing.T) {
	c := gen.RippleCarryAdder(8)
	m := New(c.NumInputs(), 0)
	outs, err := m.BuildOutputs(c)
	if err != nil {
		t.Fatal(err)
	}
	// Sum bit j has P(1) = 1/2 => count 2^15 for all but the carry-out.
	half := new(big.Int).Lsh(big.NewInt(1), 15)
	for j := 0; j < 8; j++ {
		if got := m.CountOnes(outs[j]); got.Cmp(half) != 0 {
			t.Errorf("adder bit %d count = %v, want %v", j, got, half)
		}
	}
	// Adder BDDs stay linear in width under the natural interleaved-ish
	// order? With a..a b..b order they are linear in n too.
	if m.NumNodes() > 4000 {
		t.Errorf("adder8 BDD suspiciously large: %d nodes", m.NumNodes())
	}
}

func TestNodeLimit(t *testing.T) {
	// A multiplier's middle product bits explode; a tiny limit must trip
	// cleanly even on mult4.
	c := gen.ArrayMultiplier(4)
	m := New(c.NumInputs(), 40)
	if _, err := m.BuildOutputs(c); err != ErrNodeLimit {
		t.Errorf("expected ErrNodeLimit, got %v", err)
	}
}

func TestSize(t *testing.T) {
	m := New(3, 0)
	a := mustVar(t, m, 0)
	b := mustVar(t, m, 1)
	c := mustVar(t, m, 2)
	maj, _ := m.And(a, b)
	t2, _ := m.And(a, c)
	maj, _ = m.Or(maj, t2)
	t3, _ := m.And(b, c)
	maj, _ = m.Or(maj, t3)
	if s := m.Size(maj); s < 3 || s > 6 {
		t.Errorf("maj size = %d", s)
	}
	if m.Size(True) != 0 {
		t.Error("terminal size must be 0")
	}
}

func TestInputCountMismatch(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	m := New(3, 0)
	if _, err := m.BuildOutputs(c); err == nil {
		t.Error("input-count mismatch accepted")
	}
}
