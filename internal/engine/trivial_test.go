package engine_test

import (
	"context"
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/engine"
)

// trivialRequest wraps a single hand-built sub-miter cone in a request
// whose session miter has totalInputs inputs, the situation the plan
// layer produces when a cone only touches a subset of the session's
// inputs.
func trivialRequest(t *testing.T, sub *circuit.Circuit, totalInputs int) *engine.Request {
	t.Helper()
	m := circuit.New("session")
	ins := make([]int, totalInputs)
	for i := range ins {
		ins[i] = m.AddInput("")
	}
	roots := circuit.Append(m, sub, ins[:sub.NumInputs()])
	m.AddOutput(roots[0], "f")
	return &engine.Request{
		Session: "trivial",
		Miter:   m,
		Tasks:   []engine.CountTask{{Sub: sub, Label: "trivial/f"}},
	}
}

// TestTrivialFastPaths pins the counting backends' constant-time
// recognitions: a cone whose output is const0, const1 (via NOT of
// const0), a bare input, or the negation of an input never reaches the
// CNF encoder, and the count scales by the session inputs the cone does
// not touch.
func TestTrivialFastPaths(t *testing.T) {
	const totalInputs = 6
	pow := func(k int) *big.Int { return new(big.Int).Lsh(big.NewInt(1), uint(k)) }

	cases := []struct {
		name  string
		build func() *circuit.Circuit
		want  *big.Int
	}{
		{
			// Output wired to the constant-false node (id 0): count 0.
			name: "const0",
			build: func() *circuit.Circuit {
				c := circuit.New("c0")
				c.AddInput("x")
				c.AddOutput(0, "f")
				return c
			},
			want: big.NewInt(0),
		},
		{
			// NOT(const0) is constant true over every assignment.
			name: "const1",
			build: func() *circuit.Circuit {
				c := circuit.New("c1")
				c.AddInput("x")
				c.AddOutput(c.Const1(), "f")
				return c
			},
			want: pow(totalInputs),
		},
		{
			// A bare input is true on half of all assignments.
			name: "input",
			build: func() *circuit.Circuit {
				c := circuit.New("in")
				x := c.AddInput("x")
				c.AddOutput(x, "f")
				return c
			},
			want: pow(totalInputs - 1),
		},
		{
			// NOT(input) is the complement: also half of all assignments.
			name: "not_input",
			build: func() *circuit.Circuit {
				c := circuit.New("notin")
				x := c.AddInput("x")
				c.AddOutput(c.AddGate(circuit.Not, x), "f")
				return c
			},
			want: pow(totalInputs - 1),
		},
	}
	for _, backend := range []string{"vacsem", "dpll"} {
		b, err := engine.Lookup(backend)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				req := trivialRequest(t, tc.build(), totalInputs)
				results, err := b.Execute(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				res := results[0]
				if !res.Trivial {
					t.Errorf("cone not recognized as trivial")
				}
				if res.Count.Cmp(tc.want) != 0 {
					t.Errorf("count = %v, want %v", res.Count, tc.want)
				}
			})
		}
	}
}
