package engine

import (
	"context"
	"math/big"
	"time"

	"vacsem/internal/obs"
	"vacsem/internal/sim"
)

// enumBackend verifies by exhaustive word-parallel logic simulation of
// the session miter over all 2^I input patterns — the paper's
// enumeration baseline. The miter is compiled once to an instruction
// tape and the pattern-block range split across Config.SimWorkers
// goroutines (<= 0: GOMAXPROCS); one pass produces every task's
// one-count, so a multi-metric session costs a single sweep of the
// shared structure instead of one sweep per metric. Cancellation
// happens inside the kernel's block loop, polled per work chunk sized
// by tape length.
type enumBackend struct{}

func (enumBackend) Name() string { return "enum" }

func (enumBackend) Execute(ctx context.Context, req *Request) ([]TaskResult, error) {
	m := req.Miter
	if m.NumInputs() > 62 {
		return nil, ErrTooLarge
	}
	// One simulation pass covers every task, so the enumeration work
	// lives on the backend span; the per-task sub_miter spans below
	// only mark the (instant) result extraction, keeping the stream
	// schema uniform across backends.
	tr := obs.Active()
	var beSpan obs.SpanID
	if tr != nil {
		beSpan = tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": "enum", "session": req.Session,
			"tasks": len(req.Tasks), "inputs": m.NumInputs(),
			"sim_workers": req.Config.SimWorkers,
		})
		ctx = obs.WithSpan(ctx, beSpan)
		defer tr.EndSpan(beSpan, "backend", nil)
	}
	start := time.Now()
	counts, err := sim.CountOnesPerOutputWorkers(ctx, m, req.Config.SimWorkers)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	results := make([]TaskResult, len(req.Tasks))
	for j := range req.Tasks {
		res := TaskResult{Count: new(big.Int).SetUint64(counts[j])}
		results[j] = res
		if tr != nil {
			span := tr.StartSpan(beSpan, "sub_miter", obs.Fields{
				"backend": "enum", "index": j, "output": req.Tasks[j].Label,
			})
			tr.EndSpan(span, "sub_miter", obs.Fields{
				"index": j, "output": req.Tasks[j].Label,
				"count": res.Count.String(), "stats": res.Stats,
			})
		}
		if req.Progress != nil {
			req.Progress(TaskEvent{
				Backend: "enum",
				Index:   j, Label: req.Tasks[j].Label,
				Count: res.Count,
				Done:  j + 1, Total: len(req.Tasks),
				Runtime: elapsed,
			})
		}
	}
	return results, nil
}
