package engine

import (
	"context"
	"math/big"
	"time"

	"vacsem/internal/obs"
	"vacsem/internal/sim"
)

// enumBackend verifies by exhaustive word-parallel logic simulation of
// the miter over all 2^I input patterns — the paper's enumeration
// baseline. The miter is compiled once to an instruction tape and the
// pattern-block range split across Config.SimWorkers goroutines (<= 0:
// GOMAXPROCS); one pass produces every output's one-count, so there is
// no per-sub-miter fan-out. Cancellation happens inside the kernel's
// block loop, polled per work chunk sized by tape length.
type enumBackend struct{}

func (enumBackend) Name() string { return "enum" }

func (enumBackend) Solve(ctx context.Context, t *Task) (*Outcome, error) {
	m := t.Miter
	if m.NumInputs() > 62 {
		return nil, ErrTooLarge
	}
	// One simulation pass covers every output, so the enumeration work
	// lives on the backend span; the per-output sub_miter spans below
	// only mark the (instant) result extraction, keeping the stream
	// schema uniform across backends.
	tr := obs.Active()
	var beSpan obs.SpanID
	if tr != nil {
		beSpan = tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": "enum", "metric": t.Metric,
			"subs": m.NumOutputs(), "inputs": m.NumInputs(),
			"sim_workers": t.Config.SimWorkers,
		})
		ctx = obs.WithSpan(ctx, beSpan)
		defer tr.EndSpan(beSpan, "backend", nil)
	}
	start := time.Now()
	counts, err := sim.CountOnesPerOutputWorkers(ctx, m, t.Config.SimWorkers)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	out := &Outcome{Count: new(big.Int), Subs: make([]SubResult, len(counts))}
	var weighted big.Int
	for j, cnt := range counts {
		sr := SubResult{
			Output: m.OutputName(j),
			Count:  new(big.Int).SetUint64(cnt),
			Weight: t.Weights[j],
		}
		out.Subs[j] = sr
		if tr != nil {
			span := tr.StartSpan(beSpan, "sub_miter", obs.Fields{
				"backend": "enum", "index": j, "output": sr.Output,
			})
			tr.EndSpan(span, "sub_miter", obs.Fields{
				"index": j, "output": sr.Output,
				"count": sr.Count.String(), "stats": sr.Stats,
			})
		}
		weighted.Mul(sr.Count, sr.Weight)
		out.Count.Add(out.Count, &weighted)
		if t.Progress != nil {
			t.Progress(ProgressEvent{
				Metric: t.Metric, Backend: "enum",
				Index: j, Output: sr.Output,
				Count: sr.Count, Weight: sr.Weight,
				Done: j + 1, Total: len(counts),
				Runtime: elapsed,
			})
		}
	}
	return out, nil
}
