package engine

import (
	"context"
	"math/big"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
)

// bddBackend verifies through decision diagrams: synthesize the miter,
// build one ROBDD per deviation bit, and count over the diagrams — the
// prior-art flow of the paper's references [3]-[6]. Explosion surfaces
// as bdd.ErrNodeLimit; cancellation is polled inside the ITE apply
// loop.
type bddBackend struct{}

func (bddBackend) Name() string { return "bdd" }

func (bddBackend) Solve(ctx context.Context, t *Task) (*Outcome, error) {
	// The apply loop's poll is tick-based; check once up front so an
	// already-ended context never starts a build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	work := t.Miter
	if !t.Config.NoSynth {
		work = synth.Compress(work)
	}
	tr := obs.Active()
	var beSpan obs.SpanID
	if tr != nil {
		beSpan = tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": "bdd", "metric": t.Metric,
			"subs": work.NumOutputs(), "inputs": work.NumInputs(),
			"node_limit": t.Config.BDDNodeLimit,
		})
		ctx = obs.WithSpan(ctx, beSpan) // bdd_growth events parent here
		defer tr.EndSpan(beSpan, "backend", nil)
	}
	start := time.Now()
	mgr := bdd.New(work.NumInputs(), t.Config.BDDNodeLimit)
	outs, err := mgr.BuildOutputsCtx(ctx, work, bdd.DFSOrder(work))
	if err != nil {
		return nil, err
	}
	out := &Outcome{Count: new(big.Int), Subs: make([]SubResult, len(outs))}
	var weighted big.Int
	for j, f := range outs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var span obs.SpanID
		if tr != nil {
			span = tr.StartSpan(beSpan, "sub_miter", obs.Fields{
				"backend": "bdd", "index": j, "output": t.Miter.OutputName(j),
			})
		}
		sr := SubResult{
			Output: t.Miter.OutputName(j),
			Count:  mgr.CountOnes(f),
			Weight: t.Weights[j],
		}
		out.Subs[j] = sr
		if tr != nil {
			tr.EndSpan(span, "sub_miter", obs.Fields{
				"index": j, "output": sr.Output, "bdd_size": mgr.Size(f),
				"count": sr.Count.String(), "stats": sr.Stats,
			})
		}
		weighted.Mul(sr.Count, sr.Weight)
		out.Count.Add(out.Count, &weighted)
		if t.Progress != nil {
			t.Progress(ProgressEvent{
				Metric: t.Metric, Backend: "bdd",
				Index: j, Output: sr.Output,
				Count: sr.Count, Weight: sr.Weight,
				Done: j + 1, Total: len(outs),
				Runtime: time.Since(start),
			})
		}
	}
	return out, nil
}
