package engine

import (
	"context"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
)

// bddBackend verifies through decision diagrams: synthesize the session
// miter, build one ROBDD per task bit, and count over the diagrams —
// the prior-art flow of the paper's references [3]-[6]. One manager is
// shared across every task (and therefore every metric of the session),
// so structurally shared deviation logic is built once. Explosion
// surfaces as bdd.ErrNodeLimit; cancellation is polled inside the ITE
// apply loop.
type bddBackend struct{}

func (bddBackend) Name() string { return "bdd" }

func (bddBackend) Execute(ctx context.Context, req *Request) ([]TaskResult, error) {
	// The apply loop's poll is tick-based; check once up front so an
	// already-ended context never starts a build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	work := req.Miter
	if !req.Config.NoSynth {
		work = synth.Compress(work)
	}
	tr := obs.Active()
	var beSpan obs.SpanID
	if tr != nil {
		beSpan = tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": "bdd", "session": req.Session,
			"tasks": len(req.Tasks), "inputs": work.NumInputs(),
			"node_limit": req.Config.BDDNodeLimit,
		})
		ctx = obs.WithSpan(ctx, beSpan) // bdd_growth events parent here
		defer tr.EndSpan(beSpan, "backend", nil)
	}
	start := time.Now()
	mgr := bdd.New(work.NumInputs(), req.Config.BDDNodeLimit)
	outs, err := mgr.BuildOutputsCtx(ctx, work, bdd.DFSOrder(work))
	if err != nil {
		return nil, err
	}
	results := make([]TaskResult, len(req.Tasks))
	for j, f := range outs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var span obs.SpanID
		if tr != nil {
			span = tr.StartSpan(beSpan, "sub_miter", obs.Fields{
				"backend": "bdd", "index": j, "output": req.Tasks[j].Label,
			})
		}
		res := TaskResult{Count: mgr.CountOnes(f)}
		results[j] = res
		if tr != nil {
			tr.EndSpan(span, "sub_miter", obs.Fields{
				"index": j, "output": req.Tasks[j].Label, "bdd_size": mgr.Size(f),
				"count": res.Count.String(), "stats": res.Stats,
			})
		}
		if req.Progress != nil {
			req.Progress(TaskEvent{
				Backend: "bdd",
				Index:   j, Label: req.Tasks[j].Label,
				Count: res.Count,
				Done:  j + 1, Total: len(req.Tasks),
				Runtime: time.Since(start),
			})
		}
	}
	return results, nil
}
