package engine

import (
	"context"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/circuit"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
)

// bddBackend verifies through decision diagrams: synthesize the session
// miter, build one ROBDD per task bit, and count over the diagrams —
// the prior-art flow of the paper's references [3]-[6]. One manager is
// shared across every task (and therefore every metric of the session),
// so structurally shared deviation logic is built once. Explosion
// surfaces as bdd.ErrNodeLimit; cancellation is polled inside the ITE
// apply loop.
type bddBackend struct{}

func (bddBackend) Name() string { return "bdd" }

func (bddBackend) Execute(ctx context.Context, req *Request) ([]TaskResult, error) {
	// The apply loop's poll is tick-based; check once up front so an
	// already-ended context never starts a build.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	work := req.Miter
	if !req.Config.NoSynth {
		work = synth.Compress(work)
	}
	tr := obs.Active()
	var beSpan obs.SpanID
	if tr != nil {
		beSpan = tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": "bdd", "session": req.Session,
			"tasks": len(req.Tasks), "inputs": work.NumInputs(),
			"node_limit": req.Config.BDDNodeLimit,
		})
		ctx = obs.WithSpan(ctx, beSpan) // bdd_growth events parent here
		defer tr.EndSpan(beSpan, "backend", nil)
	}
	start := time.Now()
	mgr := bdd.New(work.NumInputs(), req.Config.BDDNodeLimit)
	if req.Config.BDDReorder {
		mgr.EnableAutoReorder()
	}
	// XOR-rooted task outputs (the ER/Hamming deviation bits: exact XOR
	// approx) are counted by the pair traversal over their two fanin
	// diagrams instead of materializing the XOR — the XOR of two large
	// diagrams is routinely bigger than both, and is exactly where
	// fixed-order BDD flows blow their node budget.
	targets := make([]int, 0, len(work.Outputs)) // node ids to build
	targetAt := make([]int, len(work.Outputs))   // task -> index in targets
	pairTask := make([]bool, len(work.Outputs))  // task counted as a pair?
	for j, o := range work.Outputs {
		nd := &work.Nodes[o]
		if nd.Kind == circuit.Xor {
			targetAt[j] = len(targets)
			pairTask[j] = true
			targets = append(targets, nd.Fanins[0], nd.Fanins[1])
			continue
		}
		targetAt[j] = len(targets)
		targets = append(targets, o)
	}
	mgr.SetContext(ctx)
	refs, err := mgr.BuildNodesOrdered(work, bdd.DFSOrder(work), targets)
	mgr.SetContext(nil)
	if err != nil {
		return nil, err
	}
	results := make([]TaskResult, len(req.Tasks))
	for j := range req.Tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var span obs.SpanID
		if tr != nil {
			span = tr.StartSpan(beSpan, "sub_miter", obs.Fields{
				"backend": "bdd", "index": j, "output": req.Tasks[j].Label,
			})
		}
		var res TaskResult
		var size int
		if pairTask[j] {
			fa, fb := refs[targetAt[j]], refs[targetAt[j]+1]
			res = TaskResult{Count: mgr.CountDifferent(fa, fb)}
			size = mgr.Size(fa) + mgr.Size(fb)
		} else {
			f := refs[targetAt[j]]
			res = TaskResult{Count: mgr.CountOnes(f)}
			size = mgr.Size(f)
		}
		results[j] = res
		if tr != nil {
			tr.EndSpan(span, "sub_miter", obs.Fields{
				"index": j, "output": req.Tasks[j].Label, "bdd_size": size,
				"count": res.Count.String(), "stats": res.Stats,
			})
		}
		if req.Progress != nil {
			req.Progress(TaskEvent{
				Backend: "bdd",
				Index:   j, Label: req.Tasks[j].Label,
				Count: res.Count,
				Done:  j + 1, Total: len(req.Tasks),
				Runtime: time.Since(start),
			})
		}
	}
	return results, nil
}
