package engine

import (
	"context"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/counter"
	"vacsem/internal/obs"
	"vacsem/internal/store"
)

// Per-task metrics, updated once per solved task (sub-miter).
var (
	mSubMiters   = obs.Default.Counter("engine.sub_miters")
	mSubTrivial  = obs.Default.Counter("engine.sub_miters_trivial")
	hSubSeconds  = obs.Default.Histogram("engine.sub_miter_seconds", nil)
	hSynthReduce = obs.Default.Histogram("engine.synth_node_ratio",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
)

// countingBackend runs the #SAT flow of the paper: each task is one
// single-output sub-miter (Phase 1's split, performed by the plan
// layer) handed to the model counter (Phase 2). With enableSim it is
// the VACSEM engine; without, the plain-DPLL baseline (the GANAK role).
// With approx it is the (ε, δ) backend: each task's count is estimated
// by XOR streamlining (counter.ApproxCount) instead of counted exactly.
//
// Tasks are independent #SAT problems, so the backend solves them on a
// bounded worker pool (Config.Workers). Each worker builds its own
// Solver, so counts are bit-identical to the sequential run (the approx
// backend derives its hash rows purely from Config.Seed and each row's
// position, so its estimates are equally order-independent); results
// are collected by task index, making the result slice deterministic
// regardless of completion order.
type countingBackend struct {
	name      string
	enableSim bool
	approx    bool
}

func (b *countingBackend) Name() string { return b.name }

func (b *countingBackend) Execute(ctx context.Context, req *Request) ([]TaskResult, error) {
	results := make([]TaskResult, len(req.Tasks))

	// One shared component-count cache for the whole session: the tasks
	// embed the same two circuit copies and subtractor — across every
	// requested metric — so canonical residual components recur and a
	// count solved inside one task is reused by the rest. Owner tags
	// (index+1) let the cache distinguish cross-task hits from
	// same-solver hits.
	// A cross-request store supersedes the per-session cache: its
	// component tier plays the shared-cache role with a process-long
	// lifetime, so residual components transfer across sessions too.
	var cache *counter.Cache
	switch {
	case req.Config.DisableCache:
	case req.Config.Store != nil:
		cache = req.Config.Store.Components()
	case req.Config.SharedCache:
		cache = counter.NewCache(0, 0)
	}
	// One shared probe cache for the approx backend: hash rows depend
	// only on the session seed and the row position, so structurally
	// identical sub-miters (same encoded CNF content) draw identical
	// rows and their boundary probes collide here — each cell is counted
	// once per session instead of once per task. Sharing never changes
	// an estimate.
	var probes *counter.ProbeCache
	if b.approx {
		probes = counter.NewProbeCache(0)
	}

	workers := req.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Tasks) {
		workers = len(req.Tasks)
	}
	if workers < 1 {
		workers = 1
	}

	// Backend span: parents every sub_miter span (and, through the
	// context, the counter's component/cache/sim_decision events).
	tr := obs.Active()
	if tr != nil {
		beSpan := tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": b.name, "session": req.Session,
			"tasks": len(req.Tasks), "workers": workers,
		})
		ctx = obs.WithSpan(ctx, beSpan)
		defer tr.EndSpan(beSpan, "backend", nil)
	}

	// The pool: workers claim task indexes from an atomic cursor. The
	// first error cancels the group's context, and every in-flight
	// solver notices within one poll interval.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor    atomic.Int64
		completed atomic.Int64
		firstErr  error
		errOnce   sync.Once
		progMu    sync.Mutex
		doneN     int // completed tasks, guarded by progMu
		wg        sync.WaitGroup
	)
	cursor.Store(-1)
	solve := func() {
		defer wg.Done()
		for {
			j := int(cursor.Add(1))
			if j >= len(req.Tasks) || gctx.Err() != nil {
				return
			}
			tres, err := b.solveTask(gctx, req, j, cache, probes)
			results[j] = tres
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				cancel()
				return
			}
			completed.Add(1)
			if req.Progress != nil {
				progMu.Lock()
				doneN++
				req.Progress(TaskEvent{
					Backend: b.name,
					Index:   j, Label: req.Tasks[j].Label,
					Count: tres.Count,
					Done:  doneN, Total: len(req.Tasks),
					Runtime: tres.Runtime, Stats: tres.Stats, Trivial: tres.Trivial,
					Approx: tres.Approx, FromStore: tres.FromStore,
				})
				progMu.Unlock()
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go solve()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A worker can also stop on the parent context without recording an
	// error (it observed gctx.Err() between tasks) — but only a context
	// that actually left tasks unsolved may surface here. The approx
	// backend completes a task *because* the deadline expired (a
	// best-effort median over the rounds that ran), so a full result set
	// must be returned even when ctx has since expired: checking
	// ctx.Err() unconditionally would discard every best-effort result.
	if int(completed.Load()) != len(req.Tasks) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// solveTask runs Phase 2 on one prepared single-output sub-miter. The
// sub_miter trace span and the per-task metrics cover every exit path
// (trivial, encode error, counter error, success).
func (b *countingBackend) solveTask(ctx context.Context, req *Request, j int, cache *counter.Cache, probes *counter.ProbeCache) (res TaskResult, err error) {
	t := &req.Tasks[j]
	start := time.Now()
	res = TaskResult{Count: new(big.Int)}
	runID := obs.RunFrom(ctx)
	if obs.Stream.Active() {
		obs.Stream.Publish("task_start", obs.Fields{
			"run_id": runID, "backend": b.name,
			"index": j, "label": t.Label, "nodes_before": t.NodesBefore,
		})
	}
	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "sub_miter", obs.Fields{
			"backend": b.name, "index": j, "output": t.Label,
			"nodes_before": t.NodesBefore,
		})
		ctx = obs.WithSpan(ctx, span)
	}
	defer func() {
		res.Runtime = time.Since(start)
		mSubMiters.Inc()
		if res.Trivial {
			mSubTrivial.Inc()
		}
		hSubSeconds.Observe(res.Runtime.Seconds())
		if obs.Stream.Active() {
			f := obs.Fields{
				"run_id": runID, "backend": b.name,
				"index": j, "label": t.Label,
				"count": res.Count.String(), "seconds": res.Runtime.Seconds(),
				"trivial": res.Trivial, "from_store": res.FromStore,
			}
			if err != nil {
				f["error"] = err.Error()
			}
			obs.Stream.Publish("task_done", f)
		}
		if tr != nil {
			f := obs.Fields{
				"index": j, "output": t.Label,
				"nodes_after": t.NodesAfter, "trivial": res.Trivial,
				"count": res.Count.String(), "stats": res.Stats,
			}
			if err != nil {
				f["error"] = err.Error()
			}
			tr.EndSpan(span, "sub_miter", f)
		}
	}()
	if t.NodesBefore > 0 {
		hSynthReduce.Observe(float64(t.NodesAfter) / float64(t.NodesBefore))
	}
	sub := t.Sub
	totalInputs := req.Miter.NumInputs()
	// Trivial outcomes after constant propagation.
	out := sub.Outputs[0]
	nd := &sub.Nodes[out]
	switch {
	case out == 0:
		res.Trivial = true
	case nd.Kind == circuit.Not && nd.Fanins[0] == 0:
		res.Count.Lsh(big.NewInt(1), uint(totalInputs))
		res.Trivial = true
	case nd.Kind == circuit.Input:
		// Output is a bare input: exactly half the patterns.
		res.Count.Lsh(big.NewInt(1), uint(totalInputs-1))
		res.Trivial = true
	case nd.Kind == circuit.Not && sub.Nodes[nd.Fanins[0]].Kind == circuit.Input:
		// Output is a negated input: also exactly half the patterns.
		res.Count.Lsh(big.NewInt(1), uint(totalInputs-1))
		res.Trivial = true
	default:
		// Cross-request reuse: consult the store's cone tier by the
		// task's canonical key before paying for encode + solve. The key
		// is an exact content address, so a compatible hit IS the count
		// this solver would produce (bit-identical for exact backends).
		if e, ok := b.storeLookup(req, t, totalInputs); ok {
			res.Count.Lsh(e.Count, uint(totalInputs-t.KeyInputs))
			res.FromStore = true
			if !e.Exact {
				res.Approx = true
				res.Epsilon = e.Epsilon
				res.Delta = e.Delta
				res.BestEffort = e.BestEffort
			}
			return res, nil
		}
		var f *cnf.Formula
		f, err = cnf.Encode(sub)
		if err != nil {
			return res, err
		}
		solverCfg := counter.Config{
			EnableSim:       b.enableSim,
			Alpha:           req.Config.Alpha,
			MaxSimVars:      req.Config.MaxSimVars,
			MinSimGates:     req.Config.MinSimGates,
			DisableCache:    req.Config.DisableCache,
			DisableIBCP:     req.Config.DisableIBCP,
			DisableLearning: req.Config.DisableLearning,
			Cache:           cache,
			CacheOwner:      int32(j) + 1,
		}
		var cnt *big.Int
		if b.approx {
			cnt, err = b.approxTask(ctx, req, f, solverCfg, probes, &res)
		} else {
			s := counter.New(f, solverCfg)
			cnt, err = s.CountCtx(ctx)
			res.Stats = s.Stats()
		}
		if err != nil {
			// Propagate verbatim: context errors, encode errors and any
			// future counter failure all keep their identity (the old
			// flow conflated everything into a timeout).
			return res, err
		}
		// Scale by inputs outside the encoded cone. The approx estimate
		// scales the same way: the un-encoded inputs are free, so the
		// relative (1+ε) band is preserved by the power-of-two factor.
		extra := totalInputs - f.NumEncodedInputs()
		res.Count.Lsh(cnt, uint(extra))
		b.storeRecord(req, t, totalInputs, &res)
	}
	return res, nil
}

// Approx guarantee defaults, mirroring counter.ApproxConfig's zero-value
// resolution — the store compares guarantees literally, so both lookup
// and record must present the resolved (ε, δ).
const (
	defaultApproxEpsilon = 0.8
	defaultApproxDelta   = 0.2
)

// storeGuarantee is the resolved guarantee this backend's counts carry:
// exact for the exact backends, the session's resolved (ε, δ) for the
// approx backend.
func (b *countingBackend) storeGuarantee(cfg *Config) store.Req {
	if !b.approx {
		return store.Req{Exact: true}
	}
	eps, delta := cfg.Epsilon, cfg.Delta
	if eps <= 0 {
		eps = defaultApproxEpsilon
	}
	if delta <= 0 {
		delta = defaultApproxDelta
	}
	return store.Req{Epsilon: eps, Delta: delta}
}

// storeLookup consults the cross-request cone tier for task t. Only
// plan-built tasks carry a key; requests without a store (or with
// caching disabled) skip the tier entirely.
func (b *countingBackend) storeLookup(req *Request, t *CountTask, totalInputs int) (*store.ConeEntry, bool) {
	st := req.Config.Store
	if st == nil || req.Config.DisableCache || t.Key == "" ||
		t.KeyInputs < 0 || t.KeyInputs > totalInputs {
		return nil, false
	}
	return st.LookupCone(t.Key, b.storeGuarantee(&req.Config))
}

// storeRecord publishes a freshly solved count to the cone tier,
// normalized to the cone's own 2^KeyInputs space so any later session —
// whatever its total input count — can rescale it exactly. res.Count
// is cnt << (totalInputs - encodedInputs) and the key pins
// encodedInputs ≤ KeyInputs ≤ totalInputs, so the normalization is an
// exact right shift; the round-trip check below makes that assumption
// load-bearing rather than silent (a lossy shift would poison every
// later request sharing the key).
func (b *countingBackend) storeRecord(req *Request, t *CountTask, totalInputs int, res *TaskResult) {
	st := req.Config.Store
	if st == nil || req.Config.DisableCache || t.Key == "" ||
		t.KeyInputs < 0 || t.KeyInputs > totalInputs {
		return
	}
	shift := uint(totalInputs - t.KeyInputs)
	stored := new(big.Int).Rsh(res.Count, shift)
	if new(big.Int).Lsh(stored, shift).Cmp(res.Count) != 0 {
		return
	}
	e := store.ConeEntry{
		Count:   stored,
		Inputs:  t.KeyInputs,
		Backend: b.name,
	}
	if res.Approx {
		e.Epsilon = res.Epsilon
		e.Delta = res.Delta
		e.Seed = req.Config.Seed
		e.BestEffort = res.BestEffort
	} else {
		e.Exact = true
	}
	st.StoreCone(t.Key, e)
}

// approxTask estimates one task's count with counter.ApproxCount. The
// hash support is the sub-miter's encoded primary inputs — a Tseitin
// formula's models are determined by its input projection, so the input
// set is an independent support and hashing over it is sound (and far
// cheaper than hashing over all gate variables). Every task draws its
// rows from the session seed alone, never from the task index or worker
// identity: content-identical tasks therefore draw identical rows and
// share probe outcomes through the session probe cache. (Estimates of
// sibling tasks become correlated; the core layer's confidence
// aggregation uses the union bound, which is valid under arbitrary
// correlation.)
func (b *countingBackend) approxTask(ctx context.Context, req *Request, f *cnf.Formula, solverCfg counter.Config, probes *counter.ProbeCache, res *TaskResult) (*big.Int, error) {
	var inputs []int32
	for _, id := range f.Circ.Inputs {
		if v := f.VarOfNode[id]; v != 0 {
			inputs = append(inputs, v)
		}
	}
	ar, err := counter.ApproxCount(ctx, f, counter.ApproxConfig{
		Epsilon:      req.Config.Epsilon,
		Delta:        req.Config.Delta,
		Seed:         req.Config.Seed,
		Sampling:     inputs,
		HashDensity:  req.Config.HashDensity,
		NoSupportMin: req.Config.NoSupportMin,
		Bisect:       req.Config.ApproxBisect,
		Probes:       probes,
		Solver:       solverCfg,
	})
	if err != nil {
		return nil, err
	}
	res.Stats = ar.Stats
	res.SupportBefore = ar.SupportBefore
	res.SupportAfter = ar.SupportAfter
	res.HashDensity = ar.HashDensity
	if !ar.Exact {
		res.Approx = true
		res.Epsilon = ar.Epsilon
		res.Delta = ar.Delta
		res.BestEffort = ar.BestEffort
	}
	return ar.Count, nil
}
