package engine

import (
	"context"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/counter"
	"vacsem/internal/miter"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
)

// Per-sub-miter metrics, updated once per solved sub-miter.
var (
	mSubMiters   = obs.Default.Counter("engine.sub_miters")
	mSubTrivial  = obs.Default.Counter("engine.sub_miters_trivial")
	hSubSeconds  = obs.Default.Histogram("engine.sub_miter_seconds", nil)
	hSynthReduce = obs.Default.Histogram("engine.synth_node_ratio",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1})
)

// countingBackend runs the #SAT flow of the paper: split the miter into
// one single-output sub-miter per deviation bit (Phase 1) and hand each
// to the model counter (Phase 2). With enableSim it is the VACSEM
// engine; without, the plain-DPLL baseline (the GANAK role).
//
// Sub-miters are independent #SAT problems, so the backend solves them
// on a bounded worker pool (Config.Workers). Each worker builds its own
// Solver, so counts are bit-identical to the sequential run; results
// are collected by output index and aggregated in index order, making
// Outcome deterministic regardless of completion order.
type countingBackend struct {
	name      string
	enableSim bool
}

func (b *countingBackend) Name() string { return b.name }

func (b *countingBackend) Solve(ctx context.Context, t *Task) (*Outcome, error) {
	// Compress the whole miter once before splitting: the deviation
	// bits share most of their logic (both circuit copies plus the
	// subtractor), so per-sub-miter synthesis converges in one cheap
	// pass afterwards.
	work := t.Miter
	if !t.Config.NoSynth {
		work = synth.Compress(work)
	}
	subs := miter.Split(work)
	results := make([]SubResult, len(subs))

	// One shared component-count cache for the whole run: the sub-miters
	// embed the same two circuit copies and subtractor, so canonical
	// residual components recur across outputs and a count solved inside
	// one sub-miter is reused by the rest. Owner tags (index+1) let the
	// cache distinguish cross-sub-miter hits from same-solver hits.
	var cache *counter.Cache
	if t.Config.SharedCache && !t.Config.DisableCache {
		cache = counter.NewCache(0, 0)
	}

	workers := t.Config.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers < 1 {
		workers = 1
	}

	// Backend span: parents every sub-miter span (and, through the
	// context, the counter's component/cache/sim_decision events).
	tr := obs.Active()
	if tr != nil {
		beSpan := tr.StartSpan(obs.SpanFrom(ctx), "backend", obs.Fields{
			"backend": b.name, "metric": t.Metric,
			"subs": len(subs), "workers": workers,
		})
		ctx = obs.WithSpan(ctx, beSpan)
		defer tr.EndSpan(beSpan, "backend", nil)
	}

	// The pool: workers claim sub-miter indexes from an atomic cursor.
	// The first error cancels the group's context, and every in-flight
	// solver notices within one poll interval.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor   atomic.Int64
		firstErr error
		errOnce  sync.Once
		progMu   sync.Mutex
		doneN    int // completed sub-miters, guarded by progMu
		wg       sync.WaitGroup
	)
	cursor.Store(-1)
	solve := func() {
		defer wg.Done()
		for {
			j := int(cursor.Add(1))
			if j >= len(subs) || gctx.Err() != nil {
				return
			}
			sr, err := b.solveSub(gctx, work, subs[j], j, t.Weights[j], t.Config, cache)
			results[j] = sr
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				cancel()
				return
			}
			if t.Progress != nil {
				progMu.Lock()
				doneN++
				t.Progress(ProgressEvent{
					Metric: t.Metric, Backend: b.name,
					Index: j, Output: sr.Output,
					Count: sr.Count, Weight: sr.Weight,
					Done: doneN, Total: len(subs),
					Runtime: sr.Runtime, Stats: sr.Stats, Trivial: sr.Trivial,
				})
				progMu.Unlock()
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go solve()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// A worker can also stop on the parent context without recording an
	// error (it observed gctx.Err() between sub-miters).
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := &Outcome{Count: new(big.Int), Subs: results}
	var weighted big.Int
	for i := range results {
		weighted.Mul(results[i].Count, results[i].Weight)
		out.Count.Add(out.Count, &weighted)
	}
	return out, nil
}

// solveSub runs Phase 1 + Phase 2 on one single-output sub-miter. The
// sub_miter trace span and the per-sub-miter metrics cover every exit
// path (trivial, encode error, counter error, success).
func (b *countingBackend) solveSub(ctx context.Context, m, sub *circuit.Circuit, j int, weight *big.Int, cfg Config, cache *counter.Cache) (sr SubResult, err error) {
	subStart := time.Now()
	sr = SubResult{
		Output:      m.OutputName(j),
		Count:       new(big.Int),
		Weight:      weight,
		NodesBefore: sub.NumGates(),
	}
	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "sub_miter", obs.Fields{
			"backend": b.name, "index": j, "output": sr.Output,
			"nodes_before": sr.NodesBefore,
		})
		ctx = obs.WithSpan(ctx, span)
	}
	defer func() {
		sr.Runtime = time.Since(subStart)
		mSubMiters.Inc()
		if sr.Trivial {
			mSubTrivial.Inc()
		}
		hSubSeconds.Observe(sr.Runtime.Seconds())
		if tr != nil {
			f := obs.Fields{
				"index": j, "output": sr.Output,
				"nodes_after": sr.NodesAfter, "trivial": sr.Trivial,
				"count": sr.Count.String(), "stats": sr.Stats,
			}
			if err != nil {
				f["error"] = err.Error()
			}
			tr.EndSpan(span, "sub_miter", f)
		}
	}()
	if !cfg.NoSynth {
		sub = synth.Compress(sub)
	}
	sr.NodesAfter = sub.NumGates()
	if sr.NodesBefore > 0 {
		hSynthReduce.Observe(float64(sr.NodesAfter) / float64(sr.NodesBefore))
	}
	totalInputs := m.NumInputs()
	// Trivial outcomes after constant propagation.
	out := sub.Outputs[0]
	switch {
	case out == 0:
		sr.Trivial = true
	case sub.Nodes[out].Kind == circuit.Not && sub.Nodes[out].Fanins[0] == 0:
		sr.Count.Lsh(big.NewInt(1), uint(totalInputs))
		sr.Trivial = true
	case sub.Nodes[out].Kind == circuit.Input:
		// Output is a bare input: exactly half the patterns.
		sr.Count.Lsh(big.NewInt(1), uint(totalInputs-1))
		sr.Trivial = true
	default:
		var f *cnf.Formula
		f, err = cnf.Encode(sub)
		if err != nil {
			return sr, err
		}
		s := counter.New(f, counter.Config{
			EnableSim:       b.enableSim,
			Alpha:           cfg.Alpha,
			MaxSimVars:      cfg.MaxSimVars,
			MinSimGates:     cfg.MinSimGates,
			DisableCache:    cfg.DisableCache,
			DisableIBCP:     cfg.DisableIBCP,
			DisableLearning: cfg.DisableLearning,
			Cache:           cache,
			CacheOwner:      int32(j) + 1,
		})
		var cnt *big.Int
		cnt, err = s.CountCtx(ctx)
		sr.Stats = s.Stats()
		if err != nil {
			// Propagate verbatim: context errors, encode errors and any
			// future counter failure all keep their identity (the old
			// flow conflated everything into a timeout).
			return sr, err
		}
		// Scale by inputs outside the encoded cone.
		extra := totalInputs - f.NumEncodedInputs()
		sr.Count.Lsh(cnt, uint(extra))
	}
	return sr, nil
}
