// Package engine is the pluggable-backend seam of the verification
// stack. A Backend turns one deviation miter plus per-output weights
// into a weighted model count; the four built-in backends wrap the
// repository's existing flows (the simulation-enhanced counter, the
// plain DPLL counter, exhaustive enumeration, and the prior-art ROBDD
// flow) behind one interface, registered by name in a small registry.
//
// internal/core resolves its Options.Method through this registry
// instead of a hard-coded switch, so new engines (sharded counting,
// distributed backends, new metric solvers) plug in without touching
// the metric-level orchestration.
//
// All backends accept a context.Context and propagate it into their hot
// loops (the counter's decision loop, the simulator's block loop, the
// BDD apply loop), so callers get real cooperative cancellation — not
// just deadline expiry.
package engine

import (
	"context"
	"errors"
	"math/big"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/counter"
)

// ErrTooLarge is returned by the enumeration backend when the input
// space exceeds the exhaustive-simulation capability (more than 62
// inputs).
var ErrTooLarge = errors.New("engine: input space too large for enumeration")

// Config carries the method-independent tuning knobs of a verification
// run. It mirrors core.Options minus the method selection (which picks
// the backend) and the time limit (which arrives as a context deadline).
type Config struct {
	// NoSynth skips the per-sub-miter synthesis (compress) step.
	NoSynth bool
	// Alpha overrides the density-score scaling factor (default 2).
	Alpha float64
	// MaxSimVars overrides the simulation input cap (default 26).
	MaxSimVars int
	// MinSimGates overrides the minimum sub-circuit size the controller
	// hands to the simulator (default 24).
	MinSimGates int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// SharedCache shares one component-count cache across all sub-miter
	// solvers of a run (the sub-miters of one miter share both circuit
	// copies plus the subtractor, so residual components recur across
	// outputs). Counts are bit-identical either way; sharing only trades
	// memory for cross-sub-miter hits. Ignored when DisableCache is set.
	SharedCache bool
	// DisableIBCP turns off failed-literal probing (ablation).
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning (ablation).
	DisableLearning bool
	// BDDNodeLimit caps the decision-diagram size for the bdd backend
	// (default 1<<22 nodes).
	BDDNodeLimit int
	// Workers bounds the number of sub-miters solved concurrently by
	// backends that fan out (the counting backends). 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential solving.
	Workers int
	// SimWorkers bounds the goroutines the enum backend's compiled
	// simulation kernel spreads the pattern-block range across. 0 means
	// runtime.GOMAXPROCS(0); 1 forces serial enumeration. Counts are
	// bit-identical at any setting.
	SimWorkers int
}

// Task is one verification job: a deviation miter whose weighted
// one-count is the metric numerator sum_j weights[j] * #SAT(output_j).
type Task struct {
	// Metric names the job in progress events ("ER", "MED", ...).
	Metric string
	// Miter is the deviation miter (validated, one weight per output).
	Miter *circuit.Circuit
	// Weights holds the per-output weights of the metric sum.
	Weights []*big.Int
	// Config tunes the backend.
	Config Config
	// Progress, when non-nil, receives one event per completed
	// sub-miter. Events may be emitted out of output order (concurrent
	// solving) but calls are serialized; the callback must not block.
	Progress ProgressFunc
}

// SubResult reports one sub-miter's #SAT problem. Count is always
// non-nil, including trivial and error paths, so reporting layers never
// nil-check.
type SubResult struct {
	Output      string
	Count       *big.Int // patterns (over all 2^I inputs) setting the bit
	Weight      *big.Int
	NodesBefore int
	NodesAfter  int // after synthesis
	Runtime     time.Duration
	Stats       counter.Stats
	Trivial     bool // solved by constant propagation alone
}

// Outcome is a backend's result: the weighted total count plus the
// per-output sub-results in output order (deterministic regardless of
// worker count).
type Outcome struct {
	Count *big.Int
	Subs  []SubResult
}

// ProgressEvent reports the completion of one sub-miter.
type ProgressEvent struct {
	Metric  string
	Backend string
	// Index is the sub-miter's output index; Output its name.
	Index  int
	Output string
	Count  *big.Int
	Weight *big.Int
	// Done counts completed sub-miters so far (including this one);
	// Total is the number of sub-miters of the task.
	Done, Total int
	Runtime     time.Duration
	Stats       counter.Stats
	Trivial     bool
}

// ProgressFunc observes per-sub-miter completion events.
type ProgressFunc func(ProgressEvent)

// Backend solves verification tasks. Implementations must be safe for
// concurrent use by multiple goroutines (they are registered once and
// shared) and must honour ctx cancellation in their long-running loops.
type Backend interface {
	// Name is the registry key ("vacsem", "dpll", "enum", "bdd", ...).
	Name() string
	// Solve computes the task's weighted count. On error the partial
	// outcome is discarded; ctx errors are returned verbatim.
	Solve(ctx context.Context, t *Task) (*Outcome, error)
}
