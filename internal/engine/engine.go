// Package engine is the pluggable-backend seam of the verification
// stack. A Backend executes a verification session: a list of prepared
// single-output counting tasks (built and deduplicated by the plan
// layer, internal/plan) plus the combined session miter the tasks were
// cut from. The built-in backends wrap the repository's existing flows
// (the simulation-enhanced counter, the plain DPLL counter, exhaustive
// enumeration, the prior-art ROBDD flow, and (ε, δ) approximate
// counting by XOR streamlining) behind one interface, registered by
// name in a small registry.
//
// internal/core resolves its Options.Method through this registry
// instead of a hard-coded switch, so new engines (sharded counting,
// distributed backends, new metric solvers) plug in without touching
// the metric-level orchestration.
//
// All backends accept a context.Context and propagate it into their hot
// loops (the counter's decision loop, the simulator's block loop, the
// BDD apply loop), so callers get real cooperative cancellation — not
// just deadline expiry.
package engine

import (
	"context"
	"errors"
	"math/big"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/counter"
	"vacsem/internal/store"
)

// ErrTooLarge is returned by the enumeration backend when the input
// space exceeds the exhaustive-simulation capability (more than 62
// inputs).
var ErrTooLarge = errors.New("engine: input space too large for enumeration")

// Config carries the method-independent tuning knobs of a verification
// run. It mirrors core.Options minus the method selection (which picks
// the backend) and the time limit (which arrives as a context deadline).
type Config struct {
	// NoSynth skips the synthesis (compress) step in backends that
	// synthesize their own working copy (the bdd backend); the plan
	// layer honours the same flag when preparing task sub-miters.
	NoSynth bool
	// Alpha overrides the density-score scaling factor (default 2).
	Alpha float64
	// MaxSimVars overrides the simulation input cap (default 26).
	MaxSimVars int
	// MinSimGates overrides the minimum sub-circuit size the controller
	// hands to the simulator (default 24).
	MinSimGates int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// SharedCache shares one component-count cache across all task
	// solvers of a session (the tasks of one session share both circuit
	// copies plus the subtractor, so residual components recur across
	// tasks — and across metrics). Counts are bit-identical either way;
	// sharing only trades memory for cross-task hits. Ignored when
	// DisableCache is set.
	SharedCache bool
	// Store, when non-nil, is a cross-request result store shared across
	// sessions (and typically across the whole process — vacsem-serve
	// injects one). Counting backends consult its cone tier by each
	// task's canonical key before dispatching a solver, record every
	// non-trivial solve back with provenance, and use its component tier
	// as the session's shared component cache (superseding SharedCache).
	// Cone keys are exact content addresses and counts are
	// function-determined, so a store hit returns precisely the count
	// the solver would have computed — exact results are bit-identical
	// with or without the store; approximate results are served only
	// under a guarantee at least as tight as requested (see
	// store.Req). Ignored when DisableCache is set.
	Store *store.Store
	// DisableIBCP turns off failed-literal probing (ablation).
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning (ablation).
	DisableLearning bool
	// BDDNodeLimit caps the decision-diagram size for the bdd backend
	// (default 1<<22 nodes).
	BDDNodeLimit int
	// BDDReorder enables dynamic variable reordering (window sifting)
	// during the bdd backend's diagram builds.
	BDDReorder bool
	// Workers bounds the number of tasks solved concurrently by backends
	// that fan out (the counting backends). 0 means
	// runtime.GOMAXPROCS(0); 1 forces sequential solving.
	Workers int
	// SimWorkers bounds the goroutines the enum backend's compiled
	// simulation kernel spreads the pattern-block range across. 0 means
	// runtime.GOMAXPROCS(0); 1 forces serial enumeration. Counts are
	// bit-identical at any setting.
	SimWorkers int
	// Epsilon is the multiplicative tolerance of the approx backend:
	// each task's count is within a (1+ε) factor of the exact count with
	// probability 1-δ. 0 means the ApproxMC default of 0.8. Exact
	// backends ignore it.
	Epsilon float64
	// Delta is the per-task failure probability of the approx backend.
	// 0 means the default of 0.2. Exact backends ignore it.
	Delta float64
	// Seed makes the approx backend's XOR sampling deterministic. Hash
	// rows are a pure function of Seed and the row's position — never of
	// the task index or worker identity — so results are reproducible at
	// any worker count and structurally identical tasks draw identical
	// rows (the property the session probe cache exploits).
	Seed int64
	// HashDensity pins the approx backend's hash-row density: the
	// probability each sampling variable joins a parity row. 0 means the
	// automatic sparse schedule; 0.5 is the classical dense family
	// (ablation baseline).
	HashDensity float64
	// NoSupportMin disables the approx backend's independent-support
	// minimization pass (ablation).
	NoSupportMin bool
	// ApproxBisect restores the approx backend's pre-scaling boundary
	// bisection instead of the boundary walk (ablation; estimates are
	// identical either way).
	ApproxBisect bool
}

// CountTask is one single-output weighted-counting job of a session:
// #SAT over the task's sub-miter, scaled to the full input space of the
// session miter. Several metric outputs may map to one task when their
// deviation bits are structurally identical (the plan layer's dedup).
type CountTask struct {
	// Sub is the task's single-output sub-miter: the logic cone of the
	// session miter's matching output, already synthesized by the plan
	// layer (unless the session ran with NoSynth). Counting backends
	// solve it directly; enumeration and BDD backends work on the
	// session miter instead.
	Sub *circuit.Circuit
	// Label names the task in spans and progress events; by convention
	// "<metric>/<output>" of the first metric output that produced it.
	Label string
	// Key is the canonical cone key of Sub (plan's coneKey over the
	// synthesized cone): a content address equal across sessions exactly
	// when the cones are isomorphic over the same shared-input
	// positions. Empty when the request was built without the plan layer;
	// store-aware backends then skip the cone tier for this task.
	Key string
	// KeyInputs is the number of shared inputs the cone actually
	// reaches (pinned by Key). Counts stored under Key live in this
	// 2^KeyInputs space; backends rescale to the session's full input
	// space by shifting.
	KeyInputs int
	// NodesBefore and NodesAfter record the task's gate count before and
	// after the plan layer's synthesis pass.
	NodesBefore int
	NodesAfter  int
}

// Request is one verification session handed to a backend: the combined
// session miter whose i-th output computes the i-th task's bit, plus the
// prepared task list. Backends must not mutate the request.
type Request struct {
	// Session labels the run in spans ("ER+MED+MHD", a single metric
	// name, or a custom miter's name).
	Session string
	// Miter is the combined session miter: one primary output per task,
	// in task order, over the full shared input set. Enumeration
	// simulates it in one pass; the bdd backend builds its diagrams from
	// it; counting backends use the per-task sub-miters instead and only
	// read its input count.
	Miter *circuit.Circuit
	// Tasks lists the session's deduplicated counting tasks.
	Tasks []CountTask
	// Config tunes the backend.
	Config Config
	// Progress, when non-nil, receives one event per completed task.
	// Events may arrive out of task order (concurrent solving) but calls
	// are serialized; the callback must not block.
	Progress TaskProgressFunc
}

// TaskResult reports one task's count. Count is always non-nil,
// including trivial and error paths, so reporting layers never
// nil-check; it is the number of input patterns (over the full 2^I
// space of the session miter) setting the task's bit.
type TaskResult struct {
	Count   *big.Int
	Runtime time.Duration
	Stats   counter.Stats
	Trivial bool // solved by constant propagation alone
	// Approx marks a count estimated by XOR streamlining rather than
	// computed exactly; Epsilon and Delta are then its tolerance and
	// failure probability (Count is within a (1+Epsilon) factor of the
	// exact count with probability 1-Delta). The approx backend clears
	// Approx on tasks it happened to solve exactly (small cell counts),
	// so exactness is per task, not per backend.
	Approx         bool
	Epsilon, Delta float64
	// BestEffort marks an approx count whose round schedule was cut
	// short by the context deadline: the (1+Epsilon) band is unchanged
	// but holds with the widened Delta reported above.
	BestEffort bool
	// FromStore marks a count served from the cross-request cone store
	// (Config.Store): no solver ran for this task in this session.
	// Runtime then covers only the lookup; Stats is zero. Approx,
	// Epsilon and Delta describe the stored entry's provenance, which is
	// at least as strong as the request's guarantee.
	FromStore bool
	// SupportBefore and SupportAfter are the approx sampling-set sizes
	// around independent-support minimization; HashDensity is the mean
	// density of the hash rows actually drawn. All zero for exact
	// backends and trivial tasks.
	SupportBefore, SupportAfter int
	HashDensity                 float64
}

// TaskEvent reports the completion of one task.
type TaskEvent struct {
	Backend string
	// Index is the task's index in Request.Tasks; Label its name.
	Index int
	Label string
	Count *big.Int
	// Done counts completed tasks so far (including this one); Total is
	// the number of tasks of the session.
	Done, Total int
	Runtime     time.Duration
	Stats       counter.Stats
	Trivial     bool
	// Approx marks an (ε, δ)-estimated count (see TaskResult.Approx).
	Approx bool
	// FromStore marks a count served by the cross-request cone store
	// (see TaskResult.FromStore).
	FromStore bool
}

// TaskProgressFunc observes per-task completion events.
type TaskProgressFunc func(TaskEvent)

// Backend executes verification sessions. Implementations must be safe
// for concurrent use by multiple goroutines (they are registered once
// and shared) and must honour ctx cancellation in their long-running
// loops.
type Backend interface {
	// Name is the registry key ("vacsem", "dpll", "enum", "bdd", ...).
	Name() string
	// Execute computes every task's count, indexed like Request.Tasks.
	// On error the partial results are discarded; ctx errors are
	// returned verbatim.
	Execute(ctx context.Context, req *Request) ([]TaskResult, error)
}
