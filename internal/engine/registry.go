package engine

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	backends = make(map[string]Backend)
)

// Register adds a backend under its Name, replacing any previous
// registration (last wins, so tests and downstream packages can shadow
// a built-in). It panics on an empty name.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("engine: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	backends[name] = b
}

// Lookup resolves a backend by name.
func Lookup(name string) (Backend, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("engine: no backend %q (have %v)", name, namesLocked())
	}
	return b, nil
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(backends))
	for n := range backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(&countingBackend{name: "vacsem", enableSim: true})
	Register(&countingBackend{name: "dpll", enableSim: false})
	Register(&countingBackend{name: "approx", enableSim: true, approx: true})
	Register(enumBackend{})
	Register(bddBackend{})
}
