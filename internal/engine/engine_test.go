package engine_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/engine"
	"vacsem/internal/gen"
	"vacsem/internal/plan"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"bdd", "dpll", "enum", "vacsem"}
	got := engine.Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		b, err := engine.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := engine.Lookup("no-such-backend"); err == nil {
		t.Fatal("Lookup of unknown backend succeeded")
	}
}

// medRequest compiles the MED session of a lower-OR adder against the
// exact ripple-carry adder: multi-task, so the counting backends fan
// out. The request is built by the plan layer, exactly as core does.
func medRequest(t *testing.T, width int) (*plan.Plan, *engine.Request) {
	t.Helper()
	exact := gen.RippleCarryAdder(width)
	approx := als.LowerORAdder(width, 3)
	p, err := plan.Build(context.Background(), exact, approx,
		[]plan.Spec{{Kind: plan.MED}}, false)
	if err != nil {
		t.Fatal(err)
	}
	return p, &engine.Request{
		Session: p.Session, Miter: p.Exec, Tasks: p.Tasks,
	}
}

func TestBackendsAgree(t *testing.T) {
	_, req := medRequest(t, 6) // 12 inputs: enum is exact ground truth
	var want []engine.TaskResult
	for _, name := range []string{"enum", "vacsem", "dpll", "bdd"} {
		b, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		results, err := b.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(results) != len(req.Tasks) {
			t.Fatalf("%s: %d results for %d tasks", name, len(results), len(req.Tasks))
		}
		if want == nil {
			want = results
			continue
		}
		for j := range results {
			if results[j].Count.Cmp(want[j].Count) != 0 {
				t.Errorf("%s: task %d (%s) count = %v, want %v",
					name, j, req.Tasks[j].Label, results[j].Count, want[j].Count)
			}
		}
	}
}

func TestWorkersDeterministic(t *testing.T) {
	b, err := engine.Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	_, req := medRequest(t, 12)
	req.Config.Workers = 1
	seq, err := b.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Config.Workers = 4
	par, err := b.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result count mismatch: %d vs %d", len(seq), len(par))
	}
	for j := range seq {
		if seq[j].Count.Cmp(par[j].Count) != 0 {
			t.Errorf("task %d (%s): count %v vs %v", j,
				req.Tasks[j].Label, par[j].Count, seq[j].Count)
		}
	}
}

func TestProgressEvents(t *testing.T) {
	b, err := engine.Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	_, req := medRequest(t, 8)
	req.Config.Workers = 4
	var (
		mu     sync.Mutex
		events []engine.TaskEvent
	)
	req.Progress = func(ev engine.TaskEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	results, err := b.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(results) {
		t.Fatalf("%d progress events for %d tasks", len(events), len(results))
	}
	seenIdx := make(map[int]bool)
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Total != len(req.Tasks) {
			t.Errorf("event %d: Total = %d, want %d", i, ev.Total, len(req.Tasks))
		}
		if seenIdx[ev.Index] {
			t.Errorf("index %d reported twice", ev.Index)
		}
		seenIdx[ev.Index] = true
		if ev.Count == nil || ev.Count.Cmp(results[ev.Index].Count) != 0 {
			t.Errorf("event for index %d: count %v, want %v",
				ev.Index, ev.Count, results[ev.Index].Count)
		}
		if ev.Backend != "vacsem" || ev.Label != req.Tasks[ev.Index].Label {
			t.Errorf("event %d: backend/label = %q/%q", i, ev.Backend, ev.Label)
		}
	}
}

// TestProgressSerialized pins the documented callback contract under
// Workers > 1: calls never overlap, and every event carries the task's
// own runtime and counter statistics (matching what the results later
// report for that index).
func TestProgressSerialized(t *testing.T) {
	b, err := engine.Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	_, req := medRequest(t, 8)
	req.Config.Workers = 4
	var (
		inside     atomic.Int32
		overlapped atomic.Bool
		events     = make(map[int]engine.TaskEvent) // unguarded on purpose: -race flags overlap too
	)
	req.Progress = func(ev engine.TaskEvent) {
		if inside.Add(1) != 1 {
			overlapped.Store(true)
		}
		time.Sleep(100 * time.Microsecond) // widen any race window
		events[ev.Index] = ev
		inside.Add(-1)
	}
	results, err := b.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Load() {
		t.Fatal("progress callback entered concurrently; contract says calls are serialized")
	}
	if len(events) != len(results) {
		t.Fatalf("%d progress events for %d tasks", len(events), len(results))
	}
	for idx, ev := range events {
		res := results[idx]
		if ev.Stats != res.Stats {
			t.Errorf("index %d: event stats %+v, result stats %+v", idx, ev.Stats, res.Stats)
		}
		if ev.Runtime != res.Runtime {
			t.Errorf("index %d: event runtime %v, result runtime %v", idx, ev.Runtime, res.Runtime)
		}
		if !ev.Trivial && ev.Runtime <= 0 {
			t.Errorf("index %d: non-trivial task reported runtime %v", idx, ev.Runtime)
		}
	}
}

func TestTaskResultCountNonNil(t *testing.T) {
	// Identical circuits: every deviation bit propagates to constant 0,
	// and the plan dedups them into a single trivial task. Count must
	// still be non-nil everywhere.
	c := gen.RippleCarryAdder(4)
	p, err := plan.Build(context.Background(), c, c.Clone(),
		[]plan.Spec{{Kind: plan.MED}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 1 {
		t.Errorf("identical circuits compiled to %d tasks, want 1 (all bits const0)", len(p.Tasks))
	}
	req := &engine.Request{Session: p.Session, Miter: p.Exec, Tasks: p.Tasks}
	for _, name := range []string{"vacsem", "dpll", "enum", "bdd"} {
		b, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		results, err := b.Execute(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for j := range results {
			if results[j].Count == nil {
				t.Errorf("%s: task %d has nil Count", name, j)
			} else if results[j].Count.Sign() != 0 {
				t.Errorf("%s: identical circuits task %d count = %v, want 0",
					name, j, results[j].Count)
			}
		}
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, req := medRequest(t, 10)
	for _, name := range []string{"vacsem", "enum", "bdd"} {
		b, err := engine.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Execute(ctx, req); err != context.Canceled {
			t.Errorf("%s with cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// lateDeadlineCtx models a deadline that expires after the last task
// completes but before the pool's post-wait context check: Err()
// already reports expiry while Done() (inherited nil from Background)
// never fired, so no solver ever aborted. The approx backend produces
// exactly this shape for real — a best-effort task *completes because*
// the deadline expired — so a full result set must survive an expired
// context. An earlier version of the pool checked ctx.Err()
// unconditionally after the workers drained and discarded every
// best-effort result as a timeout.
type lateDeadlineCtx struct{ context.Context }

func (lateDeadlineCtx) Err() error { return context.DeadlineExceeded }

func TestCompletedResultsSurviveLateDeadline(t *testing.T) {
	_, req := medRequest(t, 6)
	b, err := engine.Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	results, err := b.Execute(lateDeadlineCtx{context.Background()}, req)
	if err != nil {
		t.Fatalf("Execute discarded completed results on a late deadline: %v", err)
	}
	if len(results) != len(req.Tasks) {
		t.Fatalf("%d results for %d tasks", len(results), len(req.Tasks))
	}
	want, err := b.Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for j := range results {
		if results[j].Count.Cmp(want[j].Count) != 0 {
			t.Errorf("task %d (%s) count = %v, want %v",
				j, req.Tasks[j].Label, results[j].Count, want[j].Count)
		}
	}
}
