package engine

import (
	"context"
	"math/big"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/gen"
	"vacsem/internal/miter"
)

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"bdd", "dpll", "enum", "vacsem"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-backend"); err == nil {
		t.Fatal("Lookup of unknown backend succeeded")
	}
}

// medTask builds the MED task of a lower-OR adder against the exact
// ripple-carry adder: multi-output, so the counting backends fan out.
func medTask(t *testing.T, width int) *Task {
	t.Helper()
	exact := gen.RippleCarryAdder(width)
	approx := als.LowerORAdder(width, 3)
	m, err := miter.MED(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]*big.Int, m.NumOutputs())
	for i := range weights {
		weights[i] = new(big.Int).Lsh(big.NewInt(1), uint(i))
	}
	return &Task{Metric: "MED", Miter: m, Weights: weights}
}

func TestBackendsAgree(t *testing.T) {
	task := medTask(t, 6) // 12 inputs: enum is exact ground truth
	var want *big.Int
	for _, name := range []string{"enum", "vacsem", "dpll", "bdd"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.Solve(context.Background(), task)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want == nil {
			want = out.Count
			continue
		}
		if out.Count.Cmp(want) != 0 {
			t.Errorf("%s: count = %v, want %v", name, out.Count, want)
		}
		if len(out.Subs) != len(task.Weights) {
			t.Errorf("%s: %d subs, want %d", name, len(out.Subs), len(task.Weights))
		}
	}
}

func TestWorkersDeterministic(t *testing.T) {
	b, err := Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	task := medTask(t, 12)
	task.Config.Workers = 1
	seq, err := b.Solve(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	task.Config.Workers = 4
	par, err := b.Solve(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Count.Cmp(par.Count) != 0 {
		t.Errorf("parallel count %v != sequential %v", par.Count, seq.Count)
	}
	if len(seq.Subs) != len(par.Subs) {
		t.Fatalf("sub count mismatch: %d vs %d", len(seq.Subs), len(par.Subs))
	}
	for i := range seq.Subs {
		if seq.Subs[i].Output != par.Subs[i].Output {
			t.Errorf("sub %d: output order %q vs %q", i, par.Subs[i].Output, seq.Subs[i].Output)
		}
		if seq.Subs[i].Count.Cmp(par.Subs[i].Count) != 0 {
			t.Errorf("sub %d (%s): count %v vs %v", i,
				seq.Subs[i].Output, par.Subs[i].Count, seq.Subs[i].Count)
		}
	}
}

func TestProgressEvents(t *testing.T) {
	b, err := Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	task := medTask(t, 8)
	task.Config.Workers = 4
	var (
		mu     sync.Mutex
		events []ProgressEvent
	)
	task.Progress = func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	out, err := b.Solve(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(out.Subs) {
		t.Fatalf("%d progress events for %d subs", len(events), len(out.Subs))
	}
	seenIdx := make(map[int]bool)
	for i, ev := range events {
		if ev.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.Total != len(out.Subs) {
			t.Errorf("event %d: Total = %d, want %d", i, ev.Total, len(out.Subs))
		}
		if seenIdx[ev.Index] {
			t.Errorf("index %d reported twice", ev.Index)
		}
		seenIdx[ev.Index] = true
		if ev.Count == nil || ev.Count.Cmp(out.Subs[ev.Index].Count) != 0 {
			t.Errorf("event for index %d: count %v, want %v",
				ev.Index, ev.Count, out.Subs[ev.Index].Count)
		}
		if ev.Backend != "vacsem" || ev.Metric != "MED" {
			t.Errorf("event %d: backend/metric = %q/%q", i, ev.Backend, ev.Metric)
		}
	}
}

// TestProgressSerialized pins the documented callback contract under
// Workers > 1: calls never overlap, and every event carries the
// sub-miter's own runtime and counter statistics (matching what the
// outcome later reports for that index).
func TestProgressSerialized(t *testing.T) {
	b, err := Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	task := medTask(t, 8)
	task.Config.Workers = 4
	var (
		inside     atomic.Int32
		overlapped atomic.Bool
		events     = make(map[int]ProgressEvent) // unguarded on purpose: -race flags overlap too
	)
	task.Progress = func(ev ProgressEvent) {
		if inside.Add(1) != 1 {
			overlapped.Store(true)
		}
		time.Sleep(100 * time.Microsecond) // widen any race window
		events[ev.Index] = ev
		inside.Add(-1)
	}
	out, err := b.Solve(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Load() {
		t.Fatal("progress callback entered concurrently; contract says calls are serialized")
	}
	if len(events) != len(out.Subs) {
		t.Fatalf("%d progress events for %d subs", len(events), len(out.Subs))
	}
	for idx, ev := range events {
		sub := out.Subs[idx]
		if ev.Output != sub.Output {
			t.Errorf("index %d: event output %q, outcome output %q", idx, ev.Output, sub.Output)
		}
		if ev.Stats != sub.Stats {
			t.Errorf("index %d: event stats %+v, outcome stats %+v", idx, ev.Stats, sub.Stats)
		}
		if ev.Runtime != sub.Runtime {
			t.Errorf("index %d: event runtime %v, outcome runtime %v", idx, ev.Runtime, sub.Runtime)
		}
		if !ev.Trivial && ev.Runtime <= 0 {
			t.Errorf("index %d: non-trivial sub-miter reported runtime %v", idx, ev.Runtime)
		}
	}
}

func TestSubResultCountNonNil(t *testing.T) {
	// A miter whose outputs are constant after propagation exercises the
	// trivial paths; Count must still be non-nil everywhere.
	c := gen.RippleCarryAdder(4)
	m, err := miter.MED(c, c.Clone())
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]*big.Int, m.NumOutputs())
	for i := range weights {
		weights[i] = big.NewInt(1)
	}
	for _, name := range []string{"vacsem", "dpll", "enum", "bdd"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.Solve(context.Background(), &Task{
			Metric: "MED", Miter: m, Weights: weights,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Count.Sign() != 0 {
			t.Errorf("%s: identical circuits count = %v, want 0", name, out.Count)
		}
		for i := range out.Subs {
			if out.Subs[i].Count == nil {
				t.Errorf("%s: sub %d has nil Count", name, i)
			}
		}
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	task := medTask(t, 10)
	for _, name := range []string{"vacsem", "enum", "bdd"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Solve(ctx, task); err != context.Canceled {
			t.Errorf("%s with cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}
