package core

import (
	"math/big"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestBDDMethodAgreesOnRandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		exact := testutil.RandomCircuit(4+int(seed%5), 10+int(seed*3%25), 3, seed+60)
		approx := approxVersion(exact, seed*5+1)
		wantER, wantMED, _ := refMetrics(exact, approx)
		er, err := VerifyER(exact, approx, Options{Method: MethodBDD})
		if err != nil {
			t.Fatalf("seed %d ER: %v", seed, err)
		}
		if er.Value.Cmp(wantER) != 0 {
			t.Errorf("seed %d: BDD ER = %v, want %v", seed, er.Value, wantER)
		}
		med, err := VerifyMED(exact, approx, Options{Method: MethodBDD})
		if err != nil {
			t.Fatalf("seed %d MED: %v", seed, err)
		}
		if med.Value.Cmp(wantMED) != 0 {
			t.Errorf("seed %d: BDD MED = %v, want %v", seed, med.Value, wantMED)
		}
	}
}

// TestBDDMethodWithReorderAgrees runs the same cross-check with dynamic
// variable reordering enabled: sifting changes node counts, never
// values, all the way through the public API.
func TestBDDMethodWithReorderAgrees(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		exact := testutil.RandomCircuit(4+int(seed%5), 10+int(seed*3%25), 3, seed+60)
		approx := approxVersion(exact, seed*5+1)
		wantER, wantMED, _ := refMetrics(exact, approx)
		er, err := VerifyER(exact, approx, Options{Method: MethodBDD, BDDReorder: true})
		if err != nil {
			t.Fatalf("seed %d ER: %v", seed, err)
		}
		if er.Value.Cmp(wantER) != 0 {
			t.Errorf("seed %d: reordered BDD ER = %v, want %v", seed, er.Value, wantER)
		}
		med, err := VerifyMED(exact, approx, Options{Method: MethodBDD, BDDReorder: true})
		if err != nil {
			t.Fatalf("seed %d MED: %v", seed, err)
		}
		if med.Value.Cmp(wantMED) != 0 {
			t.Errorf("seed %d: reordered BDD MED = %v, want %v", seed, med.Value, wantMED)
		}
	}
	// A larger instance where the auto-trigger actually fires.
	exact := gen.RippleCarryAdder(12)
	approx := als.LowerORAdder(12, 5)
	b, err := VerifyMED(exact, approx, Options{Method: MethodBDD, BDDReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := VerifyMED(exact, approx, Options{Method: MethodEnum})
	if err != nil {
		t.Fatal(err)
	}
	if b.Value.Cmp(e.Value) != 0 {
		t.Errorf("reordered BDD MED %v != enum %v", b.Value, e.Value)
	}
}

func TestBDDMethodOnAdder(t *testing.T) {
	// DD methods handle adders well (linear BDDs) — the paper notes they
	// support up to 32-bit adders. Verify a 16-bit LOA.
	exact := gen.RippleCarryAdder(16)
	approx := als.LowerORAdder(16, 4)
	b, err := VerifyER(exact, approx, Options{Method: MethodBDD})
	if err != nil {
		t.Fatal(err)
	}
	v, err := VerifyER(exact, approx, Options{Method: MethodVACSEM})
	if err != nil {
		t.Fatal(err)
	}
	if b.Value.Cmp(v.Value) != 0 {
		t.Errorf("BDD %v != VACSEM %v", b.Value, v.Value)
	}
}

func TestBDDMethodExplodesOnMultiplier(t *testing.T) {
	// The scalability wall of footnote 2: multiplier deviation functions
	// blow BDDs up. With a modest node budget the method must fail
	// cleanly where VACSEM succeeds.
	exact := gen.ArrayMultiplier(8)
	approx := als.TruncatedMultiplier(8, 4)
	_, err := VerifyMED(exact, approx, Options{Method: MethodBDD, BDDNodeLimit: 20000})
	if err != ErrBDDTooLarge {
		t.Fatalf("expected ErrBDDTooLarge, got %v", err)
	}
	// VACSEM on the same instance succeeds.
	if _, err := VerifyMED(exact, approx, Options{Method: MethodVACSEM}); err != nil {
		t.Fatalf("VACSEM failed where it should win: %v", err)
	}
}

func TestBDDThresholdProb(t *testing.T) {
	exact := gen.ArrayMultiplier(4)
	approx := als.TruncatedMultiplier(4, 2)
	for _, tv := range []int64{0, 3, 9} {
		b, err := VerifyThresholdProb(exact, approx, big.NewInt(tv), Options{Method: MethodBDD})
		if err != nil {
			t.Fatal(err)
		}
		e, err := VerifyThresholdProb(exact, approx, big.NewInt(tv), Options{Method: MethodEnum})
		if err != nil {
			t.Fatal(err)
		}
		if b.Value.Cmp(e.Value) != 0 {
			t.Errorf("t=%d: BDD %v != enum %v", tv, b.Value, e.Value)
		}
	}
}
