package core

import (
	"runtime"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/gen"
)

// TestSharedCacheMatchesPrivate is the determinism contract of the
// run-wide shared component cache: a parallel MED verification with the
// shared cache on must be bit-identical — Value, Count, and every
// per-output sub-count — to the same run with private caches and to a
// sequential run. Cached values are exact counts of canonical residual
// formulas, so hits and misses can only change speed; this test (under
// -race, with one worker per CPU) is the executable form of that
// argument. It also asserts the sharing actually happens: the sub-miters
// of one MED miter share both circuit copies plus the subtractor, so a
// multi-output adder must see cross-sub-miter hits.
func TestSharedCacheMatchesPrivate(t *testing.T) {
	exact := gen.RippleCarryAdder(16)
	approx := als.LowerORAdder(16, 5)
	workers := runtime.GOMAXPROCS(0)

	shared, err := VerifyMED(exact, approx, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	private, err := VerifyMED(exact, approx, Options{Workers: workers, DisableSharedCache: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := VerifyMED(exact, approx, Options{Workers: 1, DisableSharedCache: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []struct {
		name string
		got  *Result
	}{{"private parallel", private}, {"sequential", seq}} {
		if shared.Value.Cmp(r.got.Value) != 0 {
			t.Errorf("shared Value %v != %s Value %v", shared.Value, r.name, r.got.Value)
		}
		if shared.Count.Cmp(r.got.Count) != 0 {
			t.Errorf("shared Count %v != %s Count %v", shared.Count, r.name, r.got.Count)
		}
		if len(shared.Subs) != len(r.got.Subs) {
			t.Fatalf("sub count: shared %d vs %s %d", len(shared.Subs), r.name, len(r.got.Subs))
		}
		for i := range shared.Subs {
			if shared.Subs[i].Count.Cmp(r.got.Subs[i].Count) != 0 {
				t.Errorf("sub %d (%s): shared count %v != %s count %v", i,
					shared.Subs[i].Output, shared.Subs[i].Count, r.name, r.got.Subs[i].Count)
			}
		}
	}

	if shared.TotalStats.CacheCrossHits == 0 {
		t.Error("shared-cache run saw no cross-sub-miter hits on a multi-output MED")
	}
	if private.TotalStats.CacheCrossHits != 0 {
		t.Errorf("private caches reported %d cross-sub-miter hits, want 0",
			private.TotalStats.CacheCrossHits)
	}
}
