package core

import (
	"context"
	"runtime"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/gen"
	"vacsem/internal/store"
)

// TestStoreCrossSessionReuse is the cross-request dedup contract at the
// core layer: two identical sessions over one injected store return
// bit-identical results, and the second solves nothing — every
// non-trivial task is served from the cone tier.
func TestStoreCrossSessionReuse(t *testing.T) {
	exact := gen.RippleCarryAdder(12)
	approx := als.LowerORAdder(12, 4)
	specs := []MetricSpec{{Kind: MetricER}, {Kind: MetricMED}}
	st := store.New(store.Config{})
	opt := Options{Workers: runtime.GOMAXPROCS(0), Store: st}

	cold, err := VerifyMetrics(context.Background(), exact, approx, specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.StoreConeHits != 0 {
		t.Errorf("cold run reports %d store hits on an empty store", cold.StoreConeHits)
	}
	baseline, err := VerifyMetrics(context.Background(), exact, approx, specs,
		Options{Workers: opt.Workers})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := VerifyMetrics(context.Background(), exact, approx, specs, opt)
	if err != nil {
		t.Fatal(err)
	}

	nonTrivial := 0
	for i := range cold.Results {
		for j := range cold.Results[i].Subs {
			s := &cold.Results[i].Subs[j]
			if !s.Trivial && !s.Shared {
				nonTrivial++
			}
		}
	}
	if warm.StoreConeHits == 0 {
		t.Fatal("warm run served nothing from the store")
	}
	if warm.StoreConeHits != nonTrivial {
		t.Errorf("warm run solved tasks the store should have served: hits=%d, non-trivial tasks=%d",
			warm.StoreConeHits, nonTrivial)
	}
	if warm.TotalStats.Decisions != 0 || warm.TotalStats.Components != 0 {
		t.Errorf("warm run still ran solvers: decisions=%d components=%d",
			warm.TotalStats.Decisions, warm.TotalStats.Components)
	}
	for i := range cold.Results {
		for _, r := range []*SessionResult{warm, baseline} {
			if cold.Results[i].Value.Cmp(r.Results[i].Value) != 0 {
				t.Errorf("metric %s: values diverge: cold %v vs %v",
					cold.Results[i].Metric, cold.Results[i].Value, r.Results[i].Value)
			}
		}
		for j := range cold.Results[i].Subs {
			if cold.Results[i].Subs[j].Count.Cmp(warm.Results[i].Subs[j].Count) != 0 {
				t.Errorf("metric %s sub %d: warm count %v != cold %v",
					cold.Results[i].Metric, j,
					warm.Results[i].Subs[j].Count, cold.Results[i].Subs[j].Count)
			}
		}
	}

	// The warm run's FromStore flags must cover exactly the non-trivial
	// owner bits.
	for i := range warm.Results {
		for j := range warm.Results[i].Subs {
			s := &warm.Results[i].Subs[j]
			if s.Shared {
				continue
			}
			if s.FromStore == s.Trivial {
				t.Errorf("metric %s sub %d: FromStore=%v Trivial=%v, want them to partition",
					warm.Results[i].Metric, j, s.FromStore, s.Trivial)
			}
		}
	}
}

// TestStoreApproxGuardsExact pins the reuse rule across methods: counts
// stored by an approximate session must never serve an exact request,
// while a second identical approximate session reuses them.
func TestStoreApproxGuardsExact(t *testing.T) {
	exact := gen.RippleCarryAdder(10)
	approx := als.LowerORAdder(10, 3)
	st := store.New(store.Config{})
	apOpt := Options{Method: MethodApprox, Seed: 7, Store: st}

	ap1, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricER}}, apOpt)
	if err != nil {
		t.Fatal(err)
	}
	ap2, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricER}}, apOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ap2.StoreConeHits == 0 {
		t.Error("identical approx re-run served nothing from the store")
	}
	if ap1.Results[0].Value.Cmp(ap2.Results[0].Value) != 0 {
		t.Errorf("approx re-run diverged: %v vs %v", ap1.Results[0].Value, ap2.Results[0].Value)
	}

	// The exact run over the approx-warmed store must match a storeless
	// exact run bit for bit (an approx entry serving it would generally
	// differ).
	ex, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricER}}, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricER}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Results[0].Value.Cmp(ref.Results[0].Value) != 0 {
		t.Errorf("exact run over approx-warmed store diverged: %v, want %v",
			ex.Results[0].Value, ref.Results[0].Value)
	}
	if ex.Results[0].Approx {
		t.Error("exact run reports an approximate result after store reuse")
	}

	// Now that the exact session upgraded the entries, a further approx
	// session may reuse them — and must then report the exact value.
	ap3, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricER}}, apOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ap3.StoreConeHits == 0 {
		t.Error("approx run after exact upgrade served nothing from the store")
	}
	if ap3.Results[0].Value.Cmp(ref.Results[0].Value) != 0 {
		t.Errorf("approx run reusing exact entries reports %v, want exact %v",
			ap3.Results[0].Value, ref.Results[0].Value)
	}
	if ap3.Results[0].Approx {
		t.Error("approx session serving only exact entries still reports Approx")
	}
}
