package core

import (
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

// refMetrics computes ER, MED and MHD by direct behavioural evaluation
// over every input pattern — completely independent of miters, CNF and
// counting.
func refMetrics(exact, approx *circuit.Circuit) (er, med, mhd *big.Rat) {
	nIn := exact.NumInputs()
	nOut := exact.NumOutputs()
	if nIn > 16 {
		panic("refMetrics: too many inputs")
	}
	total := int64(1) << uint(nIn)
	var errCnt int64
	medSum := new(big.Int)
	var hdSum int64
	in := make([]bool, nIn)
	for x := int64(0); x < total; x++ {
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		oe := exact.Eval(in)
		oa := approx.Eval(in)
		ve := new(big.Int)
		va := new(big.Int)
		diffBits := 0
		for j := 0; j < nOut; j++ {
			if oe[j] {
				ve.SetBit(ve, j, 1)
			}
			if oa[j] {
				va.SetBit(va, j, 1)
			}
			if oe[j] != oa[j] {
				diffBits++
			}
		}
		if diffBits > 0 {
			errCnt++
		}
		hdSum += int64(diffBits)
		d := new(big.Int).Sub(ve, va)
		medSum.Add(medSum, d.Abs(d))
	}
	tb := big.NewInt(total)
	er = new(big.Rat).SetFrac(big.NewInt(errCnt), tb)
	med = new(big.Rat).SetFrac(medSum, tb)
	mhd = new(big.Rat).SetFrac(big.NewInt(hdSum), tb)
	return
}

// approxVersion derives an approximate circuit from c by rewiring a late
// gate's fanin deterministically (seeded), guaranteeing same interface.
func approxVersion(c *circuit.Circuit, seed int64) *circuit.Circuit {
	a := c.Clone()
	a.Name += "_approx"
	changed := false
	for id := len(a.Nodes) - 1; id > 0 && !changed; id-- {
		nd := &a.Nodes[id]
		if nd.Kind.IsGate() && len(nd.Fanins) > 0 {
			pick := int(seed) % id
			if pick != nd.Fanins[0] {
				nd.Fanins[0] = pick
				changed = true
			}
		}
	}
	return a
}

func allMethods() []Method { return []Method{MethodVACSEM, MethodDPLL, MethodEnum} }

func TestVerifyERIdenticalCircuits(t *testing.T) {
	c := testutil.RandomCircuit(6, 20, 3, 1)
	for _, m := range allMethods() {
		r, err := VerifyER(c, c.Clone(), Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Value.Sign() != 0 {
			t.Errorf("%v: ER of identical circuits = %v, want 0", m, r.Value)
		}
	}
}

func TestVerifyERInvertedOutput(t *testing.T) {
	// Approximate = exact with one output inverted: that output always
	// differs, so ER = 1.
	c := circuit.New("inv")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, a, b)
	c.AddOutput(g, "y")
	ap := circuit.New("inv_a")
	a2 := ap.AddInput("a")
	b2 := ap.AddInput("b")
	g2 := ap.AddGate(circuit.Nand, a2, b2)
	ap.AddOutput(g2, "y")
	for _, m := range allMethods() {
		r, err := VerifyER(c, ap, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Value.Cmp(big.NewRat(1, 1)) != 0 {
			t.Errorf("%v: ER = %v, want 1", m, r.Value)
		}
	}
}

func TestVerifyMetricsRandomAllMethodsAgree(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		nIn := 4 + int(seed%6)
		nOut := 1 + int(seed%4)
		exact := testutil.RandomCircuit(nIn, 10+int(seed*3%30), nOut, seed)
		approx := approxVersion(exact, seed*13+7)
		wantER, wantMED, wantMHD := refMetrics(exact, approx)
		for _, m := range allMethods() {
			er, err := VerifyER(exact, approx, Options{Method: m})
			if err != nil {
				t.Fatalf("seed %d %v ER: %v", seed, m, err)
			}
			if er.Value.Cmp(wantER) != 0 {
				t.Errorf("seed %d %v: ER = %v, want %v", seed, m, er.Value, wantER)
			}
			med, err := VerifyMED(exact, approx, Options{Method: m})
			if err != nil {
				t.Fatalf("seed %d %v MED: %v", seed, m, err)
			}
			if med.Value.Cmp(wantMED) != 0 {
				t.Errorf("seed %d %v: MED = %v, want %v", seed, m, med.Value, wantMED)
			}
			mhd, err := VerifyMHD(exact, approx, Options{Method: m})
			if err != nil {
				t.Fatalf("seed %d %v MHD: %v", seed, m, err)
			}
			if mhd.Value.Cmp(wantMHD) != 0 {
				t.Errorf("seed %d %v: MHD = %v, want %v", seed, m, mhd.Value, wantMHD)
			}
		}
	}
}

func TestVerifyNoSynthMatchesSynth(t *testing.T) {
	exact := testutil.RandomCircuit(7, 25, 2, 99)
	approx := approxVersion(exact, 5)
	a, err := VerifyMED(exact, approx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := VerifyMED(exact, approx, Options{NoSynth: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value.Cmp(b.Value) != 0 {
		t.Errorf("MED with synth %v != without %v", a.Value, b.Value)
	}
}

func TestVerifyThresholdProb(t *testing.T) {
	// Exact: 2-bit identity; approx: output forced to 00. Deviation is
	// int(y), uniform over {0,1,2,3}. P(dev > 1) = 1/2, P(dev > 0) = 3/4,
	// P(dev > 3) = 0.
	exact := circuit.New("id2")
	a := exact.AddInput("a")
	b := exact.AddInput("b")
	exact.AddOutput(a, "y0")
	exact.AddOutput(b, "y1")
	approx := circuit.New("zero2")
	approx.AddInput("a")
	approx.AddInput("b")
	approx.AddOutput(0, "y0")
	approx.AddOutput(0, "y1")
	cases := []struct {
		t    int64
		want *big.Rat
	}{
		{0, big.NewRat(3, 4)},
		{1, big.NewRat(1, 2)},
		{2, big.NewRat(1, 4)},
		{3, new(big.Rat)},
		{100, new(big.Rat)},
	}
	for _, m := range allMethods() {
		for _, tc := range cases {
			r, err := VerifyThresholdProb(exact, approx, big.NewInt(tc.t), Options{Method: m})
			if err != nil {
				t.Fatalf("%v t=%d: %v", m, tc.t, err)
			}
			if r.Value.Cmp(tc.want) != 0 {
				t.Errorf("%v: P(dev>%d) = %v, want %v", m, tc.t, r.Value, tc.want)
			}
		}
	}
}

func TestVerifyMiterCustomWeights(t *testing.T) {
	// A custom 2-output miter with weights 3 and 5: value =
	// 3*P(out0) + 5*P(out1).
	m := circuit.New("custom")
	a := m.AddInput("a")
	b := m.AddInput("b")
	m.AddOutput(m.AddGate(circuit.And, a, b), "o0") // P = 1/4
	m.AddOutput(m.AddGate(circuit.Or, a, b), "o1")  // P = 3/4
	want := new(big.Rat).Add(big.NewRat(3, 4), big.NewRat(15, 4))
	for _, mm := range allMethods() {
		r, err := VerifyMiter("custom", m, []*big.Int{big.NewInt(3), big.NewInt(5)}, Options{Method: mm})
		if err != nil {
			t.Fatal(err)
		}
		if r.Value.Cmp(want) != 0 {
			t.Errorf("%v: custom metric = %v, want %v", mm, r.Value, want)
		}
	}
}

func TestVerifyInterfaceMismatch(t *testing.T) {
	a := testutil.RandomCircuit(4, 10, 2, 1)
	b := testutil.RandomCircuit(5, 10, 2, 1)
	if _, err := VerifyER(a, b, Options{}); err == nil {
		t.Error("expected input-count mismatch error")
	}
	c := testutil.RandomCircuit(4, 10, 3, 1)
	if _, err := VerifyMED(a, c, Options{}); err == nil {
		t.Error("expected output-count mismatch error")
	}
}

func TestVerifyTimeout(t *testing.T) {
	exact := testutil.RandomCircuit(20, 300, 4, 2)
	approx := approxVersion(exact, 77)
	_, err := VerifyMED(exact, approx, Options{Method: MethodEnum, TimeLimit: 1})
	if err != ErrTimeout && err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestResultFields(t *testing.T) {
	exact := testutil.RandomCircuit(5, 15, 2, 3)
	approx := approxVersion(exact, 9)
	r, err := VerifyMED(exact, approx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumInputs != 5 {
		t.Errorf("NumInputs = %d, want 5", r.NumInputs)
	}
	if len(r.Subs) != exact.NumOutputs() {
		t.Errorf("Subs = %d, want %d", len(r.Subs), exact.NumOutputs())
	}
	if r.Metric != "MED" {
		t.Errorf("Metric = %q", r.Metric)
	}
	if r.Runtime <= 0 {
		t.Errorf("Runtime not recorded")
	}
	for _, sub := range r.Subs {
		if sub.Count == nil || sub.Weight == nil {
			t.Errorf("sub %q missing count/weight", sub.Output)
		}
	}
	_ = r.Float()
}
