package core

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/counter"
	"vacsem/internal/miter"
	"vacsem/internal/synth"
)

// WCEResult reports a worst-case-error verification.
type WCEResult struct {
	// WCE is the maximum of |int(y) - int(y')| over all input patterns.
	WCE *big.Int
	// SATCalls is the number of threshold queries the binary search made.
	SATCalls int
	Runtime  time.Duration
}

// VerifyWCE computes the worst-case error max_x |int(y(x)) - int(y'(x))|
// exactly, by binary search over threshold miters: each probe asks the
// SAT question "can the deviation exceed t?" and the engine (including
// the simulation hook) answers with early termination. The number of
// probes is at most the output bit-width.
func VerifyWCE(exact, approx *circuit.Circuit, opt Options) (*WCEResult, error) {
	return VerifyWCEContext(context.Background(), exact, approx, opt)
}

// VerifyWCEContext is VerifyWCE with cooperative cancellation: the
// context reaches every SAT probe's decision loop.
func VerifyWCEContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*WCEResult, error) {
	start := time.Now()
	if exact.NumOutputs() != approx.NumOutputs() {
		return nil, fmt.Errorf("core: output count mismatch")
	}
	ctx, cancel := withTimeLimit(ctx, opt)
	defer cancel()
	res := &WCEResult{WCE: new(big.Int)}
	lo := new(big.Int)                                              // known achievable deviation
	hi := new(big.Int).Lsh(big.NewInt(1), uint(exact.NumOutputs())) // exclusive upper bound
	hi.Sub(hi, big.NewInt(1))                                       // max representable deviation

	// Exponential search from below first: real designs have WCE far
	// below the representable maximum, and SAT probes (achievable
	// deviations) terminate early while deep UNSAT probes are the
	// expensive ones — so find a tight bracket with doubling probes
	// before binary-searching it.
	probe := big.NewInt(1)
	for probe.Cmp(hi) < 0 {
		thr := new(big.Int).Sub(probe, big.NewInt(1))
		sat, err := thresholdSat(ctx, exact, approx, thr, opt)
		if err != nil {
			return nil, mapErr(ctx, err)
		}
		res.SATCalls++
		if !sat {
			hi.Sub(probe, big.NewInt(1))
			break
		}
		lo.Set(probe)
		probe.Lsh(probe, 1)
	}

	// Invariant: deviation > hi is unsatisfiable; deviation >= lo is
	// satisfiable (lo=0 trivially). Search the largest achievable value.
	for lo.Cmp(hi) < 0 {
		// mid = ceil((lo+hi+1)/2) = lo + (hi-lo+1)/2
		mid := new(big.Int).Sub(hi, lo)
		mid.Add(mid, big.NewInt(1))
		mid.Rsh(mid, 1)
		mid.Add(mid, lo)
		// Probe: deviation >= mid  <=>  deviation > mid-1.
		thr := new(big.Int).Sub(mid, big.NewInt(1))
		sat, err := thresholdSat(ctx, exact, approx, thr, opt)
		if err != nil {
			return nil, mapErr(ctx, err)
		}
		res.SATCalls++
		if sat {
			lo.Set(mid)
		} else {
			hi.Sub(mid, big.NewInt(1))
		}
	}
	res.WCE.Set(lo)
	res.Runtime = time.Since(start)
	return res, nil
}

// thresholdSat asks whether |int(y)-int(y')| > t is achievable.
func thresholdSat(ctx context.Context, exact, approx *circuit.Circuit, t *big.Int, opt Options) (bool, error) {
	m, err := miter.Threshold(exact, approx, t)
	if err != nil {
		return false, err
	}
	if !opt.NoSynth {
		m = synth.Compress(m)
	}
	out := m.Outputs[0]
	switch {
	case out == 0:
		return false, nil
	case m.Nodes[out].Kind == circuit.Not && m.Nodes[out].Fanins[0] == 0:
		return true, nil
	}
	sub, _ := m.ExtractCone(0)
	f, err := cnf.Encode(sub)
	if err != nil {
		return false, err
	}
	s := counter.New(f, counter.Config{
		EnableSim:  opt.Method == MethodVACSEM,
		Alpha:      opt.Alpha,
		MaxSimVars: opt.MaxSimVars,
	})
	return s.SatisfiableCtx(ctx)
}
