package core

import (
	"fmt"
	"math/big"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// ratWithinBand reports want/(1+eps) <= got <= want*(1+eps) in exact
// rational arithmetic.
func ratWithinBand(got, want *big.Rat, eps float64) bool {
	band := new(big.Rat).SetFloat64(1 + eps)
	hi := new(big.Rat).Mul(want, band)
	lo := new(big.Rat).Mul(got, band) // got*(1+eps) >= want <=> got >= want/(1+eps)
	return lo.Cmp(want) >= 0 && got.Cmp(hi) <= 0
}

// TestApproxAdderWithinEpsilon is the acceptance case of the approx
// backend: ER of an 8-bit approximate adder pair at ε=0.1, δ=0.05 must
// land within ε of the exact value, across seeded trials. Seeds are
// fixed, so the XOR sampling is deterministic and the test cannot
// flake.
func TestApproxAdderWithinEpsilon(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	apx := als.LowerORAdder(8, 3)
	ref, err := VerifyER(exact, apx, Options{Method: MethodVACSEM})
	if err != nil {
		t.Fatal(err)
	}
	trials := int64(4)
	if testing.Short() || testutil.RaceEnabled {
		// One seed keeps the acceptance parameters exercised without
		// dominating the package runtime (δ=0.05 means 33 estimation
		// rounds per trial; ~5x more under race instrumentation).
		trials = 1
	}
	for seed := int64(0); seed < trials; seed++ {
		res, err := VerifyER(exact, apx, Options{
			Method: MethodApprox, Epsilon: 0.1, Delta: 0.05, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ratWithinBand(res.Value, ref.Value, 0.1) {
			t.Errorf("seed %d: approx ER %s outside (1+0.1) band of exact %s",
				seed, res.Value.RatString(), ref.Value.RatString())
		}
		if res.Approx {
			if res.Epsilon != 0.1 {
				t.Errorf("seed %d: Epsilon = %g, want 0.1", seed, res.Epsilon)
			}
			if res.Delta <= 0 || res.Delta >= 1 || res.Confidence != 1-res.Delta {
				t.Errorf("seed %d: Delta/Confidence inconsistent: %g / %g",
					seed, res.Delta, res.Confidence)
			}
		} else if res.Value.Cmp(ref.Value) != 0 {
			t.Errorf("seed %d: exact-path approx %s != %s",
				seed, res.Value.RatString(), ref.Value.RatString())
		}
	}
}

// TestApproxCrossValidatesExactBackends checks the approx backend
// against every exact backend on small random circuit pairs (<= 16
// inputs): each estimate must land within the (1+ε) band of the exact
// value, which dpll, enum and bdd all agree on. The pairs are
// independent random circuits with the same I/O signature, so their
// deviation counts are large enough that at least some trials must go
// through XOR hashing rather than the small-count exact shortcut.
func TestApproxCrossValidatesExactBackends(t *testing.T) {
	const eps = 0.8
	trials := int64(8)
	if testing.Short() {
		trials = 3
	}
	hashed := 0
	for seed := int64(0); seed < trials; seed++ {
		n := 8 + int(seed%4)
		c := testutil.RandomCircuit(n, 15+int(seed*5%25), 2, seed+6061)
		apx := testutil.RandomCircuit(n, 15+int(seed*7%25), 2, seed+7207)
		apx.Name = c.Name
		est, err := VerifyER(c, apx, Options{
			Method: MethodApprox, Epsilon: eps, Delta: 0.45, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if est.Approx {
			hashed++
		}
		for _, m := range []Method{MethodDPLL, MethodEnum, MethodBDD} {
			ref, err := VerifyER(c, apx, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if est.Approx {
				if !ratWithinBand(est.Value, ref.Value, eps) {
					t.Errorf("seed %d: approx %s outside (1+%g) band of %v value %s",
						seed, est.Value.RatString(), eps, m, ref.Value.RatString())
				}
			} else if est.Value.Cmp(ref.Value) != 0 {
				t.Errorf("seed %d: exact-path approx %s != %v value %s",
					seed, est.Value.RatString(), m, ref.Value.RatString())
			}
		}
	}
	if hashed == 0 {
		t.Error("no trial exercised XOR hashing: every estimate took the exact shortcut")
	}
}

// TestApproxSeedDeterminism: one Options.Seed reproduces the estimate
// exactly, at any worker count — tasks derive their streams from the
// seed and their task index, never from scheduling.
func TestApproxSeedDeterminism(t *testing.T) {
	exact := gen.RippleCarryAdder(6)
	apx := als.LowerORAdder(6, 2)
	opt := Options{Method: MethodApprox, Epsilon: 0.3, Delta: 0.3, Seed: 11, Workers: 1}
	a, err := VerifyMED(exact, apx, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	b, err := VerifyMED(exact, apx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value.Cmp(b.Value) != 0 || a.Count.Cmp(b.Count) != 0 {
		t.Errorf("same seed, different estimates across worker counts: %s vs %s",
			a.Value.RatString(), b.Value.RatString())
	}
	if a.Approx != b.Approx || a.Epsilon != b.Epsilon || a.Delta != b.Delta {
		t.Errorf("approx metadata differs across worker counts: %+v vs %+v", a, b)
	}
}

// TestApproxProbeReuseAcrossTasks: two structurally isomorphic output
// cones over disjoint input halves are distinct plan tasks (the dedup
// key includes input positions) but extract to identical cone circuits
// and therefore identical CNF. Because every task draws its hash rows
// from the session seed alone and the engine shares one probe cache per
// approx session, the second task must replay the first task's probes
// from the cache instead of re-counting. Workers is pinned to 1 so the
// first task completes before the second starts: at least half of all
// probes are then cache hits, and the two estimates are identical.
func TestApproxProbeReuseAcrossTasks(t *testing.T) {
	m := circuit.New("twin_parity")
	ins := make([]int, 16)
	for i := range ins {
		ins[i] = m.AddInput(fmt.Sprintf("x%d", i))
	}
	parity := func(lo int) int {
		g := ins[lo]
		for i := lo + 1; i < lo+8; i++ {
			g = m.AddGate(circuit.Xor, g, ins[i])
		}
		return g
	}
	m.AddOutput(parity(0), "d0")
	m.AddOutput(parity(8), "d1")
	// Each parity cone has 128 models over its 8 inputs — above the
	// ε=0.8 pivot of 72, so both tasks go through XOR hashing.
	res, err := VerifyMiter("twin_parity", m,
		[]*big.Int{big.NewInt(1), big.NewInt(1)},
		Options{Method: MethodApprox, Epsilon: 0.8, Delta: 0.2, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subs) != 2 {
		t.Fatalf("expected 2 sub-miter tasks, got %d", len(res.Subs))
	}
	if !res.Subs[0].Approx || !res.Subs[1].Approx {
		t.Fatalf("expected both tasks hashed, got Approx=%v/%v",
			res.Subs[0].Approx, res.Subs[1].Approx)
	}
	if res.Subs[0].Count.Cmp(res.Subs[1].Count) != 0 {
		t.Errorf("isomorphic tasks disagree: %s vs %s",
			res.Subs[0].Count, res.Subs[1].Count)
	}
	probes, reused := res.TotalStats.ApproxProbes, res.TotalStats.ApproxProbesReused
	if probes == 0 {
		t.Fatal("no hash-cell probes recorded")
	}
	if reused == 0 || 2*reused < probes {
		t.Errorf("cross-task probe reuse too low: %d of %d probes reused", reused, probes)
	}
	if reused >= probes {
		t.Errorf("reuse cannot exceed total probes: %d of %d", reused, probes)
	}
	// Both cones are odd-parity functions: P(output=1) = 1/2 each, so
	// the weighted metric value is exactly 1.
	if !ratWithinBand(res.Value, big.NewRat(1, 1), 0.8) {
		t.Errorf("metric value %s outside (1+0.8) band of 1", res.Value.RatString())
	}
}

// TestApproxMethodNames pins the registry plumbing: the method name
// resolves both ways and exact methods report Confidence 1.
func TestApproxMethodNames(t *testing.T) {
	if MethodApprox.String() != "approx" {
		t.Errorf("MethodApprox.String() = %q", MethodApprox.String())
	}
	m, err := MethodByName("approx")
	if err != nil || m != MethodApprox {
		t.Errorf("MethodByName(approx) = %v, %v", m, err)
	}
	exact := gen.RippleCarryAdder(4)
	apx := als.LowerORAdder(4, 2)
	res, err := VerifyER(exact, apx, Options{Method: MethodVACSEM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx || res.Confidence != 1 {
		t.Errorf("exact result reports Approx=%v Confidence=%g", res.Approx, res.Confidence)
	}
}
