package core

import (
	"math/big"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// ratWithinBand reports want/(1+eps) <= got <= want*(1+eps) in exact
// rational arithmetic.
func ratWithinBand(got, want *big.Rat, eps float64) bool {
	band := new(big.Rat).SetFloat64(1 + eps)
	hi := new(big.Rat).Mul(want, band)
	lo := new(big.Rat).Mul(got, band) // got*(1+eps) >= want <=> got >= want/(1+eps)
	return lo.Cmp(want) >= 0 && got.Cmp(hi) <= 0
}

// TestApproxAdderWithinEpsilon is the acceptance case of the approx
// backend: ER of an 8-bit approximate adder pair at ε=0.1, δ=0.05 must
// land within ε of the exact value, across seeded trials. Seeds are
// fixed, so the XOR sampling is deterministic and the test cannot
// flake.
func TestApproxAdderWithinEpsilon(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	apx := als.LowerORAdder(8, 3)
	ref, err := VerifyER(exact, apx, Options{Method: MethodVACSEM})
	if err != nil {
		t.Fatal(err)
	}
	trials := int64(4)
	if testing.Short() || testutil.RaceEnabled {
		// One seed keeps the acceptance parameters exercised without
		// dominating the package runtime (δ=0.05 means 33 estimation
		// rounds per trial; ~5x more under race instrumentation).
		trials = 1
	}
	for seed := int64(0); seed < trials; seed++ {
		res, err := VerifyER(exact, apx, Options{
			Method: MethodApprox, Epsilon: 0.1, Delta: 0.05, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ratWithinBand(res.Value, ref.Value, 0.1) {
			t.Errorf("seed %d: approx ER %s outside (1+0.1) band of exact %s",
				seed, res.Value.RatString(), ref.Value.RatString())
		}
		if res.Approx {
			if res.Epsilon != 0.1 {
				t.Errorf("seed %d: Epsilon = %g, want 0.1", seed, res.Epsilon)
			}
			if res.Delta <= 0 || res.Delta >= 1 || res.Confidence != 1-res.Delta {
				t.Errorf("seed %d: Delta/Confidence inconsistent: %g / %g",
					seed, res.Delta, res.Confidence)
			}
		} else if res.Value.Cmp(ref.Value) != 0 {
			t.Errorf("seed %d: exact-path approx %s != %s",
				seed, res.Value.RatString(), ref.Value.RatString())
		}
	}
}

// TestApproxCrossValidatesExactBackends checks the approx backend
// against every exact backend on small random circuit pairs (<= 16
// inputs): each estimate must land within the (1+ε) band of the exact
// value, which dpll, enum and bdd all agree on. The pairs are
// independent random circuits with the same I/O signature, so their
// deviation counts are large enough that at least some trials must go
// through XOR hashing rather than the small-count exact shortcut.
func TestApproxCrossValidatesExactBackends(t *testing.T) {
	const eps = 0.8
	trials := int64(8)
	if testing.Short() {
		trials = 3
	}
	hashed := 0
	for seed := int64(0); seed < trials; seed++ {
		n := 8 + int(seed%4)
		c := testutil.RandomCircuit(n, 15+int(seed*5%25), 2, seed+6061)
		apx := testutil.RandomCircuit(n, 15+int(seed*7%25), 2, seed+7207)
		apx.Name = c.Name
		est, err := VerifyER(c, apx, Options{
			Method: MethodApprox, Epsilon: eps, Delta: 0.45, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if est.Approx {
			hashed++
		}
		for _, m := range []Method{MethodDPLL, MethodEnum, MethodBDD} {
			ref, err := VerifyER(c, apx, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if est.Approx {
				if !ratWithinBand(est.Value, ref.Value, eps) {
					t.Errorf("seed %d: approx %s outside (1+%g) band of %v value %s",
						seed, est.Value.RatString(), eps, m, ref.Value.RatString())
				}
			} else if est.Value.Cmp(ref.Value) != 0 {
				t.Errorf("seed %d: exact-path approx %s != %v value %s",
					seed, est.Value.RatString(), m, ref.Value.RatString())
			}
		}
	}
	if hashed == 0 {
		t.Error("no trial exercised XOR hashing: every estimate took the exact shortcut")
	}
}

// TestApproxSeedDeterminism: one Options.Seed reproduces the estimate
// exactly, at any worker count — tasks derive their streams from the
// seed and their task index, never from scheduling.
func TestApproxSeedDeterminism(t *testing.T) {
	exact := gen.RippleCarryAdder(6)
	apx := als.LowerORAdder(6, 2)
	opt := Options{Method: MethodApprox, Epsilon: 0.3, Delta: 0.3, Seed: 11, Workers: 1}
	a, err := VerifyMED(exact, apx, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	b, err := VerifyMED(exact, apx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value.Cmp(b.Value) != 0 || a.Count.Cmp(b.Count) != 0 {
		t.Errorf("same seed, different estimates across worker counts: %s vs %s",
			a.Value.RatString(), b.Value.RatString())
	}
	if a.Approx != b.Approx || a.Epsilon != b.Epsilon || a.Delta != b.Delta {
		t.Errorf("approx metadata differs across worker counts: %+v vs %+v", a, b)
	}
}

// TestApproxMethodNames pins the registry plumbing: the method name
// resolves both ways and exact methods report Confidence 1.
func TestApproxMethodNames(t *testing.T) {
	if MethodApprox.String() != "approx" {
		t.Errorf("MethodApprox.String() = %q", MethodApprox.String())
	}
	m, err := MethodByName("approx")
	if err != nil || m != MethodApprox {
		t.Errorf("MethodByName(approx) = %v, %v", m, err)
	}
	exact := gen.RippleCarryAdder(4)
	apx := als.LowerORAdder(4, 2)
	res, err := VerifyER(exact, apx, Options{Method: MethodVACSEM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Approx || res.Confidence != 1 {
		t.Errorf("exact result reports Approx=%v Confidence=%g", res.Approx, res.Confidence)
	}
}
