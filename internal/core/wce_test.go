package core

import (
	"math/big"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// bruteWCE computes the worst-case error per pattern.
func bruteWCE(exact, approx interface {
	EvalBig(*big.Int) *big.Int
	NumInputs() int
}, nIn int) *big.Int {
	max := new(big.Int)
	for x := uint64(0); x < 1<<uint(nIn); x++ {
		xb := new(big.Int).SetUint64(x)
		d := new(big.Int).Sub(exact.EvalBig(xb), approx.EvalBig(xb))
		d.Abs(d)
		if d.Cmp(max) > 0 {
			max.Set(d)
		}
	}
	return max
}

func TestWCETruncatedAdder(t *testing.T) {
	n, k := 5, 2
	exact := gen.RippleCarryAdder(n)
	approx := als.TruncatedAdder(n, k)
	want := bruteWCE(exact, approx, 2*n)
	for _, m := range []Method{MethodVACSEM, MethodDPLL} {
		r, err := VerifyWCE(exact, approx, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if r.WCE.Cmp(want) != 0 {
			t.Errorf("%v: WCE = %v, want %v", m, r.WCE, want)
		}
		if r.SATCalls == 0 || r.Runtime <= 0 {
			t.Errorf("%v: bad bookkeeping %+v", m, r)
		}
	}
}

func TestWCEIdenticalIsZero(t *testing.T) {
	c := gen.ArrayMultiplier(3)
	r, err := VerifyWCE(c, c.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WCE.Sign() != 0 {
		t.Errorf("WCE of identical circuits = %v", r.WCE)
	}
}

func TestWCERandomCircuits(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		exact := testutil.RandomCircuit(5, 14, 3, seed+40)
		approx := approxVersion(exact, seed*11+3)
		want := bruteWCE(exact, approx, 5)
		r, err := VerifyWCE(exact, approx, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.WCE.Cmp(want) != 0 {
			t.Errorf("seed %d: WCE = %v, want %v", seed, r.WCE, want)
		}
	}
}

func TestWCEWideAdder(t *testing.T) {
	// Beyond per-pattern enumeration comfort (2^24 patterns): a 12-bit
	// truncated adder. Deviation = lowa + lowb <= 2*(2^k - 1), and that
	// bound is achieved. (Wider adders need CDCL for the UNSAT probes of
	// the binary search; our counter intentionally omits learning.)
	n, k := 12, 3
	exact := gen.RippleCarryAdder(n)
	approx := als.TruncatedAdder(n, k)
	r, err := VerifyWCE(exact, approx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewInt(2 * (1<<uint(k) - 1))
	if r.WCE.Cmp(want) != 0 {
		t.Errorf("WCE = %v, want %v", r.WCE, want)
	}
}

func TestWCEMultiplier(t *testing.T) {
	n, k := 4, 3
	exact := gen.ArrayMultiplier(n)
	approx := als.TruncatedMultiplier(n, k)
	want := bruteWCE(exact, approx, 2*n)
	r, err := VerifyWCE(exact, approx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WCE.Cmp(want) != 0 {
		t.Errorf("WCE = %v, want %v", r.WCE, want)
	}
}
