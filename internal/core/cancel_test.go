package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/counter"
	"vacsem/internal/gen"
)

// TestCancelMidCount cancels the context while the DPLL counter is deep
// in its search on a hard miter (a 10x10 multiplier ER problem runs for
// tens of seconds) and asserts a prompt return with context.Canceled —
// real cancellation, not deadline expiry.
func TestCancelMidCount(t *testing.T) {
	exact := gen.ArrayMultiplier(10)
	approx := als.TruncatedMultiplier(10, 5)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := VerifyERContext(ctx, exact, approx, Options{Method: MethodDPLL})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: the solvers poll every 1024 decisions, far below
	// a second of work; the slack covers loaded CI machines.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestCancelEnumMidCount exercises the simulator's per-chunk poll: a
// 28-input enumeration (2^22 blocks) is cancelled mid-loop.
func TestCancelEnumMidCount(t *testing.T) {
	exact := gen.RippleCarryAdder(14)
	approx := als.LowerORAdder(14, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := VerifyMEDContext(ctx, exact, approx, Options{Method: MethodEnum})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestCancelledContextNotConflatedWithTimeout is the regression test for
// the old solveSub behaviour that mapped every counter error to
// ErrTimeout: a cancelled context must surface as context.Canceled.
func TestCancelledContextNotConflatedWithTimeout(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodVACSEM, MethodDPLL, MethodEnum, MethodBDD} {
		_, err := VerifyMEDContext(ctx, exact, approx, Options{Method: m})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Errorf("%v: cancellation conflated with ErrTimeout", m)
		}
	}
}

// TestTimeLimitStillMapsToErrTimeout pins the public contract: expiry of
// Options.TimeLimit (as opposed to caller cancellation) surfaces as the
// historical ErrTimeout for every backend.
func TestTimeLimitStillMapsToErrTimeout(t *testing.T) {
	exact := gen.ArrayMultiplier(8)
	approx := als.TruncatedMultiplier(8, 4)
	for _, m := range []Method{MethodDPLL, MethodEnum} {
		_, err := VerifyMED(exact, approx, Options{Method: m, TimeLimit: time.Nanosecond})
		if err != nil && !errors.Is(err, ErrTimeout) {
			t.Errorf("%v: err = %v, want ErrTimeout (or instant success)", m, err)
		}
	}
}

// TestCallerDeadlineNotConflatedWithTimeout pins the other half of the
// mapErr contract: a deadline the *caller* put on the context must
// surface as context.DeadlineExceeded even when Options.TimeLimit is
// also set. (A previous version mapped any DeadlineExceeded to
// ErrTimeout whenever TimeLimit > 0, swallowing caller deadlines; the
// run's own limit is now identified by its cancellation cause.)
func TestCallerDeadlineNotConflatedWithTimeout(t *testing.T) {
	exact := gen.ArrayMultiplier(10)
	approx := als.TruncatedMultiplier(10, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := VerifyERContext(ctx, exact, approx, Options{Method: MethodDPLL, TimeLimit: time.Hour})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Error("caller deadline conflated with the run's own ErrTimeout")
	}
}

// TestWorkersParallelMatchesSequential runs the same MED verification
// with 1 and 4 workers and asserts bit-identical Value and Count plus
// identical sub-result ordering — the determinism contract of the
// worker pool. Run under -race this also exercises the pool for data
// races.
func TestWorkersParallelMatchesSequential(t *testing.T) {
	exact := gen.RippleCarryAdder(16)
	approx := als.LowerORAdder(16, 5)
	seq, err := VerifyMED(exact, approx, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := VerifyMED(exact, approx, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Value.Cmp(par.Value) != 0 {
		t.Errorf("Value: parallel %v != sequential %v", par.Value, seq.Value)
	}
	if seq.Count.Cmp(par.Count) != 0 {
		t.Errorf("Count: parallel %v != sequential %v", par.Count, seq.Count)
	}
	if len(seq.Subs) != len(par.Subs) {
		t.Fatalf("sub count: %d vs %d", len(par.Subs), len(seq.Subs))
	}
	for i := range seq.Subs {
		if seq.Subs[i].Output != par.Subs[i].Output {
			t.Errorf("sub %d: order %q vs %q", i, par.Subs[i].Output, seq.Subs[i].Output)
		}
		if seq.Subs[i].Count.Cmp(par.Subs[i].Count) != 0 {
			t.Errorf("sub %d (%s): count %v vs %v", i, seq.Subs[i].Output,
				par.Subs[i].Count, seq.Subs[i].Count)
		}
	}
}

// TestTotalStatsAggregates checks Result.TotalStats equals the field
// sum over Subs.
func TestTotalStatsAggregates(t *testing.T) {
	exact := gen.RippleCarryAdder(12)
	approx := als.LowerORAdder(12, 4)
	r, err := VerifyMED(exact, approx, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want counter.Stats
	for _, sub := range r.Subs {
		want.Add(sub.Stats)
	}
	if want != r.TotalStats {
		t.Errorf("TotalStats = %+v, want %+v", r.TotalStats, want)
	}
	if r.TotalStats.Propagations == 0 {
		t.Error("TotalStats.Propagations = 0; expected non-trivial work")
	}
}

// TestWCEContextCancel covers the SAT-probe path of VerifyWCEContext.
func TestWCEContextCancel(t *testing.T) {
	exact := gen.ArrayMultiplier(10)
	approx := als.TruncatedMultiplier(10, 5)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := VerifyWCEContext(ctx, exact, approx, Options{Method: MethodDPLL})
	if err == nil {
		return // solved before the cancel landed: fine
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
