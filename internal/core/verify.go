// Package core orchestrates average-error verification: it builds the
// approximation miters (Section II-B of the paper), resolves the
// configured method to a verification backend (internal/engine), and
// shapes the backend's outcome into the metric-level API of the paper.
// The four built-in backends cover the paper's contribution (the
// simulation-enhanced counter) and its three comparison flows (plain
// DPLL counting, exhaustive enumeration, ROBDDs).
package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/circuit"
	"vacsem/internal/counter"
	"vacsem/internal/engine"
	"vacsem/internal/miter"
	"vacsem/internal/obs"
)

// Run-level metrics, updated once per verification.
var (
	mRuns       = obs.Default.Counter("core.runs")
	mRunErrors  = obs.Default.Counter("core.run_errors")
	hRunSeconds = obs.Default.Histogram("core.run_seconds", nil)
)

// Method selects the verification engine.
type Method int

const (
	// MethodVACSEM is the paper's contribution: the DPLL model counter
	// with the simulation hook and dynamic controller enabled.
	MethodVACSEM Method = iota
	// MethodDPLL is the same counter with simulation disabled — the role
	// GANAK plays in the paper's comparisons.
	MethodDPLL
	// MethodEnum is exhaustive word-parallel logic simulation of the
	// miter over all 2^I input patterns.
	MethodEnum
	// MethodBDD is the prior-art decision-diagram approach ([3]-[6] in
	// the paper): build ROBDDs of the deviation bits and count over the
	// diagrams. It fails with ErrBDDTooLarge when the diagram explodes —
	// the scalability wall the paper's footnote 2 describes.
	MethodBDD
)

// String returns the method name, which doubles as the backend's key in
// the engine registry.
func (m Method) String() string {
	switch m {
	case MethodVACSEM:
		return "vacsem"
	case MethodDPLL:
		return "dpll"
	case MethodEnum:
		return "enum"
	case MethodBDD:
		return "bdd"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// MethodByName resolves a method name ("vacsem", "dpll", "ganak",
// "enum", "bdd") to its Method value, for CLI flag parsing.
func MethodByName(name string) (Method, error) {
	switch name {
	case "vacsem":
		return MethodVACSEM, nil
	case "dpll", "ganak":
		return MethodDPLL, nil
	case "enum":
		return MethodEnum, nil
	case "bdd":
		return MethodBDD, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (backends: %v)", name, engine.Names())
	}
}

// ErrTimeout is returned when the configured Options.TimeLimit expires
// before verification completes. Cancellation through a caller-supplied
// context is reported as that context's own error instead
// (context.Canceled / context.DeadlineExceeded).
var ErrTimeout = errors.New("core: time limit exceeded")

// ErrTooLarge is returned by MethodEnum when the input space exceeds the
// enumeration capability (more than 62 inputs).
var ErrTooLarge = engine.ErrTooLarge

// ErrBDDTooLarge is returned by MethodBDD when the decision diagram
// exceeds the node budget (Options.BDDNodeLimit).
var ErrBDDTooLarge = bdd.ErrNodeLimit

// ProgressEvent reports the completion of one sub-miter; see
// engine.ProgressEvent.
type ProgressEvent = engine.ProgressEvent

// ProgressFunc observes per-sub-miter completion events; see
// engine.ProgressFunc.
type ProgressFunc = engine.ProgressFunc

// Options configures a verification run. The zero value uses MethodVACSEM
// with synthesis enabled, no time limit, and one worker per CPU.
type Options struct {
	Method Method
	// NoSynth skips the per-sub-miter synthesis (compress) step.
	NoSynth bool
	// TimeLimit bounds the entire verification (all sub-miters). 0 = none.
	// It is applied as a context deadline; the Verify*Context variants
	// additionally honour their caller's context.
	TimeLimit time.Duration
	// Alpha overrides the density-score scaling factor (default 2).
	Alpha float64
	// MaxSimVars overrides the simulation input cap (default 26).
	MaxSimVars int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// DisableSharedCache gives every sub-miter solver a private component
	// cache instead of the run-wide shared one (ablation; results are
	// bit-identical either way, sharing only adds cross-sub-miter hits).
	DisableSharedCache bool
	// DisableIBCP turns off failed-literal probing (ablation).
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning (ablation).
	DisableLearning bool
	// MinSimGates overrides the minimum sub-circuit size the controller
	// hands to the simulator (default 24).
	MinSimGates int
	// BDDNodeLimit caps the decision-diagram size for MethodBDD
	// (default 1<<22 nodes).
	BDDNodeLimit int
	// Workers bounds the number of sub-miters solved concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential solving.
	// Results are deterministic regardless of the worker count.
	Workers int
	// SimWorkers bounds the goroutines MethodEnum's simulation kernel
	// spreads the pattern-block range across. 0 means
	// runtime.GOMAXPROCS(0); counts are bit-identical at any setting.
	SimWorkers int
	// Progress, when non-nil, receives one event per completed
	// sub-miter (possibly out of output order under concurrency; calls
	// are serialized). The callback must not block.
	Progress ProgressFunc
}

// engineConfig maps the method-independent options onto the backend
// configuration.
func (o *Options) engineConfig() engine.Config {
	return engine.Config{
		NoSynth:         o.NoSynth,
		Alpha:           o.Alpha,
		MaxSimVars:      o.MaxSimVars,
		MinSimGates:     o.MinSimGates,
		DisableCache:    o.DisableCache,
		SharedCache:     !o.DisableSharedCache,
		DisableIBCP:     o.DisableIBCP,
		DisableLearning: o.DisableLearning,
		BDDNodeLimit:    o.BDDNodeLimit,
		Workers:         o.Workers,
		SimWorkers:      o.SimWorkers,
	}
}

// SubResult reports one sub-miter's #SAT problem. Count is always
// non-nil, including trivial and error paths.
type SubResult = engine.SubResult

// Result reports a verified metric.
type Result struct {
	Metric    string
	Method    Method
	Value     *big.Rat // the metric value (e.g. ER in [0,1], MED >= 0)
	Count     *big.Int // weighted pattern count (the numerator of Value)
	NumInputs int
	Runtime   time.Duration
	Subs      []SubResult
	// TotalStats aggregates the counter statistics of every sub-miter
	// (Stats.Add over Subs), so reporting layers need not re-sum fields.
	TotalStats counter.Stats
}

// Float returns the metric value as a float64 (inexact for huge MEDs).
func (r *Result) Float() float64 {
	f, _ := r.Value.Float64()
	return f
}

// VerifyER verifies the error rate (Eq. 2): the fraction of input
// patterns on which the approximate circuit's outputs differ from the
// exact circuit's.
func VerifyER(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyERContext(context.Background(), exact, approx, opt)
}

// VerifyERContext is VerifyER with cooperative cancellation.
func VerifyERContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.ER(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter(ctx, "ER", m, uniformWeights(1), opt)
}

// VerifyMED verifies the mean error distance (Eq. 4): the average of
// |int(y) - int(y')| over all input patterns, treating outputs as
// unsigned binary numbers, LSB first.
func VerifyMED(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyMEDContext(context.Background(), exact, approx, opt)
}

// VerifyMEDContext is VerifyMED with cooperative cancellation.
func VerifyMEDContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.MED(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter(ctx, "MED", m, powerWeights(m.NumOutputs()), opt)
}

// VerifyMHD verifies the mean Hamming distance: the average number of
// output bits on which the circuits disagree.
func VerifyMHD(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyMHDContext(context.Background(), exact, approx, opt)
}

// VerifyMHDContext is VerifyMHD with cooperative cancellation.
func VerifyMHDContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.HD(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter(ctx, "MHD", m, uniformWeights(m.NumOutputs()), opt)
}

// VerifyThresholdProb verifies P(|int(y) - int(y')| > t), the probability
// that the deviation exceeds a threshold (the MACACO-style metric).
func VerifyThresholdProb(exact, approx *circuit.Circuit, t *big.Int, opt Options) (*Result, error) {
	return VerifyThresholdProbContext(context.Background(), exact, approx, t, opt)
}

// VerifyThresholdProbContext is VerifyThresholdProb with cooperative
// cancellation.
func VerifyThresholdProbContext(ctx context.Context, exact, approx *circuit.Circuit, t *big.Int, opt Options) (*Result, error) {
	m, err := miter.Threshold(exact, approx, t)
	if err != nil {
		return nil, err
	}
	r, err := verifyMiter(ctx, "P(dev>t)", m, uniformWeights(1), opt)
	if err != nil {
		return nil, err
	}
	r.Metric = fmt.Sprintf("P(dev>%v)", t)
	return r, nil
}

// VerifyMiter verifies a user-supplied deviation miter: the metric value
// is sum_j weight_j * P(output_j = 1). This is the extension point for
// custom average-error metrics (Section II-A: "other average error
// metrics can also be converted into #SAT problems similarly").
func VerifyMiter(name string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	return VerifyMiterContext(context.Background(), name, m, weights, opt)
}

// VerifyMiterContext is VerifyMiter with cooperative cancellation.
func VerifyMiterContext(ctx context.Context, name string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != m.NumOutputs() {
		return nil, fmt.Errorf("core: %d weights for %d outputs", len(weights), m.NumOutputs())
	}
	return verifyMiter(ctx, name, m, weights, opt)
}

func uniformWeights(n int) []*big.Int {
	w := make([]*big.Int, n)
	for i := range w {
		w[i] = big.NewInt(1)
	}
	return w
}

func powerWeights(n int) []*big.Int {
	w := make([]*big.Int, n)
	for i := range w {
		w[i] = new(big.Int).Lsh(big.NewInt(1), uint(i))
	}
	return w
}

// errRunDeadline is the cancellation cause installed by withTimeLimit,
// so mapErr can tell the run's own TimeLimit expiry apart from a
// deadline the caller layered onto the context.
var errRunDeadline = errors.New("core: run time limit reached")

// withTimeLimit layers Options.TimeLimit onto the caller's context as a
// deadline, tagged with errRunDeadline as the cancellation cause. The
// returned cancel func must always be called.
func withTimeLimit(ctx context.Context, opt Options) (context.Context, context.CancelFunc) {
	if opt.TimeLimit > 0 {
		return context.WithTimeoutCause(ctx, opt.TimeLimit, errRunDeadline)
	}
	return context.WithCancel(ctx)
}

// mapErr shapes backend errors for the public API: when the run's own
// TimeLimit produced the deadline — identified by the errRunDeadline
// cancellation cause, not by TimeLimit merely being set — expiry
// surfaces as the historical ErrTimeout. Every other error, including
// context.Canceled and a context.DeadlineExceeded from a deadline the
// caller put on the context, propagates verbatim. (An earlier version
// mapped any DeadlineExceeded to ErrTimeout whenever TimeLimit > 0,
// swallowing caller deadlines; before that, every counter error became
// a timeout.)
func mapErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, counter.ErrTimeout) {
		return ErrTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) && errors.Is(context.Cause(ctx), errRunDeadline) {
		return ErrTimeout
	}
	return err
}

// verifyMiter resolves the configured method to a backend through the
// engine registry and runs the task — no method dispatch lives here.
// Each verification is one "run" trace span; the backend and sub-miter
// spans nest under it through the context.
func verifyMiter(ctx context.Context, metric string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	start := time.Now()
	be, err := engine.Lookup(opt.Method.String())
	if err != nil {
		return nil, err
	}
	mRuns.Inc()
	tr := obs.Active()
	var runSpan obs.SpanID
	if tr != nil {
		runSpan = tr.StartSpan(obs.SpanFrom(ctx), "run", obs.Fields{
			"metric": metric, "backend": opt.Method.String(),
			"inputs": m.NumInputs(), "outputs": m.NumOutputs(),
		})
		ctx = obs.WithSpan(ctx, runSpan)
	}
	ctx, cancel := withTimeLimit(ctx, opt)
	defer cancel()
	out, err := be.Solve(ctx, &engine.Task{
		Metric:   metric,
		Miter:    m,
		Weights:  weights,
		Config:   opt.engineConfig(),
		Progress: opt.Progress,
	})
	if err != nil {
		err = mapErr(ctx, err)
		mRunErrors.Inc()
		hRunSeconds.Observe(time.Since(start).Seconds())
		if tr != nil {
			tr.EndSpan(runSpan, "run", obs.Fields{"error": err.Error()})
		}
		return nil, err
	}
	res := &Result{
		Metric:    metric,
		Method:    opt.Method,
		NumInputs: m.NumInputs(),
		Count:     out.Count,
		Subs:      out.Subs,
		Runtime:   time.Since(start),
	}
	for i := range res.Subs {
		res.TotalStats.Add(res.Subs[i].Stats)
	}
	denom := new(big.Int).Lsh(big.NewInt(1), uint(m.NumInputs()))
	res.Value = new(big.Rat).SetFrac(new(big.Int).Set(res.Count), denom)
	hRunSeconds.Observe(res.Runtime.Seconds())
	if tr != nil {
		tr.EndSpan(runSpan, "run", obs.Fields{
			"count": res.Count.String(), "value": res.Value.RatString(),
			"stats": res.TotalStats,
		})
	}
	return res, nil
}
