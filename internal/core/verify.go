// Package core orchestrates average-error verification: it compiles the
// requested metrics into a verification session (internal/plan) over a
// shared base miter (Section II-B of the paper), resolves the
// configured method to a verification backend (internal/engine), and
// shapes the session's outcome into the metric-level API of the paper.
// The built-in backends cover the paper's contribution (the
// simulation-enhanced counter), its three comparison flows (plain
// DPLL counting, exhaustive enumeration, ROBDDs), and an (ε, δ)
// approximate-counting mode (XOR streamlining over the same counter).
//
// VerifyMetrics verifies several metrics in one deduplicated session;
// the single-metric Verify* functions are thin wrappers around it and
// return bit-identical results.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/circuit"
	"vacsem/internal/counter"
	"vacsem/internal/engine"
	"vacsem/internal/obs"
	"vacsem/internal/plan"
	"vacsem/internal/store"
)

// Session- and run-level metrics. A session is one VerifyMetrics (or
// wrapper) invocation; a run is one metric verified inside it.
var (
	mSessions   = obs.Default.Counter("core.sessions")
	mRuns       = obs.Default.Counter("core.runs")
	mRunErrors  = obs.Default.Counter("core.run_errors")
	hRunSeconds = obs.Default.Histogram("core.run_seconds", nil)
)

// Method selects the verification engine.
type Method int

const (
	// MethodVACSEM is the paper's contribution: the DPLL model counter
	// with the simulation hook and dynamic controller enabled.
	MethodVACSEM Method = iota
	// MethodDPLL is the same counter with simulation disabled — the role
	// GANAK plays in the paper's comparisons.
	MethodDPLL
	// MethodEnum is exhaustive word-parallel logic simulation of the
	// miter over all 2^I input patterns.
	MethodEnum
	// MethodBDD is the prior-art decision-diagram approach ([3]-[6] in
	// the paper): build ROBDDs of the deviation bits and count over the
	// diagrams. It fails with ErrBDDTooLarge when the diagram explodes —
	// the scalability wall the paper's footnote 2 describes.
	MethodBDD
	// MethodApprox is (ε, δ) approximate counting: each task's count is
	// estimated by XOR streamlining (random parity constraints hashing
	// the solution space into cells) plus exact cell counting, so the
	// reported value is within a (1+ε) factor of the exact value with
	// probability at least 1-δ. Options.Epsilon, Delta and Seed tune it.
	MethodApprox
)

// String returns the method name, which doubles as the backend's key in
// the engine registry.
func (m Method) String() string {
	switch m {
	case MethodVACSEM:
		return "vacsem"
	case MethodDPLL:
		return "dpll"
	case MethodEnum:
		return "enum"
	case MethodBDD:
		return "bdd"
	case MethodApprox:
		return "approx"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// MethodByName resolves a method name ("vacsem", "dpll", "ganak",
// "enum", "bdd", "approx") to its Method value, for CLI flag parsing.
func MethodByName(name string) (Method, error) {
	switch name {
	case "vacsem":
		return MethodVACSEM, nil
	case "dpll", "ganak":
		return MethodDPLL, nil
	case "enum":
		return MethodEnum, nil
	case "bdd":
		return MethodBDD, nil
	case "approx":
		return MethodApprox, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (backends: %v)", name, engine.Names())
	}
}

// ErrTimeout is returned when the configured Options.TimeLimit expires
// before verification completes. Cancellation through a caller-supplied
// context is reported as that context's own error instead
// (context.Canceled / context.DeadlineExceeded).
var ErrTimeout = errors.New("core: time limit exceeded")

// ErrTooLarge is returned by MethodEnum when the input space exceeds the
// enumeration capability (more than 62 inputs).
var ErrTooLarge = engine.ErrTooLarge

// ErrBDDTooLarge is returned by MethodBDD when the decision diagram
// exceeds the node budget (Options.BDDNodeLimit).
var ErrBDDTooLarge = bdd.ErrNodeLimit

// MetricKind selects an average-error metric in a MetricSpec; see
// plan.Kind.
type MetricKind = plan.Kind

// The metric kinds VerifyMetrics accepts.
const (
	MetricER            = plan.ER
	MetricMED           = plan.MED
	MetricMHD           = plan.MHD
	MetricThresholdProb = plan.ThresholdProb
)

// MetricSpec requests one metric in a VerifyMetrics session; see
// plan.Spec. MetricThresholdProb carries its threshold t in
// Spec.Threshold.
type MetricSpec = plan.Spec

// MetricSpecByName resolves a CLI metric name ("er", "med", "mhd",
// "thr") to a spec; "thr" attaches the given deviation threshold.
func MetricSpecByName(name string, threshold *big.Int) (MetricSpec, error) {
	switch name {
	case "er":
		return MetricSpec{Kind: MetricER}, nil
	case "med":
		return MetricSpec{Kind: MetricMED}, nil
	case "mhd":
		return MetricSpec{Kind: MetricMHD}, nil
	case "thr":
		var t *big.Int
		if threshold != nil {
			t = new(big.Int).Set(threshold)
		}
		return MetricSpec{Kind: MetricThresholdProb, Threshold: t}, nil
	default:
		return MetricSpec{}, fmt.Errorf("core: unknown metric %q (want er, med, mhd or thr)", name)
	}
}

// ProgressEvent reports the completion of one metric output bit; see
// plan.ProgressEvent.
type ProgressEvent = plan.ProgressEvent

// ProgressFunc observes per-bit completion events; see plan.ProgressFunc.
type ProgressFunc = plan.ProgressFunc

// Options configures a verification run. The zero value uses MethodVACSEM
// with synthesis enabled, no time limit, and one worker per CPU.
type Options struct {
	Method Method
	// NoSynth skips the synthesis (compress) steps: the session's base
	// compression, the per-task cone compression, and the bdd backend's
	// own pass.
	NoSynth bool
	// TimeLimit bounds the entire verification (all tasks of the
	// session). 0 = none. It is applied as a context deadline; the
	// Verify*Context variants additionally honour their caller's context.
	TimeLimit time.Duration
	// Alpha overrides the density-score scaling factor (default 2).
	Alpha float64
	// MaxSimVars overrides the simulation input cap (default 26).
	MaxSimVars int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// DisableSharedCache gives every task solver a private component
	// cache instead of the session-wide shared one (ablation; results
	// are bit-identical either way, sharing only adds cross-task hits —
	// including across metrics of one session).
	DisableSharedCache bool
	// Store, when non-nil, is a cross-request result store shared across
	// verification calls (typically one per process — vacsem-serve
	// injects its global store). Counting backends serve tasks whose
	// canonical cone keys already have compatible stored counts without
	// re-solving them, record fresh solves back with provenance, and use
	// the store's component tier as the session's shared cache. Exact
	// results are bit-identical with or without a store; approximate
	// results reuse only entries whose (ε, δ) guarantee is at least as
	// tight as the request's. Ignored when DisableCache is set.
	Store *store.Store
	// DisableIBCP turns off failed-literal probing (ablation).
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning (ablation).
	DisableLearning bool
	// MinSimGates overrides the minimum sub-circuit size the controller
	// hands to the simulator (default 24).
	MinSimGates int
	// BDDNodeLimit caps the decision-diagram size for MethodBDD
	// (default 1<<22 nodes).
	BDDNodeLimit int
	// BDDReorder enables dynamic variable reordering (window sifting)
	// during MethodBDD's diagram builds.
	BDDReorder bool
	// Workers bounds the number of tasks solved concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential solving.
	// Results are deterministic regardless of the worker count.
	Workers int
	// SimWorkers bounds the goroutines MethodEnum's simulation kernel
	// spreads the pattern-block range across. 0 means
	// runtime.GOMAXPROCS(0); counts are bit-identical at any setting.
	SimWorkers int
	// Epsilon is MethodApprox's multiplicative tolerance: every task
	// count is within a (1+ε) factor of the exact count with probability
	// 1-δ. 0 means the ApproxMC default of 0.8. Exact methods ignore it.
	Epsilon float64
	// Delta is MethodApprox's per-task failure probability (0 means the
	// default of 0.2). Exact methods ignore it.
	Delta float64
	// Seed drives every randomized path of the run — today MethodApprox's
	// XOR sampling (hash rows are a pure function of Seed and position,
	// so results are reproducible at any worker count and structurally
	// identical tasks share probe outcomes). The exact methods are fully
	// deterministic and ignore it.
	Seed int64
	// HashDensity pins MethodApprox's hash-row density (probability each
	// sampling variable joins a parity row). 0 means the automatic
	// sparse schedule; 0.5 is the classical dense family (ablation
	// baseline). Exact methods ignore it.
	HashDensity float64
	// NoSupportMin disables MethodApprox's independent-support
	// minimization pass (ablation). Exact methods ignore it.
	NoSupportMin bool
	// ApproxBisect restores MethodApprox's pre-scaling boundary
	// bisection instead of the boundary walk (ablation; estimates are
	// identical either way). Exact methods ignore it.
	ApproxBisect bool
	// Progress, when non-nil, receives one event per completed metric
	// output bit (possibly out of output order under concurrency; calls
	// are serialized). The callback must not block.
	Progress ProgressFunc
}

// engineConfig maps the method-independent options onto the backend
// configuration.
func (o *Options) engineConfig() engine.Config {
	return engine.Config{
		NoSynth:         o.NoSynth,
		Alpha:           o.Alpha,
		MaxSimVars:      o.MaxSimVars,
		MinSimGates:     o.MinSimGates,
		DisableCache:    o.DisableCache,
		SharedCache:     !o.DisableSharedCache,
		Store:           o.Store,
		DisableIBCP:     o.DisableIBCP,
		DisableLearning: o.DisableLearning,
		BDDNodeLimit:    o.BDDNodeLimit,
		BDDReorder:      o.BDDReorder,
		Workers:         o.Workers,
		SimWorkers:      o.SimWorkers,
		Epsilon:         o.Epsilon,
		Delta:           o.Delta,
		Seed:            o.Seed,
		HashDensity:     o.HashDensity,
		NoSupportMin:    o.NoSupportMin,
		ApproxBisect:    o.ApproxBisect,
	}
}

// SubResult reports one metric output bit's #SAT problem. Count is
// always non-nil, including trivial and error paths. See plan.SubResult
// for the sharing semantics of deduplicated bits.
type SubResult = plan.SubResult

// Result reports a verified metric.
type Result struct {
	Metric    string
	Method    Method
	Value     *big.Rat // the metric value (e.g. ER in [0,1], MED >= 0)
	Count     *big.Int // weighted pattern count (the numerator of Value)
	NumInputs int
	Runtime   time.Duration
	Subs      []SubResult
	// TotalStats aggregates the counter statistics of every sub-miter
	// (Stats.Add over Subs), so reporting layers need not re-sum fields.
	// Deduplicated bits carry zero Stats (the owning bit reports them),
	// so the sum counts each task's work exactly once.
	TotalStats counter.Stats
	// Approx marks a value estimated by MethodApprox rather than
	// computed exactly. Epsilon is then the largest per-task tolerance —
	// the weighted numerator is a sum of nonnegative terms, so it is
	// within a (1+Epsilon) factor of the exact numerator whenever every
	// term is — and Delta bounds the probability that any term misses
	// its band (union bound over the metric's distinct approximate
	// tasks). Confidence is 1-Delta; exact results report Confidence 1.
	Approx         bool
	Epsilon, Delta float64
	Confidence     float64
	// BestEffort marks an approximate value whose round schedule was cut
	// short by the time limit on at least one task: the (1+Epsilon) band
	// is unchanged but Delta (and Confidence) already reflect the
	// widened per-task failure probabilities.
	BestEffort bool
	// Timeseries is the flight recorder's sampled time-series of the run
	// (decisions, propagations, cache traffic, sim throughput, ... as
	// cumulative deltas since the run started). Nil unless a recorder was
	// installed (expo.Setup or obs.SetRecorder); every Result of a
	// session shares the session's series.
	Timeseries *obs.Timeseries
}

// Float returns the metric value as a float64 (inexact for huge MEDs).
func (r *Result) Float() float64 {
	f, _ := r.Value.Float64()
	return f
}

// SessionResult reports a multi-metric verification session: one Result
// per requested spec, in order, plus the session-wide work accounting
// the individual results cannot express (how much the shared base and
// the task dedup saved).
type SessionResult struct {
	// Results holds one metric result per spec, in request order.
	Results []*Result
	Method  Method
	// NumInputs is the shared input count of the circuit pair.
	NumInputs int
	// Runtime is the wall time of the whole session; each Result carries
	// the same value (the session solves all metrics together, so no
	// narrower per-metric wall time exists).
	Runtime time.Duration
	// TasksRequested counts metric output bits before deduplication;
	// TasksUnique the counting tasks actually solved; TasksDeduped the
	// difference.
	TasksRequested int
	TasksUnique    int
	TasksDeduped   int
	// StoreConeHits counts the session's tasks served whole from the
	// cross-request cone store (Options.Store) instead of being solved;
	// always 0 without a store. TasksUnique - StoreConeHits tasks
	// actually ran a solver (or resolved trivially).
	StoreConeHits int
	// BaseNodesBefore/After record the shared base miter's gate count
	// around its single synthesis pass.
	BaseNodesBefore int
	BaseNodesAfter  int
	// TotalStats aggregates the counter statistics over all tasks of
	// the session (equals the sum of the per-Result TotalStats).
	TotalStats counter.Stats
	// Timeseries is the flight recorder's sampled series for this
	// session's run; nil unless a recorder was installed.
	Timeseries *obs.Timeseries
}

// VerifyMetrics verifies several average-error metrics of one circuit
// pair in a single session: the base miter (both circuit copies over
// shared inputs) is built and synthesized once, every metric's
// deviation bits compile to counting tasks, structurally identical
// tasks are deduplicated across metrics, and one backend run solves the
// remaining tasks with a shared component cache. Per-metric results are
// bit-identical to the standalone Verify* calls at any worker count.
func VerifyMetrics(ctx context.Context, exact, approx *circuit.Circuit, specs []MetricSpec, opt Options) (*SessionResult, error) {
	be, err := engine.Lookup(opt.Method.String())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.MetricName()
	}
	runID := ensureRunID(&ctx)
	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "session", obs.Fields{
			"session": strings.Join(names, "+"), "backend": opt.Method.String(),
			"metrics": len(specs), "inputs": exact.NumInputs(),
			"run_id": runID,
		})
		ctx = obs.WithSpan(ctx, span)
	}
	p, err := plan.Build(ctx, exact, approx, specs, opt.NoSynth)
	if err != nil {
		if tr != nil {
			tr.EndSpan(span, "session", obs.Fields{"error": err.Error()})
		}
		return nil, err
	}
	return runPlan(ctx, p, be, opt, start, tr, span)
}

// VerifyER verifies the error rate (Eq. 2): the fraction of input
// patterns on which the approximate circuit's outputs differ from the
// exact circuit's.
func VerifyER(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyERContext(context.Background(), exact, approx, opt)
}

// VerifyERContext is VerifyER with cooperative cancellation.
func VerifyERContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return verifyOne(ctx, exact, approx, MetricSpec{Kind: MetricER}, opt)
}

// VerifyMED verifies the mean error distance (Eq. 4): the average of
// |int(y) - int(y')| over all input patterns, treating outputs as
// unsigned binary numbers, LSB first.
func VerifyMED(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyMEDContext(context.Background(), exact, approx, opt)
}

// VerifyMEDContext is VerifyMED with cooperative cancellation.
func VerifyMEDContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return verifyOne(ctx, exact, approx, MetricSpec{Kind: MetricMED}, opt)
}

// VerifyMHD verifies the mean Hamming distance: the average number of
// output bits on which the circuits disagree.
func VerifyMHD(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return VerifyMHDContext(context.Background(), exact, approx, opt)
}

// VerifyMHDContext is VerifyMHD with cooperative cancellation.
func VerifyMHDContext(ctx context.Context, exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	return verifyOne(ctx, exact, approx, MetricSpec{Kind: MetricMHD}, opt)
}

// VerifyThresholdProb verifies P(|int(y) - int(y')| > t), the probability
// that the deviation exceeds a threshold (the MACACO-style metric).
func VerifyThresholdProb(exact, approx *circuit.Circuit, t *big.Int, opt Options) (*Result, error) {
	return VerifyThresholdProbContext(context.Background(), exact, approx, t, opt)
}

// VerifyThresholdProbContext is VerifyThresholdProb with cooperative
// cancellation. The formatted metric name ("P(dev>t)") is carried from
// the spec through the session, so trace spans and progress events
// agree with the final Result.Metric.
func VerifyThresholdProbContext(ctx context.Context, exact, approx *circuit.Circuit, t *big.Int, opt Options) (*Result, error) {
	var tc *big.Int
	if t != nil {
		tc = new(big.Int).Set(t)
	}
	return verifyOne(ctx, exact, approx, MetricSpec{Kind: MetricThresholdProb, Threshold: tc}, opt)
}

// verifyOne runs a single-metric session and unwraps its result.
func verifyOne(ctx context.Context, exact, approx *circuit.Circuit, spec MetricSpec, opt Options) (*Result, error) {
	sr, err := VerifyMetrics(ctx, exact, approx, []MetricSpec{spec}, opt)
	if err != nil {
		return nil, err
	}
	return sr.Results[0], nil
}

// VerifyMiter verifies a user-supplied deviation miter: the metric value
// is sum_j weight_j * P(output_j = 1). This is the extension point for
// custom average-error metrics (Section II-A: "other average error
// metrics can also be converted into #SAT problems similarly").
func VerifyMiter(name string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	return VerifyMiterContext(context.Background(), name, m, weights, opt)
}

// VerifyMiterContext is VerifyMiter with cooperative cancellation. The
// weights are defensively copied, so mutating the slice (or its
// elements) after the call cannot corrupt the reported results.
func VerifyMiterContext(ctx context.Context, name string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != m.NumOutputs() {
		return nil, fmt.Errorf("core: %d weights for %d outputs", len(weights), m.NumOutputs())
	}
	be, err := engine.Lookup(opt.Method.String())
	if err != nil {
		return nil, err
	}
	start := time.Now()
	runID := ensureRunID(&ctx)
	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "session", obs.Fields{
			"session": name, "backend": opt.Method.String(),
			"metrics": 1, "inputs": m.NumInputs(),
			"run_id": runID,
		})
		ctx = obs.WithSpan(ctx, span)
	}
	p, err := plan.FromMiter(ctx, name, m, weights, opt.NoSynth)
	if err != nil {
		if tr != nil {
			tr.EndSpan(span, "session", obs.Fields{"error": err.Error()})
		}
		return nil, err
	}
	sr, err := runPlan(ctx, p, be, opt, start, tr, span)
	if err != nil {
		return nil, err
	}
	return sr.Results[0], nil
}

// ensureRunID returns the run ID every span and progress event of this
// verification correlates under. A caller that already allocated one —
// vacsem-serve stamps each job's ID onto the context before calling in,
// so its event streams can filter the shared hub by run — keeps it;
// otherwise a fresh ID is allocated and stamped.
func ensureRunID(ctx *context.Context) uint64 {
	if id := obs.RunFrom(*ctx); id != 0 {
		return id
	}
	id := obs.NextRunID()
	*ctx = obs.WithRun(*ctx, id)
	return id
}

// errRunDeadline is the cancellation cause installed by withTimeLimit,
// so mapErr can tell the run's own TimeLimit expiry apart from a
// deadline the caller layered onto the context.
var errRunDeadline = errors.New("core: run time limit reached")

// withTimeLimit layers Options.TimeLimit onto the caller's context as a
// deadline, tagged with errRunDeadline as the cancellation cause. The
// returned cancel func must always be called.
func withTimeLimit(ctx context.Context, opt Options) (context.Context, context.CancelFunc) {
	if opt.TimeLimit > 0 {
		return context.WithTimeoutCause(ctx, opt.TimeLimit, errRunDeadline)
	}
	return context.WithCancel(ctx)
}

// mapErr shapes backend errors for the public API: when the run's own
// TimeLimit produced the deadline — identified by the errRunDeadline
// cancellation cause, not by TimeLimit merely being set — expiry
// surfaces as the historical ErrTimeout. Every other error, including
// context.Canceled and a context.DeadlineExceeded from a deadline the
// caller put on the context, propagates verbatim. (An earlier version
// mapped any DeadlineExceeded to ErrTimeout whenever TimeLimit > 0,
// swallowing caller deadlines; before that, every counter error became
// a timeout.)
func mapErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, counter.ErrTimeout) {
		return ErrTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) && errors.Is(context.Cause(ctx), errRunDeadline) {
		return ErrTimeout
	}
	return err
}

// approxBand aggregates the per-task (ε, δ) guarantees of a metric's
// bits. The metric tolerance is the largest per-task epsilon (a sum of
// nonnegative weighted counts lands in the (1+ε) band when every term
// does), and the failure probability is the union bound min(Σ δ_t, 1)
// over the metric's distinct approximate tasks — shared bits reuse one
// task's estimate, so each task contributes its δ once. The union bound
// (rather than the independence product 1 - Π(1-δ_t)) is deliberate:
// sibling tasks draw their hash rows from one session seed, so their
// estimates are correlated, and the union bound is the tightest
// aggregate valid under arbitrary correlation.
func approxBand(subs []SubResult) (approx bool, eps, delta float64) {
	seen := make(map[int]bool)
	for i := range subs {
		s := &subs[i]
		if !s.Approx || seen[s.Task] {
			continue
		}
		seen[s.Task] = true
		approx = true
		if s.Epsilon > eps {
			eps = s.Epsilon
		}
		delta += s.Delta
	}
	if delta > 1 {
		delta = 1
	}
	return approx, eps, delta
}

// runPlan executes a compiled plan on a backend and shapes the outcome
// into the session result. Each session is one "session" trace span
// (already opened by the caller); the plan, backend and sub_miter spans
// nest under it through the context, and one leaf "run" span per metric
// records the assembled value.
func runPlan(ctx context.Context, p *plan.Plan, be engine.Backend, opt Options, start time.Time, tr *obs.Tracer, span obs.SpanID) (*SessionResult, error) {
	mSessions.Inc()
	ctx, cancel := withTimeLimit(ctx, opt)
	defer cancel()
	// When a flight recorder is live, record this session as one run:
	// the sampler snapshots registry deltas until Finish, which yields
	// the run's time-series (attached to the results below, and to the
	// trace — errors included, a timed-out run's partial curve is often
	// the most interesting one).
	var fr *obs.RunHandle
	if rec := obs.ActiveRecorder(); rec != nil {
		fr = rec.StartRun(obs.RunFrom(ctx), p.Session)
	}
	finishFlight := func() *obs.Timeseries {
		if fr == nil {
			return nil
		}
		ts := fr.Finish()
		if tr != nil && ts != nil {
			tr.Event(span, "timeseries", obs.Fields{"timeseries": ts})
		}
		return ts
	}
	out, err := p.Run(ctx, be, opt.engineConfig(), opt.Progress)
	if err != nil {
		finishFlight()
		err = mapErr(ctx, err)
		mRunErrors.Inc()
		hRunSeconds.Observe(time.Since(start).Seconds())
		if tr != nil {
			tr.EndSpan(span, "session", obs.Fields{"error": err.Error()})
		}
		return nil, err
	}
	ts := finishFlight()
	sr := &SessionResult{
		Results:         make([]*Result, len(out.Metrics)),
		Method:          opt.Method,
		NumInputs:       p.TotalInputs,
		Runtime:         time.Since(start),
		TasksRequested:  p.TasksRequested,
		TasksUnique:     len(p.Tasks),
		TasksDeduped:    p.TasksDeduped(),
		BaseNodesBefore: p.BaseNodesBefore,
		BaseNodesAfter:  p.BaseNodesAfter,
		Timeseries:      ts,
	}
	for i := range out.TaskResults {
		if out.TaskResults[i].FromStore {
			sr.StoreConeHits++
		}
	}
	denom := new(big.Int).Lsh(big.NewInt(1), uint(p.TotalInputs))
	for i := range out.Metrics {
		mo := &out.Metrics[i]
		mRuns.Inc()
		res := &Result{
			Metric:     mo.Name,
			Method:     opt.Method,
			NumInputs:  p.TotalInputs,
			Count:      mo.Count,
			Subs:       mo.Subs,
			Runtime:    sr.Runtime,
			TotalStats: mo.Stats,
			Value:      new(big.Rat).SetFrac(new(big.Int).Set(mo.Count), denom),
			Confidence: 1,
			Timeseries: ts,
		}
		if ap, eps, delta := approxBand(mo.Subs); ap {
			res.Approx, res.Epsilon, res.Delta = true, eps, delta
			res.Confidence = 1 - delta
			for j := range mo.Subs {
				if mo.Subs[j].BestEffort {
					res.BestEffort = true
					break
				}
			}
		}
		sr.Results[i] = res
		sr.TotalStats.Add(mo.Stats)
		if tr != nil {
			rs := tr.StartSpan(span, "run", obs.Fields{
				"metric": mo.Name, "backend": opt.Method.String(),
			})
			tr.EndSpan(rs, "run", obs.Fields{
				"metric": mo.Name, "count": res.Count.String(),
				"value": res.Value.RatString(), "stats": mo.Stats,
			})
		}
	}
	hRunSeconds.Observe(sr.Runtime.Seconds())
	if tr != nil {
		tr.EndSpan(span, "session", obs.Fields{
			"tasks": sr.TasksUnique, "tasks_deduped": sr.TasksDeduped,
			"stats": sr.TotalStats,
		})
	}
	return sr, nil
}
