// Package core orchestrates average-error verification: it ties together
// the approximation miters (Section II-B), Phase 1 (circuit-aware CNF
// construction: split, synthesize, encode) and Phase 2 (the
// simulation-enhanced model counter) into the metric-level API of the
// paper — plus the two baselines the paper compares against: the plain
// DPLL counter (the GANAK role) and exhaustive enumeration.
package core

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
	"time"

	"vacsem/internal/bdd"
	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/counter"
	"vacsem/internal/miter"
	"vacsem/internal/sim"
	"vacsem/internal/synth"
)

// Method selects the verification engine.
type Method int

const (
	// MethodVACSEM is the paper's contribution: the DPLL model counter
	// with the simulation hook and dynamic controller enabled.
	MethodVACSEM Method = iota
	// MethodDPLL is the same counter with simulation disabled — the role
	// GANAK plays in the paper's comparisons.
	MethodDPLL
	// MethodEnum is exhaustive word-parallel logic simulation of the
	// miter over all 2^I input patterns.
	MethodEnum
	// MethodBDD is the prior-art decision-diagram approach ([3]-[6] in
	// the paper): build ROBDDs of the deviation bits and count over the
	// diagrams. It fails with ErrBDDTooLarge when the diagram explodes —
	// the scalability wall the paper's footnote 2 describes.
	MethodBDD
)

// String returns the method name used in reports.
func (m Method) String() string {
	switch m {
	case MethodVACSEM:
		return "vacsem"
	case MethodDPLL:
		return "dpll"
	case MethodEnum:
		return "enum"
	case MethodBDD:
		return "bdd"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ErrTimeout is returned when the configured time limit expires before
// verification completes.
var ErrTimeout = errors.New("core: time limit exceeded")

// ErrTooLarge is returned by MethodEnum when the input space exceeds the
// enumeration capability (more than 62 inputs).
var ErrTooLarge = errors.New("core: input space too large for enumeration")

// ErrBDDTooLarge is returned by MethodBDD when the decision diagram
// exceeds the node budget (Options.BDDNodeLimit).
var ErrBDDTooLarge = bdd.ErrNodeLimit

// Options configures a verification run. The zero value uses MethodVACSEM
// with synthesis enabled and no time limit.
type Options struct {
	Method Method
	// NoSynth skips the per-sub-miter synthesis (compress) step.
	NoSynth bool
	// TimeLimit bounds the entire verification (all sub-miters). 0 = none.
	TimeLimit time.Duration
	// Alpha overrides the density-score scaling factor (default 2).
	Alpha float64
	// MaxSimVars overrides the simulation input cap (default 26).
	MaxSimVars int
	// DisableCache turns off component caching (ablation).
	DisableCache bool
	// DisableIBCP turns off failed-literal probing (ablation).
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning (ablation).
	DisableLearning bool
	// MinSimGates overrides the minimum sub-circuit size the controller
	// hands to the simulator (default 24).
	MinSimGates int
	// BDDNodeLimit caps the decision-diagram size for MethodBDD
	// (default 1<<22 nodes).
	BDDNodeLimit int
}

// SubResult reports one sub-miter's #SAT problem.
type SubResult struct {
	Output      string
	Count       *big.Int // patterns (over all 2^I inputs) setting the bit
	Weight      *big.Int
	NodesBefore int
	NodesAfter  int // after synthesis
	Runtime     time.Duration
	Stats       counter.Stats
	Trivial     bool // solved by constant propagation alone
}

// Result reports a verified metric.
type Result struct {
	Metric    string
	Method    Method
	Value     *big.Rat // the metric value (e.g. ER in [0,1], MED >= 0)
	Count     *big.Int // weighted pattern count (the numerator of Value)
	NumInputs int
	Runtime   time.Duration
	Subs      []SubResult
}

// Float returns the metric value as a float64 (inexact for huge MEDs).
func (r *Result) Float() float64 {
	f, _ := r.Value.Float64()
	return f
}

// VerifyER verifies the error rate (Eq. 2): the fraction of input
// patterns on which the approximate circuit's outputs differ from the
// exact circuit's.
func VerifyER(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.ER(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter("ER", m, uniformWeights(1), opt)
}

// VerifyMED verifies the mean error distance (Eq. 4): the average of
// |int(y) - int(y')| over all input patterns, treating outputs as
// unsigned binary numbers, LSB first.
func VerifyMED(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.MED(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter("MED", m, powerWeights(m.NumOutputs()), opt)
}

// VerifyMHD verifies the mean Hamming distance: the average number of
// output bits on which the circuits disagree.
func VerifyMHD(exact, approx *circuit.Circuit, opt Options) (*Result, error) {
	m, err := miter.HD(exact, approx)
	if err != nil {
		return nil, err
	}
	return verifyMiter("MHD", m, uniformWeights(m.NumOutputs()), opt)
}

// VerifyThresholdProb verifies P(|int(y) - int(y')| > t), the probability
// that the deviation exceeds a threshold (the MACACO-style metric).
func VerifyThresholdProb(exact, approx *circuit.Circuit, t *big.Int, opt Options) (*Result, error) {
	m, err := miter.Threshold(exact, approx, t)
	if err != nil {
		return nil, err
	}
	r, err := verifyMiter("P(dev>t)", m, uniformWeights(1), opt)
	if err != nil {
		return nil, err
	}
	r.Metric = fmt.Sprintf("P(dev>%v)", t)
	return r, nil
}

// VerifyMiter verifies a user-supplied deviation miter: the metric value
// is sum_j weight_j * P(output_j = 1). This is the extension point for
// custom average-error metrics (Section II-A: "other average error
// metrics can also be converted into #SAT problems similarly").
func VerifyMiter(name string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != m.NumOutputs() {
		return nil, fmt.Errorf("core: %d weights for %d outputs", len(weights), m.NumOutputs())
	}
	return verifyMiter(name, m, weights, opt)
}

func uniformWeights(n int) []*big.Int {
	w := make([]*big.Int, n)
	for i := range w {
		w[i] = big.NewInt(1)
	}
	return w
}

func powerWeights(n int) []*big.Int {
	w := make([]*big.Int, n)
	for i := range w {
		w[i] = new(big.Int).Lsh(big.NewInt(1), uint(i))
	}
	return w
}

func verifyMiter(metric string, m *circuit.Circuit, weights []*big.Int, opt Options) (*Result, error) {
	start := time.Now()
	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	res := &Result{
		Metric:    metric,
		Method:    opt.Method,
		NumInputs: m.NumInputs(),
		Count:     new(big.Int),
	}
	switch {
	case opt.Method == MethodEnum:
		if err := enumMiter(m, weights, res, deadline); err != nil {
			return nil, err
		}
	case opt.Method == MethodBDD:
		if err := bddMiter(m, weights, res, opt); err != nil {
			return nil, err
		}
	default:
		// Compress the whole miter once before splitting: the deviation
		// bits share most of their logic (both circuit copies plus the
		// subtractor), so per-sub-miter synthesis converges in one cheap
		// pass afterwards.
		work := m
		if !opt.NoSynth {
			work = synth.Compress(m)
		}
		subs := miter.Split(work)
		for j, sub := range subs {
			sr, err := solveSub(work, sub, j, weights[j], opt, deadline)
			if err != nil {
				return nil, err
			}
			res.Subs = append(res.Subs, sr)
			var weighted big.Int
			weighted.Mul(sr.Count, sr.Weight)
			res.Count.Add(res.Count, &weighted)
		}
	}
	res.Runtime = time.Since(start)
	denom := new(big.Int).Lsh(big.NewInt(1), uint(m.NumInputs()))
	res.Value = new(big.Rat).SetFrac(new(big.Int).Set(res.Count), denom)
	return res, nil
}

// solveSub runs Phase 1 + Phase 2 on one single-output sub-miter.
func solveSub(m, sub *circuit.Circuit, j int, weight *big.Int, opt Options, deadline time.Time) (SubResult, error) {
	subStart := time.Now()
	sr := SubResult{
		Output:      m.OutputName(j),
		Weight:      weight,
		NodesBefore: sub.NumGates(),
	}
	if !opt.NoSynth {
		sub = synth.Compress(sub)
	}
	sr.NodesAfter = sub.NumGates()
	totalInputs := m.NumInputs()
	// Trivial outcomes after constant propagation.
	out := sub.Outputs[0]
	switch {
	case out == 0:
		sr.Count = new(big.Int)
		sr.Trivial = true
	case sub.Nodes[out].Kind == circuit.Not && sub.Nodes[out].Fanins[0] == 0:
		sr.Count = new(big.Int).Lsh(big.NewInt(1), uint(totalInputs))
		sr.Trivial = true
	case sub.Nodes[out].Kind == circuit.Input:
		// Output is a bare input: exactly half the patterns.
		sr.Count = new(big.Int).Lsh(big.NewInt(1), uint(totalInputs-1))
		sr.Trivial = true
	default:
		f, err := cnf.Encode(sub)
		if err != nil {
			return sr, err
		}
		cfg := counter.Config{
			EnableSim:       opt.Method == MethodVACSEM,
			Alpha:           opt.Alpha,
			MaxSimVars:      opt.MaxSimVars,
			MinSimGates:     opt.MinSimGates,
			DisableCache:    opt.DisableCache,
			DisableIBCP:     opt.DisableIBCP,
			DisableLearning: opt.DisableLearning,
		}
		if !deadline.IsZero() {
			rem := time.Until(deadline)
			if rem <= 0 {
				return sr, ErrTimeout
			}
			cfg.TimeLimit = rem
		}
		s := counter.New(f, cfg)
		cnt, err := s.Count()
		if err != nil {
			return sr, ErrTimeout
		}
		sr.Stats = s.Stats()
		// Scale by inputs outside the encoded cone.
		extra := totalInputs - f.NumEncodedInputs()
		sr.Count = new(big.Int).Lsh(cnt, uint(extra))
	}
	sr.Runtime = time.Since(subStart)
	return sr, nil
}

// bddMiter verifies through decision diagrams: synthesize the miter,
// build one ROBDD per deviation bit, and count over the diagrams — the
// prior-art flow of the paper's references [3]-[6]. Explosion surfaces
// as ErrBDDTooLarge.
func bddMiter(m *circuit.Circuit, weights []*big.Int, res *Result, opt Options) error {
	work := m
	if !opt.NoSynth {
		work = synth.Compress(m)
	}
	mgr := bdd.New(work.NumInputs(), opt.BDDNodeLimit)
	outs, err := mgr.BuildOutputsOrdered(work, bdd.DFSOrder(work))
	if err != nil {
		return err
	}
	for j, f := range outs {
		c := mgr.CountOnes(f)
		res.Subs = append(res.Subs, SubResult{
			Output: m.OutputName(j),
			Count:  c,
			Weight: weights[j],
		})
		var weighted big.Int
		weighted.Mul(c, weights[j])
		res.Count.Add(res.Count, &weighted)
	}
	return nil
}

// enumMiter exhaustively simulates the miter over all 2^I patterns,
// accumulating per-output one-counts and combining them with the weights.
func enumMiter(m *circuit.Circuit, weights []*big.Int, res *Result, deadline time.Time) error {
	nIn := m.NumInputs()
	if nIn > 62 {
		return ErrTooLarge
	}
	total := uint64(1) << uint(nIn)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	eng := sim.NewEngine(m)
	in := make([]uint64, nIn)
	counts := make([]uint64, m.NumOutputs())
	for b := uint64(0); b < blocks; b++ {
		if !deadline.IsZero() && b&1023 == 0 && time.Now().After(deadline) {
			return ErrTimeout
		}
		for i := 0; i < nIn; i++ {
			in[i] = sim.InputWord(i, b)
		}
		eng.Run(in)
		mask := sim.BlockMask(b, total)
		for j := range counts {
			counts[j] += uint64(bits.OnesCount64(eng.Out(j) & mask))
		}
	}
	for j, cnt := range counts {
		c := new(big.Int).SetUint64(cnt)
		res.Subs = append(res.Subs, SubResult{
			Output: m.OutputName(j),
			Count:  c,
			Weight: weights[j],
		})
		var weighted big.Int
		weighted.Mul(c, weights[j])
		res.Count.Add(res.Count, &weighted)
	}
	return nil
}
