package core

import (
	"context"
	"math/big"
	"sync"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/counter"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func sessionSpecs() []MetricSpec {
	return []MetricSpec{
		{Kind: MetricER},
		{Kind: MetricMED},
		{Kind: MetricMHD},
	}
}

// TestVerifyMetricsMatchesStandalone is the session-layer equivalence
// guarantee: one VerifyMetrics call over {ER, MED, MHD} returns, per
// metric, the exact same Value and Count as three standalone Verify*
// calls — on every backend and regardless of worker count. Counts are
// function-determined, so the shared base, synthesis and cross-metric
// dedup must never change them.
func TestVerifyMetricsMatchesStandalone(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		nIn := 4 + int(seed%5)
		nOut := 2 + int(seed%3)
		exact := testutil.RandomCircuit(nIn, 12+int(seed*5%25), nOut, seed)
		approx := approxVersion(exact, seed*11+3)
		for _, m := range allMethods() {
			opt := Options{Method: m, Workers: 3}
			sess, err := VerifyMetrics(ctx, exact, approx, sessionSpecs(), opt)
			if err != nil {
				t.Fatalf("seed %d %v session: %v", seed, m, err)
			}
			if len(sess.Results) != 3 {
				t.Fatalf("seed %d %v: %d results", seed, m, len(sess.Results))
			}
			er, err := VerifyER(exact, approx, opt)
			if err != nil {
				t.Fatal(err)
			}
			med, err := VerifyMED(exact, approx, opt)
			if err != nil {
				t.Fatal(err)
			}
			mhd, err := VerifyMHD(exact, approx, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range []*Result{er, med, mhd} {
				got := sess.Results[i]
				if got.Metric != want.Metric {
					t.Errorf("seed %d %v: result %d metric %q, want %q",
						seed, m, i, got.Metric, want.Metric)
				}
				if got.Value.Cmp(want.Value) != 0 {
					t.Errorf("seed %d %v %s: session value %v, standalone %v",
						seed, m, want.Metric, got.Value, want.Value)
				}
				if got.Count.Cmp(want.Count) != 0 {
					t.Errorf("seed %d %v %s: session count %v, standalone %v",
						seed, m, want.Metric, got.Count, want.Count)
				}
			}
		}
	}
}

// TestVerifyMetricsDedupOnAdders pins the acceptance property: on a
// bench-style adder pair the session solves strictly fewer tasks than
// requested (MED's low-order deviation bits reduce to MHD's XOR bits),
// while every metric value still matches its standalone run.
func TestVerifyMetricsDedupOnAdders(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 4)
	opt := Options{Workers: 2}
	sess, err := VerifyMetrics(context.Background(), exact, approx, sessionSpecs(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if sess.TasksDeduped <= 0 {
		t.Errorf("TasksDeduped = %d, want > 0 (requested %d, unique %d)",
			sess.TasksDeduped, sess.TasksRequested, sess.TasksUnique)
	}
	if sess.TasksUnique+sess.TasksDeduped != sess.TasksRequested {
		t.Errorf("task accounting: %d + %d != %d",
			sess.TasksUnique, sess.TasksDeduped, sess.TasksRequested)
	}
	if sess.BaseNodesAfter > sess.BaseNodesBefore {
		t.Errorf("base synthesis grew the miter: %d -> %d",
			sess.BaseNodesBefore, sess.BaseNodesAfter)
	}
	standalone := []func() (*Result, error){
		func() (*Result, error) { return VerifyER(exact, approx, opt) },
		func() (*Result, error) { return VerifyMED(exact, approx, opt) },
		func() (*Result, error) { return VerifyMHD(exact, approx, opt) },
	}
	for i, f := range standalone {
		want, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if sess.Results[i].Value.Cmp(want.Value) != 0 {
			t.Errorf("%s: session %v, standalone %v",
				want.Metric, sess.Results[i].Value, want.Value)
		}
	}
}

// TestSessionStatsAttribution checks the no-double-counting invariant:
// per-metric TotalStats equal the sum of their sub-results' stats
// (shared bits contribute zero), and the per-metric totals sum to the
// session total.
func TestSessionStatsAttribution(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 4)
	sess, err := VerifyMetrics(context.Background(), exact, approx, sessionSpecs(),
		Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sessionSum counter.Stats
	for _, r := range sess.Results {
		var metricSum counter.Stats
		sharedBits := 0
		for _, sub := range r.Subs {
			metricSum.Add(sub.Stats)
			if sub.Shared {
				sharedBits++
				if sub.Stats != (counter.Stats{}) {
					t.Errorf("%s/%s: shared bit carries stats %+v", r.Metric, sub.Output, sub.Stats)
				}
			}
		}
		if metricSum != r.TotalStats {
			t.Errorf("%s: TotalStats %+v != sum of subs %+v", r.Metric, r.TotalStats, metricSum)
		}
		sessionSum.Add(r.TotalStats)
		_ = sharedBits
	}
	if sessionSum != sess.TotalStats {
		t.Errorf("session TotalStats %+v != per-metric sum %+v", sess.TotalStats, sessionSum)
	}
}

// TestThresholdNameInProgressEvents pins the formatted metric name
// "P(dev>t)" end to end: it must arrive on progress events during the
// run (not be patched into the result afterwards) and on the result.
func TestThresholdNameInProgressEvents(t *testing.T) {
	exact := testutil.RandomCircuit(6, 20, 3, 4)
	approx := approxVersion(exact, 17)
	var (
		mu    sync.Mutex
		names = map[string]int{}
	)
	opt := Options{Progress: func(ev ProgressEvent) {
		mu.Lock()
		names[ev.Metric]++
		mu.Unlock()
	}}
	r, err := VerifyThresholdProb(exact, approx, big.NewInt(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metric != "P(dev>2)" {
		t.Errorf("result metric = %q, want P(dev>2)", r.Metric)
	}
	if len(names) == 0 {
		t.Fatal("no progress events delivered")
	}
	for name := range names {
		if name != "P(dev>2)" {
			t.Errorf("progress event carried metric %q, want P(dev>2)", name)
		}
	}
}

func TestMetricSpecByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind MetricKind
	}{
		{"er", MetricER}, {"med", MetricMED}, {"mhd", MetricMHD},
	} {
		spec, err := MetricSpecByName(tc.name, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if spec.Kind != tc.kind {
			t.Errorf("%s: kind %v", tc.name, spec.Kind)
		}
	}
	spec, err := MetricSpecByName("thr", big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != MetricThresholdProb || spec.Threshold.Int64() != 5 {
		t.Errorf("thr: %+v", spec)
	}
	if _, err := MetricSpecByName("wce", nil); err == nil {
		t.Error("unknown metric name accepted")
	}
	// The session must reject a thr spec without a threshold.
	exact := testutil.RandomCircuit(4, 10, 2, 1)
	approx := approxVersion(exact, 3)
	if _, err := VerifyMetrics(context.Background(), exact, approx,
		[]MetricSpec{{Kind: MetricThresholdProb}}, Options{}); err == nil {
		t.Error("thr spec without threshold accepted")
	}
}
