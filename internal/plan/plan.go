// Package plan compiles verification sessions: it turns a request for
// one or more average-error metrics over a circuit pair into a
// deduplicated list of single-output counting tasks that one engine
// backend executes in a single run.
//
// Every metric of Section II reduces to weighted one-counts of
// deviation bits built over the same base miter (both circuit copies
// instantiated over shared inputs). The plan layer therefore
//
//  1. builds and synthesizes that base once per session,
//  2. attaches one metric head per requested metric (XOR-reduce for ER,
//     per-bit XORs for MHD, the |y - y'| subtractor for MED, subtractor
//     plus comparator for the threshold probability),
//  3. cuts one logic cone per metric output bit, synthesizes each cone,
//     and deduplicates structurally identical cones by a canonical key —
//     both within a metric (repeated deviation bits) and across metrics
//     (e.g. MED's low bit compressing to the same XOR as MHD's bit 0),
//  4. assembles each metric's outcome from its tasks' (possibly shared)
//     counts.
//
// Counts are function-determined, so deduplication never changes a
// metric value: a session over {ER, MED, MHD} is bit-identical to three
// standalone runs at any worker count.
package plan

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/big"
	"strings"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/counter"
	"vacsem/internal/engine"
	"vacsem/internal/miter"
	"vacsem/internal/obs"
	"vacsem/internal/synth"
)

// Session-level metrics: how much work the dedup removed.
var (
	mPlans        = obs.Default.Counter("plan.sessions")
	mTasks        = obs.Default.Counter("plan.tasks")
	mTasksDeduped = obs.Default.Counter("plan.tasks_deduped")
)

// Kind selects an average-error metric.
type Kind int

const (
	// ER is the error rate (Eq. 2).
	ER Kind = iota
	// MED is the mean error distance (Eq. 4).
	MED
	// MHD is the mean Hamming distance.
	MHD
	// ThresholdProb is P(|int(y) - int(y')| > t), the MACACO-style
	// cumulative metric; Spec.Threshold carries t.
	ThresholdProb
)

// Spec requests one metric in a session.
type Spec struct {
	Kind Kind
	// Threshold is the deviation threshold t of ThresholdProb; ignored
	// by the other kinds.
	Threshold *big.Int
}

// MetricName is the display name of the requested metric, as it appears
// in Result.Metric, trace spans and progress events ("ER", "MED",
// "MHD", "P(dev>t)").
func (s Spec) MetricName() string {
	switch s.Kind {
	case ER:
		return "ER"
	case MED:
		return "MED"
	case MHD:
		return "MHD"
	case ThresholdProb:
		return fmt.Sprintf("P(dev>%v)", s.Threshold)
	default:
		return fmt.Sprintf("metric(%d)", int(s.Kind))
	}
}

// Metric is one compiled metric of a plan: its output bits, their
// weights, and the session task computing each bit's count.
type Metric struct {
	// Name is Spec.MetricName() (or the caller's name for FromMiter).
	Name string
	// Outputs names the metric's deviation bits ("f1", "d0", ...).
	Outputs []string
	// Weights holds one weight per output bit; the metric numerator is
	// sum_k Weights[k] * count(task TaskOf[k]). The plan owns the
	// slice (defensive copies of any caller-supplied weights).
	Weights []*big.Int
	// TaskOf maps each output bit to its session task index.
	TaskOf []int
	// Owner marks, per output bit, whether this bit is its task's
	// representative (the first bit across the session that produced
	// the task). Exactly one bit per task owns it; owners carry the
	// task's runtime and counter statistics in results, so per-metric
	// stats sum to the session total without double counting.
	Owner []bool
}

// Plan is a compiled verification session, ready to run on a backend.
type Plan struct {
	// Session labels the plan in spans and results ("ER+MED+MHD").
	Session string
	// Exec is the combined session miter: one primary output per task,
	// in task order (engine.Request.Miter).
	Exec *circuit.Circuit
	// Tasks is the deduplicated task list.
	Tasks []engine.CountTask
	// Metrics holds one compiled metric per requested spec, in order.
	Metrics []Metric
	// TotalInputs is the shared input count (the count denominator is
	// 2^TotalInputs).
	TotalInputs int
	// TasksRequested counts metric output bits before deduplication.
	TasksRequested int
	// BaseNodesBefore/After record the shared base miter's gate count
	// around its (single) synthesis pass; equal when synthesis is off
	// or the plan came from a custom miter.
	BaseNodesBefore, BaseNodesAfter int
}

// TasksDeduped reports how many requested output bits were satisfied by
// another bit's task.
func (p *Plan) TasksDeduped() int { return p.TasksRequested - len(p.Tasks) }

// Build compiles a session over a circuit pair: one shared base miter
// (built and synthesized once), one metric head per spec, and a
// deduplicated task list.
func Build(ctx context.Context, exact, approx *circuit.Circuit, specs []Spec, noSynth bool) (*Plan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("plan: no metrics requested")
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		if s.Kind == ThresholdProb {
			if err := miter.CheckThreshold(s.Threshold); err != nil {
				return nil, err
			}
		}
		names[i] = s.MetricName()
	}
	session := strings.Join(names, "+")

	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "plan", obs.Fields{
			"session": session, "metrics": len(specs),
		})
	}

	b, err := miter.NewBase(exact, approx, exact.Name+"_miter")
	if err != nil {
		if tr != nil {
			tr.EndSpan(span, "plan", obs.Fields{"error": err.Error()})
		}
		return nil, err
	}
	p := &Plan{
		Session:         session,
		TotalInputs:     b.Circ.NumInputs(),
		BaseNodesBefore: b.Circ.NumGates(),
	}
	if !noSynth {
		b = b.Compress(synth.Compress)
	}
	p.BaseNodesAfter = b.Circ.NumGates()

	// Attach one head per metric and register its bits as outputs of
	// the combined circuit, one output per requested task.
	c := b.Circ
	p.Metrics = make([]Metric, len(specs))
	for i, s := range specs {
		m := Metric{Name: names[i]}
		switch s.Kind {
		case ER:
			c.AddOutput(miter.ERHead(c, b.YE, b.YA), "f1")
			m.Outputs = []string{"f1"}
			m.Weights = []*big.Int{big.NewInt(1)}
		case MHD:
			for j, d := range miter.HDHead(c, b.YE, b.YA) {
				name := fmt.Sprintf("d%d", j)
				c.AddOutput(d, name)
				m.Outputs = append(m.Outputs, name)
				m.Weights = append(m.Weights, big.NewInt(1))
			}
		case MED:
			for j, id := range miter.MEDHead(c, b.YE, b.YA) {
				name := fmt.Sprintf("f%d", j+1)
				c.AddOutput(id, name)
				m.Outputs = append(m.Outputs, name)
				m.Weights = append(m.Weights, new(big.Int).Lsh(big.NewInt(1), uint(j)))
			}
		case ThresholdProb:
			c.AddOutput(miter.ThresholdHead(c, b.YE, b.YA, s.Threshold), "f1")
			m.Outputs = []string{"f1"}
			m.Weights = []*big.Int{big.NewInt(1)}
		default:
			if tr != nil {
				tr.EndSpan(span, "plan", obs.Fields{"error": "unknown metric kind"})
			}
			return nil, fmt.Errorf("plan: unknown metric kind %d", int(s.Kind))
		}
		p.Metrics[i] = m
	}

	p.compile(c, noSynth)
	p.finish(tr, span)
	return p, nil
}

// FromMiter compiles a session from a caller-supplied deviation miter:
// one metric whose value is sum_j weights[j] * P(output_j = 1). The
// miter is synthesized once up front (mirroring the standard path's
// base synthesis) and its output cones deduplicated like any other
// session. The weights are defensively copied.
func FromMiter(ctx context.Context, name string, m *circuit.Circuit, weights []*big.Int, noSynth bool) (*Plan, error) {
	if len(weights) != m.NumOutputs() {
		return nil, fmt.Errorf("plan: %d weights for %d outputs", len(weights), m.NumOutputs())
	}
	tr := obs.Active()
	var span obs.SpanID
	if tr != nil {
		span = tr.StartSpan(obs.SpanFrom(ctx), "plan", obs.Fields{
			"session": name, "metrics": 1,
		})
	}
	work := m
	if noSynth {
		work = m.Clone() // compile re-purposes the outputs; keep the caller's copy intact
	} else {
		work = synth.Compress(m)
	}
	met := Metric{Name: name}
	for j := 0; j < work.NumOutputs(); j++ {
		met.Outputs = append(met.Outputs, work.OutputName(j))
		met.Weights = append(met.Weights, new(big.Int).Set(weights[j]))
	}
	p := &Plan{
		Session:         name,
		TotalInputs:     work.NumInputs(),
		BaseNodesBefore: m.NumGates(),
		BaseNodesAfter:  work.NumGates(),
		Metrics:         []Metric{met},
	}
	p.compile(work, noSynth)
	p.finish(tr, span)
	return p, nil
}

// finish records the compiled plan in the metrics registry and closes
// its trace span.
func (p *Plan) finish(tr *obs.Tracer, span obs.SpanID) {
	mPlans.Inc()
	mTasks.Add(uint64(len(p.Tasks)))
	mTasksDeduped.Add(uint64(p.TasksDeduped()))
	if tr != nil {
		tr.EndSpan(span, "plan", obs.Fields{
			"tasks_requested": p.TasksRequested, "tasks": len(p.Tasks),
			"tasks_deduped":     p.TasksDeduped(),
			"base_nodes_before": p.BaseNodesBefore, "base_nodes_after": p.BaseNodesAfter,
		})
	}
}

// compile cuts one cone per output of c (the session's requested bits,
// in metric order), synthesizes and deduplicates them, and re-purposes
// c as the combined execution miter with one output per unique task.
// The per-metric Outputs/Weights must already be set; TaskOf and Owner
// are filled here.
func (p *Plan) compile(c *circuit.Circuit, noSynth bool) {
	type group struct {
		cone     *circuit.Circuit
		inputPos []int
		root     int // node id in c
		label    string
		reqs     []int // request indexes mapped to this group
	}

	nReq := 0
	for i := range p.Metrics {
		nReq += len(p.Metrics[i].Outputs)
	}
	p.TasksRequested = nReq

	// Level 1: key the raw cones, so structurally identical bits are
	// synthesized only once.
	var groups []*group
	rawKey := make(map[string]int)
	ri := 0
	for i := range p.Metrics {
		for k := range p.Metrics[i].Outputs {
			label := p.Metrics[i].Name + "/" + p.Metrics[i].Outputs[k]
			cone, old2new := c.ExtractCone(ri)
			pos := inputPositions(c, old2new)
			key, _ := coneKey(cone, pos)
			gi, ok := rawKey[key]
			if !ok {
				gi = len(groups)
				rawKey[key] = gi
				groups = append(groups, &group{
					cone: cone, inputPos: pos,
					root: c.Outputs[ri], label: label,
				})
			}
			groups[gi].reqs = append(groups[gi].reqs, ri)
			ri++
		}
	}

	// Level 2: synthesize each unique cone and re-key — synthesis
	// canonicalizes structure (e.g. MED's conditional negate cancels to
	// the bare XOR that is MHD's bit), merging groups that only now
	// became identical. Synthesis preserves the input list, so the raw
	// cone's input positions keep identifying the compressed inputs.
	type task struct {
		ct   engine.CountTask
		root int
		reqs []int
	}
	var tasks []*task
	compKey := make(map[string]int)
	for _, g := range groups {
		comp := g.cone
		if !noSynth {
			comp = synth.Compress(g.cone)
		}
		key, keyInputs := coneKey(comp, g.inputPos)
		ti, ok := compKey[key]
		if !ok {
			ti = len(tasks)
			compKey[key] = ti
			comp.Name = c.Name + "_" + g.label
			tasks = append(tasks, &task{
				ct: engine.CountTask{
					Sub: comp, Label: g.label,
					Key: key, KeyInputs: keyInputs,
					NodesBefore: g.cone.NumGates(),
					NodesAfter:  comp.NumGates(),
				},
				root: g.root,
			})
		}
		tasks[ti].reqs = append(tasks[ti].reqs, g.reqs...)
	}

	// Re-purpose c as the execution miter: one output per unique task.
	c.ClearOutputs()
	taskOf := make([]int, nReq)
	owner := make([]int, len(tasks))
	for ti, t := range tasks {
		c.AddOutput(t.root, t.ct.Label)
		own := t.reqs[0]
		for _, r := range t.reqs {
			taskOf[r] = ti
			if r < own {
				own = r
			}
		}
		owner[ti] = own
	}
	p.Exec = c
	p.Tasks = make([]engine.CountTask, len(tasks))
	for ti, t := range tasks {
		p.Tasks[ti] = t.ct
	}
	ri = 0
	for i := range p.Metrics {
		m := &p.Metrics[i]
		m.TaskOf = make([]int, len(m.Outputs))
		m.Owner = make([]bool, len(m.Outputs))
		for k := range m.Outputs {
			m.TaskOf[k] = taskOf[ri]
			m.Owner[k] = owner[taskOf[ri]] == ri
			ri++
		}
	}
}

// inputPositions maps a cone's inputs (in order) to their positions in
// the combined circuit's input list, using the old-to-new id map
// ExtractCone returned. Cone inputs are created in combined-id order,
// and the combined input list is id-ordered too, so the result aligns
// index-for-index with cone.Inputs.
func inputPositions(c *circuit.Circuit, old2new []int) []int {
	var pos []int
	for pi, id := range c.Inputs {
		if old2new[id] >= 0 {
			pos = append(pos, pi)
		}
	}
	return pos
}

// coneKey serializes the logic cone of a single-output circuit into a
// canonical structural key. Two cones get the same key iff they compute
// the same node structure over the same combined-miter inputs:
//
//   - only nodes reachable from the output are keyed (dangling gates or
//     inputs left behind by synthesis cannot differ the key),
//   - nodes are identified by their dense rank in id order (ids are
//     topological, so isomorphic cones rank identically),
//   - inputs are identified by their position in the session's shared
//     input list, not by name or local id,
//   - names appear nowhere.
//
// The key is exact — no hashing — so equal keys imply isomorphic cones
// and therefore equal counts; dedup is sound by construction. That same
// property makes the key safe as a *cross-run* content address (the
// store tier of internal/store): it mentions nothing session-specific
// beyond shared-input positions, which isomorphic sessions reproduce.
//
// inputs reports how many of the session's inputs the cone actually
// reaches — the cone's own input space is 2^inputs, which is the space
// the store normalizes counts to (unreachable inputs are free and scale
// any count by an exact power of two).
func coneKey(c *circuit.Circuit, inputPos []int) (key string, inputs int) {
	mark := c.ConeMark(c.Outputs[0])
	rank := make([]int, len(c.Nodes))
	next := 0
	inputIdx := make(map[int]int, len(c.Inputs))
	for i, id := range c.Inputs {
		inputIdx[id] = i
	}
	buf := make([]byte, 0, 16*len(c.Nodes))
	for id := 0; id < len(c.Nodes); id++ {
		if !mark[id] {
			continue
		}
		rank[id] = next
		next++
		nd := &c.Nodes[id]
		buf = append(buf, byte(nd.Kind))
		if nd.Kind == circuit.Input {
			inputs++
			buf = binary.AppendUvarint(buf, uint64(inputPos[inputIdx[id]]))
			continue
		}
		for _, f := range nd.Fanins {
			buf = binary.AppendUvarint(buf, uint64(rank[f]))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(rank[c.Outputs[0]]))
	return string(buf), inputs
}

// ProgressEvent reports the completion of one metric output bit. When
// several bits share one task, each gets an event as the task
// completes; only the owning bit carries the task's runtime and stats
// (the others are flagged Shared), so per-metric event stats sum to the
// session totals.
type ProgressEvent struct {
	Metric  string
	Backend string
	// Index is the bit's output index within its metric; Output its name.
	Index  int
	Output string
	Count  *big.Int
	Weight *big.Int
	// Done counts the metric's completed bits so far (including this
	// one); Total is the metric's bit count.
	Done, Total int
	// SessionDone counts completed unique tasks across the whole
	// session; SessionTotal is the session's task count.
	SessionDone, SessionTotal int
	// Shared marks a bit whose count came from a task owned by another
	// bit (deduplicated work).
	Shared  bool
	Runtime time.Duration
	Stats   counter.Stats
	Trivial bool
	// Approx marks an (ε, δ)-estimated count (the approx backend).
	Approx bool
	// FromStore marks a count served by the cross-request cone store
	// rather than computed in this run.
	FromStore bool
	// RunID identifies the verification run the event belongs to (0 when
	// the caller did not allocate one); TUs is the event time in
	// microseconds on the process-monotonic obs.SinceStart clock. Both
	// are additive — existing consumers of the JSON form see the same
	// keys as before plus these two.
	RunID uint64
	TUs   int64
}

// ProgressFunc observes per-bit completion events.
type ProgressFunc func(ProgressEvent)

// SubResult reports one metric output bit. Count is always non-nil.
type SubResult struct {
	Output      string
	Count       *big.Int // patterns (over all 2^I inputs) setting the bit
	Weight      *big.Int
	NodesBefore int
	NodesAfter  int // after synthesis
	Runtime     time.Duration
	Stats       counter.Stats
	Trivial     bool // solved by constant propagation alone
	// Shared marks a bit whose count was produced by a task owned by
	// another bit of the session (possibly of a different metric); its
	// Runtime and Stats are zero — the owner reports them — so summing
	// Stats over any set of Subs never double-counts work.
	Shared bool
	// Task is the session task index that produced Count.
	Task int
	// Approx marks a Count estimated by XOR streamlining rather than
	// counted exactly; Epsilon and Delta are then the estimate's
	// tolerance and failure probability (Count is within a (1+Epsilon)
	// factor of the exact count with probability 1-Delta). Shared bits
	// carry the same flags as their owning task — the count itself is
	// approximate no matter which bit reports it.
	Approx         bool
	Epsilon, Delta float64
	// BestEffort marks an approx count whose round schedule was cut
	// short by the deadline (Delta is the widened failure probability).
	BestEffort bool
	// FromStore marks a count served by the cross-request cone store
	// (engine.TaskResult.FromStore): no solver ran for it in this
	// session. Shared bits inherit the flag from their owning task.
	FromStore bool
	// SupportBefore and SupportAfter are the approx sampling-set sizes
	// around independent-support minimization; HashDensity is the mean
	// density of the hash rows drawn. Zero for exact backends.
	SupportBefore, SupportAfter int
	HashDensity                 float64
}

// MetricOutcome is one metric's assembled result.
type MetricOutcome struct {
	Name  string
	Count *big.Int // weighted numerator: sum_k Weights[k] * count_k
	Subs  []SubResult
	// Stats aggregates the counter statistics of the tasks this metric
	// owns; summing over all metrics of a session gives the session
	// totals exactly once.
	Stats counter.Stats
}

// Outcome is a completed session.
type Outcome struct {
	Metrics []MetricOutcome
	// TaskResults are the raw per-task results, indexed like Plan.Tasks.
	TaskResults []engine.TaskResult
}

// Run executes the plan on a backend. Progress events are derived from
// the backend's per-task events: each task completion fans out to every
// metric bit it satisfies, in session order. Backends serialize their
// progress callbacks, so the adapter's counters need no locking.
func (p *Plan) Run(ctx context.Context, be engine.Backend, cfg engine.Config, progress ProgressFunc) (*Outcome, error) {
	req := &engine.Request{
		Session: p.Session,
		Miter:   p.Exec,
		Tasks:   p.Tasks,
		Config:  cfg,
	}
	// The adapter is also installed when the live stream hub has
	// subscribers, so an introspection client sees per-bit progress even
	// when the caller passed no callback.
	if progress != nil || obs.Stream.Active() {
		runID := obs.RunFrom(ctx)
		refs := p.taskRefs()
		metricDone := make([]int, len(p.Metrics))
		req.Progress = func(te engine.TaskEvent) {
			for _, r := range refs[te.Index] {
				m := &p.Metrics[r.metric]
				metricDone[r.metric]++
				ev := ProgressEvent{
					Metric: m.Name, Backend: te.Backend,
					Index: r.output, Output: m.Outputs[r.output],
					Count: te.Count, Weight: m.Weights[r.output],
					Done: metricDone[r.metric], Total: len(m.Outputs),
					SessionDone: te.Done, SessionTotal: te.Total,
					Shared:    !m.Owner[r.output],
					Trivial:   te.Trivial,
					Approx:    te.Approx,
					FromStore: te.FromStore,
					RunID:     runID,
					TUs:       obs.SinceStart().Microseconds(),
				}
				if m.Owner[r.output] {
					ev.Runtime, ev.Stats = te.Runtime, te.Stats
				}
				if progress != nil {
					progress(ev)
				}
				if obs.Stream.Active() {
					obs.Stream.Publish("progress", obs.Fields{
						"run_id": runID, "metric": ev.Metric, "output": ev.Output,
						"count": ev.Count.String(), "done": ev.Done, "total": ev.Total,
						"session_done": ev.SessionDone, "session_total": ev.SessionTotal,
						"shared": ev.Shared, "trivial": ev.Trivial, "approx": ev.Approx,
						"from_store": ev.FromStore,
					})
				}
			}
		}
	}
	results, err := be.Execute(ctx, req)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Metrics:     make([]MetricOutcome, len(p.Metrics)),
		TaskResults: results,
	}
	var weighted big.Int
	for mi := range p.Metrics {
		m := &p.Metrics[mi]
		mo := MetricOutcome{
			Name:  m.Name,
			Count: new(big.Int),
			Subs:  make([]SubResult, len(m.Outputs)),
		}
		for k, ti := range m.TaskOf {
			res := &results[ti]
			sub := SubResult{
				Output:        m.Outputs[k],
				Count:         new(big.Int).Set(res.Count),
				Weight:        new(big.Int).Set(m.Weights[k]),
				NodesBefore:   p.Tasks[ti].NodesBefore,
				NodesAfter:    p.Tasks[ti].NodesAfter,
				Trivial:       res.Trivial,
				Shared:        !m.Owner[k],
				Task:          ti,
				Approx:        res.Approx,
				Epsilon:       res.Epsilon,
				Delta:         res.Delta,
				BestEffort:    res.BestEffort,
				FromStore:     res.FromStore,
				SupportBefore: res.SupportBefore,
				SupportAfter:  res.SupportAfter,
				HashDensity:   res.HashDensity,
			}
			if m.Owner[k] {
				sub.Runtime = res.Runtime
				sub.Stats = res.Stats
				mo.Stats.Add(res.Stats)
			}
			mo.Subs[k] = sub
			weighted.Mul(res.Count, m.Weights[k])
			mo.Count.Add(mo.Count, &weighted)
		}
		out.Metrics[mi] = mo
	}
	return out, nil
}

type ref struct{ metric, output int }

// taskRefs lists, per task, the (metric, output) bits it satisfies, in
// session order (the owner first).
func (p *Plan) taskRefs() [][]ref {
	refs := make([][]ref, len(p.Tasks))
	for mi := range p.Metrics {
		for k, ti := range p.Metrics[mi].TaskOf {
			refs[ti] = append(refs[ti], ref{metric: mi, output: k})
		}
	}
	return refs
}
