package plan

import (
	"encoding/json"
	"math/big"
	"testing"
	"time"
)

// TestProgressEventJSONAdditive pins the JSON shape of ProgressEvent:
// every key of the original struct must still be present under its old
// name, and the run-correlation fields (RunID, TUs) must appear as new
// keys — the serialization only ever grows, so trace consumers written
// against older builds keep parsing.
func TestProgressEventJSONAdditive(t *testing.T) {
	ev := ProgressEvent{
		Metric:  "MED",
		Backend: "exact",
		Index:   2, Output: "f3",
		Count:  big.NewInt(42),
		Weight: big.NewInt(4),
		Done:   3, Total: 9,
		SessionDone: 5, SessionTotal: 11,
		Shared:  true,
		Runtime: 1500 * time.Microsecond,
		Trivial: false,
		Approx:  true,
		RunID:   7,
		TUs:     123456,
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	legacy := []string{
		"Metric", "Backend", "Index", "Output", "Count", "Weight",
		"Done", "Total", "SessionDone", "SessionTotal",
		"Shared", "Runtime", "Stats", "Trivial", "Approx",
	}
	for _, k := range legacy {
		if _, ok := m[k]; !ok {
			t.Errorf("legacy key %q missing from ProgressEvent JSON", k)
		}
	}
	for _, k := range []string{"RunID", "TUs"} {
		if _, ok := m[k]; !ok {
			t.Errorf("new key %q missing from ProgressEvent JSON", k)
		}
	}
	if got := m["RunID"].(float64); got != 7 {
		t.Errorf("RunID = %v, want 7", got)
	}
	if got := m["TUs"].(float64); got != 123456 {
		t.Errorf("TUs = %v, want 123456", got)
	}

	// An older consumer decoding into a struct without the new fields
	// must round-trip the legacy fields untouched.
	type legacyEvent struct {
		Metric string
		Count  *big.Int
		Done   int
	}
	var old legacyEvent
	if err := json.Unmarshal(raw, &old); err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if old.Metric != "MED" || old.Count.Int64() != 42 || old.Done != 3 {
		t.Errorf("legacy decode = %+v, want Metric=MED Count=42 Done=3", old)
	}
}
