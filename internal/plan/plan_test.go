package plan_test

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/engine"
	"vacsem/internal/gen"
	"vacsem/internal/miter"
	"vacsem/internal/plan"
)

var allSpecs = []plan.Spec{
	{Kind: plan.ER},
	{Kind: plan.MED},
	{Kind: plan.MHD},
}

func TestMetricName(t *testing.T) {
	cases := []struct {
		spec plan.Spec
		want string
	}{
		{plan.Spec{Kind: plan.ER}, "ER"},
		{plan.Spec{Kind: plan.MED}, "MED"},
		{plan.Spec{Kind: plan.MHD}, "MHD"},
		{plan.Spec{Kind: plan.ThresholdProb, Threshold: big.NewInt(3)}, "P(dev>3)"},
	}
	for _, tc := range cases {
		if got := tc.spec.MetricName(); got != tc.want {
			t.Errorf("MetricName() = %q, want %q", got, tc.want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	exact := gen.RippleCarryAdder(4)
	approx := als.LowerORAdder(4, 2)
	ctx := context.Background()
	if _, err := plan.Build(ctx, exact, approx,
		[]plan.Spec{{Kind: plan.ThresholdProb}}, false); err == nil {
		t.Error("ThresholdProb with nil threshold accepted")
	}
	if _, err := plan.Build(ctx, exact, approx,
		[]plan.Spec{{Kind: plan.ThresholdProb, Threshold: big.NewInt(-1)}}, false); err == nil {
		t.Error("ThresholdProb with negative threshold accepted")
	}
	if _, err := plan.Build(ctx, exact, approx, nil, false); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := plan.Build(ctx, exact, gen.RippleCarryAdder(5), allSpecs, false); err == nil {
		t.Error("mismatched circuit pair accepted")
	}
}

// TestPlanInvariants pins the structural contract of a compiled session:
// every output bit maps to a valid task, every task has exactly one
// owning bit (the first bit that produced it), the executable miter has
// one primary output per task, and the bookkeeping counters add up.
func TestPlanInvariants(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 4)
	p, err := plan.Build(context.Background(), exact, approx, allSpecs, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Session != "ER+MED+MHD" {
		t.Errorf("Session = %q, want ER+MED+MHD", p.Session)
	}
	if p.TotalInputs != exact.NumInputs() {
		t.Errorf("TotalInputs = %d, want %d", p.TotalInputs, exact.NumInputs())
	}
	if p.Exec.NumOutputs() != len(p.Tasks) {
		t.Errorf("Exec has %d outputs for %d tasks", p.Exec.NumOutputs(), len(p.Tasks))
	}
	requested := 0
	owners := make([]int, len(p.Tasks))
	for mi, m := range p.Metrics {
		if len(m.Outputs) != len(m.Weights) || len(m.Outputs) != len(m.TaskOf) || len(m.Outputs) != len(m.Owner) {
			t.Fatalf("metric %s: ragged slices", m.Name)
		}
		requested += len(m.Outputs)
		for k, ti := range m.TaskOf {
			if ti < 0 || ti >= len(p.Tasks) {
				t.Fatalf("metric %s bit %d: task index %d out of range", m.Name, k, ti)
			}
			if m.Owner[k] {
				owners[ti]++
			}
			if m.Weights[k] == nil || m.Weights[k].Sign() <= 0 {
				t.Errorf("metric %s bit %d: weight %v", m.Name, k, m.Weights[k])
			}
			wantLabel := m.Name + "/" + m.Outputs[k]
			if m.Owner[k] && p.Tasks[ti].Label != wantLabel {
				t.Errorf("task %d label = %q, want %q (owner %s bit %d)",
					ti, p.Tasks[ti].Label, wantLabel, m.Name, k)
			}
		}
		_ = mi
	}
	if requested != p.TasksRequested {
		t.Errorf("TasksRequested = %d, bits counted = %d", p.TasksRequested, requested)
	}
	for ti, n := range owners {
		if n != 1 {
			t.Errorf("task %d (%s) has %d owners, want 1", ti, p.Tasks[ti].Label, n)
		}
	}
	if p.BaseNodesBefore < p.BaseNodesAfter {
		t.Errorf("synthesis grew the base miter: %d -> %d", p.BaseNodesBefore, p.BaseNodesAfter)
	}
}

// TestDedupAcrossMetrics is the headline property of the plan layer:
// verifying {ER, MED, MHD} in one session dedups structurally identical
// deviation cones across metrics (MED's low-order difference bits reduce
// to MHD's XOR bits after synthesis), so the session solves strictly
// fewer sub-miters than the three metrics would standalone.
func TestDedupAcrossMetrics(t *testing.T) {
	exact := gen.RippleCarryAdder(8)
	approx := als.LowerORAdder(8, 4)
	p, err := plan.Build(context.Background(), exact, approx, allSpecs, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.TasksDeduped() <= 0 {
		t.Fatalf("TasksDeduped = %d (requested %d, unique %d); want cross-metric sharing",
			p.TasksDeduped(), p.TasksRequested, len(p.Tasks))
	}
	if len(p.Tasks)+p.TasksDeduped() != p.TasksRequested {
		t.Errorf("dedup arithmetic: %d + %d != %d",
			len(p.Tasks), p.TasksDeduped(), p.TasksRequested)
	}
}

// TestRunMatchesDirectCounts runs a multi-metric session on the enum
// backend and checks each metric's numerator against a hand-computed
// weighted sum of the task counts — the assembly step must apply every
// bit's weight to its (possibly shared) task.
func TestRunMatchesDirectCounts(t *testing.T) {
	exact := gen.RippleCarryAdder(6)
	approx := als.LowerORAdder(6, 3)
	p, err := plan.Build(context.Background(), exact, approx, allSpecs, false)
	if err != nil {
		t.Fatal(err)
	}
	be, err := engine.Lookup("enum")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(context.Background(), be, engine.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Metrics) != len(p.Metrics) || len(out.TaskResults) != len(p.Tasks) {
		t.Fatalf("outcome shape: %d metrics / %d task results", len(out.Metrics), len(out.TaskResults))
	}
	for mi, mo := range out.Metrics {
		want := new(big.Int)
		m := p.Metrics[mi]
		for k, ti := range m.TaskOf {
			term := new(big.Int).Mul(m.Weights[k], out.TaskResults[ti].Count)
			want.Add(want, term)
		}
		if mo.Count.Cmp(want) != 0 {
			t.Errorf("%s: count %v, want weighted sum %v", mo.Name, mo.Count, want)
		}
		if len(mo.Subs) != len(m.Outputs) {
			t.Fatalf("%s: %d subs for %d bits", mo.Name, len(mo.Subs), len(m.Outputs))
		}
		for k, sub := range mo.Subs {
			if sub.Count == nil || sub.Count.Cmp(out.TaskResults[sub.Task].Count) != 0 {
				t.Errorf("%s bit %d: sub count %v, task count %v",
					mo.Name, k, sub.Count, out.TaskResults[sub.Task].Count)
			}
			if sub.Shared == m.Owner[k] {
				t.Errorf("%s bit %d: Shared = %v with Owner = %v", mo.Name, k, sub.Shared, m.Owner[k])
			}
		}
	}
}

// TestSubResultWeightsCopied pins the aliasing fix: results must never
// share big.Int storage with the weights the caller handed to FromMiter.
func TestSubResultWeightsCopied(t *testing.T) {
	m, err := miter.MED(gen.RippleCarryAdder(4), als.LowerORAdder(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]*big.Int, m.NumOutputs())
	for i := range weights {
		weights[i] = new(big.Int).Lsh(big.NewInt(1), uint(i))
	}
	p, err := plan.FromMiter(context.Background(), "MED", m, weights, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the caller's slice after Build: the plan must have copied.
	saved := make([]*big.Int, len(weights))
	for i, w := range weights {
		saved[i] = new(big.Int).Set(w)
		w.SetInt64(-7)
	}
	be, err := engine.Lookup("enum")
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(context.Background(), be, engine.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mo := out.Metrics[0]
	for k, sub := range mo.Subs {
		if sub.Weight.Cmp(saved[k]) != 0 {
			t.Errorf("bit %d: weight %v mutated through caller's slice (want %v)",
				k, sub.Weight, saved[k])
		}
		// And the reverse: mutating the result must not touch plan state.
		sub.Weight.SetInt64(99)
	}
	if p.Metrics[0].Weights[0].Cmp(saved[0]) != 0 {
		t.Error("mutating SubResult.Weight changed the plan's weight")
	}
}

func TestFromMiterWeightMismatch(t *testing.T) {
	m, err := miter.HD(gen.RippleCarryAdder(4), als.LowerORAdder(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.FromMiter(context.Background(), "MHD", m, []*big.Int{big.NewInt(1)}, false)
	if err == nil || !strings.Contains(err.Error(), "weights") {
		t.Fatalf("weight-count mismatch not rejected: %v", err)
	}
}

// TestProgressSessionTotals checks the session-spanning progress stream:
// per-metric Done counts reach each metric's bit count, session counters
// reach the unique-task total, and the threshold metric's formatted name
// is carried on its events.
func TestProgressSessionTotals(t *testing.T) {
	exact := gen.RippleCarryAdder(6)
	approx := als.LowerORAdder(6, 3)
	specs := append([]plan.Spec{}, allSpecs...)
	specs = append(specs, plan.Spec{Kind: plan.ThresholdProb, Threshold: big.NewInt(3)})
	p, err := plan.Build(context.Background(), exact, approx, specs, false)
	if err != nil {
		t.Fatal(err)
	}
	be, err := engine.Lookup("vacsem")
	if err != nil {
		t.Fatal(err)
	}
	metricDone := map[string]int{}
	var sessionDone, events int
	progress := func(ev plan.ProgressEvent) {
		events++
		if ev.Done != metricDone[ev.Metric]+1 {
			t.Errorf("%s: Done = %d after %d events", ev.Metric, ev.Done, metricDone[ev.Metric])
		}
		metricDone[ev.Metric] = ev.Done
		if ev.SessionDone < sessionDone {
			t.Errorf("session Done went backwards: %d -> %d", sessionDone, ev.SessionDone)
		}
		sessionDone = ev.SessionDone
		if ev.SessionTotal != len(p.Tasks) {
			t.Errorf("SessionTotal = %d, want %d", ev.SessionTotal, len(p.Tasks))
		}
		if ev.Count == nil {
			t.Errorf("%s/%s: nil count in event", ev.Metric, ev.Output)
		}
	}
	if _, err := p.Run(context.Background(), be, engine.Config{Workers: 2}, progress); err != nil {
		t.Fatal(err)
	}
	for mi, m := range p.Metrics {
		if metricDone[m.Name] != len(m.Outputs) {
			t.Errorf("metric %s: final Done = %d, want %d", m.Name, metricDone[m.Name], len(m.Outputs))
		}
		_ = mi
	}
	if _, ok := metricDone["P(dev>3)"]; !ok {
		t.Errorf("threshold metric name missing from events; saw %v", metricDone)
	}
	if sessionDone != len(p.Tasks) {
		t.Errorf("final SessionDone = %d, want %d", sessionDone, len(p.Tasks))
	}
	if events != p.TasksRequested {
		t.Errorf("saw %d events, want one per requested bit (%d)", events, p.TasksRequested)
	}
}
