// Package serve is the long-lived verification service: an HTTP/JSON
// front end (vacsem-serve) over the core verification stack, built
// around one process-global cross-request result store
// (internal/store). Requests submit circuit pairs as jobs; a bounded
// FIFO scheduler runs them over the engine's worker pool; every
// completed count lands in the store, so a later request for the same
// cone — same circuit pair, same metric bit, or a structurally
// identical cone from a different pair — is served without solving.
//
// The API:
//
//	POST /v1/verify            submit a job (JSON body; 202 + job id,
//	                           429 when the queue is full)
//	GET  /v1/jobs/{id}         job status and, when done, the result
//	GET  /v1/jobs/{id}/events  live progress for one job: the obs
//	                           stream hub filtered to the job's run
//	                           (NDJSON; SSE with Accept: text/event-stream)
//	GET  /v1/store             store statistics (both tiers)
//	/metrics, /debug/...       the obs/expo introspection handler
//
// Exact results served through the store are bit-identical to
// standalone core.Verify* calls; approximate results reuse only entries
// whose (ε, δ) guarantee is at least as tight as requested.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/obs"
	"vacsem/internal/obs/expo"
	"vacsem/internal/store"
)

var (
	mSubmitted = obs.Default.Counter("serve.jobs_submitted")
	mRejected  = obs.Default.Counter("serve.jobs_rejected")
	mDone      = obs.Default.Counter("serve.jobs_done")
	mFailed    = obs.Default.Counter("serve.jobs_failed")
	gQueue     = obs.Default.Gauge("serve.queue_depth")
	hJobRun    = obs.Default.Histogram("serve.job_seconds", nil)
)

// Config tunes a Server. The zero value serves with a fresh store, one
// job at a time, a queue of 64, and no per-job time-limit defaults.
type Config struct {
	// Store is the cross-request result store (nil = a fresh
	// store.New(store.Config{})). One store per process is the point of
	// the service; inject the same store into every server sharing it.
	Store *store.Store
	// Workers bounds each job's engine worker pool (core.Options.Workers);
	// 0 = one worker per CPU.
	Workers int
	// JobWorkers is the number of jobs run concurrently (default 1:
	// strict FIFO; higher values trade latency for throughput — results
	// stay correct at any setting because the store is content-addressed
	// and counts are function-determined).
	JobWorkers int
	// QueueDepth caps the number of jobs queued behind the running ones;
	// submits beyond it are rejected with 429 (default 64).
	QueueDepth int
	// MaxJobs bounds the finished jobs retained for GET /v1/jobs/{id}
	// (default 256; the oldest finished jobs are pruned first).
	MaxJobs int
	// DefaultTimeLimit applies to jobs that specify none; 0 = unlimited.
	DefaultTimeLimit time.Duration
	// MaxTimeLimit caps any requested time limit; 0 = uncapped.
	MaxTimeLimit time.Duration
	// SnapshotPath, when set, is where Close writes the store snapshot
	// (atomic rename) after draining.
	SnapshotPath string
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateError   JobState = "error"
)

// Job is one queued or completed verification request. Fields are
// guarded by the owning Server's mutex; handlers read them through
// snapshots.
type Job struct {
	ID    string
	RunID uint64

	state    JobState
	result   *JobResult
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}

	exact, approx *circuit.Circuit
	specs         []core.MetricSpec
	opt           core.Options
}

// Server is the verification service. Create with New, mount as an
// http.Handler, and Close to drain and snapshot.
type Server struct {
	cfg   Config
	store *store.Store
	mux   *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order, for pruning
	nextID uint64
	closed bool

	queue   chan *Job
	wg      sync.WaitGroup
	jobCtx  context.Context
	jobStop context.CancelFunc

	// beforeJob, when set, runs on the scheduler goroutine right before
	// each job executes — a deterministic hold point for tests (e.g.
	// filling the queue to provoke 429 without timing races).
	beforeJob func(*Job)
}

// New starts a server's scheduler (JobWorkers goroutines) and returns
// it. The caller owns the HTTP listener; the server is the handler.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = store.New(store.Config{})
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		jobCtx:  ctx,
		jobStop: stop,
	}
	s.mux = s.buildMux()
	s.wg.Add(cfg.JobWorkers)
	for i := 0; i < cfg.JobWorkers; i++ {
		go s.runner()
	}
	return s
}

// Store returns the server's cross-request store.
func (s *Server) Store() *store.Store { return s.store }

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// buildMux wires the API routes plus the expo introspection handler
// (which brings /metrics, the live progress stream, the flight-recorder
// snapshot and pprof along).
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/store", s.handleStore)
	mux.Handle("/", expo.NewHandler(expo.Options{}))
	return mux
}

// submit validates admission and enqueues a parsed job. It returns the
// job and a nil error, or an *apiError shaped for the HTTP layer.
func (s *Server) submit(j *Job) *apiError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	// Fully initialize the job before it becomes reachable from the
	// queue — a runner may pick it up the instant the send lands.
	s.nextID++
	j.ID = fmt.Sprintf("job-%d", s.nextID)
	j.RunID = obs.NextRunID()
	j.state = StateQueued
	j.created = time.Now()
	j.done = make(chan struct{})
	select {
	case s.queue <- j:
	default:
		mRejected.Inc()
		return &apiError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("job queue full (%d queued)", cap(s.queue))}
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.pruneLocked()
	mSubmitted.Inc()
	gQueue.Set(int64(len(s.queue)))
	return nil
}

// pruneLocked drops the oldest finished jobs beyond Config.MaxJobs.
// Queued and running jobs are never pruned — the map can exceed the
// bound by at most the queue depth plus the running jobs.
func (s *Server) pruneLocked() {
	excess := len(s.jobs) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && (j.state == StateDone || j.state == StateError) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runner is one scheduler goroutine: it drains the FIFO queue until
// Close closes it.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		gQueue.Set(int64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job against the shared store and records its
// outcome. The job's run ID is stamped on the context before core runs,
// so every span, hub event and progress line of the verification
// carries it — the events endpoint filters the shared hub by it.
func (s *Server) runJob(j *Job) {
	if h := s.beforeJob; h != nil {
		h(j)
	}
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	obs.Stream.Publish("job_start", obs.Fields{
		"run_id": j.RunID, "job_id": j.ID, "session": sessionName(j.specs),
	})

	ctx := obs.WithRun(s.jobCtx, j.RunID)
	sr, err := core.VerifyMetrics(ctx, j.exact, j.approx, j.specs, j.opt)

	s.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateError
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = shapeResult(sr)
	}
	runSec := j.finished.Sub(j.started).Seconds()
	s.mu.Unlock()
	close(j.done)
	if err != nil {
		mFailed.Inc()
	} else {
		mDone.Inc()
	}
	hJobRun.Observe(runSec)
	f := obs.Fields{"run_id": j.RunID, "job_id": j.ID, "seconds": runSec}
	if err != nil {
		f["error"] = err.Error()
	}
	obs.Stream.Publish("job_done", f)
}

func sessionName(specs []core.MetricSpec) string {
	name := ""
	for i, sp := range specs {
		if i > 0 {
			name += "+"
		}
		name += sp.MetricName()
	}
	return name
}

// HTTPServer is a running service listener (the transport half;
// Server.Close drains the scheduler half).
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan error
}

// Start listens on addr and serves h (normally a *Server). The listen
// is synchronous, so a bad address fails the caller immediately; use
// ":0" for an ephemeral port and Addr to discover it.
func Start(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan error, 1),
	}
	go func() { hs.done <- hs.srv.Serve(ln) }()
	return hs, nil
}

// Addr returns the bound listen address.
func (hs *HTTPServer) Addr() string { return hs.ln.Addr().String() }

// Close stops the listener and all active connections (unblocking any
// streaming clients) and waits for the serve loop to exit, so no
// goroutine outlives it. It does not drain the scheduler — call
// Server.Close for that, after this.
func (hs *HTTPServer) Close() error {
	err := hs.srv.Close()
	if serr := <-hs.done; serr != nil && serr != http.ErrServerClosed && err == nil {
		err = serr
	}
	return err
}

// Close drains the service: no new submits are admitted, queued and
// running jobs finish, and — when Config.SnapshotPath is set — the
// store is snapshotted to disk. If ctx expires first, the in-flight
// jobs are cancelled (their contexts are children of the server's) and
// the snapshot still runs over whatever completed; the ctx error is
// returned after the workers exit.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue) // submits check closed under mu, so no send can race this
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.jobStop() // cut in-flight jobs loose
		<-drained
	}
	s.jobStop()
	if s.cfg.SnapshotPath != "" {
		if serr := s.store.SnapshotFile(s.cfg.SnapshotPath); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}
