package serve

import (
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"strings"
	"time"

	"vacsem/internal/blif"
	"vacsem/internal/core"
	"vacsem/internal/miter"
	"vacsem/internal/obs"
)

// maxBodyBytes bounds a submit body (two BLIF circuits plus options).
const maxBodyBytes = 64 << 20

// VerifyRequest is the POST /v1/verify body. Circuits travel as BLIF
// text (the stack's textual interchange format).
type VerifyRequest struct {
	// ExactBLIF and ApproxBLIF are the circuit pair.
	ExactBLIF  string `json:"exact_blif"`
	ApproxBLIF string `json:"approx_blif"`
	// Metrics lists the requested metrics: "er", "med", "mhd", "thr"
	// (which needs Threshold). Default: ["er"].
	Metrics []string `json:"metrics,omitempty"`
	// Threshold is the decimal deviation threshold of "thr".
	Threshold string `json:"threshold,omitempty"`
	// Method picks the backend ("vacsem", "dpll", "enum", "bdd",
	// "approx"; default "vacsem").
	Method string `json:"method,omitempty"`
	// Epsilon/Delta/Seed tune the approx method (see core.Options).
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// TimeLimitMS bounds the job (clamped to the server's MaxTimeLimit;
	// 0 = the server's DefaultTimeLimit).
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// NoSynth skips the synthesis passes.
	NoSynth bool `json:"no_synth,omitempty"`
}

// SubmitResponse answers an accepted POST /v1/verify.
type SubmitResponse struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
}

// MetricResult is one metric's verdict inside a JobResult.
type MetricResult struct {
	Metric string `json:"metric"`
	// Value is the exact rational ("num/den"); Float its float64 form.
	Value string  `json:"value"`
	Float float64 `json:"float"`
	// Count is the weighted pattern count (the numerator over 2^inputs).
	Count      string  `json:"count"`
	Approx     bool    `json:"approx,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Confidence float64 `json:"confidence"`
	BestEffort bool    `json:"best_effort,omitempty"`
}

// JobResult is a finished job's payload.
type JobResult struct {
	Metrics        []MetricResult `json:"metrics"`
	Method         string         `json:"method"`
	NumInputs      int            `json:"num_inputs"`
	RuntimeMS      float64        `json:"runtime_ms"`
	TasksRequested int            `json:"tasks_requested"`
	TasksUnique    int            `json:"tasks_unique"`
	TasksDeduped   int            `json:"tasks_deduped"`
	// StoreConeHits counts tasks served whole from the cross-request
	// store — the dedup the service exists for.
	StoreConeHits int    `json:"store_cone_hits"`
	Decisions     uint64 `json:"decisions"`
	Components    uint64 `json:"components"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	JobID  string     `json:"job_id"`
	RunID  uint64     `json:"run_id"`
	State  JobState   `json:"state"`
	Error  string     `json:"error,omitempty"`
	Result *JobResult `json:"result,omitempty"`
	// QueuedMS is time spent waiting; RunMS the execution time so far
	// (or total, once finished).
	QueuedMS float64 `json:"queued_ms"`
	RunMS    float64 `json:"run_ms,omitempty"`
}

// apiError is an HTTP-shaped error from the service layer.
type apiError struct {
	status int
	msg    string
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseRequest validates a submit body into a ready-to-run Job.
func (s *Server) parseRequest(vr *VerifyRequest) (*Job, *apiError) {
	bad := func(format string, args ...any) (*Job, *apiError) {
		return nil, &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
	}
	if vr.ExactBLIF == "" || vr.ApproxBLIF == "" {
		return bad("exact_blif and approx_blif are required")
	}
	exact, err := blif.Parse(strings.NewReader(vr.ExactBLIF))
	if err != nil {
		return bad("exact_blif: %v", err)
	}
	approx, err := blif.Parse(strings.NewReader(vr.ApproxBLIF))
	if err != nil {
		return bad("approx_blif: %v", err)
	}
	method, err := core.MethodByName(strings.ToLower(orDefault(vr.Method, "vacsem")))
	if err != nil {
		return bad("%v", err)
	}
	names := vr.Metrics
	if len(names) == 0 {
		names = []string{"er"}
	}
	var threshold *big.Int
	if vr.Threshold != "" {
		t, ok := new(big.Int).SetString(vr.Threshold, 10)
		if !ok {
			return bad("threshold %q is not a decimal integer", vr.Threshold)
		}
		threshold = t
	}
	specs := make([]core.MetricSpec, len(names))
	for i, n := range names {
		sp, err := core.MetricSpecByName(strings.ToLower(n), threshold)
		if err != nil {
			return bad("%v", err)
		}
		if sp.Kind == core.MetricThresholdProb {
			// Fail at submit, not inside the job: thr needs a threshold.
			if err := miter.CheckThreshold(sp.Threshold); err != nil {
				return bad("%v", err)
			}
		}
		specs[i] = sp
	}
	limit := s.cfg.DefaultTimeLimit
	if vr.TimeLimitMS > 0 {
		limit = time.Duration(vr.TimeLimitMS) * time.Millisecond
	}
	if s.cfg.MaxTimeLimit > 0 && (limit <= 0 || limit > s.cfg.MaxTimeLimit) {
		limit = s.cfg.MaxTimeLimit
	}
	return &Job{
		exact: exact, approx: approx, specs: specs,
		opt: core.Options{
			Method:    method,
			NoSynth:   vr.NoSynth,
			TimeLimit: limit,
			Workers:   s.cfg.Workers,
			Epsilon:   vr.Epsilon,
			Delta:     vr.Delta,
			Seed:      vr.Seed,
			Store:     s.store,
		},
	}, nil
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// shapeResult converts a core session result into the wire form.
func shapeResult(sr *core.SessionResult) *JobResult {
	jr := &JobResult{
		Metrics:        make([]MetricResult, len(sr.Results)),
		Method:         sr.Method.String(),
		NumInputs:      sr.NumInputs,
		RuntimeMS:      float64(sr.Runtime.Microseconds()) / 1e3,
		TasksRequested: sr.TasksRequested,
		TasksUnique:    sr.TasksUnique,
		TasksDeduped:   sr.TasksDeduped,
		StoreConeHits:  sr.StoreConeHits,
		Decisions:      sr.TotalStats.Decisions,
		Components:     sr.TotalStats.Components,
	}
	for i, r := range sr.Results {
		f, _ := r.Value.Float64()
		jr.Metrics[i] = MetricResult{
			Metric:     r.Metric,
			Value:      r.Value.RatString(),
			Float:      f,
			Count:      r.Count.String(),
			Approx:     r.Approx,
			Epsilon:    r.Epsilon,
			Delta:      r.Delta,
			Confidence: r.Confidence,
			BestEffort: r.BestEffort,
		}
	}
	return jr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var vr VerifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&vr); err != nil {
		writeErr(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	j, aerr := s.parseRequest(&vr)
	if aerr != nil {
		writeErr(w, aerr.status, "%s", aerr.msg)
		return
	}
	if aerr := s.submit(j); aerr != nil {
		writeErr(w, aerr.status, "%s", aerr.msg)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobID: j.ID, State: StateQueued})
}

// status snapshots a job under the server lock.
func (s *Server) status(id string) (*JobStatus, chan struct{}, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, 0, false
	}
	st := &JobStatus{
		JobID: j.ID, RunID: j.RunID, State: j.state,
		Error: j.errMsg, Result: j.result,
	}
	now := time.Now()
	switch j.state {
	case StateQueued:
		st.QueuedMS = ms(now.Sub(j.created))
	case StateRunning:
		st.QueuedMS = ms(j.started.Sub(j.created))
		st.RunMS = ms(now.Sub(j.started))
	default:
		st.QueuedMS = ms(j.started.Sub(j.created))
		st.RunMS = ms(j.finished.Sub(j.started))
	}
	return st, j.done, j.RunID, true
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, _, _, ok := s.status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

// handleEvents streams the obs hub to one client, filtered to the job's
// run ID, until the job finishes (a final job_state line is synthesized
// from the job record, so a subscriber that arrived after completion —
// or after the last hub event — still gets a terminal line) or the
// client disconnects. NDJSON by default, SSE with Accept:
// text/event-stream — the same convention as /debug/vacsem/progress.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st, done, runID, ok := s.status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, okf := w.(http.Flusher)
	if !okf {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeLine := func(line []byte) bool {
		var err error
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", line)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", line)
		}
		if err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	final := func() {
		st, _, _, ok := s.status(st.JobID)
		if !ok {
			return
		}
		line, _ := json.Marshal(obs.Fields{
			"ev": "job_state", "job_id": st.JobID, "run_id": st.RunID,
			"state": st.State, "error": st.Error,
		})
		writeLine(line)
	}

	// Subscribe before checking for completion, so no event between the
	// two is lost; events for other runs are filtered out by run_id.
	ch, cancel := obs.Stream.Subscribe(0)
	defer cancel()
	open, _ := json.Marshal(obs.Fields{
		"ev": "stream_open", "job_id": st.JobID, "run_id": runID, "state": st.State,
	})
	if !writeLine(open) {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !eventForRun(ev, runID) {
				continue
			}
			if !writeLine(ev) {
				return
			}
		case <-done:
			// Drain whatever the hub already buffered for this run, then
			// close with the job's terminal state.
			for {
				select {
				case ev, ok := <-ch:
					if ok && eventForRun(ev, runID) && !writeLine(ev) {
						return
					}
					if !ok {
						final()
						return
					}
					continue
				default:
				}
				break
			}
			final()
			return
		}
	}
}

// eventForRun reports whether a hub event line belongs to the run. Hub
// lines are small JSON objects; decoding just the run_id keeps the
// filter exact (a substring test would alias run 1 against run 12).
func eventForRun(line []byte, runID uint64) bool {
	var probe struct {
		RunID uint64 `json:"run_id"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return false
	}
	return probe.RunID == runID
}
