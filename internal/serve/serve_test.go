package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/blif"
	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/gen"
	"vacsem/internal/store"
)

func blifText(t *testing.T, c *circuit.Circuit) string {
	t.Helper()
	var buf bytes.Buffer
	if err := blif.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// adderRequest builds the standard test submission: ER+MED over a
// ripple-carry adder vs its lower-OR approximation.
func adderRequest(t *testing.T, width, cut int) *VerifyRequest {
	t.Helper()
	return &VerifyRequest{
		ExactBLIF:  blifText(t, gen.RippleCarryAdder(width)),
		ApproxBLIF: blifText(t, als.LowerORAdder(width, cut)),
		Metrics:    []string{"er", "med"},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, hs
}

func submit(t *testing.T, base string, vr *VerifyRequest) SubmitResponse {
	t.Helper()
	resp := postJSON(t, base, vr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func postJSON(t *testing.T, base string, vr *VerifyRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(vr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, base, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			return &st
		case StateError:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

func runJobHTTP(t *testing.T, base string, vr *VerifyRequest) *JobStatus {
	t.Helper()
	sr := submit(t, base, vr)
	return waitDone(t, base, sr.JobID)
}

func sameMetrics(t *testing.T, label string, a, b []MetricResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d metrics", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Value != b[i].Value || a[i].Count != b[i].Count {
			t.Errorf("%s: metric %s diverged: %s (%s) vs %s (%s)", label,
				a[i].Metric, a[i].Value, a[i].Count, b[i].Value, b[i].Count)
		}
	}
}

// TestServeDedupAcrossRequests is the cross-request dedup acceptance
// test: the same adder-pair verify submitted twice to one serve
// instance must return bit-identical results, with the second job
// solving nothing — all its non-trivial tasks served from the store —
// and the cycle must survive a snapshot/reload into a fresh server.
func TestServeDedupAcrossRequests(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "store.json")
	s, hs := newTestServer(t, Config{SnapshotPath: snapPath})
	req := adderRequest(t, 12, 4)

	cold := runJobHTTP(t, hs.URL, req)
	if cold.Result.StoreConeHits != 0 {
		t.Errorf("cold job reports %d store hits", cold.Result.StoreConeHits)
	}
	if cold.Result.Decisions == 0 {
		t.Error("cold job reports zero decisions; the pair is too trivial to test dedup")
	}
	warm := runJobHTTP(t, hs.URL, req)
	if warm.Result.StoreConeHits == 0 {
		t.Fatal("warm job served nothing from the store")
	}
	if warm.Result.Decisions != 0 || warm.Result.Components != 0 {
		t.Errorf("warm job still solved: decisions=%d components=%d",
			warm.Result.Decisions, warm.Result.Components)
	}
	sameMetrics(t, "cold vs warm", cold.Result.Metrics, warm.Result.Metrics)

	st := s.Store().Stats()
	if st.Cones.Hits == 0 {
		t.Error("store reports no cone hits after the warm job")
	}

	// Drain + snapshot, then restart from the snapshot: the reloaded
	// server must serve the same request store-warm.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hs.Close()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	reloaded := store.New(store.Config{})
	if err := reloaded.LoadFile(snapPath); err != nil {
		t.Fatalf("reload snapshot: %v", err)
	}
	s2, hs2 := newTestServer(t, Config{Store: reloaded})
	_ = s2
	again := runJobHTTP(t, hs2.URL, req)
	if again.Result.StoreConeHits == 0 {
		t.Fatal("job after snapshot/reload served nothing from the store")
	}
	if again.Result.Decisions != 0 {
		t.Errorf("job after reload still solved: decisions=%d", again.Result.Decisions)
	}
	sameMetrics(t, "cold vs reloaded", cold.Result.Metrics, again.Result.Metrics)
}

// TestServeConcurrentMatchesSequential is the shared-store determinism
// contract over HTTP: N jobs submitted concurrently (several running at
// once over one store) return results bit-identical to N sequential
// standalone core.VerifyMetrics calls without any store. Run under
// -race this also pins the locking of the whole service path.
func TestServeConcurrentMatchesSequential(t *testing.T) {
	type jobSpec struct {
		width, cut int
		metrics    []string
	}
	jobs := []jobSpec{
		{9, 3, []string{"er"}},
		{9, 3, []string{"med"}},
		{9, 3, []string{"er", "med", "mhd"}},
		{10, 3, []string{"er", "med"}},
		{10, 3, []string{"er", "med"}}, // duplicate: may be store-served
		{10, 4, []string{"mhd"}},
		{8, 2, []string{"er"}},
		{8, 3, []string{"med"}},
	}

	// Sequential reference: fresh standalone sessions, no store.
	want := make([][]MetricResult, len(jobs))
	for i, js := range jobs {
		specs := make([]core.MetricSpec, len(js.metrics))
		for k, m := range js.metrics {
			sp, err := core.MetricSpecByName(m, nil)
			if err != nil {
				t.Fatal(err)
			}
			specs[k] = sp
		}
		sr, err := core.VerifyMetrics(context.Background(),
			gen.RippleCarryAdder(js.width), als.LowerORAdder(js.width, js.cut), specs,
			core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = shapeResult(sr).Metrics
	}

	_, hs := newTestServer(t, Config{JobWorkers: 4})
	got := make([]*JobStatus, len(jobs))
	var wg sync.WaitGroup
	for i, js := range jobs {
		wg.Add(1)
		go func(i int, js jobSpec) {
			defer wg.Done()
			req := &VerifyRequest{
				ExactBLIF:  blifText(t, gen.RippleCarryAdder(js.width)),
				ApproxBLIF: blifText(t, als.LowerORAdder(js.width, js.cut)),
				Metrics:    js.metrics,
			}
			got[i] = runJobHTTP(t, hs.URL, req)
		}(i, js)
	}
	wg.Wait()
	for i := range jobs {
		sameMetrics(t, fmt.Sprintf("job %d", i), want[i], got[i].Result.Metrics)
	}
}

// TestServeAdmissionControl pins the 429 path deterministically: with a
// single job worker held inside beforeJob and a queue of one, a third
// submit must be rejected, and releasing the worker completes the rest.
func TestServeAdmissionControl(t *testing.T) {
	s := New(Config{QueueDepth: 1})
	entered := make(chan *Job, 1)
	release := make(chan struct{})
	s.beforeJob = func(j *Job) {
		entered <- j
		<-release
	}
	hs := httptest.NewServer(s)
	defer hs.Close()

	req := adderRequest(t, 8, 2)
	first := submit(t, hs.URL, req)
	<-entered // the worker holds job 1; the queue is empty again
	second := submit(t, hs.URL, req)
	resp := postJSON(t, hs.URL, req) // queue full -> rejected
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("third submit status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	<-entered // worker picks up job 2
	waitDone(t, hs.URL, first.JobID)
	waitDone(t, hs.URL, second.JobID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A submit after Close is refused outright.
	resp = postJSON(t, hs.URL, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close submit status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeEvents checks the per-job event stream: it must carry only
// this job's run (plus the synthesized open/terminal lines) and must
// terminate with the job's final state even for a subscriber that
// arrives after completion.
func TestServeEvents(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	done := runJobHTTP(t, hs.URL, adderRequest(t, 10, 3))

	resp, err := http.Get(hs.URL + "/v1/jobs/" + done.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, m)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d event lines, want at least open + terminal", len(lines))
	}
	if lines[0]["ev"] != "stream_open" {
		t.Errorf("first line ev = %v", lines[0]["ev"])
	}
	last := lines[len(lines)-1]
	if last["ev"] != "job_state" || last["state"] != string(StateDone) {
		t.Errorf("terminal line = %v", last)
	}
	for _, l := range lines {
		if id, ok := l["run_id"].(float64); ok && uint64(id) != done.RunID {
			t.Errorf("event for foreign run %v leaked into job %s stream", id, done.JobID)
		}
	}

	// Unknown jobs 404 on both endpoints.
	for _, p := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := http.Get(hs.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", p, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServeBadRequests pins the validation layer.
func TestServeBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	good := adderRequest(t, 8, 2)
	cases := []struct {
		name string
		mut  func(*VerifyRequest)
	}{
		{"missing approx", func(v *VerifyRequest) { v.ApproxBLIF = "" }},
		{"bad blif", func(v *VerifyRequest) { v.ExactBLIF = ".model x\n.garbage\n" }},
		{"bad metric", func(v *VerifyRequest) { v.Metrics = []string{"wce?"} }},
		{"bad method", func(v *VerifyRequest) { v.Method = "quantum" }},
		{"thr without threshold", func(v *VerifyRequest) { v.Metrics = []string{"thr"} }},
		{"bad threshold", func(v *VerifyRequest) { v.Metrics = []string{"thr"}; v.Threshold = "2.5" }},
	}
	for _, c := range cases {
		vr := *good
		c.mut(&vr)
		resp := postJSON(t, hs.URL, &vr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// Unknown fields are rejected (catches misspelled options instead of
	// silently ignoring them).
	resp, err := http.Post(hs.URL+"/v1/verify", "application/json",
		strings.NewReader(`{"exact_blif":"x","bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeStoreEndpointAndMetrics checks the operational surfaces the
// smoke scripts scrape: /v1/store statistics and the store counters on
// /metrics.
func TestServeStoreEndpointAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := adderRequest(t, 10, 3)
	runJobHTTP(t, hs.URL, req)
	runJobHTTP(t, hs.URL, req)

	resp, err := http.Get(hs.URL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	var st store.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cones.Hits == 0 || st.Cones.Stores == 0 {
		t.Errorf("store stats show no activity: %+v", st.Cones)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, name := range []string{"store_cone_hits", "store_cone_stores", "serve_jobs_done"} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics is missing %s", name)
		}
	}
}
