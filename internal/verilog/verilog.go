// Package verilog writes circuits as structural Verilog netlists —
// the format downstream EDA flows consume. Only writing is supported
// (parsing general Verilog is out of scope; use BLIF or AIGER as the
// input formats).
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"regexp"

	"vacsem/internal/circuit"
)

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_$]*$`)

// sanitize makes a safe Verilog identifier out of a signal name.
func sanitize(name string, fallback string) string {
	if identRe.MatchString(name) && !reserved[name] {
		return name
	}
	return fallback
}

// reserved lists Verilog keywords that must not be used as identifiers.
var reserved = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "assign": true, "reg": true, "begin": true, "end": true,
	"not": true, "and": true, "or": true, "xor": true, "nand": true,
	"nor": true, "xnor": true, "buf": true,
}

// Write serializes the circuit as a structural Verilog module using
// continuous assignments.
func Write(w io.Writer, c *circuit.Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)

	name := sanitize(c.Name, "top")
	sig := make([]string, len(c.Nodes))
	used := map[string]bool{}
	claim := func(want, fallback string) string {
		s := sanitize(want, fallback)
		if s == "" || used[s] {
			s = fallback
		}
		used[s] = true
		return s
	}
	for _, id := range c.Inputs {
		sig[id] = claim(c.Nodes[id].Name, fmt.Sprintf("pi%d", id))
	}
	mark := c.ConeMark(c.Outputs...)
	for id := 1; id < len(c.Nodes); id++ {
		if c.Nodes[id].Kind == circuit.Input || !mark[id] {
			continue
		}
		sig[id] = claim("", fmt.Sprintf("n%d", id))
	}
	outName := make([]string, c.NumOutputs())
	for i := range c.Outputs {
		outName[i] = claim(c.OutputName(i), fmt.Sprintf("po%d", i))
	}

	fmt.Fprintf(bw, "module %s(", name)
	for i, id := range c.Inputs {
		if i > 0 {
			bw.WriteString(", ")
		}
		bw.WriteString(sig[id])
	}
	for i := range c.Outputs {
		if len(c.Inputs) > 0 || i > 0 {
			bw.WriteString(", ")
		}
		bw.WriteString(outName[i])
	}
	bw.WriteString(");\n")
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", sig[id])
	}
	for i := range c.Outputs {
		fmt.Fprintf(bw, "  output %s;\n", outName[i])
	}
	for id := 1; id < len(c.Nodes); id++ {
		if c.Nodes[id].Kind == circuit.Input || !mark[id] {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", sig[id])
	}
	// Constant reference.
	sig[0] = "1'b0"

	expr := func(id int) string { return sig[id] }
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		var rhs string
		fi := nd.Fanins
		switch nd.Kind {
		case circuit.Buf:
			rhs = expr(fi[0])
		case circuit.Not:
			rhs = "~" + expr(fi[0])
		case circuit.And:
			rhs = expr(fi[0]) + " & " + expr(fi[1])
		case circuit.Nand:
			rhs = "~(" + expr(fi[0]) + " & " + expr(fi[1]) + ")"
		case circuit.Or:
			rhs = expr(fi[0]) + " | " + expr(fi[1])
		case circuit.Nor:
			rhs = "~(" + expr(fi[0]) + " | " + expr(fi[1]) + ")"
		case circuit.Xor:
			rhs = expr(fi[0]) + " ^ " + expr(fi[1])
		case circuit.Xnor:
			rhs = "~(" + expr(fi[0]) + " ^ " + expr(fi[1]) + ")"
		case circuit.Mux:
			rhs = expr(fi[0]) + " ? " + expr(fi[2]) + " : " + expr(fi[1])
		case circuit.Maj:
			a, b, cc := expr(fi[0]), expr(fi[1]), expr(fi[2])
			rhs = fmt.Sprintf("(%s & %s) | (%s & %s) | (%s & %s)", a, b, a, cc, b, cc)
		default:
			return fmt.Errorf("verilog: unsupported kind %v", nd.Kind)
		}
		fmt.Fprintf(bw, "  assign %s = %s;\n", sig[id], rhs)
	}
	for i, o := range c.Outputs {
		src := sig[o]
		if o == 0 {
			src = "1'b0"
		}
		fmt.Fprintf(bw, "  assign %s = %s;\n", outName[i], src)
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}
