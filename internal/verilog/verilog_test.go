package verilog

import (
	"bytes"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestWriteBasicStructure(t *testing.T) {
	c := circuit.New("adder_top")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddGate(circuit.Xor, a, b)
	co := c.AddGate(circuit.And, a, b)
	c.AddOutput(s, "sum")
	c.AddOutput(co, "carry")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module adder_top(a, b, sum, carry);",
		"input a;", "input b;", "output sum;", "output carry;",
		"^", "&", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in:\n%s", want, v)
		}
	}
}

func TestWriteAllKinds(t *testing.T) {
	c := circuit.New("kinds")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	ids := []int{
		c.AddGate(circuit.Buf, a),
		c.AddGate(circuit.Not, a),
		c.AddGate(circuit.And, a, b),
		c.AddGate(circuit.Nand, a, b),
		c.AddGate(circuit.Or, a, b),
		c.AddGate(circuit.Nor, a, b),
		c.AddGate(circuit.Xor, a, b),
		c.AddGate(circuit.Xnor, a, b),
		c.AddGate(circuit.Mux, a, b, d),
		c.AddGate(circuit.Maj, a, b, d),
	}
	for i, id := range ids {
		c.AddOutput(id, "")
		_ = i
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "?") {
		t.Error("mux not rendered as ternary")
	}
}

func TestWriteSanitizesNames(t *testing.T) {
	c := circuit.New("1bad name")
	a := c.AddInput("in[0]")  // illegal identifier
	b := c.AddInput("module") // reserved word
	g := c.AddGate(circuit.And, a, b)
	c.AddOutput(g, "out put")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if strings.Contains(v, "in[0]") || strings.Contains(v, "out put") {
		t.Errorf("illegal identifiers leaked:\n%s", v)
	}
	if !strings.Contains(v, "module top(") {
		t.Errorf("module name not sanitized:\n%s", v)
	}
}

func TestWriteConstOutput(t *testing.T) {
	c := circuit.New("k")
	c.AddInput("a")
	c.AddOutput(0, "zero")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "assign zero = 1'b0;") {
		t.Errorf("const output wrong:\n%s", buf.String())
	}
}

// TestWriteIsSyntacticallyPlausible does a light well-formedness check
// on generated arithmetic circuits: balanced module/endmodule, every
// wire assigned exactly once.
func TestWriteIsSyntacticallyPlausible(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		gen.RippleCarryAdder(8),
		gen.ArrayMultiplier(4),
		testutil.RandomCircuit(6, 30, 3, 5),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		v := buf.String()
		if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
			t.Errorf("%s: module structure wrong", c.Name)
		}
		assigned := map[string]bool{}
		for _, line := range strings.Split(v, "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "assign ") {
				continue
			}
			lhs := strings.TrimSpace(strings.SplitN(strings.TrimPrefix(line, "assign "), "=", 2)[0])
			if assigned[lhs] {
				t.Errorf("%s: %s assigned twice", c.Name, lhs)
			}
			assigned[lhs] = true
		}
		// Every declared wire must be driven.
		for _, line := range strings.Split(v, "\n") {
			line = strings.TrimSpace(line)
			if strings.HasPrefix(line, "wire ") {
				w := strings.TrimSuffix(strings.TrimPrefix(line, "wire "), ";")
				if !assigned[w] {
					t.Errorf("%s: wire %s undriven", c.Name, w)
				}
			}
		}
	}
}
