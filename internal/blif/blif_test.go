package blif

import (
	"bytes"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestParseSimple(t *testing.T) {
	src := `
# a 2-input circuit
.model top
.inputs a b
.outputs y z
.names a b y
11 1
.names a b nz
10 1
01 1
.names nz z
0 1
.end
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "top" || c.NumInputs() != 2 || c.NumOutputs() != 2 {
		t.Fatalf("parsed wrong interface: %v", c.Stat())
	}
	// y = a&b, z = xnor(a,b)
	for x := uint64(0); x < 4; x++ {
		a := x&1 == 1
		b := x>>1&1 == 1
		out := c.EvalUint(x)
		if (out&1 == 1) != (a && b) {
			t.Errorf("y wrong at %02b", x)
		}
		if (out>>1&1 == 1) != (a == b) {
			t.Errorf("z wrong at %02b", x)
		}
	}
}

func TestParseConstCovers(t *testing.T) {
	src := `
.model k
.inputs a
.outputs zero one pass
.names zero
.names one
1
.names a pass
1 1
.end
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 2; x++ {
		out := c.EvalUint(x)
		if out&1 != 0 {
			t.Error("zero output not 0")
		}
		if out>>1&1 != 1 {
			t.Error("one output not 1")
		}
		if out>>2 != x {
			t.Error("pass output wrong")
		}
	}
}

func TestParseOutOfOrderCovers(t *testing.T) {
	// A cover referencing a signal defined by a later .names.
	src := `
.model ooo
.inputs a b
.outputs y
.names t y
0 1
.names a b t
11 1
.end
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// y = !(a&b)
	for x := uint64(0); x < 4; x++ {
		want := x != 3
		if (c.EvalUint(x) == 1) != want {
			t.Errorf("nand wrong at %02b", x)
		}
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := ".model c\n.inputs \\\na b\n.outputs y # trailing comment\n.names a b y\n11 1\n.end\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 2 {
		t.Fatalf("continuation line mishandled: %d inputs", c.NumInputs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"latch":        ".model m\n.inputs a\n.outputs y\n.latch a y 0\n.end\n",
		"no outputs":   ".model m\n.inputs a\n.end\n",
		"undef output": ".model m\n.inputs a\n.outputs y\n.end\n",
		"dup signal":   ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
		"bad plane":    ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
		"cyclic":       ".model m\n.inputs a\n.outputs y\n.names y2 y\n1 1\n.names y y2\n1 1\n.end\n",
		"stray row":    ".model m\n.inputs a\n.outputs y\n11 1\n.end\n",
		"unknown dir":  ".model m\n.wibble\n.end\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := testutil.RandomCircuit(4+int(seed%4), 10+int(seed*3%25), 3, seed)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, buf.String())
		}
		if !testutil.SameFunction(c, back) {
			t.Fatalf("seed %d: BLIF round trip changed the function", seed)
		}
	}
}

func TestRoundTripArithmetic(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		gen.RippleCarryAdder(6),
		gen.ArrayMultiplier(4),
		gen.AbsDiff(5),
	} {
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.SameFunction(c, back) {
			t.Fatalf("%s: round trip changed the function", c.Name)
		}
		if back.NumInputs() != c.NumInputs() || back.NumOutputs() != c.NumOutputs() {
			t.Fatalf("%s: interface changed", c.Name)
		}
	}
}

func TestWriteConstOutput(t *testing.T) {
	c := circuit.New("k")
	c.AddInput("a")
	c.AddOutput(0, "zero")
	c.AddOutput(c.Const1(), "one")
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := back.EvalUint(0)
	if out != 2 {
		t.Errorf("const outputs wrong: %b", out)
	}
}

func TestSortedSignalNames(t *testing.T) {
	c := circuit.New("n")
	c.AddInput("b")
	c.AddInput("a")
	names := SortedSignalNames(c)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}
