// Package blif reads and writes combinational circuits in the Berkeley
// Logic Interchange Format (the format of the EPFL and BACS benchmark
// distributions). The supported subset covers combinational netlists:
// .model, .inputs, .outputs, .names (with single-output SOP covers) and
// .end. Latches and subcircuits are rejected with a clear error.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"vacsem/internal/circuit"
)

// Parse reads one BLIF model from r.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)

	var (
		name    string
		inputs  []string
		outputs []string
	)
	type cover struct {
		inputs []string
		out    string
		rows   []string // "<inputs> <outvalue>"
	}
	var covers []cover
	var cur *cover

	// Logical-line reader with '\' continuation.
	var pending string
	nextLine := func() (string, bool) {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "#"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if strings.HasSuffix(line, "\\") {
				pending += strings.TrimSuffix(line, "\\") + " "
				continue
			}
			out := pending + line
			pending = ""
			return out, true
		}
		return "", false
	}

	for {
		line, ok := nextLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				name = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			covers = append(covers, cover{
				inputs: fields[1 : len(fields)-1],
				out:    fields[len(fields)-1],
			})
			cur = &covers[len(covers)-1]
		case ".end":
			cur = nil
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: unsupported construct %q (combinational subset only)", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: unknown directive %q", fields[0])
			}
			if cur == nil {
				return nil, fmt.Errorf("blif: cover row %q outside .names", line)
			}
			cur.rows = append(cur.rows, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("blif: model has no outputs")
	}

	c := circuit.New(name)
	node := map[string]int{}
	for _, in := range inputs {
		if _, dup := node[in]; dup {
			return nil, fmt.Errorf("blif: input %q declared twice", in)
		}
		node[in] = c.AddInput(in)
	}

	// Two-pass: declare signals first (covers may reference later
	// covers), then build logic and Normalize.
	// We build a placeholder-free construction instead: process covers in
	// dependency order via repeated passes.
	built := make([]bool, len(covers))
	remaining := len(covers)
	for remaining > 0 {
		progress := false
		for i := range covers {
			if built[i] {
				continue
			}
			cv := &covers[i]
			ready := true
			for _, in := range cv.inputs {
				if _, ok := node[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			id, err := buildCover(c, node, cv.inputs, cv.rows)
			if err != nil {
				return nil, fmt.Errorf("blif: cover for %q: %w", cv.out, err)
			}
			if _, dup := node[cv.out]; dup {
				return nil, fmt.Errorf("blif: signal %q defined twice", cv.out)
			}
			node[cv.out] = id
			built[i] = true
			remaining--
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("blif: cyclic or undefined signal dependencies")
		}
	}
	for _, out := range outputs {
		id, ok := node[out]
		if !ok {
			return nil, fmt.Errorf("blif: output %q undefined", out)
		}
		c.AddOutput(id, out)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	return c, nil
}

// buildCover turns one SOP cover into gates: OR over product rows, where
// each row ANDs the literals given by its input plane ('0' negated, '1'
// positive, '-' absent). An output plane of 0 complements the whole
// cover. An empty cover is constant 0; a cover with no inputs and a "1"
// row is constant 1.
func buildCover(c *circuit.Circuit, node map[string]int, ins []string, rows []string) (int, error) {
	onset := true
	var terms []int
	for _, row := range rows {
		fields := strings.Fields(row)
		var plane, outVal string
		switch {
		case len(fields) == 2:
			plane, outVal = fields[0], fields[1]
		case len(fields) == 1 && len(ins) == 0:
			plane, outVal = "", fields[0]
		default:
			return 0, fmt.Errorf("bad cover row %q", row)
		}
		if len(plane) != len(ins) {
			return 0, fmt.Errorf("row %q has %d literals for %d inputs", row, len(plane), len(ins))
		}
		switch outVal {
		case "1":
		case "0":
			onset = false
		default:
			return 0, fmt.Errorf("bad output value %q", outVal)
		}
		term := -1
		for j, ch := range plane {
			var lit int
			switch ch {
			case '1':
				lit = node[ins[j]]
			case '0':
				lit = c.AddGate(circuit.Not, node[ins[j]])
			case '-':
				continue
			default:
				return 0, fmt.Errorf("bad plane character %q", string(ch))
			}
			if term < 0 {
				term = lit
			} else {
				term = c.AddGate(circuit.And, term, lit)
			}
		}
		if term < 0 {
			term = c.Const1() // row with all '-': tautology
		}
		terms = append(terms, term)
	}
	var out int
	switch len(terms) {
	case 0:
		out = 0 // constant 0 (no rows)
	case 1:
		out = terms[0]
	default:
		out = terms[0]
		for _, tm := range terms[1:] {
			out = c.AddGate(circuit.Or, out, tm)
		}
	}
	if !onset {
		out = c.AddGate(circuit.Not, out)
	}
	return out, nil
}

// Write serializes the circuit as BLIF. Every gate becomes one .names
// cover. Node names are synthesized ("n<id>") unless the node carries a
// name.
func Write(w io.Writer, c *circuit.Circuit) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	name := c.Name
	if name == "" {
		name = "circuit"
	}
	fmt.Fprintf(bw, ".model %s\n", name)

	sigName := make([]string, len(c.Nodes))
	used := map[string]bool{}
	for id, nd := range c.Nodes {
		n := nd.Name
		if n == "" || used[n] {
			n = fmt.Sprintf("n%d", id)
		}
		used[n] = true
		sigName[id] = n
	}
	sigName[0] = "const0__"

	fmt.Fprint(bw, ".inputs")
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, " %s", sigName[id])
	}
	fmt.Fprintln(bw)

	outNames := make([]string, c.NumOutputs())
	usedOut := map[string]bool{}
	for i := range c.Outputs {
		on := c.OutputName(i)
		if usedOut[on] {
			on = fmt.Sprintf("%s_dup%d", on, i)
		}
		usedOut[on] = true
		outNames[i] = on
	}
	fmt.Fprint(bw, ".outputs")
	for _, on := range outNames {
		fmt.Fprintf(bw, " %s", on)
	}
	fmt.Fprintln(bw)

	// Emit const0 only if referenced.
	mark := c.ConeMark(c.Outputs...)
	if mark[0] {
		fmt.Fprintf(bw, ".names %s\n", sigName[0])
	}
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		fmt.Fprintf(bw, ".names")
		for _, f := range nd.Fanins {
			fmt.Fprintf(bw, " %s", sigName[f])
		}
		fmt.Fprintf(bw, " %s\n", sigName[id])
		bw.WriteString(coverRows(nd.Kind))
	}
	// Output drivers: alias covers.
	for i, o := range c.Outputs {
		fmt.Fprintf(bw, ".names %s %s\n1 1\n", sigName[o], outNames[i])
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// coverRows returns the SOP onset rows of each gate kind.
func coverRows(k circuit.Kind) string {
	switch k {
	case circuit.Buf:
		return "1 1\n"
	case circuit.Not:
		return "0 1\n"
	case circuit.And:
		return "11 1\n"
	case circuit.Nand:
		return "0- 1\n-0 1\n"
	case circuit.Or:
		return "1- 1\n-1 1\n"
	case circuit.Nor:
		return "00 1\n"
	case circuit.Xor:
		return "10 1\n01 1\n"
	case circuit.Xnor:
		return "00 1\n11 1\n"
	case circuit.Mux:
		// inputs (s, a, b): output = a when s=0, b when s=1
		return "01- 1\n1-1 1\n"
	case circuit.Maj:
		return "11- 1\n1-1 1\n-11 1\n"
	default:
		panic("blif: coverRows on " + k.String())
	}
}

// SortedSignalNames is a small helper used by tests and tools to get a
// circuit's named signals deterministically.
func SortedSignalNames(c *circuit.Circuit) []string {
	var names []string
	for _, nd := range c.Nodes {
		if nd.Name != "" {
			names = append(names, nd.Name)
		}
	}
	sort.Strings(names)
	return names
}
