// Package miter builds the approximation miters of Section II-B: circuits
// whose outputs encode the deviation function F(y(x), y'(x)) between an
// exact circuit and an approximate circuit sharing the same inputs.
//
//   - ER constructs the single-output error-rate miter (F_ER, Eq. 2);
//   - MED constructs the multi-output mean-error-distance miter whose m
//     output bits encode |int(y) - int(y')| in binary (F_MED, Eq. 3);
//   - HD constructs the bitwise-difference miter used for the mean
//     Hamming distance;
//   - Threshold constructs a single-output miter asserting
//     |int(y) - int(y')| > T (the MACACO-style cumulative metric).
//
// Split slices a multi-output miter into single-output sub-miters, one
// per deviation bit, each containing only its own logic cone.
package miter

import (
	"fmt"
	"math/big"

	"vacsem/internal/circuit"
)

// checkPair validates that exact and approx are a verifiable pair.
func checkPair(exact, approx *circuit.Circuit) error {
	if err := exact.Validate(); err != nil {
		return fmt.Errorf("miter: exact: %w", err)
	}
	if err := approx.Validate(); err != nil {
		return fmt.Errorf("miter: approx: %w", err)
	}
	if exact.NumInputs() != approx.NumInputs() {
		return fmt.Errorf("miter: input count mismatch: exact %d, approx %d",
			exact.NumInputs(), approx.NumInputs())
	}
	if exact.NumOutputs() != approx.NumOutputs() {
		return fmt.Errorf("miter: output count mismatch: exact %d, approx %d",
			exact.NumOutputs(), approx.NumOutputs())
	}
	if exact.NumOutputs() == 0 {
		return fmt.Errorf("miter: circuits have no outputs")
	}
	return nil
}

// Base is the metric-independent part of every approximation miter: both
// circuit copies instantiated over one shared set of inputs. YE and YA
// hold the node ids of the exact and approximate output words; metric
// heads (ERHead, HDHead, MEDHead, ThresholdHead) build deviation logic
// on top of them. The circuit carries no primary outputs — heads and
// callers attach those.
type Base struct {
	Circ   *circuit.Circuit
	YE, YA []int
}

// NewBase validates the pair and instantiates both circuits over a shared
// set of inputs — the part of every miter construction that does not
// depend on the metric.
func NewBase(exact, approx *circuit.Circuit, name string) (*Base, error) {
	if err := checkPair(exact, approx); err != nil {
		return nil, err
	}
	m := circuit.New(name)
	inputs := make([]int, exact.NumInputs())
	for i := range inputs {
		nm := exact.Nodes[exact.Inputs[i]].Name
		if nm == "" {
			nm = fmt.Sprintf("x%d", i)
		}
		inputs[i] = m.AddInput(nm)
	}
	yE := circuit.Append(m, exact, inputs)
	yA := circuit.Append(m, approx, inputs)
	return &Base{Circ: m, YE: yE, YA: yA}, nil
}

// Compress runs the synthesis pass over the base once, before any metric
// head is attached, so a session verifying several metrics shares one
// compression of the two circuit copies. The output words are anchored
// as temporary primary outputs through the pass (synthesis preserves
// primary-output functions) and read back afterwards; the returned base
// again carries no outputs.
func (b *Base) Compress(compress func(*circuit.Circuit) *circuit.Circuit) *Base {
	tmp := b.Circ.Clone()
	anchors := make([]int, 0, len(b.YE)+len(b.YA))
	anchors = append(anchors, b.YE...)
	anchors = append(anchors, b.YA...)
	tmp.SetOutputs(anchors...)
	ct := compress(tmp)
	nb := &Base{
		Circ: ct,
		YE:   append([]int(nil), ct.Outputs[:len(b.YE)]...),
		YA:   append([]int(nil), ct.Outputs[len(b.YE):]...),
	}
	ct.ClearOutputs()
	return nb
}

// ERHead builds the error-rate deviation function on a base: one node
// that is 1 exactly when the two output words differ anywhere.
func ERHead(m *circuit.Circuit, yE, yA []int) int {
	diffs := make([]int, len(yE))
	for j := range yE {
		diffs[j] = m.AddGate(circuit.Xor, yE[j], yA[j])
	}
	return orTree(m, diffs)
}

// HDHead builds the bitwise-difference deviation bits: node j is 1 when
// the words disagree on bit j.
func HDHead(m *circuit.Circuit, yE, yA []int) []int {
	diffs := make([]int, len(yE))
	for j := range yE {
		diffs[j] = m.AddGate(circuit.Xor, yE[j], yA[j])
	}
	return diffs
}

// MEDHead builds the absolute-difference word |int(yE) - int(yA)|,
// least significant bit first; bit j has weight 2^j in the MED sum.
func MEDHead(m *circuit.Circuit, yE, yA []int) []int {
	return absDiff(m, yE, yA)
}

// ThresholdHead builds the comparator bit |int(yE) - int(yA)| > t.
// The threshold must be non-negative (see CheckThreshold).
func ThresholdHead(m *circuit.Circuit, yE, yA []int, t *big.Int) int {
	abs := absDiff(m, yE, yA)
	// abs > t  <=>  greater-than comparator against the constant t.
	return gtConst(m, abs, t)
}

// CheckThreshold validates a deviation threshold for ThresholdHead.
func CheckThreshold(t *big.Int) error {
	if t == nil {
		return fmt.Errorf("miter: nil threshold")
	}
	if t.Sign() < 0 {
		return fmt.Errorf("miter: negative threshold %v", t)
	}
	return nil
}

// ER builds the error-rate miter: a single output that is 1 exactly when
// the two circuits disagree on at least one output bit.
func ER(exact, approx *circuit.Circuit) (*circuit.Circuit, error) {
	b, err := NewBase(exact, approx, exact.Name+"_er_miter")
	if err != nil {
		return nil, err
	}
	b.Circ.AddOutput(ERHead(b.Circ, b.YE, b.YA), "f1")
	return b.Circ, nil
}

// HD builds the Hamming-distance miter: output j is 1 when the circuits
// disagree on output bit j. The mean Hamming distance is the sum of the
// per-output signal probabilities.
func HD(exact, approx *circuit.Circuit) (*circuit.Circuit, error) {
	b, err := NewBase(exact, approx, exact.Name+"_hd_miter")
	if err != nil {
		return nil, err
	}
	for j, d := range HDHead(b.Circ, b.YE, b.YA) {
		b.Circ.AddOutput(d, fmt.Sprintf("d%d", j))
	}
	return b.Circ, nil
}

// MED builds the mean-error-distance miter. Outputs f_1 .. f_O encode
// the absolute difference |int(y) - int(y')| in binary, least significant
// bit first (Eq. 3); output j has weight 2^(j-1).
//
// The construction subtracts the two output words in two's complement
// over O+1 bits and conditionally negates on the sign bit, using ripple
// full adders.
func MED(exact, approx *circuit.Circuit) (*circuit.Circuit, error) {
	b, err := NewBase(exact, approx, exact.Name+"_med_miter")
	if err != nil {
		return nil, err
	}
	for j, id := range MEDHead(b.Circ, b.YE, b.YA) {
		b.Circ.AddOutput(id, fmt.Sprintf("f%d", j+1))
	}
	return b.Circ, nil
}

// Threshold builds a single-output miter that is 1 exactly when
// |int(y) - int(y')| > t. Varying t yields the cumulative distribution of
// the deviation (the MACACO approach).
func Threshold(exact, approx *circuit.Circuit, t *big.Int) (*circuit.Circuit, error) {
	if err := CheckThreshold(t); err != nil {
		return nil, err
	}
	b, err := NewBase(exact, approx, exact.Name+"_thr_miter")
	if err != nil {
		return nil, err
	}
	b.Circ.AddOutput(ThresholdHead(b.Circ, b.YE, b.YA, t), "f1")
	return b.Circ, nil
}

// absDiff returns nodes encoding |int(a) - int(b)| (width = len(a)).
func absDiff(m *circuit.Circuit, a, b []int) []int {
	o := len(a)
	// d = a + ~b + 1 over o+1 bits (a, b zero-extended). The final carry
	// out of bit o is the (inverted) sign: d fits in o+1 bits signed.
	carry := m.Const1() // +1 of the two's complement
	diff := make([]int, o+1)
	for j := 0; j < o+1; j++ {
		var aj, bj int
		if j < o {
			aj = a[j]
			bj = m.AddGate(circuit.Not, b[j])
		} else {
			aj = 0          // zero extension of a
			bj = m.Const1() // ~0 of b's zero extension
		}
		sum, cout := fullAdder(m, aj, bj, carry)
		diff[j] = sum
		carry = cout
	}
	sign := diff[o] // 1 means negative (a < b)
	// abs = (diff ^ sign) + sign, over o bits (the result fits o bits).
	carry = sign
	abs := make([]int, o)
	for j := 0; j < o; j++ {
		x := m.AddGate(circuit.Xor, diff[j], sign)
		sum, cout := halfAdder(m, x, carry)
		abs[j] = sum
		carry = cout
	}
	return abs
}

// fullAdder returns (sum, carry) nodes of a+b+c.
func fullAdder(m *circuit.Circuit, a, b, c int) (int, int) {
	s1 := m.AddGate(circuit.Xor, a, b)
	sum := m.AddGate(circuit.Xor, s1, c)
	cout := m.AddGate(circuit.Maj, a, b, c)
	return sum, cout
}

// halfAdder returns (sum, carry) nodes of a+b.
func halfAdder(m *circuit.Circuit, a, b int) (int, int) {
	return m.AddGate(circuit.Xor, a, b), m.AddGate(circuit.And, a, b)
}

// gtConst builds a comparator node: bits > t (bits LSB-first).
func gtConst(m *circuit.Circuit, bits []int, t *big.Int) int {
	// gt_j = bits[j] & ~t_j | (bits[j] == t_j) & gt_{j-1}, scanning from
	// LSB to MSB; final gt is the answer.
	gt := 0 // const0: empty prefix is equal, not greater
	for j := 0; j < len(bits); j++ {
		tj := t.Bit(j) == 1
		eq := 0
		var here int
		if tj {
			here = 0 // bit 1 vs 1 cannot be greater at this position
			eq = bits[j]
		} else {
			here = bits[j]
			eq = m.AddGate(circuit.Not, bits[j])
		}
		keep := m.AddGate(circuit.And, eq, gt)
		if here == 0 {
			gt = keep
		} else {
			gt = m.AddGate(circuit.Or, here, keep)
		}
	}
	if t.BitLen() > len(bits) {
		return 0 // t has high bits beyond the representable deviation
	}
	return gt
}

// orTree reduces nodes with a balanced OR tree (single node in, itself out).
func orTree(m *circuit.Circuit, ids []int) int {
	if len(ids) == 0 {
		return 0
	}
	for len(ids) > 1 {
		var next []int
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, m.AddGate(circuit.Or, ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// Split extracts one single-output sub-miter per output of m, each
// restricted to its own logic cone (Phase 1's "split the approximation
// miter into m sub-miters").
func Split(m *circuit.Circuit) []*circuit.Circuit {
	subs := make([]*circuit.Circuit, m.NumOutputs())
	for j := range subs {
		sub, _ := m.ExtractCone(j)
		sub.Name = fmt.Sprintf("%s_f%d", m.Name, j+1)
		subs[j] = sub
	}
	return subs
}
