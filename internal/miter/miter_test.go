package miter

import (
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// behav evaluates the two circuits on one packed input pattern and
// returns (int(y), int(y')).
func behav(exact, approx *circuit.Circuit, x *big.Int) (*big.Int, *big.Int) {
	return exact.EvalBig(x), approx.EvalBig(x)
}

func approxOf(c *circuit.Circuit, seed int64) *circuit.Circuit {
	a := c.Clone()
	for id := len(a.Nodes) - 1; id > 0; id-- {
		nd := &a.Nodes[id]
		if nd.Kind.IsGate() && len(nd.Fanins) > 0 {
			nd.Fanins[0] = int(seed) % id
			return a
		}
	}
	return a
}

func forEachPattern(nIn int, f func(x *big.Int)) {
	for v := uint64(0); v < 1<<uint(nIn); v++ {
		x := new(big.Int).SetUint64(v)
		f(x)
	}
}

func TestERMiterSemantics(t *testing.T) {
	for seed := int64(1); seed < 12; seed++ {
		exact := testutil.RandomCircuit(5, 15, 3, seed)
		approx := approxOf(exact, seed*3+1)
		m, err := ER(exact, approx)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.NumOutputs() != 1 || m.NumInputs() != 5 {
			t.Fatalf("ER miter interface: %d/%d", m.NumInputs(), m.NumOutputs())
		}
		forEachPattern(5, func(x *big.Int) {
			ye, ya := behav(exact, approx, x)
			want := ye.Cmp(ya) != 0
			got := m.EvalBig(x).Bit(0) == 1
			if got != want {
				t.Fatalf("seed %d x=%v: miter %v, want %v", seed, x, got, want)
			}
		})
	}
}

func TestMEDMiterEncodesAbsDiff(t *testing.T) {
	for seed := int64(1); seed < 12; seed++ {
		exact := testutil.RandomCircuit(5, 12, 3, seed+20)
		approx := approxOf(exact, seed*7+2)
		m, err := MED(exact, approx)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumOutputs() != exact.NumOutputs() {
			t.Fatalf("MED miter must have O outputs, got %d", m.NumOutputs())
		}
		forEachPattern(5, func(x *big.Int) {
			ye, ya := behav(exact, approx, x)
			want := new(big.Int).Sub(ye, ya)
			want.Abs(want)
			got := m.EvalBig(x)
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d x=%v: |dev| = %v, want %v", seed, x, got, want)
			}
		})
	}
}

func TestHDMiterSemantics(t *testing.T) {
	exact := testutil.RandomCircuit(4, 10, 4, 5)
	approx := approxOf(exact, 3)
	m, err := HD(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	forEachPattern(4, func(x *big.Int) {
		ye, ya := behav(exact, approx, x)
		diff := new(big.Int).Xor(ye, ya)
		got := m.EvalBig(x)
		if got.Cmp(diff) != 0 {
			t.Fatalf("x=%v: HD bits %v, want %v", x, got, diff)
		}
	})
}

func TestThresholdMiterSemantics(t *testing.T) {
	exact := testutil.RandomCircuit(5, 12, 3, 9)
	approx := approxOf(exact, 11)
	for _, thr := range []int64{0, 1, 2, 5, 7, 100} {
		tb := big.NewInt(thr)
		m, err := Threshold(exact, approx, tb)
		if err != nil {
			t.Fatal(err)
		}
		forEachPattern(5, func(x *big.Int) {
			ye, ya := behav(exact, approx, x)
			d := new(big.Int).Sub(ye, ya)
			d.Abs(d)
			want := d.Cmp(tb) > 0
			got := m.EvalBig(x).Bit(0) == 1
			if got != want {
				t.Fatalf("t=%d x=%v: got %v, want %v (|dev|=%v)", thr, x, got, want, d)
			}
		})
	}
}

func TestThresholdRejectsNegative(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	if _, err := Threshold(c, c.Clone(), big.NewInt(-1)); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestMiterChecksInterfaces(t *testing.T) {
	a := testutil.RandomCircuit(4, 8, 2, 1)
	b := testutil.RandomCircuit(5, 8, 2, 1)
	if _, err := ER(a, b); err == nil {
		t.Error("input mismatch accepted")
	}
	c := testutil.RandomCircuit(4, 8, 3, 1)
	if _, err := MED(a, c); err == nil {
		t.Error("output mismatch accepted")
	}
	empty := circuit.New("empty")
	empty2 := circuit.New("empty2")
	if _, err := ER(empty, empty2); err == nil {
		t.Error("output-less circuits accepted")
	}
}

func TestSplitConesAreIndependent(t *testing.T) {
	exact := gen.RippleCarryAdder(4)
	approx := approxOf(exact, 3)
	m, err := MED(exact, approx)
	if err != nil {
		t.Fatal(err)
	}
	subs := Split(m)
	if len(subs) != m.NumOutputs() {
		t.Fatalf("Split gave %d subs", len(subs))
	}
	for j, sub := range subs {
		if err := sub.Validate(); err != nil {
			t.Fatalf("sub %d: %v", j, err)
		}
		if sub.NumOutputs() != 1 {
			t.Fatalf("sub %d has %d outputs", j, sub.NumOutputs())
		}
		// Each sub-miter computes exactly bit j of the MED miter.
		// Its inputs are a subset of the miter inputs; check by name.
		pos := map[string]int{}
		for i := range m.Inputs {
			pos[m.Nodes[m.Inputs[i]].Name] = i
		}
		forEachPattern(m.NumInputs(), func(x *big.Int) {
			sx := new(big.Int)
			for i, id := range sub.Inputs {
				p, ok := pos[sub.Nodes[id].Name]
				if !ok {
					t.Fatalf("sub %d input %q not in miter", j, sub.Nodes[id].Name)
				}
				sx.SetBit(sx, i, x.Bit(p))
			}
			if sub.EvalBig(sx).Bit(0) != m.EvalBig(x).Bit(j) {
				t.Fatalf("sub %d disagrees with miter bit at x=%v", j, x)
			}
		})
	}
}

func TestERMiterOfEquivalentCircuitsIsUnsat(t *testing.T) {
	c := gen.RippleCarryAdder(3)
	d := gen.CarryLookaheadAdder(3)
	m, err := ER(c, d)
	if err != nil {
		t.Fatal(err)
	}
	forEachPattern(6, func(x *big.Int) {
		if m.EvalBig(x).Bit(0) != 0 {
			t.Fatalf("equivalent adders flagged different at %v", x)
		}
	})
}
