package als

import (
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/gen"
)

func exhaustiveER(exact, approx *circuit.Circuit, t *testing.T) float64 {
	t.Helper()
	r, err := core.VerifyER(exact, approx, core.Options{Method: core.MethodEnum})
	if err != nil {
		t.Fatalf("VerifyER: %v", err)
	}
	return r.Float()
}

func TestApproximateInterfacePreserved(t *testing.T) {
	exact := gen.ArrayMultiplier(4)
	approx := Approximate(exact, Config{Seed: 1, TargetER: 0.05})
	if err := approx.Validate(); err != nil {
		t.Fatal(err)
	}
	if approx.NumInputs() != exact.NumInputs() || approx.NumOutputs() != exact.NumOutputs() {
		t.Fatalf("interface changed: %d/%d vs %d/%d",
			approx.NumInputs(), approx.NumOutputs(), exact.NumInputs(), exact.NumOutputs())
	}
}

func TestApproximateDeterministic(t *testing.T) {
	exact := gen.RippleCarryAdder(6)
	a := Approximate(exact, Config{Seed: 3, TargetER: 0.03})
	b := Approximate(exact, Config{Seed: 3, TargetER: 0.03})
	for x := uint64(0); x < 1<<12; x += 13 {
		if a.EvalUint(x) != b.EvalUint(x) {
			t.Fatal("Approximate not deterministic")
		}
	}
}

func TestApproximateRespectsBudgetRoughly(t *testing.T) {
	// The budget is estimated on 16k random patterns; the true ER on a
	// 12-input circuit must stay within a small multiple of it.
	exact := gen.RippleCarryAdder(6)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		approx := Approximate(exact, Config{Seed: seed, TargetER: 0.02})
		er := exhaustiveER(exact, approx, t)
		if er > 0.10 {
			t.Errorf("seed %d: ER %.4f far above 0.02 budget", seed, er)
		}
	}
}

func TestApproximateChangesSomething(t *testing.T) {
	exact := gen.ArrayMultiplier(4)
	changed := false
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		approx := Approximate(exact, Config{Seed: seed, TargetER: 0.05})
		if exhaustiveER(exact, approx, t) > 0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("no seed produced a non-zero-error approximation of mult4")
	}
}

func TestLowerORAdder(t *testing.T) {
	n, k := 6, 3
	exact := gen.RippleCarryAdder(n)
	loa := LowerORAdder(n, k)
	if loa.NumInputs() != 2*n || loa.NumOutputs() != n+1 {
		t.Fatalf("loa interface: %d/%d", loa.NumInputs(), loa.NumOutputs())
	}
	// LOA with k=0 must be exact.
	if er := exhaustiveER(exact, LowerORAdder(n, 0), t); er != 0 {
		t.Errorf("LOA k=0 ER = %v, want 0", er)
	}
	er := exhaustiveER(exact, loa, t)
	if er <= 0 || er >= 1 {
		t.Errorf("LOA k=3 ER = %v, want in (0,1)", er)
	}
	// Behavioural spot check: upper bits use the a&b carry guess.
	got := loa.EvalUint(0b000111_000101) // a=0b000101, b=0b000111
	a, b := uint64(0b000101), uint64(0b000111)
	lowOr := (a | b) & 7
	carry := (a >> 2 & 1) & (b >> 2 & 1)
	hi := (a>>3 + b>>3 + carry)
	want := lowOr | hi<<3
	if got != want {
		t.Errorf("LOA(5,7) = %b, want %b", got, want)
	}
}

func TestTruncatedAdder(t *testing.T) {
	n, k := 5, 2
	ta := TruncatedAdder(n, k)
	for x := uint64(0); x < 1<<uint(2*n); x += 17 {
		a := x & 31
		b := x >> 5
		want := ((a >> 2) + (b >> 2)) << 2
		if got := ta.EvalUint(x); got != want {
			t.Fatalf("trunc(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// k = 0 is the exact adder.
	exact := gen.RippleCarryAdder(n)
	if er := exhaustiveER(exact, TruncatedAdder(n, 0), t); er != 0 {
		t.Errorf("truncated k=0 ER = %v", er)
	}
}

func TestTruncatedMultiplier(t *testing.T) {
	n := 4
	exact := gen.ArrayMultiplier(n)
	// k=0 keeps every partial product: exact.
	if er := exhaustiveER(exact, TruncatedMultiplier(n, 0), t); er != 0 {
		t.Errorf("truncmult k=0 ER = %v, want 0", er)
	}
	// Larger k must be increasingly wrong but never exceed ER 1.
	prev := 0.0
	for _, k := range []int{1, 2, 3, 4} {
		er := exhaustiveER(exact, TruncatedMultiplier(n, k), t)
		if er < prev {
			t.Errorf("truncmult ER not monotone at k=%d: %v < %v", k, er, prev)
		}
		prev = er
	}
	// Behavioural: truncated product never exceeds the exact product.
	tm := TruncatedMultiplier(n, 3)
	for x := uint64(0); x < 256; x++ {
		a, b := x&15, x>>4
		got := tm.EvalUint(x)
		if got > a*b {
			t.Fatalf("truncmult(%d,%d) = %d exceeds %d", a, b, got, a*b)
		}
	}
}

func TestSuiteApproximations(t *testing.T) {
	exact := gen.RippleCarryAdder(5)
	versions := SuiteApproximations(exact, 10, 100)
	if len(versions) != 10 {
		t.Fatalf("got %d versions", len(versions))
	}
	for i, v := range versions {
		if err := v.Validate(); err != nil {
			t.Errorf("version %d: %v", i, err)
		}
		if v.NumInputs() != exact.NumInputs() || v.NumOutputs() != exact.NumOutputs() {
			t.Errorf("version %d: interface mismatch", i)
		}
	}
}
