// Package als generates approximate versions of exact circuits — the
// role played by the ALSRAC flow [16] in the paper's experimental setup.
//
// Approximate implements a greedy simulation-guided approximate logic
// synthesis: candidate local substitutions (replace a gate by a constant
// or by an existing earlier signal) are scored with word-parallel random
// simulation against the exact circuit, and accepted while the estimated
// error rate stays within the configured budget. Runs are deterministic
// in the seed, so benchmark circuits are reproducible.
//
// The package also provides the classic structured approximations used
// throughout the approximate-arithmetic literature: lower-OR adders and
// truncated multipliers, whose error characteristics are well understood.
package als

import (
	"fmt"
	"math/bits"
	"math/rand"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/sim"
)

// Config tunes Approximate. The zero value is completed with defaults.
type Config struct {
	// Seed drives all randomness (candidate order and simulation
	// patterns). Different seeds give different approximate circuits.
	Seed int64
	// TargetER is the error-rate budget estimated by simulation
	// (default 0.01).
	TargetER float64
	// Words is the number of 64-pattern simulation words used for error
	// estimation (default 256, i.e. 16384 patterns).
	Words int
	// MaxMoves caps the number of accepted substitutions (default 8).
	MaxMoves int
	// Tries caps the number of candidate substitutions examined per move
	// (default 64).
	Tries int
	// RequireError, when set, keeps searching until the result has a
	// strictly positive estimated error rate (an equivalent "approximate"
	// circuit is useless as a verification workload). When no
	// error-introducing substitution fits the budget, the budget is
	// progressively relaxed.
	RequireError bool
}

func (c Config) withDefaults() Config {
	if c.TargetER == 0 {
		c.TargetER = 0.01
	}
	if c.Words == 0 {
		c.Words = 256
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 8
	}
	if c.Tries == 0 {
		c.Tries = 64
	}
	return c
}

// Approximate derives an approximate circuit from the exact circuit under
// the configured error budget. The returned circuit has the same
// input/output interface. When no substitution fits the budget the exact
// circuit is returned unchanged (ER = 0).
func Approximate(exact *circuit.Circuit, cfg Config) *circuit.Circuit {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vectors := sim.RandomVectors(exact.NumInputs(), cfg.Words, rng)
	refOut := sim.RunMany(exact, vectors, cfg.Words)

	cur := exact.Clone()
	cur.Name = fmt.Sprintf("%s_approx_s%d", exact.Name, cfg.Seed)
	moves := 0
	for moves < cfg.MaxMoves {
		// Per-node signatures guide the substitution search (the
		// "resubstitution with approximate care set" idea of ALSRAC):
		// a replacement whose signature differs from the target node on
		// d out of N patterns changes each output on at most d patterns.
		sigs := sim.RunAllNodes(cur, vectors, cfg.Words)
		totalPatterns := cfg.Words * 64
		maxDiff := int(cfg.TargetER * float64(totalPatterns) * 4)
		if maxDiff < 1 {
			maxDiff = 1
		}
		applied := false
		for try := 0; try < cfg.Tries && !applied; try++ {
			// Pick a target gate (never an input or the constant).
			id := 1 + rng.Intn(cur.NumNodes()-1)
			nd := &cur.Nodes[id]
			if !nd.Kind.IsGate() || nd.Kind == circuit.Buf {
				continue
			}
			// Search sampled earlier nodes (and the constants) for the
			// replacement with the smallest positive signature distance.
			bestRepl, bestNeg, bestDist := -1, false, totalPatterns+1
			consider := func(h int, neg bool) {
				d := sigDistance(sigs[id], sigs[h], neg)
				if d > 0 && d < bestDist {
					bestRepl, bestNeg, bestDist = h, neg, d
				}
			}
			consider(0, false) // const0
			consider(0, true)  // const1
			samples := 48
			if id < samples {
				for h := 1; h < id; h++ {
					consider(h, false)
					consider(h, true)
				}
			} else {
				for s := 0; s < samples; s++ {
					h := 1 + rng.Intn(id-1)
					consider(h, false)
					consider(h, true)
				}
			}
			if bestRepl < 0 || bestDist > maxDiff {
				continue
			}
			oldKind, oldFanins := nd.Kind, nd.Fanins
			if bestNeg {
				nd.Kind = circuit.Not
			} else {
				nd.Kind = circuit.Buf
			}
			nd.Fanins = []int{bestRepl}
			if er := estimateER(cur, vectors, refOut, cfg.Words); er <= cfg.TargetER {
				applied = true
				moves++
				break
			}
			nd.Kind = oldKind
			nd.Fanins = oldFanins
		}
		if !applied {
			break
		}
	}
	if cfg.RequireError {
		budget := cfg.TargetER
		for round := 0; round < 8 && estimateER(cur, vectors, refOut, cfg.Words) == 0; round++ {
			if !forceErrorMove(cur, rng, vectors, refOut, cfg.Words, budget) {
				budget *= 2 // relax and retry
			}
		}
	}
	return cur
}

// forceErrorMove applies one substitution that introduces a strictly
// positive estimated error within the budget. Reports whether a move was
// applied.
func forceErrorMove(cur *circuit.Circuit, rng *rand.Rand, vectors, refOut [][]uint64, words int, budget float64) bool {
	for try := 0; try < 200; try++ {
		id := 1 + rng.Intn(cur.NumNodes()-1)
		nd := &cur.Nodes[id]
		if !nd.Kind.IsGate() {
			continue
		}
		repl := 0
		if rng.Intn(2) == 0 && id > 1 {
			repl = 1 + rng.Intn(id-1)
		}
		oldKind, oldFanins := nd.Kind, nd.Fanins
		nd.Kind = circuit.Buf
		nd.Fanins = []int{repl}
		er := estimateER(cur, vectors, refOut, words)
		if er > 0 && er <= budget {
			return true
		}
		nd.Kind = oldKind
		nd.Fanins = oldFanins
	}
	return false
}

// sigDistance counts the patterns where sig differs from repl (or its
// complement when neg is true).
func sigDistance(sig, repl []uint64, neg bool) int {
	d := 0
	for w := range sig {
		x := sig[w] ^ repl[w]
		if neg {
			x = ^x
		}
		d += bits.OnesCount64(x)
	}
	return d
}

// estimateER estimates the error rate of cand against the reference
// output vectors on the same input vectors.
func estimateER(cand *circuit.Circuit, vectors [][]uint64, refOut [][]uint64, words int) float64 {
	out := sim.RunMany(cand, vectors, words)
	var errCnt int
	for w := 0; w < words; w++ {
		var diff uint64
		for j := range out {
			diff |= out[j][w] ^ refOut[j][w]
		}
		errCnt += bits.OnesCount64(diff)
	}
	return float64(errCnt) / float64(words*64)
}

// LowerORAdder builds the classic LOA approximate adder: the low k result
// bits are computed as a_i OR b_i (no carry chain), the upper part is an
// exact ripple adder with carry-in generated from a_{k-1} AND b_{k-1}.
// Interface matches gen.RippleCarryAdder(n).
func LowerORAdder(n, k int) *circuit.Circuit {
	if k < 0 || k > n {
		panic("als: LowerORAdder needs 0 <= k <= n")
	}
	c := circuit.New(fmt.Sprintf("loa%d_%d", n, k))
	a := gen.InputBus(c, "a", n)
	b := gen.InputBus(c, "b", n)
	sum := make(gen.Bus, n+1)
	for i := 0; i < k; i++ {
		sum[i] = c.AddGate(circuit.Or, a[i], b[i])
	}
	carry := 0
	if k > 0 {
		carry = c.AddGate(circuit.And, a[k-1], b[k-1])
	}
	hi, cout := gen.RippleAdd(c, a[k:], b[k:], carry)
	copy(sum[k:], hi)
	sum[n] = cout
	gen.OutputBus(c, "s", sum)
	return c
}

// TruncatedAdder builds an adder whose low k sum bits are forced to zero
// and whose carry chain starts at bit k (pure truncation).
func TruncatedAdder(n, k int) *circuit.Circuit {
	if k < 0 || k > n {
		panic("als: TruncatedAdder needs 0 <= k <= n")
	}
	c := circuit.New(fmt.Sprintf("truncadder%d_%d", n, k))
	a := gen.InputBus(c, "a", n)
	b := gen.InputBus(c, "b", n)
	sum := make(gen.Bus, n+1)
	for i := 0; i < k; i++ {
		sum[i] = 0
	}
	hi, cout := gen.RippleAdd(c, a[k:], b[k:], 0)
	copy(sum[k:], hi)
	sum[n] = cout
	gen.OutputBus(c, "s", sum)
	return c
}

// TruncatedMultiplier builds an n x n multiplier that discards all
// partial products in the k least significant columns (the truncated
// multiplier of the approximate-arithmetic literature). Interface matches
// gen.ArrayMultiplier(n).
func TruncatedMultiplier(n, k int) *circuit.Circuit {
	if k < 0 || k > 2*n {
		panic("als: TruncatedMultiplier needs 0 <= k <= 2n")
	}
	c := circuit.New(fmt.Sprintf("truncmult%d_%d", n, k))
	a := gen.InputBus(c, "a", n)
	b := gen.InputBus(c, "b", n)
	// Column accumulation, skipping columns < k.
	cols := make([][]int, 2*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i+j < k {
				continue
			}
			cols[i+j] = append(cols[i+j], c.AddGate(circuit.And, a[i], b[j]))
		}
	}
	out := make(gen.Bus, 2*n)
	carryIn := []int{}
	for col := 0; col < 2*n; col++ {
		bitsHere := append(carryIn, cols[col]...)
		carryIn = nil
		for len(bitsHere) >= 3 {
			s, co := addFull(c, bitsHere[0], bitsHere[1], bitsHere[2])
			bitsHere = append(bitsHere[3:], s)
			carryIn = append(carryIn, co)
		}
		switch len(bitsHere) {
		case 0:
			out[col] = 0
		case 1:
			out[col] = bitsHere[0]
		case 2:
			s, co := addHalf(c, bitsHere[0], bitsHere[1])
			out[col] = s
			carryIn = append(carryIn, co)
		}
	}
	gen.OutputBus(c, "p", out)
	return c
}

func addFull(c *circuit.Circuit, a, b, d int) (int, int) {
	x := c.AddGate(circuit.Xor, a, b)
	return c.AddGate(circuit.Xor, x, d), c.AddGate(circuit.Maj, a, b, d)
}

func addHalf(c *circuit.Circuit, a, b int) (int, int) {
	return c.AddGate(circuit.Xor, a, b), c.AddGate(circuit.And, a, b)
}

// SuiteApproximations returns `count` deterministic approximate versions
// of the given exact circuit, with increasing seeds. The error budget is
// chosen per circuit size so the resulting ERs land in the paper's
// reported range (roughly 1e-5 to 0.2).
func SuiteApproximations(exact *circuit.Circuit, count int, baseSeed int64) []*circuit.Circuit {
	out := make([]*circuit.Circuit, count)
	for i := range out {
		budget := 0.002 * float64(1+i%5) // 0.002 .. 0.01
		out[i] = Approximate(exact, Config{
			Seed:         baseSeed + int64(i)*7919,
			TargetER:     budget,
			MaxMoves:     4 + i%5,
			RequireError: true,
		})
	}
	return out
}
