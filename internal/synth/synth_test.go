package synth

import (
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

// TestRebuildPreservesFunction is the synthesis safety property: every
// pass must keep the primary-output functions bit-exact.
func TestRebuildPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := testutil.RandomCircuit(3+int(seed%6), 5+int(seed*3%40), 1+int(seed%3), seed)
		r := Rebuild(c)
		if err := r.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !testutil.SameFunction(c, r) {
			t.Fatalf("seed %d: Rebuild changed the function", seed)
		}
	}
}

func TestCompressPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := testutil.RandomCircuit(4+int(seed%5), 10+int(seed*5%50), 2, seed+100)
		r := Compress(c)
		if !testutil.SameFunction(c, r) {
			t.Fatalf("seed %d: Compress changed the function", seed)
		}
	}
}

func TestCompressShrinksRedundantLogic(t *testing.T) {
	// Build a circuit with obvious redundancy: two identical AND cones
	// OR-ed together must collapse to one.
	c := circuit.New("red")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g1 := c.AddGate(circuit.And, a, b)
	g2 := c.AddGate(circuit.And, a, b)
	o := c.AddGate(circuit.Or, g1, g2)
	c.AddOutput(o, "y")
	r := Compress(c)
	if r.NumGates() != 1 {
		t.Errorf("redundant logic not collapsed: %d gates", r.NumGates())
	}
}

func TestConstantPropagation(t *testing.T) {
	c := circuit.New("k")
	a := c.AddInput("a")
	one := c.Const1()
	g1 := c.AddGate(circuit.And, a, one) // = a
	g2 := c.AddGate(circuit.Xor, g1, 0)  // = a
	g3 := c.AddGate(circuit.Or, g2, one) // = 1
	c.AddOutput(g3, "y")
	r := Compress(c)
	out := r.Outputs[0]
	if !(r.Nodes[out].Kind == circuit.Not && r.Nodes[out].Fanins[0] == 0) {
		t.Errorf("output should fold to const1, got %v", r.Nodes[out].Kind)
	}
	// Only the Not(const0) node representing constant 1 may remain.
	if r.NumGates() > 1 {
		t.Errorf("all gates should fold away, got %d", r.NumGates())
	}
}

func TestInverterPairElimination(t *testing.T) {
	c := circuit.New("inv")
	a := c.AddInput("a")
	n1 := c.AddGate(circuit.Not, a)
	n2 := c.AddGate(circuit.Not, n1)
	g := c.AddGate(circuit.And, n2, a) // = a
	c.AddOutput(g, "y")
	r := Compress(c)
	if r.NumGates() != 0 {
		t.Errorf("double negation not eliminated: %d gates", r.NumGates())
	}
	if r.Outputs[0] != r.Inputs[0] {
		t.Errorf("output should be the input itself")
	}
}

func TestXorExtraction(t *testing.T) {
	// (a & ~b) | (~a & b) must become a single XOR.
	c := circuit.New("x")
	a := c.AddInput("a")
	b := c.AddInput("b")
	na := c.AddGate(circuit.Not, a)
	nb := c.AddGate(circuit.Not, b)
	t1 := c.AddGate(circuit.And, a, nb)
	t2 := c.AddGate(circuit.And, na, b)
	o := c.AddGate(circuit.Or, t1, t2)
	c.AddOutput(o, "y")
	r := Compress(c)
	if !testutil.SameFunction(c, r) {
		t.Fatal("function changed")
	}
	if r.NumGates() > 1 {
		t.Errorf("XOR not extracted: %d gates", r.NumGates())
	}
}

func TestMuxSimplifications(t *testing.T) {
	c := circuit.New("m")
	s := c.AddInput("s")
	a := c.AddInput("a")
	// Mux(s, a, a) = a
	m1 := c.AddGate(circuit.Mux, s, a, a)
	// Mux(s, 0, 1) = s
	m2 := c.AddGate(circuit.Mux, s, 0, c.Const1())
	g := c.AddGate(circuit.And, m1, m2) // = a & s
	c.AddOutput(g, "y")
	r := Compress(c)
	if !testutil.SameFunction(c, r) {
		t.Fatal("function changed")
	}
	if r.NumGates() != 1 {
		t.Errorf("mux rules missed: %d gates, want 1", r.NumGates())
	}
}

func TestSweepKeepsInputs(t *testing.T) {
	c := circuit.New("d")
	a := c.AddInput("a")
	b := c.AddInput("b") // unused input must survive
	g := c.AddGate(circuit.Not, a)
	c.AddGate(circuit.And, a, b) // dangling gate must go
	c.AddOutput(g, "y")
	r := Sweep(c)
	if r.NumInputs() != 2 {
		t.Errorf("Sweep dropped inputs: %d", r.NumInputs())
	}
	if r.NumGates() != 1 {
		t.Errorf("Sweep kept dangling logic: %d gates", r.NumGates())
	}
}

func TestCompressOnMiterLikeCircuit(t *testing.T) {
	// An adder XOR-compared with itself folds to constant 0.
	add := gen.RippleCarryAdder(4)
	c := circuit.New("self")
	ins := make([]int, add.NumInputs())
	for i := range ins {
		ins[i] = c.AddInput("")
	}
	o1 := circuit.Append(c, add, ins)
	o2 := circuit.Append(c, add, ins)
	var acc int
	for j := range o1 {
		x := c.AddGate(circuit.Xor, o1[j], o2[j])
		if j == 0 {
			acc = x
		} else {
			acc = c.AddGate(circuit.Or, acc, x)
		}
	}
	c.AddOutput(acc, "f")
	r := Compress(c)
	if r.Outputs[0] != 0 {
		t.Errorf("self-miter should collapse to const0, got node %d (%v)",
			r.Outputs[0], r.Nodes[r.Outputs[0]].Kind)
	}
}

func TestToAIG(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		c := testutil.RandomCircuit(4+int(seed%4), 8+int(seed*3%30), 2, seed+55)
		a := ToAIG(c)
		if !testutil.SameFunction(c, a) {
			t.Fatalf("seed %d: ToAIG changed the function", seed)
		}
		for id, nd := range a.Nodes {
			switch nd.Kind {
			case circuit.Const0, circuit.Input, circuit.And, circuit.Not, circuit.Buf:
			default:
				t.Fatalf("seed %d: node %d has non-AIG kind %v", seed, id, nd.Kind)
			}
		}
		if AndCount(a) < 0 {
			t.Fatal("AndCount negative")
		}
	}
}

func TestAndCount(t *testing.T) {
	c := gen.RippleCarryAdder(8)
	a := ToAIG(c)
	n := AndCount(a)
	if n == 0 {
		t.Fatal("adder AIG has no AND nodes")
	}
	// A full adder is ~7-9 ANDs; 8 bits should be within sane bounds.
	if n > 200 {
		t.Errorf("adder8 AIG suspiciously large: %d ANDs", n)
	}
}

func TestCompressIsIdempotentOnSize(t *testing.T) {
	c := testutil.RandomCircuit(6, 60, 2, 77)
	r1 := Compress(c)
	r2 := Compress(r1)
	if r2.NumNodes() > r1.NumNodes() {
		t.Errorf("Compress grew a compressed circuit: %d -> %d",
			r1.NumNodes(), r2.NumNodes())
	}
}
