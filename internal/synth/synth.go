// Package synth provides the function-preserving logic-synthesis passes
// that VACSEM applies to each sub-miter before CNF conversion (the paper
// uses ABC's compress2rs for this step). The passes shrink the netlist —
// fewer nodes means fewer CNF variables and clauses — without changing
// the Boolean function of any primary output:
//
//   - constant propagation and algebraic simplification,
//   - structural hashing (common-subexpression elimination),
//   - inverter-pair and buffer elimination,
//   - XOR/MUX pattern extraction,
//   - dangling-logic sweeping (implicit: rebuilds keep only live cones).
//
// Compress iterates the rebuild pass to a fixpoint, mirroring the role of
// the iterated compress2rs script.
package synth

import (
	"vacsem/internal/circuit"
)

// builder rebuilds a circuit with hashing and local simplification.
type builder struct {
	c     *circuit.Circuit
	hash  map[nodeKey]int
	notOf []int // id -> id of its negation, or -1
	one   int   // id of constant 1, or -1
}

type nodeKey struct {
	kind       circuit.Kind
	f0, f1, f2 int
}

func newBuilder(name string) *builder {
	b := &builder{
		c:    circuit.New(name),
		hash: make(map[nodeKey]int),
		one:  -1,
	}
	b.notOf = append(b.notOf, -1) // const0
	return b
}

func (b *builder) grow(id int) int {
	for len(b.notOf) <= id {
		b.notOf = append(b.notOf, -1)
	}
	return id
}

func (b *builder) input(name string) int {
	return b.grow(b.c.AddInput(name))
}

func (b *builder) const1() int {
	if b.one < 0 {
		if n := b.notOf[0]; n >= 0 {
			b.one = n
		} else {
			b.one = b.raw(circuit.Not, 0)
		}
	}
	return b.one
}

func (b *builder) isConst0(id int) bool { return id == 0 }
func (b *builder) isConst1(id int) bool { return b.one >= 0 && id == b.one }

// raw adds (or reuses) a gate without simplification beyond hashing.
func (b *builder) raw(k circuit.Kind, fi ...int) int {
	key := nodeKey{kind: k, f0: -1, f1: -1, f2: -1}
	switch len(fi) {
	case 1:
		key.f0 = fi[0]
	case 2:
		// commutative kinds: canonical fanin order
		a, c := fi[0], fi[1]
		if a > c {
			a, c = c, a
		}
		key.f0, key.f1 = a, c
		fi = []int{a, c}
	case 3:
		if k == circuit.Maj {
			a, c, d := fi[0], fi[1], fi[2]
			if a > c {
				a, c = c, a
			}
			if c > d {
				c, d = d, c
			}
			if a > c {
				a, c = c, a
			}
			fi = []int{a, c, d}
		}
		key.f0, key.f1, key.f2 = fi[0], fi[1], fi[2]
	}
	if id, ok := b.hash[key]; ok {
		return id
	}
	id := b.grow(b.c.AddGate(k, fi...))
	b.hash[key] = id
	if k == circuit.Not {
		b.notOf[id] = fi[0]
		b.notOf[fi[0]] = id
	}
	return id
}

func (b *builder) mkNot(a int) int {
	if a == 0 {
		return b.const1()
	}
	if b.isConst1(a) {
		return 0
	}
	if n := b.notOf[a]; n >= 0 {
		return n
	}
	return b.raw(circuit.Not, a)
}

func (b *builder) mkBuf(a int) int { return a }

func (b *builder) mkAnd(a, c int) int {
	switch {
	case b.isConst0(a) || b.isConst0(c):
		return 0
	case b.isConst1(a):
		return c
	case b.isConst1(c):
		return a
	case a == c:
		return a
	case b.notOf[a] == c:
		return 0
	}
	return b.raw(circuit.And, a, c)
}

func (b *builder) mkOr(a, c int) int {
	switch {
	case b.isConst1(a) || b.isConst1(c):
		return b.const1()
	case b.isConst0(a):
		return c
	case b.isConst0(c):
		return a
	case a == c:
		return a
	case b.notOf[a] == c:
		return b.const1()
	}
	// XOR/XNOR extraction: Or(And(x, ~y), And(~x, y)) => Xor(x, y) and
	// Or(And(x, y), And(~x, ~y)) => Xnor(x, y).
	if id, ok := b.tryXorExtract(a, c); ok {
		return id
	}
	return b.raw(circuit.Or, a, c)
}

// tryXorExtract recognizes the two-AND decompositions of XOR and XNOR.
func (b *builder) tryXorExtract(a, c int) (int, bool) {
	na, nc := b.c.Nodes[a], b.c.Nodes[c]
	if na.Kind != circuit.And || nc.Kind != circuit.And {
		return 0, false
	}
	p0, p1 := na.Fanins[0], na.Fanins[1]
	for _, q := range [2][2]int{{nc.Fanins[0], nc.Fanins[1]}, {nc.Fanins[1], nc.Fanins[0]}} {
		q0, q1 := q[0], q[1]
		if b.notOf[p0] != q0 {
			continue
		}
		if b.notOf[p1] == q1 {
			// (p0 & p1) | (~p0 & ~p1) = XNOR(p0, p1)
			return b.mkNot(b.mkXor(p0, p1)), true
		}
		if p1 == q1 {
			// (p0 & p1) | (~p0 & p1) = p1; mkOr's earlier rules cannot
			// see through the ANDs, so catch it here.
			return p1, true
		}
	}
	for _, q := range [2][2]int{{nc.Fanins[0], nc.Fanins[1]}, {nc.Fanins[1], nc.Fanins[0]}} {
		q0, q1 := q[0], q[1]
		if b.notOf[p0] == q0 && b.notOf[q1] == p1 {
			// (p0 & ~q1) | (~p0 & q1) = XOR(p0, q1)
			return b.mkXor(p0, q1), true
		}
		if b.notOf[p1] == q0 && b.notOf[q1] == p0 {
			return b.mkXor(p1, q1), true
		}
	}
	return 0, false
}

func (b *builder) mkXor(a, c int) int {
	switch {
	case a == c:
		return 0
	case b.isConst0(a):
		return c
	case b.isConst0(c):
		return a
	case b.isConst1(a):
		return b.mkNot(c)
	case b.isConst1(c):
		return b.mkNot(a)
	case b.notOf[a] == c:
		return b.const1()
	}
	// Push negations out: Xor(~a, c) = ~Xor(a, c); canonicalize so the
	// hash table sees one polarity.
	neg := false
	if n := b.notOf[a]; n >= 0 && n < a {
		a, neg = n, !neg
	}
	if n := b.notOf[c]; n >= 0 && n < c {
		c, neg = n, !neg
	}
	if x, ok := b.xorAbsorb(a, c); ok {
		if neg {
			return b.mkNot(x)
		}
		return x
	}
	id := b.raw(circuit.Xor, a, c)
	if neg {
		return b.mkNot(id)
	}
	return id
}

// xorAbsorb recognizes Xor(Xor(x, y), y) = x: XOR is its own inverse, so
// re-xoring one operand back in cancels it. The pattern arises in the
// conditional negate of |y - y'|, where each difference bit is xored with
// the sign twice (once directly, once through the increment's half adder).
func (b *builder) xorAbsorb(a, c int) (int, bool) {
	if n := &b.c.Nodes[a]; n.Kind == circuit.Xor {
		if n.Fanins[0] == c {
			return n.Fanins[1], true
		}
		if n.Fanins[1] == c {
			return n.Fanins[0], true
		}
	}
	if n := &b.c.Nodes[c]; n.Kind == circuit.Xor {
		if n.Fanins[0] == a {
			return n.Fanins[1], true
		}
		if n.Fanins[1] == a {
			return n.Fanins[0], true
		}
	}
	return 0, false
}

func (b *builder) mkMux(s, a, c int) int {
	switch {
	case b.isConst0(s):
		return a
	case b.isConst1(s):
		return c
	case a == c:
		return a
	case b.isConst0(a) && b.isConst1(c):
		return s
	case b.isConst1(a) && b.isConst0(c):
		return b.mkNot(s)
	case b.isConst0(a):
		return b.mkAnd(s, c)
	case b.isConst1(c):
		return b.mkOr(s, a)
	case b.isConst1(a):
		return b.mkOr(b.mkNot(s), c)
	case b.isConst0(c):
		return b.mkAnd(b.mkNot(s), a)
	case b.notOf[a] == c:
		return b.mkXor(s, a)
	}
	return b.raw(circuit.Mux, s, a, c)
}

func (b *builder) mkMaj(a, c, d int) int {
	switch {
	case a == c:
		return a
	case a == d:
		return a
	case c == d:
		return c
	case b.isConst0(a):
		return b.mkAnd(c, d)
	case b.isConst0(c):
		return b.mkAnd(a, d)
	case b.isConst0(d):
		return b.mkAnd(a, c)
	case b.isConst1(a):
		return b.mkOr(c, d)
	case b.isConst1(c):
		return b.mkOr(a, d)
	case b.isConst1(d):
		return b.mkOr(a, c)
	case b.notOf[a] == c:
		return d
	case b.notOf[a] == d:
		return c
	case b.notOf[c] == d:
		return a
	}
	return b.raw(circuit.Maj, a, c, d)
}

func (b *builder) mk(k circuit.Kind, fi []int) int {
	switch k {
	case circuit.Buf:
		return b.mkBuf(fi[0])
	case circuit.Not:
		return b.mkNot(fi[0])
	case circuit.And:
		return b.mkAnd(fi[0], fi[1])
	case circuit.Nand:
		return b.mkNot(b.mkAnd(fi[0], fi[1]))
	case circuit.Or:
		return b.mkOr(fi[0], fi[1])
	case circuit.Nor:
		return b.mkNot(b.mkOr(fi[0], fi[1]))
	case circuit.Xor:
		return b.mkXor(fi[0], fi[1])
	case circuit.Xnor:
		return b.mkNot(b.mkXor(fi[0], fi[1]))
	case circuit.Mux:
		return b.mkMux(fi[0], fi[1], fi[2])
	case circuit.Maj:
		return b.mkMaj(fi[0], fi[1], fi[2])
	default:
		panic("synth: mk on " + k.String())
	}
}

// Rebuild performs one simplify-and-hash pass over the circuit, returning
// a new circuit with identical primary-input/-output behaviour. Dangling
// logic is dropped (only the output cones are rebuilt, lazily through the
// topological walk plus a final cone extraction).
func Rebuild(c *circuit.Circuit) *circuit.Circuit {
	b := newBuilder(c.Name)
	old2new := make([]int, len(c.Nodes))
	old2new[0] = 0
	mark := c.ConeMark(c.Outputs...)
	// Inputs are preserved even outside the cone so input indexing stays
	// stable for callers.
	for _, id := range c.Inputs {
		old2new[id] = b.input(c.Nodes[id].Name)
	}
	var fi [3]int
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		args := fi[:len(nd.Fanins)]
		for j, f := range nd.Fanins {
			args[j] = old2new[f]
		}
		old2new[id] = b.mk(nd.Kind, args)
	}
	for i, o := range c.Outputs {
		b.c.AddOutput(old2new[o], c.OutputName(i))
	}
	return Sweep(b.c)
}

// Sweep removes logic that feeds no primary output. All primary inputs
// are kept (even unused ones) so input indexing stays stable.
func Sweep(c *circuit.Circuit) *circuit.Circuit {
	mark := c.ConeMark(c.Outputs...)
	nc := circuit.New(c.Name)
	old2new := make([]int, len(c.Nodes))
	for i := range old2new {
		old2new[i] = -1
	}
	old2new[0] = 0
	for _, id := range c.Inputs {
		old2new[id] = nc.AddInput(c.Nodes[id].Name)
	}
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		fi := make([]int, len(nd.Fanins))
		for j, f := range nd.Fanins {
			fi[j] = old2new[f]
		}
		old2new[id] = nc.AddGate(nd.Kind, fi...)
	}
	for i, o := range c.Outputs {
		nc.AddOutput(old2new[o], c.OutputName(i))
	}
	return nc
}

// Compress iterates Rebuild until the node count stops shrinking (at most
// maxRounds passes). It plays the role of ABC's compress2rs in the VACSEM
// flow: shrink each sub-miter before CNF conversion.
func Compress(c *circuit.Circuit) *circuit.Circuit {
	const maxRounds = 4
	cur := c
	best := cur.NumNodes()
	for round := 0; round < maxRounds; round++ {
		next := Rebuild(cur)
		if n := next.NumNodes(); n < best {
			best = n
			cur = next
			continue
		}
		if round == 0 {
			cur = next // always take at least one hashing pass
		}
		break
	}
	return cur
}

// ToAIG converts the circuit into an AND-inverter graph: only Input, And
// and Not nodes remain (the paper represents miters as AIGs). The
// conversion shares structure through the same hashing builder.
func ToAIG(c *circuit.Circuit) *circuit.Circuit {
	b := newBuilder(c.Name + "_aig")
	old2new := make([]int, len(c.Nodes))
	old2new[0] = 0
	mark := c.ConeMark(c.Outputs...)
	for _, id := range c.Inputs {
		old2new[id] = b.input(c.Nodes[id].Name)
	}
	and := b.mkAnd
	not := b.mkNot
	or := func(x, y int) int { return not(b.mkAnd(not(x), not(y))) }
	xor := func(x, y int) int { return or(and(x, not(y)), and(not(x), y)) }
	var fi [3]int
	for id := 1; id < len(c.Nodes); id++ {
		nd := &c.Nodes[id]
		if nd.Kind == circuit.Input || !mark[id] {
			continue
		}
		args := fi[:len(nd.Fanins)]
		for j, f := range nd.Fanins {
			args[j] = old2new[f]
		}
		var v int
		switch nd.Kind {
		case circuit.Buf:
			v = args[0]
		case circuit.Not:
			v = not(args[0])
		case circuit.And:
			v = and(args[0], args[1])
		case circuit.Nand:
			v = not(and(args[0], args[1]))
		case circuit.Or:
			v = or(args[0], args[1])
		case circuit.Nor:
			v = not(or(args[0], args[1]))
		case circuit.Xor:
			v = xor(args[0], args[1])
		case circuit.Xnor:
			v = not(xor(args[0], args[1]))
		case circuit.Mux:
			v = or(and(args[0], args[2]), and(not(args[0]), args[1]))
		case circuit.Maj:
			v = or(or(and(args[0], args[1]), and(args[0], args[2])), and(args[1], args[2]))
		default:
			panic("synth: ToAIG on " + nd.Kind.String())
		}
		old2new[id] = v
	}
	for i, o := range c.Outputs {
		b.c.AddOutput(old2new[o], c.OutputName(i))
	}
	return Sweep(b.c)
}

// AndCount returns the number of And nodes — the conventional AIG size
// metric used by the paper's Table III.
func AndCount(c *circuit.Circuit) int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Kind == circuit.And {
			n++
		}
	}
	return n
}
