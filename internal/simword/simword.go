// Package simword holds the pattern-word primitives shared by the
// word-parallel simulator and the #SAT counter's simulation hook: the
// canonical per-input simulation words for exhaustive enumeration and
// the tail mask of a partial block. Both packages used to carry private
// copies of these tables; keeping them here pins the two bit-exact.
package simword

// BasePatterns[i] is the canonical simulation word of input i for the 64
// patterns inside one block: bit p of BasePatterns[i] equals bit i of
// the pattern index p.
var BasePatterns = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// InputWord returns the simulation word of input i (0-based) for pattern
// block `block`, under exhaustive enumeration: pattern index p (global)
// has input i equal to bit i of p. Inputs 0-5 vary within a block;
// input i >= 6 is constant per block, equal to bit i-6 of the block
// index.
func InputWord(i int, block uint64) uint64 {
	if i < 6 {
		return BasePatterns[i]
	}
	if block>>(uint(i)-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}

// BlockMask returns the mask of valid pattern bits in block `block` when
// only `total` patterns exist overall (total > block*64).
func BlockMask(block, total uint64) uint64 {
	rem := total - block*64
	if rem >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << rem) - 1
}

// Input-variation classes over a run of batchWords consecutive blocks
// whose first block index is a multiple of batchWords. The enumeration
// kernel keys its fill strategy on them: EnumConstant inputs are
// written once per enumeration, BatchConstant inputs once per batch,
// and only PerWord inputs once per word.
type Variation int

const (
	// EnumConstant inputs (0-5) encode the pattern bits inside a block:
	// their words are the BasePatterns, identical in every block.
	EnumConstant Variation = iota
	// PerWord inputs encode the low bits of the block index, which
	// change from word to word inside a batch.
	PerWord
	// BatchConstant inputs encode block-index bits above the batch
	// width: constant across one aligned batch, varying between batches.
	BatchConstant
)

// Classify reports how input i's simulation word varies across an
// aligned batch of batchWords blocks (batchWords must be a power of
// two). Bit b of the block index selects input 6+b, so inputs up to
// 6+log2(batchWords) vary within a batch and everything above is
// constant across it.
func Classify(i, batchWords int) Variation {
	if i < 6 {
		return EnumConstant
	}
	shift := uint(i) - 6
	if uint64(batchWords)>>shift <= 1 {
		return BatchConstant
	}
	return PerWord
}
