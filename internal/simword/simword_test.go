package simword

import "testing"

// TestInputWordBitwise checks InputWord against the definition: bit p of
// input i's word for block b equals bit i of the global pattern index
// b*64+p.
func TestInputWordBitwise(t *testing.T) {
	blocks := []uint64{0, 1, 2, 3, 7, 63, 64, 1 << 20, (1 << 56) - 1}
	for i := 0; i < 62; i++ {
		for _, b := range blocks {
			w := InputWord(i, b)
			for p := uint64(0); p < 64; p += 7 {
				pattern := b*64 + p
				want := pattern >> uint(i) & 1
				got := w >> p & 1
				if got != want {
					t.Fatalf("InputWord(%d, %d) bit %d = %d, want %d", i, b, p, got, want)
				}
			}
		}
	}
}

// TestClassifyAgainstInputWord checks Classify against InputWord's
// ground truth: an input is batch-constant iff its word is identical
// across every aligned batch probed, and per-word otherwise.
func TestClassifyAgainstInputWord(t *testing.T) {
	for _, batchWords := range []int{1, 2, 4, 8, 16} {
		for i := 0; i < 40; i++ {
			got := Classify(i, batchWords)
			if i < 6 {
				if got != EnumConstant {
					t.Fatalf("Classify(%d, %d) = %v, want EnumConstant", i, batchWords, got)
				}
				continue
			}
			varies := false
			for _, b0 := range []uint64{0, uint64(batchWords), 1 << 20} {
				w0 := InputWord(i, b0)
				for j := 1; j < batchWords; j++ {
					if InputWord(i, b0+uint64(j)) != w0 {
						varies = true
					}
				}
			}
			want := BatchConstant
			if varies {
				want = PerWord
			}
			if got != want {
				t.Fatalf("Classify(%d, %d) = %v, want %v", i, batchWords, got, want)
			}
		}
	}
}

func TestBlockMask(t *testing.T) {
	cases := []struct {
		block, total, want uint64
	}{
		{0, 64, ^uint64(0)},
		{0, 1, 1},
		{0, 63, (1 << 63) - 1},
		{1, 128, ^uint64(0)},
		{1, 65, 1},
		{2, 190, (1 << 62) - 1},
	}
	for _, c := range cases {
		if got := BlockMask(c.block, c.total); got != c.want {
			t.Errorf("BlockMask(%d, %d) = %#x, want %#x", c.block, c.total, got, c.want)
		}
	}
}
