package simword

import "testing"

// TestInputWordBitwise checks InputWord against the definition: bit p of
// input i's word for block b equals bit i of the global pattern index
// b*64+p.
func TestInputWordBitwise(t *testing.T) {
	blocks := []uint64{0, 1, 2, 3, 7, 63, 64, 1 << 20, (1 << 56) - 1}
	for i := 0; i < 62; i++ {
		for _, b := range blocks {
			w := InputWord(i, b)
			for p := uint64(0); p < 64; p += 7 {
				pattern := b*64 + p
				want := pattern >> uint(i) & 1
				got := w >> p & 1
				if got != want {
					t.Fatalf("InputWord(%d, %d) bit %d = %d, want %d", i, b, p, got, want)
				}
			}
		}
	}
}

func TestBlockMask(t *testing.T) {
	cases := []struct {
		block, total, want uint64
	}{
		{0, 64, ^uint64(0)},
		{0, 1, 1},
		{0, 63, (1 << 63) - 1},
		{1, 128, ^uint64(0)},
		{1, 65, 1},
		{2, 190, (1 << 62) - 1},
	}
	for _, c := range cases {
		if got := BlockMask(c.block, c.total); got != c.want {
			t.Errorf("BlockMask(%d, %d) = %#x, want %#x", c.block, c.total, got, c.want)
		}
	}
}
