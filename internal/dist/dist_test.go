package dist

import (
	"math/big"
	"testing"

	"vacsem/internal/als"
	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/gen"
)

func TestBiasValidate(t *testing.T) {
	if err := (Bias{Num: 3, Bits: 2}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Bias{Num: 5, Bits: 2}).Validate(); err == nil {
		t.Error("over-1 bias accepted")
	}
	if err := (Bias{Num: 1, Bits: 0}).Validate(); err == nil {
		t.Error("zero-bit bias accepted")
	}
	if err := (Bias{Num: 1, Bits: 31}).Validate(); err == nil {
		t.Error("huge bias accepted")
	}
}

func TestBiasProb(t *testing.T) {
	p := Bias{Num: 3, Bits: 3}.Prob()
	if p.Cmp(big.NewRat(3, 8)) != 0 {
		t.Errorf("Prob = %v, want 3/8", p)
	}
}

func TestApplyBiasSignalProbability(t *testing.T) {
	// One input, bias 3/8: P(output=1) must be exactly 3/8.
	c := circuit.New("wire")
	a := c.AddInput("a")
	c.AddOutput(a, "y")
	bc, err := ApplyBias(c, []Bias{{Num: 3, Bits: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if bc.NumInputs() != 3 {
		t.Fatalf("biased circuit has %d inputs, want 3", bc.NumInputs())
	}
	ones := 0
	for x := uint64(0); x < 8; x++ {
		if bc.EvalUint(x) == 1 {
			ones++
		}
	}
	if ones != 3 {
		t.Errorf("biased wire is 1 on %d/8 patterns, want 3", ones)
	}
}

func TestApplyBiasUniformPassThrough(t *testing.T) {
	c := gen.RippleCarryAdder(3)
	biases := make([]Bias, c.NumInputs())
	for i := range biases {
		biases[i] = Uniform()
	}
	bc, err := ApplyBias(c, biases)
	if err != nil {
		t.Fatal(err)
	}
	if bc.NumInputs() != c.NumInputs() {
		t.Fatalf("uniform biases changed input count: %d", bc.NumInputs())
	}
	for x := uint64(0); x < 64; x++ {
		if bc.EvalUint(x) != c.EvalUint(x) {
			t.Fatalf("uniform pass-through changed function at %d", x)
		}
	}
}

// TestBiasedERMatchesDirectComputation: biased ER of an AND gate whose
// approximation is constant 0. Error occurs iff a&b=1, so biased ER =
// p_a * p_b exactly.
func TestBiasedERMatchesDirectComputation(t *testing.T) {
	exact := circuit.New("and")
	a := exact.AddInput("a")
	b := exact.AddInput("b")
	exact.AddOutput(exact.AddGate(circuit.And, a, b), "y")
	approx := circuit.New("zero")
	approx.AddInput("a")
	approx.AddInput("b")
	approx.AddOutput(0, "y")

	biases := []Bias{{Num: 3, Bits: 2}, {Num: 1, Bits: 3}} // 3/4 and 1/8
	want := new(big.Rat).Mul(big.NewRat(3, 4), big.NewRat(1, 8))
	for _, m := range []core.Method{core.MethodVACSEM, core.MethodDPLL, core.MethodEnum} {
		r, err := VerifyERBiased(exact, approx, biases, core.Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Value.Cmp(want) != 0 {
			t.Errorf("%v: biased ER = %v, want %v", m, r.Value, want)
		}
	}
}

func TestBiasedMED(t *testing.T) {
	// Identity vs constant-0 on one input with bias 5/8: MED = E[x] = 5/8.
	exact := circuit.New("id")
	a := exact.AddInput("a")
	exact.AddOutput(a, "y")
	approx := circuit.New("zero")
	approx.AddInput("a")
	approx.AddOutput(0, "y")
	r, err := VerifyMEDBiased(exact, approx, []Bias{{Num: 5, Bits: 3}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.Cmp(big.NewRat(5, 8)) != 0 {
		t.Errorf("biased MED = %v, want 5/8", r.Value)
	}
}

func TestApplyBiasErrors(t *testing.T) {
	c := gen.RippleCarryAdder(2)
	if _, err := ApplyBias(c, []Bias{{Num: 1, Bits: 1}}); err == nil {
		t.Error("bias count mismatch accepted")
	}
	bad := make([]Bias, c.NumInputs())
	for i := range bad {
		bad[i] = Bias{Num: 9, Bits: 2}
	}
	if _, err := ApplyBias(c, bad); err == nil {
		t.Error("invalid bias accepted")
	}
}

// TestConditionalER: adder vs LOA conditioned on "low bits of both
// operands are zero" — under that condition the LOA is exact, so the
// conditional ER must be 0 while the unconditional ER is positive.
func TestConditionalER(t *testing.T) {
	n, k := 4, 2
	exact := gen.RippleCarryAdder(n)
	approx := als.LowerORAdder(n, k)

	cond := circuit.New("lowzero")
	ins := make([]int, 2*n)
	for i := range ins {
		ins[i] = cond.AddInput("")
	}
	// a0=a1=b0=b1=0
	acc := cond.Const1()
	for _, i := range []int{0, 1, n, n + 1} {
		acc = cond.AddGate(circuit.And, acc, cond.AddGate(circuit.Not, ins[i]))
	}
	cond.AddOutput(acc, "c")

	uncond, err := core.VerifyER(exact, approx, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if uncond.Value.Sign() == 0 {
		t.Fatal("unconditional ER unexpectedly 0")
	}
	r, err := VerifyERConditional(exact, approx, cond, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.Sign() != 0 {
		t.Errorf("conditional ER = %v, want 0", r.Value)
	}
}

// TestConditionalMEDMatchesBrute cross-checks the conditional MED
// against per-pattern brute force on a small circuit.
func TestConditionalMEDMatchesBrute(t *testing.T) {
	n := 3
	exact := gen.RippleCarryAdder(n)
	approx := als.TruncatedAdder(n, 1)

	// Condition: a != 0.
	cond := circuit.New("anonzero")
	ins := make([]int, 2*n)
	for i := range ins {
		ins[i] = cond.AddInput("")
	}
	or := ins[0]
	for i := 1; i < n; i++ {
		or = cond.AddGate(circuit.Or, or, ins[i])
	}
	cond.AddOutput(or, "c")

	// Brute force.
	var sum, cnt int64
	for x := uint64(0); x < 1<<uint(2*n); x++ {
		a := x & 7
		b := x >> 3
		if a == 0 {
			continue
		}
		cnt++
		ex := a + b
		ap := ((a >> 1) + (b >> 1)) << 1
		d := int64(ex) - int64(ap)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	want := new(big.Rat).SetFrac64(sum, cnt)

	r, err := VerifyMEDConditional(exact, approx, cond, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value.Cmp(want) != 0 {
		t.Errorf("conditional MED = %v, want %v", r.Value, want)
	}
}

func TestConditionalUnsatisfiable(t *testing.T) {
	exact := gen.RippleCarryAdder(2)
	approx := als.TruncatedAdder(2, 1)
	cond := circuit.New("never")
	for i := 0; i < 4; i++ {
		cond.AddInput("")
	}
	cond.AddOutput(0, "c") // const0
	if _, err := VerifyERConditional(exact, approx, cond, core.Options{}); err == nil {
		t.Error("unsatisfiable condition accepted")
	}
}

func TestConditionalInterfaceChecks(t *testing.T) {
	exact := gen.RippleCarryAdder(2)
	approx := als.TruncatedAdder(2, 1)
	cond := circuit.New("short")
	cond.AddInput("")
	cond.AddOutput(0, "c")
	if _, err := VerifyERConditional(exact, approx, cond, core.Options{}); err == nil {
		t.Error("input-count mismatch accepted")
	}
	cond2 := circuit.New("multi")
	for i := 0; i < 4; i++ {
		cond2.AddInput("")
	}
	cond2.AddOutput(0, "a")
	cond2.AddOutput(0, "b")
	if _, err := VerifyERConditional(exact, approx, cond2, core.Options{}); err == nil {
		t.Error("multi-output condition accepted")
	}
}
