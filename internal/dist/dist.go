// Package dist extends VACSEM beyond the paper's uniform-input
// assumption — the extension the paper lists as future work ("expand
// VACSEM's capabilities to accommodate non-uniform input distributions").
//
// Two mechanisms are provided, both reductions to the existing uniform
// counting engine, so every engine (VACSEM, DPLL, enumeration) and every
// metric keeps working unchanged:
//
//   - Biased inputs with dyadic probabilities k/2^m: each primary input
//     is re-expressed as a comparator over m fresh uniform inputs
//     ("rand < k"), which has probability exactly k/2^m of being 1.
//     Metrics over the transformed circuit equal weighted metrics over
//     the original inputs.
//
//   - Conditional metrics: metrics restricted to input patterns
//     satisfying a user-supplied condition circuit (an input-space
//     constraint such as "operands are never both zero"). Implemented as
//     the ratio of two counts: E[F | cond] = Σ w_j·#SAT(f_j ∧ cond) /
//     #SAT(cond).
package dist

import (
	"fmt"
	"math/big"

	"vacsem/internal/circuit"
	"vacsem/internal/core"
	"vacsem/internal/miter"
)

// Bias is a dyadic probability Num/2^Bits with 0 <= Num <= 2^Bits.
type Bias struct {
	Num  uint64
	Bits int
}

// Uniform is the 1/2 bias (one fresh input, threshold 1).
func Uniform() Bias { return Bias{Num: 1, Bits: 1} }

// Validate checks the bias is well-formed.
func (b Bias) Validate() error {
	if b.Bits < 1 || b.Bits > 30 {
		return fmt.Errorf("dist: bias denominator 2^%d out of range [2^1, 2^30]", b.Bits)
	}
	if b.Num > 1<<uint(b.Bits) {
		return fmt.Errorf("dist: bias %d/2^%d exceeds 1", b.Num, b.Bits)
	}
	return nil
}

// Prob returns the bias as an exact rational.
func (b Bias) Prob() *big.Rat {
	return new(big.Rat).SetFrac(
		new(big.Int).SetUint64(b.Num),
		new(big.Int).Lsh(big.NewInt(1), uint(b.Bits)))
}

// ApplyBias rewrites the circuit so input i, instead of being a uniform
// primary input, is driven by a comparator "rand_i < biases[i].Num" over
// biases[i].Bits fresh uniform inputs. The returned circuit computes the
// same outputs; uniform metrics over it equal biased metrics over the
// original. Inputs with the Uniform bias are passed through untouched.
func ApplyBias(c *circuit.Circuit, biases []Bias) (*circuit.Circuit, error) {
	if len(biases) != c.NumInputs() {
		return nil, fmt.Errorf("dist: %d biases for %d inputs", len(biases), c.NumInputs())
	}
	for i, b := range biases {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("input %d: %w", i, err)
		}
	}
	nc := circuit.New(c.Name + "_biased")
	drivers := make([]int, c.NumInputs())
	for i := range biases {
		b := biases[i]
		if b.Num == 1 && b.Bits == 1 {
			drivers[i] = nc.AddInput(c.Nodes[c.Inputs[i]].Name)
			continue
		}
		fresh := make([]int, b.Bits)
		for j := range fresh {
			fresh[j] = nc.AddInput(fmt.Sprintf("b%d_%d", i, j))
		}
		drivers[i] = ltConst(nc, fresh, b.Num)
	}
	outs := circuit.Append(nc, c, drivers)
	for j, o := range outs {
		nc.AddOutput(o, c.OutputName(j))
	}
	return nc, nil
}

// ltConst builds "value(bits) < k" (bits LSB-first), scanning MSB->LSB.
func ltConst(c *circuit.Circuit, bits []int, k uint64) int {
	if k >= 1<<uint(len(bits)) {
		return c.Const1()
	}
	lt := 0 // const0
	eq := c.Const1()
	for j := len(bits) - 1; j >= 0; j-- {
		kj := k>>uint(j)&1 == 1
		if kj {
			// bit 0 while k-bit 1 => less at this position
			nb := c.AddGate(circuit.Not, bits[j])
			lt = c.AddGate(circuit.Or, lt, c.AddGate(circuit.And, eq, nb))
			eq = c.AddGate(circuit.And, eq, bits[j])
		} else {
			// k-bit 0: can only stay equal when bit 0
			nb := c.AddGate(circuit.Not, bits[j])
			eq = c.AddGate(circuit.And, eq, nb)
		}
	}
	return lt
}

// VerifyERBiased verifies the error rate when input i is 1 with
// probability biases[i] (independent inputs, dyadic probabilities).
func VerifyERBiased(exact, approx *circuit.Circuit, biases []Bias, opt core.Options) (*core.Result, error) {
	be, err := ApplyBias(exact, biases)
	if err != nil {
		return nil, err
	}
	ba, err := ApplyBias(approx, biases)
	if err != nil {
		return nil, err
	}
	r, err := core.VerifyER(be, ba, opt)
	if err != nil {
		return nil, err
	}
	r.Metric = "ER(biased)"
	return r, nil
}

// VerifyMEDBiased verifies the mean error distance under biased inputs.
func VerifyMEDBiased(exact, approx *circuit.Circuit, biases []Bias, opt core.Options) (*core.Result, error) {
	be, err := ApplyBias(exact, biases)
	if err != nil {
		return nil, err
	}
	ba, err := ApplyBias(approx, biases)
	if err != nil {
		return nil, err
	}
	r, err := core.VerifyMED(be, ba, opt)
	if err != nil {
		return nil, err
	}
	r.Metric = "MED(biased)"
	return r, nil
}

// VerifyERConditional verifies ER restricted to the input patterns on
// which cond (a single-output circuit over the same inputs) is 1:
// ER | cond = #SAT(er-miter ∧ cond) / #SAT(cond). It returns an error
// when the condition is unsatisfiable.
func VerifyERConditional(exact, approx, cond *circuit.Circuit, opt core.Options) (*core.Result, error) {
	m, err := miter.ER(exact, approx)
	if err != nil {
		return nil, err
	}
	return conditional("ER|cond", m, []*big.Int{big.NewInt(1)}, cond, opt)
}

// VerifyMEDConditional verifies MED restricted to patterns with cond=1.
func VerifyMEDConditional(exact, approx, cond *circuit.Circuit, opt core.Options) (*core.Result, error) {
	m, err := miter.MED(exact, approx)
	if err != nil {
		return nil, err
	}
	w := make([]*big.Int, m.NumOutputs())
	for j := range w {
		w[j] = new(big.Int).Lsh(big.NewInt(1), uint(j))
	}
	return conditional("MED|cond", m, w, cond, opt)
}

// conditional computes sum_j w_j*#SAT(f_j & cond) / #SAT(cond).
func conditional(name string, m *circuit.Circuit, weights []*big.Int, cond *circuit.Circuit, opt core.Options) (*core.Result, error) {
	if cond.NumInputs() != m.NumInputs() {
		return nil, fmt.Errorf("dist: condition has %d inputs, circuits have %d",
			cond.NumInputs(), m.NumInputs())
	}
	if cond.NumOutputs() != 1 {
		return nil, fmt.Errorf("dist: condition must have exactly one output")
	}
	// Constrained miter: each output AND-ed with cond.
	cm := circuit.New(m.Name + "_cond")
	ins := make([]int, m.NumInputs())
	for i := range ins {
		ins[i] = cm.AddInput(m.Nodes[m.Inputs[i]].Name)
	}
	mouts := circuit.Append(cm, m, ins)
	couts := circuit.Append(cm, cond, ins)
	for j, o := range mouts {
		cm.AddOutput(cm.AddGate(circuit.And, o, couts[0]), m.OutputName(j))
	}
	num, err := core.VerifyMiter(name, cm, weights, opt)
	if err != nil {
		return nil, err
	}
	// Denominator: #SAT(cond) / 2^I as a probability.
	condM := circuit.New(cond.Name + "_only")
	ins2 := make([]int, cond.NumInputs())
	for i := range ins2 {
		ins2[i] = condM.AddInput("")
	}
	condOuts := circuit.Append(condM, cond, ins2)
	condM.AddOutput(condOuts[0], "cond")
	den, err := core.VerifyMiter("cond", condM, []*big.Int{big.NewInt(1)}, opt)
	if err != nil {
		return nil, err
	}
	if den.Value.Sign() == 0 {
		return nil, fmt.Errorf("dist: condition is unsatisfiable")
	}
	num.Metric = name
	num.Value = new(big.Rat).Quo(num.Value, den.Value)
	return num, nil
}
