package counter

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"vacsem/internal/cnf"
	"vacsem/internal/obs"
)

// (ε, δ) approximate model counting by XOR streamlining + cell counting
// (the ApproxMC algorithm family): random parity constraints over a
// sampling set partition the solution space into hash cells, a cell
// small enough to count exactly is counted with the Gauss-aware exact
// engine, and the cell count scaled by the number of cells estimates the
// total. The median over independent rounds gives
//
//	Pr[ count/(1+ε) <= estimate <= (1+ε)*count ] >= 1-δ.
//
// The hash rows of one round satisfy the prefix property — row i is
// sampled once and the round uses its first m rows — so the cell count
// is monotone nonincreasing in m and the search for the right cell
// granularity can proceed by binary search.

var (
	mApproxRounds = obs.Default.Counter("counter.approx_rounds")
	mApproxProbes = obs.Default.Counter("counter.approx_probes")
)

// ApproxConfig tunes ApproxCount. The zero value uses the ApproxMC
// defaults ε=0.8, δ=0.2 over all formula variables.
type ApproxConfig struct {
	// Epsilon is the multiplicative tolerance (0 means 0.8).
	Epsilon float64
	// Delta is the failure probability (0 means 0.2).
	Delta float64
	// Seed makes the XOR sampling deterministic; runs with the same
	// seed, formula, and parameters return the same estimate.
	Seed int64
	// Rounds overrides the δ-derived round count when positive (tests
	// use 1-3 rounds to stay fast; the guarantee then no longer follows
	// from Delta).
	Rounds int
	// Sampling is the hash support: the variables the random parity
	// rows range over. It must be an independent support of the formula
	// (every model is uniquely determined by its projection onto the
	// set), e.g. the encoded primary inputs of a Tseitin formula. Nil
	// means all variables, which is always sound.
	Sampling []int32
	// Solver configures the exact engine used for cell counting. A nil
	// Solver.Cache is replaced by one private cache shared across all
	// probes of the call (content keys make that sound).
	Solver Config
}

// ApproxResult is the outcome of one ApproxCount call.
type ApproxResult struct {
	// Count estimates the number of models.
	Count *big.Int
	// Epsilon and Delta echo the effective tolerance parameters.
	Epsilon, Delta float64
	// Exact reports that the formula (or some hash cell at zero rows)
	// was counted exactly: the estimate carries no hashing error.
	Exact bool
	// Rounds is the number of estimation rounds performed.
	Rounds int
	// Pivot is the cell-size threshold ⌈9.84(1+ε/(1+ε))(1+1/ε)²⌉.
	Pivot int64
	// Stats aggregates the exact-engine work across all probes.
	Stats Stats
}

// ApproxPivot returns the ApproxMC cell-size threshold for ε.
func ApproxPivot(epsilon float64) int64 {
	return int64(math.Ceil(9.84 * (1 + epsilon/(1+epsilon)) * (1 + 1/epsilon) * (1 + 1/epsilon)))
}

// ApproxRounds returns the δ-derived number of estimation rounds: the
// smallest odd t such that the median over t rounds — each of which
// lands outside the (1+ε) band with probability at most 0.36, the
// ApproxMC per-round bound at this pivot — fails with probability at
// most δ. The failure probability is the exact binomial tail
// P[Bin(t, 0.36) >= (t+1)/2], which is far tighter than the classical
// ⌈17·log2(3/δ)⌉ schedule (9 rounds instead of 67 at δ=0.2, 33 instead
// of 101 at δ=0.05).
func ApproxRounds(delta float64) int {
	for t := 1; ; t += 2 {
		if binomialTail(t, 0.36, (t+1)/2) <= delta || t >= 1001 {
			return t
		}
	}
}

// binomialTail returns P[Bin(n, p) >= k].
func binomialTail(n int, p float64, k int) float64 {
	// Walk the pmf from term k upward; n stays small (hundreds).
	logC := 0.0
	for i := 0; i < k; i++ {
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	tail := 0.0
	lp, lq := math.Log(p), math.Log(1-p)
	for i := k; i <= n; i++ {
		tail += math.Exp(logC + float64(i)*lp + float64(n-i)*lq)
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	return tail
}

// ApproxCount estimates the model count of f within multiplicative
// tolerance (1+ε) with confidence 1-δ. Formulas whose count does not
// exceed the pivot are counted exactly (Exact is set and the guarantee
// is vacuous). The context cancels the underlying exact counts.
func ApproxCount(ctx context.Context, f *cnf.Formula, cfg ApproxConfig) (*ApproxResult, error) {
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.8
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.2
	}
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("counter: approx needs epsilon > 0 and 0 < delta < 1, got %g/%g", eps, delta)
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = ApproxRounds(delta)
	}
	pivot := ApproxPivot(eps)
	res := &ApproxResult{Epsilon: eps, Delta: delta, Pivot: pivot}

	sampling := cfg.Sampling
	if sampling == nil {
		sampling = make([]int32, f.NumVars)
		for i := range sampling {
			sampling[i] = int32(i + 1)
		}
	} else {
		// Hash rows list their variables in sampling order; keep the
		// canonical (sorted) row invariant regardless of caller order.
		sampling = append([]int32(nil), sampling...)
		sort.Slice(sampling, func(i, j int) bool { return sampling[i] < sampling[j] })
	}
	solverCfg := cfg.Solver
	if solverCfg.Cache == nil && !solverCfg.DisableCache {
		// One content-keyed cache shared by every probe: residual
		// components that do not touch a hash row recur across cells.
		maxEntries := solverCfg.MaxCacheEntries
		if maxEntries == 0 {
			maxEntries = defaultMaxCacheEntries
		}
		solverCfg.Cache = NewCache(maxEntries, 0)
	}
	bigPivot := big.NewInt(pivot)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// count returns the exact model count of f streamlined with the
	// given hash rows, accumulating engine stats into the result.
	count := func(rows []cnf.XorClause) (*big.Int, error) {
		mApproxProbes.Inc()
		g := *f
		g.Xors = make([]cnf.XorClause, 0, len(f.Xors)+len(rows))
		g.Xors = append(g.Xors, f.Xors...)
		g.Xors = append(g.Xors, rows...)
		g.GateOfXor = make([]int32, len(f.GateOfXor), len(f.GateOfXor)+len(rows))
		copy(g.GateOfXor, f.GateOfXor)
		for range rows {
			g.GateOfXor = append(g.GateOfXor, -1)
		}
		s := New(&g, solverCfg)
		c, err := s.CountCtx(ctx)
		res.Stats.Add(s.Stats())
		return c, err
	}

	n := len(sampling)
	if n == 0 {
		c, err := count(nil)
		if err != nil {
			return nil, err
		}
		res.Count, res.Exact, res.Rounds = c, true, 0
		return res, nil
	}

	var estimates []*big.Int
	prevM := -1 // boundary of the previous round, -1 = none yet
	for r := 0; r < rounds; r++ {
		mApproxRounds.Inc()
		// Sample the round's n hash rows once (prefix property).
		rows := make([]cnf.XorClause, n)
		for i := range rows {
			var vars []int32
			for _, v := range sampling {
				if rng.Intn(2) == 1 {
					vars = append(vars, v)
				}
			}
			rows[i] = cnf.XorClause{Vars: vars, Rhs: rng.Intn(2) == 1}
		}
		// Smallest m with cellCount(m) <= pivot; counts are monotone
		// nonincreasing in m, so binary search is valid. Probe results
		// are memoized — the boundary probe is reused for the estimate.
		probes := make(map[int]*big.Int)
		cellAt := func(m int) (*big.Int, error) {
			if c, ok := probes[m]; ok {
				return c, nil
			}
			c, err := count(rows[:m])
			if err != nil {
				return nil, err
			}
			probes[m] = c
			return c, nil
		}
		lo, hi := 0, n
		// The boundary rarely moves between rounds: probe the previous
		// round's m and its neighbour first, which usually settles the
		// search in two cheap small-cell probes and — crucially — skips
		// the expensive low-m probes (few hash rows, huge cells) that a
		// fresh bisection would revisit every round.
		if prevM > 0 && prevM <= n {
			c, err := cellAt(prevM)
			if err != nil {
				return nil, err
			}
			if c.Cmp(bigPivot) <= 0 {
				hi = prevM
				if c, err = cellAt(prevM - 1); err != nil {
					return nil, err
				}
				if c.Cmp(bigPivot) > 0 {
					lo = prevM
				} else {
					hi = prevM - 1
				}
			} else {
				lo = prevM + 1
				if lo <= n {
					if c, err = cellAt(lo); err != nil {
						return nil, err
					}
					if c.Cmp(bigPivot) <= 0 {
						hi = lo
					}
				}
			}
		}
		for lo < hi {
			mid := (lo + hi) / 2
			c, err := cellAt(mid)
			if err != nil {
				return nil, err
			}
			if c.Cmp(bigPivot) <= 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		m := lo
		prevM = m
		c, err := cellAt(m)
		if err != nil {
			return nil, err
		}
		if m == 0 {
			// The whole formula fits under the pivot: exact, no median
			// needed.
			res.Count, res.Exact, res.Rounds = c, true, r+1
			return res, nil
		}
		estimates = append(estimates, new(big.Int).Lsh(c, uint(m)))
	}
	sort.Slice(estimates, func(i, j int) bool { return estimates[i].Cmp(estimates[j]) < 0 })
	res.Count = estimates[len(estimates)/2]
	res.Rounds = rounds
	return res, nil
}
