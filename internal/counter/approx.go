package counter

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"vacsem/internal/cnf"
	"vacsem/internal/obs"
)

// (ε, δ) approximate model counting by XOR streamlining + cell counting
// (the ApproxMC algorithm family): random parity constraints over a
// sampling set partition the solution space into hash cells, a cell
// small enough to count exactly is counted with the Gauss-aware exact
// engine, and the cell count scaled by the number of cells estimates the
// total. The median over independent rounds gives
//
//	Pr[ count/(1+ε) <= estimate <= (1+ε)*count ] >= 1-δ.
//
// The hash rows of one round satisfy the prefix property — row i is
// sampled once and the round uses its first m rows — so the cell count
// is monotone nonincreasing in m and the search for the right cell
// granularity can proceed by binary search.
//
// Three scaling mechanisms sit on top of the base scheme:
//
//  1. Sparse hash rows. Instead of including every sampling variable
//     with probability 1/2, row i draws each variable with a density
//     d_i scheduled by the row's position: early rows (few cells, the
//     whole space) stay dense, later rows — the ones a large count
//     actually activates — decay toward a (log2 n + 4)/n floor. Sparse
//     rows keep Gauss–Jordan and watched-XOR propagation cheap and,
//     crucially, stop the hash from fusing the residual formula into
//     one giant component, so component decomposition and caching keep
//     working as m grows (the sparse-hash refinements of the ApproxMC
//     line are the template).
//  2. Independent-support minimization (support.go): the sampling set
//     is shrunk below the primary inputs before any probe runs, so the
//     hash width — and with it every probe — gets cheaper.
//  3. Budgeted probe schedules: hash rows are a pure function of
//     (seed, round, row, support rank), so probe outcomes are
//     content-addressable and a shared ProbeCache reuses them across
//     rounds and across structurally identical tasks; rounds stop as
//     soon as the median is pinned; and a deadline mid-descent returns
//     a best-effort estimate over the completed rounds with an honestly
//     widened δ instead of a timeout.
var (
	mApproxRounds  = obs.Default.Counter("counter.approx_rounds")
	mApproxProbes  = obs.Default.Counter("counter.approx_probes")
	hRowDensity    = obs.Default.Histogram("approx.hash_row_density", []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5})
	hSupportBefore = obs.Default.Histogram("approx.support_before", nil)
	hSupportAfter  = obs.Default.Histogram("approx.support_after", nil)
)

// ApproxConfig tunes ApproxCount. The zero value uses the ApproxMC
// defaults ε=0.8, δ=0.2 over all formula variables with the sparse
// density schedule and support minimization enabled.
type ApproxConfig struct {
	// Epsilon is the multiplicative tolerance (0 means 0.8).
	Epsilon float64
	// Delta is the failure probability (0 means 0.2).
	Delta float64
	// Seed makes the XOR sampling deterministic; runs with the same
	// seed, formula, and parameters return the same estimate. Rows are a
	// pure function of (Seed, round, row index, support rank), so two
	// calls on content-identical formulas with one seed draw identical
	// rows — the property the probe cache builds on.
	Seed int64
	// Rounds overrides the δ-derived round count when positive (tests
	// use 1-5 rounds to stay fast; the guarantee then no longer follows
	// from Delta).
	Rounds int
	// Sampling is the hash support: the variables the random parity
	// rows range over. It must be an independent support of the formula
	// (every model is uniquely determined by its projection onto the
	// set), e.g. the encoded primary inputs of a Tseitin formula. Nil
	// means all variables, which is always sound.
	Sampling []int32
	// HashDensity fixes the probability with which a hash row includes
	// each sampling variable. 0 means the automatic sparse schedule
	// (dense first rows decaying to a (log2 n + 4)/n floor); 0.5 is the
	// classical dense family. Values are clamped to (0, 0.5].
	HashDensity float64
	// NoSupportMin skips independent-support minimization (ablation, or
	// callers that already minimized).
	NoSupportMin bool
	// Bisect restores the pre-scaling boundary search: a fresh bisection
	// over [0, n] every round instead of the walk from the previous
	// round's boundary. Ablation only — the bisection probes low-m cells
	// holding a large fraction of all models, which is exactly the cost
	// the walk exists to avoid; estimates are identical either way.
	Bisect bool
	// Probes, when non-nil, memoizes probe outcomes across ApproxCount
	// calls (the engine shares one per session, so structurally
	// identical tasks solve each probe once). Estimates are identical
	// with or without it.
	Probes *ProbeCache
	// Solver configures the exact engine used for cell counting. A nil
	// Solver.Cache is replaced by one private cache shared across all
	// probes of the call (content keys make that sound).
	Solver Config
}

// ApproxResult is the outcome of one ApproxCount call.
type ApproxResult struct {
	// Count estimates the number of models.
	Count *big.Int
	// Epsilon and Delta echo the effective tolerance parameters. When
	// BestEffort is set, Delta is the widened failure probability over
	// the rounds that completed before the deadline.
	Epsilon, Delta float64
	// Exact reports that the formula (or some hash cell at zero rows)
	// was counted exactly: the estimate carries no hashing error.
	Exact bool
	// BestEffort reports that the context deadline expired mid-run and
	// Count is the median over the completed rounds only: the (1+ε)
	// band is unchanged but holds with the widened Delta.
	BestEffort bool
	// Rounds is the number of estimation rounds performed.
	Rounds int
	// Pivot is the cell-size threshold ⌈9.84(1+ε/(1+ε))(1+1/ε)²⌉.
	Pivot int64
	// SupportBefore and SupportAfter are the sampling-set sizes around
	// independent-support minimization (equal when it was skipped or
	// found nothing to drop).
	SupportBefore, SupportAfter int
	// HashDensity is the mean row density of the hash family used.
	HashDensity float64
	// Stats aggregates the exact-engine work across all probes.
	Stats Stats
}

// ApproxPivot returns the ApproxMC cell-size threshold for ε.
func ApproxPivot(epsilon float64) int64 {
	return int64(math.Ceil(9.84 * (1 + epsilon/(1+epsilon)) * (1 + 1/epsilon) * (1 + 1/epsilon)))
}

// ApproxRounds returns the δ-derived number of estimation rounds: the
// smallest odd t such that the median over t rounds — each of which
// lands outside the (1+ε) band with probability at most 0.36, the
// ApproxMC per-round bound at this pivot — fails with probability at
// most δ. The failure probability is the exact binomial tail
// P[Bin(t, 0.36) >= (t+1)/2], which is far tighter than the classical
// ⌈17·log2(3/δ)⌉ schedule (9 rounds instead of 67 at δ=0.2, 33 instead
// of 101 at δ=0.05).
func ApproxRounds(delta float64) int {
	for t := 1; ; t += 2 {
		if binomialTail(t, 0.36, (t+1)/2) <= delta || t >= 1001 {
			return t
		}
	}
}

// binomialTail returns P[Bin(n, p) >= k]. The sum is anchored at its
// largest term in log space — every later term accumulates as a ratio
// to it — so tiny tails come out exact instead of saturating on
// per-term exp underflow (δ ≤ 1e-6 schedules need tails down to the
// underflow boundary as t grows).
func binomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	lp, lq := math.Log(p), math.Log1p(-p)
	logC := 0.0 // log C(n, k)
	for i := 0; i < k; i++ {
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	logAnchor := logC + float64(k)*lp + float64(n-k)*lq
	// Accumulate terms relative to the anchor; for the median schedules
	// (k above the mode) the anchor is the maximum and every ratio < 1,
	// so the relative sum neither over- nor underflows.
	sum, rel := 0.0, 1.0
	for i := k; i <= n; i++ {
		sum += rel
		rel *= float64(n-i) / float64(i+1) * (p / (1 - p))
	}
	return math.Exp(logAnchor + math.Log(sum))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rowHash draws a uniform 64-bit value for one (seed, round, row, slot)
// coordinate. It is a pure function of its arguments — no sequential
// generator state — so hash rows are identical wherever the same
// coordinates recur: across rounds, worker schedules, and content-
// identical tasks of one session.
func rowHash(seed uint64, round, row, slot int) uint64 {
	z := mix64(seed ^ 0xa0761d6478bd642f)
	z = mix64(z ^ (uint64(round)+1)*0x9e3779b97f4a7c15)
	z = mix64(z ^ (uint64(row)+1)*0xd1342543de82ef95)
	return mix64(z ^ (uint64(slot)+1)*0x2545f4914f6cdd1d)
}

// rowDensity returns the variable-inclusion probability of hash row i
// over an n-variable support. fixed > 0 pins every row to that density
// (0.5 = the classical dense family); otherwise the automatic schedule
// starts dense — the first rows cut the whole space and need full
// mixing — and decays geometrically to a floor that keeps the expected
// row width at log2(n)+4 variables, the sparse-hash regime in which
// per-cell concentration still holds with the pivot's slack.
func rowDensity(fixed float64, i, n int) float64 {
	if fixed > 0 {
		return math.Min(fixed, 0.5)
	}
	if n <= 1 {
		return 0.5
	}
	floor := (math.Log2(float64(n)) + 4) / float64(n)
	if floor >= 0.5 {
		return 0.5
	}
	d := 0.5 * math.Pow(0.9, float64(i))
	if d < floor {
		d = floor
	}
	return d
}

// sampleRows draws the n hash rows of one round over the support,
// returning the rows and their mean density. Row i includes the support
// variable of rank r iff rowHash(seed, round, i, r) clears the density
// threshold; a row that comes out empty (possible at floor density)
// deterministically keeps one variable so it still halves the space
// instead of poisoning every later prefix with a 0=1 contradiction.
func sampleRows(seed uint64, round int, support []int32, fixed float64) ([]cnf.XorClause, float64) {
	n := len(support)
	rows := make([]cnf.XorClause, n)
	densitySum := 0.0
	for i := range rows {
		d := rowDensity(fixed, i, n)
		densitySum += d
		hRowDensity.Observe(d)
		threshold := uint64(d * math.MaxUint64)
		var vars []int32
		for r, v := range support {
			if rowHash(seed, round, i, r) <= threshold {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			vars = append(vars, support[rowHash(seed, round, i, n)%uint64(n)])
		}
		rows[i] = cnf.XorClause{Vars: vars, Rhs: rowHash(seed, round, i, n+1)&1 == 1}
	}
	return rows, densitySum / float64(n)
}

// probeKey serializes a formula key plus a hash-row prefix into the
// probe cache key: the formula's content and the exact rows pin the
// streamlined formula, so equal keys mean equal cell counts.
func probeKey(fkey string, rows []cnf.XorClause) string {
	sz := len(fkey) + 8
	for _, row := range rows {
		sz += 4 * (len(row.Vars) + 2)
	}
	buf := make([]byte, 0, sz)
	buf = append(buf, fkey...)
	for _, row := range rows {
		buf = binary.AppendVarint(buf, int64(len(row.Vars)))
		for _, v := range row.Vars {
			buf = binary.AppendVarint(buf, int64(v))
		}
		if row.Rhs {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return string(buf)
}

// ApproxCount estimates the model count of f within multiplicative
// tolerance (1+ε) with confidence 1-δ. Formulas whose count does not
// exceed the pivot are counted exactly (Exact is set and the guarantee
// is vacuous). The context cancels the underlying exact counts; if its
// deadline expires after at least one full round, the median over the
// completed rounds is returned as a BestEffort result with a widened δ
// instead of an error.
func ApproxCount(ctx context.Context, f *cnf.Formula, cfg ApproxConfig) (*ApproxResult, error) {
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.8
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.2
	}
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("counter: approx needs epsilon > 0 and 0 < delta < 1, got %g/%g", eps, delta)
	}
	if cfg.HashDensity < 0 || cfg.HashDensity > 0.5 {
		return nil, fmt.Errorf("counter: approx hash density must be in [0, 0.5] (0 = auto), got %g", cfg.HashDensity)
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = ApproxRounds(delta)
	}
	pivot := ApproxPivot(eps)
	res := &ApproxResult{Epsilon: eps, Delta: delta, Pivot: pivot}

	sampling := cfg.Sampling
	if sampling == nil {
		sampling = make([]int32, f.NumVars)
		for i := range sampling {
			sampling[i] = int32(i + 1)
		}
	} else {
		// Hash rows list their variables in sampling order; keep the
		// canonical (sorted) row invariant regardless of caller order.
		sampling = append([]int32(nil), sampling...)
		sort.Slice(sampling, func(i, j int) bool { return sampling[i] < sampling[j] })
	}
	res.SupportBefore = len(sampling)
	if !cfg.NoSupportMin {
		sampling = MinimizeSupport(f, sampling)
	}
	res.SupportAfter = len(sampling)
	res.Stats.SupportBefore = uint64(res.SupportBefore)
	res.Stats.SupportAfter = uint64(res.SupportAfter)
	hSupportBefore.Observe(float64(res.SupportBefore))
	hSupportAfter.Observe(float64(res.SupportAfter))

	solverCfg := cfg.Solver
	if solverCfg.Cache == nil && !solverCfg.DisableCache {
		// One content-keyed cache shared by every probe: residual
		// components that do not touch a hash row recur across cells.
		maxEntries := solverCfg.MaxCacheEntries
		if maxEntries == 0 {
			maxEntries = defaultMaxCacheEntries
		}
		solverCfg.Cache = NewCache(maxEntries, 0)
	}
	bigPivot := big.NewInt(pivot)
	var fkey string
	if cfg.Probes != nil {
		fkey = f.ContentKey()
	}

	// count returns the exact model count of f streamlined with the
	// given hash rows, accumulating engine stats into the result. When a
	// probe cache is attached, a content-identical probe solved earlier
	// (by this call or any sibling task sharing the cache) is reused.
	count := func(rows []cnf.XorClause) (*big.Int, error) {
		mApproxProbes.Inc()
		res.Stats.ApproxProbes++
		var pkey string
		if cfg.Probes != nil {
			pkey = probeKey(fkey, rows)
			if c, ok := cfg.Probes.Lookup(pkey); ok {
				res.Stats.ApproxProbesReused++
				return c, nil
			}
		}
		g := *f
		g.Xors = make([]cnf.XorClause, 0, len(f.Xors)+len(rows))
		g.Xors = append(g.Xors, f.Xors...)
		g.Xors = append(g.Xors, rows...)
		g.GateOfXor = make([]int32, len(f.GateOfXor), len(f.GateOfXor)+len(rows))
		copy(g.GateOfXor, f.GateOfXor)
		for range rows {
			g.GateOfXor = append(g.GateOfXor, -1)
		}
		s := New(&g, solverCfg)
		c, err := s.CountCtx(ctx)
		res.Stats.Add(s.Stats())
		if err == nil && cfg.Probes != nil {
			cfg.Probes.Store(pkey, c)
		}
		return c, err
	}

	n := len(sampling)
	if n == 0 {
		c, err := count(nil)
		if err != nil {
			return nil, err
		}
		res.Count, res.Exact, res.Rounds = c, true, 0
		return res, nil
	}

	var estimates []*big.Int
	// bestEffort shapes the deadline-expiry descent: with at least one
	// completed round the median over them is still a valid estimate —
	// the (1+ε) band is per round — only the confidence drops to the
	// exact binomial tail over the rounds that ran.
	bestEffort := func(err error) (*ApproxResult, error) {
		if !errors.Is(err, context.DeadlineExceeded) || len(estimates) == 0 {
			return nil, err
		}
		t := len(estimates)
		widened := binomialTail(t, 0.36, (t+1)/2)
		if widened > res.Delta {
			res.Delta = widened
		}
		sort.Slice(estimates, func(i, j int) bool { return estimates[i].Cmp(estimates[j]) < 0 })
		res.Count = estimates[t/2]
		res.Rounds = t
		res.BestEffort = true
		return res, nil
	}
	seed := mix64(uint64(cfg.Seed))
	tally := make(map[string]int) // estimate value -> multiplicity, for the median pin
	prevM := -1                   // boundary of the previous round, -1 = none yet
	for r := 0; r < rounds; r++ {
		mApproxRounds.Inc()
		// Sample the round's n hash rows once (prefix property).
		rows, meanDensity := sampleRows(seed, r, sampling, cfg.HashDensity)
		res.HashDensity = meanDensity
		// Smallest m with cellCount(m) <= pivot; counts are monotone
		// nonincreasing in m, so the boundary is well defined and any
		// search path lands on the same m — what the path chooses is
		// which cells it has to count on the way. This walk only ever
		// probes cells adjacent to the boundary (at most a couple of
		// pivots big, so each exact count is cheap): it starts from the
		// previous round's boundary — which rarely moves — or from
		// m = n on the first round, where the formula is maximally
		// constrained, and steps one row at a time. A bisection over
		// [0, n] would instead probe low-m cells holding a large
		// fraction of all models; on wide supports a single such probe
		// costs close to a full exact count, which is exactly the work
		// this backend exists to avoid.
		probes := make(map[int]*big.Int)
		cellAt := func(m int) (*big.Int, error) {
			if c, ok := probes[m]; ok {
				return c, nil
			}
			c, err := count(rows[:m])
			if err != nil {
				return nil, err
			}
			probes[m] = c
			return c, nil
		}
		var m int
		var c *big.Int
		if cfg.Bisect {
			// Ablation: the pre-scaling search — bisection over [0, n],
			// seeded with the previous round's boundary when present.
			lo, hi := 0, n
			if prevM > 0 && prevM <= n {
				c, err := cellAt(prevM)
				if err != nil {
					return bestEffort(err)
				}
				if c.Cmp(bigPivot) <= 0 {
					hi = prevM
				} else {
					lo = prevM + 1
				}
			}
			for lo < hi {
				mid := (lo + hi) / 2
				cm, err := cellAt(mid)
				if err != nil {
					return bestEffort(err)
				}
				if cm.Cmp(bigPivot) <= 0 {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			m = lo
			var err error
			if c, err = cellAt(m); err != nil {
				return bestEffort(err)
			}
		} else {
			m = prevM
			if m < 0 || m > n {
				m = n
			}
			var err error
			if c, err = cellAt(m); err != nil {
				return bestEffort(err)
			}
			for c.Cmp(bigPivot) > 0 && m < n {
				m++
				if c, err = cellAt(m); err != nil {
					return bestEffort(err)
				}
			}
			for m > 0 {
				below, err := cellAt(m - 1)
				if err != nil {
					return bestEffort(err)
				}
				if below.Cmp(bigPivot) > 0 {
					break
				}
				m, c = m-1, below
			}
		}
		prevM = m
		if m == 0 {
			// The whole formula fits under the pivot: exact, no median
			// needed.
			res.Count, res.Exact, res.Rounds = c, true, r+1
			return res, nil
		}
		est := new(big.Int).Lsh(c, uint(m))
		estimates = append(estimates, est)
		// Median pin: once one value holds a majority of ALL scheduled
		// rounds, the median over the full schedule is that value no
		// matter how the remaining rounds would land — stop probing.
		// The early exit is value-identical to running every round, so
		// Delta is untouched.
		key := est.String()
		tally[key]++
		if tally[key] >= (rounds+1)/2 && r+1 < rounds {
			res.Count = est
			res.Rounds = r + 1
			return res, nil
		}
	}
	sort.Slice(estimates, func(i, j int) bool { return estimates[i].Cmp(estimates[j]) < 0 })
	res.Count = estimates[len(estimates)/2]
	res.Rounds = rounds
	return res, nil
}
