package counter

import (
	"context"
	"math/big"
)

// Satisfiability mode: the same DPLL engine with early termination,
// used for worst-case-error queries (binary search over threshold
// miters needs SAT, not counting). The simulation hook doubles as a SAT
// oracle: a dense component is satisfiable iff its consistent-pattern
// count is positive.

var bigZero = big.NewInt(0)

// Satisfiable reports whether the formula has any satisfying
// assignment. It resets solver state, so it can be interleaved with
// Count calls on the same solver. Like Count, it maps Config.TimeLimit
// expiry to ErrTimeout; SatisfiableCtx is the context-aware form.
func (s *Solver) Satisfiable() (bool, error) {
	sat, err := s.SatisfiableCtx(context.Background())
	return sat, legacyErr(err)
}

// SatisfiableCtx is Satisfiable with cooperative cancellation (see
// CountCtx for the polling contract).
func (s *Solver) SatisfiableCtx(ctx context.Context) (bool, error) {
	s.reset()
	if s.cfg.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.TimeLimit)
		defer cancel()
	}
	if ctx.Done() != nil {
		s.ctx = ctx
	}
	for ci, cl := range s.clauses {
		switch len(cl) {
		case 0:
			return false, nil
		case 1:
			if s.nTrue[ci] == 0 {
				s.propQ = append(s.propQ, propItem{cl[0], int32(ci)})
			}
		}
	}
	if !s.queueXorUnits() {
		return false, nil
	}
	if !s.propagate() {
		return false, nil
	}
	allVars := make([]int32, 0, s.nVars)
	for v := int32(1); v <= int32(s.nVars); v++ {
		if s.assign[v] == unassigned {
			allVars = append(allVars, v)
		}
	}
	comps, _ := s.findComponents(allVars)
	for _, comp := range comps {
		sat, ok := s.satComponent(comp)
		if !ok {
			return false, s.abortErr
		}
		if !sat {
			return false, nil
		}
	}
	return true, nil
}

// satComponent reports (satisfiable, completed). Every component must be
// satisfiable for the formula to be.
func (s *Solver) satComponent(comp *component) (bool, bool) {
	if s.checkAbort() {
		return false, false
	}
	var key string
	if s.cache != nil {
		key = s.cacheKey(comp)
		if v, cross, ok := s.cache.Lookup(key, s.cfg.CacheOwner); ok {
			s.stats.CacheHits++
			if cross {
				s.stats.CacheCrossHits++
			}
			return v.Sign() != 0, true
		}
	}
	if cnt, ok := s.tryGauss(comp); ok {
		if cnt == nil { // cancelled during the recursive solve
			return false, false
		}
		s.cacheStore(key, cnt)
		return cnt.Sign() != 0, true
	}
	if cnt, ok := s.trySimulate(comp); ok {
		if cnt == nil { // cancelled mid-simulation
			return false, false
		}
		s.cacheStore(key, cnt)
		return cnt.Sign() != 0, true
	}
	v := s.pickVar(comp)
	s.stats.Decisions++
	for _, lit := range [2]int32{v, -v} {
		mark := len(s.trail)
		s.curLevel++
		s.propQ = append(s.propQ, propItem{lit, reasonDecision})
		if s.propagate() && (s.cfg.DisableIBCP || s.failedLiteralFixpoint(comp.vars)) {
			comps, _ := s.findComponents(comp.vars)
			all := true
			for _, sc := range comps {
				sat, ok := s.satComponent(sc)
				if !ok {
					s.undoTo(mark)
					s.curLevel--
					return false, false
				}
				if !sat {
					all = false
					break
				}
			}
			if all {
				s.undoTo(mark)
				s.curLevel--
				return true, true
			}
		}
		s.undoTo(mark)
		s.curLevel--
	}
	// Unsatisfiable components are safe to cache as count 0.
	s.cacheStore(key, bigZero)
	return false, true
}
