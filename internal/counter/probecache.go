package counter

import (
	"math/big"
	"sync"

	"vacsem/internal/obs"
)

var (
	mProbeHits   = obs.Default.Counter("approx.probes_reused")
	mProbeStores = obs.Default.Counter("approx.probe_stores")
)

// ProbeCache memoizes approx probe outcomes across ApproxCount calls:
// the exact cell count of one formula streamlined with one concrete
// hash-row prefix, keyed by the formula's content key plus the rows'
// serialized content. Because the approx backend derives its hash rows
// from the session seed and the row's position — never from the task
// index or worker identity — structurally identical sub-miters (same
// encoded clause list) draw identical rows, so their probes collide
// here and the cell count is solved once per session instead of once
// per task. Sharing never changes an estimate: a hit returns exactly
// the count the miss would have computed.
//
// The cache is bounded: beyond maxEntries further stores are dropped
// (probe working sets are small — tens of probes per task — so the
// bound is a safety valve, not an eviction policy).
type ProbeCache struct {
	mu         sync.Mutex
	m          map[string]*big.Int
	maxEntries int
	hits       uint64
}

// defaultMaxProbeEntries bounds a ProbeCache when the caller does not.
// Each entry is one boundary-search probe; even a 64-round session over
// hundreds of tasks stays far below this.
const defaultMaxProbeEntries = 1 << 20

// NewProbeCache returns an empty probe cache bounded to maxEntries
// (0 = default).
func NewProbeCache(maxEntries int) *ProbeCache {
	if maxEntries <= 0 {
		maxEntries = defaultMaxProbeEntries
	}
	return &ProbeCache{m: make(map[string]*big.Int), maxEntries: maxEntries}
}

// Lookup returns the memoized cell count for key. The returned count is
// shared and must not be mutated.
func (c *ProbeCache) Lookup(key string) (*big.Int, bool) {
	c.mu.Lock()
	cnt, ok := c.m[key]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	if ok {
		mProbeHits.Inc()
	}
	return cnt, ok
}

// Store memoizes key -> cnt. cnt must not be mutated after the call. A
// racing store of the same key keeps the first entry — both hold the
// same exact count, because the key pins the formula and the rows.
func (c *ProbeCache) Store(key string, cnt *big.Int) {
	c.mu.Lock()
	if _, dup := c.m[key]; !dup && len(c.m) < c.maxEntries {
		c.m[key] = cnt
	}
	c.mu.Unlock()
	mProbeStores.Inc()
}

// Len returns the number of memoized probes.
func (c *ProbeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Hits returns the number of lookups that found an entry.
func (c *ProbeCache) Hits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
