package counter

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/testutil"
)

// parityFormula encodes a parity cone over n inputs: the count is
// 2^(n-1) (odd-parity patterns), the support is all n inputs, and every
// residual component is a pure XOR system the Gauss path counts in
// closed form — so wide supports stay cheap to probe.
func parityFormula(t *testing.T, n int) *cnf.Formula {
	t.Helper()
	c := circuit.New("parity")
	for i := 0; i < n; i++ {
		c.AddInput("")
	}
	par := c.Inputs[0]
	for _, in := range c.Inputs[1:] {
		par = c.AddGate(circuit.Xor, par, in)
	}
	c.SetOutputs(par)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestApproxSparseVsDenseCrossValidation: the sparse (auto-scheduled)
// and dense (0.5) hash families must both estimate within the ε band of
// the exact count — 30 seeded circuits x 2 densities = 60 trials.
func TestApproxSparseVsDenseCrossValidation(t *testing.T) {
	const trials = 30
	const eps = 0.8
	hashed := 0
	for seed := int64(0); seed < trials; seed++ {
		c := testutil.RandomCircuit(6+int(seed%11), 12+int(seed*5%40), 1, seed+1717)
		par := c.Inputs[0]
		for _, in := range c.Inputs[1:] {
			par = c.AddGate(circuit.Xor, par, in)
		}
		c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(f, Config{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		for _, density := range []float64{0, 0.5} {
			r, err := ApproxCount(context.Background(), f, ApproxConfig{
				Epsilon: eps, Delta: 0.2, Seed: seed, Rounds: 5, HashDensity: density,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Exact {
				if r.Count.Cmp(want) != 0 {
					t.Fatalf("seed %d d=%g: exact-path %v != %v", seed, density, r.Count, want)
				}
				continue
			}
			hashed++
			if !withinEpsilon(r.Count, want, eps) {
				t.Errorf("seed %d d=%g: %v outside (1+%g) band of %v", seed, density, r.Count, eps, want)
			}
			if r.HashDensity <= 0 || r.HashDensity > 0.5 {
				t.Errorf("seed %d d=%g: reported mean density %g out of range", seed, density, r.HashDensity)
			}
		}
	}
	if hashed < trials/2 {
		t.Errorf("only %d hashed trials across %d circuits", hashed, trials)
	}
}

// TestApproxBisectValueStable: the boundary walk and the bisection
// ablation locate the same smallest m (cell counts are monotone in m,
// so the boundary is path-independent) and must return bit-identical
// estimates — the ablation isolates probe cost, never the value.
func TestApproxBisectValueStable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := testutil.RandomCircuit(8+int(seed%6), 15+int(seed*7%30), 1, seed+4242)
		par := c.Inputs[0]
		for _, in := range c.Inputs[1:] {
			par = c.AddGate(circuit.Xor, par, in)
		}
		c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		walk, err := ApproxCount(context.Background(), f, ApproxConfig{
			Epsilon: 0.8, Delta: 0.2, Seed: seed, Rounds: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		bisect, err := ApproxCount(context.Background(), f, ApproxConfig{
			Epsilon: 0.8, Delta: 0.2, Seed: seed, Rounds: 3, Bisect: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if walk.Count.Cmp(bisect.Count) != 0 || walk.Exact != bisect.Exact {
			t.Errorf("seed %d: walk %v (exact=%v) != bisect %v (exact=%v)",
				seed, walk.Count, walk.Exact, bisect.Count, bisect.Exact)
		}
	}
}

// TestApproxSparseWideSupport: on a 64-input support the auto schedule
// must actually go sparse (well below 0.5 mean density) and still land
// in the band.
func TestApproxSparseWideSupport(t *testing.T) {
	f := parityFormula(t, 64)
	want := new(big.Int).Lsh(big.NewInt(1), 63)
	r, err := ApproxCount(context.Background(), f, ApproxConfig{
		Epsilon: 0.8, Delta: 0.2, Seed: 5, Rounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Fatalf("64-input parity took the exact path (count %v)", r.Count)
	}
	if r.HashDensity >= 0.35 {
		t.Errorf("auto schedule stayed dense on 64-var support: mean density %g", r.HashDensity)
	}
	if !withinEpsilon(r.Count, want, 0.8) {
		t.Errorf("sparse estimate %v outside band of %v", r.Count, want)
	}
}

// TestApproxProbeCacheReuse: a second run over a content-identical
// formula with the same seed answers every probe from the shared cache
// and returns the identical estimate; running without the cache also
// returns the identical estimate (sharing never changes results).
func TestApproxProbeCacheReuse(t *testing.T) {
	c := testutil.RandomCircuit(12, 30, 1, 9090)
	par := c.Inputs[0]
	for _, in := range c.Inputs[1:] {
		par = c.AddGate(circuit.Xor, par, in)
	}
	c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewProbeCache(0)
	cfg := ApproxConfig{Epsilon: 0.8, Delta: 0.2, Seed: 11, Rounds: 5, Probes: pc}
	a, err := ApproxCount(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Exact {
		t.Skip("circuit hit the exact shortcut; cache path not exercised")
	}
	if a.Stats.ApproxProbesReused != 0 {
		t.Errorf("first run reported %d reused probes", a.Stats.ApproxProbesReused)
	}
	b, err := ApproxCount(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count.Cmp(a.Count) != 0 {
		t.Errorf("cached rerun changed the estimate: %v vs %v", b.Count, a.Count)
	}
	if b.Stats.ApproxProbesReused != b.Stats.ApproxProbes || b.Stats.ApproxProbes == 0 {
		t.Errorf("rerun reused %d of %d probes, want all", b.Stats.ApproxProbesReused, b.Stats.ApproxProbes)
	}
	if pc.Hits() == 0 || pc.Len() == 0 {
		t.Errorf("probe cache saw no traffic: len=%d hits=%d", pc.Len(), pc.Hits())
	}
	nocache := cfg
	nocache.Probes = nil
	d, err := ApproxCount(context.Background(), f, nocache)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count.Cmp(a.Count) != 0 {
		t.Errorf("cache changed the estimate: without %v, with %v", d.Count, a.Count)
	}
}

// TestApproxEarlyExitPinnedMedian: when one estimate value reaches a
// majority of the scheduled rounds, the remaining rounds cannot move
// the median and the loop stops. A parity cone yields the same estimate
// every round, so a 9-round schedule must stop after 5.
func TestApproxEarlyExitPinnedMedian(t *testing.T) {
	f := parityFormula(t, 12)
	want := new(big.Int).Lsh(big.NewInt(1), 11)
	full, err := ApproxCount(context.Background(), f, ApproxConfig{
		Epsilon: 0.8, Delta: 0.2, Seed: 21, Rounds: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Exact {
		t.Fatalf("parity-12 took the exact path")
	}
	if full.Rounds >= 9 {
		t.Errorf("no early exit: ran all %d rounds", full.Rounds)
	}
	if !withinEpsilon(full.Count, want, 0.8) {
		t.Errorf("estimate %v outside band of %v", full.Count, want)
	}
}

// pollCtx is a deterministic deadline: Err() reports expiry after a
// fixed number of polls, so the best-effort descent can be driven
// without wall-clock flakiness. (The solver polls Err() every 1024
// abort checks.)
type pollCtx struct {
	done  chan struct{}
	calls int
	limit int
}

func (p *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (p *pollCtx) Done() <-chan struct{}       { return p.done }
func (p *pollCtx) Value(key any) any           { return nil }
func (p *pollCtx) Err() error {
	p.calls++
	if p.calls > p.limit {
		return context.DeadlineExceeded
	}
	return nil
}

// TestApproxBestEffortDeadline: a deadline that expires mid-run returns
// the median over the completed rounds with a widened δ instead of an
// error — and with zero completed rounds the error propagates.
func TestApproxBestEffortDeadline(t *testing.T) {
	c := testutil.RandomCircuit(16, 48, 1, 6161)
	par := c.Inputs[0]
	for _, in := range c.Inputs[1:] {
		par = c.AddGate(circuit.Xor, par, in)
	}
	c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	const scheduled = 33 // delta 0.05
	sawBestEffort := false
	for _, limit := range []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256} {
		ctx := &pollCtx{done: make(chan struct{}), limit: limit}
		r, err := ApproxCount(ctx, f, ApproxConfig{Epsilon: 0.8, Delta: 0.05, Seed: 2})
		if err != nil {
			// Deadline before the first round completed: a hard error,
			// and it must be the deadline, not something else.
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("limit %d: unexpected error %v", limit, err)
			}
			continue
		}
		if !r.BestEffort {
			if r.Rounds == scheduled || r.Exact || r.Rounds > 0 {
				continue // deadline never fired (or median pinned early)
			}
			t.Fatalf("limit %d: non-best-effort result with %d rounds", limit, r.Rounds)
		}
		sawBestEffort = true
		if r.Rounds < 1 || r.Rounds >= scheduled {
			t.Errorf("limit %d: best-effort over %d rounds", limit, r.Rounds)
		}
		if r.Delta < 0.05 {
			t.Errorf("limit %d: best-effort delta %g not widened", limit, r.Delta)
		}
		if r.Count == nil || r.Count.Sign() <= 0 {
			t.Errorf("limit %d: best-effort count %v", limit, r.Count)
		}
	}
	if !sawBestEffort {
		t.Error("no poll limit produced a best-effort result; adjust the limits")
	}
}

// TestApproxRoundsLogSpaceSchedule pins the δ-derived schedule at tiny
// δ: the log-space binomial tail keeps the exact schedule where a
// linear-space sum would saturate or underflow.
func TestApproxRoundsLogSpaceSchedule(t *testing.T) {
	for _, tc := range []struct {
		delta float64
		want  int
	}{
		{0.2, 9}, {0.05, 33}, {1e-3, 117}, {1e-6, 277}, {1e-9, 441},
	} {
		if got := ApproxRounds(tc.delta); got != tc.want {
			t.Errorf("rounds(%g) = %d, want %d", tc.delta, got, tc.want)
		}
	}
	// Spot values of the tail itself (reference: exact rational
	// evaluation of P[Bin(n, 0.36) >= k]).
	for _, tc := range []struct {
		n, k int
		want float64
	}{
		{9, 5, 0.18903595748032517},
		{33, 17, 0.049065608296631133},
		{117, 59, 0.00097631919492149498},
		{1, 1, 0.36},
	} {
		got := binomialTail(tc.n, 0.36, tc.k)
		if diff := got/tc.want - 1; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("tail(%d, 0.36, %d) = %.17g, want %.17g", tc.n, tc.k, got, tc.want)
		}
	}
	// Degenerate bounds.
	if got := binomialTail(5, 0.36, 0); got != 1 {
		t.Errorf("tail k<=0 = %g, want 1", got)
	}
	if got := binomialTail(5, 0.36, 6); got != 0 {
		t.Errorf("tail k>n = %g, want 0", got)
	}
}
