package counter

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"vacsem/internal/obs"
)

// Cache is a concurrency-safe, sharded, bounded component-count cache.
//
// Keys are the solver-independent content keys built by Solver.cacheKey:
// a component's variables are remapped to dense local indices in sorted
// order and its residual clauses serialized as sorted local-literal
// tuples, so identical residual subformulas arising in *different*
// formulas — e.g. the sub-miters of one MED miter, which share both
// circuit copies and the subtractor — hit the same entry. Because every
// cached value is the exact model count of the canonical residual
// formula, sharing a Cache across solvers never changes any count: hits
// and misses affect speed only, so shared-cache results are bit-identical
// to private-cache results at any worker count.
//
// The cache is split into cacheShards shards selected by key hash; each
// shard is independently locked and independently bounded. When a shard
// is full, Store evicts per entry — 2-random: of two candidates drawn
// from the map's randomized iteration order, the one with fewer hits
// goes — instead of the old wholesale clear, so a long run keeps its hot
// entries. Memory is accounted approximately (key bytes + count limbs +
// fixed per-entry overhead) and surfaced through internal/obs alongside
// per-shard hit/miss/store/eviction/cross-hit counters and a sampled
// hit-latency histogram.
//
// Values handed to Store (and returned by Lookup) are shared across
// goroutines and must never be mutated.
type Cache struct {
	shards      [cacheShards]cacheShard
	maxPerShard int
	maxBytes    int64 // approximate per-shard byte bound, 0 = none
}

// cacheShards is the number of independently locked shards. A power of
// two; 16 keeps lock contention negligible at typical worker counts
// while the per-shard obs counters stay readable.
const cacheShards = 16

type cacheShard struct {
	mu      sync.Mutex
	m       map[string]*cacheEntry
	bytes   int64
	hits    uint64
	misses  uint64
	stores  uint64
	evicted uint64
	cross   uint64
}

type cacheEntry struct {
	cnt   *big.Int
	owner int32
	hits  uint32
}

// CacheStats is an aggregated snapshot of one Cache's activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Stores    uint64
	Evictions uint64
	// CrossHits counts hits on entries stored under a different owner
	// tag — with the engine's per-sub-miter tags, hits on components
	// first solved inside another sub-miter.
	CrossHits uint64
	Entries   int
	Bytes     int64 // approximate
}

// Per-shard registry handles, shared by every Cache in the process (obs
// metrics are process-cumulative). The hit-latency histogram is sampled
// every cacheLatencyEvery hits.
var (
	shardHits      [cacheShards]*obs.Counter
	shardMisses    [cacheShards]*obs.Counter
	shardStores    [cacheShards]*obs.Counter
	shardEvictions [cacheShards]*obs.Counter
	shardCross     [cacheShards]*obs.Counter
	gCacheEntries  = obs.Default.Gauge("counter.cache_entries_peak")
	gCacheBytes    = obs.Default.Gauge("counter.cache_bytes_peak")
	hCacheHit      = obs.Default.Histogram("counter.cache_hit_seconds", nil)
)

const cacheLatencyEvery = 64

func init() {
	for i := range shardHits {
		shardHits[i] = obs.Default.Counter(fmt.Sprintf("counter.cache.shard%02d.hits", i))
		shardMisses[i] = obs.Default.Counter(fmt.Sprintf("counter.cache.shard%02d.misses", i))
		shardStores[i] = obs.Default.Counter(fmt.Sprintf("counter.cache.shard%02d.stores", i))
		shardEvictions[i] = obs.Default.Counter(fmt.Sprintf("counter.cache.shard%02d.evictions", i))
		shardCross[i] = obs.Default.Counter(fmt.Sprintf("counter.cache.shard%02d.cross_hits", i))
	}
}

// NewCache returns an empty cache bounded to maxEntries entries
// (0 = the Config.MaxCacheEntries default) and, when maxBytes > 0,
// approximately maxBytes of memory. Both bounds are enforced per shard.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = defaultMaxCacheEntries
	}
	c := &Cache{maxPerShard: (maxEntries + cacheShards - 1) / cacheShards}
	if c.maxPerShard < 1 {
		c.maxPerShard = 1
	}
	if maxBytes > 0 {
		c.maxBytes = (maxBytes + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// shardOf hashes the key (FNV-1a) and picks a shard by its top bits,
// which are well mixed even for keys sharing long prefixes.
func (c *Cache) shardOf(key string) (*cacheShard, int) {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	i := int(h>>60) & (cacheShards - 1)
	return &c.shards[i], i
}

// Lookup returns the cached count for key. cross reports that the entry
// was stored under a different owner tag (a cross-sub-miter hit). The
// returned count must not be mutated.
func (c *Cache) Lookup(key string, owner int32) (cnt *big.Int, cross, ok bool) {
	sh, i := c.shardOf(key)
	start := time.Now()
	sh.mu.Lock()
	e := sh.m[key]
	if e == nil {
		sh.misses++
		sh.mu.Unlock()
		shardMisses[i].Inc()
		return nil, false, false
	}
	e.hits++
	sh.hits++
	cross = e.owner != owner
	if cross {
		sh.cross++
	}
	sampled := sh.hits%cacheLatencyEvery == 0
	cnt = e.cnt
	sh.mu.Unlock()
	shardHits[i].Inc()
	if cross {
		shardCross[i].Inc()
	}
	if sampled {
		hCacheHit.Observe(time.Since(start).Seconds())
	}
	return cnt, cross, true
}

// Store inserts key -> cnt tagged with owner and returns how many
// entries were evicted to make room (so callers can distinguish cache
// growth from churn). cnt must not be mutated after the call. A racing
// store of the same key keeps the first entry — both hold the same
// exact count.
func (c *Cache) Store(key string, cnt *big.Int, owner int32) (evicted int) {
	sh, i := c.shardOf(key)
	sz := cacheEntryBytes(key, cnt)
	sh.mu.Lock()
	if sh.m[key] != nil {
		sh.stores++
		sh.mu.Unlock()
		shardStores[i].Inc()
		return 0
	}
	for (len(sh.m) >= c.maxPerShard) ||
		(c.maxBytes > 0 && sh.bytes+sz > c.maxBytes && len(sh.m) > 0) {
		if !sh.evictOne() {
			break
		}
		evicted++
	}
	sh.m[key] = &cacheEntry{cnt: cnt, owner: owner}
	sh.bytes += sz
	sh.stores++
	sh.evicted += uint64(evicted)
	entries, bytes := len(sh.m), sh.bytes
	sh.mu.Unlock()
	shardStores[i].Inc()
	if evicted > 0 {
		shardEvictions[i].Add(uint64(evicted))
	}
	// High-water gauges, scaled from the sampled shard (shards are
	// statistically balanced by the key hash).
	gCacheEntries.SetMax(int64(entries) * cacheShards)
	gCacheBytes.SetMax(bytes * cacheShards)
	return evicted
}

// evictOne removes one entry under the shard lock: of two candidates
// drawn from the map's randomized iteration order, the one with fewer
// hits goes (2-random eviction). Reports false on an empty shard.
func (sh *cacheShard) evictOne() bool {
	var k1, k2 string
	var e1, e2 *cacheEntry
	n := 0
	for k, e := range sh.m {
		if n == 0 {
			k1, e1 = k, e
		} else {
			k2, e2 = k, e
			break
		}
		n++
	}
	if e1 == nil {
		return false
	}
	victim, ve := k1, e1
	if e2 != nil && e2.hits < e1.hits {
		victim, ve = k2, e2
	}
	sh.bytes -= cacheEntryBytes(victim, ve.cnt)
	delete(sh.m, victim)
	return true
}

// cacheEntryBytes approximates the memory held by one entry: key bytes,
// count limbs, and a fixed allowance for the map cell, string header,
// entry struct and big.Int header.
func cacheEntryBytes(key string, cnt *big.Int) int64 {
	const overhead = 96
	return int64(len(key)) + int64(len(cnt.Bits()))*8 + overhead
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// lockAll acquires every shard lock in index order (the only place more
// than one shard lock is ever held, so the fixed order cannot deadlock)
// and returns the matching unlock.
func (c *Cache) lockAll() (unlock func()) {
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	return func() {
		for i := range c.shards {
			c.shards[i].mu.Unlock()
		}
	}
}

// Stats aggregates the per-shard counters into one snapshot. All shard
// locks are held while reading, so the snapshot is consistent under
// concurrent mutation: an earlier shard-by-shard read could tear the
// totals (e.g. count a store's counter bump but miss its entry, so
// Stores - Evictions != Entries on an otherwise unbounded cache), which
// showed up as impossible numbers on the /metrics page mid-run.
func (c *Cache) Stats() CacheStats {
	unlock := c.lockAll()
	defer unlock()
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Stores += sh.stores
		s.Evictions += sh.evicted
		s.CrossHits += sh.cross
		s.Entries += len(sh.m)
		s.Bytes += sh.bytes
	}
	return s
}

// Entry is one cache entry in portable form, as produced by
// SnapshotEntries and consumed by LoadEntries (the persistence layer of
// the cross-request store).
type Entry struct {
	// Key is the canonical content key (binary-safe; callers that
	// serialize entries to text must encode it, e.g. base64).
	Key string
	// Count is the exact model count of the canonical residual formula.
	// SnapshotEntries returns a private copy; LoadEntries takes
	// ownership of the value (it must not be mutated afterwards).
	Count *big.Int
}

// SnapshotEntries returns a consistent copy of every entry in the
// cache. All shard locks are held while copying, so the result is a
// point-in-time snapshot even under concurrent mutation. Counts are
// deep-copied: mutating the returned entries never corrupts the cache.
func (c *Cache) SnapshotEntries() []Entry {
	unlock := c.lockAll()
	defer unlock()
	n := 0
	for i := range c.shards {
		n += len(c.shards[i].m)
	}
	out := make([]Entry, 0, n)
	for i := range c.shards {
		for k, e := range c.shards[i].m {
			out = append(out, Entry{Key: k, Count: new(big.Int).Set(e.cnt)})
		}
	}
	return out
}

// LoadEntries inserts the given entries (a prior SnapshotEntries, e.g.
// reloaded from disk) under owner tag 0, so the first hit by any solver
// counts as a cross hit — which it is: the work was done in another
// process life. The usual per-shard bounds apply; entries beyond them
// evict as normal stores would. Duplicate keys keep the first entry.
func (c *Cache) LoadEntries(entries []Entry) {
	for _, e := range entries {
		if e.Count == nil {
			continue
		}
		c.Store(e.Key, e.Count, 0)
	}
}
