package counter

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/testutil"
)

// withinEpsilon reports |got - want| within the multiplicative band
// want/(1+eps) <= got <= want*(1+eps), using rational arithmetic.
func withinEpsilon(got, want *big.Int, eps float64) bool {
	// Compare using a fixed-point scale of 1e6: got*(1e6) vs bounds.
	scale := big.NewInt(1_000_000)
	factor := big.NewInt(int64((1 + eps) * 1_000_000))
	lo := new(big.Int).Mul(got, factor) // got*(1+eps) >= want ?
	hi := new(big.Int).Mul(want, factor)
	gs := new(big.Int).Mul(got, scale)
	ws := new(big.Int).Mul(want, scale)
	return lo.Cmp(ws) >= 0 && gs.Cmp(hi) <= 0
}

// TestApproxCrossValidation is the seeded cross-validation harness: on
// >= 50 small circuits (<= 16 inputs) the approximate count must land
// within the (1+ε) band of the exact count. Seeds are fixed, so the
// hashing is deterministic and the test cannot flake.
func TestApproxCrossValidation(t *testing.T) {
	const trials = 60
	const eps = 0.8
	hashed := 0
	for seed := int64(0); seed < trials; seed++ {
		// Random single-output circuits have narrow cones and tiny counts,
		// which would hit the exact shortcut every time. OR the random
		// output with a parity over all inputs: the cone covers every
		// input and the count is at least half the space — large and
		// irregular, so the trial genuinely exercises XOR streamlining.
		c := testutil.RandomCircuit(6+int(seed%11), 12+int(seed*5%40), 1, seed+909)
		par := c.Inputs[0]
		for _, in := range c.Inputs[1:] {
			par = c.AddGate(circuit.Xor, par, in)
		}
		c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(f, Config{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		r, err := ApproxCount(context.Background(), f, ApproxConfig{
			Epsilon: eps, Delta: 0.2, Seed: seed, Rounds: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Exact {
			if r.Count.Cmp(want) != 0 {
				t.Fatalf("seed %d: exact-path approx %v != %v", seed, r.Count, want)
			}
			continue
		}
		hashed++
		if !withinEpsilon(r.Count, want, eps) {
			t.Errorf("seed %d: approx %v outside (1+%g) band of exact %v", seed, r.Count, eps, want)
		}
	}
	// The harness must actually exercise XOR streamlining, not just the
	// small-count exact shortcut.
	if hashed < trials/3 {
		t.Errorf("only %d/%d trials took the hashing path", hashed, trials)
	}
}

// TestApproxSamplingSetMatchesFullSpace: hashing only over the encoded
// inputs (an independent support of a Tseitin formula) must estimate
// the same count as hashing over all variables.
func TestApproxSamplingSetMatchesFullSpace(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := testutil.RandomCircuit(10, 30, 1, seed+5151)
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(f, Config{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		var inputs []int32
		for _, id := range f.Circ.Inputs {
			if v := f.VarOfNode[id]; v != 0 {
				inputs = append(inputs, v)
			}
		}
		r, err := ApproxCount(context.Background(), f, ApproxConfig{
			Epsilon: 0.8, Seed: seed, Rounds: 5, Sampling: inputs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Exact {
			if r.Count.Cmp(want) != 0 {
				t.Fatalf("seed %d: exact-path approx %v != %v", seed, r.Count, want)
			}
			continue
		}
		if !withinEpsilon(r.Count, want, 0.8) {
			t.Errorf("seed %d: input-sampled approx %v outside band of %v", seed, r.Count, want)
		}
	}
}

// TestApproxDeterministicSeed: identical parameters and seed give
// identical estimates; different seeds may differ.
func TestApproxDeterministicSeed(t *testing.T) {
	c := testutil.RandomCircuit(12, 40, 1, 4242)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ApproxConfig{Epsilon: 0.5, Delta: 0.2, Seed: 7, Rounds: 3}
	a, err := ApproxCount(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ApproxCount(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count.Cmp(b.Count) != 0 {
		t.Errorf("same seed, different estimates: %v vs %v", a.Count, b.Count)
	}
}

// TestApproxExactShortcut: a formula with fewer models than the pivot
// is returned exactly.
func TestApproxExactShortcut(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 3 2\n1 0\n-2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ApproxCount(context.Background(), f, ApproxConfig{Epsilon: 0.8, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || r.Count.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("want exact 2, got %v (exact=%v)", r.Count, r.Exact)
	}
	if r.Epsilon != 0.8 || r.Delta != 0.2 || r.Pivot != ApproxPivot(0.8) {
		t.Errorf("result fields not echoed: %+v", r)
	}
}

// TestApproxUnsat: unsatisfiable formulas report an exact zero.
func TestApproxUnsat(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 2 3\n1 0\n-1 2 0\nx 1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ApproxCount(context.Background(), f, ApproxConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact || r.Count.Sign() != 0 {
		t.Fatalf("want exact 0, got %v (exact=%v)", r.Count, r.Exact)
	}
}

// TestApproxRejectsBadParams: epsilon/delta outside their domains.
func TestApproxRejectsBadParams(t *testing.T) {
	f, _ := cnf.ParseDIMACS(strings.NewReader("p cnf 1 1\n1 0\n"))
	for _, cfg := range []ApproxConfig{
		{Epsilon: -1},
		{Delta: -0.5},
		{Delta: 1.5},
	} {
		if _, err := ApproxCount(context.Background(), f, cfg); err == nil {
			t.Errorf("cfg %+v: expected error", cfg)
		}
	}
}

// TestApproxPivotAndRounds pins the ApproxMC parameter formulas.
func TestApproxPivotAndRounds(t *testing.T) {
	if p := ApproxPivot(0.8); p != 72 {
		t.Errorf("pivot(0.8) = %d, want 72", p)
	}
	// Exact binomial-tail schedule: smallest odd t with
	// P[Bin(t, 0.36) >= (t+1)/2] <= delta.
	for _, tc := range []struct {
		delta float64
		want  int
	}{{0.2, 9}, {0.05, 33}, {0.45, 1}} {
		if r := ApproxRounds(tc.delta); r != tc.want {
			t.Errorf("rounds(%g) = %d, want %d", tc.delta, r, tc.want)
		}
	}
	// The schedule is monotone: lower delta never means fewer rounds.
	prev := 0
	for _, d := range []float64{0.45, 0.3, 0.2, 0.1, 0.05, 0.01} {
		r := ApproxRounds(d)
		if r < prev || r%2 == 0 {
			t.Errorf("rounds(%g) = %d, want odd and >= %d", d, r, prev)
		}
		prev = r
	}
}
