package counter

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/testutil"
)

// TestNativeMatchesBlasted is the Gauss-aware-counter equivalence run
// of the refactor: counting the native CNF-XOR encoding must agree with
// counting the pre-refactor CNF-blasted encoding on random circuits,
// across every feature combination. It runs under -short, so the
// -race -short CI pass covers it.
func TestNativeMatchesBlasted(t *testing.T) {
	configs := []Config{
		{},
		{DisableIBCP: true},
		{DisableLearning: true},
		{DisableCache: true},
		{DisableIBCP: true, DisableLearning: true, DisableCache: true},
		{EnableSim: true, MinSimGates: 1, Alpha: 20},
	}
	for seed := int64(0); seed < 30; seed++ {
		c := testutil.RandomCircuit(4+int(seed%5), 10+int(seed*3%25), 1, seed+777)
		fn, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := cnf.EncodeBlasted(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(fb, Config{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		for ci, cfg := range configs {
			got, err := New(fn, cfg).Count()
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d cfg %d: native count %v, blasted %v", seed, ci, got, want)
			}
		}
	}
}

// TestPureParityClosedForm: a component that is only parity rows is
// counted 2^(n-rank) by Gaussian elimination, without any decisions.
func TestPureParityClosedForm(t *testing.T) {
	// 8 inputs, parity tree, output free (EncodeOpen): every assignment
	// of the inputs extends uniquely, so the count is 2^8... with the
	// gate variables determined. Formula vars = 8 inputs + 7 gates;
	// models = 2^8.
	c := circuit.New("partree")
	var layer []int
	for i := 0; i < 8; i++ {
		layer = append(layer, c.AddInput(fmt.Sprintf("i%d", i)))
	}
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, c.AddGate(circuit.Xor, layer[i], layer[i+1]))
		}
		layer = next
	}
	c.AddOutput(layer[0], "y")
	f, err := cnf.EncodeOpen(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	got, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Lsh(big.NewInt(1), 8); got.Cmp(want) != 0 {
		t.Fatalf("count = %v, want %v", got, want)
	}
	if s.Stats().Decisions != 0 {
		t.Errorf("pure parity system took %d decisions, want 0", s.Stats().Decisions)
	}
	if s.Stats().GaussReductions == 0 {
		t.Error("Gauss pass never fired")
	}
}

// TestXorBCPForcing: unit and near-unit rows force literals through the
// propagation queue, and contradictory rows zero the count.
func TestXorBCPForcing(t *testing.T) {
	cases := []struct {
		dimacs string
		want   uint64
	}{
		// x1 = 1 forced, x2 free.
		{"p cnf 2 1\nx 1 0\n", 2},
		// x1 = 0 forced (negated unit row).
		{"p cnf 1 1\nx -1 0\n", 1},
		// x1^x2 = 1 with clause (~x1): x1=0 forced, then x2=1.
		{"p cnf 2 2\n-1 0\nx 1 2 0\n", 1},
		// Contradictory parity pair.
		{"p cnf 2 2\nx 1 2 0\nx -1 2 0\n", 0},
		// Chain: x1^x2=1, x2^x3=1, x1 = 1 => x2=0 => x3=1.
		{"p cnf 3 3\n1 0\nx 1 2 0\nx 2 3 0\n", 1},
	}
	for i, tc := range cases {
		f, err := cnf.ParseDIMACS(strings.NewReader(tc.dimacs))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if b := bruteCNF(f); b != tc.want {
			t.Fatalf("case %d: test vector wrong, brute = %d want %d", i, b, tc.want)
		}
		s := New(f, Config{})
		got, err := s.Count()
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(new(big.Int).SetUint64(tc.want)) != 0 {
			t.Errorf("case %d: count = %v, want %d", i, got, tc.want)
		}
	}
}

// TestRandomCNFXorAgainstBrute cross-checks the solver against truth-
// table enumeration on random mixed CNF-XOR formulas parsed from
// DIMACS, across feature combos.
func TestRandomCNFXorAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 31337))
		nVars := 4 + rng.Intn(9)
		nCl := rng.Intn(2 * nVars)
		nXor := 1 + rng.Intn(nVars)
		var b strings.Builder
		fmt.Fprintf(&b, "p cnf %d %d\n", nVars, nCl+nXor)
		for i := 0; i < nCl; i++ {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				fmt.Fprintf(&b, "%d ", v)
			}
			b.WriteString("0\n")
		}
		for i := 0; i < nXor; i++ {
			k := 1 + rng.Intn(4)
			b.WriteString("x ")
			for j := 0; j < k; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				fmt.Fprintf(&b, "%d ", v)
			}
			b.WriteString("0\n")
		}
		f, err := cnf.ParseDIMACS(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).SetUint64(bruteCNF(f))
		for ci, cfg := range []Config{
			{},
			{DisableIBCP: true, DisableLearning: true},
			{DisableCache: true},
		} {
			s := New(f, cfg)
			got, err := s.Count()
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d cfg %d: count = %v, brute = %v\n%s", seed, ci, got, want, b.String())
			}
			sat, err := s.Satisfiable()
			if err != nil {
				t.Fatal(err)
			}
			if sat != (want.Sign() != 0) {
				t.Fatalf("seed %d cfg %d: sat = %v, brute = %v", seed, ci, sat, want)
			}
		}
	}
}

// TestCacheKeySeparatesXorRows guards the cache-key extension: two
// formulas whose clause structure matches but whose parity rows differ
// must not alias in a shared cache.
func TestCacheKeySeparatesXorRows(t *testing.T) {
	cache := NewCache(1024, 0)
	// Same clause skeleton; one formula adds a parity row.
	plain, err := cnf.ParseDIMACS(strings.NewReader("p cnf 3 1\n1 2 3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := cnf.ParseDIMACS(strings.NewReader("p cnf 3 2\n1 2 3 0\nx 1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(plain, Config{Cache: cache, CacheOwner: 1})
	got1, err := s1.Count()
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(mixed, Config{Cache: cache, CacheOwner: 2})
	got2, err := s2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want := big.NewInt(7); got1.Cmp(want) != 0 {
		t.Errorf("plain count = %v, want 7", got1)
	}
	// x1^x2=1 (2 options) * x3 free (2) minus nothing — clause 1|2|3 is
	// implied whenever x1^x2=1 => one of them true. So 4 models.
	if want := big.NewInt(4); got2.Cmp(want) != 0 {
		t.Errorf("mixed count = %v, want 4", got2)
	}
	// Mirror order: a fresh shared cache, mixed first.
	cache2 := NewCache(1024, 0)
	got3, err := New(mixed, Config{Cache: cache2, CacheOwner: 1}).Count()
	if err != nil {
		t.Fatal(err)
	}
	got4, err := New(plain, Config{Cache: cache2, CacheOwner: 2}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if got3.Cmp(got2) != 0 || got4.Cmp(got1) != 0 {
		t.Errorf("shared-cache order changed counts: %v/%v vs %v/%v", got3, got4, got2, got1)
	}
}

// TestXorStatsPopulated: counting a parity-heavy formula must report
// XorPropagations and GaussReductions.
func TestXorStatsPopulated(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader(
		"p cnf 4 4\n1 0\nx 1 2 0\nx 2 3 0\nx 3 4 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	if _, err := s.Count(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().XorPropagations == 0 {
		t.Errorf("XorPropagations = 0 on a forced parity chain: %+v", s.Stats())
	}
}
