package counter

// This file reproduces the paper's motivating example (Section III,
// Fig. 2) and the worked Phase 1 / Phase 2 examples (Examples 1-4,
// Tables I and II) as golden tests.
//
// The miter of Fig. 2(a): 11 PIs i0..i10, one PO n20.
//
//	Ckt1: n11 = i3 & i4, n12 = i2 & n11, n13 = i1 & n12, n14 = i0 | n13
//	Ckt2: n15 = i5 ^ i6, n16 = n15 ^ i7, n17 = n16 ^ i8,
//	      n18 = i9 ^ i10, n19 = n17 ^ n18
//	      n20 = n14 & n19
//
// (The tree shape of Ckt2 follows Example 3: the sub-circuit Ckt3 of
// gates n15..n18 has the six inputs i5..i10.)

import (
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
)

// fig2 builds the Fig. 2(a) miter. The returned ids map follows the
// paper's node numbering (i0..i10 = 0..10, n11..n20).
func fig2() (*circuit.Circuit, map[string]int) {
	c := circuit.New("fig2")
	ids := map[string]int{}
	for i := 0; i <= 10; i++ {
		ids[pi(i)] = c.AddInput(pi(i))
	}
	ids["n11"] = c.AddGate(circuit.And, ids["i3"], ids["i4"])
	ids["n12"] = c.AddGate(circuit.And, ids["i2"], ids["n11"])
	ids["n13"] = c.AddGate(circuit.And, ids["i1"], ids["n12"])
	ids["n14"] = c.AddGate(circuit.Or, ids["i0"], ids["n13"])
	ids["n15"] = c.AddGate(circuit.Xor, ids["i5"], ids["i6"])
	ids["n16"] = c.AddGate(circuit.Xor, ids["n15"], ids["i7"])
	ids["n17"] = c.AddGate(circuit.Xor, ids["n16"], ids["i8"])
	ids["n18"] = c.AddGate(circuit.Xor, ids["i9"], ids["i10"])
	ids["n19"] = c.AddGate(circuit.Xor, ids["n17"], ids["n18"])
	ids["n20"] = c.AddGate(circuit.And, ids["n14"], ids["n19"])
	c.AddOutput(ids["n20"], "n20")
	return c, ids
}

func pi(i int) string { return "i" + itoa(i) }

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

// countOutput counts #SAT for the cone of the given node, scaled to the
// node's own support (as the paper does for #SAT(n14) and #SAT(n19)).
func countOutput(t *testing.T, c *circuit.Circuit, root int, cfg Config) *big.Int {
	t.Helper()
	cc := c.Clone()
	cc.SetOutputs(root)
	cone, _ := cc.ExtractCone(0)
	f, err := cnf.Encode(cone)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, cfg)
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFig2SATn14: Ckt1 has 5 supporting PIs; n14 = i0 | (i1&i2&i3&i4) is
// TRUE for 16 + 1 = 17 patterns.
func TestFig2SATn14(t *testing.T) {
	c, ids := fig2()
	for _, cfg := range []Config{{}, {EnableSim: true}} {
		got := countOutput(t, c, ids["n14"], cfg)
		if got.Cmp(big.NewInt(17)) != 0 {
			t.Errorf("#SAT(n14) = %v, want 17 (sim=%v)", got, cfg.EnableSim)
		}
	}
}

// TestFig2SATn19: Ckt2 is a 6-input XOR chain; exactly half of the 2^6
// patterns set n19, i.e. 32 — the case where the paper's analysis says
// simulation (5 bitwise XORs) beats DPLL (9 GANAK decisions).
func TestFig2SATn19(t *testing.T) {
	c, ids := fig2()
	for _, cfg := range []Config{{}, {EnableSim: true}} {
		got := countOutput(t, c, ids["n19"], cfg)
		if got.Cmp(big.NewInt(32)) != 0 {
			t.Errorf("#SAT(n19) = %v, want 32 (sim=%v)", got, cfg.EnableSim)
		}
	}
	// The controller must actually choose simulation for the XOR chain:
	// density = 2*5/… with all six inputs free — the top-level call sees
	// K=6, G=5, density 2*5/36 < 1, so DPLL decides first and simulation
	// kicks in on residual components. Verify simulation fires at all
	// with a forced alpha. This is a property of the blasted encoding:
	// native XOR rows hand the chain to Gaussian elimination instead.
	cc := c.Clone()
	cc.SetOutputs(ids["n19"])
	cone, _ := cc.ExtractCone(0)
	f, err := cnf.EncodeBlasted(cone)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{EnableSim: true, Alpha: 16, MinSimGates: 1})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(32)) != 0 {
		t.Fatalf("forced-sim count = %v", n)
	}
	if s.Stats().SimCalls == 0 {
		t.Errorf("simulation never fired on the XOR chain with alpha=16")
	}
	// With the native encoding the same cone is a pure parity system:
	// the Gauss pass must count it in closed form, with zero decisions.
	fn, err := cnf.Encode(cone)
	if err != nil {
		t.Fatal(err)
	}
	sn := New(fn, Config{})
	n2, err := sn.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n2.Cmp(big.NewInt(32)) != 0 {
		t.Fatalf("native count = %v, want 32", n2)
	}
	if sn.Stats().GaussReductions == 0 {
		t.Errorf("Gauss pass never fired on the native XOR chain: %+v", sn.Stats())
	}
	if sn.Stats().Decisions != 0 {
		t.Errorf("native XOR chain needed %d decisions, want 0", sn.Stats().Decisions)
	}
}

// TestFig2SATn20Total: the full miter (11 inputs).
// n20 = n14 & n19: #SAT = 17 * 32 = 544 over the 11-input space.
func TestFig2SATn20Total(t *testing.T) {
	c, ids := fig2()
	for _, cfg := range []Config{{}, {EnableSim: true}} {
		got := countOutput(t, c, ids["n20"], cfg)
		if got.Cmp(big.NewInt(544)) != 0 {
			t.Errorf("#SAT(n20) = %v, want 544", got)
		}
	}
}

// TestTableIClauseSets reproduces Example 1 / Table I: the consistency
// clause sets of the gates, in topological order, with the one-to-one
// gate<->clause-set mapping. Table I documents the clause-level
// consistency functions, so this golden test uses the blasted encoding;
// the native encoding represents C15..C19 as parity rows instead.
func TestTableIClauseSets(t *testing.T) {
	c, ids := fig2()
	f, err := cnf.EncodeBlasted(c)
	if err != nil {
		t.Fatal(err)
	}
	v := func(name string) int32 { return f.VarOfNode[ids[name]] }
	// C11 = (v3 | ~v11)(v4 | ~v11)(~v3 | ~v4 | v11)
	wantC11 := [][]int32{
		{v("i3"), -v("n11")},
		{v("i4"), -v("n11")},
		{-v("i3"), -v("i4"), v("n11")},
	}
	checkClauseSet(t, f, ids["n11"], wantC11, "C11")
	// C14 = (~v0 | v14)(~v13 | v14)(v0 | v13 | ~v14)   [OR gate]
	wantC14 := [][]int32{
		{-v("i0"), v("n14")},
		{-v("n13"), v("n14")},
		{v("i0"), v("n13"), -v("n14")},
	}
	checkClauseSet(t, f, ids["n14"], wantC14, "C14")
	// C15 = XOR consistency: 4 clauses.
	wantC15 := [][]int32{
		{-v("i5"), -v("i6"), -v("n15")},
		{v("i5"), v("i6"), -v("n15")},
		{v("i5"), -v("i6"), v("n15")},
		{-v("i5"), v("i6"), v("n15")},
	}
	checkClauseSet(t, f, ids["n15"], wantC15, "C15")
	// C20 = (v14 | ~v20)(v19 | ~v20)(~v14 | ~v19 | v20)
	wantC20 := [][]int32{
		{v("n14"), -v("n20")},
		{v("n19"), -v("n20")},
		{-v("n14"), -v("n19"), v("n20")},
	}
	checkClauseSet(t, f, ids["n20"], wantC20, "C20")
	// Plus the output unit clause (n20).
	last := f.Clauses[len(f.Clauses)-1]
	if len(last) != 1 || last[0] != v("n20") {
		t.Errorf("missing unit clause (n20): %v", last)
	}
}

func checkClauseSet(t *testing.T, f *cnf.Formula, gate int, want [][]int32, name string) {
	t.Helper()
	got := f.ClausesOfGate[int32(gate)]
	if len(got) != len(want) {
		t.Fatalf("%s: %d clauses, want %d", name, len(got), len(want))
	}
	for i, ci := range got {
		cl := f.Clauses[ci]
		if !sameLits(cl, want[i]) {
			t.Errorf("%s clause %d = %v, want %v", name, i, cl, want[i])
		}
	}
}

func sameLits(a cnf.Clause, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && x == y {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// TestExample234ConsistentPatterns reproduces Examples 2-4 / Table II:
// condition the formula on v6=0, v8=1, v17=0, v18=1 and count the
// component of Ckt3 (gates n15..n18) by simulation. With the Fig. 2
// structure, the checking gates require i5^i7 = 1 (from n17=0 with
// i6=0, i8=1) and i9^i10 = 1 (from n18=1): 2*2 = 4 of the 16 patterns
// on {v5,v7,v9,v10} are consistent — the paper's count of 4 consistent
// patterns (shaded in Table II).
func TestExample234ConsistentPatterns(t *testing.T) {
	c, ids := fig2()
	// Table II presents Ckt3 through its clause sets, so the golden test
	// conditions the blasted encoding (EncodeOpen emits native rows).
	f, err := cnf.EncodeOpenBlasted(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{EnableSim: true, Alpha: 1000, MaxSimVars: 10, MinSimGates: 1})
	s.reset()
	v := func(name string) int32 { return f.VarOfNode[ids[name]] }
	// Assert the four decided variables exactly as Example 2 states them,
	// *without* running unit propagation afterwards: the example shows
	// the snapshot at decision time (our solver would normally propagate
	// the implied units n16=1 and i9=1 first, shrinking the component —
	// same count, smaller simulation).
	for _, lit := range []int32{-v("i6"), v("i8"), -v("n17"), v("n18")} {
		if !s.assertLit(lit, reasonDecision) {
			t.Fatal("conditioning caused a conflict")
		}
		s.propQ = s.propQ[:0]
	}
	// Assemble the component exactly as Example 2 presents it: all the
	// still-active clauses of the gate sets C15..C18 and their free
	// variables. (Our solver's own decomposition would split off the
	// n18 constraint into its own component — same total count; the
	// paper keeps Ckt3 whole, so the golden test does too.)
	ckt3 := &component{}
	varSet := map[int32]bool{}
	for _, g := range []string{"n15", "n16", "n17", "n18"} {
		for _, ci := range f.ClausesOfGate[int32(ids[g])] {
			if s.nTrue[ci] != 0 {
				continue
			}
			ckt3.clauses = append(ckt3.clauses, ci)
			for _, l := range f.Clauses[ci] {
				vv := litVar(l)
				if s.assign[vv] == unassigned && !varSet[vv] {
					varSet[vv] = true
					ckt3.vars = append(ckt3.vars, vv)
				}
			}
		}
	}
	cnt, ok := s.trySimulate(ckt3)
	if !ok {
		t.Fatal("controller refused to simulate Ckt3")
	}
	if cnt.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("consistent patterns = %v, want 4 (Example 4)", cnt)
	}
	if s.Stats().SimPatterns != 16 {
		t.Errorf("simulated %d patterns, want 16 (Table II)", s.Stats().SimPatterns)
	}
}
