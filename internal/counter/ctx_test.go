package counter

import (
	"context"
	"errors"
	"testing"
	"time"

	"vacsem/internal/als"
	"vacsem/internal/cnf"
	"vacsem/internal/gen"
	"vacsem/internal/miter"
	"vacsem/internal/testutil"
)

// hardFormula encodes the ER miter of a 10x10 multiplier against its
// truncated approximation: a single-output instance that keeps the
// plain DPLL engine busy for tens of seconds, far past every
// cancellation point the tests use.
func hardFormula(t *testing.T) *cnf.Formula {
	t.Helper()
	m, err := miter.ER(gen.ArrayMultiplier(10), als.TruncatedMultiplier(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	f, err := cnf.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCountCtxCancelMidSearch(t *testing.T) {
	f := hardFormula(t)
	s := New(f, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	n, err := s.CountCtx(ctx)
	if err == nil {
		t.Skipf("instance solved in %v before the cancel landed (count %v)", time.Since(start), n)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want within one poll interval", elapsed)
	}
}

func TestCountCtxDeadline(t *testing.T) {
	f := hardFormula(t)
	s := New(f, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.CountCtx(ctx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCountLegacyTimeLimitMapsToErrTimeout pins the non-context entry
// point's contract: Config.TimeLimit expiry is ErrTimeout, not a
// context error.
func TestCountLegacyTimeLimitMapsToErrTimeout(t *testing.T) {
	f := hardFormula(t)
	s := New(f, Config{TimeLimit: time.Nanosecond})
	if _, err := s.Count(); err != nil && err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSatisfiableCtxCancel(t *testing.T) {
	f := hardFormula(t)
	s := New(f, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SatisfiableCtx(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or instant answer", err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Decisions: 1, Propagations: 2, Components: 3, CacheHits: 4,
		CacheStores: 5, SimCalls: 6, SimRejected: 7, SimPatterns: 8,
		FailedLiterals: 9, Learned: 10}
	b := Stats{Decisions: 10, Propagations: 20, Components: 30, CacheHits: 40,
		CacheStores: 50, SimCalls: 60, SimRejected: 70, SimPatterns: 80,
		FailedLiterals: 90, Learned: 100}
	a.Add(b)
	want := Stats{Decisions: 11, Propagations: 22, Components: 33, CacheHits: 44,
		CacheStores: 55, SimCalls: 66, SimRejected: 77, SimPatterns: 88,
		FailedLiterals: 99, Learned: 110}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

// TestCountCtxAfterCancelReusable ensures a cancelled CountCtx leaves
// the solver reusable: a fresh call with a live context succeeds and
// matches an untouched solver's count.
func TestCountCtxAfterCancelReusable(t *testing.T) {
	c := testutil.RandomCircuit(10, 40, 1, 5)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = s.CountCtx(ctx) // may or may not abort before finishing
	got, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(f, Config{}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("count after cancelled run = %v, want %v", got, want)
	}
}
