package counter

import (
	"context"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/testutil"
)

// TestMinimizeSupportDropsAssignedAndDefined: a level-0 unit drops its
// sampling variable, and an all-sampling parity row drops its pivot.
func TestMinimizeSupportDropsAssignedAndDefined(t *testing.T) {
	// 1 is forced true; 1 ⊕ 2 ⊕ 3 = 1 then defines 2 from 3.
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 3 2\n1 0\nx 1 2 3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	kept := MinimizeSupport(f, []int32{1, 2, 3})
	if len(kept) != 1 || kept[0] != 3 {
		t.Fatalf("kept = %v, want [3]", kept)
	}
}

// TestMinimizeSupportKeepsGatePivotRows: a parity row whose pivot lands
// on a non-sampling (gate) variable defines the gate, not a sampling
// variable — nothing may be dropped.
func TestMinimizeSupportKeepsGatePivotRows(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 3 1\nx 1 2 3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	kept := MinimizeSupport(f, []int32{2, 3})
	if len(kept) != 2 || kept[0] != 2 || kept[1] != 3 {
		t.Fatalf("kept = %v, want [2 3]", kept)
	}
}

// TestMinimizeSupportUnsat: a level-0 contradiction makes every set an
// independent support; the empty set routes ApproxCount to its exact
// (zero-count) path.
func TestMinimizeSupportUnsat(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 2 2\n1 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if kept := MinimizeSupport(f, []int32{1, 2}); len(kept) != 0 {
		t.Fatalf("kept = %v, want empty", kept)
	}
}

// TestMinimizeSupportPreservesEstimates: with and without support
// minimization the estimate stays inside the ε band of the exact count
// — minimization changes the hash width, never the counted space.
func TestMinimizeSupportPreservesEstimates(t *testing.T) {
	const eps = 0.8
	for seed := int64(0); seed < 20; seed++ {
		c := testutil.RandomCircuit(8+int(seed%8), 16+int(seed*3%30), 1, seed+3131)
		par := c.Inputs[0]
		for _, in := range c.Inputs[1:] {
			par = c.AddGate(circuit.Xor, par, in)
		}
		c.SetOutputs(c.AddGate(circuit.Or, c.Outputs[0], par))
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := New(f, Config{}).Count()
		if err != nil {
			t.Fatal(err)
		}
		for _, noMin := range []bool{false, true} {
			r, err := ApproxCount(context.Background(), f, ApproxConfig{
				Epsilon: eps, Delta: 0.2, Seed: seed, Rounds: 5, NoSupportMin: noMin,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.SupportAfter > r.SupportBefore {
				t.Fatalf("seed %d: support grew %d -> %d", seed, r.SupportBefore, r.SupportAfter)
			}
			if noMin && r.SupportAfter != r.SupportBefore {
				t.Fatalf("seed %d: NoSupportMin still shrank %d -> %d", seed, r.SupportBefore, r.SupportAfter)
			}
			if r.Exact {
				if r.Count.Cmp(want) != 0 {
					t.Fatalf("seed %d noMin=%v: exact-path %v != %v", seed, noMin, r.Count, want)
				}
				continue
			}
			if !withinEpsilon(r.Count, want, eps) {
				t.Errorf("seed %d noMin=%v: %v outside (1+%g) band of %v", seed, noMin, r.Count, eps, want)
			}
		}
	}
}
