package counter

import (
	"fmt"
	"math/big"
	"strings"
	"sync"
	"testing"

	"vacsem/internal/cnf"
)

// TestSharedCacheRenamingInvariance pins the canonical-key contract that
// makes cross-sub-miter sharing work: two formulas identical up to an
// order-preserving variable renaming (the shape cnf.Encode produces when
// the same circuit region lands at different variable offsets in two
// sub-miters) must map to the same cache entries. The second solver,
// tagged with a different owner, must observe cross-sub-miter hits on
// entries the first solver stored — and both counts must stay exact.
func TestSharedCacheRenamingInvariance(t *testing.T) {
	// A benign 4-var chain with a single connected component.
	const clausesA = "p cnf 4 3\n1 2 0\n-2 3 0\n3 4 0\n"
	// The same structure under the monotone renaming v -> 2v+3
	// (1,2,3,4 -> 5,7,9,11); the unused variables are free.
	const clausesB = "p cnf 11 3\n5 7 0\n-7 9 0\n9 11 0\n"

	fa, err := cnf.ParseDIMACS(strings.NewReader(clausesA))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := cnf.ParseDIMACS(strings.NewReader(clausesB))
	if err != nil {
		t.Fatal(err)
	}

	shared := NewCache(0, 0)
	sa := New(fa, Config{Cache: shared, CacheOwner: 1})
	ca, err := sa.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteCNF(fa); ca.Uint64() != want {
		t.Fatalf("count A = %v, want %d", ca, want)
	}
	entriesAfterA := shared.Len()
	if entriesAfterA == 0 {
		t.Fatal("first solver stored nothing; test needs a cached component")
	}

	sb := New(fb, Config{Cache: shared, CacheOwner: 2})
	cb, err := sb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteCNF(fb); cb.Uint64() != want {
		t.Fatalf("count B = %v, want %d", cb, want)
	}
	// 7 of B's 11 variables appear in no clause: same count, shifted.
	if want := new(big.Int).Lsh(ca, 7); cb.Cmp(want) != 0 {
		t.Errorf("count B = %v, want %v (count A << 7)", cb, want)
	}
	if sb.Stats().CacheCrossHits == 0 {
		t.Error("renamed formula produced no cross-owner hits; canonical keys diverged")
	}
	if got := shared.Len(); got != entriesAfterA {
		t.Errorf("renamed formula grew the cache from %d to %d entries; keys not canonical", entriesAfterA, got)
	}
	if cs := shared.Stats(); cs.CrossHits == 0 {
		t.Errorf("Cache.Stats().CrossHits = 0, want > 0 (stats = %+v)", cs)
	}
}

// TestCacheCrossOwnerTag checks the owner bookkeeping directly: a hit on
// an entry stored under the same owner is not a cross hit, one from a
// different owner is.
func TestCacheCrossOwnerTag(t *testing.T) {
	c := NewCache(0, 0)
	c.Store("k", big.NewInt(7), 1)
	if _, cross, ok := c.Lookup("k", 1); !ok || cross {
		t.Errorf("same-owner lookup: ok=%v cross=%v, want ok=true cross=false", ok, cross)
	}
	cnt, cross, ok := c.Lookup("k", 2)
	if !ok || !cross {
		t.Errorf("cross-owner lookup: ok=%v cross=%v, want ok=true cross=true", ok, cross)
	}
	if cnt.Int64() != 7 {
		t.Errorf("cached count = %v, want 7", cnt)
	}
	if _, _, ok := c.Lookup("absent", 1); ok {
		t.Error("lookup of absent key reported ok")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.CrossHits != 1 || s.Stores != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 cross / 1 store", s)
	}
}

// TestCacheEntryBoundEviction floods a tiny cache and checks the entry
// bound holds per shard (2-random eviction, not wholesale clears).
func TestCacheEntryBoundEviction(t *testing.T) {
	c := NewCache(cacheShards, 0) // one entry per shard
	for i := 0; i < 1000; i++ {
		c.Store(fmt.Sprintf("key-%d", i), big.NewInt(int64(i)), 1)
	}
	if n := c.Len(); n > cacheShards {
		t.Errorf("cache holds %d entries, bound is %d", n, cacheShards)
	}
	s := c.Stats()
	if s.Stores != 1000 {
		t.Errorf("stores = %d, want 1000", s.Stores)
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded despite a full cache")
	}
	if s.Stores-s.Evictions != uint64(s.Entries) {
		t.Errorf("stores(%d) - evictions(%d) != entries(%d)", s.Stores, s.Evictions, s.Entries)
	}
}

// TestCacheByteBound checks the approximate memory bound: steady-state
// bytes stay near the configured ceiling while counts keep caching.
func TestCacheByteBound(t *testing.T) {
	const maxBytes = 8 << 10
	c := NewCache(1<<20, maxBytes)
	for i := 0; i < 2000; i++ {
		c.Store(fmt.Sprintf("some-longer-cache-key-%08d", i), big.NewInt(int64(i)), 1)
	}
	s := c.Stats()
	if s.Bytes > 2*maxBytes {
		t.Errorf("cache holds ~%d bytes, bound is %d", s.Bytes, maxBytes)
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded despite the byte bound")
	}
}

// TestCacheDuplicateStoreKeepsFirst pins the racing-store rule: the
// first entry wins and the duplicate is dropped (both hold the same
// exact count by construction, so either would be sound).
func TestCacheDuplicateStoreKeepsFirst(t *testing.T) {
	c := NewCache(0, 0)
	c.Store("k", big.NewInt(3), 1)
	c.Store("k", big.NewInt(3), 2)
	if _, cross, _ := c.Lookup("k", 1); cross {
		t.Error("duplicate store replaced the original owner tag")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheStatsConsistentUnderConcurrency pins the all-shards-locked
// Stats snapshot: on an unbounded cache fed with unique keys, a
// consistent snapshot must satisfy Stores == Entries at every instant
// (no evictions, no duplicate stores). The old shard-by-shard read
// could observe shard i's counter after a store but miss shard j's
// entry from a racing store, tearing the totals shown on /metrics.
func TestCacheStatsConsistentUnderConcurrency(t *testing.T) {
	c := NewCache(1<<20, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Store(fmt.Sprintf("w%d-key-%d", w, i), big.NewInt(int64(i)), int32(w))
				c.Lookup(fmt.Sprintf("w%d-key-%d", w, i/2), int32(w))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := c.Stats()
		if s.Evictions != 0 {
			t.Fatalf("unexpected evictions (%d) on an unbounded cache", s.Evictions)
		}
		if s.Stores != uint64(s.Entries) {
			t.Fatalf("torn snapshot: stores=%d entries=%d", s.Stores, s.Entries)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCacheSnapshotLoadRoundTrip pins the persistence primitive the
// cross-request store builds on: SnapshotEntries -> LoadEntries into a
// fresh cache reproduces every (key, count) pair, counts are deep
// copies (mutating the snapshot cannot corrupt the source cache), and
// reloaded entries carry owner tag 0 so any solver's first hit counts
// as a cross hit.
func TestCacheSnapshotLoadRoundTrip(t *testing.T) {
	src := NewCache(0, 0)
	want := map[string]*big.Int{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-\x00\xff-%d", i) // binary-safe keys
		v := new(big.Int).Lsh(big.NewInt(int64(i+1)), uint(i))
		want[k] = v
		src.Store(k, new(big.Int).Set(v), 7)
	}
	snap := src.SnapshotEntries()
	if len(snap) != len(want) {
		t.Fatalf("snapshot holds %d entries, want %d", len(snap), len(want))
	}
	for i := range snap {
		snap[i].Count.Add(snap[i].Count, big.NewInt(1)) // must not reach src
	}
	for k, v := range want {
		got, _, ok := src.Lookup(k, 7)
		if !ok || got.Cmp(v) != 0 {
			t.Fatalf("snapshot mutation corrupted source entry %q: got %v want %v", k, got, v)
		}
	}
	snap = src.SnapshotEntries() // fresh, unmutated copy
	dst := NewCache(0, 0)
	dst.LoadEntries(snap)
	if dst.Len() != len(want) {
		t.Fatalf("reloaded cache holds %d entries, want %d", dst.Len(), len(want))
	}
	for k, v := range want {
		got, cross, ok := dst.Lookup(k, 7)
		if !ok {
			t.Fatalf("entry %q lost in the round trip", k)
		}
		if got.Cmp(v) != 0 {
			t.Fatalf("entry %q count = %v, want %v", k, got, v)
		}
		if !cross {
			t.Errorf("reloaded entry %q hit is not a cross hit (owner tag should be 0)", k)
		}
	}
}
