package counter

// Implicit BCP (failed-literal probing), the sharpSAT/GANAK technique:
// before branching on a component, tentatively assign candidate literals
// and propagate; a literal whose propagation conflicts is forced to its
// complement. This prunes the unsatisfiable cores that arise in
// high-order deviation bits of MED miters (where |y - y'| provably never
// reaches bit j) without full clause learning.

// probeCandidates collects the free variables of the component that
// occur in an active binary-residual clause — the classic candidate set:
// probing them is what makes chains of short clauses collapse.
func (s *Solver) probeCandidates(vars []int32, out []int32) []int32 {
	out = out[:0]
	for _, v := range vars {
		if s.assign[v] != unassigned {
			continue
		}
		if s.inActiveBinary(v) {
			out = append(out, v)
		}
	}
	return out
}

func (s *Solver) inActiveBinary(v int32) bool {
	for _, li := range [2]int32{2 * v, 2*v + 1} {
		for _, ci := range s.occ[li] {
			if s.nTrue[ci] == 0 && int32(len(s.clauses[ci]))-s.nFalse[ci] == 2 {
				return true
			}
		}
	}
	// An xor row down to two free variables propagates on either probe
	// phase, exactly like a binary clause.
	for _, xi := range s.xorOcc[v] {
		if s.xorFree[xi] == 2 {
			return true
		}
	}
	return false
}

// failedLiteralFixpoint probes candidate variables of the component to a
// fixpoint. Literals whose propagation conflicts are asserted negated
// (they are logical consequences, so the model count is unchanged).
// It reports false when the current assignment itself is contradictory
// (both phases of some variable fail), meaning the component has zero
// models.
func (s *Solver) failedLiteralFixpoint(vars []int32) bool {
	var cands []int32
	for {
		cands = s.probeCandidates(vars, cands)
		changed := false
		for _, v := range cands {
			if s.assign[v] != unassigned {
				continue
			}
			if s.checkAbort() {
				return true // let the caller notice the abort flag
			}
			mark := len(s.trail)
			s.curLevel++
			s.propQ = append(s.propQ, propItem{v, reasonDecision})
			okPos := s.propagate()
			s.undoTo(mark)
			s.curLevel--
			if !okPos {
				s.stats.FailedLiterals++
				s.propQ = append(s.propQ, propItem{-v, reasonAsserted})
				if !s.propagate() {
					return false
				}
				changed = true
				continue
			}
			s.curLevel++
			s.propQ = append(s.propQ, propItem{-v, reasonDecision})
			okNeg := s.propagate()
			s.undoTo(mark)
			s.curLevel--
			if !okNeg {
				s.stats.FailedLiterals++
				s.propQ = append(s.propQ, propItem{v, reasonAsserted})
				if !s.propagate() {
					return false
				}
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}
