// Package counter implements the simulation-enhanced exact model counter
// of VACSEM (Phase 2 of the paper, Algorithm 1).
//
// The engine is a DPLL-style #SAT solver with counting unit propagation,
// connected-component decomposition, component caching and a dynamic
// branching heuristic — the algorithm family of sharpSAT/GANAK. On top of
// it sits the paper's contribution: before branching on a residual
// component, a dynamic controller inspects the component's corresponding
// sub-circuit (recovered through the clause->gate map built in Phase 1)
// and, when the sub-circuit is dense (density score alpha*G/K^2 > 1),
// counts its models by word-parallel circuit simulation instead of search.
//
// Counts are exact and returned as math/big integers, so circuits with
// hundreds of inputs (e.g. 128-bit adders, 2^256 patterns) are supported.
package counter

import (
	"context"
	"errors"
	"math/big"
	"time"

	"vacsem/internal/cnf"
	"vacsem/internal/obs"
)

// ErrTimeout is returned by Count and Satisfiable when the configured
// Config.TimeLimit expires. The context-aware entry points (CountCtx,
// SatisfiableCtx) report expiry as the context's own error instead
// (context.DeadlineExceeded / context.Canceled).
var ErrTimeout = errors.New("counter: time limit exceeded")

// Config tunes the solver. The zero value is usable: it disables the
// simulation hook and runs the plain DPLL counting engine (the paper's
// "GANAK" baseline role).
type Config struct {
	// EnableSim activates the simulation hook (VACSEM mode). It requires
	// the formula to carry circuit metadata (cnf.Encode output).
	EnableSim bool
	// Alpha is the scaling factor of the density score
	// alpha * gates / PIs^2 (Eq. 5 of the paper). 0 means the paper's
	// default of 2.
	Alpha float64
	// MaxSimVars caps the number of free sub-circuit inputs K the
	// simulator will enumerate (2^K patterns). 0 means the default of 26.
	MaxSimVars int
	// MinSimGates is the minimum sub-circuit size worth simulating
	// (default 24): tiny dense components are solved just as fast by
	// branching with component caching, and branching also feeds clause
	// learning, so handing them to the simulator hurts overall search.
	MinSimGates int
	// DisableCache turns off component caching (for ablation studies).
	DisableCache bool
	// DisableIBCP turns off implicit BCP (failed-literal probing), the
	// sharpSAT/GANAK preprocessing both our engines use by default.
	DisableIBCP bool
	// DisableLearning turns off conflict-driven clause learning.
	// Learned clauses are consequences of the original formula, so they
	// prune search in every engine without affecting counts; they are
	// excluded from component analysis and cache keys (the standard
	// sharpSAT treatment).
	DisableLearning bool
	// MaxLearned caps the learned-clause database (default 100000).
	MaxLearned int
	// MaxCacheEntries bounds the component cache (default 4 million
	// entries). When a cache shard is full, entries are evicted
	// individually (2-random) — counts stay exact, only reuse is lost —
	// so memory stays bounded on adversarial instances.
	MaxCacheEntries int
	// Cache, when non-nil, is an external component-count cache shared
	// with other solvers (see Cache). Keys are solver-independent
	// content keys, so identical residual subformulas arising in
	// different formulas share entries; counts are unaffected by
	// sharing. When nil, the solver builds a private Cache per Count
	// call, bounded by MaxCacheEntries.
	Cache *Cache
	// CacheOwner tags this solver's stores in a shared Cache; hits on
	// entries stored under a different tag are reported as
	// Stats.CacheCrossHits (cross-sub-miter reuse).
	CacheOwner int32
	// TimeLimit aborts the count after the given duration. 0 = unlimited.
	TimeLimit time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Alpha == 0 {
		out.Alpha = 2
	}
	if out.MaxSimVars == 0 {
		out.MaxSimVars = 26
	}
	if out.MinSimGates == 0 {
		out.MinSimGates = 24
	}
	if out.MaxLearned == 0 {
		out.MaxLearned = 100000
	}
	if out.MaxCacheEntries == 0 {
		out.MaxCacheEntries = defaultMaxCacheEntries
	}
	return out
}

// defaultMaxCacheEntries bounds the component cache when the caller
// does not: 4 million entries.
const defaultMaxCacheEntries = 4 << 20

// Stats reports the work performed by one Count call.
type Stats struct {
	Decisions    uint64 // branching decisions
	Propagations uint64 // literals assigned by BCP
	Components   uint64 // residual components solved
	CacheHits    uint64
	CacheStores  uint64
	// CacheCrossHits counts cache hits on entries stored by a different
	// solver (a different sub-miter of the same run, under the engine's
	// shared cache). Always 0 with a private cache.
	CacheCrossHits uint64
	// CacheEvictions counts entries this solver's stores pushed out of a
	// full cache shard — churn, as opposed to the growth CacheStores
	// measures.
	CacheEvictions uint64
	SimCalls       uint64 // components counted by simulation
	SimRejected    uint64 // components where the controller declined
	SimPatterns    uint64 // total patterns simulated
	// FailedLiterals counts literals forced by implicit BCP.
	FailedLiterals uint64
	// Learned counts clauses added by conflict analysis.
	Learned uint64
	// XorPropagations counts literals forced by native XOR rows (a row
	// with one free variable determines it).
	XorPropagations uint64
	// GaussReductions counts components the Gaussian-elimination
	// propagator concluded or simplified: a parity contradiction, a pure
	// parity subsystem counted in closed form, or derived unit rows
	// asserted before branching.
	GaussReductions uint64
	// ApproxProbes counts the hash-cell probes the approx backend
	// solved with the exact engine (including reused ones).
	ApproxProbes uint64
	// ApproxProbesReused counts probes answered by the shared probe
	// cache instead of a fresh exact count — within a task (rounds
	// re-probing the same boundary) or across structurally identical
	// tasks of a session.
	ApproxProbesReused uint64
	// SupportBefore and SupportAfter sum the approx sampling-set sizes
	// before and after independent-support minimization over the call's
	// tasks (equal when minimization found nothing to drop or was
	// disabled).
	SupportBefore uint64
	SupportAfter  uint64
}

// Add accumulates other into s field by field. It is the aggregation
// primitive behind core.Result.TotalStats, so reporting layers never
// re-sum individual fields by hand. (A reflection test asserts that
// every numeric field participates, so new metrics cannot be silently
// dropped here or in Diff.)
func (s *Stats) Add(other Stats) {
	s.Decisions += other.Decisions
	s.Propagations += other.Propagations
	s.Components += other.Components
	s.CacheHits += other.CacheHits
	s.CacheStores += other.CacheStores
	s.CacheCrossHits += other.CacheCrossHits
	s.CacheEvictions += other.CacheEvictions
	s.SimCalls += other.SimCalls
	s.SimRejected += other.SimRejected
	s.SimPatterns += other.SimPatterns
	s.FailedLiterals += other.FailedLiterals
	s.Learned += other.Learned
	s.XorPropagations += other.XorPropagations
	s.GaussReductions += other.GaussReductions
	s.ApproxProbes += other.ApproxProbes
	s.ApproxProbesReused += other.ApproxProbesReused
	s.SupportBefore += other.SupportBefore
	s.SupportAfter += other.SupportAfter
}

// Diff returns the field-wise difference s - prev. It is the inverse of
// Add for monotonically growing statistics and backs the tracer's
// periodic "stats" snapshot-delta events.
func (s Stats) Diff(prev Stats) Stats {
	return Stats{
		Decisions:          s.Decisions - prev.Decisions,
		Propagations:       s.Propagations - prev.Propagations,
		Components:         s.Components - prev.Components,
		CacheHits:          s.CacheHits - prev.CacheHits,
		CacheStores:        s.CacheStores - prev.CacheStores,
		CacheCrossHits:     s.CacheCrossHits - prev.CacheCrossHits,
		CacheEvictions:     s.CacheEvictions - prev.CacheEvictions,
		SimCalls:           s.SimCalls - prev.SimCalls,
		SimRejected:        s.SimRejected - prev.SimRejected,
		SimPatterns:        s.SimPatterns - prev.SimPatterns,
		FailedLiterals:     s.FailedLiterals - prev.FailedLiterals,
		Learned:            s.Learned - prev.Learned,
		XorPropagations:    s.XorPropagations - prev.XorPropagations,
		GaussReductions:    s.GaussReductions - prev.GaussReductions,
		ApproxProbes:       s.ApproxProbes - prev.ApproxProbes,
		ApproxProbesReused: s.ApproxProbesReused - prev.ApproxProbesReused,
		SupportBefore:      s.SupportBefore - prev.SupportBefore,
		SupportAfter:       s.SupportAfter - prev.SupportAfter,
	}
}

const (
	unassigned int8 = -1
)

// Solver counts the models of one CNF formula. It is single-use per
// formula but Count may be called repeatedly (state resets each call).
type Solver struct {
	f   *cnf.Formula
	cfg Config

	nVars   int
	nOrig   int32 // number of original (non-learned) clauses
	clauses []cnf.Clause
	occ     [][]int32 // literal index (2v / 2v+1) -> clause ids
	assign  []int8    // var -> unassigned/0/1
	trail   []int32   // assigned literals in order
	nTrue   []int32   // clause -> count of satisfied literals
	nFalse  []int32   // clause -> count of falsified literals
	propQ   []propItem

	// native XOR rows (see xor.go): parity constraints tracked alongside
	// the clause database with their own free-count/parity watches.
	xors    []cnf.XorClause
	xorOcc  [][]int32 // var -> xor row ids
	xorFree []int32   // row -> number of unassigned vars
	xorPar  []uint8   // row -> parity (0/1) of assigned-true vars

	// clause-learning state
	reason      []int32 // var -> clause that propagated it (or a pseudo-reason)
	level       []int32 // var -> decision level at assignment
	curLevel    int32
	conflictCl  int32      // last conflicting clause or xor pseudo-reason, -1 if none
	learned     int        // learned-clause count
	xorReasonCl cnf.Clause // scratch for xorImplicate materialization

	// component discovery scratch (stamp-based visited marks)
	stamp   uint32
	varSeen []uint32
	clSeen  []uint32
	xorSeen []uint32

	// cache: either Config.Cache (shared across solvers) or a private
	// Cache built per Count call; nil when caching is disabled.
	cache *Cache
	// canonical-key scratch (see cacheKey)
	varRank []int32   // var -> dense local index within the current component
	keyLits []int32   // flat free-literal codes, clause by clause
	keyCls  [][]int32 // per-clause views into keyLits
	keyBuf  []byte    // serialized key

	// sim hook scratch
	gateSeen   []uint32
	nodeSeen   []uint32
	compClSet  []uint32 // stamp: clause belongs to current component
	compXorSet []uint32 // stamp: xor row belongs to current component

	// Gaussian-elimination scratch (see xor.go)
	gaussRows [][]uint64
	gaussRhs  []bool

	stats    Stats
	ctx      context.Context // active cancellation source (nil = none)
	aborted  bool
	abortErr error
	ticks    uint32

	// tracing state (see trace.go). tr is captured once per CountCtx so
	// the hot loops pay a plain nil check, not an atomic load.
	tr        *obs.Tracer
	span      obs.SpanID // parent span from the caller's context
	hotTick   uint64     // component-event sampling tick
	cacheTick uint64     // cache-event sampling tick
	lastEmit  Stats      // stats at the last periodic snapshot delta
	// live stats flushing (see trace.go). live is captured once per
	// CountCtx (true when a flight recorder is installed); flushed
	// tracks the stats already merged into the registry, so periodic
	// flushes and the final merge sum exactly to s.stats.
	live    bool
	flushed Stats
}

// propItem is one queued propagation with its antecedent.
type propItem struct {
	lit    int32
	reason int32
}

// Pseudo-reasons for assignments with no antecedent clause. Reasons at
// or below reasonXor encode the native XOR row that forced the
// assignment (row index reasonXor - r), so conflict analysis can
// materialize the row's CNF implicate and resolve through it.
const (
	reasonDecision int32 = -1 // branching decision (or probe)
	reasonAsserted int32 = -2 // forced by implicit BCP (no single clause)
	reasonXor      int32 = -3 // forced by native XOR row reasonXor - r
)

// xorReason encodes xor row xi as a pseudo-reason.
func xorReason(xi int) int32 { return reasonXor - int32(xi) }

// xorRowOf decodes a pseudo-reason r <= reasonXor back to its row.
func xorRowOf(r int32) int { return int(reasonXor - r) }

// New creates a solver for the formula.
func New(f *cnf.Formula, cfg Config) *Solver {
	s := &Solver{
		f: f, cfg: cfg.withDefaults(), nVars: f.NumVars,
		nOrig:      int32(len(f.Clauses)),
		clauses:    append([]cnf.Clause(nil), f.Clauses...),
		conflictCl: -1,
	}
	s.occ = make([][]int32, 2*(f.NumVars+1))
	for ci, cl := range s.clauses {
		for _, l := range cl {
			s.occ[litIndex(l)] = append(s.occ[litIndex(l)], int32(ci))
		}
	}
	s.reason = make([]int32, f.NumVars+1)
	s.level = make([]int32, f.NumVars+1)
	s.assign = make([]int8, f.NumVars+1)
	s.varRank = make([]int32, f.NumVars+1)
	s.nTrue = make([]int32, len(s.clauses))
	s.nFalse = make([]int32, len(s.clauses))
	s.varSeen = make([]uint32, f.NumVars+1)
	s.clSeen = make([]uint32, len(s.clauses))
	s.compClSet = make([]uint32, len(s.clauses))
	s.xors = append([]cnf.XorClause(nil), f.Xors...)
	s.xorOcc = make([][]int32, f.NumVars+1)
	for xi, x := range s.xors {
		for _, v := range x.Vars {
			s.xorOcc[v] = append(s.xorOcc[v], int32(xi))
		}
	}
	s.xorFree = make([]int32, len(s.xors))
	s.xorPar = make([]uint8, len(s.xors))
	s.xorSeen = make([]uint32, len(s.xors))
	s.compXorSet = make([]uint32, len(s.xors))
	if f.Circ != nil {
		s.gateSeen = make([]uint32, len(f.Circ.Nodes))
		s.nodeSeen = make([]uint32, len(f.Circ.Nodes))
	}
	return s
}

// litIndex maps literal +v to 2v and -v to 2v+1.
func litIndex(l int32) int32 {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func litVar(l int32) int32 {
	if l > 0 {
		return l
	}
	return -l
}

// Stats returns the statistics of the most recent Count call.
func (s *Solver) Stats() Stats { return s.stats }

// Count returns the exact number of satisfying assignments of the formula
// over all its variables. For formulas produced by cnf.Encode this equals
// the number of input patterns of the encoded cone that set the output to
// 1 (the Tseitin encoding extends each satisfying input uniquely).
//
// Count is the legacy entry point: expiry of Config.TimeLimit surfaces
// as ErrTimeout. Context-aware callers should use CountCtx.
func (s *Solver) Count() (*big.Int, error) {
	n, err := s.CountCtx(context.Background())
	return n, legacyErr(err)
}

// legacyErr maps context-deadline expiry to the historical ErrTimeout
// for the non-context entry points.
func legacyErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}

// CountCtx is Count with cooperative cancellation: the solver polls
// ctx.Err() at its decision points (every 1024 abort checks) and returns
// the context's error — context.Canceled or context.DeadlineExceeded —
// when the context ends before the count completes. Config.TimeLimit, if
// set, is layered on top as a context deadline.
func (s *Solver) CountCtx(ctx context.Context) (*big.Int, error) {
	s.reset()
	s.tr = obs.Active()
	if s.tr != nil {
		s.span = obs.SpanFrom(ctx)
	}
	s.live = obs.ActiveRecorder() != nil
	defer s.finishObs()
	if s.cfg.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.TimeLimit)
		defer cancel()
	}
	if ctx.Done() != nil {
		s.ctx = ctx
	}
	// Level 0: propagate the unit clauses (and fail on empty clauses).
	for ci, cl := range s.clauses {
		switch len(cl) {
		case 0:
			return big.NewInt(0), nil
		case 1:
			if s.nTrue[ci] == 0 { // not yet satisfied by an earlier unit
				s.propQ = append(s.propQ, propItem{cl[0], int32(ci)})
			}
		}
	}
	if !s.queueXorUnits() {
		return big.NewInt(0), nil
	}
	if !s.propagate() {
		return big.NewInt(0), nil
	}
	allVars := make([]int32, 0, s.nVars)
	for v := int32(1); v <= int32(s.nVars); v++ {
		allVars = append(allVars, v)
	}
	if !s.cfg.DisableIBCP && !s.failedLiteralFixpoint(allVars) {
		return big.NewInt(0), nil
	}
	if s.aborted {
		return nil, s.abortErr
	}
	free := allVars[:0]
	for _, v := range allVars {
		if s.assign[v] == unassigned {
			free = append(free, v)
		}
	}
	allVars = free
	total := big.NewInt(1)
	comps, freeCount := s.findComponents(allVars)
	total.Lsh(total, uint(freeCount))
	for _, comp := range comps {
		r := s.solveComponent(comp)
		if r == nil {
			return nil, s.abortErr
		}
		total.Mul(total, r)
		if total.Sign() == 0 {
			break
		}
	}
	return total, nil
}

func (s *Solver) reset() {
	for i := range s.assign {
		s.assign[i] = unassigned
	}
	// Learned clauses survive resets (they are consequences of the
	// original formula); only the counters are cleared.
	for i := range s.nTrue {
		s.nTrue[i] = 0
		s.nFalse[i] = 0
	}
	for i := range s.xors {
		s.xorFree[i] = int32(len(s.xors[i].Vars))
		s.xorPar[i] = 0
	}
	s.trail = s.trail[:0]
	s.propQ = s.propQ[:0]
	switch {
	case s.cfg.DisableCache:
		s.cache = nil
	case s.cfg.Cache != nil:
		s.cache = s.cfg.Cache // shared: survives resets by design
	default:
		s.cache = NewCache(s.cfg.MaxCacheEntries, 0)
	}
	s.stats = Stats{}
	s.ctx = nil
	s.aborted = false
	s.abortErr = nil
	s.ticks = 0
	s.curLevel = 0
	s.conflictCl = -1
	s.tr = nil
	s.span = 0
	s.hotTick = 0
	s.cacheTick = 0
	s.lastEmit = Stats{}
	s.live = false
	s.flushed = Stats{}
}

// checkAbort polls the active context every 1024 calls. It is invoked at
// every component solve and every probe, so a cancelled context stops
// the search within one poll interval.
func (s *Solver) checkAbort() bool {
	if s.aborted {
		return true
	}
	if s.ctx == nil {
		return false
	}
	s.ticks++
	if s.ticks&1023 == 0 {
		if err := s.ctx.Err(); err != nil {
			s.aborted = true
			s.abortErr = err
		}
		if s.live {
			// A flight recorder samples the registry on a wall-clock
			// interval; without mid-run flushes a long count would show up
			// as one step at the end instead of a moving rate curve.
			s.flushObs()
		}
	}
	return s.aborted
}

// assertLit assigns a literal and updates clause counters, queueing any
// new unit literals. It reports false on conflict (recording the
// conflicting clause for analysis). A literal already assigned
// consistently is a no-op; an inconsistent one is a conflict.
func (s *Solver) assertLit(lit, why int32) bool {
	v := litVar(lit)
	want := int8(0)
	if lit > 0 {
		want = 1
	}
	if s.assign[v] != unassigned {
		if s.assign[v] == want {
			return true
		}
		s.conflictCl = why // why is fully falsified now
		return false
	}
	s.assign[v] = want
	s.reason[v] = why
	s.level[v] = s.curLevel
	s.trail = append(s.trail, lit)
	s.stats.Propagations++
	for _, ci := range s.occ[litIndex(lit)] {
		s.nTrue[ci]++
	}
	conflict := false
	for _, ci := range s.occ[litIndex(-lit)] {
		s.nFalse[ci]++
		if s.nTrue[ci] != 0 {
			continue
		}
		free := int32(len(s.clauses[ci])) - s.nFalse[ci]
		if free == 0 {
			if !conflict {
				s.conflictCl = ci
			}
			conflict = true
		} else if free == 1 {
			// find the single unassigned literal
			for _, l := range s.clauses[ci] {
				if s.assign[litVar(l)] == unassigned {
					s.propQ = append(s.propQ, propItem{l, ci})
					break
				}
			}
		}
	}
	if !s.updateXorsOnAssign(v, want == 1) {
		conflict = true
	}
	return !conflict
}

// propagate drains the propagation queue to fixpoint. On conflict it
// learns a clause (when enabled), leaves counters consistent (undoTo
// restores them) and returns false with the queue cleared.
func (s *Solver) propagate() bool {
	for len(s.propQ) > 0 {
		it := s.propQ[len(s.propQ)-1]
		s.propQ = s.propQ[:len(s.propQ)-1]
		if !s.assertLit(it.lit, it.reason) {
			s.propQ = s.propQ[:0]
			s.learnFromConflict()
			return false
		}
	}
	return true
}

// learnFromConflict performs first-UIP conflict analysis on the recorded
// conflicting clause and adds the learned clause to the database. The
// learned clause is a consequence of the original formula, so it can
// safely propagate anywhere (it never changes model counts) while being
// invisible to component analysis. Analysis bails out harmlessly on
// pseudo-reasons (probe-forced literals).
func (s *Solver) learnFromConflict() {
	if s.cfg.DisableLearning || s.curLevel == 0 ||
		s.learned >= s.cfg.MaxLearned {
		return
	}
	var cl cnf.Clause
	switch {
	case s.conflictCl >= 0:
		cl = s.clauses[s.conflictCl]
	case s.conflictCl <= reasonXor:
		cl = s.xorImplicate(xorRowOf(s.conflictCl))
	default:
		return
	}
	s.stamp++
	st := s.stamp
	var lits []int32
	counter := 0
	idx := len(s.trail) - 1
	for {
		for _, l := range cl {
			v := litVar(l)
			if s.varSeen[v] == st || s.level[v] == 0 {
				continue
			}
			s.varSeen[v] = st
			if s.level[v] == s.curLevel {
				counter++
			} else {
				lits = append(lits, l)
			}
		}
		// Walk back to the most recent current-level variable involved.
		for idx >= 0 {
			v := litVar(s.trail[idx])
			if s.varSeen[v] == st && s.level[v] == s.curLevel {
				break
			}
			idx--
		}
		if idx < 0 {
			return // defensive: malformed analysis state
		}
		v := litVar(s.trail[idx])
		idx--
		counter--
		if counter == 0 {
			// v is the first UIP; the learned clause asserts its negation.
			if s.assign[v] == 1 {
				lits = append(lits, -v)
			} else {
				lits = append(lits, v)
			}
			break
		}
		r := s.reason[v]
		switch {
		case r >= 0:
			cl = s.clauses[r]
		case r <= reasonXor:
			cl = s.xorImplicate(xorRowOf(r))
		default:
			return // probe-forced or decision inside analysis: skip learning
		}
	}
	if len(lits) == 0 || len(lits) > 8 {
		return // empty or too weak to be worth the BCP cost
	}
	s.addLearned(lits)
}

// addLearned appends a learned clause, wiring occurrence lists and
// initializing its counters under the current assignment so that the
// trail-based undo stays consistent.
func (s *Solver) addLearned(lits []int32) {
	ci := int32(len(s.clauses))
	cl := make(cnf.Clause, len(lits))
	copy(cl, lits)
	var nt, nf int32
	for _, l := range cl {
		s.occ[litIndex(l)] = append(s.occ[litIndex(l)], ci)
		switch s.assign[litVar(l)] {
		case unassigned:
		case 1:
			if l > 0 {
				nt++
			} else {
				nf++
			}
		case 0:
			if l > 0 {
				nf++
			} else {
				nt++
			}
		}
	}
	s.clauses = append(s.clauses, cl)
	s.nTrue = append(s.nTrue, nt)
	s.nFalse = append(s.nFalse, nf)
	s.clSeen = append(s.clSeen, 0)
	s.compClSet = append(s.compClSet, 0)
	s.learned++
	s.stats.Learned++
}

// undoTo unassigns trail entries beyond mark, restoring clause counters.
func (s *Solver) undoTo(mark int) {
	for len(s.trail) > mark {
		lit := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		v := litVar(lit)
		s.assign[v] = unassigned
		for _, ci := range s.occ[litIndex(lit)] {
			s.nTrue[ci]--
		}
		for _, ci := range s.occ[litIndex(-lit)] {
			s.nFalse[ci]--
		}
		for _, xi := range s.xorOcc[v] {
			s.xorFree[xi]++
			if lit > 0 {
				s.xorPar[xi] ^= 1
			}
		}
	}
	s.propQ = s.propQ[:0]
}
