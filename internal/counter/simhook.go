package counter

import (
	"context"
	"math/big"
	"sort"
	"time"

	"vacsem/internal/obs"
	"vacsem/internal/sim"
)

// trySimulate implements SimulationController(f) + SolveBySimulation(f)
// from Algorithm 1. Given a residual component, it recovers the
// corresponding sub-circuit through the clause->gate map built in Phase 1,
// classifies sub-circuit inputs into free and decided ones and gates into
// plain and checking gates, and — when the dynamic controller enables
// simulation — counts the component's models as the number of *consistent
// patterns* (Proposition 1) with 64-way bit-parallel simulation.
//
// It returns (count, true) when simulation was performed, (nil, false)
// when the controller chose the DPLL path, and (nil, true) when the
// solver was cancelled mid-simulation (s.aborted is set; callers must
// not cache or use the nil count).
func (s *Solver) trySimulate(comp *component) (*big.Int, bool) {
	if !s.cfg.EnableSim || s.f.Circ == nil {
		return nil, false
	}
	// Cheap size pre-check: a gate contributes at least two clauses or
	// one native parity row, so a component whose clauses and rows
	// cannot reach the minimum sub-circuit size skips the gate mapping
	// entirely. (This fires for nearly every small residual component,
	// so its trace events are sampled; the later rejections are not.)
	if len(comp.clauses)+2*len(comp.xors) < 2*s.cfg.MinSimGates {
		return s.rejectSim(true, "few_clauses", 0, 0, 0)
	}
	circ := s.f.Circ

	// 1. Map the component's clauses and parity rows back to gates
	// (unique node ids).
	s.stamp++
	stamp := s.stamp
	for _, v := range comp.vars {
		s.varSeen[v] = stamp
	}
	var gates []int32
	for _, ci := range comp.clauses {
		g := s.f.GateOfClause[ci]
		if g < 0 {
			// A clause with no gate (e.g. an assumption) cannot be
			// represented by circuit structure.
			return s.rejectSim(false, "unmapped_clause", len(gates), 0, 0)
		}
		if s.gateSeen[g] != stamp {
			s.gateSeen[g] = stamp
			gates = append(gates, g)
		}
		s.compClSet[ci] = stamp
	}
	for _, xi := range comp.xors {
		g := s.f.GateOfXor[xi]
		if g < 0 {
			// A parity row with no gate (parsed x-line, streamlining hash
			// row) has no circuit structure to simulate.
			return s.rejectSim(false, "unmapped_clause", len(gates), 0, 0)
		}
		if s.gateSeen[g] != stamp {
			s.gateSeen[g] = stamp
			gates = append(gates, g)
		}
		s.compXorSet[xi] = stamp
	}

	// 2. Completeness guard: every still-active clause and parity row of
	// every mapped gate must belong to this component, otherwise
	// simulating the full gate consistency would over-constrain the
	// component. (For the standard encodings this holds by construction;
	// the guard keeps the counter sound for any clause layout.)
	for _, g := range gates {
		for _, ci := range s.f.ClausesOfGate[g] {
			if s.nTrue[ci] == 0 && s.compClSet[ci] != stamp {
				return s.rejectSim(false, "foreign_clause", len(gates), 0, 0)
			}
		}
		for _, xi := range s.f.XorsOfGate[g] {
			if s.xorFree[xi] > 0 && s.compXorSet[xi] != stamp {
				return s.rejectSim(false, "foreign_clause", len(gates), 0, 0)
			}
		}
	}

	// 3. Collect sub-circuit inputs: fanins of mapped gates that are not
	// themselves mapped gates. Inputs whose variables are decided become
	// constant vectors. Free inputs that belong to the component are
	// enumerated. A free fanin *outside* the component (its variable
	// appears in no active clause of this component) cannot influence
	// consistency — the residual clauses never mention it — so it is
	// pinned to 0 rather than enumerated, which would double-count.
	var freeInputs, pinnedInputs []int32
	for _, g := range gates {
		for _, fn := range circ.Nodes[g].Fanins {
			fn32 := int32(fn)
			if s.gateSeen[fn32] == stamp || s.nodeSeen[fn32] == stamp {
				continue
			}
			s.nodeSeen[fn32] = stamp
			v := s.f.VarOfNode[fn32]
			if v == 0 {
				// A fanin without a CNF variable cannot occur for encoded
				// cones; refuse rather than guess.
				return s.rejectSim(false, "unmapped_fanin", len(gates), 0, 0)
			}
			switch {
			case s.assign[v] != unassigned:
				pinnedInputs = append(pinnedInputs, fn32)
			case s.varSeen[v] == stamp:
				freeInputs = append(freeInputs, fn32)
			default:
				pinnedInputs = append(pinnedInputs, fn32) // irrelevant free fanin
			}
		}
	}

	// 4. Dynamic controller (Section IV-B3): density score
	// alpha * |gates| / K^2, with a hard cap on K so the 2^K enumeration
	// stays tractable.
	k := len(freeInputs)
	if k > s.cfg.MaxSimVars || k > 62 {
		return s.rejectSim(false, "too_many_inputs", len(gates), k, 0)
	}
	if len(gates) < s.cfg.MinSimGates {
		return s.rejectSim(false, "few_gates", len(gates), k, 0)
	}
	density := 0.0
	if k > 0 {
		density = s.cfg.Alpha * float64(len(gates)) / float64(k*k)
		if density <= 1 {
			return s.rejectSim(false, "low_density", len(gates), k, density)
		}
	}

	// 5. Simulate: compile the component to a fused instruction tape and
	// count consistent patterns with the shared kernel. Gates in ascending
	// node-id order are in topological order (a circuit invariant checked
	// by Validate at encode time). Pinned inputs (decided variables, plus
	// free-but-irrelevant fanins, which stay at 0) become complement edges
	// off the constant-zero slot; gates whose CNF variable is decided fold
	// into AND/AND-NOT check instructions on the program's consistency
	// accumulator (complement edges pick the polarity, so a decided
	// Buf/Not chain costs no extra instructions).
	sort.Slice(gates, func(i, j int) bool { return gates[i] < gates[j] })
	pinned := make([]sim.PinnedInput, len(pinnedInputs))
	for i, n := range pinnedInputs {
		pinned[i] = sim.PinnedInput{Node: n, Val: s.assign[s.f.VarOfNode[n]] == 1}
	}
	check := func(g int32) int8 {
		switch s.assign[s.f.VarOfNode[g]] {
		case 1: // checking gate decided TRUE
			return 1
		case 0: // checking gate decided FALSE
			return -1
		}
		return 0
	}
	start := time.Now()
	prog, err := sim.CompileComponent(circ, gates, freeInputs, pinned, check)
	if err != nil {
		// Structure the recovery above should have rejected; fall back to
		// DPLL rather than guess.
		return s.rejectSim(false, "compile_failed", len(gates), k, density)
	}
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	s.stats.SimPatterns += uint64(1) << uint(k)
	counts, err := prog.CountOnes(ctx, 1)
	if err != nil {
		s.aborted = true
		s.abortErr = err
		return nil, true
	}
	count := counts[0]
	dur := time.Since(start)
	hSimSeconds.Observe(dur.Seconds())
	s.stats.SimCalls++
	if s.tr != nil {
		s.tr.Event(s.span, "sim_decision", obs.Fields{
			"accepted": true, "gates": len(gates), "k": k, "density": density,
			"count": count, "sim_us": dur.Microseconds(),
		})
	}
	return new(big.Int).SetUint64(count), true
}
