package counter

import (
	"math/big"
	"math/bits"
	"sort"
	"time"

	"vacsem/internal/circuit"
	"vacsem/internal/obs"
)

// trySimulate implements SimulationController(f) + SolveBySimulation(f)
// from Algorithm 1. Given a residual component, it recovers the
// corresponding sub-circuit through the clause->gate map built in Phase 1,
// classifies sub-circuit inputs into free and decided ones and gates into
// plain and checking gates, and — when the dynamic controller enables
// simulation — counts the component's models as the number of *consistent
// patterns* (Proposition 1) with 64-way bit-parallel simulation.
//
// It returns (count, true) when simulation was performed, (nil, false)
// when the controller chose the DPLL path.
func (s *Solver) trySimulate(comp *component) (*big.Int, bool) {
	if !s.cfg.EnableSim || s.f.Circ == nil {
		return nil, false
	}
	// Cheap size pre-check: every gate contributes at least two clauses,
	// so a component with fewer than 2*MinSimGates clauses cannot reach
	// the minimum sub-circuit size — skip the gate mapping entirely.
	// (This fires for nearly every small residual component, so its
	// trace events are sampled; the later rejections are not.)
	if len(comp.clauses) < 2*s.cfg.MinSimGates {
		return s.rejectSim(true, "few_clauses", 0, 0, 0)
	}
	circ := s.f.Circ

	// 1. Map the component's clauses back to gates (unique node ids).
	s.stamp++
	stamp := s.stamp
	for _, v := range comp.vars {
		s.varSeen[v] = stamp
	}
	var gates []int32
	for _, ci := range comp.clauses {
		g := s.f.GateOfClause[ci]
		if g < 0 {
			// A clause with no gate (e.g. an assumption) cannot be
			// represented by circuit structure.
			return s.rejectSim(false, "unmapped_clause", len(gates), 0, 0)
		}
		if s.gateSeen[g] != stamp {
			s.gateSeen[g] = stamp
			gates = append(gates, g)
		}
		s.compClSet[ci] = stamp
	}

	// 2. Completeness guard: every still-active clause of every mapped
	// gate must belong to this component, otherwise simulating the full
	// gate consistency would over-constrain the component. (For the
	// standard encodings this holds by construction; the guard keeps the
	// counter sound for any clause layout.)
	for _, g := range gates {
		for _, ci := range s.f.ClausesOfGate[g] {
			if s.nTrue[ci] == 0 && s.compClSet[ci] != stamp {
				return s.rejectSim(false, "foreign_clause", len(gates), 0, 0)
			}
		}
	}

	// 3. Collect sub-circuit inputs: fanins of mapped gates that are not
	// themselves mapped gates. Inputs whose variables are decided become
	// constant vectors. Free inputs that belong to the component are
	// enumerated. A free fanin *outside* the component (its variable
	// appears in no active clause of this component) cannot influence
	// consistency — the residual clauses never mention it — so it is
	// pinned to 0 rather than enumerated, which would double-count.
	var freeInputs, pinnedInputs []int32
	for _, g := range gates {
		for _, fn := range circ.Nodes[g].Fanins {
			fn32 := int32(fn)
			if s.gateSeen[fn32] == stamp || s.nodeSeen[fn32] == stamp {
				continue
			}
			s.nodeSeen[fn32] = stamp
			v := s.f.VarOfNode[fn32]
			if v == 0 {
				// A fanin without a CNF variable cannot occur for encoded
				// cones; refuse rather than guess.
				return s.rejectSim(false, "unmapped_fanin", len(gates), 0, 0)
			}
			switch {
			case s.assign[v] != unassigned:
				pinnedInputs = append(pinnedInputs, fn32)
			case s.varSeen[v] == stamp:
				freeInputs = append(freeInputs, fn32)
			default:
				pinnedInputs = append(pinnedInputs, fn32) // irrelevant free fanin
			}
		}
	}

	// 4. Dynamic controller (Section IV-B3): density score
	// alpha * |gates| / K^2, with a hard cap on K so the 2^K enumeration
	// stays tractable.
	k := len(freeInputs)
	if k > s.cfg.MaxSimVars || k > 62 {
		return s.rejectSim(false, "too_many_inputs", len(gates), k, 0)
	}
	if len(gates) < s.cfg.MinSimGates {
		return s.rejectSim(false, "few_gates", len(gates), k, 0)
	}
	density := 0.0
	if k > 0 {
		density = s.cfg.Alpha * float64(len(gates)) / float64(k*k)
		if density <= 1 {
			return s.rejectSim(false, "low_density", len(gates), k, density)
		}
	}

	// 5. Simulate. Gates in ascending node-id order are in topological
	// order (a circuit invariant checked by Validate at encode time).
	sort.Slice(gates, func(i, j int) bool { return gates[i] < gates[j] })
	start := time.Now()
	count := s.simulateComponent(gates, freeInputs, pinnedInputs)
	dur := time.Since(start)
	hSimSeconds.Observe(dur.Seconds())
	s.stats.SimCalls++
	if s.tr != nil {
		s.tr.Event(s.span, "sim_decision", obs.Fields{
			"accepted": true, "gates": len(gates), "k": k, "density": density,
			"count": count, "sim_us": dur.Microseconds(),
		})
	}
	return new(big.Int).SetUint64(count), true
}

// simulateComponent enumerates all 2^K patterns of the free inputs in
// 64-pattern blocks and counts consistent patterns: patterns under which
// every checking gate's simulated value matches its decided CNF value.
// Pinned inputs (decided variables, plus free-but-irrelevant fanins) hold
// constant vectors.
func (s *Solver) simulateComponent(gates, freeInputs, pinnedInputs []int32) uint64 {
	circ := s.f.Circ
	k := len(freeInputs)
	total := uint64(1) << uint(k)
	blocks := (total + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	s.stats.SimPatterns += total

	// Pinned inputs hold constant vectors across all blocks.
	for _, n := range pinnedInputs {
		v := s.f.VarOfNode[n]
		if s.assign[v] == 1 {
			s.simVals[n] = ^uint64(0)
		} else {
			s.simVals[n] = 0
		}
	}

	var args [3]uint64
	var count uint64
	for b := uint64(0); b < blocks; b++ {
		for i, n := range freeInputs {
			s.simVals[n] = inputWord(i, b)
		}
		acc := ^uint64(0)
		for _, g := range gates {
			nd := &circ.Nodes[g]
			var w uint64
			switch nd.Kind {
			case circuit.And:
				w = s.simVals[nd.Fanins[0]] & s.simVals[nd.Fanins[1]]
			case circuit.Or:
				w = s.simVals[nd.Fanins[0]] | s.simVals[nd.Fanins[1]]
			case circuit.Xor:
				w = s.simVals[nd.Fanins[0]] ^ s.simVals[nd.Fanins[1]]
			case circuit.Not:
				w = ^s.simVals[nd.Fanins[0]]
			default:
				a := args[:len(nd.Fanins)]
				for j, f := range nd.Fanins {
					a[j] = s.simVals[f]
				}
				w = nd.Kind.EvalWord(a)
			}
			s.simVals[g] = w
			v := s.f.VarOfNode[g]
			switch s.assign[v] {
			case 1: // checking gate decided TRUE
				acc &= w
			case 0: // checking gate decided FALSE
				acc &= ^w
			}
		}
		if rem := total - b*64; rem < 64 {
			acc &= (uint64(1) << rem) - 1
		}
		count += uint64(bits.OnesCount64(acc))
	}
	return count
}

// inputWord mirrors sim.InputWord without importing the package (the
// counter must stay decoupled from the simulator's public surface).
func inputWord(i int, block uint64) uint64 {
	var base = [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	if i < 6 {
		return base[i]
	}
	if block>>(uint(i)-6)&1 == 1 {
		return ^uint64(0)
	}
	return 0
}
