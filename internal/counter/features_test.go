package counter

// Tests of the engine features added on top of the basic DPLL counter:
// clause learning, implicit BCP, the cache bound and the controller's
// size thresholds — each checked for exactness against brute force and
// for the intended behavioural effect.

import (
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/gen"
	"vacsem/internal/testutil"
)

func TestLearningKeepsCountsExact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := testutil.RandomCircuit(4+int(seed%7), 10+int(seed*5%50), 1, seed+7777)
		want := testutil.CountOnesBrute(c)[0]
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{},
			{DisableLearning: true},
			{DisableIBCP: true},
			{DisableLearning: true, DisableIBCP: true},
			{EnableSim: true, MinSimGates: 1, Alpha: 50},
		} {
			s := New(f, cfg)
			got, err := s.Count()
			if err != nil {
				t.Fatal(err)
			}
			extra := c.NumInputs() - f.NumEncodedInputs()
			got = new(big.Int).Lsh(got, uint(extra))
			if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
				t.Fatalf("seed %d cfg %+v: %v != %d", seed, cfg, got, want)
			}
		}
	}
}

func TestLearningActuallyLearns(t *testing.T) {
	// A MED high-bit style instance with deep UNSAT structure: the
	// solver must record learned clauses.
	exact := gen.RippleCarryAdder(8)
	cc := circuit.New("pair")
	ins := make([]int, 16)
	for i := range ins {
		ins[i] = cc.AddInput("")
	}
	o1 := circuit.Append(cc, exact, ins)
	o2 := circuit.Append(cc, exact, ins)
	// Assert two provably-equal outputs differ: UNSAT with nontrivial
	// proof (the solver cannot see the equality structurally after
	// encoding).
	x := cc.AddGate(circuit.Xor, o1[7], o2[7])
	cc.AddOutput(x, "f")
	f, err := cnf.Encode(cc)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Sign() != 0 {
		t.Fatalf("equal-output miter count = %v, want 0", n)
	}
	if s.Stats().Learned == 0 && s.Stats().FailedLiterals == 0 {
		t.Error("no learning and no failed literals on an UNSAT instance")
	}
}

func TestLearnedClausesSurviveRecount(t *testing.T) {
	c := testutil.RandomCircuit(10, 60, 1, 321)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	a, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	firstLearned := s.learned
	b, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Fatalf("recount with retained learned clauses differs: %v vs %v", a, b)
	}
	if s.learned < firstLearned {
		t.Error("learned clauses were dropped by reset")
	}
}

func TestCacheBoundEviction(t *testing.T) {
	c := testutil.RandomCircuit(12, 80, 1, 99)
	want := testutil.CountOnesBrute(c)[0]
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny cache bound forces constant eviction; counts stay exact.
	// The bound is enforced per shard (rounded up), so the effective
	// global ceiling is at most one entry per shard here.
	s := New(f, Config{MaxCacheEntries: 4})
	got, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	extra := c.NumInputs() - f.NumEncodedInputs()
	got = new(big.Int).Lsh(got, uint(extra))
	if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
		t.Fatalf("bounded cache broke exactness: %v != %d", got, want)
	}
	if n := s.cache.Len(); n > cacheShards {
		t.Errorf("cache grew past bound: %d entries", n)
	}
}

func TestMinSimGatesGatesTheController(t *testing.T) {
	// A 10-gate dense circuit: with MinSimGates above the size the
	// simulator must never fire; below, it must.
	c := circuit.New("dense")
	a := c.AddInput("a")
	b := c.AddInput("b")
	cur := c.AddGate(circuit.Xor, a, b)
	for i := 0; i < 9; i++ {
		cur = c.AddGate(circuit.Xor, cur, a)
	}
	c.AddOutput(cur, "y")
	// The blasted encoding keeps the XOR gates as clause sets, so the
	// component actually reaches the simulation controller (natively the
	// Gauss pass counts this pure parity chain in closed form first).
	f, err := cnf.EncodeBlasted(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{EnableSim: true, Alpha: 1000, MinSimGates: 50})
	if _, err := s.Count(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().SimCalls != 0 {
		t.Errorf("simulation fired below MinSimGates: %+v", s.Stats())
	}
	s2 := New(f, Config{EnableSim: true, Alpha: 1000, MinSimGates: 1, DisableIBCP: true, DisableLearning: true})
	if _, err := s2.Count(); err != nil {
		t.Fatal(err)
	}
	if s2.Stats().SimCalls == 0 {
		t.Errorf("simulation never fired with MinSimGates=1: %+v", s2.Stats())
	}
}

func TestSatisfiableWithAllFeatureCombos(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := testutil.RandomCircuit(5+int(seed%5), 15+int(seed*3%30), 1, seed+4242)
		want := testutil.CountOnesBrute(c)[0] > 0
		f, err := cnf.Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{},
			{DisableIBCP: true, DisableLearning: true},
			{EnableSim: true, MinSimGates: 1, Alpha: 20},
		} {
			s := New(f, cfg)
			got, err := s.Satisfiable()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d cfg %+v: Satisfiable=%v, want %v", seed, cfg, got, want)
			}
		}
	}
}
