package counter

// Tests of the pure-CNF counting path (formulas with no circuit
// metadata, e.g. parsed from DIMACS): random k-CNF formulas are counted
// and cross-checked against truth-table enumeration, and structural
// edge cases (empty formula, empty clause, duplicate literals,
// tautological clauses) are pinned down.

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vacsem/internal/cnf"
)

// bruteCNF counts models by enumeration.
func bruteCNF(f *cnf.Formula) uint64 {
	var count uint64
patterns:
	for x := uint64(0); x < 1<<uint(f.NumVars); x++ {
		for _, cl := range f.Clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				if (l > 0) == (x>>(uint(v)-1)&1 == 1) {
					sat = true
					break
				}
			}
			if !sat {
				continue patterns
			}
		}
		for _, xr := range f.Xors {
			par := false
			for _, v := range xr.Vars {
				if x>>(uint(v)-1)&1 == 1 {
					par = !par
				}
			}
			if par != xr.Rhs {
				continue patterns
			}
		}
		count++
	}
	return count
}

// randomCNF builds a random formula in DIMACS text then parses it, so
// the DIMACS path is exercised too.
func randomCNF(nVars, nClauses, maxLen int, seed int64) (*cnf.Formula, error) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", nVars, nClauses)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(maxLen)
		for j := 0; j < k; j++ {
			v := 1 + rng.Intn(nVars)
			if rng.Intn(2) == 0 {
				v = -v
			}
			fmt.Fprintf(&b, "%d ", v)
		}
		b.WriteString("0\n")
	}
	return cnf.ParseDIMACS(strings.NewReader(b.String()))
}

func TestDIMACSCountMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		nVars := 3 + int(seed%10)
		nClauses := 2 + int(seed*3%25)
		f, err := randomCNF(nVars, nClauses, 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteCNF(f)
		for name, cfg := range map[string]Config{
			"default": {},
			"noibcp":  {DisableIBCP: true},
			"nocache": {DisableCache: true},
			"sim":     {EnableSim: true}, // must gracefully refuse (no circuit)
		} {
			s := New(f, cfg)
			got, err := s.Count()
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
				t.Fatalf("seed %d cfg %s: %v != %d", seed, name, got, want)
			}
		}
	}
}

func TestDIMACSSatisfiableMatchesCount(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f, err := randomCNF(4+int(seed%8), 5+int(seed*7%40), 3, seed+1000)
		if err != nil {
			t.Fatal(err)
		}
		s := New(f, Config{})
		n, err := s.Count()
		if err != nil {
			t.Fatal(err)
		}
		sat, err := s.Satisfiable()
		if err != nil {
			t.Fatal(err)
		}
		if sat != (n.Sign() > 0) {
			t.Fatalf("seed %d: Satisfiable=%v but count=%v", seed, sat, n)
		}
	}
}

func TestEmptyFormula(t *testing.T) {
	f := &cnf.Formula{NumVars: 3}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("empty formula count = %v, want 8", n)
	}
	sat, err := s.Satisfiable()
	if err != nil || !sat {
		t.Errorf("empty formula must be satisfiable")
	}
}

func TestEmptyClause(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 2 1\n0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Sign() != 0 {
		t.Errorf("empty clause count = %v, want 0", n)
	}
	if sat, _ := s.Satisfiable(); sat {
		t.Error("empty clause must be unsatisfiable")
	}
}

func TestContradictoryUnits(t *testing.T) {
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Sign() != 0 {
		t.Errorf("x & ~x count = %v", n)
	}
}

func TestDuplicateLiteralsInClause(t *testing.T) {
	// (x | x | y) behaves like (x | y).
	f, err := cnf.ParseDIMACS(strings.NewReader("p cnf 2 1\n1 1 2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("count = %v, want 3", n)
	}
}

func TestXorChainCNF(t *testing.T) {
	// Hand-written XOR constraint x1^x2^x3 = 1 has 4 models.
	src := `p cnf 3 4
1 2 3 0
1 -2 -3 0
-1 2 -3 0
-1 -2 3 0
`
	f, err := cnf.ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{})
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("xor chain count = %v, want 4", n)
	}
}

// TestQuickRandom3CNF is a property-based harness over 3-CNF instances:
// the count never exceeds 2^n and equals brute force.
func TestQuickRandom3CNF(t *testing.T) {
	check := func(seedRaw int64) bool {
		seed := seedRaw % 100000
		f, err := randomCNF(6, 12, 3, seed)
		if err != nil {
			return false
		}
		s := New(f, Config{})
		got, err := s.Count()
		if err != nil {
			return false
		}
		return got.Cmp(new(big.Int).SetUint64(bruteCNF(f))) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
