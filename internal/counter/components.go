package counter

import (
	"encoding/binary"
	"math/big"
	"slices"
	"sort"
)

// component is a maximal set of free variables connected through active
// (not-yet-satisfied) clauses and active parity rows, together with
// those constraints. Components share no variables, so their counts
// multiply (Algorithm 1, line 11).
type component struct {
	vars    []int32 // free variables, sorted
	clauses []int32 // active clause indices, sorted
	xors    []int32 // active xor row indices, sorted
}

// findComponents partitions the given candidate variables into connected
// components of the residual formula. Variables that are unassigned but
// appear in no active clause are unconstrained; their number is returned
// as freeCount (each contributes a factor of 2).
func (s *Solver) findComponents(vars []int32) (comps []*component, freeCount int) {
	s.stamp++
	stamp := s.stamp
	var queue []int32
	for _, v0 := range vars {
		if s.assign[v0] != unassigned || s.varSeen[v0] == stamp {
			continue
		}
		// Does v0 touch any active clause?
		if !s.hasActiveClause(v0) {
			s.varSeen[v0] = stamp
			freeCount++
			continue
		}
		comp := &component{}
		s.varSeen[v0] = stamp
		queue = append(queue[:0], v0)
		comp.vars = append(comp.vars, v0)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for pass := 0; pass < 2; pass++ {
				var li int32
				if pass == 0 {
					li = 2 * v
				} else {
					li = 2*v + 1
				}
				for _, ci := range s.occ[li] {
					// Learned clauses are implied by the original formula:
					// they never constrain counts, so they stay invisible
					// to component analysis.
					if ci >= s.nOrig || s.nTrue[ci] != 0 || s.clSeen[ci] == stamp {
						continue
					}
					s.clSeen[ci] = stamp
					comp.clauses = append(comp.clauses, ci)
					for _, l := range s.clauses[ci] {
						w := litVar(l)
						if s.assign[w] != unassigned || s.varSeen[w] == stamp {
							continue
						}
						s.varSeen[w] = stamp
						comp.vars = append(comp.vars, w)
						queue = append(queue, w)
					}
				}
			}
			for _, xi := range s.xorOcc[v] {
				// A fully assigned row constrains nothing further; rows
				// with free variables connect them like clauses do.
				if s.xorFree[xi] == 0 || s.xorSeen[xi] == stamp {
					continue
				}
				s.xorSeen[xi] = stamp
				comp.xors = append(comp.xors, xi)
				for _, w := range s.xors[xi].Vars {
					if s.assign[w] != unassigned || s.varSeen[w] == stamp {
						continue
					}
					s.varSeen[w] = stamp
					comp.vars = append(comp.vars, w)
					queue = append(queue, w)
				}
			}
		}
		sort.Slice(comp.vars, func(i, j int) bool { return comp.vars[i] < comp.vars[j] })
		sort.Slice(comp.clauses, func(i, j int) bool { return comp.clauses[i] < comp.clauses[j] })
		sort.Slice(comp.xors, func(i, j int) bool { return comp.xors[i] < comp.xors[j] })
		comps = append(comps, comp)
	}
	return comps, freeCount
}

func (s *Solver) hasActiveClause(v int32) bool {
	for _, ci := range s.occ[2*v] {
		if ci < s.nOrig && s.nTrue[ci] == 0 {
			return true
		}
	}
	for _, ci := range s.occ[2*v+1] {
		if ci < s.nOrig && s.nTrue[ci] == 0 {
			return true
		}
	}
	return s.hasActiveXor(v)
}

// cacheKey canonicalizes the residual component into a solver-independent
// content key: the component's variables are remapped to dense local
// indices in their sorted order, every active clause is reduced to its
// free literals (falsified literals drop; a satisfied clause is not
// active) encoded over the local indices and sorted, and the clause
// tuples are sorted lexicographically before being serialized as uvarint
// streams. Two equal keys denote residual subformulas identical up to
// variable renaming, and model counts are invariant under renaming — so
// caching on this key is sound, including across different solvers'
// formulas (the shared cross-sub-miter cache). Clause ids never enter
// the key, so the historic wide-clause position-mask aliasing cannot
// recur by construction.
//
// Active parity rows are serialized into a second section after the
// clause tuples: per row a header uvarint(len<<1 | rhs) — rhs being the
// row's *effective* right-hand side under the current assignment — then
// the sorted local ranks of its free variables, rows sorted
// lexicographically. The xor section is always appended, prefixed with
// the row count, so a CNF-only residual and a CNF+XOR residual over the
// same clause tuples can never alias.
func (s *Solver) cacheKey(comp *component) string {
	for i, v := range comp.vars {
		s.varRank[v] = int32(i)
	}
	lits := s.keyLits[:0]
	cls := s.keyCls[:0]
	for _, ci := range comp.clauses {
		start := len(lits)
		for _, l := range s.clauses[ci] {
			v := litVar(l)
			if s.assign[v] != unassigned {
				continue
			}
			code := s.varRank[v] << 1
			if l < 0 {
				code |= 1
			}
			lits = append(lits, code)
		}
		seg := lits[start:len(lits):len(lits)]
		slices.Sort(seg)
		cls = append(cls, seg)
	}
	sort.Slice(cls, func(i, j int) bool { return slices.Compare(cls[i], cls[j]) < 0 })
	buf := s.keyBuf[:0]
	for _, seg := range cls {
		buf = binary.AppendUvarint(buf, uint64(len(seg)))
		for _, code := range seg {
			buf = binary.AppendUvarint(buf, uint64(code))
		}
	}
	// XOR section: canonical rows (free-variable ranks + effective rhs),
	// sorted, always present so clause-only keys cannot alias mixed ones.
	xrs := make([][]int32, 0, len(comp.xors))
	for _, xi := range comp.xors {
		start := len(lits)
		for _, v := range s.xors[xi].Vars {
			if s.assign[v] != unassigned {
				continue
			}
			lits = append(lits, s.varRank[v]) // row Vars sorted => ranks sorted
		}
		seg := lits[start:len(lits):len(lits)]
		hdr := int32(len(seg)) << 1
		if s.xors[xi].Rhs != (s.xorPar[xi] == 1) {
			hdr |= 1
		}
		xrs = append(xrs, append([]int32{hdr}, seg...))
	}
	sort.Slice(xrs, func(i, j int) bool { return slices.Compare(xrs[i], xrs[j]) < 0 })
	buf = binary.AppendUvarint(buf, uint64(len(xrs)))
	for _, seg := range xrs {
		for _, code := range seg {
			buf = binary.AppendUvarint(buf, uint64(code))
		}
	}
	s.keyLits, s.keyCls, s.keyBuf = lits[:0], cls[:0], buf
	return string(buf)
}

// solveComponent counts the models of one residual component, consulting
// the cache and the simulation controller first (Algorithm 1 lines 1-2),
// then falling back to DPLL branching (lines 3-14). It returns nil when
// the time limit expired.
func (s *Solver) solveComponent(comp *component) *big.Int {
	if s.checkAbort() {
		return nil
	}
	s.stats.Components++
	if s.tr != nil {
		s.traceComponent(comp)
	}
	var key string
	if s.cache != nil {
		key = s.cacheKey(comp)
		if v, cross, ok := s.cache.Lookup(key, s.cfg.CacheOwner); ok {
			s.stats.CacheHits++
			if cross {
				s.stats.CacheCrossHits++
			}
			if s.tr != nil {
				s.traceCache("hit")
			}
			return v
		}
	}
	if cnt, ok := s.tryGauss(comp); ok {
		if cnt == nil { // cancelled during the recursive solve
			return nil
		}
		s.cacheStore(key, cnt)
		return cnt
	}
	if cnt, ok := s.trySimulate(comp); ok {
		if cnt == nil { // cancelled mid-simulation
			return nil
		}
		s.cacheStore(key, cnt)
		return cnt
	}
	cnt := s.branchCount(comp)
	if cnt != nil {
		s.cacheStore(key, cnt)
	}
	return cnt
}

// cacheStore memoizes a component count. A full cache shard evicts per
// entry (2-random) rather than clearing wholesale; the eviction count is
// tracked separately from stores, so the stats distinguish cache churn
// from growth. cnt must not be mutated after the call.
func (s *Solver) cacheStore(key string, cnt *big.Int) {
	if s.cache == nil {
		return
	}
	evicted := s.cache.Store(key, cnt, s.cfg.CacheOwner)
	s.stats.CacheStores++
	s.stats.CacheEvictions += uint64(evicted)
	if s.tr != nil {
		s.traceCache("store")
	}
}

// branchCount implements the DPLL part: pick a decision variable, count
// both phases, decompose the simplified formula, and sum.
func (s *Solver) branchCount(comp *component) *big.Int {
	v := s.pickVar(comp)
	s.stats.Decisions++
	total := big.NewInt(0)
	for _, lit := range [2]int32{v, -v} {
		mark := len(s.trail)
		s.curLevel++
		s.propQ = append(s.propQ, propItem{lit, reasonDecision})
		if s.propagate() && (s.cfg.DisableIBCP || s.failedLiteralFixpoint(comp.vars)) {
			sub := big.NewInt(1)
			comps, freeCount := s.findComponents(comp.vars)
			sub.Lsh(sub, uint(freeCount))
			for _, sc := range comps {
				r := s.solveComponent(sc)
				if r == nil {
					s.undoTo(mark)
					s.curLevel--
					return nil
				}
				sub.Mul(sub, r)
				if sub.Sign() == 0 {
					break
				}
			}
			total.Add(total, sub)
		}
		s.undoTo(mark)
		s.curLevel--
	}
	return total
}

// pickVar returns the component variable appearing in the most active
// clauses, weighting short clauses higher (a VSADS-flavoured static score
// recomputed per component, which adapts dynamically as the residual
// formula shrinks).
func (s *Solver) pickVar(comp *component) int32 {
	best := comp.vars[0]
	bestScore := -1
	// Score per variable: sum over active clauses of 1, weighted 4 for
	// binary residual clauses (they propagate immediately when decided).
	score := make(map[int32]int, len(comp.vars))
	for _, ci := range comp.clauses {
		w := 1
		if int32(len(s.clauses[ci]))-s.nFalse[ci] == 2 {
			w = 4
		}
		for _, l := range s.clauses[ci] {
			x := litVar(l)
			if s.assign[x] == unassigned {
				score[x] += w
			}
		}
	}
	// Parity rows score like clauses: a row down to two free variables
	// propagates immediately when one of them is decided.
	for _, xi := range comp.xors {
		w := 2
		if s.xorFree[xi] == 2 {
			w = 4
		}
		for _, l := range s.xors[xi].Vars {
			if s.assign[l] == unassigned {
				score[l] += w
			}
		}
	}
	for _, v := range comp.vars {
		if sc := score[v]; sc > bestScore {
			bestScore = sc
			best = v
		}
	}
	return best
}
