package counter

import (
	"encoding/binary"
	"math/big"
	"sort"
)

// component is a maximal set of free variables connected through active
// (not-yet-satisfied) clauses, together with those clauses. Components
// share no variables, so their counts multiply (Algorithm 1, line 11).
type component struct {
	vars    []int32 // free variables, sorted
	clauses []int32 // active clause indices, sorted
}

// findComponents partitions the given candidate variables into connected
// components of the residual formula. Variables that are unassigned but
// appear in no active clause are unconstrained; their number is returned
// as freeCount (each contributes a factor of 2).
func (s *Solver) findComponents(vars []int32) (comps []*component, freeCount int) {
	s.stamp++
	stamp := s.stamp
	var queue []int32
	for _, v0 := range vars {
		if s.assign[v0] != unassigned || s.varSeen[v0] == stamp {
			continue
		}
		// Does v0 touch any active clause?
		if !s.hasActiveClause(v0) {
			s.varSeen[v0] = stamp
			freeCount++
			continue
		}
		comp := &component{}
		s.varSeen[v0] = stamp
		queue = append(queue[:0], v0)
		comp.vars = append(comp.vars, v0)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for pass := 0; pass < 2; pass++ {
				var li int32
				if pass == 0 {
					li = 2 * v
				} else {
					li = 2*v + 1
				}
				for _, ci := range s.occ[li] {
					// Learned clauses are implied by the original formula:
					// they never constrain counts, so they stay invisible
					// to component analysis.
					if ci >= s.nOrig || s.nTrue[ci] != 0 || s.clSeen[ci] == stamp {
						continue
					}
					s.clSeen[ci] = stamp
					comp.clauses = append(comp.clauses, ci)
					for _, l := range s.clauses[ci] {
						w := litVar(l)
						if s.assign[w] != unassigned || s.varSeen[w] == stamp {
							continue
						}
						s.varSeen[w] = stamp
						comp.vars = append(comp.vars, w)
						queue = append(queue, w)
					}
				}
			}
		}
		sort.Slice(comp.vars, func(i, j int) bool { return comp.vars[i] < comp.vars[j] })
		sort.Slice(comp.clauses, func(i, j int) bool { return comp.clauses[i] < comp.clauses[j] })
		comps = append(comps, comp)
	}
	return comps, freeCount
}

func (s *Solver) hasActiveClause(v int32) bool {
	for _, ci := range s.occ[2*v] {
		if ci < s.nOrig && s.nTrue[ci] == 0 {
			return true
		}
	}
	for _, ci := range s.occ[2*v+1] {
		if ci < s.nOrig && s.nTrue[ci] == 0 {
			return true
		}
	}
	return false
}

// cacheKey canonicalizes the residual component: the sorted active clause
// ids plus, per clause, the bitmask of literal positions still free. Two
// occurrences with equal keys denote literally identical residual
// subformulas, so caching on this key is sound.
func (s *Solver) cacheKey(comp *component) string {
	buf := make([]byte, 0, 5*len(comp.clauses))
	var tmp [4]byte
	for _, ci := range comp.clauses {
		binary.LittleEndian.PutUint32(tmp[:], uint32(ci))
		buf = append(buf, tmp[0], tmp[1], tmp[2], tmp[3])
		// One mask byte per 8 literal positions. The clause id fixes the
		// clause length, so the variable mask width stays self-delimiting.
		var mask byte
		for pos, l := range s.clauses[ci] {
			if pos > 0 && pos%8 == 0 {
				buf = append(buf, mask)
				mask = 0
			}
			if s.assign[litVar(l)] == unassigned {
				mask |= 1 << uint(pos%8)
			}
		}
		buf = append(buf, mask)
	}
	return string(buf)
}

// solveComponent counts the models of one residual component, consulting
// the cache and the simulation controller first (Algorithm 1 lines 1-2),
// then falling back to DPLL branching (lines 3-14). It returns nil when
// the time limit expired.
func (s *Solver) solveComponent(comp *component) *big.Int {
	if s.checkAbort() {
		return nil
	}
	s.stats.Components++
	if s.tr != nil {
		s.traceComponent(comp)
	}
	var key string
	if !s.cfg.DisableCache {
		key = s.cacheKey(comp)
		if v, ok := s.cache[key]; ok {
			s.stats.CacheHits++
			if s.tr != nil {
				s.traceCache("hit")
			}
			return v
		}
	}
	if cnt, ok := s.trySimulate(comp); ok {
		s.cacheStore(key, cnt)
		return cnt
	}
	cnt := s.branchCount(comp)
	if cnt != nil {
		s.cacheStore(key, cnt)
	}
	return cnt
}

// cacheStore memoizes a component count, clearing the cache wholesale
// when it outgrows the configured bound (exactness is unaffected).
func (s *Solver) cacheStore(key string, cnt *big.Int) {
	if s.cfg.DisableCache {
		return
	}
	if len(s.cache) >= s.cfg.MaxCacheEntries {
		s.cache = make(map[string]*big.Int)
	}
	s.cache[key] = cnt
	s.stats.CacheStores++
	if s.tr != nil {
		s.traceCache("store")
	}
}

// branchCount implements the DPLL part: pick a decision variable, count
// both phases, decompose the simplified formula, and sum.
func (s *Solver) branchCount(comp *component) *big.Int {
	v := s.pickVar(comp)
	s.stats.Decisions++
	total := big.NewInt(0)
	for _, lit := range [2]int32{v, -v} {
		mark := len(s.trail)
		s.curLevel++
		s.propQ = append(s.propQ, propItem{lit, reasonDecision})
		if s.propagate() && (s.cfg.DisableIBCP || s.failedLiteralFixpoint(comp.vars)) {
			sub := big.NewInt(1)
			comps, freeCount := s.findComponents(comp.vars)
			sub.Lsh(sub, uint(freeCount))
			for _, sc := range comps {
				r := s.solveComponent(sc)
				if r == nil {
					s.undoTo(mark)
					s.curLevel--
					return nil
				}
				sub.Mul(sub, r)
				if sub.Sign() == 0 {
					break
				}
			}
			total.Add(total, sub)
		}
		s.undoTo(mark)
		s.curLevel--
	}
	return total
}

// pickVar returns the component variable appearing in the most active
// clauses, weighting short clauses higher (a VSADS-flavoured static score
// recomputed per component, which adapts dynamically as the residual
// formula shrinks).
func (s *Solver) pickVar(comp *component) int32 {
	best := comp.vars[0]
	bestScore := -1
	// Score per variable: sum over active clauses of 1, weighted 4 for
	// binary residual clauses (they propagate immediately when decided).
	score := make(map[int32]int, len(comp.vars))
	for _, ci := range comp.clauses {
		w := 1
		if int32(len(s.clauses[ci]))-s.nFalse[ci] == 2 {
			w = 4
		}
		for _, l := range s.clauses[ci] {
			x := litVar(l)
			if s.assign[x] == unassigned {
				score[x] += w
			}
		}
	}
	for _, v := range comp.vars {
		if sc := score[v]; sc > bestScore {
			bestScore = sc
			best = v
		}
	}
	return best
}
