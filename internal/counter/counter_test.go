package counter

import (
	"math/big"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/cnf"
	"vacsem/internal/testutil"
)

// countWith encodes the single-output circuit and counts with the given
// config, returning the model count.
func countWith(t *testing.T, c *circuit.Circuit, cfg Config) *big.Int {
	t.Helper()
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	s := New(f, cfg)
	n, err := s.Count()
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	// Inputs of the circuit outside the output cone are not encoded;
	// account for them so the result ranges over all 2^I patterns.
	extra := c.NumInputs() - f.NumEncodedInputs()
	if extra < 0 {
		t.Fatalf("more encoded inputs than circuit inputs")
	}
	return new(big.Int).Lsh(n, uint(extra))
}

func singleOutput(c *circuit.Circuit, root int) *circuit.Circuit {
	c.SetOutputs(root)
	return c
}

func TestCountConstants(t *testing.T) {
	c := circuit.New("const")
	for i := 0; i < 3; i++ {
		c.AddInput("")
	}
	// output = const0: count 0
	c0 := c.Clone()
	c0.SetOutputs(0)
	if got := countWith(t, c0, Config{}); got.Sign() != 0 {
		t.Errorf("const0 count = %v, want 0", got)
	}
	// output = const1: count 2^3
	c1 := c.Clone()
	one := c1.Const1()
	c1.SetOutputs(one)
	if got := countWith(t, c1, Config{}); got.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("const1 count = %v, want 8", got)
	}
}

func TestCountSingleInput(t *testing.T) {
	c := circuit.New("wire")
	a := c.AddInput("a")
	c.SetOutputs(a)
	if got := countWith(t, c, Config{}); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("single input count = %v, want 1", got)
	}
}

func TestCountAndOrXor(t *testing.T) {
	mk := func(k circuit.Kind) *circuit.Circuit {
		c := circuit.New(k.String())
		a := c.AddInput("a")
		b := c.AddInput("b")
		g := c.AddGate(k, a, b)
		c.SetOutputs(g)
		return c
	}
	cases := []struct {
		k    circuit.Kind
		want int64
	}{
		{circuit.And, 1}, {circuit.Or, 3}, {circuit.Xor, 2},
		{circuit.Nand, 3}, {circuit.Nor, 1}, {circuit.Xnor, 2},
	}
	for _, tc := range cases {
		if got := countWith(t, mk(tc.k), Config{}); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("%s count = %v, want %d", tc.k, got, tc.want)
		}
	}
}

func TestCountMuxMaj(t *testing.T) {
	c := circuit.New("mux")
	s := c.AddInput("s")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.Mux, s, a, b)
	c.SetOutputs(g)
	// Mux(s,a,b) = 1 for: s=0,a=1 (2 b-values) + s=1,b=1 (2 a-values) = 4
	if got := countWith(t, c, Config{}); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("mux count = %v, want 4", got)
	}

	c2 := circuit.New("maj")
	x := c2.AddInput("x")
	y := c2.AddInput("y")
	z := c2.AddInput("z")
	m := c2.AddGate(circuit.Maj, x, y, z)
	c2.SetOutputs(m)
	if got := countWith(t, c2, Config{}); got.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("maj count = %v, want 4", got)
	}
}

func TestCountXorChain(t *testing.T) {
	// Parity of n inputs: exactly half the patterns are odd.
	for _, n := range []int{2, 5, 8, 13} {
		c := circuit.New("parity")
		prev := c.AddInput("")
		for i := 1; i < n; i++ {
			in := c.AddInput("")
			prev = c.AddGate(circuit.Xor, prev, in)
		}
		c.SetOutputs(prev)
		want := new(big.Int).Lsh(big.NewInt(1), uint(n-1))
		for _, cfg := range []Config{{}, {EnableSim: true}} {
			if got := countWith(t, c, cfg); got.Cmp(want) != 0 {
				t.Errorf("parity(%d) sim=%v count = %v, want %v", n, cfg.EnableSim, got, want)
			}
		}
	}
}

func TestCountDisconnectedComponents(t *testing.T) {
	// (a AND b) AND (c XOR d): components after top decomposition.
	c := circuit.New("two")
	a := c.AddInput("a")
	b := c.AddInput("b")
	x := c.AddInput("c")
	y := c.AddInput("d")
	g1 := c.AddGate(circuit.And, a, b)
	g2 := c.AddGate(circuit.Xor, x, y)
	out := c.AddGate(circuit.And, g1, g2)
	c.SetOutputs(out)
	if got := countWith(t, c, Config{}); got.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("count = %v, want 2", got)
	}
}

func TestCountUnusedInputsFactor(t *testing.T) {
	// 5 inputs, output depends on 2 of them: count must scale by 2^3.
	c := circuit.New("partial")
	a := c.AddInput("a")
	b := c.AddInput("b")
	for i := 0; i < 3; i++ {
		c.AddInput("")
	}
	g := c.AddGate(circuit.And, a, b)
	c.SetOutputs(g)
	if got := countWith(t, c, Config{}); got.Cmp(big.NewInt(8)) != 0 {
		t.Errorf("count = %v, want 8", got)
	}
}

// TestCountRandomVsBrute is the core soundness test: on hundreds of random
// circuits, the solver (DPLL-only, VACSEM with simulation, and VACSEM
// without cache) must match per-pattern brute force exactly.
func TestCountRandomVsBrute(t *testing.T) {
	configs := map[string]Config{
		"dpll":      {},
		"sim":       {EnableSim: true},
		"sim-alpha": {EnableSim: true, Alpha: 100, MinSimGates: 1}, // simulate aggressively
		"nocache":   {EnableSim: true, DisableCache: true},
	}
	for seed := int64(0); seed < 60; seed++ {
		nIn := 3 + int(seed%8)
		nGates := 5 + int(seed*7%40)
		c := testutil.RandomCircuit(nIn, nGates, 1, seed)
		want := testutil.CountOnesBrute(c)[0]
		for name, cfg := range configs {
			got := countWith(t, c, cfg)
			if got.Cmp(new(big.Int).SetUint64(want)) != 0 {
				t.Fatalf("seed %d cfg %s: count = %v, want %d\ncircuit: %v",
					seed, name, got, want, c.Stat())
			}
		}
	}
}

func TestCountStatsPlausible(t *testing.T) {
	c := testutil.RandomCircuit(8, 40, 1, 42)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{EnableSim: true, Alpha: 50})
	if _, err := s.Count(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Propagations == 0 {
		t.Errorf("expected propagations > 0")
	}
	if st.SimCalls == 0 && st.Decisions == 0 {
		t.Errorf("solver did no work at all: %+v", st)
	}
}

func TestCountRepeatable(t *testing.T) {
	c := testutil.RandomCircuit(9, 50, 1, 7)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{EnableSim: true})
	a, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) != 0 {
		t.Errorf("Count not repeatable: %v then %v", a, b)
	}
}

func TestCountTimeout(t *testing.T) {
	// A 24-input random circuit with many gates: 1ns limit must abort.
	c := testutil.RandomCircuit(24, 400, 1, 3)
	f, err := cnf.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := New(f, Config{TimeLimit: 1})
	if _, err := s.Count(); err != ErrTimeout {
		// The circuit might still solve instantly via propagation; allow
		// success but flag unexpected errors.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestLitIndex(t *testing.T) {
	if litIndex(3) != 6 || litIndex(-3) != 7 {
		t.Errorf("litIndex broken: %d %d", litIndex(3), litIndex(-3))
	}
	if litVar(-9) != 9 || litVar(9) != 9 {
		t.Errorf("litVar broken")
	}
}

func TestUnsatisfiableFormula(t *testing.T) {
	// x AND NOT x
	c := circuit.New("unsat")
	a := c.AddInput("a")
	na := c.AddGate(circuit.Not, a)
	g := c.AddGate(circuit.And, a, na)
	c.SetOutputs(g)
	if got := countWith(t, c, Config{}); got.Sign() != 0 {
		t.Errorf("unsat count = %v, want 0", got)
	}
	if got := countWith(t, c, Config{EnableSim: true}); got.Sign() != 0 {
		t.Errorf("unsat count (sim) = %v, want 0", got)
	}
}
