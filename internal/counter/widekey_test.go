package counter

// Regression tests for the wide-clause cache-key soundness bug: the old
// cacheKey packed the free-literal positions of each active clause into
// a single byte, so clauses with more than 8 literals (which arrive via
// DIMACS input — cnf.Encode's gate clauses stay short) aliased: residual
// states differing only at positions >= 8 produced identical keys, and
// a cache hit could return the count of a different residual formula.

import (
	"math/big"
	"testing"

	"vacsem/internal/cnf"
)

// wideORFormula returns the single clause (a1 ∨ a2 ∨ ... ∨ an).
func wideORFormula(n int) *cnf.Formula {
	cl := make(cnf.Clause, n)
	for i := range cl {
		cl[i] = int32(i + 1)
	}
	return &cnf.Formula{NumVars: n, Clauses: []cnf.Clause{cl}}
}

func varsUpTo(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i + 1)
	}
	return vs
}

// restrictedBrute counts the models of f over all variables, holding
// the given variables false (the brute-force reference for a residual
// state of the solver).
func restrictedBrute(f *cnf.Formula, falseVars ...int32) *big.Int {
	unit := make([]cnf.Clause, 0, len(falseVars))
	for _, v := range falseVars {
		unit = append(unit, cnf.Clause{-v})
	}
	g := &cnf.Formula{NumVars: f.NumVars, Clauses: append(unit, f.Clauses...)}
	return new(big.Int).SetUint64(bruteCNF(g))
}

// TestCacheKeyWideClauseNoAlias drives the solver through two residual
// states of a 10-literal clause that differ only in the assignment of
// literals at positions >= 8. Under the old single-byte mask both
// states keyed as (clause 0, mask 0xFF), so the second solve hit the
// first state's cache entry and returned 511 instead of 255.
func TestCacheKeyWideClauseNoAlias(t *testing.T) {
	f := wideORFormula(10)
	s := New(f, Config{DisableIBCP: true, DisableLearning: true})
	s.reset()
	s.curLevel = 1

	solveUnder := func(falseVars ...int32) *big.Int {
		t.Helper()
		for _, v := range falseVars {
			if !s.assertLit(-v, reasonDecision) {
				t.Fatalf("asserting -%d conflicted", v)
			}
		}
		if !s.propagate() {
			t.Fatal("setup propagation conflicted")
		}
		comps, free := s.findComponents(varsUpTo(10))
		if len(comps) != 1 || free != 0 {
			t.Fatalf("got %d components, %d free vars; want 1, 0", len(comps), free)
		}
		cnt := s.solveComponent(comps[0])
		if cnt == nil {
			t.Fatal("solveComponent aborted")
		}
		s.undoTo(0)
		return cnt
	}

	// State A: a9 false. Residual clause has 9 free literals (positions
	// 0-7 and 9); 2^9-1 = 511 models over the component's 9 variables.
	cntA := solveUnder(9)
	if want := restrictedBrute(f, 9); cntA.Cmp(want) != 0 {
		t.Fatalf("state A count = %v, want %v", cntA, want)
	}

	// State B: a9 and a10 false. Residual clause has 8 free literals
	// (positions 0-7); 2^8-1 = 255 models. A key that drops positions
	// >= 8 cannot tell this state from state A.
	cntB := solveUnder(9, 10)
	if want := restrictedBrute(f, 9, 10); cntB.Cmp(want) != 0 {
		t.Fatalf("state B count = %v, want %v (wide-clause cache key aliased state A?)",
			cntB, want)
	}
}

// TestCountWideClausesVsBrute cross-checks full counts on formulas
// whose clauses exceed 8 literals (the DIMACS shape that triggers the
// masking bug), against truth-table enumeration.
func TestCountWideClausesVsBrute(t *testing.T) {
	for _, tc := range []struct {
		name    string
		clauses []cnf.Clause
		nVars   int
	}{
		{"or10", []cnf.Clause{varsUpTo(10)}, 10},
		{"and10", func() []cnf.Clause {
			// y <-> AND(a1..a10), y unconstrained: the 11-literal
			// consistency clause any 10-input AND would produce.
			cls := []cnf.Clause{make(cnf.Clause, 0, 11)}
			wide := &cls[0]
			for v := int32(1); v <= 10; v++ {
				*wide = append(*wide, -v)
				cls = append(cls, cnf.Clause{v, -11})
			}
			*wide = append(*wide, 11)
			return cls
		}(), 11},
		{"two-wide", []cnf.Clause{
			varsUpTo(12),
			{-1, -2, -3, -4, -5, -6, -7, -8, -9, -10, -11, -12},
		}, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := &cnf.Formula{NumVars: tc.nVars, Clauses: tc.clauses}
			want := new(big.Int).SetUint64(bruteCNF(f))
			for _, cfg := range []Config{{}, {DisableIBCP: true, DisableLearning: true}} {
				got, err := New(f, cfg).Count()
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(want) != 0 {
					t.Errorf("cfg %+v: count = %v, want %v", cfg, got, want)
				}
			}
		})
	}
}
