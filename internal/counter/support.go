package counter

import (
	"math/bits"

	"vacsem/internal/cnf"
)

// Independent-support minimization for the approx backend.
//
// The sampling set handed to ApproxCount — usually the encoded primary
// inputs of a miter cone — is an independent support by construction,
// but it is rarely a minimal one: level-0 implication fixes some inputs
// outright (constant-propagated cones, asserted outputs), and the parity
// structure the encoder preserves as native XOR rows frequently defines
// one input as a GF(2) combination of others (deviation chains,
// xor-dominated approximate adders). Every variable removed from the
// sampling set makes every hash row of every probe shorter, so the pass
// runs once per task, before the first probe.
//
// Soundness: S is an independent support when any two models agreeing on
// S are equal. Dropping v from S is sound exactly when v's value is a
// function of the remaining set S\{v} on the model space — then models
// agreeing on S\{v} still agree on all of S, and induction over the
// dropped set carries the argument to dropping several at once as long
// as each dropped variable is defined from variables that are kept.

// MinimizeSupport returns the subset of sampling that is still an
// independent support of f, assuming sampling itself is one (a nil or
// empty sampling is returned unchanged). Two reductions apply:
//
//  1. Implication: variables assigned at level 0 (unit clauses, XOR
//     units, and everything BCP derives from them) are constant on the
//     model space and can never distinguish two models.
//  2. Definability: the residual XOR rows are brought to reduced
//     row-echelon form over GF(2) with non-sampling (gate) variables
//     ordered first, so pivots land on gate variables whenever
//     possible. A row whose pivot is a sampling variable and whose
//     remaining columns are all sampling variables spells out that
//     pivot as an affine combination of other sampling variables; in
//     RREF the remaining columns are pivot-free, hence never dropped
//     themselves, so all such pivots can be dropped simultaneously.
//
// If the formula is unsatisfiable at level 0, the empty set is returned
// (zero models make every set an independent support), which sends
// ApproxCount down its exact path immediately.
//
// The result preserves the order of sampling. The cost is one BCP
// fixpoint plus a Gauss–Jordan pass over the formula's own parity rows
// — negligible next to a single probe.
func MinimizeSupport(f *cnf.Formula, sampling []int32) []int32 {
	if len(sampling) == 0 {
		return sampling
	}
	s := New(f, Config{DisableCache: true, DisableIBCP: true, DisableLearning: true})
	s.reset()
	// Level-0 propagation, mirroring CountCtx's setup: unit clauses and
	// unit XOR rows to fixpoint.
	for ci, cl := range s.clauses {
		switch len(cl) {
		case 0:
			return sampling[:0]
		case 1:
			if s.nTrue[ci] == 0 {
				s.propQ = append(s.propQ, propItem{cl[0], int32(ci)})
			}
		}
	}
	if !s.queueXorUnits() || !s.propagate() {
		return sampling[:0]
	}

	isSampling := make([]bool, s.nVars+1)
	for _, v := range sampling {
		if int(v) <= s.nVars {
			isSampling[v] = true
		}
	}
	dropped := definedSamplingVars(s, isSampling)

	kept := make([]int32, 0, len(sampling))
	for _, v := range sampling {
		if int(v) <= s.nVars && s.assign[v] != unassigned {
			continue // implication: level-0 constant
		}
		if dropped[v] {
			continue // definability: affine function of kept sampling vars
		}
		kept = append(kept, v)
	}
	return kept
}

// definedSamplingVars runs the definability pass on the solver's
// residual XOR rows and returns the set of sampling variables provably
// defined by the rest of the sampling set. The solver must be at a
// consistent level-0 fixpoint.
func definedSamplingVars(s *Solver, isSampling []bool) map[int32]bool {
	// Columns: unassigned variables occurring in still-active rows, gate
	// (non-sampling) variables first so RREF pivots prefer them.
	var gateCols, sampCols []int32
	seen := make([]bool, s.nVars+1)
	for xi := range s.xors {
		if s.xorFree[xi] == 0 {
			continue
		}
		for _, v := range s.xors[xi].Vars {
			if seen[v] {
				continue
			}
			seen[v] = true
			if s.assign[v] != unassigned {
				continue // assigned: not a column at all
			}
			if isSampling[v] {
				sampCols = append(sampCols, v)
			} else {
				gateCols = append(gateCols, v)
			}
		}
	}
	if len(sampCols) == 0 {
		return nil
	}
	cols := append(gateCols, sampCols...)
	ncols := len(cols)
	words := (ncols + 63) / 64
	rank := make(map[int32]int, ncols)
	for i, v := range cols {
		rank[v] = i
	}

	var rows [][]uint64
	for xi := range s.xors {
		if s.xorFree[xi] == 0 {
			continue
		}
		row := make([]uint64, words)
		for _, v := range s.xors[xi].Vars {
			if s.assign[v] != unassigned {
				continue
			}
			r := uint(rank[v])
			row[r/64] ^= 1 << (r % 64)
		}
		rows = append(rows, row)
	}

	// Gauss–Jordan to RREF over the ordered columns. The right-hand
	// sides are irrelevant: definability only needs the support pattern
	// (consistency was already established by propagation).
	n := len(rows)
	r := 0
	for col := 0; col < ncols && r < n; col++ {
		w, bit := col/64, uint(col%64)
		pivot := -1
		for i := r; i < n; i++ {
			if rows[i][w]>>bit&1 == 1 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[r], rows[pivot] = rows[pivot], rows[r]
		for i := 0; i < n; i++ {
			if i == r || rows[i][w]>>bit&1 == 0 {
				continue
			}
			for k := range rows[i] {
				rows[i][k] ^= rows[r][k]
			}
		}
		r++
	}

	// A row whose pivot is a sampling column and whose other columns are
	// all sampling columns defines its pivot from the rest of the
	// sampling set. In RREF non-pivot columns are never pivots of any
	// row, so every such pivot is defined from *kept* variables and all
	// of them drop together.
	gateBoundary := len(gateCols)
	dropped := make(map[int32]bool)
	for i := 0; i < r; i++ {
		pcol, ok := firstSetBit(rows[i])
		if !ok || pcol < gateBoundary {
			continue // gate pivot: defines a gate var, not a sampling var
		}
		defined := true
		for k, wv := range rows[i] {
			for wv != 0 {
				c := k*64 + bits.TrailingZeros64(wv)
				wv &= wv - 1
				if c != pcol && c < gateBoundary {
					defined = false
					break
				}
			}
			if !defined {
				break
			}
		}
		if defined {
			dropped[cols[pcol]] = true
		}
	}
	if len(dropped) == 0 {
		return nil
	}
	return dropped
}

// firstSetBit returns the index of the lowest set bit of a bitset row.
func firstSetBit(row []uint64) (int, bool) {
	for k, wv := range row {
		if wv != 0 {
			return k*64 + bits.TrailingZeros64(wv), true
		}
	}
	return 0, false
}
