package counter

import (
	"math/big"
	"math/bits"

	"vacsem/internal/cnf"
)

// Native XOR support: parity rows are propagated alongside clause BCP
// with a free-count/parity watch per row, and residual components carry
// their active rows into a Gaussian-elimination pass over GF(2) that
// detects parity contradictions, counts pure parity subsystems in closed
// form (2^(n-rank)), and asserts derived unit rows before branching.
//
// XOR conflicts and propagations feed clause learning: they carry a
// row-encoded pseudo-reason (xorReason), and learnFromConflict
// materializes the row's CNF implicate under the current assignment
// (xorImplicate) to resolve through it, so CDCL prunes XOR-chain cones
// exactly as it would their Tseitin-blasted equivalents. Only derived
// units from Gaussian elimination stay opaque (reasonAsserted): they
// come from row combinations, not a single row.

// updateXorsOnAssign maintains the xor watches after variable v was
// assigned value val. Rows reduced to one free variable queue the forced
// literal; rows reduced to zero free variables with the wrong parity are
// conflicts. Reports false on conflict.
func (s *Solver) updateXorsOnAssign(v int32, val bool) bool {
	ok := true
	for _, xi := range s.xorOcc[v] {
		s.xorFree[xi]--
		if val {
			s.xorPar[xi] ^= 1
		}
		switch s.xorFree[xi] {
		case 0:
			if (s.xorPar[xi] == 1) != s.xors[xi].Rhs {
				if ok {
					s.conflictCl = xorReason(int(xi))
				}
				ok = false
			}
		case 1:
			// The single free variable is determined: its value must make
			// the row's parity equal Rhs.
			for _, w := range s.xors[xi].Vars {
				if s.assign[w] != unassigned {
					continue
				}
				lit := w
				if (s.xorPar[xi] == 1) == s.xors[xi].Rhs {
					lit = -w // parity already right: free var must be 0
				}
				s.propQ = append(s.propQ, propItem{lit, xorReason(int(xi))})
				s.stats.XorPropagations++
				break
			}
		}
	}
	return ok
}

// queueXorUnits performs the level-0 xor pass of Count/Satisfiable:
// empty rows (the canonical 0 = 1 contradiction) make the formula
// unsatisfiable, and single-variable rows queue their forced literal.
func (s *Solver) queueXorUnits() bool {
	for xi, x := range s.xors {
		switch len(x.Vars) {
		case 0:
			if x.Rhs {
				return false // 0 = 1
			}
			// 0 = 0: tautology (canonical formulas never store it, but
			// directly constructed hash rows may).
		case 1:
			if s.xorFree[xi] != 1 {
				continue // already assigned by an earlier unit
			}
			lit := x.Vars[0]
			if !x.Rhs {
				lit = -lit
			}
			s.propQ = append(s.propQ, propItem{lit, xorReason(xi)})
			s.stats.XorPropagations++
		}
	}
	return true
}

// xorImplicate materializes the CNF implicate of row xi under the
// current assignment: every row variable's current value, negated. At a
// conflict the row is fully assigned with the wrong parity, so the
// clause is fully falsified — a genuine implicate of the parity
// constraint. As the reason of a propagated variable v the clause
// nominally flips v's (true) implied literal, but conflict analysis
// never reads it: v is already marked seen when its reason is expanded.
// All row variables are assigned whenever a row serves as conflict or
// reason, so the materialization is total.
func (s *Solver) xorImplicate(xi int) cnf.Clause {
	cl := s.xorReasonCl[:0]
	for _, w := range s.xors[xi].Vars {
		if s.assign[w] == 1 {
			cl = append(cl, -w)
		} else {
			cl = append(cl, w)
		}
	}
	s.xorReasonCl = cl
	return cl
}

// hasActiveXor reports whether v occurs in an xor row that still has
// free variables (a fully assigned row constrains nothing further).
func (s *Solver) hasActiveXor(v int32) bool {
	for _, xi := range s.xorOcc[v] {
		if s.xorFree[xi] > 0 {
			return true
		}
	}
	return false
}

// tryGauss runs Gaussian elimination over the component's active parity
// rows. It returns (count, true) when the component was fully counted —
// a parity contradiction (count 0) or a pure parity subsystem
// (2^(n-rank)) — or when derived unit rows let the component be solved
// by propagation plus sub-decomposition. It returns (nil, false) when
// elimination found nothing to exploit, and (nil, true) with s.aborted
// set when the solver was cancelled during the recursive solve.
func (s *Solver) tryGauss(comp *component) (*big.Int, bool) {
	if len(comp.xors) == 0 {
		return nil, false
	}
	units, rank, consistent := s.gaussEliminate(comp)
	if !consistent {
		s.stats.GaussReductions++
		return big.NewInt(0), true
	}
	if len(comp.clauses) == 0 {
		// Pure parity component: each of the rank independent rows halves
		// the assignment space.
		s.stats.GaussReductions++
		cnt := new(big.Int).Lsh(big.NewInt(1), uint(len(comp.vars)-rank))
		return cnt, true
	}
	if len(units) == 0 {
		return nil, false
	}
	// Mixed component with derived units: the units are consequences of
	// the component's parity rows, so asserting them preserves the model
	// count. Propagate, decompose, and multiply — branchCount's body
	// without the decision.
	s.stats.GaussReductions++
	mark := len(s.trail)
	s.curLevel++
	for _, lit := range units {
		// reasonAsserted, not a row reason: derived units come from row
		// combinations, so no single row is a valid antecedent for them.
		s.propQ = append(s.propQ, propItem{lit, reasonAsserted})
		s.stats.XorPropagations++
	}
	total := big.NewInt(0)
	if s.propagate() && (s.cfg.DisableIBCP || s.failedLiteralFixpoint(comp.vars)) {
		sub := big.NewInt(1)
		comps, freeCount := s.findComponents(comp.vars)
		sub.Lsh(sub, uint(freeCount))
		for _, sc := range comps {
			r := s.solveComponent(sc)
			if r == nil {
				s.undoTo(mark)
				s.curLevel--
				return nil, true
			}
			sub.Mul(sub, r)
			if sub.Sign() == 0 {
				break
			}
		}
		total = sub
	}
	s.undoTo(mark)
	s.curLevel--
	return total, true
}

// gaussEliminate reduces the component's active parity rows over its
// free variables (Gauss-Jordan over GF(2) on bitset rows). It returns
// the forced literals of derived single-variable rows, the rank of the
// system, and whether it is consistent (no 0 = 1 row).
func (s *Solver) gaussEliminate(comp *component) (units []int32, rank int, consistent bool) {
	ncols := len(comp.vars)
	words := (ncols + 63) / 64
	for i, v := range comp.vars {
		s.varRank[v] = int32(i)
	}
	rows := s.gaussRows[:0]
	rhs := s.gaussRhs[:0]
	for _, xi := range comp.xors {
		row := make([]uint64, words)
		for _, v := range s.xors[xi].Vars {
			if s.assign[v] != unassigned {
				continue
			}
			r := uint(s.varRank[v])
			row[r/64] ^= 1 << (r % 64)
		}
		rows = append(rows, row)
		rhs = append(rhs, s.xors[xi].Rhs != (s.xorPar[xi] == 1))
	}
	s.gaussRows, s.gaussRhs = rows, rhs

	n := len(rows)
	r := 0
	for col := 0; col < ncols && r < n; col++ {
		w, bit := col/64, uint(col%64)
		pivot := -1
		for i := r; i < n; i++ {
			if rows[i][w]>>bit&1 == 1 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[r], rows[pivot] = rows[pivot], rows[r]
		rhs[r], rhs[pivot] = rhs[pivot], rhs[r]
		for i := 0; i < n; i++ {
			if i == r || rows[i][w]>>bit&1 == 0 {
				continue
			}
			for k := range rows[i] {
				rows[i][k] ^= rows[r][k]
			}
			rhs[i] = rhs[i] != rhs[r]
		}
		r++
	}
	// Zero rows with rhs true are the contradiction 0 = 1.
	for i := r; i < n; i++ {
		if rhs[i] {
			return nil, r, false
		}
	}
	// Single-bit rows are derived units.
	for i := 0; i < r; i++ {
		pop, last := 0, -1
		for k, wv := range rows[i] {
			if wv == 0 {
				continue
			}
			pop += bits.OnesCount64(wv)
			if pop > 1 {
				break
			}
			last = k*64 + bits.TrailingZeros64(wv)
		}
		if pop == 1 {
			v := comp.vars[last]
			if rhs[i] {
				units = append(units, v)
			} else {
				units = append(units, -v)
			}
		}
	}
	return units, r, true
}
