package counter

import (
	"math/big"

	"vacsem/internal/obs"
)

// Observability hooks of the solver. Everything in this file is a no-op
// (a single nil check) when no tracer is installed; the metrics-registry
// merge in finishObs is a handful of atomic adds per Count call.
//
// Per-component and per-cache-operation events are sampled at the
// tracer's HotEvery interval — a component cache can see millions of
// operations per count — while controller decisions past the cheap
// clause pre-check are traced unconditionally (they are the events the
// paper's dynamic-controller claim hinges on).

// Registry handles, resolved once. Names are grouped under "counter.".
var (
	mDecisions      = obs.Default.Counter("counter.decisions")
	mPropagations   = obs.Default.Counter("counter.propagations")
	mComponents     = obs.Default.Counter("counter.components")
	mCacheHits      = obs.Default.Counter("counter.cache_hits")
	mCacheStores    = obs.Default.Counter("counter.cache_stores")
	mCacheCross     = obs.Default.Counter("counter.cache_cross_hits")
	mCacheEvictions = obs.Default.Counter("counter.cache_evictions")
	mSimCalls       = obs.Default.Counter("counter.sim_calls")
	mSimRejected    = obs.Default.Counter("counter.sim_rejected")
	mSimPatterns    = obs.Default.Counter("counter.sim_patterns")
	mFailedLiterals = obs.Default.Counter("counter.failed_literals")
	mLearnedClauses = obs.Default.Counter("counter.learned_clauses")
	mXorProps       = obs.Default.Counter("counter.xor_propagations")
	mGaussReduce    = obs.Default.Counter("counter.gauss_reductions")
	mCounts         = obs.Default.Counter("counter.count_calls")
	hSimSeconds     = obs.Default.Histogram("counter.sim_component_seconds", nil)
)

// addStatsToRegistry merges a stats delta into the registry counters.
func addStatsToRegistry(d Stats) {
	mDecisions.Add(d.Decisions)
	mPropagations.Add(d.Propagations)
	mComponents.Add(d.Components)
	mCacheHits.Add(d.CacheHits)
	mCacheStores.Add(d.CacheStores)
	mCacheCross.Add(d.CacheCrossHits)
	mCacheEvictions.Add(d.CacheEvictions)
	mSimCalls.Add(d.SimCalls)
	mSimRejected.Add(d.SimRejected)
	mSimPatterns.Add(d.SimPatterns)
	mFailedLiterals.Add(d.FailedLiterals)
	mLearnedClauses.Add(d.Learned)
	mXorProps.Add(d.XorPropagations)
	mGaussReduce.Add(d.GaussReductions)
}

// flushObs merges the stats accrued since the previous flush into the
// registry. Flushed deltas always sum to the final Stats, so the
// registry totals are identical whether the run flushed once at the end
// (the default) or periodically (when a flight recorder is live — the
// mid-run flushes are what make a long single count show up as a moving
// decisions/sec curve instead of one step at the end).
func (s *Solver) flushObs() {
	d := s.stats.Diff(s.flushed)
	if d == (Stats{}) {
		return
	}
	s.flushed = s.stats
	addStatsToRegistry(d)
}

// finishObs merges the run's remaining statistics into the default
// metrics registry and, when traced, emits the final stats snapshot
// delta.
func (s *Solver) finishObs() {
	mCounts.Inc()
	s.flushObs()
	if s.tr != nil {
		if delta := s.stats.Diff(s.lastEmit); delta != (Stats{}) {
			s.lastEmit = s.stats
			s.tr.Event(s.span, "stats", obs.Fields{"delta": delta, "cache_size": s.cacheSize(), "final": true})
		}
	}
}

// traceComponent emits a sampled per-component event plus the periodic
// stats snapshot delta. Callers check s.tr != nil first.
func (s *Solver) traceComponent(comp *component) {
	s.hotTick++
	if s.hotTick%s.tr.HotEvery() != 0 {
		return
	}
	s.tr.Event(s.span, "component", obs.Fields{
		"seq": s.hotTick, "vars": len(comp.vars), "clauses": len(comp.clauses),
		"xors": len(comp.xors),
	})
	delta := s.stats.Diff(s.lastEmit)
	s.lastEmit = s.stats
	s.tr.Event(s.span, "stats", obs.Fields{"delta": delta, "cache_size": s.cacheSize()})
}

// cacheSize reports the entry count of the active cache (shared caches
// include other solvers' entries). Only called from sampled trace paths
// — Cache.Len takes every shard lock.
func (s *Solver) cacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Len()
}

// traceCache emits a sampled cache event (op is "hit" or "store").
// Callers check s.tr != nil first.
func (s *Solver) traceCache(op string) {
	s.cacheTick++
	if s.cacheTick%s.tr.HotEvery() != 0 {
		return
	}
	s.tr.Event(s.span, "cache", obs.Fields{
		"op": op, "size": s.cacheSize(),
		"hits": s.stats.CacheHits, "stores": s.stats.CacheStores,
		"evictions": s.stats.CacheEvictions, "cross_hits": s.stats.CacheCrossHits,
	})
}

// rejectSim records a controller rejection. Rejections at the cheap
// clause-count pre-check fire once per candidate component, so they are
// sampled like component events; structural and density rejections are
// traced unconditionally with the score that drove the choice.
func (s *Solver) rejectSim(sampled bool, reason string, gates, k int, density float64) (*big.Int, bool) {
	s.stats.SimRejected++
	if s.tr == nil {
		return nil, false
	}
	if sampled {
		s.hotTick++ // share the component sampling budget
		if s.hotTick%s.tr.HotEvery() != 0 {
			return nil, false
		}
	}
	s.tr.Event(s.span, "sim_decision", obs.Fields{
		"accepted": false, "reason": reason,
		"gates": gates, "k": k, "density": density,
	})
	return nil, false
}
