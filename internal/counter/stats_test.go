package counter

import (
	"math/rand"
	"reflect"
	"testing"
)

// fillStats sets every numeric field of a Stats to a distinct pseudo-
// random value and returns the filled struct. It fails the test on any
// non-numeric field so the reflection walk stays exhaustive.
func fillStats(t *testing.T, rng *rand.Rand) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint, reflect.Uint32, reflect.Uint64:
			f.SetUint(uint64(rng.Intn(1_000_000) + 1))
		case reflect.Int, reflect.Int32, reflect.Int64:
			f.SetInt(int64(rng.Intn(1_000_000) + 1))
		default:
			t.Fatalf("Stats.%s has kind %v; extend fillStats and re-check Add/Diff",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

// TestStatsAddCoversEveryField catches the classic aggregation bug: a
// new counter field added to Stats but forgotten in Add, silently
// dropping it from Result.TotalStats. Every numeric field must satisfy
// sum.F == a.F + b.F after a.Add(b).
func TestStatsAddCoversEveryField(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := fillStats(t, rng)
	b := fillStats(t, rng)
	sum := a
	sum.Add(b)

	va, vb, vs := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(sum)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		want := va.Field(i).Uint() + vb.Field(i).Uint()
		if got := vs.Field(i).Uint(); got != want {
			t.Errorf("Stats.Add drops field %s: got %d, want %d", name, got, want)
		}
	}
}

// TestStatsDiffInvertsAdd pins Diff (the periodic trace-snapshot delta)
// as the exact inverse of Add, field by field.
func TestStatsDiffInvertsAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := fillStats(t, rng)
	delta := fillStats(t, rng)
	total := base
	total.Add(delta)
	got := total.Diff(base)

	vg, vd := reflect.ValueOf(got), reflect.ValueOf(delta)
	for i := 0; i < vg.NumField(); i++ {
		name := vg.Type().Field(i).Name
		if vg.Field(i).Uint() != vd.Field(i).Uint() {
			t.Errorf("Stats.Diff does not invert Add on field %s: got %d, want %d",
				name, vg.Field(i).Uint(), vd.Field(i).Uint())
		}
	}
}
