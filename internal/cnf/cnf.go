// Package cnf implements Phase 1 of VACSEM: circuit-aware construction of
// #SAT problems. A circuit (sub-miter) is converted to conjunctive normal
// form with the consistency function of each gate, while two one-to-one
// mappings are preserved inside the formula:
//
//   - node <-> variable (Formula.VarOfNode / Formula.NodeOfVar), and
//   - gate <-> clause set (Formula.GateOfClause / Formula.ClausesOfGate).
//
// Clause sets are emitted in the topological order of their gates, so the
// circuit topology survives inside the CNF — exactly what the simulation
// hook of the solver (Phase 2) needs to map a residual component back to a
// sub-circuit.
package cnf

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"vacsem/internal/circuit"
)

// Lit is a CNF literal: +v for the positive literal of variable v, -v for
// its negation. Variables are numbered from 1.
type Lit = int32

// Clause is a disjunction of literals.
type Clause []Lit

// XorClause is a native parity constraint: the XOR of the listed
// variables equals Rhs. Rows are kept canonical — Vars sorted ascending
// with duplicate pairs cancelled — so two rows constrain the same parity
// iff they are structurally equal. An empty row with Rhs true is the
// unsatisfiable parity 0 = 1; an empty row with Rhs false is a tautology
// and is never stored.
type XorClause struct {
	Vars []int32
	Rhs  bool
}

// Formula is a CNF-XOR formula together with the circuit-topology
// metadata of Phase 1. Clauses and Xors jointly define the constraint
// set: a model must satisfy every disjunctive clause and every parity
// row.
type Formula struct {
	NumVars int
	Clauses []Clause
	// Xors holds the native parity constraints: XOR chains recovered
	// from circuit gates by Encode, x-lines of a DIMACS file, or hash
	// rows added by the approximate counter.
	Xors []XorClause
	// Track is the model-counting track of a parsed "c t ..." DIMACS
	// header ("mc", "pmc", "wmc"); empty when absent. WriteDIMACS emits
	// it back verbatim.
	Track string

	// Circ is the circuit the formula encodes. Nil for formulas read from
	// DIMACS (which carry no topology).
	Circ *circuit.Circuit
	// VarOfNode maps a node id of Circ to its CNF variable (0 = no var).
	VarOfNode []int32
	// NodeOfVar maps a variable (1-based) to the node id (index 0 unused).
	NodeOfVar []int32
	// GateOfClause maps a clause index to the node id of the gate whose
	// consistency function produced it, or -1 for clauses with no gate
	// (e.g. the output unit clause).
	GateOfClause []int32
	// GateOfXor maps an XOR row index to the node id of the gate whose
	// consistency function it is, or -1 for rows with no gate (parsed
	// x-lines, hash rows).
	GateOfXor []int32
	// ClausesOfGate maps a node id to the indices of its clauses.
	ClausesOfGate map[int32][]int32
	// XorsOfGate maps a node id to the indices of its XOR rows.
	XorsOfGate map[int32][]int32
}

// addClause appends a clause attributed to gate node `gate` (-1 for none).
func (f *Formula) addClause(gate int32, lits ...Lit) {
	cl := make(Clause, len(lits))
	copy(cl, lits)
	idx := int32(len(f.Clauses))
	f.Clauses = append(f.Clauses, cl)
	f.GateOfClause = append(f.GateOfClause, gate)
	if gate >= 0 {
		f.ClausesOfGate[gate] = append(f.ClausesOfGate[gate], idx)
	}
}

// AddXor appends the parity constraint XOR(vars) = rhs attributed to
// gate node `gate` (-1 for none), canonicalizing the row first:
// variables are sorted and duplicate pairs cancel (v XOR v = 0). A row
// that cancels to the empty tautology (rhs false) is dropped.
func (f *Formula) AddXor(gate int32, rhs bool, vars ...int32) {
	row := canonicalXor(vars, rhs)
	if len(row.Vars) == 0 && !row.Rhs {
		return // 0 = 0, always true
	}
	idx := int32(len(f.Xors))
	f.Xors = append(f.Xors, row)
	f.GateOfXor = append(f.GateOfXor, gate)
	if gate >= 0 {
		if f.XorsOfGate == nil {
			f.XorsOfGate = make(map[int32][]int32)
		}
		f.XorsOfGate[gate] = append(f.XorsOfGate[gate], idx)
	}
}

// canonicalXor sorts the variables and cancels duplicate pairs.
func canonicalXor(vars []int32, rhs bool) XorClause {
	vs := make([]int32, len(vars))
	copy(vs, vars)
	slices.Sort(vs)
	out := vs[:0]
	for i := 0; i < len(vs); {
		j := i
		for j < len(vs) && vs[j] == vs[i] {
			j++
		}
		if (j-i)%2 == 1 {
			out = append(out, vs[i])
		}
		i = j
	}
	return XorClause{Vars: out, Rhs: rhs}
}

// Encode converts a single-output circuit into a CNF-XOR formula
// asserting that the output is 1 (the unit clause of Section IV-A).
// Every node in the transitive fanin of the output receives a variable;
// nodes outside the cone receive none (callers account for them with a
// 2^k factor).
//
// XOR and XNOR gates are recovered as native parity rows (one XorClause
// per gate) instead of being expanded to four CNF clauses, so the parity
// chains of arithmetic miters survive into the formula where the
// counter's Gaussian-elimination propagator can exploit them.
// EncodeBlasted keeps the historical pure-CNF expansion.
//
// Buffers are encoded as equivalences. The constant node receives a
// variable with a negative unit clause only when it is actually referenced
// inside the cone.
func Encode(c *circuit.Circuit) (*Formula, error) {
	if len(c.Outputs) != 1 {
		return nil, fmt.Errorf("cnf: Encode needs a single-output circuit, got %d outputs", len(c.Outputs))
	}
	return encode(c, true, true)
}

// EncodeBlasted is Encode with XOR/XNOR gates expanded to their four
// CNF consistency clauses — the pre-native-XOR encoding, kept for
// ablation and for equivalence tests of the Gauss-aware counter against
// the CNF-blasted path. Models are identical to Encode's.
func EncodeBlasted(c *circuit.Circuit) (*Formula, error) {
	if len(c.Outputs) != 1 {
		return nil, fmt.Errorf("cnf: EncodeBlasted needs a single-output circuit, got %d outputs", len(c.Outputs))
	}
	return encode(c, true, false)
}

// EncodeOpen converts the circuit like Encode but without asserting the
// output unit clause, which is useful for tests and for callers that add
// their own assumptions.
func EncodeOpen(c *circuit.Circuit) (*Formula, error) {
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("cnf: EncodeOpen needs at least one output")
	}
	return encode(c, false, true)
}

// EncodeOpenBlasted is EncodeOpen with XOR/XNOR gates expanded to CNF
// clauses (see EncodeBlasted).
func EncodeOpenBlasted(c *circuit.Circuit) (*Formula, error) {
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("cnf: EncodeOpenBlasted needs at least one output")
	}
	return encode(c, false, false)
}

func encode(c *circuit.Circuit, assertOutput, nativeXor bool) (*Formula, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("cnf: %w", err)
	}
	mark := c.ConeMark(c.Outputs...)
	f := &Formula{
		Circ:          c,
		VarOfNode:     make([]int32, len(c.Nodes)),
		NodeOfVar:     make([]int32, 1, len(c.Nodes)+1),
		ClausesOfGate: make(map[int32][]int32),
	}
	f.NodeOfVar[0] = -1
	newVar := func(node int32) int32 {
		f.NumVars++
		v := int32(f.NumVars)
		f.VarOfNode[node] = v
		f.NodeOfVar = append(f.NodeOfVar, node)
		return v
	}
	// Assign variables in topological (id) order so clause sets appear in
	// topological order too.
	for id := 0; id < len(c.Nodes); id++ {
		if !mark[id] {
			continue
		}
		v := newVar(int32(id))
		nd := &c.Nodes[id]
		switch nd.Kind {
		case circuit.Input:
			// no clauses
		case circuit.Const0:
			f.addClause(int32(id), -v)
		default:
			fi := make([]Lit, len(nd.Fanins))
			for j, fn := range nd.Fanins {
				fv := f.VarOfNode[fn]
				if fv == 0 {
					return nil, fmt.Errorf("cnf: node %d fanin %d has no variable", id, fn)
				}
				fi[j] = fv
			}
			emitGate(f, int32(id), v, nd.Kind, fi, nativeXor)
		}
	}
	if assertOutput {
		ov := f.VarOfNode[c.Outputs[0]]
		f.addClause(-1, ov)
	}
	return f, nil
}

// emitGate appends the consistency-function clauses of one gate:
// clauses that hold iff n <-> kind(fanins). With nativeXor set, XOR and
// XNOR gates become a single parity row (n^a^b = 0 resp. 1) instead of
// four CNF clauses.
func emitGate(f *Formula, gate int32, n Lit, k circuit.Kind, in []Lit, nativeXor bool) {
	if nativeXor {
		switch k {
		case circuit.Xor:
			// n <-> a^b  ≡  n^a^b = 0
			f.AddXor(gate, false, n, in[0], in[1])
			return
		case circuit.Xnor:
			// n <-> ~(a^b)  ≡  n^a^b = 1
			f.AddXor(gate, true, n, in[0], in[1])
			return
		}
	}
	switch k {
	case circuit.Buf:
		a := in[0]
		f.addClause(gate, -a, n)
		f.addClause(gate, a, -n)
	case circuit.Not:
		a := in[0]
		f.addClause(gate, a, n)
		f.addClause(gate, -a, -n)
	case circuit.And:
		a, b := in[0], in[1]
		f.addClause(gate, a, -n)
		f.addClause(gate, b, -n)
		f.addClause(gate, -a, -b, n)
	case circuit.Nand:
		a, b := in[0], in[1]
		f.addClause(gate, a, n)
		f.addClause(gate, b, n)
		f.addClause(gate, -a, -b, -n)
	case circuit.Or:
		a, b := in[0], in[1]
		f.addClause(gate, -a, n)
		f.addClause(gate, -b, n)
		f.addClause(gate, a, b, -n)
	case circuit.Nor:
		a, b := in[0], in[1]
		f.addClause(gate, -a, -n)
		f.addClause(gate, -b, -n)
		f.addClause(gate, a, b, n)
	case circuit.Xor:
		a, b := in[0], in[1]
		f.addClause(gate, -a, -b, -n)
		f.addClause(gate, a, b, -n)
		f.addClause(gate, a, -b, n)
		f.addClause(gate, -a, b, n)
	case circuit.Xnor:
		a, b := in[0], in[1]
		f.addClause(gate, -a, -b, n)
		f.addClause(gate, a, b, n)
		f.addClause(gate, a, -b, -n)
		f.addClause(gate, -a, b, -n)
	case circuit.Mux:
		s, a, b := in[0], in[1], in[2]
		f.addClause(gate, -s, -b, n)
		f.addClause(gate, -s, b, -n)
		f.addClause(gate, s, -a, n)
		f.addClause(gate, s, a, -n)
	case circuit.Maj:
		a, b, c := in[0], in[1], in[2]
		f.addClause(gate, -a, -b, n)
		f.addClause(gate, -a, -c, n)
		f.addClause(gate, -b, -c, n)
		f.addClause(gate, a, b, -n)
		f.addClause(gate, a, c, -n)
		f.addClause(gate, b, c, -n)
	default:
		panic("cnf: emitGate on " + k.String())
	}
}

// NumEncodedInputs returns the number of primary inputs of the circuit
// that received variables (inputs inside the encoded cone).
func (f *Formula) NumEncodedInputs() int {
	if f.Circ == nil {
		return 0
	}
	n := 0
	for _, id := range f.Circ.Inputs {
		if f.VarOfNode[id] != 0 {
			n++
		}
	}
	return n
}

// ContentKey returns a digest identifying the formula's logical content:
// the variable count, the clause list and the native parity rows, in
// order. Two formulas with equal keys constrain the same models under
// the same variable numbering, so solver-independent derived results
// (probe outcomes, component counts keyed on top of it) can be shared
// between them. It deliberately ignores the circuit metadata: two
// structurally identical cones cut from different places of a miter
// encode to the same clause list and must share a key — that is the
// whole point. The key is a SHA-256 digest, so distinct formulas
// colliding is cryptographically negligible.
func (f *Formula) ContentKey() string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	writeInt(int64(f.NumVars))
	writeInt(int64(len(f.Clauses)))
	for _, cl := range f.Clauses {
		writeInt(int64(len(cl)))
		for _, l := range cl {
			writeInt(int64(l))
		}
	}
	writeInt(int64(len(f.Xors)))
	for _, x := range f.Xors {
		writeInt(int64(len(x.Vars)))
		for _, v := range x.Vars {
			writeInt(int64(v))
		}
		if x.Rhs {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	return string(h.Sum(nil))
}

// WriteDIMACS writes the formula in DIMACS cnf format. A "c t <track>"
// header is emitted when Track is set, and native parity rows become
// "x"-lines in the CryptoMiniSat convention: the clause count of the
// problem line includes them, a row with Rhs true lists all variables
// positive, and a row with Rhs false negates the first literal.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if f.Track != "" {
		fmt.Fprintf(bw, "c t %s\n", f.Track)
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)+len(f.Xors))
	for _, cl := range f.Clauses {
		for _, l := range cl {
			bw.WriteString(strconv.Itoa(int(l)))
			bw.WriteByte(' ')
		}
		bw.WriteString("0\n")
	}
	for _, x := range f.Xors {
		bw.WriteString("x ")
		for i, v := range x.Vars {
			l := int(v)
			if i == 0 && !x.Rhs {
				l = -l
			}
			bw.WriteString(strconv.Itoa(l))
			bw.WriteByte(' ')
		}
		// An empty row can only be Rhs true (0 = 1); "x 0" encodes it:
		// empty parity with rhs starting true and no sign flips.
		bw.WriteString("0\n")
	}
	return bw.Flush()
}

// ParseDIMACS reads a DIMACS cnf file. The resulting formula has no
// circuit metadata (Circ is nil); it can be counted with the DPLL engine
// but not with the simulation hook.
//
// Beyond plain cnf, two model-counting extensions are accepted: a
// "c t <track>" header (e.g. "c t pmc") recorded in Track, and "x"-lines
// carrying XOR clauses in the CryptoMiniSat convention — the parity
// right-hand side starts true and every negative literal flips it. The
// declared clause count covers CNF clauses and x-lines together.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := &Formula{ClausesOfGate: make(map[int32][]int32)}
	declared := -1
	xorLines := 0
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == 'c' {
			if fields := strings.Fields(line); len(fields) >= 3 && fields[0] == "c" && fields[1] == "t" {
				f.Track = fields[2]
			}
			continue
		}
		if line[0] == 'x' {
			rhs := true
			var vars []int32
			closed := false
			for _, tok := range strings.Fields(line[1:]) {
				v, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("cnf: bad xor literal %q", tok)
				}
				if v == 0 {
					closed = true
					break
				}
				if v > f.NumVars || -v > f.NumVars {
					return nil, fmt.Errorf("cnf: xor literal %d exceeds declared %d vars", v, f.NumVars)
				}
				if v < 0 {
					rhs = !rhs
					v = -v
				}
				vars = append(vars, int32(v))
			}
			if !closed {
				return nil, fmt.Errorf("cnf: xor line without terminating 0: %q", line)
			}
			f.AddXor(-1, rhs, vars...)
			xorLines++
			continue
		}
		if line[0] == 'p' {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("cnf: bad problem line %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad var count in %q", line)
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("cnf: bad clause count in %q", line)
			}
			f.NumVars = nv
			declared = nc
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("cnf: bad literal %q", tok)
			}
			if v == 0 {
				cl := make(Clause, len(cur))
				copy(cl, cur)
				f.Clauses = append(f.Clauses, cl)
				f.GateOfClause = append(f.GateOfClause, -1)
				cur = cur[:0]
				continue
			}
			if v > f.NumVars || -v > f.NumVars {
				return nil, fmt.Errorf("cnf: literal %d exceeds declared %d vars", v, f.NumVars)
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) != 0 {
		return nil, fmt.Errorf("cnf: trailing clause without terminating 0")
	}
	if declared >= 0 && declared != len(f.Clauses)+xorLines {
		return nil, fmt.Errorf("cnf: declared %d clauses, found %d", declared, len(f.Clauses)+xorLines)
	}
	return f, nil
}

// String renders a compact human-readable form, mainly for tests.
func (f *Formula) String() string {
	var b strings.Builder
	for i, cl := range f.Clauses {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteByte('(')
		for j, l := range cl {
			if j > 0 {
				b.WriteString(" | ")
			}
			if l < 0 {
				b.WriteByte('~')
			}
			fmt.Fprintf(&b, "v%d", abs32(l))
		}
		b.WriteByte(')')
	}
	for i, x := range f.Xors {
		if i > 0 || len(f.Clauses) > 0 {
			b.WriteString(" & ")
		}
		b.WriteByte('[')
		for j, v := range x.Vars {
			if j > 0 {
				b.WriteString(" ^ ")
			}
			fmt.Fprintf(&b, "v%d", v)
		}
		if len(x.Vars) == 0 {
			b.WriteByte('0')
		}
		if x.Rhs {
			b.WriteString("=1")
		} else {
			b.WriteString("=0")
		}
		b.WriteByte(']')
	}
	return b.String()
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
