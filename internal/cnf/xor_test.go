package cnf

import (
	"bytes"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

func TestAddXorCanonicalizes(t *testing.T) {
	var f Formula
	f.NumVars = 5
	f.AddXor(-1, true, 3, 1, 3, 2, 1, 1) // 1^2^3^... dup pairs cancel: {1,2} stay? 1 appears 3x -> odd, 3 twice -> gone
	if len(f.Xors) != 1 {
		t.Fatalf("Xors = %d, want 1", len(f.Xors))
	}
	got := f.Xors[0]
	if len(got.Vars) != 2 || got.Vars[0] != 1 || got.Vars[1] != 2 || !got.Rhs {
		t.Fatalf("canonical row = %v", got)
	}
	// v ^ v = 0: tautology with rhs false is dropped entirely.
	f.AddXor(-1, false, 4, 4)
	if len(f.Xors) != 1 {
		t.Fatalf("tautology row stored: %v", f.Xors)
	}
	// v ^ v = 1: empty row with rhs true (0=1) must be kept — it is
	// the unsatisfiable parity.
	f.AddXor(-1, true, 4, 4)
	if len(f.Xors) != 2 || len(f.Xors[1].Vars) != 0 || !f.Xors[1].Rhs {
		t.Fatalf("contradiction row wrong: %v", f.Xors)
	}
}

func TestEncodeRecoversXorChains(t *testing.T) {
	// A 4-stage parity chain: native encoding should produce one XOR
	// row per Xor/Xnor gate and zero CNF clauses for them.
	c := circuit.New("chain")
	prev := c.AddInput("i0")
	for i := 1; i < 5; i++ {
		in := c.AddInput("i")
		k := circuit.Xor
		if i%2 == 0 {
			k = circuit.Xnor
		}
		prev = c.AddGate(k, prev, in)
	}
	c.AddOutput(prev, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Xors) != 4 {
		t.Fatalf("Xors = %d, want 4", len(f.Xors))
	}
	// Only the output unit clause should remain on the CNF side.
	if len(f.Clauses) != 1 {
		t.Fatalf("Clauses = %d, want 1 (output unit)", len(f.Clauses))
	}
	// Gate maps must be consistent in both directions.
	for xi, g := range f.GateOfXor {
		if g < 0 {
			t.Fatalf("encoded xor row %d has no gate", xi)
		}
		found := false
		for _, x2 := range f.XorsOfGate[g] {
			if int(x2) == xi {
				found = true
			}
		}
		if !found {
			t.Fatalf("xor row %d not listed under gate %d", xi, g)
		}
	}
	// Model count must match the blasted encoding exactly.
	fb, err := EncodeBlasted(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Xors) != 0 {
		t.Fatalf("EncodeBlasted emitted %d xor rows", len(fb.Xors))
	}
	if n, b := bruteCountCNF(f), bruteCountCNF(fb); n != b {
		t.Fatalf("native count %d != blasted count %d", n, b)
	}
}

func TestEncodeNativeMatchesBlastedRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := testutil.RandomCircuit(2+int(seed%4), 4+int(seed%8), 1, seed)
		f, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := EncodeBlasted(c)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumVars != fb.NumVars {
			t.Fatalf("seed %d: NumVars %d vs %d", seed, f.NumVars, fb.NumVars)
		}
		if f.NumVars > 18 {
			continue
		}
		if n, b := bruteCountCNF(f), bruteCountCNF(fb); n != b {
			t.Fatalf("seed %d: native count %d != blasted %d", seed, n, b)
		}
	}
}

func TestDIMACSXorRoundTrip(t *testing.T) {
	f := &Formula{NumVars: 6, Track: "pmc"}
	f.addClause(-1, 1, -2, 3)
	f.AddXor(-1, true, 1, 2, 4)
	f.AddXor(-1, false, 3, 5, 6)
	f.AddXor(-1, true, 2, 6)

	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "c t pmc\n") {
		t.Errorf("missing c t header:\n%s", text)
	}
	if !strings.Contains(text, "p cnf 6 4\n") {
		t.Errorf("problem line must count clauses+xors:\n%s", text)
	}
	if !strings.Contains(text, "x 1 2 4 0\n") || !strings.Contains(text, "x -3 5 6 0\n") {
		t.Errorf("x-line sign convention wrong:\n%s", text)
	}

	g, err := ParseDIMACS(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.Track != "pmc" {
		t.Errorf("Track = %q", g.Track)
	}
	if len(g.Xors) != len(f.Xors) {
		t.Fatalf("Xors = %d, want %d", len(g.Xors), len(f.Xors))
	}
	for i := range f.Xors {
		a, b := f.Xors[i], g.Xors[i]
		if a.Rhs != b.Rhs || len(a.Vars) != len(b.Vars) {
			t.Fatalf("row %d mismatch: %v vs %v", i, a, b)
		}
		for j := range a.Vars {
			if a.Vars[j] != b.Vars[j] {
				t.Fatalf("row %d mismatch: %v vs %v", i, a, b)
			}
		}
	}
	if bruteCountCNF(f) != bruteCountCNF(g) {
		t.Error("round trip changed the model count")
	}
}

func TestDIMACSXorRoundTripEncoded(t *testing.T) {
	c := circuit.New("x")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	g1 := c.AddGate(circuit.Xor, a, b)
	g2 := c.AddGate(circuit.Xnor, g1, d)
	c.AddOutput(g2, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if bruteCountCNF(f) != bruteCountCNF(g) {
		t.Error("round trip changed the model count")
	}
}

func TestParseDIMACSXorErrors(t *testing.T) {
	cases := []string{
		"p cnf 2 1\nx 1 3 0\n", // xor literal out of range
		"p cnf 2 1\nx 1 2\n",   // missing terminator
		"p cnf 2 2\nx 1 2 0\n", // declared count includes x-lines
		"p cnf 2 1\nx 1 y 0\n", // bad literal token
	}
	for i, s := range cases {
		if _, err := ParseDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
	// "x 0" is the empty odd parity (0 = 1): kept, unsatisfiable.
	f, err := ParseDIMACS(strings.NewReader("p cnf 1 1\nx 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Xors) != 1 || len(f.Xors[0].Vars) != 0 || !f.Xors[0].Rhs {
		t.Fatalf("x 0 parsed wrong: %v", f.Xors)
	}
	if bruteCountCNF(f) != 0 {
		t.Error("x 0 must be unsatisfiable")
	}
}

func TestFormulaStringRendersXors(t *testing.T) {
	f := &Formula{NumVars: 3}
	f.AddXor(-1, true, 1, 2)
	s := f.String()
	if !strings.Contains(s, "v1 ^ v2") || !strings.Contains(s, "=1") {
		t.Errorf("String output unexpected: %s", s)
	}
}
