package cnf

import (
	"bytes"
	"strings"
	"testing"

	"vacsem/internal/circuit"
	"vacsem/internal/testutil"
)

// bruteCountCNF counts satisfying assignments of a formula by enumerating
// all 2^NumVars assignments (tiny formulas only).
func bruteCountCNF(f *Formula) uint64 {
	if f.NumVars > 20 {
		panic("bruteCountCNF too large")
	}
	var count uint64
patterns:
	for x := uint64(0); x < 1<<uint(f.NumVars); x++ {
		for _, cl := range f.Clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := x>>(uint(v)-1)&1 == 1
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				continue patterns
			}
		}
		for _, xr := range f.Xors {
			par := false
			for _, v := range xr.Vars {
				if x>>(uint(v)-1)&1 == 1 {
					par = !par
				}
			}
			if par != xr.Rhs {
				continue patterns
			}
		}
		count++
	}
	return count
}

func TestEncodeRequiresSingleOutput(t *testing.T) {
	c := testutil.RandomCircuit(3, 5, 2, 1)
	if _, err := Encode(c); err == nil {
		t.Error("Encode must reject multi-output circuits")
	}
	if _, err := EncodeOpen(circuit.New("empty")); err == nil {
		t.Error("EncodeOpen must reject output-less circuits")
	}
}

// TestEncodeModelCountEqualsPatternCount is the fundamental Tseitin
// property: #SAT over all variables == #input patterns with output 1.
func TestEncodeModelCountEqualsPatternCount(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := testutil.RandomCircuit(2+int(seed%4), 3+int(seed%8), 1, seed)
		f, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		if f.NumVars > 18 {
			continue
		}
		got := bruteCountCNF(f)
		// Brute-force input patterns restricted to the encoded cone.
		want := testutil.CountOnesBrute(c)[0]
		// Scale down by inputs outside the cone: brute counts over all
		// inputs, the CNF only over encoded ones.
		extra := c.NumInputs() - f.NumEncodedInputs()
		want >>= uint(extra)
		if got != want {
			t.Fatalf("seed %d: CNF models %d, pattern count %d", seed, got, want)
		}
	}
}

func TestGateClauseMapsAreConsistent(t *testing.T) {
	c := testutil.RandomCircuit(5, 20, 1, 7)
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every clause's gate must list the clause back (except -1 clauses).
	for ci, g := range f.GateOfClause {
		if g < 0 {
			continue
		}
		found := false
		for _, c2 := range f.ClausesOfGate[g] {
			if int(c2) == ci {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("clause %d not listed under gate %d", ci, g)
		}
	}
	// Every clause of a gate must contain the gate's variable.
	for g, cls := range f.ClausesOfGate {
		v := f.VarOfNode[g]
		for _, ci := range cls {
			has := false
			for _, l := range f.Clauses[ci] {
				if l == v || l == -v {
					has = true
					break
				}
			}
			if !has {
				t.Fatalf("gate %d clause %d lacks the gate literal", g, ci)
			}
		}
	}
	// Node<->var maps are mutually inverse.
	for node, v := range f.VarOfNode {
		if v == 0 {
			continue
		}
		if int(f.NodeOfVar[v]) != node {
			t.Fatalf("NodeOfVar[VarOfNode[%d]] = %d", node, f.NodeOfVar[v])
		}
	}
}

func TestClauseSetsInTopologicalOrder(t *testing.T) {
	c := testutil.RandomCircuit(5, 25, 1, 3)
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	last := int32(-1)
	for _, g := range f.GateOfClause {
		if g < 0 {
			continue
		}
		if g < last {
			t.Fatalf("clause sets not in topological order: gate %d after %d", g, last)
		}
		last = g
	}
}

func TestEncodeOutputUnitClause(t *testing.T) {
	c := circuit.New("u")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(And, a, b)
	c.AddOutput(g, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	lastClause := f.Clauses[len(f.Clauses)-1]
	if len(lastClause) != 1 || lastClause[0] != f.VarOfNode[g] {
		t.Errorf("missing output unit clause: %v", lastClause)
	}
	if f.GateOfClause[len(f.Clauses)-1] != -1 {
		t.Errorf("output unit clause must carry no gate")
	}
	fo, err := EncodeOpen(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo.Clauses) != len(f.Clauses)-1 {
		t.Errorf("EncodeOpen should have one clause fewer")
	}
}

// And is re-exported here only to keep the test self-contained.
const And = circuit.And

func TestEncodeSkipsNodesOutsideCone(t *testing.T) {
	c := circuit.New("cone")
	a := c.AddInput("a")
	b := c.AddInput("b")
	g := c.AddGate(circuit.And, a, b)
	c.AddGate(circuit.Or, a, b) // dangling
	c.AddOutput(g, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 { // a, b, g — not the Or, not const0
		t.Errorf("NumVars = %d, want 3", f.NumVars)
	}
	if f.NumEncodedInputs() != 2 {
		t.Errorf("NumEncodedInputs = %d", f.NumEncodedInputs())
	}
}

func TestConstInCone(t *testing.T) {
	c := circuit.New("k")
	a := c.AddInput("a")
	one := c.Const1()
	g := c.AddGate(circuit.And, a, one)
	c.AddOutput(g, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	// const0 must have a negative unit clause.
	v0 := f.VarOfNode[0]
	if v0 == 0 {
		t.Fatal("const0 not encoded although in cone")
	}
	found := false
	for _, cl := range f.Clauses {
		if len(cl) == 1 && cl[0] == -v0 {
			found = true
		}
	}
	if !found {
		t.Error("missing unit clause for const0")
	}
	if got := bruteCountCNF(f); got != 1 {
		t.Errorf("count = %d, want 1 (a=1)", got)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	c := testutil.RandomCircuit(4, 12, 1, 9)
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
	}
	if f.NumVars <= 18 && bruteCountCNF(f) != bruteCountCNF(g) {
		t.Error("round trip changed the model count")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 2\n1 0\n2 0\n",
		"p cnf 2 2\n1 0\n",   // clause count mismatch
		"p cnf 1 1\n2 0\n",   // literal out of range
		"p cnf 1 1\n1\n",     // missing terminator
		"p wrong 1 1\n1 0\n", // bad format tag
	}
	for i, s := range cases {
		if _, err := ParseDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
	// Comments and blank lines are fine.
	ok := "c comment\n\np cnf 2 1\n1 -2 0\n"
	f, err := ParseDIMACS(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid DIMACS rejected: %v", err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 1 {
		t.Error("parsed formula wrong")
	}
}

func TestFormulaString(t *testing.T) {
	c := circuit.New("s")
	a := c.AddInput("a")
	g := c.AddGate(circuit.Not, a)
	c.AddOutput(g, "y")
	f, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "v1") || !strings.Contains(s, "~") {
		t.Errorf("String output unexpected: %s", s)
	}
}
